// Command experiments regenerates every table and figure of the paper's
// evaluation section (§VII). Each figure prints the same rows/series the
// paper plots; EXPERIMENTS.md records the measured values against the
// paper's.
//
// Usage:
//
//	experiments -fig all                 # everything, small profile
//	experiments -fig 6 -profile medium   # Figure 6 at medium scale
//	experiments -fig 10 -profile small   # timing vs n
//	experiments -fig table3|vd|vid       # Table III and worked examples
//	experiments -fig 6 -csv              # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiment"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "artifact: all, 6, 7, 8, 9, 10, 11, table3, vd, vid")
		profile = flag.String("profile", "small", "scaling profile: small, medium, full")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text (figures 6-9)")
		seed    = flag.Uint64("seed", 0, "override the profile's base seed (0 keeps default)")
		queries = flag.Int("queries", 0, "override the profile's query count (0 keeps default)")
		tuples  = flag.Int("tuples", 0, "override the profile's tuple count (0 keeps default)")
	)
	flag.Parse()

	prof, err := experiment.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *seed != 0 {
		prof.Seed = *seed
	}
	if *queries > 0 {
		prof.Queries = *queries
	}
	if *tuples > 0 {
		prof.Tuples = *tuples
	}

	run := func(name string) {
		if err := runOne(name, prof, *csv); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	if *fig == "all" {
		for _, name := range []string{"table3", "6", "7", "8", "9", "10", "11", "vd", "vid"} {
			run(name)
		}
		return
	}
	run(*fig)
}

func runOne(fig string, prof experiment.Profile, csv bool) error {
	out := os.Stdout
	switch fig {
	case "table3":
		return experiment.WriteTableIII(out, prof.Scale)
	case "6":
		return accuracy(dataset.BrazilSpec(prof.Scale), prof, experiment.SquareErrorByCoverage, csv)
	case "7":
		return accuracy(dataset.USSpec(prof.Scale), prof, experiment.SquareErrorByCoverage, csv)
	case "8":
		return accuracy(dataset.BrazilSpec(prof.Scale), prof, experiment.RelativeErrorBySelectivity, csv)
	case "9":
		return accuracy(dataset.USSpec(prof.Scale), prof, experiment.RelativeErrorBySelectivity, csv)
	case "10":
		m, ns := timingVsNParams(prof)
		res, err := experiment.RunTimingVsN(m, ns, prof.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 10 — computation time vs n (SA=∅)")
		return experiment.WriteTiming(out, res)
	case "11":
		n, ms := timingVsMParams(prof)
		res, err := experiment.RunTimingVsM(n, ms, prof.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figure 11 — computation time vs m (SA=∅)")
		return experiment.WriteTiming(out, res)
	case "vd":
		return experiment.WorkedExampleVD(out, 512, 3, 1.0)
	case "vid":
		return experiment.WorkedExampleVID(out, 16, 1.0)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

func accuracy(spec dataset.CensusSpec, prof experiment.Profile, metric experiment.Metric, csv bool) error {
	res, err := experiment.RunAccuracy(spec, prof, metric)
	if err != nil {
		return err
	}
	if csv {
		return experiment.WriteAccuracyCSV(os.Stdout, res)
	}
	name := figureName(spec.Name, metric)
	fmt.Printf("%s\n", name)
	return experiment.WriteAccuracy(os.Stdout, res)
}

func figureName(ds string, metric experiment.Metric) string {
	switch {
	case ds == "Brazil" && metric == experiment.SquareErrorByCoverage:
		return "Figure 6 — average square error vs query coverage (Brazil)"
	case ds == "US" && metric == experiment.SquareErrorByCoverage:
		return "Figure 7 — average square error vs query coverage (US)"
	case ds == "Brazil" && metric == experiment.RelativeErrorBySelectivity:
		return "Figure 8 — average relative error vs query selectivity (Brazil)"
	default:
		return "Figure 9 — average relative error vs query selectivity (US)"
	}
}

// timingVsNParams returns Figure 10's sweep at the profile's scale. The
// paper uses m = 2²⁴ with n from 1M to 5M.
func timingVsNParams(prof experiment.Profile) (m int, ns []int) {
	switch prof.Name {
	case "full":
		return 1 << 24, []int{1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000}
	case "medium":
		return 1 << 20, []int{250_000, 500_000, 750_000, 1_000_000, 1_250_000}
	default:
		return 1 << 16, []int{50_000, 100_000, 150_000, 200_000, 250_000}
	}
}

// timingVsMParams returns Figure 11's sweep. The paper uses n = 5·10⁶
// with m from 2²² to 2²⁶.
func timingVsMParams(prof experiment.Profile) (n int, ms []int) {
	switch prof.Name {
	case "full":
		return 5_000_000, []int{1 << 22, 1 << 23, 1 << 24, 1 << 25, 1 << 26}
	case "medium":
		return 1_000_000, []int{1 << 18, 1 << 19, 1 << 20, 1 << 21, 1 << 22}
	default:
		return 250_000, []int{1 << 14, 1 << 15, 1 << 16, 1 << 17, 1 << 18}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
