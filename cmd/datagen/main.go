// Command datagen emits the synthetic datasets used by the experiments as
// headerless integer CSVs compatible with cmd/privelet.
//
//	datagen -kind brazil -n 100000 -scale small > brazil.csv
//	datagen -kind us     -n 100000 -scale full  > us.csv
//	datagen -kind uniform -n 100000 -m 65536     > uniform.csv
//
// With -print-schema the matching cmd/privelet -schema clause is printed
// to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/dataset"
)

func main() {
	var (
		kind        = flag.String("kind", "brazil", "dataset kind: brazil, us, uniform")
		n           = flag.Int("n", 100_000, "number of tuples")
		scaleFlag   = flag.String("scale", "small", "census scale: small, medium, full")
		m           = flag.Int("m", 1<<16, "total domain size (uniform kind)")
		seed        = flag.Uint64("seed", 1, "generator seed")
		printSchema = flag.Bool("print-schema", false, "print the cmd/privelet -schema clause to stderr")
	)
	flag.Parse()

	scale, err := parseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	var tbl *dataset.Table
	var schemaClause string
	switch *kind {
	case "brazil", "us":
		spec := dataset.BrazilSpec(scale)
		if *kind == "us" {
			spec = dataset.USSpec(scale)
		}
		tbl, err = dataset.GenerateCensus(spec, *n, *seed)
		schemaClause = fmt.Sprintf(
			"Age:ordinal:%d,Gender:nominal:flat:2,Occupation:nominal:3level:%dx%d,Income:ordinal:%d",
			spec.AgeSize, spec.OccGroups, spec.OccPerGroup, spec.IncomeSize)
	case "uniform":
		spec, specErr := dataset.UniformSpecForM(*m)
		if specErr != nil {
			fatal(specErr)
		}
		tbl, err = dataset.GenerateUniform(spec, *n, *seed)
		// The -schema grammar can express the exact 3-level hierarchy
		// only for perfect-square sizes; otherwise fall back to flat
		// (heights then differ from the generator's, which only shifts
		// noise calibration, not validity).
		nominalClause := fmt.Sprintf("nominal:flat:%d", spec.AttrSize)
		if r := intSqrt(spec.AttrSize); r*r == spec.AttrSize {
			nominalClause = fmt.Sprintf("nominal:3level:%dx%d", r, r)
		}
		schemaClause = fmt.Sprintf("O1:ordinal:%d,O2:ordinal:%d,N1:%s,N2:%s",
			spec.AttrSize, spec.AttrSize, nominalClause, nominalClause)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}
	if *printSchema {
		fmt.Fprintln(os.Stderr, schemaClause)
	}

	if err := cli.WriteTableCSV(os.Stdout, tbl); err != nil {
		fatal(err)
	}
}

func parseScale(s string) (dataset.Scale, error) {
	switch s {
	case "small":
		return dataset.ScaleSmall, nil
	case "medium":
		return dataset.ScaleMedium, nil
	case "full":
		return dataset.ScaleFull, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", s)
	}
}

func intSqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
