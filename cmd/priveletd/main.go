// Command priveletd serves differentially-private releases over HTTP.
//
//	priveletd -addr :8080
//
//	# publish a table (budget is spent here, once)
//	curl -X POST --data-binary @data.csv \
//	  'localhost:8080/publish?schema=Age:ordinal:64,Gender:nominal:flat:2&epsilon=1&sa=Gender&seed=7'
//
//	# query it as often as you like
//	curl 'localhost:8080/releases/r1/count?q=Age=30..49'
//
//	# download the release for offline use (cmd/privelet-compatible codec)
//	curl -o release.prvl 'localhost:8080/releases/r1/export'
//
// See internal/server for the full API and query syntax.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		maxBody = flag.Int64("max-body", 64<<20, "maximum upload size in bytes")
		workers = flag.Int("parallelism", 0, "default worker goroutines per publish (0 = all cores); lower it when serving many concurrent publishers")
	)
	flag.Parse()

	srv := server.New(*maxBody)
	srv.SetParallelism(*workers)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("priveletd listening on %s\n", *addr)
	log.Fatal(httpServer.ListenAndServe())
}
