// Command priveletd serves differentially-private releases over HTTP —
// as a single node, as a member of a cluster, or (with -route) as the
// cluster's routing tier.
//
//	priveletd -addr :8080 -store-dir /var/lib/privelet -max-resident 64
//
//	# publish a table (budget is spent here, once); pick any registered
//	# mechanism by name — privelet+, privelet, basic, hay
//	curl -X POST --data-binary @data.csv \
//	  'localhost:8080/publish?schema=Age:ordinal:64,Gender:nominal:flat:2&epsilon=1&sa=Gender&seed=7&mechanism=privelet%2B'
//
//	# query it as often as you like
//	curl 'localhost:8080/releases/r1/count?q=Age=30..49'
//
//	# or publish as a tenant against a privacy budget (-budget): each
//	# success is a versioned release <tenant>/<epoch>, an exhausted
//	# budget is a typed 429 (sequential composition across epochs), and
//	# with -store-dir the refusal survives restarts
//	curl -X POST --data-binary @data.csv \
//	  'localhost:8080/tenants/alice/publish?schema=Age:ordinal:64&epsilon=0.5'
//	curl 'localhost:8080/tenants/alice/budget'
//	curl 'localhost:8080/releases/alice%2F1/count?q=Age=30..49'
//
//	# or a whole workload in one request (one query spec per line);
//	# answers are bit-identical to per-query /count calls at any
//	# ?parallelism=
//	curl --data-binary @workload.csv 'localhost:8080/releases/r1/query?parallelism=4'
//
//	# withdraw a release and reclaim its disk space
//	curl -X DELETE 'localhost:8080/releases/r1'
//
//	# download the release for offline use (cmd/privelet-compatible codec)
//	curl -o release.prvl 'localhost:8080/releases/r1/export'
//
//	# watch the store: shards, resident/spilled counts, evictions,
//	# reloads, answer-cache hits/misses/evictions, node identity
//	curl 'localhost:8080/stats'
//
// # Cluster mode
//
// Several daemons form a cluster behind one router process (see
// internal/cluster). Start each node with a stable -node-name and the
// full peer list (so it can run anti-entropy repair), then a router
// with -route over the same list:
//
//	PEERS=n1=http://localhost:8081,n2=http://localhost:8082,n3=http://localhost:8083
//	priveletd -addr :8081 -node-name n1 -store-dir /var/lib/p1 \
//	  -peers $PEERS -replicas 2 -cluster-secret $SECRET &
//	priveletd -addr :8082 -node-name n2 -store-dir /var/lib/p2 \
//	  -peers $PEERS -replicas 2 -cluster-secret $SECRET &
//	priveletd -addr :8083 -node-name n3 -store-dir /var/lib/p3 \
//	  -peers $PEERS -replicas 2 -cluster-secret $SECRET &
//	priveletd -route -addr :8080 -replicas 2 -peers $PEERS -cluster-secret $SECRET
//
// The router mirrors the node API: publishes consistent-hash onto a
// primary and replicate synchronously, reads fan out to any healthy
// replica, /stats shows the whole fleet. The daemon binds its port
// immediately and answers /healthz at once, but /readyz (the router's
// probe target) returns 503 with a reason until the store and ledger
// have finished recovering — a restarting node rejoins the ring only
// once every recovered release is servable.
//
// With -peers set, each node also runs the anti-entropy repairer
// (internal/cluster.Repairer): every -repair-interval it diffs actual
// release placement against the ring and re-ships missing copies,
// pulls copies it should hold, and finishes DELETEs that replicas
// slept through (durable tombstones make deletes win over stale
// copies). POST /internal/repair triggers one sweep on demand and
// returns its report. -cluster-secret locks every /internal/* endpoint
// behind a shared bearer token, and -ring-version lets membership roll
// through the fleet one process at a time: bump it everywhere when the
// peer list changes, and internal calls from peers still on the old
// list are refused with a typed 409 instead of writing to stale
// placement.
//
// Releases live in a sharded store (internal/store). With -store-dir set
// every release is also written through to disk, so the daemon survives
// restarts, and -max-resident bounds how many releases keep their matrix
// in memory — colder ones are served by transparent reload from disk.
//
// Each release carries an LRU answer cache (sized in entries by
// -answer-cache, 0 disables): repeat queries — singly via /count or
// inside batch workloads — are answered from the cache without touching
// the evaluator, bit-identical to a cold answer. The cache dies with
// DELETE; releases are immutable, so that is the only invalidation.
// Batch answers stream back in fixed-size chunks with an explicit
// trailer (see internal/server), so clients detect truncated responses.
//
// See internal/server for the full API and query syntax, and
// internal/cluster for the ring, replication, and failure semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	privelet "repro"
	"repro/internal/cluster"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxBody  = flag.Int64("max-body", 64<<20, "maximum upload size in bytes")
		workers  = flag.Int("parallelism", 0, "default worker goroutines per publish (0 = all cores); lower it when serving many concurrent publishers")
		mechName = flag.String("mechanism", "privelet+",
			fmt.Sprintf("default publish mechanism when a request omits ?mechanism=, one of %s", strings.Join(privelet.Mechanisms(), "|")))
		storeDir    = flag.String("store-dir", "", "directory for durable release storage; releases already there are served after a restart (empty = memory only)")
		maxResident = flag.Int("max-resident", 0, "max releases kept in memory; colder ones spill to -store-dir and reload on access (0 = unlimited)")
		shards      = flag.Int("shards", 0, fmt.Sprintf("release-store lock stripes (0 = default %d)", store.DefaultShards))
		answerCache = flag.Int("answer-cache", store.DefaultAnswerCache, "max cached answers per release (repeat queries skip the evaluator; 0 disables)")
		budget      = flag.Float64("budget", 0, "default per-tenant ε budget for /tenants/{id}/publish (0 = unlimited: spend tracked, never refused)")
		ledgerDir   = flag.String("ledger-dir", "", "directory for durable budget balances (default: -store-dir, so refusals survive restarts whenever releases do)")
		nodeName    = flag.String("node-name", "", "stable cluster identity of this node, stamped on /stats (empty = hostname); placement hashes it, so renaming a node moves its data")
		route       = flag.Bool("route", false, "run as the cluster routing tier over -peers instead of serving releases")
		peers       = flag.String("peers", "", "comma-separated cluster peer list, name=url each (route mode routes over it; node mode uses it to run anti-entropy repair)")
		replicas    = flag.Int("replicas", 2, "copies of each release across the ring (clamped to the peer count)")
		probeEvery  = flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health-probe interval for the ring's nodes (route mode)")
		secret      = flag.String("cluster-secret", "", "shared bearer token for /internal/* calls: nodes require it, routers and repair sweeps send it (empty = unauthenticated)")
		ringVersion = flag.Uint64("ring-version", 0, "membership version of -peers; bump it on every peer-list change — internal calls from peers still on an older version are refused with a typed 409")
		repairEvery = flag.Duration("repair-interval", cluster.DefaultRepairInterval, "anti-entropy sweep interval (node mode with -peers; 0 disables the background loop, POST /internal/repair still works)")
		repairJit   = flag.Duration("repair-jitter", 0, "max random delay added to each sweep's wait so a fleet restarted together doesn't list every peer in lockstep (0 = 10% of -repair-interval, negative disables)")
		useMMap     = flag.Bool("mmap", true, "memory-map spilled releases' summed-area tables on reload (durable format v2): zero prefix-sum work and page-cache-bounded residency; off falls back to heap reloads (still rebuild-free for v2 files)")
	)
	flag.Parse()

	if *route {
		runRouter(*addr, *peers, *replicas, *maxBody, *probeEvery, *secret, *ringVersion)
		return
	}

	if _, err := privelet.MechanismByName(*mechName); err != nil {
		log.Fatal(err)
	}
	// Bind the port before recovery: /healthz answers immediately, and
	// /readyz 503s with a reason until the store and ledger are loaded —
	// the window a cluster router's probes keep the node out of rotation.
	var handler atomic.Value
	handler.Store(bootHandler("recovering releases and budget ledgers"))
	go func() {
		// The store shares the publish worker ceiling for its evaluator
		// rebuilds (startup recovery and spilled-release reloads);
		// rebuilds are bit-identical at any worker count, so this is
		// latency-only.
		st, err := store.New(store.Config{Dir: *storeDir, MaxResident: *maxResident, Shards: *shards, Parallelism: *workers, AnswerCache: *answerCache, NoMMap: !*useMMap})
		if err != nil {
			log.Fatal(err)
		}
		if n := st.Len(); n > 0 {
			fmt.Printf("priveletd recovered %d release(s) from %s\n", n, *storeDir)
		}
		// The ledger defaults to living beside the releases: a daemon
		// durable enough to re-serve its releases must also remember what
		// they cost, or a restart would reset sequential composition.
		if *ledgerDir == "" {
			*ledgerDir = *storeDir
		}
		led, err := ledger.New(ledger.Config{Dir: *ledgerDir, DefaultBudget: *budget})
		if err != nil {
			log.Fatal(err)
		}
		if n := len(led.Tenants()); n > 0 {
			fmt.Printf("priveletd recovered %d tenant budget(s) from %s\n", n, *ledgerDir)
		}
		// With a peer list, the node knows the ring and runs its own
		// anti-entropy repairer: a background sweep (plus the on-demand
		// POST /internal/repair) that re-ships missing replica copies and
		// finishes deletes peers slept through. Repair starts only after
		// recovery — a restarting node serves its own state before it
		// starts shipping files.
		clusterCfg := server.ClusterConfig{Secret: *secret, RingVersion: *ringVersion}
		if *peers != "" {
			rep, err := nodeRepairer(*peers, *replicas, *ringVersion, *nodeName, *secret, *repairEvery, *repairJit, st)
			if err != nil {
				log.Fatal(err)
			}
			clusterCfg.Repair = func(ctx context.Context) (any, error) { return rep.Sweep(ctx) }
			clusterCfg.RepairStats = func() any { return rep.Stats() }
			if *repairEvery > 0 {
				rep.Start()
				fmt.Printf("priveletd anti-entropy sweep every %s\n", *repairEvery)
			}
		}
		srv := server.New(server.Config{MaxBody: *maxBody, Parallelism: *workers, DefaultMechanism: *mechName, Store: st, Ledger: led, NodeName: *nodeName, Cluster: clusterCfg})
		handler.Store(srv.Handler())
		fmt.Printf("priveletd ready; mechanisms: %s (default %s)\n", strings.Join(privelet.Mechanisms(), ", "), *mechName)
	}()
	serve(*addr, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, req)
	}), "priveletd")
}

// bootHandler serves the recovery window: alive, not ready.
func bootHandler(reason string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"error\":%q,\"code\":\"not_ready\"}\n", "starting: "+reason)
	})
	return mux
}

// nodeRepairer builds this node's anti-entropy repairer from the same
// -peers/-replicas/-ring-version spelling the router uses, so one
// deployment config describes both tiers. The node must appear in its
// own peer list under its -node-name.
func nodeRepairer(peerSpec string, replicas int, version uint64, self, secret string, interval, jitter time.Duration, st *store.Store) (*cluster.Repairer, error) {
	nodes, err := cluster.ParsePeers(peerSpec)
	if err != nil {
		return nil, err
	}
	ring, err := cluster.NewVersionedRing(nodes, replicas, version)
	if err != nil {
		return nil, err
	}
	if !ring.Contains(self) {
		return nil, fmt.Errorf("-peers does not list this node: set -node-name to one of the peer names (got %q)", self)
	}
	return cluster.NewRepairer(cluster.RepairConfig{
		Self: self, Ring: ring, Store: st,
		Interval: interval, Jitter: jitter, Secret: secret,
	})
}

// runRouter runs the cluster routing tier: a static consistent-hash
// ring over -peers with health-probed read fan-out and synchronous
// publish replication (see internal/cluster).
func runRouter(addr, peerSpec string, replicas int, maxBody int64, probeEvery time.Duration, secret string, ringVersion uint64) {
	nodes, err := cluster.ParsePeers(peerSpec)
	if err != nil {
		log.Fatal(err)
	}
	ring, err := cluster.NewVersionedRing(nodes, replicas, ringVersion)
	if err != nil {
		log.Fatal(err)
	}
	health := cluster.NewHealth(nodes, cluster.HealthConfig{Interval: probeEvery})
	health.Start()
	defer health.Stop()
	rt, err := cluster.NewRouter(cluster.RouterConfig{Ring: ring, Health: health, MaxBody: maxBody, Secret: secret})
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(nodes))
	for _, n := range ring.Nodes() {
		names = append(names, n.Name)
	}
	fmt.Printf("priveletd routing over %d node(s) [%s], %d-way replication, ring version %d\n",
		len(nodes), strings.Join(names, ", "), ring.Replication(), ring.Version())
	serve(addr, rt.Handler(), "priveletd router")
}

func serve(addr string, h http.Handler, what string) {
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("%s listening on %s\n", what, addr)
	log.Fatal(httpServer.ListenAndServe())
}
