// Command priveletd serves differentially-private releases over HTTP.
//
//	priveletd -addr :8080 -store-dir /var/lib/privelet -max-resident 64
//
//	# publish a table (budget is spent here, once); pick any registered
//	# mechanism by name — privelet+, privelet, basic, hay
//	curl -X POST --data-binary @data.csv \
//	  'localhost:8080/publish?schema=Age:ordinal:64,Gender:nominal:flat:2&epsilon=1&sa=Gender&seed=7&mechanism=privelet%2B'
//
//	# query it as often as you like
//	curl 'localhost:8080/releases/r1/count?q=Age=30..49'
//
//	# or publish as a tenant against a privacy budget (-budget): each
//	# success is a versioned release <tenant>/<epoch>, an exhausted
//	# budget is a typed 429 (sequential composition across epochs), and
//	# with -store-dir the refusal survives restarts
//	curl -X POST --data-binary @data.csv \
//	  'localhost:8080/tenants/alice/publish?schema=Age:ordinal:64&epsilon=0.5'
//	curl 'localhost:8080/tenants/alice/budget'
//	curl 'localhost:8080/releases/alice%2F1/count?q=Age=30..49'
//
//	# or a whole workload in one request (one query spec per line);
//	# answers are bit-identical to per-query /count calls at any
//	# ?parallelism=
//	curl --data-binary @workload.csv 'localhost:8080/releases/r1/query?parallelism=4'
//
//	# withdraw a release and reclaim its disk space
//	curl -X DELETE 'localhost:8080/releases/r1'
//
//	# download the release for offline use (cmd/privelet-compatible codec)
//	curl -o release.prvl 'localhost:8080/releases/r1/export'
//
//	# watch the store: shards, resident/spilled counts, evictions,
//	# reloads, answer-cache hits/misses/evictions
//	curl 'localhost:8080/stats'
//
// Releases live in a sharded store (internal/store). With -store-dir set
// every release is also written through to disk, so the daemon survives
// restarts, and -max-resident bounds how many releases keep their matrix
// in memory — colder ones are served by transparent reload from disk.
//
// Each release carries an LRU answer cache (sized in entries by
// -answer-cache, 0 disables): repeat queries — singly via /count or
// inside batch workloads — are answered from the cache without touching
// the evaluator, bit-identical to a cold answer. The cache dies with
// DELETE; releases are immutable, so that is the only invalidation.
// Batch answers stream back in fixed-size chunks with an explicit
// trailer (see internal/server), so clients detect truncated responses.
//
// See internal/server for the full API and query syntax.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	privelet "repro"
	"repro/internal/ledger"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxBody  = flag.Int64("max-body", 64<<20, "maximum upload size in bytes")
		workers  = flag.Int("parallelism", 0, "default worker goroutines per publish (0 = all cores); lower it when serving many concurrent publishers")
		mechName = flag.String("mechanism", "privelet+",
			fmt.Sprintf("default publish mechanism when a request omits ?mechanism=, one of %s", strings.Join(privelet.Mechanisms(), "|")))
		storeDir    = flag.String("store-dir", "", "directory for durable release storage; releases already there are served after a restart (empty = memory only)")
		maxResident = flag.Int("max-resident", 0, "max releases kept in memory; colder ones spill to -store-dir and reload on access (0 = unlimited)")
		shards      = flag.Int("shards", 0, fmt.Sprintf("release-store lock stripes (0 = default %d)", store.DefaultShards))
		answerCache = flag.Int("answer-cache", store.DefaultAnswerCache, "max cached answers per release (repeat queries skip the evaluator; 0 disables)")
		budget      = flag.Float64("budget", 0, "default per-tenant ε budget for /tenants/{id}/publish (0 = unlimited: spend tracked, never refused)")
		ledgerDir   = flag.String("ledger-dir", "", "directory for durable budget balances (default: -store-dir, so refusals survive restarts whenever releases do)")
	)
	flag.Parse()

	if _, err := privelet.MechanismByName(*mechName); err != nil {
		log.Fatal(err)
	}
	// The store shares the publish worker ceiling for its evaluator
	// rebuilds (startup recovery and spilled-release reloads); rebuilds
	// are bit-identical at any worker count, so this is latency-only.
	st, err := store.New(store.Config{Dir: *storeDir, MaxResident: *maxResident, Shards: *shards, Parallelism: *workers, AnswerCache: *answerCache})
	if err != nil {
		log.Fatal(err)
	}
	if n := st.Len(); n > 0 {
		fmt.Printf("priveletd recovered %d release(s) from %s\n", n, *storeDir)
	}
	// The ledger defaults to living beside the releases: a daemon durable
	// enough to re-serve its releases must also remember what they cost,
	// or a restart would reset sequential composition.
	if *ledgerDir == "" {
		*ledgerDir = *storeDir
	}
	led, err := ledger.New(ledger.Config{Dir: *ledgerDir, DefaultBudget: *budget})
	if err != nil {
		log.Fatal(err)
	}
	if n := len(led.Tenants()); n > 0 {
		fmt.Printf("priveletd recovered %d tenant budget(s) from %s\n", n, *ledgerDir)
	}
	srv := server.New(server.Config{MaxBody: *maxBody, Parallelism: *workers, DefaultMechanism: *mechName, Store: st, Ledger: led})
	fmt.Printf("priveletd mechanisms: %s (default %s)\n", strings.Join(privelet.Mechanisms(), ", "), *mechName)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("priveletd listening on %s\n", *addr)
	log.Fatal(httpServer.ListenAndServe())
}
