// Command privelet publishes a differentially-private frequency matrix
// from a CSV table.
//
// The input CSV has one integer column per attribute (values are domain
// indices, 0-based) and no header. The schema is described on the command
// line, one clause per column:
//
//	Age:ordinal:101              ordinal attribute, domain size 101
//	Gender:nominal:flat:2        nominal, flat hierarchy with 2 leaves
//	Occ:nominal:3level:16x32     nominal, 3-level hierarchy 16 groups × 32
//
// Example:
//
//	privelet -schema "Age:ordinal:101,Gender:nominal:flat:2" \
//	         -epsilon 1.0 -sa Gender -in data.csv -out noisy.csv
//
// The publishing mechanism is selected by name from the privelet
// registry (-mechanism privelet+|privelet|basic|hay; hay requires a
// one-attribute schema). Rows are streamed from the CSV straight into
// the frequency matrix, so the input may hold far more rows than fit in
// memory.
//
// The output CSV has one row per frequency-matrix entry with the entry's
// coordinates followed by its noisy count. -save additionally writes the
// release in the binary codec format that priveletd's /export endpoint,
// its spill files, and privelet.Load all share.
//
// Saved releases are also queryable offline: -load reads a codec
// artifact (no raw data, no schema flag needed) and either dumps its
// matrix as CSV or — with -query — answers a whole workload file, one
// query spec per line in the shared wire format (the server's q=
// grammar: Age=30..49, Occ=@g3, Occ=#3..5), one answer per line out:
//
//	privelet -load release.prvl -query workload.csv -out answers.csv
//
// The workload streams: specs are parsed and answered in fixed-size
// chunks that execute while earlier answers are written, so memory
// stays O(chunk) however large the workload file is. The answer output
// ends with a '#'-prefixed trailer line ("# answers=N status=ok")
// carrying the answer count, so a consumer can tell a complete run from
// a truncated one; line-oriented tools can skip it as a comment. The
// workload fans across -parallelism workers; answers are bit-identical
// at any worker count and to the daemon's batch endpoint.
//
// Publishes can be held to a privacy budget: -budget ε refuses the
// publish outright — before the CSV is read or any noise drawn — once
// the -tenant account (default "default") would exceed ε under
// sequential composition. With -ledger-dir the balance is durable, so
// the budget spans invocations:
//
//	privelet -schema ... -epsilon 0.4 -budget 1 -ledger-dir ~/.privelet \
//	         -in monday.csv -out monday-noisy.csv
//	# two more runs later the budget is spent, and the fourth run exits
//	# with "privacy budget exhausted" without touching the input
//
// A publish that fails midway refunds its charge; only released noise
// costs budget.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	privelet "repro"
	"repro/internal/cli"
	"repro/internal/workload"
)

func main() {
	var (
		schemaSpec = flag.String("schema", "", "comma-separated attribute clauses (see package doc)")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy budget ε")
		saFlag     = flag.String("sa", "", "comma-separated SA attribute names (privelet+ only); 'auto' applies Corollary 1")
		seed       = flag.Uint64("seed", 1, "noise seed (deterministic releases)")
		inPath     = flag.String("in", "", "input CSV (default stdin)")
		outPath    = flag.String("out", "", "output CSV (default stdout)")
		savePath   = flag.String("save", "", "also save the release in codec format (loadable with privelet.Load)")
		sanitize   = flag.Bool("sanitize", false, "round the release to non-negative integers")
		mechName   = flag.String("mechanism", "privelet+",
			fmt.Sprintf("publishing mechanism, one of %s", strings.Join(privelet.Mechanisms(), "|")))
		basic     = flag.Bool("basic", false, "deprecated: alias for -mechanism basic")
		workers   = flag.Int("parallelism", 0, "worker goroutines (0 = all cores); never changes a release or an answer")
		loadPath  = flag.String("load", "", "read a saved release (codec format) instead of publishing; schema comes from the artifact")
		quePath   = flag.String("query", "", "workload file (one query spec per line) to answer against the -load release")
		budget    = flag.Float64("budget", 0, "total ε budget for -tenant; an over-budget publish is refused before any noise is drawn (0 = unlimited)")
		tenant    = flag.String("tenant", "default", "budget account the publish debits (with -budget or -ledger-dir)")
		ledgerDir = flag.String("ledger-dir", "", "directory for durable budget balances; the budget then spans invocations")
	)
	flag.Parse()

	if *loadPath != "" {
		// A loaded release is finished: every publish-time flag would be
		// silently dead, so reject them loudly rather than let a user
		// believe -sanitize or a different -epsilon applied.
		var conflicts []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "schema", "in", "epsilon", "sa", "seed", "sanitize", "mechanism", "basic", "save",
				"budget", "tenant", "ledger-dir":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fatal(fmt.Errorf("-load reads a finished release; publish flag(s) %s do not apply", strings.Join(conflicts, ", ")))
		}
		runOffline(*loadPath, *quePath, *outPath, *workers)
		return
	}
	if *quePath != "" {
		fatal(fmt.Errorf("-query needs -load (it answers a workload against a saved release)"))
	}
	if *schemaSpec == "" {
		fatal(fmt.Errorf("-schema is required"))
	}
	schema, err := cli.ParseSchema(*schemaSpec)
	if err != nil {
		fatal(err)
	}
	if *basic {
		*mechName = "basic"
		// The old -basic flag never read -sa; keep ignoring it (with a
		// note) rather than letting the mechanism reject it.
		if *saFlag != "" {
			fmt.Fprintln(os.Stderr, "privelet: -basic ignores -sa (deprecated flag compatibility)")
			*saFlag = ""
		}
	}
	// Resolve the mechanism before ingest: with streaming input the CSV
	// pass is the dominant cost, and a typo'd name must not waste it.
	mech, err := privelet.MechanismByName(*mechName)
	if err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sa := cli.SplitNonEmpty(*saFlag)
	if len(sa) == 1 && sa[0] == "auto" {
		sa, err = privelet.RecommendSA(schema)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "privelet: auto SA = %v\n", sa)
	}

	// Reject parameter/mechanism mismatches (SA on a transform-free
	// mechanism, hay on a multi-attribute schema, bad ε) before ingest
	// too — same rationale as the name check above.
	params := privelet.Params{
		Epsilon: *epsilon, SA: sa, Seed: *seed, Sanitize: *sanitize, Parallelism: *workers,
	}
	if err := privelet.ValidateParams(mech, schema, params); err != nil {
		fatal(err)
	}

	// Charge the budget before ingest: an over-budget publish is refused
	// with zero work done — no CSV pass, no noise drawn. The charge is
	// refunded if the publish fails, so only released noise costs budget.
	var (
		led    *privelet.Ledger
		charge *privelet.BudgetCharge
	)
	if *budget > 0 || *ledgerDir != "" {
		if led, err = privelet.NewLedger(*ledgerDir, *budget); err != nil {
			fatal(err)
		}
		if charge, err = led.Charge(*tenant, *epsilon); err != nil {
			fatal(err)
		}
	}

	// Stream rows into the frequency matrix: the table itself is never
	// buffered, so memory stays O(domain) however large the CSV is.
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		fatal(err)
	}
	if err := cli.ReadRows(schema, in, pub.Add); err != nil {
		refund(led, charge)
		fatal(err)
	}
	rel, err := pub.Publish(context.Background(), *mechName, params)
	if err != nil {
		refund(led, charge)
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "privelet: %s (n=%d)\n", rel, pub.Rows())
	if led != nil {
		epoch, err := led.NextEpoch(*tenant)
		if err != nil {
			fatal(err)
		}
		if rem := led.Remaining(*tenant); math.IsInf(rem, 1) {
			fmt.Fprintf(os.Stderr, "privelet: tenant %s epoch %d (unlimited budget)\n", *tenant, epoch)
		} else {
			fmt.Fprintf(os.Stderr, "privelet: tenant %s epoch %d, ε remaining %g\n", *tenant, epoch, rem)
		}
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := rel.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}
	if err := writeMatrixCSV(out, rel.Matrix()); err != nil {
		fatal(err)
	}
}

// runOffline works from a saved release artifact instead of raw data:
// with a workload file it answers every query (one full-precision answer
// per line, in workload order), without one it dumps the noisy matrix as
// CSV — the same output a publish writes.
func runOffline(loadPath, quePath, outPath string, workers int) {
	f, err := os.Open(loadPath)
	if err != nil {
		fatal(err)
	}
	rel, err := privelet.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	out := io.Writer(os.Stdout)
	if outPath != "" {
		of, err := os.Create(outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := of.Close(); err != nil {
				fatal(err)
			}
		}()
		out = of
	}

	if quePath == "" {
		if err := writeMatrixCSV(out, rel.Matrix()); err != nil {
			fatal(err)
		}
		return
	}
	qf, err := os.Open(quePath)
	if err != nil {
		fatal(err)
	}
	defer qf.Close()
	// Stream the workload: parse → execute → write overlap in chunks, so
	// a million-query file never exists in memory as a plan. AnswerLines
	// renders with 'g'/-1, which round-trips the exact float64, so piped
	// answers stay bit-identical to the evaluator's.
	aw := workload.NewAnswerLines(out)
	src := workload.Queries(rel.Schema(), workload.NewLineSpecs(qf))
	delivered, err := rel.CountStream(context.Background(), src, aw.WriteChunk, workers)
	t := workload.Trailer{Answers: delivered, Status: workload.StatusOK}
	if err != nil {
		// Answers already on the way out stay out; the trailer marks the
		// stream as deliberately cut so downstream consumers don't read a
		// partial answer list as complete.
		t.Status = workload.StatusError
		t.Error = err.Error()
	}
	if cerr := aw.Close(t); cerr != nil {
		fatal(cerr)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "privelet: answered %d queries (%s)\n", delivered, rel)
}

// writeMatrixCSV emits coordinates plus noisy count per entry.
func writeMatrixCSV(w io.Writer, m *privelet.Matrix) error {
	bw := bufio.NewWriter(w)
	d := m.NumDims()
	coords := make([]int, d)
	data := m.Data()
	for off := range data {
		m.Coords(off, coords)
		for _, c := range coords {
			fmt.Fprintf(bw, "%d,", c)
		}
		fmt.Fprintf(bw, "%g\n", data[off])
	}
	return bw.Flush()
}

// refund returns a failed publish's charge before the process exits;
// it matters only with -ledger-dir, where the balance outlives the run.
func refund(led *privelet.Ledger, charge *privelet.BudgetCharge) {
	if led != nil && charge != nil {
		if err := led.Refund(charge); err != nil {
			fmt.Fprintln(os.Stderr, "privelet: refund:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privelet:", err)
	os.Exit(1)
}
