// Command privelet publishes a differentially-private frequency matrix
// from a CSV table.
//
// The input CSV has one integer column per attribute (values are domain
// indices, 0-based) and no header. The schema is described on the command
// line, one clause per column:
//
//	Age:ordinal:101              ordinal attribute, domain size 101
//	Gender:nominal:flat:2        nominal, flat hierarchy with 2 leaves
//	Occ:nominal:3level:16x32     nominal, 3-level hierarchy 16 groups × 32
//
// Example:
//
//	privelet -schema "Age:ordinal:101,Gender:nominal:flat:2" \
//	         -epsilon 1.0 -sa Gender -in data.csv -out noisy.csv
//
// The output CSV has one row per frequency-matrix entry with the entry's
// coordinates followed by its noisy count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	privelet "repro"
	"repro/internal/cli"
)

func main() {
	var (
		schemaSpec = flag.String("schema", "", "comma-separated attribute clauses (see package doc)")
		epsilon    = flag.Float64("epsilon", 1.0, "privacy budget ε")
		saFlag     = flag.String("sa", "", "comma-separated SA attribute names (Privelet+); 'auto' applies Corollary 1")
		seed       = flag.Uint64("seed", 1, "noise seed (deterministic releases)")
		inPath     = flag.String("in", "", "input CSV (default stdin)")
		outPath    = flag.String("out", "", "output CSV (default stdout)")
		sanitize   = flag.Bool("sanitize", false, "round the release to non-negative integers")
		basic      = flag.Bool("basic", false, "use Dwork et al.'s Basic mechanism instead")
		workers    = flag.Int("parallelism", 0, "publish worker goroutines (0 = all cores); never changes the release")
	)
	flag.Parse()

	if *schemaSpec == "" {
		fatal(fmt.Errorf("-schema is required"))
	}
	schema, err := cli.ParseSchema(*schemaSpec)
	if err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	table, err := cli.ReadTable(schema, in)
	if err != nil {
		fatal(err)
	}

	var rel *privelet.Release
	if *basic {
		rel, err = privelet.PublishBasic(table, *epsilon, *seed)
	} else {
		sa := cli.SplitNonEmpty(*saFlag)
		if len(sa) == 1 && sa[0] == "auto" {
			sa, err = privelet.RecommendSA(schema)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "privelet: auto SA = %v\n", sa)
		}
		rel, err = privelet.Publish(table, privelet.Options{
			Epsilon: *epsilon, SA: sa, Seed: *seed, Sanitize: *sanitize, Parallelism: *workers,
		})
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "privelet: %s (n=%d)\n", rel, table.Len())

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}
	if err := writeMatrixCSV(out, rel.Matrix()); err != nil {
		fatal(err)
	}
}

// writeMatrixCSV emits coordinates plus noisy count per entry.
func writeMatrixCSV(w io.Writer, m *privelet.Matrix) error {
	bw := bufio.NewWriter(w)
	d := m.NumDims()
	coords := make([]int, d)
	data := m.Data()
	for off := range data {
		m.Coords(off, coords)
		for _, c := range coords {
			fmt.Fprintf(bw, "%d,", c)
		}
		fmt.Fprintf(bw, "%g\n", data[off])
	}
	return bw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "privelet:", err)
	os.Exit(1)
}
