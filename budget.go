package privelet

import "repro/internal/ledger"

// Ledger tracks per-tenant ε budgets across repeated publishes,
// enforcing sequential composition: every successful publish debits its
// ε, refunds return a failed publish's debit, and a charge that would
// push a tenant past its budget is refused with ErrBudgetExhausted.
// Accounting is exact (integer multiples of 10⁻⁶ ε), so balances never
// depend on charge ordering. See internal/ledger for the full contract,
// including the durable mode's crash-ordering guarantees.
type Ledger = ledger.Ledger

// BudgetCharge is the token a successful Ledger.Charge returns; hand it
// to Ledger.Refund when the publish it paid for fails.
type BudgetCharge = ledger.Charge

// BudgetBalance is one tenant's budget position as reported by
// Ledger.Balance.
type BudgetBalance = ledger.Balance

// ErrBudgetExhausted is the typed refusal a Ledger returns (wrapped)
// when a charge would exceed a tenant's budget. Test with errors.Is.
var ErrBudgetExhausted = ledger.ErrBudgetExhausted

// NewLedger builds a privacy-budget ledger. Every tenant starts with
// defaultBudget ε (≤ 0 = unlimited: spend is tracked, never refused);
// Ledger.Grant overrides per tenant. A non-empty dir makes the ledger
// durable: balances are written through on every charge/refund (atomic
// tmp+rename, like the release store's spill files) and recovered here,
// so a budget refusal survives a process restart.
func NewLedger(dir string, defaultBudget float64) (*Ledger, error) {
	return ledger.New(ledger.Config{Dir: dir, DefaultBudget: defaultBudget})
}
