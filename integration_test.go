package privelet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	privelet "repro"
	"repro/internal/baseline"
	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/marginal"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/variance"
	"repro/internal/workload"
)

// TestBasicEqualsSAAllBitForBit pins the design claim of DESIGN.md §4.5:
// Privelet+ with SA = all attributes IS the Basic mechanism — identical
// noise draws, identical release, given the same seed.
func TestBasicEqualsSAAllBitForBit(t *testing.T) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 5_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	viaCore, err := core.PublishMatrix(context.Background(), m, tbl.Schema(), core.Options{
		Epsilon: 0.7,
		SA:      []string{"Age", "Gender", "Occupation", "Income"},
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	viaBaseline, err := baseline.Basic(context.Background(), m, 0.7, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !viaCore.Noisy.AlmostEqual(viaBaseline.Noisy, 0) {
		t.Fatal("core SA=all and baseline.Basic diverge; they must be the same mechanism")
	}
	if viaCore.Lambda != viaBaseline.Magnitude {
		t.Fatalf("lambda %v vs magnitude %v", viaCore.Lambda, viaBaseline.Magnitude)
	}
}

// TestCSVToServerToExportToLibrary walks the full deployment pipeline:
// generate data → CSV → HTTP publish → count → binary export →
// privelet.Load → identical counts offline.
func TestCSVToServerToExportToLibrary(t *testing.T) {
	// 1. Generate a table and serialize it to CSV (cli round trip).
	tbl, err := dataset.GenerateCensus(dataset.USSpec(dataset.ScaleSmall), 2_000, 8)
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := cli.WriteTableCSV(&csv, tbl); err != nil {
		t.Fatal(err)
	}
	spec := dataset.USSpec(dataset.ScaleSmall)
	schemaClause := "Age:ordinal:" + itoa(spec.AgeSize) +
		",Gender:nominal:flat:2" +
		",Occupation:nominal:3level:" + itoa(spec.OccGroups) + "x" + itoa(spec.OccPerGroup) +
		",Income:ordinal:" + itoa(spec.IncomeSize)

	// 2. Publish through the HTTP server.
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	resp, err := http.Post(
		ts.URL+"/publish?schema="+schemaClause+"&epsilon=1&sa=Age,Gender&seed=12",
		"text/csv", bytes.NewReader(csv.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sum)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// 3. Count over HTTP.
	resp, err = http.Get(ts.URL + "/releases/" + sum.ID + "/count?q=Age=0..29,Occupation=@g2")
	if err != nil {
		t.Fatal(err)
	}
	var counted struct {
		Count float64 `json:"count"`
	}
	err = json.NewDecoder(resp.Body).Decode(&counted)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// 4. Export the binary payload and load it with the library.
	resp, err = http.Get(ts.URL + "/releases/" + sum.ID + "/export")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := privelet.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	// 5. The offline count must match the server's bit for bit.
	q, err := rel.NewQuery().Range("Age", 0, 29).Node("Occupation", "g2").Build()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := rel.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(offline-counted.Count) > 1e-9 {
		t.Fatalf("offline count %v != server count %v", offline, counted.Count)
	}
}

// TestMarginalMatchesProjectionOfRelease: projecting at huge ε must agree
// with the directly published marginal at huge ε (both ≈ exact).
func TestMarginalMatchesProjectionOfRelease(t *testing.T) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 3_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	exactProj, _, err := marginal.Project(m, tbl.Schema(), []string{"Age", "Occupation"})
	if err != nil {
		t.Fatal(err)
	}
	rels, err := marginal.PublishSet(context.Background(), tbl, [][]string{{"Age", "Occupation"}}, marginal.Options{
		Epsilon: 1e9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rels[0].Noisy.AlmostEqual(exactProj, 1e-2) {
		d, _ := rels[0].Noisy.MaxAbsDiff(exactProj)
		t.Fatalf("marginal differs from projection by %v at huge epsilon", d)
	}
}

// TestVarianceAnalyzerOnCensusWorkload cross-validates the exact-variance
// analyzer on the real 4-attribute census schema against Monte Carlo, at
// one fixed query (the full MC sweep lives in internal/variance).
func TestVarianceAnalyzerOnCensusWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	schema, err := dataset.BrazilSpec(dataset.ScaleSmall).Schema()
	if err != nil {
		t.Fatal(err)
	}
	sa := []string{"Age", "Gender"}
	q, err := query.NewBuilder(schema).
		Range("Age", 10, 20).
		Node("Occupation", "g1").
		Range("Income", 0, 31).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	an, err := variance.NewAnalyzer(schema, 1.0, sa)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := an.QueryVariance(q)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := dataset.NewTable(schema).FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	const trials = 250
	var sumSq float64
	for i := 0; i < trials; i++ {
		res, err := core.PublishMatrix(context.Background(), zero, schema, core.Options{Epsilon: 1.0, SA: sa, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		v, err := q.Eval(res.Noisy)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += v * v
	}
	mc := sumSq / trials
	if rel := math.Abs(mc-exact) / exact; rel > 0.25 { // 250-trial MC noise
		t.Fatalf("exact %v vs MC %v (gap %.3f)", exact, mc, rel)
	}
}

// TestWorkloadErrorTracksExactVariance: across SA choices, the empirical
// mean square error of a real workload must rank configurations in the
// same order as the analyzer's mean exact variance.
func TestWorkloadErrorTracksExactVariance(t *testing.T) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 20_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	schema := tbl.Schema()
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	truth := query.NewEvaluator(m)
	gen, err := workload.NewGenerator(schema, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(800, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}

	type config struct {
		sa       []string
		exact    float64
		measured float64
	}
	configs := []config{
		{sa: nil},
		{sa: []string{"Age", "Gender", "Income"}},
	}
	for ci := range configs {
		an, err := variance.NewAnalyzer(schema, 1.0, configs[ci].sa)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := an.Workload(queries)
		if err != nil {
			t.Fatal(err)
		}
		configs[ci].exact = stats.Mean

		res, err := core.PublishMatrix(context.Background(), m, schema, core.Options{Epsilon: 1.0, SA: configs[ci].sa, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		ev := query.NewEvaluator(res.Noisy)
		var total float64
		for _, q := range queries {
			act, err := truth.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ev.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			total += workload.SquareError(got, act)
		}
		configs[ci].measured = total / float64(len(queries))
	}
	if (configs[0].exact < configs[1].exact) != (configs[0].measured < configs[1].measured) {
		t.Fatalf("exact-variance ranking disagrees with measured MSE: %+v", configs)
	}
}

// TestCodecCrossesToolBoundaries: a payload written by the library decodes
// in the codec package and vice versa (guards against drift between the
// Release wrapper and the raw codec).
func TestCodecCrossesToolBoundaries(t *testing.T) {
	tbl, err := dataset.MedicalExample()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := privelet.Publish(tbl, privelet.Options{Epsilon: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rel.Save(&buf); err != nil {
		t.Fatal(err)
	}
	payload, err := codec.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if payload.Meta.Epsilon != 2 || payload.Meta.Mechanism != "privelet+" {
		t.Fatalf("meta = %+v", payload.Meta)
	}
	if payload.Noisy.Len() != rel.Matrix().Len() {
		t.Fatal("matrix size drift between Release and codec")
	}
}

// TestReadTableRejectsDataOutsideSchema is failure-injection for the
// ingestion boundary: a CSV valid under one schema must be rejected under
// a narrower one.
func TestReadTableRejectsDataOutsideSchema(t *testing.T) {
	wide, err := cli.ParseSchema("A:ordinal:100")
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := cli.ParseSchema("A:ordinal:10")
	if err != nil {
		t.Fatal(err)
	}
	csv := "5\n50\n"
	if _, err := cli.ReadTable(wide, strings.NewReader(csv)); err != nil {
		t.Fatalf("wide schema should accept: %v", err)
	}
	if _, err := cli.ReadTable(narrow, strings.NewReader(csv)); err == nil {
		t.Fatal("narrow schema should reject value 50")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
