package privelet_test

import (
	"math"
	"strings"
	"testing"

	privelet "repro"
	"repro/internal/dataset"
)

func exampleTable(t testing.TB) *privelet.Table {
	t.Helper()
	tbl, err := dataset.MedicalExample()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestPublicSchemaConstruction(t *testing.T) {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	occ, err := privelet.ThreeLevelHierarchy(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 32),
		privelet.NominalAttr("Gender", gender),
		privelet.NominalAttr("Occupation", occ),
	)
	if err != nil {
		t.Fatal(err)
	}
	if schema.DomainSize() != 32*2*16 {
		t.Fatalf("DomainSize = %d", schema.DomainSize())
	}
	tbl := privelet.NewTable(schema)
	if err := tbl.Append(10, 1, 7); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatal("Append failed")
	}
}

func TestBuildHierarchyPublic(t *testing.T) {
	root := &privelet.HierarchyNode{Label: "Any", Children: []*privelet.HierarchyNode{
		{Label: "a"}, {Label: "b"},
	}}
	h, err := privelet.BuildHierarchy(root)
	if err != nil {
		t.Fatal(err)
	}
	if h.LeafCount() != 2 {
		t.Fatal("BuildHierarchy wrong leaf count")
	}
}

func TestPublishAndCount(t *testing.T) {
	tbl := exampleTable(t)
	rel, err := privelet.Publish(tbl, privelet.Options{Epsilon: 1e9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Near-noiseless: the intro query (diabetes, age < 50) answers 1.
	q, err := rel.NewQuery().Range("Age", 0, 2).Leaf("HasDiabetes", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-3 {
		t.Fatalf("Count = %v, want ~1", got)
	}
	if rel.Mechanism() != "privelet+" {
		t.Errorf("Mechanism = %q", rel.Mechanism())
	}
	if rel.Epsilon() != 1e9 {
		t.Errorf("Epsilon = %v", rel.Epsilon())
	}
	if rel.Sensitivity() <= 0 || rel.Lambda() <= 0 || rel.VarianceBound() <= 0 {
		t.Error("accounting fields not populated")
	}
	if rel.Schema() != tbl.Schema() {
		t.Error("Schema accessor broken")
	}
	if !strings.Contains(rel.String(), "privelet+") {
		t.Errorf("String() = %q", rel.String())
	}
}

func TestPublishBasicPublic(t *testing.T) {
	tbl := exampleTable(t)
	rel, err := privelet.PublishBasic(tbl, 1e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Mechanism() != "basic" {
		t.Errorf("Mechanism = %q", rel.Mechanism())
	}
	if rel.Sensitivity() != 1 {
		t.Errorf("Sensitivity = %v, want 1", rel.Sensitivity())
	}
	q, err := rel.NewQuery().Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rel.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8) > 1e-3 {
		t.Fatalf("full-domain count = %v, want ~8", got)
	}
}

func TestPublishSanitize(t *testing.T) {
	tbl := exampleTable(t)
	rel, err := privelet.Publish(tbl, privelet.Options{Epsilon: 0.5, Seed: 3, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rel.Matrix().Data() {
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("Sanitize left value %v", v)
		}
	}
}

func TestPublishValidationPublic(t *testing.T) {
	tbl := exampleTable(t)
	if _, err := privelet.Publish(tbl, privelet.Options{Epsilon: 0}); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := privelet.Publish(tbl, privelet.Options{Epsilon: 1, SA: []string{"ghost"}}); err == nil {
		t.Error("unknown SA should fail")
	}
	if _, err := privelet.PublishBasic(tbl, -1, 0); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestPublishHistogramPublic(t *testing.T) {
	hist, err := privelet.PublishHistogram([]float64{5, 10, 15, 20}, 1e9, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 10, 15, 20}
	for i := range want {
		if math.Abs(hist[i]-want[i]) > 1e-3 {
			t.Fatalf("histogram[%d] = %v, want ~%v", i, hist[i], want[i])
		}
	}
	if _, err := privelet.PublishHistogram(nil, 1, 0); err == nil {
		t.Error("empty histogram should fail")
	}
}

func TestRecommendSAPublic(t *testing.T) {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Big", 4096),
		privelet.NominalAttr("Gender", gender),
	)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := privelet.RecommendSA(schema)
	if err != nil {
		t.Fatal(err)
	}
	// Gender (2 ≤ 2²·4) qualifies; Big (4096 > 13²·7) does not.
	if len(sa) != 1 || sa[0] != "Gender" {
		t.Fatalf("RecommendSA = %v, want [Gender]", sa)
	}
}

func TestReleaseCountMatchesMatrixEval(t *testing.T) {
	tbl := exampleTable(t)
	rel, err := privelet.Publish(tbl, privelet.Options{Epsilon: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	q, err := rel.NewQuery().Range("Age", 1, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := rel.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := q.Eval(rel.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-slow) > 1e-9 {
		t.Fatalf("prefix count %v != naive %v", fast, slow)
	}
}
