package privelet_test

import (
	"fmt"
	"log"

	privelet "repro"
)

// Example demonstrates the end-to-end flow: schema, table, publish,
// query. A huge ε keeps the output deterministic for the doc test.
func Example() {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 8),
		privelet.NominalAttr("Gender", gender),
	)
	if err != nil {
		log.Fatal(err)
	}
	table := privelet.NewTable(schema)
	for _, row := range [][2]int{{1, 0}, {2, 1}, {2, 0}, {5, 1}, {7, 0}} {
		if err := table.Append(row[0], row[1]); err != nil {
			log.Fatal(err)
		}
	}
	rel, err := privelet.Publish(table, privelet.Options{
		Epsilon:  1e12, // effectively noiseless, for a stable example
		Seed:     1,
		Sanitize: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	q, err := rel.NewQuery().Range("Age", 0, 3).Build()
	if err != nil {
		log.Fatal(err)
	}
	count, err := rel.Count(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("people with age < 4: %.0f\n", count)
	// Output: people with age < 4: 3
}

// ExampleRecommendSA shows Corollary 1's SA rule on a mixed schema.
func ExampleRecommendSA() {
	gender, err := privelet.FlatHierarchy(2)
	if err != nil {
		log.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Income", 4096),
		privelet.NominalAttr("Gender", gender),
	)
	if err != nil {
		log.Fatal(err)
	}
	sa, err := privelet.RecommendSA(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sa)
	// Output: [Gender]
}

// ExampleNewAnalyzer computes an exact per-query noise variance without
// publishing anything.
func ExampleNewAnalyzer() {
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("Age", 16))
	if err != nil {
		log.Fatal(err)
	}
	an, err := privelet.NewAnalyzer(schema, 1.0, nil)
	if err != nil {
		log.Fatal(err)
	}
	q, err := privelet.NewQueryBuilder(schema).Range("Age", 0, 15).Build()
	if err != nil {
		log.Fatal(err)
	}
	v, err := an.QueryVariance(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact variance: %.0f (worst-case bound: 600)\n", v)
	// Output: exact variance: 200 (worst-case bound: 600)
}
