package privelet_test

// The cross-mechanism serving property (the answer-path determinism
// contract, extended to PR 6's streaming and caching modes): for every
// registered mechanism, the buffered batch, the streamed batch at
// several chunk sizes, and the cached batch all answer float64 == to a
// serial Count loop, at every worker count. Chunking, caching, and
// pooling reorder only computation — never an answer.

import (
	"context"
	"runtime"
	"strings"
	"testing"

	privelet "repro"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestServingPathsAgreeAcrossMechanisms(t *testing.T) {
	for _, mech := range privelet.Mechanisms() {
		if strings.HasPrefix(mech, "test-") {
			// Throwaway mechanisms other tests registered (the registry
			// is process-global); they fail or cancel by design.
			continue
		}
		t.Run(mech, func(t *testing.T) {
			// hay is one-dimensional by construction; give it its own schema.
			var schema *privelet.Schema
			var err error
			if mech == "hay" {
				schema, err = privelet.NewSchema(privelet.OrdinalAttr("Age", 16))
			} else {
				var occ *privelet.Hierarchy
				occ, err = privelet.ThreeLevelHierarchy(2, 3)
				if err != nil {
					t.Fatal(err)
				}
				schema, err = privelet.NewSchema(
					privelet.OrdinalAttr("Age", 16),
					privelet.NominalAttr("Occ", occ),
				)
			}
			if err != nil {
				t.Fatal(err)
			}
			pub, err := privelet.NewPublisher(schema)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 600; i++ {
				row := []int{(i * 7) % 16, (i * 5) % 6}[:schema.NumAttrs()]
				if err := pub.Add(row...); err != nil {
					t.Fatal(err)
				}
			}
			rel, err := pub.Publish(context.Background(), mech, privelet.Params{Epsilon: 1, Seed: 23})
			if err != nil {
				t.Fatal(err)
			}

			dims := 2
			if schema.NumAttrs() == 1 {
				dims = 1
			}
			gen, err := workload.NewGenerator(schema, dims)
			if err != nil {
				t.Fatal(err)
			}
			queries, err := gen.Queries(1500, rng.New(29))
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(queries))
			for i, q := range queries {
				if want[i], err = rel.Count(q); err != nil {
					t.Fatal(err)
				}
			}

			check := func(label string, got []float64) {
				t.Helper()
				if len(got) != len(want) {
					t.Fatalf("%s: %d answers, want %d", label, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: answer %d = %v, serial Count gave %v", label, i, got[i], want[i])
					}
				}
			}

			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				// Buffered.
				got, err := rel.CountBatch(context.Background(), queries, workers)
				if err != nil {
					t.Fatal(err)
				}
				check("buffered", got)

				// Streamed, at an awkward chunk size and the default.
				for _, chunk := range []int{37, 0} {
					var streamed []float64
					sink := func(a []float64) error {
						streamed = append(streamed, a...)
						return nil
					}
					var n int
					if chunk == 0 {
						n, err = rel.CountStream(context.Background(), query.SliceSource(queries), sink, workers)
					} else {
						// The chunk-size knob lives on the internal Batch; the
						// public CountStream always uses the default.
						ev := queryEval(t, rel, queries[0])
						n, err = query.Batch{Eval: ev, Workers: workers, ChunkSize: chunk}.
							ExecuteStream(context.Background(), query.SliceSource(queries), sink)
					}
					if err != nil {
						t.Fatalf("streamed chunk=%d: %v", chunk, err)
					}
					if n != len(want) {
						t.Fatalf("streamed chunk=%d: delivered %d, want %d", chunk, n, len(want))
					}
					check("streamed", streamed)
				}

				// Cached: two passes through a fresh cache (all-miss, then
				// all-hit) must both match.
				cb := query.Batch{
					Eval: queryEval(t, rel, queries[0]), Workers: workers,
					Cache: query.NewAnswerCache(1<<15, nil), Schema: schema,
				}
				for pass := 0; pass < 2; pass++ {
					got, err := cb.Execute(context.Background(), queries)
					if err != nil {
						t.Fatal(err)
					}
					check("cached", got)
				}
			}
		})
	}
}

// queryEval digs the release's evaluator out via a probe answer — the
// public surface does not export it, and the internal Batch needs one.
// Building a fresh evaluator over the release's matrix is equivalent:
// the evaluator is a pure function of the noisy matrix.
func queryEval(t *testing.T, rel *privelet.Release, probe privelet.Query) *query.Evaluator {
	t.Helper()
	ev := query.NewEvaluator(rel.Matrix())
	a, err := ev.Count(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rel.Count(probe)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("rebuilt evaluator disagrees with the release: %v vs %v", a, b)
	}
	return ev
}
