package privelet_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	privelet "repro"
)

// saboteurMech fails every publish after the charge has been taken —
// the mechanism-level analogue of PR 4's saboteur kernel, for proving
// the charge is refunded.
type saboteurMech struct{}

func (saboteurMech) Name() string { return "test-saboteur" }
func (saboteurMech) Publish(context.Context, *privelet.Frequency, privelet.Params) (*privelet.Result, error) {
	return nil, fmt.Errorf("saboteur: induced mechanism failure")
}

// cancelKey smuggles a CancelFunc to selfCancelMech through the publish
// context, so the cancellation fires mid-flight — after the charge,
// inside the mechanism — and is observed by the engine's existing
// chunk-granular ctx plumbing.
type cancelKey struct{}

type selfCancelMech struct{}

func (selfCancelMech) Name() string { return "test-self-cancel" }
func (selfCancelMech) Publish(ctx context.Context, f *privelet.Frequency, p privelet.Params) (*privelet.Result, error) {
	if fn, ok := ctx.Value(cancelKey{}).(context.CancelFunc); ok {
		fn()
	}
	real, err := privelet.MechanismByName("privelet+")
	if err != nil {
		return nil, err
	}
	return real.Publish(ctx, f, p)
}

var registerTestMechs = sync.OnceFunc(func() {
	for _, m := range []privelet.Mechanism{saboteurMech{}, selfCancelMech{}} {
		if err := privelet.RegisterMechanism(m); err != nil {
			panic(err)
		}
	}
})

func continualSchema(t *testing.T) *privelet.Schema {
	t.Helper()
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("Age", 8))
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func fullDomainCount(t *testing.T, rel *privelet.Release) float64 {
	t.Helper()
	q, err := rel.NewQuery().Range("Age", 0, 7).Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := rel.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLedgerContinualSlidingWindow feeds a stream through a Window=4
// Continual at a near-noiseless ε and checks that each automatic epoch
// covers exactly the last 4 rows — the sliding-window subtraction — and
// that every epoch debited the ledger once with ascending epoch numbers.
func TestLedgerContinualSlidingWindow(t *testing.T) {
	led, err := privelet.NewLedger("", 0) // unlimited
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e6 // λ = 2/ε ≈ 0: counts are near-exact
	c, err := privelet.NewContinual(continualSchema(t), privelet.ContinualOptions{
		Tenant: "alice",
		Ledger: led,
		Params: privelet.Params{Epsilon: eps, Seed: 7},
		Window: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var epochs []*privelet.Epoch
	for i := 0; i < 10; i++ {
		ep, err := c.Add(context.Background(), i%8)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if ep != nil {
			epochs = append(epochs, ep)
		}
	}
	if len(epochs) != 2 { // rows 4 and 8
		t.Fatalf("auto-republished %d times, want 2", len(epochs))
	}
	for i, ep := range epochs {
		if ep.Tenant != "alice" || ep.Epoch != uint64(i+1) {
			t.Fatalf("epoch[%d] = %s/%d", i, ep.Tenant, ep.Epoch)
		}
		if want := fmt.Sprintf("alice/%d", i+1); ep.ID() != want {
			t.Fatalf("epoch ID = %q, want %q", ep.ID(), want)
		}
		// Near-noiseless: the full-domain count is the window size.
		if got := fullDomainCount(t, ep.Release); math.Abs(got-4) > 1e-3 {
			t.Fatalf("epoch %d window count = %v, want ~4", i+1, got)
		}
	}
	if c.Rows() != 10 || c.WindowRows() != 4 {
		t.Fatalf("Rows = %d, WindowRows = %d", c.Rows(), c.WindowRows())
	}
	if b := led.Balance("alice"); b.Spent != 2*eps {
		t.Fatalf("Spent = %v, want %v", b.Spent, 2*eps)
	}

	// The window really slid: after 10 rows of i%8, the last 4 rows are
	// values 6,7,0,1 — a [2,5] range query over the window must be ~0.
	ep, err := c.Republish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q, err := ep.Release.NewQuery().Range("Age", 2, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	mid, err := ep.Release.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mid) > 1e-3 {
		t.Fatalf("evicted rows still counted: [2,5] = %v, want ~0", mid)
	}
}

// TestLedgerContinualExhaustion runs a finite budget dry: republishes
// succeed while sequential composition has room, the first over-budget
// attempt is refused with the typed error, ingest keeps working, and
// the refusal repeats deterministically.
func TestLedgerContinualExhaustion(t *testing.T) {
	led, err := privelet.NewLedger("", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := privelet.NewContinual(continualSchema(t), privelet.ContinualOptions{
		Tenant: "bob",
		Ledger: led,
		Params: privelet.Params{Epsilon: 0.2, Seed: 3},
		Window: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	published, refused := 0, 0
	for i := 0; i < 12; i++ {
		ep, err := c.Add(context.Background(), i%8)
		switch {
		case errors.Is(err, privelet.ErrBudgetExhausted):
			refused++
		case err != nil:
			t.Fatalf("row %d: %v", i, err)
		case ep != nil:
			published++
		}
	}
	// 12 rows / window 2 = 6 attempts; 0.5/0.2 = 2 fit.
	if published != 2 || refused != 4 {
		t.Fatalf("published %d, refused %d; want 2 and 4", published, refused)
	}
	if got := led.Remaining("bob"); got != 0.1 {
		t.Fatalf("Remaining = %v, want exactly 0.1", got)
	}
	// On-demand republish is refused the same way — refusals never
	// flicker into acceptance.
	if _, err := c.Republish(context.Background()); !errors.Is(err, privelet.ErrBudgetExhausted) {
		t.Fatalf("Republish err = %v, want ErrBudgetExhausted", err)
	}
}

// TestLedgerRepublishRefundOnFailure is the failure-refund regression:
// a publish that fails after its charge (saboteur mechanism) or is
// cancelled mid-flight (ctx observed by the engine's chunk plumbing)
// must leave the balance bit-identical to before — no budget leaks.
func TestLedgerRepublishRefundOnFailure(t *testing.T) {
	registerTestMechs()
	schema := continualSchema(t)
	led, err := privelet.NewLedger("", 1)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := pub.Add(i); err != nil {
			t.Fatal(err)
		}
	}
	before := led.Balance("carol")

	// Saboteur: the mechanism errors after the charge.
	if _, err := pub.Republish(context.Background(), "test-saboteur",
		privelet.Params{Epsilon: 0.4, Seed: 1}, led, "carol"); err == nil {
		t.Fatal("saboteur publish succeeded")
	}
	if got := led.Balance("carol"); got != before {
		t.Fatalf("saboteur leaked budget: %+v, want %+v", got, before)
	}

	// Cancellation: the context dies inside the mechanism, the engine
	// aborts at a chunk boundary, and the charge comes back.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = context.WithValue(ctx, cancelKey{}, cancel)
	_, err = pub.Republish(ctx, "test-self-cancel",
		privelet.Params{Epsilon: 0.4, Seed: 1}, led, "carol")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled publish err = %v, want context.Canceled", err)
	}
	if got := led.Balance("carol"); got != before {
		t.Fatalf("cancelled publish leaked budget: %+v, want %+v", got, before)
	}

	// The refunded budget is genuinely spendable: a real publish of the
	// full remaining budget still fits.
	if _, err := pub.Republish(context.Background(), "privelet+",
		privelet.Params{Epsilon: 1, Seed: 1}, led, "carol"); err != nil {
		t.Fatalf("full-budget publish after refunds: %v", err)
	}
	if got := led.Remaining("carol"); got != 0 {
		t.Fatalf("Remaining = %v, want 0", got)
	}
}

// TestLedgerRepublishValidatesBeforeCharge: a request the mechanism
// would reject anyway must not touch the ledger — neither as a charge
// nor as a refusal.
func TestLedgerRepublishValidatesBeforeCharge(t *testing.T) {
	led, err := privelet.NewLedger("", 1)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(continualSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Republish(context.Background(), "no-such-mech",
		privelet.Params{Epsilon: 0.5}, led, "dave"); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if _, err := pub.Republish(context.Background(), "privelet",
		privelet.Params{Epsilon: 0.5, SA: []string{"Age"}}, led, "dave"); err == nil {
		t.Fatal("invalid params accepted")
	}
	if st := led.Stats(); st.Charges != 0 || st.Refusals != 0 || st.Refunds != 0 {
		t.Fatalf("invalid requests touched the ledger: %+v", st)
	}
}
