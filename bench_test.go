// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VII), plus ablations for the design choices DESIGN.md
// calls out. Each BenchmarkFigureN runs the corresponding experiment at a
// bench-sized profile and reports headline metrics via b.ReportMetric;
// cmd/experiments prints the full series at larger profiles.
package privelet_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	privelet "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/haar"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/nominal"
	"repro/internal/privacy"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/transform"
	"repro/internal/workload"
)

// benchProfile is a scaled-down experiment profile so `go test -bench=.`
// finishes in minutes. The series' shape (who wins, where the crossover
// falls) is preserved; see EXPERIMENTS.md for medium-profile numbers.
func benchProfile() experiment.Profile {
	return experiment.Profile{
		Name: "bench", Scale: dataset.ScaleSmall,
		Tuples: 30_000, Queries: 2_000,
		Epsilons: []float64{0.5, 1.0},
		Bins:     5, Seed: 4242, SA: []string{"Age", "Gender"},
	}
}

// reportAccuracy surfaces the figure's headline numbers: Basic's and
// Privelet+'s error in the top-coverage (or top-selectivity) bin at the
// smallest ε, and their ratio.
func reportAccuracy(b *testing.B, res *experiment.AccuracyResult) {
	b.Helper()
	rows := res.Series[0].Rows
	top := rows[len(rows)-1]
	b.ReportMetric(top.Basic, "basic-top-bin-err")
	b.ReportMetric(top.Privelet, "privelet-top-bin-err")
	if top.Privelet > 0 {
		b.ReportMetric(top.Basic/top.Privelet, "basic/privelet")
	}
}

// --- Table III -------------------------------------------------------

func BenchmarkTable3DomainSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiment.WriteTableIII(io.Discard, dataset.ScaleFull); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 6-9: accuracy -------------------------------------------

func benchAccuracy(b *testing.B, spec dataset.CensusSpec, metric experiment.Metric) {
	b.Helper()
	prof := benchProfile()
	var last *experiment.AccuracyResult
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunAccuracy(spec, prof, metric)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportAccuracy(b, last)
}

func BenchmarkFigure6(b *testing.B) {
	benchAccuracy(b, dataset.BrazilSpec(dataset.ScaleSmall), experiment.SquareErrorByCoverage)
}

func BenchmarkFigure7(b *testing.B) {
	benchAccuracy(b, dataset.USSpec(dataset.ScaleSmall), experiment.SquareErrorByCoverage)
}

func BenchmarkFigure8(b *testing.B) {
	benchAccuracy(b, dataset.BrazilSpec(dataset.ScaleSmall), experiment.RelativeErrorBySelectivity)
}

func BenchmarkFigure9(b *testing.B) {
	benchAccuracy(b, dataset.USSpec(dataset.ScaleSmall), experiment.RelativeErrorBySelectivity)
}

// --- Figures 10-11: computation time ---------------------------------

func BenchmarkFigure10TimeVsN(b *testing.B) {
	var last *experiment.TimingResult
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTimingVsN(1<<14, []int{20_000, 40_000, 60_000}, 99)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Linearity check metric: time(3x)/time(1x) should be near 3 for a
	// mechanism linear in n (frequency-matrix construction dominates at
	// fixed m).
	first, lastPt := last.Points[0], last.Points[len(last.Points)-1]
	b.ReportMetric(float64(lastPt.Privelet)/float64(first.Privelet), "privelet-scale-ratio")
	b.ReportMetric(float64(lastPt.Basic)/float64(first.Basic), "basic-scale-ratio")
}

func BenchmarkFigure11TimeVsM(b *testing.B) {
	var last *experiment.TimingResult
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunTimingVsM(20_000, []int{1 << 12, 1 << 14, 1 << 16}, 98)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	first, lastPt := last.Points[0], last.Points[len(last.Points)-1]
	b.ReportMetric(float64(lastPt.Privelet)/float64(first.Privelet), "privelet-scale-ratio")
	b.ReportMetric(float64(lastPt.M)/float64(first.M), "m-scale-ratio")
}

// --- §V-D / §VI-D worked examples as measured ablations ---------------

// BenchmarkAblationNominalVsHaar measures the §V-D claim: empirical
// subtree-query noise variance of the nominal transform vs the HWT on
// the imposed order, on a 64-leaf, height-3 hierarchy at ε=1.
func BenchmarkAblationNominalVsHaar(b *testing.B) {
	h, err := hierarchy.ThreeLevel(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	s := dataset.MustSchema(dataset.NominalAttr("Occ", h))
	m := matrix.MustNew(64)
	q, err := query.NewBuilder(s).Node("Occ", "g0").Build()
	if err != nil {
		b.Fatal(err)
	}
	const trials = 200
	var hwtVar, nomVar float64
	for i := 0; i < b.N; i++ {
		var hwtSq, nomSq float64
		for t := 0; t < trials; t++ {
			seed := uint64(i*trials + t)
			hres, err := baseline.HWTOrdinalized(m, s, 1.0, seed)
			if err != nil {
				b.Fatal(err)
			}
			hv, err := q.Eval(hres.Noisy)
			if err != nil {
				b.Fatal(err)
			}
			hwtSq += hv * hv
			nres, err := core.PublishMatrix(context.Background(), m, s, core.Options{Epsilon: 1.0, Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			nv, err := q.Eval(nres.Noisy)
			if err != nil {
				b.Fatal(err)
			}
			nomSq += nv * nv
		}
		hwtVar = hwtSq / trials
		nomVar = nomSq / trials
	}
	b.ReportMetric(hwtVar, "hwt-variance")
	b.ReportMetric(nomVar, "nominal-variance")
	b.ReportMetric(hwtVar/nomVar, "hwt/nominal")
	b.ReportMetric(privacy.HaarVarianceBound(1, 64), "hwt-bound")
	b.ReportMetric(privacy.NominalVarianceBound(1, 3), "nominal-bound")
}

// BenchmarkAblationSmallDomain measures §VI-D: on |A| = 16, Basic beats
// Privelet — the motivation for Privelet+'s SA set.
func BenchmarkAblationSmallDomain(b *testing.B) {
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 16))
	m := matrix.MustNew(16)
	q, err := query.NewBuilder(s).Range("A", 0, 15).Build()
	if err != nil {
		b.Fatal(err)
	}
	const trials = 300
	var basicVar, privVar float64
	for i := 0; i < b.N; i++ {
		var basicSq, privSq float64
		for t := 0; t < trials; t++ {
			seed := uint64(i*trials + t)
			bres, err := baseline.Basic(context.Background(), m, 1.0, seed, 1)
			if err != nil {
				b.Fatal(err)
			}
			bv, err := q.Eval(bres.Noisy)
			if err != nil {
				b.Fatal(err)
			}
			basicSq += bv * bv
			pres, err := core.PublishMatrix(context.Background(), m, s, core.Options{Epsilon: 1.0, Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			pv, err := q.Eval(pres.Noisy)
			if err != nil {
				b.Fatal(err)
			}
			privSq += pv * pv
		}
		basicVar = basicSq / trials
		privVar = privSq / trials
	}
	b.ReportMetric(basicVar, "basic-variance")
	b.ReportMetric(privVar, "privelet-variance")
}

// BenchmarkAblationMeanSubtraction quantifies the §V-B refinement: noise
// variance of subtree queries with and without the mean-subtraction step.
func BenchmarkAblationMeanSubtraction(b *testing.B) {
	h, err := hierarchy.ThreeLevel(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := nominal.New(h)
	if err != nil {
		b.Fatal(err)
	}
	w := tr.Weights()
	lambda := 2.0 * tr.GeneralizedSensitivity() // λ at ε=1
	src := rng.New(777)
	const trials = 400
	var withVar, withoutVar float64
	for i := 0; i < b.N; i++ {
		var withSq, withoutSq float64
		for t := 0; t < trials; t++ {
			coeffs := make([]float64, tr.OutputSize())
			for k := range coeffs {
				if w[k] == 0 {
					continue
				}
				coeffs[k] = src.Laplace(lambda / w[k])
			}
			raw := append([]float64(nil), coeffs...)
			if err := tr.MeanSubtract(coeffs); err != nil {
				b.Fatal(err)
			}
			recWith, err := tr.Inverse(coeffs)
			if err != nil {
				b.Fatal(err)
			}
			recWithout, err := tr.Inverse(raw)
			if err != nil {
				b.Fatal(err)
			}
			var a, c float64
			for leaf := 0; leaf < 8; leaf++ { // subtree of the first group
				a += recWith[leaf]
				c += recWithout[leaf]
			}
			withSq += a * a
			withoutSq += c * c
		}
		withVar = withSq / trials
		withoutVar = withoutSq / trials
	}
	b.ReportMetric(withVar, "with-meansub-variance")
	b.ReportMetric(withoutVar, "without-meansub-variance")
}

// BenchmarkAblationSASweep times Privelet+ across SA choices on the small
// census and reports each release's analytic bound.
func BenchmarkAblationSASweep(b *testing.B) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 20_000, 5)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		b.Fatal(err)
	}
	choices := []struct {
		name string
		sa   []string
	}{
		{"none", nil},
		{"age-gender", []string{"Age", "Gender"}},
		{"all", []string{"Age", "Gender", "Occupation", "Income"}},
	}
	for _, c := range choices {
		b.Run(c.name, func(b *testing.B) {
			var bound float64
			for i := 0; i < b.N; i++ {
				res, err := core.PublishMatrix(context.Background(), m, tbl.Schema(), core.Options{Epsilon: 1, SA: c.sa, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				bound = res.VarianceBound
			}
			b.ReportMetric(bound, "variance-bound")
		})
	}
}

// --- Extension: Hay et al. vs Privelet, 1-D ---------------------------

func BenchmarkExtensionHay1D(b *testing.B) {
	const mSize = 1024
	s := dataset.MustSchema(dataset.OrdinalAttr("A", mSize))
	hist := make([]float64, mSize)
	r := rng.New(31)
	for i := range hist {
		hist[i] = math.Floor(r.Float64() * 50)
	}
	m, err := matrix.FromSlice(hist)
	if err != nil {
		b.Fatal(err)
	}
	q, err := query.NewBuilder(s).Range("A", 100, 899).Build()
	if err != nil {
		b.Fatal(err)
	}
	act, err := q.Eval(m)
	if err != nil {
		b.Fatal(err)
	}
	const trials = 100
	var hayMSE, privMSE float64
	for i := 0; i < b.N; i++ {
		var haySq, privSq float64
		for t := 0; t < trials; t++ {
			seed := uint64(i*trials + t)
			hres, err := privelet.PublishHistogram(hist, 1.0, seed)
			if err != nil {
				b.Fatal(err)
			}
			var hv float64
			for j := 100; j <= 899; j++ {
				hv += hres[j]
			}
			haySq += (hv - act) * (hv - act)
			pres, err := core.PublishMatrix(context.Background(), m, s, core.Options{Epsilon: 1.0, Seed: seed})
			if err != nil {
				b.Fatal(err)
			}
			pv, err := q.Eval(pres.Noisy)
			if err != nil {
				b.Fatal(err)
			}
			privSq += (pv - act) * (pv - act)
		}
		hayMSE = haySq / trials
		privMSE = privSq / trials
	}
	b.ReportMetric(hayMSE, "hay-mse")
	b.ReportMetric(privMSE, "privelet-mse")
}

// --- Micro-benchmarks on the substrates --------------------------------

func BenchmarkHaarForward4096(b *testing.B) {
	v := make([]float64, 4096)
	r := rng.New(1)
	for i := range v {
		v[i] = r.Float64()
	}
	dst := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		haar.ForwardInto(v, dst)
	}
}

func BenchmarkHaarInverse4096(b *testing.B) {
	v := make([]float64, 4096)
	r := rng.New(2)
	for i := range v {
		v[i] = r.Float64()
	}
	dst := make([]float64, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		haar.InverseInto(v, dst)
	}
}

func BenchmarkNominalForward4096(b *testing.B) {
	h, err := hierarchy.ThreeLevel(64, 64)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := nominal.New(h)
	if err != nil {
		b.Fatal(err)
	}
	v := make([]float64, tr.InputSize())
	dst := make([]float64, tr.OutputSize())
	r := rng.New(3)
	for i := range v {
		v[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ForwardInto(v, dst)
	}
}

func BenchmarkHNForward2D(b *testing.B) {
	h, err := hierarchy.ThreeLevel(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	hn, err := transform.New(transform.Ordinal(256), transform.Nominal(h))
	if err != nil {
		b.Fatal(err)
	}
	m := matrix.MustNew(256, 256)
	r := rng.New(4)
	data := m.Data()
	for i := range data {
		data[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hn.Forward(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublishCensusSmall(b *testing.B) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 50_000, 6)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PublishMatrix(context.Background(), m, tbl.Schema(), core.Options{
			Epsilon: 1, SA: []string{"Age", "Gender"}, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel publish engine ------------------------------------------

// benchCensusMatrix builds the 4-D Table III census shape (Brazil, small
// scale) used by the engine benchmarks.
func benchCensusMatrix(b *testing.B) (*matrix.Matrix, *dataset.Schema) {
	b.Helper()
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 50_000, 6)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		b.Fatal(err)
	}
	return m, tbl.Schema()
}

// BenchmarkPublishEngine measures the publish hot path at fixed worker
// counts, for both the sub-matrix fan-out regime (SA = {Age, Gender},
// 128 sub-matrices) and the vector fan-out regime (SA = ∅).
func BenchmarkPublishEngine(b *testing.B) {
	m, schema := benchCensusMatrix(b)
	regimes := []struct {
		name string
		sa   []string
	}{
		{"sa=age-gender", []string{"Age", "Gender"}},
		{"sa=none", nil},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, reg := range regimes {
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", reg.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.PublishMatrix(context.Background(), m, schema, core.Options{
						Epsilon: 1, SA: reg.sa, Seed: uint64(i), Parallelism: w,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPublishSpeedup times the serial and 4-worker engines in the
// same run and reports the wall-clock ratio. On a multi-core box the
// target is ≥ 2× at 4 workers; on a single-core box the ratio ~1 shows
// the pool costs nothing when there is no hardware to use.
func BenchmarkPublishSpeedup(b *testing.B) {
	m, schema := benchCensusMatrix(b)
	sa := []string{"Age", "Gender"}
	var serial, par4 time.Duration
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := core.PublishMatrix(context.Background(), m, schema, core.Options{
			Epsilon: 1, SA: sa, Seed: uint64(i), Parallelism: 1,
		}); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(start)
		start = time.Now()
		if _, err := core.PublishMatrix(context.Background(), m, schema, core.Options{
			Epsilon: 1, SA: sa, Seed: uint64(i), Parallelism: 4,
		}); err != nil {
			b.Fatal(err)
		}
		par4 += time.Since(start)
	}
	b.ReportMetric(serial.Seconds()/float64(b.N)*1e3, "serial-ms/op")
	b.ReportMetric(par4.Seconds()/float64(b.N)*1e3, "4worker-ms/op")
	b.ReportMetric(serial.Seconds()/par4.Seconds(), "speedup-4w")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkInjectLaplace measures the Laplace injection passes — the
// stage PR 4 parallelized — at fixed worker counts on a multi-chunk
// domain (16 × 64Ki entries = 1M draws per op). Uniform is the Basic
// mechanism's pass; weighted is Privelet's per-coefficient λ/W pass.
// Output is bit-identical across worker counts, so the counts differ
// only in wall clock (see BENCH_publish.json for the recorded baseline
// and the 1-core-container caveat).
func BenchmarkInjectLaplace(b *testing.B) {
	const n = 16 * privacy.NoiseChunk
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("uniform/workers=%d", workers), func(b *testing.B) {
			m := matrix.MustNew(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := privacy.InjectLaplaceUniformCtx(context.Background(), m, 2, uint64(i), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	wv := [][]float64{make([]float64, 16), make([]float64, privacy.NoiseChunk)}
	for i := range wv[0] {
		wv[0][i] = float64(1 + i%5)
	}
	for i := range wv[1] {
		wv[1][i] = float64(1 + i%9)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("weighted/workers=%d", workers), func(b *testing.B) {
			m := matrix.MustNew(16, privacy.NoiseChunk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := privacy.InjectLaplaceCtx(context.Background(), m, wv, 2, uint64(i), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// weighted4d stresses the per-entry coordinate bookkeeping itself:
	// the same 1M entries as weighted, but across four dimensions (the
	// census shape's dimensionality), where the pass's former per-entry
	// Coords call paid d divisions per entry and the odometer walk pays
	// one increment — the shape that shows the delta.
	wv4 := [][]float64{
		make([]float64, 16), make([]float64, 16),
		make([]float64, 64), make([]float64, 64),
	}
	for _, v := range wv4 {
		for i := range v {
			v[i] = float64(1 + i%7)
		}
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("weighted4d/workers=%d", workers), func(b *testing.B) {
			m := matrix.MustNew(16, 16, 64, 64) // 1Mi entries
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := privacy.InjectLaplaceCtx(context.Background(), m, wv4, 2, uint64(i), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrefixSum measures the summed-area-table build — the query
// evaluator's whole cost, and the dominant cost of reloading a spilled
// release — serial vs pooled, on the 4-D census shape and on a flat 1M
// histogram (whose single long scan cannot parallelize without breaking
// bit-identity, so it pins the pool's no-overhead property instead).
func BenchmarkPrefixSum(b *testing.B) {
	census, _ := benchCensusMatrix(b)
	shapes := []struct {
		name string
		m    *matrix.Matrix
	}{
		{"census4d", census},
		{"hist1m", matrix.MustNew(1 << 20)},
	}
	for _, sh := range shapes {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("%s/workers=%d", sh.name, workers), func(b *testing.B) {
				// Restore the source values (untimed) before every pass:
				// prefix-summing the same buffer repeatedly would compound
				// the entries toward +Inf and measure a different matrix
				// than the one the benchmark claims.
				work := sh.m.Clone()
				src := sh.m.Data()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					copy(work.Data(), src)
					b.StartTimer()
					work.PrefixSumExec(workers)
				}
			})
		}
	}
}

// BenchmarkQueryBatch measures the batch query engine at the paper's
// workload scale — 40 000 random §VII-A queries against the 4-D census
// release — at fixed worker counts. Answers are bit-identical across
// worker counts (the batch determinism contract), so the counts differ
// only in wall clock; BENCH_query.json records the baseline (with the
// usual 1-core-container caveat).
func BenchmarkQueryBatch(b *testing.B) {
	m, schema := benchCensusMatrix(b)
	ev := query.NewEvaluatorWorkers(m, 0)
	gen, err := workload.NewGenerator(schema, 4)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(40_000, rng.New(12))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("40k/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (query.Batch{Eval: ev, Workers: workers}).Execute(context.Background(), queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryStream measures ExecuteStream over the same 40k census
// workload as BenchmarkQueryBatch, reporting wall clock per op plus
// time-to-first-answer (ns until the first chunk reaches the sink) —
// the latency the streaming pipeline buys: a client starts consuming
// answers after one chunk executes, not after the whole workload.
func BenchmarkQueryStream(b *testing.B) {
	m, schema := benchCensusMatrix(b)
	ev := query.NewEvaluatorWorkers(m, 0)
	gen, err := workload.NewGenerator(schema, 4)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(40_000, rng.New(12))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("40k/workers=%d", workers), func(b *testing.B) {
			var ttfa time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				first := true
				sink := func([]float64) error {
					if first {
						ttfa += time.Since(start)
						first = false
					}
					return nil
				}
				n, err := (query.Batch{Eval: ev, Workers: workers}).
					ExecuteStream(context.Background(), query.SliceSource(queries), sink)
				if err != nil {
					b.Fatal(err)
				}
				if n != len(queries) {
					b.Fatalf("delivered %d", n)
				}
			}
			b.ReportMetric(float64(ttfa.Nanoseconds())/float64(b.N), "ttfa-ns")
		})
	}
}

// BenchmarkQueryCacheHit measures the answer cache's hit path: the
// 40k workload re-executed against a warm per-release cache, where
// every answer is a key render plus a map probe instead of a 2^d
// evaluator lookup. The cold pass is the same workload against a fresh
// cache (miss + insert on top of the evaluator's work).
func BenchmarkQueryCacheHit(b *testing.B) {
	m, schema := benchCensusMatrix(b)
	ev := query.NewEvaluatorWorkers(m, 0)
	gen, err := workload.NewGenerator(schema, 4)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(40_000, rng.New(12))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("40k/cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch := query.Batch{Eval: ev, Workers: 1, Cache: query.NewAnswerCache(1<<16, nil), Schema: schema}
			if _, err := batch.Execute(context.Background(), queries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("40k/warm", func(b *testing.B) {
		batch := query.Batch{Eval: ev, Workers: 1, Cache: query.NewAnswerCache(1<<16, nil), Schema: schema}
		if _, err := batch.Execute(context.Background(), queries); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := batch.Execute(context.Background(), queries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBasicPublishCensusSmall(b *testing.B) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 50_000, 7)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.Basic(context.Background(), m, 1, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrequencyMatrix(b *testing.B) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 100_000, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.FrequencyMatrix(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEvaluation compares prefix-sum against naive evaluation —
// the design decision that makes 40k-query workloads feasible.
func BenchmarkQueryEvaluation(b *testing.B) {
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), 50_000, 9)
	if err != nil {
		b.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(tbl.Schema(), 4)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(256, rng.New(10))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("prefix", func(b *testing.B) {
		ev := query.NewEvaluator(m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := ev.Count(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, err := q.Eval(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}
