package privelet

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/matrix"
)

// Publisher accumulates rows directly into a frequency matrix and
// publishes it through any registered mechanism. It is the streaming
// ingest path: where a Table buffers all n tuples (O(n) memory) before
// FrequencyMatrix folds them, a Publisher folds each row the moment it
// arrives, so memory stays O(domain) — a billion-row CSV publishes
// through the same fixed-size matrix as a thousand-row one. Add performs
// no allocation, making the per-row cost a bounds check and one
// increment.
//
// A Publisher is not safe for concurrent use; give each ingest goroutine
// its own and sum the matrices, or serialize Adds externally.
type Publisher struct {
	freq    *Frequency
	strides []int
	rows    int
}

// NewPublisher returns a Publisher over schema with all counts zero.
func NewPublisher(schema *Schema) (*Publisher, error) {
	if schema == nil {
		return nil, fmt.Errorf("privelet: nil schema")
	}
	m, err := matrix.New(schema.Dims()...)
	if err != nil {
		return nil, err
	}
	return &Publisher{freq: &Frequency{Schema: schema, M: m}, strides: matrix.Strides(schema.Dims())}, nil
}

// offset validates a row and returns its frequency-matrix offset; the
// shared address computation behind Add and the Continual window's
// evictions.
func (p *Publisher) offset(vals []int) (int, error) {
	if len(vals) != len(p.strides) {
		return 0, fmt.Errorf("privelet: row has %d values, want %d", len(vals), len(p.strides))
	}
	off := 0
	for i, v := range vals {
		if a := p.freq.Schema.Attr(i); v < 0 || v >= a.Size {
			return 0, fmt.Errorf("privelet: value %d out of domain [0,%d) for attribute %q", v, a.Size, a.Name)
		}
		off += v * p.strides[i]
	}
	return off, nil
}

// Add folds one row into the frequency matrix; vals[i] must lie in
// [0, |A_i|). It allocates nothing.
func (p *Publisher) Add(vals ...int) error {
	off, err := p.offset(vals)
	if err != nil {
		return err
	}
	p.freq.M.Data()[off]++
	p.rows++
	return nil
}

// AddBatch folds a batch of rows; on error the earlier rows of the batch
// remain folded (the reported row index is batch-relative).
func (p *Publisher) AddBatch(rows [][]int) error {
	for i, row := range rows {
		if err := p.Add(row...); err != nil {
			return fmt.Errorf("privelet: batch row %d: %w", i, err)
		}
	}
	return nil
}

// AddTable folds every tuple of a buffered table, for callers migrating
// from the Table-based API.
func (p *Publisher) AddTable(t *Table) error {
	row := make([]int, t.Schema().NumAttrs())
	for i := 0; i < t.Len(); i++ {
		t.Row(i, row)
		if err := p.Add(row...); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns how many rows have been folded in (the table size n).
func (p *Publisher) Rows() int { return p.rows }

// Frequency returns the accumulated frequency matrix. The Publisher
// retains it: rows added afterwards keep mutating the same matrix, so
// take the Frequency when ingest is done (or Clone the matrix).
func (p *Publisher) Frequency() *Frequency { return p.freq }

// Publish releases the accumulated counts through the named mechanism
// (see Mechanisms for the registry). The privacy budget is spent per
// call: publishing the same Publisher twice spends 2ε in total under
// sequential composition.
//
// The whole pipeline behind this call — wavelet transform, Laplace noise
// injection, and the release's prefix-sum evaluator build — runs on the
// parallel engine under params.Parallelism. The mechanism stages observe
// ctx at chunk granularity (roughly every 64Ki entries) and the post
// stages (sanitize, evaluator build) at their boundaries, so a cancelled
// publish returns ctx's error, releases nothing, and leaves no
// goroutines behind. Equal seeds give bit-identical releases at any
// parallelism; docs/ARCHITECTURE.md states the exact contract.
func (p *Publisher) Publish(ctx context.Context, mechanism string, params Params) (*Release, error) {
	return PublishWith(ctx, mechanism, p.freq, params)
}

// Republish is Publish gated by a privacy-budget ledger — the continual-
// publication primitive. It charges params.Epsilon to tenant's budget
// before any noise is drawn (so an exhausted tenant is refused with
// ErrBudgetExhausted and zero work done) and refunds the charge if the
// publish fails or ctx is cancelled: under sequential composition an
// aborted publish released nothing, so it spent nothing. The
// mechanism/parameter validation runs before the charge, so a malformed
// request never touches the ledger at all.
func (p *Publisher) Republish(ctx context.Context, mechanism string, params Params, led *Ledger, tenant string) (*Release, error) {
	if led == nil {
		return nil, fmt.Errorf("privelet: Republish requires a ledger")
	}
	mech, err := MechanismByName(mechanism)
	if err != nil {
		return nil, err
	}
	if err := ValidateParams(mech, p.freq.Schema, params); err != nil {
		return nil, err
	}
	charge, err := led.Charge(tenant, params.Epsilon)
	if err != nil {
		return nil, err
	}
	rel, err := PublishWith(ctx, mechanism, p.freq, params)
	if err != nil {
		if rerr := led.Refund(charge); rerr != nil {
			return nil, errors.Join(err, rerr)
		}
		return nil, err
	}
	return rel, nil
}
