package privelet

import (
	"context"

	"repro/internal/marginal"
	"repro/internal/query"
	"repro/internal/variance"
)

// Analyzer computes the EXACT noise variance of range-count queries for
// a publishing configuration (schema, ε, SA) — not just the worst-case
// Corollary 1 bound. See internal/variance for the derivation; the paper
// lists per-query utility analysis as future work (§IX).
type Analyzer = variance.Analyzer

// WorkloadStats summarizes exact per-query variances over a workload.
type WorkloadStats = variance.WorkloadStats

// NewAnalyzer builds an exact-variance analyzer for the release Publish
// would produce with the same schema, epsilon and SA.
func NewAnalyzer(schema *Schema, epsilon float64, sa []string) (*Analyzer, error) {
	return variance.NewAnalyzer(schema, epsilon, sa)
}

// BestSA exhaustively searches all SA subsets for the one minimizing the
// workload's mean exact noise variance — workload-aware Privelet+ tuning.
func BestSA(schema *Schema, epsilon float64, workload []Query) ([]string, WorkloadStats, error) {
	return variance.BestSA(schema, epsilon, workload)
}

// Marginal is one published marginal (a noisy projection of the
// frequency matrix onto a subset of attributes).
type Marginal = marginal.Release

// MarginalOptions configures PublishMarginals. Its Parallelism field caps
// each marginal's publish workers; like every parallelism knob in this
// module it never affects release values (see docs/ARCHITECTURE.md for
// the determinism contract).
type MarginalOptions = marginal.Options

// PublishMarginals releases one noisy marginal per attribute list under a
// TOTAL budget of opts.Epsilon (split evenly; sequential composition).
func PublishMarginals(t *Table, sets [][]string, opts MarginalOptions) ([]*Marginal, error) {
	return marginal.PublishSet(context.Background(), t, sets, opts)
}

// PublishMarginalsContext is PublishMarginals under a context: a
// cancelled ctx aborts the remaining marginals of the set.
func PublishMarginalsContext(ctx context.Context, t *Table, sets [][]string, opts MarginalOptions) ([]*Marginal, error) {
	return marginal.PublishSet(ctx, t, sets, opts)
}

// NewQueryBuilder starts a range-count query against an arbitrary schema
// (Release.NewQuery is the more common entry point).
func NewQueryBuilder(schema *Schema) *QueryBuilder { return query.NewBuilder(schema) }
