package privelet_test

import (
	"context"
	"strings"
	"testing"

	privelet "repro"
)

func TestPublisherMatchesTablePublish(t *testing.T) {
	occ, err := privelet.ThreeLevelHierarchy(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("Age", 9),
		privelet.NominalAttr("Occ", occ),
	)
	if err != nil {
		t.Fatal(err)
	}
	table := privelet.NewTable(schema)
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		row := []int{(i * 5) % 9, (i * 3) % 6}
		if err := table.Append(row...); err != nil {
			t.Fatal(err)
		}
		if err := pub.Add(row...); err != nil {
			t.Fatal(err)
		}
	}
	if pub.Rows() != table.Len() {
		t.Fatalf("publisher rows %d != table rows %d", pub.Rows(), table.Len())
	}
	// Identical counts: the streamed frequency matrix equals the
	// buffered table's.
	fm, err := table.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := fm.MaxAbsDiff(pub.Frequency().M); d != 0 {
		t.Fatalf("streamed frequency matrix diverged by %v", d)
	}
	// And therefore identical releases at the same seed.
	want, err := privelet.Publish(table, privelet.Options{Epsilon: 1, SA: []string{"Occ"}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pub.Publish(context.Background(), "privelet+", privelet.Params{Epsilon: 1, SA: []string{"Occ"}, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := want.Matrix().MaxAbsDiff(got.Matrix()); d != 0 {
		t.Fatalf("streamed release diverged by %v", d)
	}
}

// TestPublisherStreamsWithoutTable is the ROADMAP's streaming-ingest
// claim made executable: millions of rows flow through a Publisher whose
// memory footprint is the O(domain) frequency matrix — row ingest
// allocates nothing, so no Table (or any other O(n) buffer) can be
// hiding behind Add. The buffered path would hold n·d int32s; here n is
// 3 million against a 64-entry domain.
func TestPublisherStreamsWithoutTable(t *testing.T) {
	schema, err := privelet.NewSchema(
		privelet.OrdinalAttr("A", 8),
		privelet.OrdinalAttr("B", 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}

	// Per-row allocation must be exactly zero — O(domain), not O(n).
	// (The harness calls the closure once before measuring, hence the
	// n+1 accounting below.)
	row := []int{0, 0}
	var i int
	const n = 3_000_000
	if avg := testing.AllocsPerRun(n, func() {
		row[0] = i & 7
		row[1] = (i >> 3) & 7
		if err := pub.Add(row...); err != nil {
			t.Fatal(err)
		}
		i++
	}); avg != 0 {
		t.Fatalf("Add allocates %v objects per row; streaming ingest must allocate none", avg)
	}
	if pub.Rows() != n+1 {
		t.Fatalf("rows = %d, want %d", pub.Rows(), n+1)
	}
	total := 0.0
	for _, v := range pub.Frequency().M.Data() {
		total += v
	}
	if int(total) != n+1 {
		t.Fatalf("frequency mass %v != rows %d", total, n+1)
	}

	// The accumulated counts publish like any other frequency.
	rel, err := pub.Publish(context.Background(), "privelet", privelet.Params{Epsilon: 1e9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, err := rel.NewQuery().Build() // full domain
	if err != nil {
		t.Fatal(err)
	}
	c, err := rel.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if diff := c - float64(n+1); diff > 1 || diff < -1 {
		t.Fatalf("full-domain count %v, want ~%d", c, n+1)
	}
}

func TestPublisherValidation(t *testing.T) {
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("A", 4))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Add(4); err == nil || !strings.Contains(err.Error(), "out of domain") {
		t.Fatalf("out-of-domain Add: err = %v", err)
	}
	if err := pub.Add(-1); err == nil {
		t.Fatal("negative value accepted")
	}
	if err := pub.Add(1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if pub.Rows() != 0 {
		t.Fatalf("failed Adds counted: rows = %d", pub.Rows())
	}
	if _, err := privelet.NewPublisher(nil); err == nil {
		t.Fatal("NewPublisher accepted a nil schema")
	}
}

func TestPublisherAddBatchAndTable(t *testing.T) {
	schema, err := privelet.NewSchema(privelet.OrdinalAttr("A", 4))
	if err != nil {
		t.Fatal(err)
	}
	pub, err := privelet.NewPublisher(schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.AddBatch([][]int{{0}, {1}, {1}, {3}}); err != nil {
		t.Fatal(err)
	}
	if err := pub.AddBatch([][]int{{2}, {9}}); err == nil || !strings.Contains(err.Error(), "batch row 1") {
		t.Fatalf("bad batch row not reported: %v", err)
	}
	table := privelet.NewTable(schema)
	for _, v := range []int{0, 2, 3} {
		if err := table.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.AddTable(table); err != nil {
		t.Fatal(err)
	}
	// 4 batch rows + 1 from the failing batch's good prefix + 3 table rows.
	if pub.Rows() != 8 {
		t.Fatalf("rows = %d, want 8", pub.Rows())
	}
	want := []float64{2, 2, 2, 2}
	for i, v := range pub.Frequency().M.Data() {
		if v != want[i] {
			t.Fatalf("counts = %v, want %v", pub.Frequency().M.Data(), want)
		}
	}
}
