// Package privelet is a Go implementation of Privelet, the
// differentially-private data publishing technique of Xiao, Wang and
// Gehrke, "Differential Privacy via Wavelet Transforms" (ICDE 2010).
//
// Privelet releases a noisy frequency matrix M* of a relational table
// under ε-differential privacy. Where the classic Laplace mechanism
// ("Basic", Dwork et al.) gives range-count queries noise variance linear
// in the domain size m, Privelet applies a wavelet transform first — the
// Haar transform on ordinal attributes and the paper's novel nominal
// wavelet transform on hierarchy-bearing attributes — and calibrates
// per-coefficient noise so every range-count query's noise variance is
// polylogarithmic in m.
//
// # Quick start
//
//	gender, _ := privelet.FlatHierarchy(2)
//	schema, _ := privelet.NewSchema(
//		privelet.OrdinalAttr("Age", 101),
//		privelet.NominalAttr("Gender", gender),
//	)
//	table := privelet.NewTable(schema)
//	// ... table.Append(age, gender) for each record ...
//
//	rel, _ := privelet.Publish(table, privelet.Options{
//		Epsilon: 1.0,
//		SA:      []string{"Gender"}, // small domains skip the transform
//		Seed:    42,
//	})
//	q, _ := rel.NewQuery().Range("Age", 30, 49).Build()
//	count, _ := rel.Count(q)
//
// The released matrix answers arbitrarily many queries at no further
// privacy cost; the ε budget is spent once, at Publish time.
//
// # Mechanism selection
//
// Options.SA lists attributes excluded from the wavelet transform
// (Privelet+, §VI-D of the paper): for an attribute with |A| ≤ P(A)²·H(A)
// plain per-entry noise is cheaper than transform-domain noise.
// RecommendSA applies that rule. SA = nil is plain Privelet; listing every
// attribute recovers the Basic mechanism exactly (PublishBasic is a
// convenience for that).
//
// # Publish engine
//
// Publish runs on a parallel, allocation-frugal engine. The Figure-5
// sub-matrices (one per combination of SA coordinates) are independent,
// as are the 1-D vectors inside each wavelet step, so the engine fans
// both levels across a worker pool of Options.Parallelism goroutines
// (default: runtime.GOMAXPROCS(0)). Each worker owns a ping-pong buffer
// pair, so a d-dimensional forward+inverse pass reuses two backing
// slices instead of allocating 2d matrices, and vectors along the
// innermost dimension are handed to the wavelet kernels as direct slices
// of the backing arrays (zero-copy).
//
// Parallelism never changes a release. The Laplace stream of sub-matrix
// k is a SplitMix-derived substream keyed by (Options.Seed, k) — see
// internal/rng.Substream — not by visit order, so equal seeds give
// bit-identical releases at parallelism 1, 4, or a whole fleet of cores.
//
// # Serving releases
//
// A release is a publish-once artifact: Save writes it in a versioned
// binary format and Load reconstructs it with no further privacy cost.
// The same format backs the whole deployment story — cmd/priveletd
// serves releases over HTTP from a sharded release store
// (internal/store) that spills cold releases to disk and recovers them
// after a restart, and its /export endpoint, its spill files, and
// Save/Load are byte-compatible with each other.
//
// # Security note
//
// This library reproduces the paper's mechanisms for research and
// benchmarking. The noise generator is a seeded deterministic PRNG so
// experiments are replayable; a hardened production deployment must
// instead draw from a cryptographically secure source and must not expose
// seeds. Floating-point Laplace sampling is also subject to the usual
// Mironov-style attacks, which the 2010 paper (and hence this
// reproduction) predates.
package privelet
