// Package privelet is a Go implementation of Privelet, the
// differentially-private data publishing technique of Xiao, Wang and
// Gehrke, "Differential Privacy via Wavelet Transforms" (ICDE 2010).
//
// Privelet releases a noisy frequency matrix M* of a relational table
// under ε-differential privacy. Where the classic Laplace mechanism
// ("Basic", Dwork et al.) gives range-count queries noise variance linear
// in the domain size m, Privelet applies a wavelet transform first — the
// Haar transform on ordinal attributes and the paper's novel nominal
// wavelet transform on hierarchy-bearing attributes — and calibrates
// per-coefficient noise so every range-count query's noise variance is
// polylogarithmic in m.
//
// # Quick start
//
//	gender, _ := privelet.FlatHierarchy(2)
//	schema, _ := privelet.NewSchema(
//		privelet.OrdinalAttr("Age", 101),
//		privelet.NominalAttr("Gender", gender),
//	)
//	pub, _ := privelet.NewPublisher(schema)
//	// ... pub.Add(age, gender) for each record, straight off the wire ...
//
//	rel, _ := pub.Publish(ctx, "privelet+", privelet.Params{
//		Epsilon: 1.0,
//		SA:      []string{"Gender"}, // small domains skip the transform
//		Seed:    42,
//	})
//	q, _ := rel.NewQuery().Range("Age", 30, 49).Build()
//	count, _ := rel.Count(q)
//
// The released matrix answers arbitrarily many queries at no further
// privacy cost; the ε budget is spent once, at publish time.
//
// # Mechanisms
//
// Publishing algorithms implement the Mechanism interface — Name() plus
// Publish(ctx, *Frequency, Params) — and live in a process-wide registry
// keyed by name. Four are built in:
//
//   - "privelet+" — the paper's Figure 5: wavelet transform over the
//     non-SA attributes, per-entry noise over the SA ones (§VI-D).
//   - "privelet" — plain Privelet (§III): the transform over every
//     attribute; rejects a non-empty Params.SA.
//   - "basic" — Dwork et al.'s per-entry Laplace(2/ε) mechanism (§II-B).
//   - "hay" — Hay et al.'s hierarchical-consistency mechanism for
//     one-dimensional histograms (§VIII's closest related work).
//
// MechanismByName resolves a name, Mechanisms lists what is registered,
// and RegisterMechanism lets an embedding process add its own — new
// mechanisms become selectable from the CLI (-mechanism) and the HTTP
// server (?mechanism=) without touching either. The mechanism name is
// part of a release's accounting: it travels through Save/Load, the
// daemon's store and its /export endpoint, and survives a daemon
// restart.
//
// # Streaming ingest
//
// A Publisher folds rows into the frequency matrix as they arrive
// (Add/AddBatch), so ingest memory is O(domain) no matter how many rows
// stream through — Add allocates nothing. PublishWith runs any
// registered mechanism over the accumulated Frequency; a Frequency can
// also be built from a buffered Table (TableFrequency) or from a raw
// matrix (NewFrequency).
//
// # Cancellation
//
// The publish path takes a context.Context from the Mechanism interface
// down into the engine's fan-out workers, who observe it between
// sub-matrices, between 64Ki-entry noise chunks, and between the 1-D
// vectors inside every wavelet step — so even a single-sub-matrix
// publish over a huge multi-dimensional domain aborts mid-transform
// (one 1-D vector is the residual indivisible unit: a one-dimensional
// domain cancels between steps). A cancelled publish returns the
// context's error, releases nothing, and leaves no goroutines behind.
// The HTTP server ties each publish to its request context, so a
// disconnected client cancels its own in-flight work (reported as 499).
//
// # Migrating from the pre-Mechanism API
//
// The original entry points remain as thin wrappers and produce
// bit-identical releases: Publish(t, Options{...}) is
// PublishWith(ctx, "privelet+", TableFrequency(t), Params{...}),
// PublishBasic is the "basic" mechanism, and PublishHistogram is the
// "hay" mechanism's slice-in/slice-out form. New code should prefer the
// Publisher/PublishWith surface: it streams, cancels, and selects
// mechanisms by name.
//
// # Publish engine
//
// Publishing runs on a parallel, allocation-frugal engine. The Figure-5
// sub-matrices (one per combination of SA coordinates) are independent,
// as are the 1-D vectors inside each wavelet step, the 64Ki-entry chunks
// of the Laplace noise-injection pass, and the scans of the prefix-sum
// evaluator build — the engine fans all of them across a worker pool of
// Params.Parallelism goroutines (default: runtime.GOMAXPROCS(0)). Each
// worker owns a ping-pong buffer pair and a kernel cache, so a
// d-dimensional forward+inverse pass reuses two backing slices and d
// pre-built kernels (with their scratch) across every sub-matrix the
// worker drains; vectors along the innermost dimension are handed to the
// wavelet kernels as direct slices of the backing arrays (zero-copy).
//
// Parallelism never changes a release. Randomized work draws from
// SplitMix-derived substreams keyed by position, never visit order: the
// Laplace stream of sub-matrix k is keyed by (Params.Seed, k), and each
// noise chunk c within it re-substreams that derived seed by c — see
// internal/rng.Substream — so equal seeds give bit-identical releases at
// parallelism 1, 4, or a whole fleet of cores. The determinism contract
// (what exactly is guaranteed, and what is not, across versions) is
// written out in docs/ARCHITECTURE.md, alongside the layer diagram and
// the durability chokepoint; docs/BENCHMARKS.md covers the performance
// baselines.
//
// # Serving releases
//
// A release is a publish-once artifact: Save writes it in a versioned
// binary format and Load reconstructs it with no further privacy cost.
// The same format backs the whole deployment story — cmd/priveletd
// serves releases over HTTP from a sharded release store
// (internal/store) that spills cold releases to disk, recovers them
// after a restart, and deletes their files on DELETE /releases/{id};
// its /export endpoint, its spill files, and Save/Load are
// byte-compatible with each other.
//
// Query serving is batch-first, matching the paper's evaluation shape
// (§VII answers 40 000 queries per experiment): Release.CountBatch fans
// a query slice across a worker pool with answers bit-identical
// (float64 ==) to a serial Count loop at any worker count, the daemon's
// POST /releases/{id}/query endpoint answers a whole workload body in
// one request, and cmd/privelet -load/-query does the same for saved
// artifacts — all three run internal/query's plan→execute pipeline over
// one shared workload wire format (one predicate spec per line, or
// JSON; see docs/ARCHITECTURE.md's "Query serving" section).
//
// # Continual publication and privacy budgets
//
// The paper spends ε once, at publish time (§III); over an evolving
// table each republish adds its ε under sequential composition, and a
// Ledger is the account keeping that total inside a budget:
//
//	led, _ := privelet.NewLedger("/var/lib/privelet", 1.0) // 1ε per tenant, durable
//	pub, _ := privelet.NewPublisher(schema)
//	// ... pub.Add(...) ...
//	rel, err := pub.Republish(ctx, "privelet+", privelet.Params{Epsilon: 0.4}, led, "alice")
//	if errors.Is(err, privelet.ErrBudgetExhausted) {
//		// refused before any noise was drawn; nothing was spent
//	}
//
// Republish charges before publishing and refunds if the publish fails
// or is cancelled — only released noise costs budget. Balances are
// exact (fixed-point 10⁻⁶ ε units, so refusals are deterministic) and,
// with a directory, durable across restarts. Continual wraps the loop
// for a stream: rows feed a sliding window and every Window rows the
// current window is republished as the tenant's next numbered epoch,
// each epoch a store release under the ID "<tenant>/<epoch>". The
// daemon exposes the same gate at POST /tenants/{id}/publish (typed
// 429 on refusal) and GET /tenants/{id}/budget.
//
// # Security note
//
// This library reproduces the paper's mechanisms for research and
// benchmarking. The noise generator is a seeded deterministic PRNG so
// experiments are replayable; a hardened production deployment must
// instead draw from a cryptographically secure source and must not expose
// seeds. Floating-point Laplace sampling is also subject to the usual
// Mironov-style attacks, which the 2010 paper (and hence this
// reproduction) predates.
package privelet
