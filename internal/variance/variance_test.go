package variance

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

// monteCarlo estimates the noise variance of q on releases of a zero
// matrix published with (epsilon, sa), over `trials` fresh seeds.
func monteCarlo(t *testing.T, schema *dataset.Schema, epsilon float64, sa []string, q query.Query, trials int) float64 {
	t.Helper()
	m, err := matrix.New(schema.Dims()...)
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	for i := 0; i < trials; i++ {
		res, err := core.PublishMatrix(context.Background(), m, schema, core.Options{Epsilon: epsilon, SA: sa, Seed: uint64(1000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		v, err := q.Eval(res.Noisy)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += v * v
	}
	return sumSq / float64(trials)
}

// checkAgainstMC asserts the exact variance is within tol (relative) of
// the Monte-Carlo estimate.
func checkAgainstMC(t *testing.T, schema *dataset.Schema, epsilon float64, sa []string, q query.Query, trials int, tol float64) {
	t.Helper()
	an, err := NewAnalyzer(schema, epsilon, sa)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := an.QueryVariance(q)
	if err != nil {
		t.Fatal(err)
	}
	mc := monteCarlo(t, schema, epsilon, sa, q, trials)
	if exact <= 0 {
		t.Fatalf("exact variance %v not positive", exact)
	}
	if rel := math.Abs(mc-exact) / exact; rel > tol {
		t.Fatalf("exact %v vs Monte Carlo %v (relative gap %.3f > %.3f)", exact, mc, rel, tol)
	}
}

func TestExact1DOrdinal(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 16))
	for _, iv := range [][2]int{{0, 15}, {3, 9}, {5, 5}, {0, 7}} {
		q, err := query.NewBuilder(s).Range("A", iv[0], iv[1]).Build()
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstMC(t, s, 1.0, nil, q, 4000, 0.10)
	}
}

func TestExact1DOrdinalPadded(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 11)) // pads to 16
	q, err := query.NewBuilder(s).Range("A", 2, 8).Build()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstMC(t, s, 1.0, nil, q, 4000, 0.10)
}

func TestExact1DNominal(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	h, err := hierarchy.ThreeLevel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(dataset.NominalAttr("N", h))
	for _, probe := range []struct {
		label string
		build func(b *query.Builder) *query.Builder
	}{
		{"leaf", func(b *query.Builder) *query.Builder { return b.Leaf("N", 5) }},
		{"group", func(b *query.Builder) *query.Builder { return b.Node("N", "g1") }},
		{"root", func(b *query.Builder) *query.Builder { return b.Node("N", "Any") }},
		{"cross-group interval", func(b *query.Builder) *query.Builder { return b.Interval(0, 2, 9) }},
	} {
		q, err := probe.build(query.NewBuilder(s)).Build()
		if err != nil {
			t.Fatalf("%s: %v", probe.label, err)
		}
		checkAgainstMC(t, s, 1.0, nil, q, 4000, 0.10)
	}
}

func TestExact2DMixed(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(
		dataset.OrdinalAttr("A", 8),
		dataset.NominalAttr("N", h),
	)
	q, err := query.NewBuilder(s).Range("A", 1, 6).Node("N", "g0").Build()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstMC(t, s, 0.8, nil, q, 4000, 0.10)
}

func TestExactWithSA(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	h, err := hierarchy.Flat(3)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(
		dataset.NominalAttr("G", h),
		dataset.OrdinalAttr("A", 8),
	)
	q, err := query.NewBuilder(s).Interval(0, 0, 1).Range("A", 2, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstMC(t, s, 1.0, []string{"G"}, q, 4000, 0.10)
}

func TestExactBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	s := dataset.MustSchema(
		dataset.OrdinalAttr("A", 6),
		dataset.OrdinalAttr("B", 5),
	)
	q, err := query.NewBuilder(s).Range("A", 1, 4).Range("B", 0, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	// SA = everything ⇒ Basic: exact variance = covered·2·(2/ε)².
	an, err := NewAnalyzer(s, 1.0, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := an.QueryVariance(q)
	if err != nil {
		t.Fatal(err)
	}
	want := 12.0 * 2 * 4 // 12 cells × 2λ², λ=2
	if math.Abs(exact-want) > 1e-9 {
		t.Fatalf("Basic exact variance = %v, want %v", exact, want)
	}
	checkAgainstMC(t, s, 1.0, []string{"A", "B"}, q, 4000, 0.10)
}

func TestExactBelowWorstCaseBound(t *testing.T) {
	// The exact variance never exceeds Corollary 1's bound.
	h, err := hierarchy.ThreeLevel(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(
		dataset.OrdinalAttr("A", 16),
		dataset.NominalAttr("N", h),
	)
	m, err := matrix.New(s.Dims()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.PublishMatrix(context.Background(), m, s, core.Options{Epsilon: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(s, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		q, err := gen.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		v, err := an.QueryVariance(q)
		if err != nil {
			t.Fatal(err)
		}
		if v > res.VarianceBound*(1+1e-9) {
			t.Fatalf("exact variance %v exceeds Corollary 1 bound %v", v, res.VarianceBound)
		}
	}
}

func TestAnalyzerValidation(t *testing.T) {
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 4))
	if _, err := NewAnalyzer(s, 0, nil); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := NewAnalyzer(s, 1, []string{"ghost"}); err == nil {
		t.Error("unknown SA should fail")
	}
	if _, err := NewAnalyzer(s, 1, []string{"A", "A"}); err == nil {
		t.Error("duplicate SA should fail")
	}
	an, err := NewAnalyzer(s, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if an.Lambda() != 2*3 { // rho = 1+log2(4) = 3
		t.Errorf("Lambda = %v, want 6", an.Lambda())
	}
	// Mismatched query (built on a different schema).
	other := dataset.MustSchema(dataset.OrdinalAttr("X", 4), dataset.OrdinalAttr("Y", 4))
	q, err := query.NewBuilder(other).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.QueryVariance(q); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestWorkloadStats(t *testing.T) {
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 32))
	an, err := NewAnalyzer(s, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Queries(200, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := an.Workload(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !(stats.Min <= stats.Mean && stats.Mean <= stats.Max) {
		t.Fatalf("stats ordering broken: %+v", stats)
	}
	if !(stats.P95 <= stats.Max && stats.P95 >= stats.Min) {
		t.Fatalf("P95 out of range: %+v", stats)
	}
	if _, err := an.Workload(nil); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestBestSAPrefersSmallDomainInSA(t *testing.T) {
	// One tiny attribute and one large one: the known-optimal choice is
	// SA = {tiny}. BestSA must find it from workload variances alone.
	s := dataset.MustSchema(
		dataset.OrdinalAttr("Tiny", 2),
		dataset.OrdinalAttr("Big", 256),
	)
	gen, err := workload.NewGenerator(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gen.Queries(300, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	names, stats, err := BestSA(s, 1.0, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "Tiny" {
		t.Fatalf("BestSA = %v (stats %+v), want [Tiny]", names, stats)
	}
	if _, _, err := BestSA(s, 1.0, nil); err == nil {
		t.Error("empty workload should fail")
	}
}

func TestNominalWeightSumFigure3(t *testing.T) {
	// Hand-checked effective weights for the Figure 3 hierarchy and the
	// subtree query g0 (leaves 0..2): after mean subtraction the leaf
	// groups cancel entirely, leaving base weight 1/2 and ±1/2 on the two
	// level-2 coefficients.
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(dataset.NominalAttr("N", h))
	an, err := NewAnalyzer(s, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.NewBuilder(s).Node("N", "g0").Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := an.QueryVariance(q)
	if err != nil {
		t.Fatal(err)
	}
	// λ = 2·h/ε = 6. Weights: base W=1 r=1/2; c1,c2 W=1 r=±1/2;
	// leaf groups r=0. Var = 2λ²·((1/2)² + (1/2)² + (1/2)²) = 2·36·0.75 = 54.
	if math.Abs(got-54) > 1e-9 {
		t.Fatalf("Figure 3 subtree variance = %v, want 54", got)
	}
}
