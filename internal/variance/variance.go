// Package variance computes the EXACT noise variance of a range-count
// query answered from a Privelet+ release — not just the worst-case
// bounds of Lemmas 3/5 and Theorem 3. The paper lists per-query utility
// analysis as future work (§IX: "we want to investigate what guarantees
// Privelet may offer for other utility metrics"); this module supplies
// the exact second moment, which also powers workload-aware SA tuning.
//
// # How the exact computation works
//
// The answer of a box query on the reconstructed matrix is a linear form
// ⟨R, η⟩ in the injected coefficient noise η, because every step of the
// inverse HN transform (including nominal mean subtraction) is linear.
// Both the reconstruction weight and the noise scale factorize over
// dimensions:
//
//	R(c)     = ∏_i r_i(c_i)        (box query ⇒ tensor-product weights)
//	Var(η_c) = 2λ²/∏_i W_i(c_i)²   (independent Laplace per coefficient)
//
// so the exact variance collapses to a product of per-dimension sums:
//
//	Var = (#covered SA cells) · 2λ² · ∏_i  Σ_{c_i} (r_i(c_i)/W_i(c_i))²
//
// Per-dimension reconstruction weights:
//
//   - Haar: r(base) = interval length; r(node k) = α−β, the number of
//     in-range leaves under k's left subtree minus its right (Appendix B).
//   - Nominal: first the raw weight U(a) = Σ_{leaf∈range} u(a, leaf) of
//     coefficient a in the Equation-5 recursion, computed bottom-up via
//     U(a) = Σ_children U(child)/fanout(a); then the mean-subtraction
//     map A = blockdiag(I − J/g) is applied (A is symmetric, so the
//     effective weight is U minus its sibling-group mean).
//
// Coefficients with weight 0 (structurally-zero nominal coefficients)
// carry no noise and contribute nothing.
package variance

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/haar"
	"repro/internal/hierarchy"
	"repro/internal/query"
	"repro/internal/transform"
)

// Analyzer computes exact query-noise variances for one (schema, ε, SA)
// publishing configuration. It is immutable and safe for concurrent use.
type Analyzer struct {
	schema  *dataset.Schema
	epsilon float64
	saIdx   map[int]bool
	lambda  float64
	// per non-SA dimension machinery, indexed by attribute position.
	dims map[int]*dimAnalyzer
}

type dimAnalyzer struct {
	kind    transform.Kind
	size    int // original domain size
	padded  int
	weights []float64
	hier    *hierarchy.Hierarchy
}

// NewAnalyzer builds an analyzer for the release Publish would produce
// with the same schema, epsilon and SA.
func NewAnalyzer(schema *dataset.Schema, epsilon float64, sa []string) (*Analyzer, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("variance: epsilon must be positive, got %v", epsilon)
	}
	a := &Analyzer{
		schema:  schema,
		epsilon: epsilon,
		saIdx:   make(map[int]bool, len(sa)),
		dims:    make(map[int]*dimAnalyzer),
	}
	for _, name := range sa {
		i, err := schema.Index(name)
		if err != nil {
			return nil, err
		}
		if a.saIdx[i] {
			return nil, fmt.Errorf("variance: attribute %q listed twice in SA", name)
		}
		a.saIdx[i] = true
	}

	specs := schema.Specs()
	var restSpecs []transform.Spec
	for i := 0; i < schema.NumAttrs(); i++ {
		if a.saIdx[i] {
			continue
		}
		restSpecs = append(restSpecs, specs[i])
	}
	if len(restSpecs) == 0 {
		// Basic mechanism: λ = 2/ε, every covered cell contributes 2λ².
		a.lambda = 2 / epsilon
		return a, nil
	}
	hn, err := transform.New(restSpecs...)
	if err != nil {
		return nil, err
	}
	a.lambda = 2 * hn.GeneralizedSensitivity() / epsilon

	j := 0
	for i := 0; i < schema.NumAttrs(); i++ {
		if a.saIdx[i] {
			continue
		}
		attr := schema.Attr(i)
		da := &dimAnalyzer{size: attr.Size, weights: hn.WeightVector(j)}
		if attr.Kind == dataset.Ordinal {
			da.kind = transform.KindOrdinal
			da.padded = haar.NextPowerOfTwo(attr.Size)
		} else {
			da.kind = transform.KindNominal
			da.padded = attr.Size
			da.hier = attr.Hier
		}
		a.dims[i] = da
		j++
	}
	return a, nil
}

// Lambda returns the base noise parameter λ of the analyzed release.
func (a *Analyzer) Lambda() float64 { return a.lambda }

// QueryVariance returns the exact noise variance of the query's answer
// when evaluated on a release with this analyzer's configuration.
func (a *Analyzer) QueryVariance(q query.Query) (float64, error) {
	lo, hi := q.Lo(), q.Hi()
	if len(lo) != a.schema.NumAttrs() {
		return 0, fmt.Errorf("variance: query has %d attributes, schema has %d", len(lo), a.schema.NumAttrs())
	}
	covered := 1.0
	product := 1.0
	for i := 0; i < a.schema.NumAttrs(); i++ {
		if a.saIdx[i] {
			covered *= float64(hi[i] - lo[i] + 1)
			continue
		}
		da := a.dims[i]
		var sum float64
		switch da.kind {
		case transform.KindOrdinal:
			sum = haarWeightSum(da, lo[i], hi[i])
		case transform.KindNominal:
			sum = nominalWeightSum(da, lo[i], hi[i])
		}
		product *= sum
	}
	return covered * 2 * a.lambda * a.lambda * product, nil
}

// haarWeightSum returns Σ_k (r(k)/W(k))² for the interval [lo,hi] along
// a padded Haar dimension.
func haarWeightSum(da *dimAnalyzer, lo, hi int) float64 {
	p := da.padded
	length := float64(hi - lo + 1)
	// Base coefficient: weight = interval length, W = p.
	total := sq(length / da.weights[0])
	// Detail node k at level i covers the leaf block
	// [(k−2^(i−1))·p/2^(i−1), …) of width p/2^(i−1); its left half counts
	// +1, right half −1.
	for k := 1; k < p; k++ {
		level := haar.Level(k)
		width := p >> uint(level-1)
		start := (k - (1 << uint(level-1))) * width
		mid := start + width/2
		alpha := overlap(lo, hi, start, mid-1)
		beta := overlap(lo, hi, mid, start+width-1)
		if alpha == beta {
			continue
		}
		total += sq(float64(alpha-beta) / da.weights[k])
	}
	return total
}

// nominalWeightSum returns Σ_a (r_eff(a)/W(a))² for the leaf interval
// [lo,hi] along a nominal dimension, accounting for mean subtraction.
func nominalWeightSum(da *dimAnalyzer, lo, hi int) float64 {
	nodes := da.hier.Nodes()
	// Raw Equation-5 weights, bottom-up (children have larger IDs).
	raw := make([]float64, len(nodes))
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if n.IsLeaf() {
			if n.LeafLo >= lo && n.LeafLo <= hi {
				raw[i] = 1
			}
			continue
		}
		var s float64
		for _, c := range n.Children {
			s += raw[c.ID]
		}
		raw[i] = s / float64(n.Fanout())
	}
	// Mean subtraction: subtract the sibling-group mean (A symmetric).
	eff := make([]float64, len(nodes))
	eff[0] = raw[0] // base untouched
	for _, n := range nodes {
		if n.IsLeaf() {
			continue
		}
		mean := 0.0
		for _, c := range n.Children {
			mean += raw[c.ID]
		}
		mean /= float64(n.Fanout())
		for _, c := range n.Children {
			eff[c.ID] = raw[c.ID] - mean
		}
	}
	total := 0.0
	for i, w := range da.weights {
		if w == 0 || eff[i] == 0 {
			continue // no noise in this coefficient
		}
		total += sq(eff[i] / w)
	}
	return total
}

func overlap(lo, hi, a, b int) int {
	if lo < a {
		lo = a
	}
	if hi > b {
		hi = b
	}
	if lo > hi {
		return 0
	}
	return hi - lo + 1
}

func sq(x float64) float64 { return x * x }

// WorkloadStats summarizes exact variances over a workload.
type WorkloadStats struct {
	Mean, Max, Min float64
	// P95 is the 95th-percentile variance.
	P95 float64
}

// Workload computes exact variances for every query and summarizes them.
func (a *Analyzer) Workload(qs []query.Query) (WorkloadStats, error) {
	if len(qs) == 0 {
		return WorkloadStats{}, fmt.Errorf("variance: empty workload")
	}
	vars := make([]float64, len(qs))
	var sum float64
	for i, q := range qs {
		v, err := a.QueryVariance(q)
		if err != nil {
			return WorkloadStats{}, err
		}
		vars[i] = v
		sum += v
	}
	sort.Float64s(vars)
	idx := (len(vars) * 95) / 100
	if idx >= len(vars) {
		idx = len(vars) - 1
	}
	return WorkloadStats{
		Mean: sum / float64(len(vars)),
		Max:  vars[len(vars)-1],
		Min:  vars[0],
		P95:  vars[idx],
	}, nil
}

// BestSA exhaustively searches all SA subsets (2^d, d ≤ 16) for the one
// minimizing the workload's mean exact variance — the workload-aware
// tuning the paper sketches as future work. It returns the best SA names
// and the corresponding stats.
func BestSA(schema *dataset.Schema, epsilon float64, qs []query.Query) ([]string, WorkloadStats, error) {
	d := schema.NumAttrs()
	if d > 16 {
		return nil, WorkloadStats{}, fmt.Errorf("variance: too many attributes (%d) for exhaustive search", d)
	}
	if len(qs) == 0 {
		return nil, WorkloadStats{}, fmt.Errorf("variance: empty workload")
	}
	var bestNames []string
	var bestStats WorkloadStats
	first := true
	for mask := 0; mask < 1<<d; mask++ {
		var names []string
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				names = append(names, schema.Attr(i).Name)
			}
		}
		an, err := NewAnalyzer(schema, epsilon, names)
		if err != nil {
			return nil, WorkloadStats{}, err
		}
		stats, err := an.Workload(qs)
		if err != nil {
			return nil, WorkloadStats{}, err
		}
		if first || stats.Mean < bestStats.Mean {
			bestNames, bestStats, first = names, stats, false
		}
	}
	return bestNames, bestStats, nil
}
