// Package marginal publishes marginals — projections of the frequency
// matrix onto attribute subsets — under ε-differential privacy.
//
// The paper's §VIII contrasts Privelet with Barak et al.'s Fourier-domain
// marginal release; this module closes the loop from the Privelet side:
// each requested marginal is itself a (lower-dimensional) frequency
// matrix, so Privelet+ applies directly. Releasing k marginals of the
// same table composes sequentially, so a total budget ε is split evenly
// across the requested marginals (ε_i = ε/k).
//
// Like Barak et al., callers often want the released marginals to be
// non-negative and integral; postprocess.Sanitize is applied on request.
// Unlike Barak et al., no LP is solved — each marginal is O(n + m_i) —
// at the cost of not enforcing mutual consistency between overlapping
// marginals (ConsistencyGap quantifies the discrepancy).
package marginal

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/postprocess"
)

// Project sums the frequency matrix over every attribute not listed,
// producing the marginal's frequency matrix and its schema. Attribute
// order in `names` is preserved in the output.
func Project(m *matrix.Matrix, schema *dataset.Schema, names []string) (*matrix.Matrix, *dataset.Schema, error) {
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("marginal: empty attribute list")
	}
	sub, idx, err := schema.SubSchema(names)
	if err != nil {
		return nil, nil, err
	}
	got := m.Dims()
	want := schema.Dims()
	if len(got) != len(want) {
		return nil, nil, fmt.Errorf("marginal: matrix dimensionality %d, schema has %d attributes", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, nil, fmt.Errorf("marginal: matrix shape %v does not match schema %v", got, want)
		}
	}

	out, err := matrix.New(sub.Dims()...)
	if err != nil {
		return nil, nil, err
	}
	// keep[i] is the output axis of input dimension i, or -1 if summed out.
	keep := make([]int, schema.NumAttrs())
	for i := range keep {
		keep[i] = -1
	}
	for outAxis, inAxis := range idx {
		keep[inAxis] = outAxis
	}
	data := m.Data()
	coords := make([]int, schema.NumAttrs())
	outCoords := make([]int, sub.NumAttrs())
	for off, v := range data {
		if v == 0 {
			continue
		}
		m.Coords(off, coords)
		for i, k := range keep {
			if k >= 0 {
				outCoords[k] = coords[i]
			}
		}
		out.Add(v, outCoords...)
	}
	return out, sub, nil
}

// Release is one published marginal.
type Release struct {
	// Attrs lists the marginal's attributes in output order.
	Attrs []string
	// Schema is the marginal's (projected) schema.
	Schema *dataset.Schema
	// Noisy is the released noisy marginal.
	Noisy *matrix.Matrix
	// Epsilon is the share of the budget this marginal consumed.
	Epsilon float64
}

// Options configures PublishSet.
type Options struct {
	// Epsilon is the TOTAL privacy budget, split evenly across the set.
	Epsilon float64
	// Seed drives the noise stream.
	Seed uint64
	// AutoSA applies core.RecommendSA per marginal (Corollary 1's rule);
	// otherwise every marginal is published with SA = ∅.
	AutoSA bool
	// Sanitize rounds each released marginal to non-negative integers.
	Sanitize bool
	// Parallelism caps each marginal's publish workers (core.Options
	// semantics: ≤ 0 means GOMAXPROCS). Marginals of one set are
	// published sequentially — their budgets compose, their hardware
	// should not — and each release is independent of the worker count.
	Parallelism int
}

// PublishSet releases one marginal per attribute list. Sequential
// composition makes the whole release (opts.Epsilon)-differentially
// private. Cancelling ctx aborts between (and inside) marginals.
func PublishSet(ctx context.Context, t *dataset.Table, sets [][]string, opts Options) ([]*Release, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("marginal: no marginals requested")
	}
	if opts.Epsilon <= 0 {
		return nil, fmt.Errorf("marginal: epsilon must be positive, got %v", opts.Epsilon)
	}
	m, err := t.FrequencyMatrix()
	if err != nil {
		return nil, err
	}
	per := opts.Epsilon / float64(len(sets))
	out := make([]*Release, 0, len(sets))
	for si, names := range sets {
		proj, sub, err := Project(m, t.Schema(), names)
		if err != nil {
			return nil, fmt.Errorf("marginal %d: %w", si, err)
		}
		var sa []string
		if opts.AutoSA {
			sa, err = core.RecommendSA(sub)
			if err != nil {
				return nil, fmt.Errorf("marginal %d: %w", si, err)
			}
		}
		res, err := core.PublishMatrix(ctx, proj, sub, core.Options{
			Epsilon: per, SA: sa, Seed: opts.Seed + uint64(si)*7919,
			Parallelism: opts.Parallelism,
		})
		if err != nil {
			return nil, fmt.Errorf("marginal %d: %w", si, err)
		}
		noisy := res.Noisy
		if opts.Sanitize {
			noisy = postprocess.Sanitize(noisy)
		}
		out = append(out, &Release{
			Attrs:   append([]string(nil), names...),
			Schema:  sub,
			Noisy:   noisy,
			Epsilon: per,
		})
	}
	return out, nil
}

// ConsistencyGap measures how far two released marginals disagree on
// their common total: |sum(a) − sum(b)|. Barak et al. force this to zero
// via an LP; Privelet-per-marginal leaves a noise-scale gap, reported
// here so callers can decide whether to reconcile.
func ConsistencyGap(a, b *Release) float64 {
	d := a.Noisy.Total() - b.Noisy.Total()
	if d < 0 {
		d = -d
	}
	return d
}
