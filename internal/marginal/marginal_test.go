package marginal

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func censusTable(t testing.TB, n int) *dataset.Table {
	t.Helper()
	tbl, err := dataset.GenerateCensus(dataset.BrazilSpec(dataset.ScaleSmall), n, 17)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestProjectPreservesCounts(t *testing.T) {
	tbl := censusTable(t, 3000)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	proj, sub, err := Project(m, tbl.Schema(), []string{"Age", "Gender"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttrs() != 2 {
		t.Fatalf("projected schema has %d attributes", sub.NumAttrs())
	}
	if proj.Total() != 3000 {
		t.Fatalf("projected total = %v, want 3000", proj.Total())
	}
	// Spot-check one cell: marginal(age, gender) must equal the sum over
	// occupation and income of the full matrix.
	age, gender := 20, 1
	var want float64
	dims := tbl.Schema().Dims()
	for occ := 0; occ < dims[2]; occ++ {
		for inc := 0; inc < dims[3]; inc++ {
			want += m.At(age, gender, occ, inc)
		}
	}
	if got := proj.At(age, gender); got != want {
		t.Fatalf("marginal cell = %v, want %v", got, want)
	}
}

func TestProjectAttributeOrder(t *testing.T) {
	tbl := censusTable(t, 500)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// Reversed order: output axis 0 must be Income.
	proj, sub, err := Project(m, tbl.Schema(), []string{"Income", "Age"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Attr(0).Name != "Income" || sub.Attr(1).Name != "Age" {
		t.Fatalf("projected attribute order: %s, %s", sub.Attr(0).Name, sub.Attr(1).Name)
	}
	// proj[income, age] must equal projection in the other order at
	// transposed coordinates.
	proj2, _, err := Project(m, tbl.Schema(), []string{"Age", "Income"})
	if err != nil {
		t.Fatal(err)
	}
	for age := 0; age < 5; age++ {
		for inc := 0; inc < 5; inc++ {
			if proj.At(inc, age) != proj2.At(age, inc) {
				t.Fatalf("transpose mismatch at (%d,%d)", age, inc)
			}
		}
	}
}

func TestProjectErrors(t *testing.T) {
	tbl := censusTable(t, 10)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Project(m, tbl.Schema(), nil); err == nil {
		t.Error("empty list should fail")
	}
	if _, _, err := Project(m, tbl.Schema(), []string{"ghost"}); err == nil {
		t.Error("unknown attribute should fail")
	}
	small, _, err := Project(m, tbl.Schema(), []string{"Age"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Project(small, tbl.Schema(), []string{"Age"}); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestPublishSetBudgetSplit(t *testing.T) {
	tbl := censusTable(t, 2000)
	rels, err := PublishSet(context.Background(), tbl, [][]string{
		{"Age"}, {"Gender", "Occupation"},
	}, Options{Epsilon: 1.0, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("got %d releases", len(rels))
	}
	for _, r := range rels {
		if math.Abs(r.Epsilon-0.5) > 1e-12 {
			t.Errorf("per-marginal epsilon = %v, want 0.5", r.Epsilon)
		}
	}
	if rels[0].Schema.NumAttrs() != 1 || rels[1].Schema.NumAttrs() != 2 {
		t.Error("projected schemas have wrong arity")
	}
	// Shapes match projections.
	if rels[1].Noisy.NumDims() != 2 {
		t.Error("noisy marginal has wrong dimensionality")
	}
}

func TestPublishSetAccuracy(t *testing.T) {
	// With a huge budget the noisy marginals are near-exact.
	tbl := censusTable(t, 5000)
	rels, err := PublishSet(context.Background(), tbl, [][]string{{"Age", "Gender"}}, Options{Epsilon: 1e9, Seed: 6, AutoSA: true})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	proj, _, err := Project(m, tbl.Schema(), []string{"Age", "Gender"})
	if err != nil {
		t.Fatal(err)
	}
	if !rels[0].Noisy.AlmostEqual(proj, 1e-2) {
		d, _ := rels[0].Noisy.MaxAbsDiff(proj)
		t.Fatalf("near-noiseless marginal differs by %v", d)
	}
}

func TestPublishSetSanitize(t *testing.T) {
	tbl := censusTable(t, 500)
	rels, err := PublishSet(context.Background(), tbl, [][]string{{"Gender"}}, Options{Epsilon: 0.5, Seed: 7, Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rels[0].Noisy.Data() {
		if v < 0 || v != math.Trunc(v) {
			t.Fatalf("sanitized marginal has value %v", v)
		}
	}
}

func TestPublishSetValidation(t *testing.T) {
	tbl := censusTable(t, 10)
	if _, err := PublishSet(context.Background(), tbl, nil, Options{Epsilon: 1}); err == nil {
		t.Error("no marginals should fail")
	}
	if _, err := PublishSet(context.Background(), tbl, [][]string{{"Age"}}, Options{Epsilon: 0}); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := PublishSet(context.Background(), tbl, [][]string{{"ghost"}}, Options{Epsilon: 1}); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestConsistencyGap(t *testing.T) {
	tbl := censusTable(t, 4000)
	rels, err := PublishSet(context.Background(), tbl, [][]string{{"Age"}, {"Gender"}}, Options{Epsilon: 1.0, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	gap := ConsistencyGap(rels[0], rels[1])
	if gap < 0 {
		t.Fatal("gap must be non-negative")
	}
	// Both marginals estimate the same total (4000); the gap should be
	// noise-scale, not data-scale.
	if gap > 2000 {
		t.Fatalf("consistency gap %v implausibly large", gap)
	}
	// Gap of a release with itself is zero.
	if ConsistencyGap(rels[0], rels[0]) != 0 {
		t.Fatal("self gap should be zero")
	}
}

func TestMarginalAnswersRangeQueries(t *testing.T) {
	// Released marginals are ordinary frequency matrices: the query
	// engine applies unchanged.
	tbl := censusTable(t, 3000)
	rels, err := PublishSet(context.Background(), tbl, [][]string{{"Age", "Gender"}}, Options{Epsilon: 1e9, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rel := rels[0]
	ev := query.NewEvaluator(rel.Noisy)
	q, err := query.NewBuilder(rel.Schema).Range("Age", 0, 31).Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the true count from the base table.
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	truth := query.NewEvaluator(m)
	qFull, err := query.NewBuilder(tbl.Schema()).Range("Age", 0, 31).Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := truth.Count(qFull)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-2 {
		t.Fatalf("marginal query = %v, want ~%v", got, want)
	}
}
