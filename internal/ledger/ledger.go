// Package ledger tracks per-tenant ε-differential-privacy budgets
// across repeated publishes. The paper (§III) spends the whole budget
// in one shot: a release is computed once, ε is consumed, and the noisy
// matrix answers queries forever after. A continually-publishing
// deployment — a tenant feeding rows and republishing on a window —
// leaves that model the moment a second release appears: by the
// sequential composition theorem the releases' budgets add, so an
// ε₁-release followed by an ε₂-release of (evolving) data about the
// same individuals is (ε₁+ε₂)-differentially private, and a tenant
// with total budget B must be refused once Σεᵢ would exceed B. The
// ledger is that bookkeeping: Charge debits a publish's ε before any
// noise is drawn, Refund returns it when the publish fails or is
// cancelled (nothing was released, so nothing was spent), and
// Remaining is what sequential composition still allows.
//
// Accounting is exact. Budgets and charges are quantized to Unit
// (10⁻⁶ ε, rounded to nearest) and summed in int64 units, so Remaining
// never depends on float summation order: any interleaving of
// concurrent charges and refunds leaves the same balance, the total
// ever debited can never exceed the budget, and exhaustion is
// deterministic — whether a charge fits depends only on the current
// balance, never on how many over-budget attempts were refused before
// it (a refused Charge mutates nothing).
//
// With a directory configured the ledger is durable: every successful
// Charge, Refund, Grant and NextEpoch writes the tenant's state file
// before returning, in the same atomic tmp+rename discipline as the
// release store's spill files, and New recovers every tenant from the
// directory — so a budget refusal survives a daemon restart. Failure
// ordering is conservative in the privacy direction: the debit is
// durable before the publish runs, so a crash in between can strand
// budget as spent, but no sequence of crashes can ever let a tenant
// exceed its budget.
package ledger

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Unit is the ledger's ε resolution: budgets and charges are rounded to
// the nearest whole multiple of Unit and accounted in exact integer
// multiples of it, which is what makes balances independent of
// charge/refund interleaving.
const Unit = 1e-6

// maxEpsilon bounds a single budget or charge so that the unit
// arithmetic can never overflow int64 (10⁹ ε is far beyond any
// meaningful privacy budget).
const maxEpsilon = 1e9

// fileExt is the per-tenant state file extension under Config.Dir.
const fileExt = ".ledger"

// ErrBudgetExhausted is returned (wrapped) by Charge when the debit
// would push a tenant's spend past its budget — the sequential-
// composition refusal. Callers should test with errors.Is; the serving
// layer maps it to HTTP 429.
var ErrBudgetExhausted = errors.New("ledger: privacy budget exhausted")

// Config configures a Ledger.
type Config struct {
	// Dir, when non-empty, is the durability directory: every tenant's
	// balance is written through to <Dir>/<tenant>.ledger and recovered
	// by New. Empty means a memory-only ledger (budgets die with the
	// process).
	Dir string
	// DefaultBudget is the ε budget a tenant starts with on first
	// contact; Grant overrides it per tenant. ≤ 0 means unlimited —
	// spend is tracked but never refused.
	DefaultBudget float64
}

// Stats is a snapshot of the ledger's traffic counters, surfaced by the
// daemon's /stats endpoint. Charges counts successful debits, Refunds
// successful returns, Refusals charges rejected with ErrBudgetExhausted.
type Stats struct {
	Tenants  int   `json:"tenants"`
	Charges  int64 `json:"charges"`
	Refunds  int64 `json:"refunds"`
	Refusals int64 `json:"refusals"`
}

// Balance is one tenant's budget position. With an unlimited budget,
// Budget and Remaining are +Inf and Finite is false.
type Balance struct {
	Tenant    string  `json:"tenant"`
	Budget    float64 `json:"budget"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
	Finite    bool    `json:"finite"`
	// Epoch is the last epoch number handed out by NextEpoch (0 before
	// the first).
	Epoch uint64 `json:"epoch"`
}

// Ledger is a per-tenant privacy-budget accountant. The zero value is
// not usable; construct with New. All methods are safe for concurrent
// use; charges and refunds against one tenant serialize on that
// tenant's lock, tenants never contend with each other.
type Ledger struct {
	cfg     Config
	budget  int64 // default budget in units; -1 = unlimited
	mu      sync.RWMutex
	tenants map[string]*tenant

	charges  atomic.Int64
	refunds  atomic.Int64
	refusals atomic.Int64
}

// tenant is one tenant's state. budget/spent/epoch are guarded by mu;
// the state file write happens under mu too, so the file always holds a
// committed balance.
type tenant struct {
	mu     sync.Mutex
	name   string
	budget int64 // units; -1 = unlimited
	spent  int64 // units
	epoch  uint64
}

// Charge is the token a successful Charge returns; hand it back to
// Refund if the publish it paid for fails. The token records the exact
// units debited, so a refund restores the balance bit-identically.
type Charge struct {
	ledger   *Ledger
	tenant   *tenant
	units    int64
	refunded atomic.Bool
}

// Epsilon returns the ε the charge debited (after Unit quantization).
func (c *Charge) Epsilon() float64 { return toEps(c.units) }

// New builds a ledger. With cfg.Dir set it creates the directory if
// needed and recovers every tenant state file in it; a corrupt state
// file fails New outright — unlike a release spill file, a budget that
// cannot be read cannot be skipped, because serving without it could
// overspend a tenant's ε.
func New(cfg Config) (*Ledger, error) {
	b := int64(-1) // ≤ 0 = unlimited
	if cfg.DefaultBudget > 0 {
		var err error
		if b, err = toUnits(cfg.DefaultBudget); err != nil {
			return nil, fmt.Errorf("ledger: default budget: %w", err)
		}
	}
	l := &Ledger{cfg: cfg, budget: b, tenants: make(map[string]*tenant)}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("ledger: creating %s: %w", cfg.Dir, err)
		}
		if err := l.recover(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// recover loads every tenant state file in cfg.Dir. It runs before the
// ledger serves, so no locking is needed.
func (l *Ledger) recover() error {
	dirents, err := os.ReadDir(l.cfg.Dir)
	if err != nil {
		return fmt.Errorf("ledger: scanning %s: %w", l.cfg.Dir, err)
	}
	for _, d := range dirents {
		name := d.Name()
		if d.IsDir() {
			continue
		}
		// A crash mid-write strands a temp file; the rename never
		// happened, so the .ledger file still holds the last committed
		// state and the temp is garbage.
		if strings.HasSuffix(name, fileExt+".tmp") {
			os.Remove(filepath.Join(l.cfg.Dir, name))
			continue
		}
		if !strings.HasSuffix(name, fileExt) {
			continue
		}
		tn := strings.TrimSuffix(name, fileExt)
		if ValidateTenant(tn) != nil {
			continue // not one of ours
		}
		st, err := l.readState(tn)
		if err != nil {
			return fmt.Errorf("ledger: recovering tenant %q: %w", tn, err)
		}
		l.tenants[tn] = &tenant{name: tn, budget: st.Budget, spent: st.Spent, epoch: st.Epoch}
	}
	return nil
}

// tenant returns the tenant's state, creating it with the default
// budget (and persisting the creation) on first contact.
func (l *Ledger) tenant(name string) (*tenant, error) {
	l.mu.RLock()
	t := l.tenants[name]
	l.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	if err := ValidateTenant(name); err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if t = l.tenants[name]; t != nil {
		return t, nil
	}
	t = &tenant{name: name, budget: l.budget}
	// Persist the newborn tenant before registering it, so a tenant the
	// caller has observed always has a state file to recover from.
	t.mu.Lock()
	err := l.persist(t)
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	l.tenants[name] = t
	return t, nil
}

// Charge debits eps from the tenant's budget under sequential
// composition, creating the tenant with the default budget on first
// contact. It returns ErrBudgetExhausted (wrapped, with the shortfall
// spelled out) when the debit does not fit; a refused charge mutates
// nothing, so refusal is deterministic and repeatable. On success the
// debit is durable before Charge returns.
func (l *Ledger) Charge(tenantName string, eps float64) (*Charge, error) {
	units, err := toUnits(eps)
	if err != nil {
		return nil, fmt.Errorf("ledger: tenant %q: charge: %w", tenantName, err)
	}
	t, err := l.tenant(tenantName)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.budget >= 0 && t.spent+units > t.budget {
		l.refusals.Add(1)
		return nil, fmt.Errorf("ledger: tenant %q: charge ε=%g exceeds remaining budget ε=%g (budget %g, spent %g): %w",
			tenantName, toEps(units), toEps(t.budget-t.spent),
			toEps(t.budget), toEps(t.spent), ErrBudgetExhausted)
	}
	t.spent += units
	if err := l.persist(t); err != nil {
		t.spent -= units // the debit never became durable; undo it
		return nil, err
	}
	l.charges.Add(1)
	return &Charge{ledger: l, tenant: t, units: units}, nil
}

// Refund returns a charge to its tenant's budget — the failure path for
// a publish that was cancelled or errored after its Charge succeeded
// (no release happened, so under sequential composition nothing was
// spent). Refund is idempotent: refunding the same token twice is a
// no-op, so a caller may refund on every error path without
// double-crediting. A persistence failure leaves the in-memory balance
// refunded (the durable copy then over-counts spend until the next
// successful write — conservative, never overspending).
func (l *Ledger) Refund(c *Charge) error {
	if c == nil || c.ledger != l {
		return fmt.Errorf("ledger: refund of a foreign or nil charge")
	}
	if !c.refunded.CompareAndSwap(false, true) {
		return nil
	}
	t := c.tenant
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spent -= c.units
	l.refunds.Add(1)
	return l.persist(t)
}

// NextEpoch hands out the tenant's next release epoch number (1, 2, …),
// creating the tenant on first contact. The counter is persisted with
// the balance, so epochs keep ascending across restarts and a withdrawn
// epoch's number is never reissued.
func (l *Ledger) NextEpoch(tenantName string) (uint64, error) {
	t, err := l.tenant(tenantName)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epoch++
	if err := l.persist(t); err != nil {
		t.epoch--
		return 0, err
	}
	return t.epoch, nil
}

// Grant sets the tenant's total budget (replacing the default or a
// previous grant), creating the tenant if needed. budget ≤ 0 means
// unlimited. Spend already recorded is kept: shrinking a budget below
// the tenant's spend refuses all further charges without forgiving the
// past ones.
func (l *Ledger) Grant(tenantName string, budget float64) error {
	units := int64(-1)
	if budget > 0 {
		var err error
		if units, err = toUnits(budget); err != nil {
			return fmt.Errorf("ledger: tenant %q: grant: %w", tenantName, err)
		}
	}
	t, err := l.tenant(tenantName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.budget
	t.budget = units
	if err := l.persist(t); err != nil {
		t.budget = old
		return err
	}
	return nil
}

// Balance returns the tenant's budget position. An unknown tenant
// reports the position it would start with (default budget, nothing
// spent) without creating it.
func (l *Ledger) Balance(tenantName string) Balance {
	l.mu.RLock()
	t := l.tenants[tenantName]
	l.mu.RUnlock()
	budget, spent := l.budget, int64(0)
	var epoch uint64
	if t != nil {
		t.mu.Lock()
		budget, spent, epoch = t.budget, t.spent, t.epoch
		t.mu.Unlock()
	}
	b := Balance{Tenant: tenantName, Spent: toEps(spent), Epoch: epoch}
	if budget < 0 {
		b.Budget, b.Remaining = math.Inf(1), math.Inf(1)
	} else {
		b.Finite = true
		b.Budget = toEps(budget)
		b.Remaining = toEps(budget - spent)
	}
	return b
}

// Remaining returns the tenant's unspent ε (+Inf for an unlimited
// budget; the full default budget for a tenant not yet seen).
func (l *Ledger) Remaining(tenantName string) float64 { return l.Balance(tenantName).Remaining }

// Tenants returns the known tenant names, sorted.
func (l *Ledger) Tenants() []string {
	l.mu.RLock()
	out := make([]string, 0, len(l.tenants))
	for name := range l.tenants {
		out = append(out, name)
	}
	l.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the ledger's counters.
func (l *Ledger) Stats() Stats {
	l.mu.RLock()
	n := len(l.tenants)
	l.mu.RUnlock()
	return Stats{
		Tenants:  n,
		Charges:  l.charges.Load(),
		Refunds:  l.refunds.Load(),
		Refusals: l.refusals.Load(),
	}
}

// toUnits quantizes eps to ledger units, rounding to nearest so that
// decimal budgets like 0.1 land on exact unit counts. The scale factor
// 1e6 is exactly representable, so eps*1e6 is one correctly-rounded
// operation before the Round.
func toUnits(eps float64) (int64, error) {
	if math.IsNaN(eps) || eps <= 0 || eps > maxEpsilon {
		return 0, fmt.Errorf("epsilon %v outside (0, %g]", eps, float64(maxEpsilon))
	}
	u := int64(math.Round(eps * 1e6))
	if u == 0 {
		u = 1 // a positive ε below resolution still costs one unit
	}
	return u, nil
}

// toEps converts exact units back to ε. Division by the exactly-
// representable 1e6 is correctly rounded, so round decimal balances
// (100000 units) convert to the float64 a decimal literal (0.1) parses
// to — which is what lets tests and clients compare balances with ==.
func toEps(units int64) float64 { return float64(units) / 1e6 }

// ValidateTenant checks that a tenant name is usable: non-empty,
// ≤ 64 bytes, alphanumerics plus '.', '_', '-', not starting with '.'.
// The grammar matches one segment of a store release ID, so a valid
// tenant name always yields valid "<tenant>/<epoch>" release IDs and a
// safe "<tenant>.ledger" state filename.
func ValidateTenant(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("ledger: invalid tenant name %q", name)
	}
	if name[0] == '.' {
		return fmt.Errorf("ledger: invalid tenant name %q", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("ledger: invalid tenant name %q", name)
		}
	}
	return nil
}
