package ledger

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestLedgerConcurrentChargeNeverOverspends is the core safety
// property, run under -race by CI: however goroutines interleave their
// charges, the number that succeed is exactly the number that fit the
// budget — never one more — and the final balance equals the successes'
// exact sum.
func TestLedgerConcurrentChargeNeverOverspends(t *testing.T) {
	const (
		budget     = 1.0
		eps        = 0.03 // 33 charges fit, the 34th does not
		goroutines = 8
		perG       = 10
	)
	l := mustLedger(t, Config{DefaultBudget: budget})
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		succeeded int
		refused   int
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				_, err := l.Charge("t", eps)
				mu.Lock()
				switch {
				case err == nil:
					succeeded++
				case errors.Is(err, ErrBudgetExhausted):
					refused++
				default:
					mu.Unlock()
					t.Errorf("unexpected charge error: %v", err)
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if succeeded != 33 || refused != goroutines*perG-33 {
		t.Fatalf("succeeded = %d, refused = %d; want exactly 33 successes", succeeded, refused)
	}
	if got := l.Remaining("t"); got != 0.01 {
		t.Fatalf("Remaining = %v, want exactly 0.01", got)
	}
	st := l.Stats()
	if st.Charges != 33 || st.Refusals != int64(refused) {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestLedgerConcurrentChargeRefundExact interleaves random charges and
// refunds across goroutines (and tenants) and checks the invariants the
// integer-unit accounting promises: the balance is exactly
// Σcharged − Σrefunded at every quiescent point, total outstanding debit
// never exceeds the budget, and double refunds never credit twice.
func TestLedgerConcurrentChargeRefundExact(t *testing.T) {
	const (
		budget     = 10.0
		goroutines = 8
		ops        = 200
	)
	l := mustLedger(t, Config{Dir: t.TempDir(), DefaultBudget: budget})
	tenants := []string{"a", "b", "c"}
	kept := make([]int64, len(tenants)) // net units outstanding, by tenant
	var keptMu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				tn := rng.Intn(len(tenants))
				eps := float64(rng.Intn(50)+1) * 0.01
				c, err := l.Charge(tenants[tn], eps)
				if errors.Is(err, ErrBudgetExhausted) {
					continue
				}
				if err != nil {
					t.Errorf("charge: %v", err)
					return
				}
				if rng.Intn(2) == 0 {
					if err := l.Refund(c); err != nil {
						t.Errorf("refund: %v", err)
						return
					}
					if rng.Intn(4) == 0 {
						_ = l.Refund(c) // double refund must be a no-op
					}
				} else {
					keptMu.Lock()
					kept[tn] += c.units
					keptMu.Unlock()
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	for i, tn := range tenants {
		b := l.Balance(tn)
		want := toEps(kept[i])
		if b.Spent != want {
			t.Fatalf("tenant %s: Spent = %v, want exactly %v", tn, b.Spent, want)
		}
		if b.Spent > budget {
			t.Fatalf("tenant %s: overspent: %v > %v", tn, b.Spent, budget)
		}
	}
	st := l.Stats()
	if st.Refunds > st.Charges {
		t.Fatalf("more refunds than charges: %+v", st)
	}

	// The durable copy agrees with memory exactly after recovery.
	l2 := mustLedger(t, Config{Dir: l.cfg.Dir, DefaultBudget: budget})
	for _, tn := range tenants {
		if got, want := l2.Balance(tn), l.Balance(tn); got != want {
			t.Fatalf("tenant %s: recovered %+v, want %+v", tn, got, want)
		}
	}
}

// TestLedgerConcurrentNextEpochUnique checks epoch numbers are handed
// out without gaps or duplicates under contention.
func TestLedgerConcurrentNextEpochUnique(t *testing.T) {
	const goroutines, perG = 8, 25
	l := mustLedger(t, Config{DefaultBudget: 1})
	seen := make(chan uint64, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ep, err := l.NextEpoch("t")
				if err != nil {
					t.Errorf("NextEpoch: %v", err)
					return
				}
				seen <- ep
			}
		}()
	}
	wg.Wait()
	close(seen)
	got := make(map[uint64]bool)
	for ep := range seen {
		if got[ep] {
			t.Fatalf("epoch %d issued twice", ep)
		}
		got[ep] = true
	}
	for ep := uint64(1); ep <= goroutines*perG; ep++ {
		if !got[ep] {
			t.Fatalf("epoch %d never issued", ep)
		}
	}
}
