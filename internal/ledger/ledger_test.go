package ledger

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustLedger(t *testing.T, cfg Config) *Ledger {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLedgerChargeRefundExact(t *testing.T) {
	l := mustLedger(t, Config{DefaultBudget: 1.0})
	c1, err := l.Charge("alice", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Remaining("alice"); got != 0.7 {
		t.Fatalf("Remaining = %v, want exactly 0.7", got)
	}
	c2, err := l.Charge("alice", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// 0.3+0.3+0.3 = 0.9 fits; a fourth 0.3 must not.
	if _, err := l.Charge("alice", 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Charge("alice", 0.3); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("4th charge err = %v, want ErrBudgetExhausted", err)
	}
	// The remaining 0.1 is still exactly chargeable — no float drift.
	if got := l.Remaining("alice"); got != 0.1 {
		t.Fatalf("Remaining = %v, want exactly 0.1", got)
	}
	if _, err := l.Charge("alice", 0.1); err != nil {
		t.Fatalf("exact-fit charge refused: %v", err)
	}
	if got := l.Remaining("alice"); got != 0 {
		t.Fatalf("Remaining = %v, want 0", got)
	}

	// Refunds restore bit-identically, and are idempotent.
	if err := l.Refund(c1); err != nil {
		t.Fatal(err)
	}
	if err := l.Refund(c1); err != nil {
		t.Fatal(err) // second refund is a no-op
	}
	if got := l.Remaining("alice"); got != 0.3 {
		t.Fatalf("Remaining after refund = %v, want exactly 0.3", got)
	}
	if st := l.Stats(); st.Refunds != 1 {
		t.Fatalf("Refunds = %d, want 1 (idempotent)", st.Refunds)
	}
	_ = c2
}

// TestLedgerRefusalDeterministic pins the no-flicker contract: a
// refused charge mutates nothing, so the same over-budget charge is
// refused every time while smaller charges that fit keep succeeding,
// regardless of how many refusals happened in between.
func TestLedgerRefusalDeterministic(t *testing.T) {
	l := mustLedger(t, Config{DefaultBudget: 0.5})
	if _, err := l.Charge("bob", 0.4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Charge("bob", 0.2); !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("attempt %d: err = %v, want ErrBudgetExhausted", i, err)
		}
		if got := l.Remaining("bob"); got != 0.1 {
			t.Fatalf("attempt %d: refusal changed balance: %v", i, got)
		}
	}
	// The lowest charge that fits still fits after every refusal.
	if _, err := l.Charge("bob", 0.1); err != nil {
		t.Fatalf("fitting charge refused after refusals: %v", err)
	}
}

func TestLedgerBadInputs(t *testing.T) {
	l := mustLedger(t, Config{DefaultBudget: 1})
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1), 2e9} {
		if _, err := l.Charge("alice", eps); err == nil {
			t.Errorf("Charge(%v) accepted", eps)
		}
	}
	for _, name := range []string{"", ".hidden", "a/b", "sp ace", strings.Repeat("x", 65)} {
		if _, err := l.Charge(name, 0.1); err == nil {
			t.Errorf("tenant %q accepted", name)
		}
	}
	if err := l.Refund(nil); err == nil {
		t.Error("Refund(nil) accepted")
	}
	other := mustLedger(t, Config{})
	c, err := other.Charge("alice", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Refund(c); err == nil {
		t.Error("Refund of a foreign ledger's charge accepted")
	}
}

func TestLedgerUnlimitedAndGrant(t *testing.T) {
	l := mustLedger(t, Config{}) // no default budget = unlimited
	for i := 0; i < 100; i++ {
		if _, err := l.Charge("free", 10); err != nil {
			t.Fatal(err)
		}
	}
	b := l.Balance("free")
	if b.Finite || !math.IsInf(b.Remaining, 1) || b.Spent != 1000 {
		t.Fatalf("Balance = %+v", b)
	}
	// Granting a finite budget below the recorded spend refuses
	// everything without forgiving history.
	if err := l.Grant("free", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Charge("free", 0.001); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("charge after shrink err = %v, want ErrBudgetExhausted", err)
	}
	if got := l.Balance("free").Spent; got != 1000 {
		t.Fatalf("Spent after shrink = %v, want 1000", got)
	}
}

func TestLedgerNextEpochMonotonic(t *testing.T) {
	l := mustLedger(t, Config{DefaultBudget: 1})
	for want := uint64(1); want <= 5; want++ {
		got, err := l.NextEpoch("alice")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("NextEpoch = %d, want %d", got, want)
		}
	}
	if b := l.Balance("alice"); b.Epoch != 5 {
		t.Fatalf("Balance.Epoch = %d, want 5", b.Epoch)
	}
}

func TestLedgerStateRoundTrip(t *testing.T) {
	for _, st := range []State{
		{Budget: -1, Spent: 0, Epoch: 0},
		{Budget: 1_000_000, Spent: 123_456, Epoch: 42},
	} {
		var buf bytes.Buffer
		if err := EncodeState(&buf, st); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeState(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != st {
			t.Fatalf("round trip = %+v, want %+v", got, st)
		}
	}
	for _, raw := range []string{
		"",
		"privelet-ledger v2\nbudget=1\nspent=0\nepoch=0\n",
		"privelet-ledger v1\nbudget=1\nspent=0\n",
		"privelet-ledger v1\nbudget=1\nspent=0\nepoch=0\nextra=1\n",
		"privelet-ledger v1\nbudget=x\nspent=0\nepoch=0\n",
	} {
		if _, err := DecodeState(strings.NewReader(raw)); err == nil {
			t.Errorf("DecodeState accepted %q", raw)
		}
	}
}

// TestLedgerRestartRecovery is the durability contract: balances,
// budgets and epoch counters recover bit-identically from the state
// directory, and a refusal decided before the restart is still decided
// the same way after it.
func TestLedgerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	l1 := mustLedger(t, Config{Dir: dir, DefaultBudget: 1})
	if _, err := l1.Charge("alice", 0.7); err != nil {
		t.Fatal(err)
	}
	c, err := l1.Charge("alice", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l1.Refund(c); err != nil {
		t.Fatal(err)
	}
	if _, err := l1.NextEpoch("alice"); err != nil {
		t.Fatal(err)
	}
	if err := l1.Grant("bob", 5); err != nil {
		t.Fatal(err)
	}
	before := l1.Balance("alice")

	l2 := mustLedger(t, Config{Dir: dir, DefaultBudget: 1})
	after := l2.Balance("alice")
	if after != before {
		t.Fatalf("recovered balance = %+v, want %+v", after, before)
	}
	if got := l2.Balance("bob").Budget; got != 5 {
		t.Fatalf("recovered bob budget = %v, want 5", got)
	}
	if got := l2.Tenants(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Tenants = %v", got)
	}
	// The over-budget refusal survives the restart.
	if _, err := l2.Charge("alice", 0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("post-restart charge err = %v, want ErrBudgetExhausted", err)
	}
	if ep, err := l2.NextEpoch("alice"); err != nil || ep != 2 {
		t.Fatalf("post-restart NextEpoch = %d, %v, want 2", ep, err)
	}
}

func TestLedgerCorruptStateFailsNew(t *testing.T) {
	dir := t.TempDir()
	l := mustLedger(t, Config{Dir: dir, DefaultBudget: 1})
	if _, err := l.Charge("alice", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "alice.ledger"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir, DefaultBudget: 1}); err == nil {
		t.Fatal("New accepted a corrupt budget file")
	}
}

func TestLedgerTempFileSweep(t *testing.T) {
	dir := t.TempDir()
	l := mustLedger(t, Config{Dir: dir, DefaultBudget: 1})
	if _, err := l.Charge("alice", 0.5); err != nil {
		t.Fatal(err)
	}
	stranded := filepath.Join(dir, "alice.ledger.tmp")
	if err := os.WriteFile(stranded, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := mustLedger(t, Config{Dir: dir, DefaultBudget: 1})
	if got := l2.Remaining("alice"); got != 0.5 {
		t.Fatalf("Remaining = %v, want 0.5 (committed state, not the temp)", got)
	}
	if _, err := os.Stat(stranded); !os.IsNotExist(err) {
		t.Fatal("stranded temp file not swept")
	}
}

func TestValidateTenant(t *testing.T) {
	for _, ok := range []string{"alice", "a-b_c.d", "X9"} {
		if err := ValidateTenant(ok); err != nil {
			t.Errorf("ValidateTenant(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", ".a", "a/b", "a b", "ü", strings.Repeat("x", 65)} {
		if err := ValidateTenant(bad); err == nil {
			t.Errorf("ValidateTenant(%q) accepted", bad)
		}
	}
}
