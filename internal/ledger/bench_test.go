package ledger

import "testing"

// BenchmarkLedgerCharge measures the charge/refund pair on a
// memory-only ledger — the cost the tenant publish path adds before any
// noise is drawn. The pair keeps the balance level so the loop never
// exhausts. Durable mode adds one atomic file write per operation; that
// cost belongs to the filesystem, not this hot path.
func BenchmarkLedgerCharge(b *testing.B) {
	l, err := New(Config{DefaultBudget: 1e6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := l.Charge("bench", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Refund(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLedgerChargeDurable is the same pair against a persisted
// ledger, so the write-through cost is visible next to the memory one.
func BenchmarkLedgerChargeDurable(b *testing.B) {
	l, err := New(Config{Dir: b.TempDir(), DefaultBudget: 1e6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := l.Charge("bench", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Refund(c); err != nil {
			b.Fatal(err)
		}
	}
}
