package ledger

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// State is one tenant's durable balance, in exact ledger units — the
// unit the two functions below negotiate, mirroring how
// store.EncodeRelease/DecodeRelease pin the release artifact format in
// one place. Budget is -1 for an unlimited tenant.
type State struct {
	Budget int64
	Spent  int64
	Epoch  uint64
}

// stateMagic versions the state file; bump it if the line set changes
// shape incompatibly.
const stateMagic = "privelet-ledger v1"

// EncodeState writes a tenant balance in the durable ledger format: a
// version line followed by one key=value line per field. Text rather
// than binary because the values are three integers an operator may
// legitimately want to audit with cat; the format is versioned and
// parsed strictly all the same.
func EncodeState(w io.Writer, st State) error {
	_, err := fmt.Fprintf(w, "%s\nbudget=%d\nspent=%d\nepoch=%d\n",
		stateMagic, st.Budget, st.Spent, st.Epoch)
	return err
}

// DecodeState reads a balance previously written by EncodeState,
// rejecting unknown versions, missing fields, and trailing garbage —
// a budget file that does not parse exactly is corrupt, and corrupt
// budget state must fail loudly (see New).
func DecodeState(r io.Reader) (State, error) {
	var st State
	sc := bufio.NewScanner(r)
	if !sc.Scan() || sc.Text() != stateMagic {
		return st, fmt.Errorf("ledger: bad or missing state header")
	}
	for _, key := range []string{"budget", "spent", "epoch"} {
		if !sc.Scan() {
			return st, fmt.Errorf("ledger: state truncated before %q", key)
		}
		var v int64
		if _, err := fmt.Sscanf(sc.Text(), key+"=%d", &v); err != nil {
			return st, fmt.Errorf("ledger: bad state line %q: %w", sc.Text(), err)
		}
		switch key {
		case "budget":
			st.Budget = v
		case "spent":
			st.Spent = v
		case "epoch":
			if v < 0 {
				return st, fmt.Errorf("ledger: negative epoch %d", v)
			}
			st.Epoch = uint64(v)
		}
	}
	if sc.Scan() {
		return st, fmt.Errorf("ledger: trailing state data %q", sc.Text())
	}
	return st, sc.Err()
}

// statePath is the tenant's state file under cfg.Dir.
func (l *Ledger) statePath(tenant string) string {
	return filepath.Join(l.cfg.Dir, tenant+fileExt)
}

// persist writes t's balance through to disk, atomically (encode to a
// temp file, then rename), so a reader — including recovery after a
// crash mid-write — always sees a complete committed state. Caller
// holds t.mu. A memory-only ledger persists nothing.
func (l *Ledger) persist(t *tenant) error {
	if l.cfg.Dir == "" {
		return nil
	}
	path := l.statePath(t.name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ledger: persisting tenant %q: %w", t.name, err)
	}
	if err := EncodeState(f, State{Budget: t.budget, Spent: t.spent, Epoch: t.epoch}); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: persisting tenant %q: %w", t.name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: persisting tenant %q: %w", t.name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: persisting tenant %q: %w", t.name, err)
	}
	return nil
}

// readState loads one tenant's state file.
func (l *Ledger) readState(tenant string) (State, error) {
	f, err := os.Open(l.statePath(tenant))
	if err != nil {
		return State{}, err
	}
	defer f.Close()
	return DecodeState(f)
}
