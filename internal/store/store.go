// Package store is the sharded, spillable release store behind the
// serving layer. The paper (§I, §III) frames a Privelet release as a
// publish-once artifact: the noisy frequency matrix M* is computed one
// time, spending the ε budget, and then answers arbitrarily many
// range-count queries forever after. Serving that model under heavy
// multi-tenant traffic needs two properties a single map under one
// RWMutex cannot give:
//
//   - Publishes must not serialize against queries of unrelated
//     releases. The store therefore stripes releases across N shards
//     keyed by FNV-1a(releaseID) mod N, each with its own RWMutex, so a
//     publish for tenant A contends only with the 1/N of traffic that
//     hashes to A's shard.
//   - Memory must not grow without bound as tenants accumulate
//     releases. With a spill directory configured, every release is
//     written through to disk at Put time in the internal/codec format
//     (the same bytes Release.Save and the /export endpoint emit), and
//     when more than MaxResident releases are in memory the
//     least-recently-used ones drop their in-memory matrix and
//     evaluator. A later Get transparently reloads from disk and
//     rebuilds the evaluator; decode is bit-exact and the prefix-sum
//     build is deterministic, so a reloaded release answers every query
//     bit-identically to the original (store tests assert this).
//
// Because spill files are written through at Put time, the directory
// doubles as durable storage: a new Store opened on the same directory
// recovers every previously-published release — warm up to the
// MaxResident budget, cold beyond it — and serves them after a daemon
// restart.
//
// A small Stub per release — accounting metadata, attribute names,
// entry count — always stays resident, so listing and describing
// releases never touches disk.
package store

import (
	"errors"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/mmapfile"
	"repro/internal/query"
)

// DefaultShards is the shard count used when Config.Shards is not set.
// Sixteen stripes is plenty for the tenant counts a single daemon sees;
// the marginal cost of an idle shard is one mutex and one empty map.
const DefaultShards = 16

// DefaultAnswerCache is the per-release answer-cache entry bound the
// daemon defaults to (priveletd -answer-cache). 64Ki entries ≈ a few
// MiB per hot release (key string + LRU node per entry) — enough to
// hold one and a half of the paper's 40 000-query workloads entirely,
// small next to the matrices the resident budget already accounts for.
const DefaultAnswerCache = 1 << 16

// spillExt is the filename extension of spill files; the payload bytes
// are exactly what cmd/privelet and the /export endpoint produce, so a
// spill file is itself a valid release artifact.
const spillExt = ".prvl"

// tombExt is the filename extension of tombstone markers: an empty file
// recording that the release under the flattened ID was deliberately
// deleted. Anti-entropy repair needs the distinction "never had it" vs
// "had it and deleted it" — without the marker, a replica that was down
// during a DELETE would resurrect its copy across the whole ring on the
// next repair sweep.
const tombExt = ".tomb"

// ErrNotFound is returned (wrapped) by Get and Describe when no release
// has the given ID. Callers should test with errors.Is.
var ErrNotFound = errors.New("store: release not found")

// ErrDuplicate is returned (wrapped) by Put and Ingest when the ID is
// already taken. Callers should test with errors.Is — the replication
// path treats it as success (releases are immutable, so an ID that
// exists already holds the same bytes), while a publish treats it as a
// caller bug.
var ErrDuplicate = errors.New("store: duplicate release")

// ErrDeleted is returned (wrapped) by Ingest when the ID carries a
// tombstone: the release was deliberately removed, and replication must
// not resurrect it. Only an explicit Put (a fresh publish reusing the
// ID) clears the tombstone. Callers should test with errors.Is.
var ErrDeleted = errors.New("store: release deleted")

// Config configures a Store.
type Config struct {
	// Shards is the number of lock stripes; ≤ 0 means DefaultShards.
	Shards int
	// MaxResident bounds how many releases keep their matrix and
	// evaluator in memory; 0 means unlimited. A positive value requires
	// Dir, since eviction without a spill path would lose data.
	MaxResident int
	// Dir, when non-empty, is the spill/durability directory. Every Put
	// writes the release through to Dir, evicted releases reload from
	// it, and New recovers the releases already present in it.
	Dir string
	// Parallelism is the worker count for rebuilding a release's
	// prefix-sum evaluator (the dominant cost of reloading a spilled
	// release and of startup recovery); ≤ 0 means GOMAXPROCS. The
	// rebuild is bit-identical at any worker count
	// (matrix.PrefixSumExec), so this only affects reload latency.
	Parallelism int
	// AnswerCache, when positive, bounds a per-release LRU answer cache
	// (entry count) serving repeated range-count queries as memory
	// lookups. Releases are immutable, so a cached answer can never go
	// stale; the cache lives and dies with its store entry — Remove
	// drops it (the only invalidation a release ever needs), while LRU
	// eviction keeps it (the cache is small and bounded; the matrix it
	// spares lookups into is neither). ≤ 0 disables caching.
	AnswerCache int
	// NoMMap disables memory-mapped reload. By default (false) a
	// spilled release whose file carries the durable summed-area table
	// (codec format v2) reloads by memory-mapping that section and
	// serving queries straight from the page cache — no decode of the
	// float64 sections, no prefix-sum rebuild. With NoMMap set, reloads
	// fall back to the sequential decode, which still reuses the
	// persisted table (zero prefix-sum work) but copies it onto the
	// heap. Answers are float64-identical on every path.
	NoMMap bool
}

// Release is the resident view of a stored release, as returned by Get
// (by value, so the resident fast path never heap-allocates). The
// pointers remain valid (and immutable) even if the store evicts the
// release afterwards; eviction only drops the store's own references.
// This is what lets a batch execution (query.Batch) hold one Release
// across a whole 40k-query workload while the store churns: a handle
// obtained before, during, or after an evict/reload cycle answers every
// query bit-identically (float64 ==), since decode is bit-exact and the
// evaluator rebuild is deterministic — property-tested under concurrent
// churn in batch_test.go.
type Release struct {
	// ID is the store-wide release identifier.
	ID string
	// Payload carries the schema, noisy matrix and privacy accounting.
	Payload *codec.Payload
	// Eval answers range-count queries from the precomputed prefix-sum
	// table of the noisy matrix.
	Eval *query.Evaluator
	// Cache is the release's answer cache, nil when Config.AnswerCache
	// is off. It is bound to the store entry: the handle keeps working
	// after eviction, and Remove discards it with the entry, so a cache
	// can never serve answers for a withdrawn release (or for a new
	// release reusing the ID — that Put builds a fresh cache).
	Cache *query.AnswerCache
	// Workers is the publish-time parallelism — operational metadata
	// only (it never affects release values) and not persisted: after a
	// restart recovers a release from disk it reads 0.
	Workers int
}

// Stub is the always-resident summary of a release; List and Describe
// return it without touching disk even for spilled releases.
type Stub struct {
	// ID is the store-wide release identifier.
	ID string
	// Meta is the privacy accounting carried alongside the release.
	Meta codec.Meta
	// Attrs lists the schema's attribute names in order.
	Attrs []string
	// Entries is the number of frequency-matrix entries.
	Entries int
	// Workers is the publish-time parallelism (see Release.Workers).
	Workers int
	// Resident reports whether the release currently holds its matrix
	// and evaluator in memory.
	Resident bool
	// HeapBytes and MappedBytes split the release's resident float64
	// backing (noisy matrix + summed-area table) between process heap
	// and memory-mapped spill-file pages. Both are zero while the
	// release is not resident; a mapped release's MappedBytes is an
	// upper bound — actual residency is the pages queries have touched,
	// and the kernel reclaims them under pressure.
	HeapBytes   int64
	MappedBytes int64
}

// Stats is a snapshot of the store's accounting, surfaced by the
// daemon's /stats endpoint. The AnswerCache* counters aggregate over
// every release's answer cache (hits/misses/evictions keep counting
// across release removals; Entries is the current total).
type Stats struct {
	Shards      int   `json:"shards"`
	MaxResident int   `json:"max_resident"`
	Releases    int   `json:"releases"`
	Resident    int   `json:"resident"`
	Spilled     int   `json:"spilled"`
	Evictions   int64 `json:"evictions"`
	Reloads     int64 `json:"reloads"`
	Removals    int64 `json:"removals"`
	// MMapHits counts loads (reload or recovery warm-up) whose
	// evaluator was constructed over a memory-mapped summed-area table;
	// Rebuilds counts loads that had to re-run the prefix-sum build
	// because no usable durable table existed (format-v1 file, failed
	// checksum, or a table-less ingest). A store serving v2 spill files
	// keeps Rebuilds flat across evict/reload churn — that flatness is
	// the O(1)-reload guarantee, asserted in tests.
	MMapHits int64 `json:"mmap_hits"`
	Rebuilds int64 `json:"rebuilds"`
	// MappedBytes/HeapBytes aggregate the per-release residency split
	// (see Stub.MappedBytes) over every resident release.
	MappedBytes          int64 `json:"mapped_bytes"`
	HeapBytes            int64 `json:"heap_bytes"`
	Tombstones           int   `json:"tombstones"`
	AnswerCacheMax       int   `json:"answer_cache_max"`
	AnswerCacheEntries   int   `json:"answer_cache_entries"`
	AnswerCacheHits      int64 `json:"answer_cache_hits"`
	AnswerCacheMisses    int64 `json:"answer_cache_misses"`
	AnswerCacheEvictions int64 `json:"answer_cache_evictions"`
}

// Store is a sharded release store. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Store struct {
	cfg    Config
	shards []shard

	// clock is a global logical clock; entries stamp themselves with it
	// on every access, giving the LRU order without taking write locks
	// on the read path.
	clock atomic.Int64
	// resident counts releases currently holding payload + evaluator.
	resident  atomic.Int64
	evictions atomic.Int64
	reloads   atomic.Int64
	removals  atomic.Int64
	mmapHits  atomic.Int64
	rebuilds  atomic.Int64
	// cacheCtr aggregates answer-cache traffic across every release's
	// cache, so /stats totals survive individual release removal.
	cacheCtr query.CacheCounters

	// tombMu guards tombs, the set of deleted release IDs. Tombstones are
	// few (one per deliberate DELETE, cleared on ID reuse), so a single
	// mutex beside the sharded entries costs nothing on the serving path —
	// only Remove, Put, Ingest and the repair sweep touch it.
	tombMu sync.Mutex
	tombs  map[string]struct{}
}

type shard struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// entry is one stored release. stub/workers are immutable after insert;
// payload, eval and spilled are guarded by the owning shard's mutex;
// payload/eval are nil while the release is not resident.
type entry struct {
	id       string
	stub     Stub
	lastUsed atomic.Int64
	// cache is the entry's answer cache (nil when disabled), immutable
	// after insert like stub: eviction keeps it, Remove discards it.
	cache *query.AnswerCache
	// ioMu serializes the entry's spill-file I/O: the write-through at
	// Put, reloads (so a hot spilled release is decoded once, not once
	// per waiting goroutine), and Remove's wait for an in-flight
	// write-through to settle before the ID is declared reusable.
	ioMu sync.Mutex

	payload *codec.Payload
	eval    *query.Evaluator
	// spilled records that the release's disk copy exists; eviction
	// must never drop an entry before its spill file is durable.
	spilled bool
	// heapBytes/mappedBytes split the resident float64 backing between
	// process heap and mapped spill-file pages (see Stub); zero while
	// not resident. Guarded by the shard mutex like payload.
	heapBytes   int64
	mappedBytes int64
}

// New builds a store. With cfg.Dir set it creates the directory if
// needed and recovers every readable *.prvl release already in it (see
// recover for the warm-up and corrupt-file policy).
func New(cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.MaxResident > 0 && cfg.Dir == "" {
		return nil, fmt.Errorf("store: MaxResident %d requires a spill Dir", cfg.MaxResident)
	}
	s := &Store{cfg: cfg, shards: make([]shard, cfg.Shards), tombs: make(map[string]struct{})}
	for i := range s.shards {
		s.shards[i].entries = make(map[string]*entry)
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", cfg.Dir, err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// recover registers every spill file in cfg.Dir as an entry. Each file
// must be decoded once to build its always-resident Stub; rather than
// throw that work away, the decoded payload is kept resident while the
// MaxResident budget has room (for an unbounded store the payloads are
// dropped, so opening a large archive does not load it all into
// memory). An unreadable file is skipped with a warning — one corrupt
// release must not take down serving for every healthy one.
func (s *Store) recover() error {
	dirents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.cfg.Dir, err)
	}
	// Tombstones first: a spill file whose ID is tombstoned is an orphan
	// from a crash between Remove's marker write and its unlink — the
	// marker wins (the release was deliberately deleted), and the orphan
	// is swept rather than resurrected.
	for _, d := range dirents {
		name := d.Name()
		if d.IsDir() || !strings.HasSuffix(name, tombExt) {
			continue
		}
		id := spillID(strings.TrimSuffix(name, tombExt))
		if validateID(id) != nil {
			continue // not one of ours
		}
		s.tombs[id] = struct{}{}
	}
	for _, d := range dirents {
		name := d.Name()
		if d.IsDir() {
			continue
		}
		// A crash mid-writeSpill can strand a temp file; sweep it now —
		// recovery runs before the store serves, so nothing is writing.
		if strings.HasSuffix(name, spillExt+".tmp") {
			os.Remove(filepath.Join(s.cfg.Dir, name))
			continue
		}
		if !strings.HasSuffix(name, spillExt) {
			continue
		}
		id := spillID(strings.TrimSuffix(name, spillExt))
		if validateID(id) != nil {
			continue // not one of ours
		}
		if s.Tombstoned(id) {
			os.Remove(filepath.Join(s.cfg.Dir, name))
			continue
		}
		p, info, err := s.loadPayload(id)
		if err != nil {
			log.Printf("store: skipping unreadable spill file %s: %v", name, err)
			continue
		}
		e := &entry{id: id, stub: makeStub(id, p, 0), spilled: true, cache: s.newAnswerCache()}
		if s.cfg.MaxResident > 0 && s.resident.Load() < int64(s.cfg.MaxResident) {
			// Warm entries materialize their evaluator — free when the
			// file carried the table, a counted rebuild otherwise. Cold
			// entries drop the payload (and any mapping) here: with a
			// v2 archive the stub-building decode above only touched
			// header pages, so opening a large archive stays cheap.
			e.eval = s.evaluatorFor(p, true)
			e.payload = p
			e.heapBytes, e.mappedBytes = residency(p, info)
			if info.Table {
				s.mmapHits.Add(1)
			}
			e.touch(s)
			s.resident.Add(1)
		}
		sh := s.shard(id)
		sh.mu.Lock()
		sh.entries[id] = e
		sh.mu.Unlock()
	}
	return nil
}

// Put stores a release under id, which must be unique for the lifetime
// of the store's directory. Reusing an ID is a caller bug and is
// rejected — atomically, so racing duplicate Puts cannot clobber each
// other's spill file: the ID's map slot is claimed under the shard lock
// before any file I/O, and only the claimant writes the file. With a
// spill directory configured, Put does not return success until the
// release's disk copy is durable, and eviction skips entries whose
// write-through has not finished yet, so a spilled release always has a
// file to reload from. If the write-through fails, the release is
// withdrawn and the error returned (a concurrent Get in that window may
// have answered from the in-memory copy, as if the release had existed
// briefly).
//
// Put adopts p: when p arrives table-less it populates p.Table/p.Total
// with the evaluator's summed-area table before the write-through, so
// every spill file is written in format v2 and later reloads pay zero
// prefix-sum work.
func (s *Store) Put(id string, p *codec.Payload, workers int) error {
	if err := validateID(id); err != nil {
		return err
	}
	if p == nil || p.Schema == nil || p.Noisy == nil {
		return fmt.Errorf("store: nil payload components for %q", id)
	}
	e := &entry{
		id:      id,
		stub:    makeStub(id, p, workers),
		payload: p,
		eval:    s.evaluatorFor(p, false),
		cache:   s.newAnswerCache(),
	}
	e.heapBytes, e.mappedBytes = residency(p, codec.MapInfo{})
	e.touch(s)
	sh := s.shard(id)
	sh.mu.Lock()
	if _, dup := sh.entries[id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("store: release %q: %w", id, ErrDuplicate)
	}
	sh.entries[id] = e
	// Holding ioMu across the write-through lets Remove wait for the
	// rename (and any orphan cleanup) to settle before it returns — the
	// point at which the ID becomes safe to reuse. The lock is fresh and
	// uncontended here; ordering is always ioMu after the slot claim.
	e.ioMu.Lock()
	sh.mu.Unlock()
	s.resident.Add(1)
	defer e.ioMu.Unlock()
	if s.cfg.Dir != "" {
		if err := s.writeSpill(id, p); err != nil {
			// Roll back only if the slot is still ours: a concurrent
			// Remove may already have taken the entry out (and adjusted
			// the resident count), in which case there is nothing to
			// undo — the release is gone either way.
			sh.mu.Lock()
			if sh.entries[id] == e {
				delete(sh.entries, id)
				s.resident.Add(-1)
			}
			sh.mu.Unlock()
			return err
		}
		sh.mu.Lock()
		if sh.entries[id] != e {
			// Removed while the write-through was in flight; the spill
			// file just written is an orphan Remove could not see —
			// delete it so a restart does not resurrect the release.
			// The delete happens under the shard lock and only while the
			// ID's slot is vacant, so it can never hit a successor Put's
			// fresh file (claiming the slot requires this lock).
			if sh.entries[id] == nil {
				os.Remove(s.spillPath(id))
			}
			sh.mu.Unlock()
			return nil
		}
		e.spilled = true
		sh.mu.Unlock()
	}
	// A fresh publish reusing a deleted ID clears the tombstone — but only
	// once the release is fully durable, so a failed Put leaves the delete
	// marker (and the repair sweep's view of it) intact.
	s.clearTombstone(id)
	s.enforceBudget()
	return nil
}

// Remove deletes the release under id: it is withdrawn from serving
// immediately and its spill file (if any) is deleted, reclaiming the
// disk space — the release-deletion path the spill directory needed to
// stop growing forever. Removal is terminal even on error: once Remove
// returns, the ID is free (a non-nil error means only that the disk file
// may linger; recovery will re-register such a file after a restart, so
// callers should retry the Remove then). Returns an error wrapping
// ErrNotFound for unknown IDs.
//
// Concurrent readers are safe: a Get holding the Release keeps valid
// pointers (removal only drops the store's references), and a Get racing
// the removal either completes first or reports ErrNotFound.
func (s *Store) Remove(id string) error {
	sh := s.shard(id)
	sh.mu.Lock()
	e := sh.entries[id]
	if e == nil {
		sh.mu.Unlock()
		return fmt.Errorf("store: %q: %w", id, ErrNotFound)
	}
	delete(sh.entries, id)
	resident := e.payload != nil
	sh.mu.Unlock()
	if resident {
		s.resident.Add(-1)
	}
	s.removals.Add(1)
	// Tombstone before the spill unlink: if the process dies between the
	// two, recovery finds marker + file and finishes the delete instead of
	// resurrecting the release. Repair sweeps read the marker to propagate
	// the delete to replicas that were down when it happened.
	s.addTombstone(id)
	// Wait for an in-flight write-through to settle: Put holds ioMu from
	// the slot claim until its rename (or orphan cleanup) is done, so
	// after this acquisition the file state is final and no stale rename
	// can land once Remove has returned — which is exactly when the ID
	// becomes free for reuse.
	e.ioMu.Lock()
	spilled := e.spilled
	e.ioMu.Unlock()
	var fileErr error
	if s.cfg.Dir != "" && spilled {
		// Unlink under the shard lock, only while the slot is vacant: a
		// successor Put (the ID is free from the caller's perspective
		// the moment we return) claims the slot under the same lock, so
		// the delete can never hit a successor's fresh file.
		sh.mu.Lock()
		if sh.entries[id] == nil {
			if err := os.Remove(s.spillPath(id)); err != nil && !os.IsNotExist(err) {
				fileErr = fmt.Errorf("store: removing spill file of %q: %w", id, err)
			}
		}
		sh.mu.Unlock()
	}
	return fileErr
}

// Get returns the release under id, transparently reloading it from the
// spill directory (and rebuilding its evaluator) if it was evicted.
// Returns an error wrapping ErrNotFound for unknown IDs. The Release is
// returned by value so the resident fast path stays allocation-free.
func (s *Store) Get(id string) (Release, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	e := sh.entries[id]
	var rel Release
	if e != nil && e.payload != nil {
		rel = Release{ID: id, Payload: e.payload, Eval: e.eval, Cache: e.cache, Workers: e.stub.Workers}
	}
	sh.mu.RUnlock()
	if e == nil {
		return Release{}, fmt.Errorf("store: %q: %w", id, ErrNotFound)
	}
	if rel.Payload != nil {
		e.touch(s)
		return rel, nil
	}
	return s.reload(sh, e)
}

// Describe returns the release's always-resident summary without
// loading a spilled release.
func (s *Store) Describe(id string) (Stub, error) {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.entries[id]
	if e == nil {
		return Stub{}, fmt.Errorf("store: %q: %w", id, ErrNotFound)
	}
	st := e.stub
	st.Resident = e.payload != nil
	st.HeapBytes, st.MappedBytes = e.heapBytes, e.mappedBytes
	return st, nil
}

// List returns every release's summary, sorted by ID (shortest first,
// then lexicographic, so r2 sorts before r10). It never touches disk.
func (s *Store) List() []Stub { return s.ListPrefix("") }

// ListPrefix returns the summaries of releases whose ID starts with
// prefix, with List's ordering — under the "<tenant>/<epoch>" ID
// scheme, ListPrefix("alice/") is tenant alice's epoch list (the
// shortest-first order ranks epochs numerically). Like List it never
// touches disk, so enumerating a tenant's epochs cannot thrash the
// resident budget.
func (s *Store) ListPrefix(prefix string) []Stub {
	var out []Stub
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if !strings.HasPrefix(e.id, prefix) {
				continue
			}
			st := e.stub
			st.Resident = e.payload != nil
			st.HeapBytes, st.MappedBytes = e.heapBytes, e.mappedBytes
			out = append(out, st)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// IDs returns every stored release ID in List's order (shortest first,
// then lexicographic) without copying the stubs — the cheap placement
// listing an anti-entropy sweep diffs against the ring.
func (s *Store) IDs() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.entries {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// Tombstoned reports whether id carries a delete marker (removed, not
// yet republished under the same ID).
func (s *Store) Tombstoned(id string) bool {
	s.tombMu.Lock()
	defer s.tombMu.Unlock()
	_, ok := s.tombs[id]
	return ok
}

// Tombstones returns the deleted release IDs, sorted like IDs — what a
// repair sweep propagates to replicas that missed the DELETE.
func (s *Store) Tombstones() []string {
	s.tombMu.Lock()
	out := make([]string, 0, len(s.tombs))
	for id := range s.tombs {
		out = append(out, id)
	}
	s.tombMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) < len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// addTombstone records id as deliberately deleted, durably when a spill
// directory exists (an empty <id>.tomb beside where the spill file was).
// The marker write is best-effort: a failed write costs at worst one
// resurrection after a restart, which the next DELETE fixes — whereas
// failing the Remove over it would leave the release serving.
func (s *Store) addTombstone(id string) {
	s.tombMu.Lock()
	s.tombs[id] = struct{}{}
	s.tombMu.Unlock()
	if s.cfg.Dir != "" {
		f, err := os.Create(s.tombPath(id))
		if err != nil {
			log.Printf("store: writing tombstone for %q: %v", id, err)
			return
		}
		f.Close()
	}
}

// clearTombstone withdraws id's delete marker (a fresh publish reused
// the ID).
func (s *Store) clearTombstone(id string) {
	s.tombMu.Lock()
	_, had := s.tombs[id]
	delete(s.tombs, id)
	s.tombMu.Unlock()
	if had && s.cfg.Dir != "" {
		os.Remove(s.tombPath(id))
	}
}

func (s *Store) tombstoneCount() int {
	s.tombMu.Lock()
	defer s.tombMu.Unlock()
	return len(s.tombs)
}

func (s *Store) tombPath(id string) string {
	return filepath.Join(s.cfg.Dir, spillName(id)+tombExt)
}

// Len returns the number of stored releases, resident or spilled.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Stats returns a consistent-enough snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	total := s.Len()
	res := int(s.resident.Load())
	cached := 0
	var mappedB, heapB int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			if s.cfg.AnswerCache > 0 {
				cached += e.cache.Len()
			}
			mappedB += e.mappedBytes
			heapB += e.heapBytes
		}
		sh.mu.RUnlock()
	}
	return Stats{
		Shards:               len(s.shards),
		MaxResident:          s.cfg.MaxResident,
		Releases:             total,
		Resident:             res,
		Spilled:              total - res,
		Evictions:            s.evictions.Load(),
		Reloads:              s.reloads.Load(),
		Removals:             s.removals.Load(),
		MMapHits:             s.mmapHits.Load(),
		Rebuilds:             s.rebuilds.Load(),
		MappedBytes:          mappedB,
		HeapBytes:            heapB,
		Tombstones:           s.tombstoneCount(),
		AnswerCacheMax:       max(s.cfg.AnswerCache, 0),
		AnswerCacheEntries:   cached,
		AnswerCacheHits:      s.cacheCtr.Hits.Load(),
		AnswerCacheMisses:    s.cacheCtr.Misses.Load(),
		AnswerCacheEvictions: s.cacheCtr.Evictions.Load(),
	}
}

// newAnswerCache builds one release's answer cache under the store's
// shared counters; nil (caching off) when the config disables it.
func (s *Store) newAnswerCache() *query.AnswerCache {
	return query.NewAnswerCache(s.cfg.AnswerCache, &s.cacheCtr)
}

// reload brings a spilled entry back into memory. loadMu makes
// concurrent Gets of the same release decode its file once.
func (s *Store) reload(sh *shard, e *entry) (Release, error) {
	e.ioMu.Lock()
	defer e.ioMu.Unlock()
	// Another goroutine may have finished the reload — or a Remove may
	// have deleted the release — while we waited.
	sh.mu.RLock()
	if sh.entries[e.id] != e {
		sh.mu.RUnlock()
		return Release{}, fmt.Errorf("store: %q: %w", e.id, ErrNotFound)
	}
	if e.payload != nil {
		rel := Release{ID: e.id, Payload: e.payload, Eval: e.eval, Cache: e.cache, Workers: e.stub.Workers}
		sh.mu.RUnlock()
		e.touch(s)
		return rel, nil
	}
	sh.mu.RUnlock()
	p, info, err := s.loadPayload(e.id)
	if err != nil {
		if os.IsNotExist(err) {
			// Remove won the race after our membership check and took
			// the spill file with it.
			return Release{}, fmt.Errorf("store: %q: %w", e.id, ErrNotFound)
		}
		return Release{}, fmt.Errorf("store: reloading %q: %w", e.id, err)
	}
	eval := s.evaluatorFor(p, true)
	if info.Table {
		s.mmapHits.Add(1)
	}
	sh.mu.Lock()
	if sh.entries[e.id] != e {
		// Removed between the read and the install: do not resurrect the
		// payload on a dead entry (the resident count no longer tracks it).
		sh.mu.Unlock()
		return Release{}, fmt.Errorf("store: %q: %w", e.id, ErrNotFound)
	}
	e.payload, e.eval = p, eval
	e.heapBytes, e.mappedBytes = residency(p, info)
	sh.mu.Unlock()
	e.touch(s)
	s.resident.Add(1)
	s.reloads.Add(1)
	s.enforceBudget()
	return Release{ID: e.id, Payload: p, Eval: eval, Cache: e.cache, Workers: e.stub.Workers}, nil
}

// enforceBudget evicts least-recently-used releases until the resident
// count is back under MaxResident.
func (s *Store) enforceBudget() {
	if s.cfg.MaxResident <= 0 {
		return
	}
	for s.resident.Load() > int64(s.cfg.MaxResident) {
		if !s.evictOne() {
			return
		}
	}
}

// evictOne drops the in-memory copy of the globally least-recently-used
// resident release. The scan takes one shard lock at a time (never two),
// so it cannot deadlock with any other store operation; the price is
// that under concurrent access the victim is approximately, not exactly,
// the LRU — an entry touched between the scan and the final lock may
// still be evicted, which costs one extra reload but is never incorrect
// (eviction only drops references; callers holding a *Release keep it).
// Returns false when no resident entry exists to evict.
func (s *Store) evictOne() bool {
	var victim *entry
	var victimShard *shard
	best := int64(math.MaxInt64)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			// Only entries with a durable disk copy are evictable.
			if e.payload == nil || !e.spilled {
				continue
			}
			if t := e.lastUsed.Load(); t < best {
				best, victim, victimShard = t, e, sh
			}
		}
		sh.mu.RUnlock()
	}
	if victim == nil {
		return false
	}
	victimShard.mu.Lock()
	if victimShard.entries[victim.id] != victim || victim.payload == nil || !victim.spilled {
		// Lost a race with another evictor or with Remove, which already
		// adjusted the accounting (evicting a removed entry would double-
		// decrement the resident count); report progress so the budget
		// loop re-checks.
		victimShard.mu.Unlock()
		return true
	}
	victim.payload, victim.eval = nil, nil
	victim.heapBytes, victim.mappedBytes = 0, 0
	victimShard.mu.Unlock()
	s.resident.Add(-1)
	s.evictions.Add(1)
	return true
}

// shard picks the lock stripe for id by FNV-1a, inlined so the hot Get
// path does not allocate a hash.Hash32 per request.
func (s *Store) shard(id string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &s.shards[h%uint32(len(s.shards))]
}

// touch stamps the entry with the global LRU clock. With eviction
// disabled (MaxResident ≤ 0) the stamps would never be read, so the
// read path skips the shared atomic entirely — otherwise every Get
// across every shard would bounce one cache line, undoing part of the
// lock striping.
func (e *entry) touch(s *Store) {
	if s.cfg.MaxResident <= 0 {
		return
	}
	e.lastUsed.Store(s.clock.Add(1))
}

func makeStub(id string, p *codec.Payload, workers int) Stub {
	attrs := make([]string, p.Schema.NumAttrs())
	for i := range attrs {
		attrs[i] = p.Schema.Attr(i).Name
	}
	return Stub{
		ID:      id,
		Meta:    p.Meta,
		Attrs:   attrs,
		Entries: p.Noisy.Len(),
		Workers: workers,
	}
}

// ValidateID reports whether id is a storable release ID (see
// validateID for the grammar) — exported so the serving layer can
// refuse a client-chosen or replicated ID before any work is done.
func ValidateID(id string) error { return validateID(id) }

// validateID keeps IDs safe to embed in spill filenames: one or two
// '/'-separated segments (the two-segment form is the continual-
// publication "<tenant>/<epoch>" scheme), ≤ 128 bytes overall, each
// segment non-empty, not starting with '.', alphanumerics plus '.',
// '_', '-'. The '/' never reaches the filesystem — spillPath flattens
// it to '~', a byte the segment grammar excludes, so the mapping is
// injective and a tenant's epochs can never collide with a plain
// release's file.
func validateID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("store: invalid release id %q", id)
	}
	seen := 0
	for seg := range strings.SplitSeq(id, "/") {
		if seen++; seen > 2 {
			return fmt.Errorf("store: invalid release id %q (at most one '/')", id)
		}
		if seg == "" || seg[0] == '.' {
			return fmt.Errorf("store: invalid release id %q", id)
		}
		for i := 0; i < len(seg); i++ {
			c := seg[i]
			switch {
			case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
				c == '.', c == '_', c == '-':
			default:
				return fmt.Errorf("store: invalid release id %q", id)
			}
		}
	}
	return nil
}

// spillName flattens a release ID to its spill filename stem (see
// validateID for why '~'); spillID inverts it.
func spillName(id string) string { return strings.ReplaceAll(id, "/", "~") }
func spillID(name string) string { return strings.ReplaceAll(name, "~", "/") }

func (s *Store) spillPath(id string) string {
	return filepath.Join(s.cfg.Dir, spillName(id)+spillExt)
}

// writeSpill atomically writes the release's spill file: encode to a
// temp file, then rename, so readers never observe a partial payload.
func (s *Store) writeSpill(id string, p *codec.Payload) error {
	path := s.spillPath(id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: spilling %q: %w", id, err)
	}
	if err := EncodeRelease(f, p); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: spilling %q: %w", id, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: spilling %q: %w", id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: spilling %q: %w", id, err)
	}
	return nil
}

func (s *Store) readSpill(id string) (*codec.Payload, error) {
	f, err := os.Open(s.spillPath(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeRelease(f)
}

// loadPayload reads id's spill file, preferring the memory-mapped path
// (Config.NoMMap off): the file is mapped and decoded zero-copy, so the
// returned payload's float64 sections are views over page-cache-backed
// file pages (the MapInfo says which). With NoMMap, or for a format-v1
// file, the sections are heap copies. Either way, a spill file whose
// durable table failed its checksum comes back table-less with a log
// line — the caller's evaluatorFor then rebuilds from the (intact)
// matrix instead of serving a corrupt table.
func (s *Store) loadPayload(id string) (*codec.Payload, codec.MapInfo, error) {
	if !s.cfg.NoMMap {
		f, err := mmapfile.Open(s.spillPath(id))
		if err != nil {
			return nil, codec.MapInfo{}, err
		}
		p, info, err := codec.DecodeMapped(f.Data(), f)
		if err != nil {
			if p != nil && errors.Is(err, codec.ErrTable) {
				log.Printf("store: %s: durable table unusable, rebuilding: %v", id, err)
				return p, info, nil
			}
			return nil, codec.MapInfo{}, err
		}
		return p, info, nil
	}
	p, err := s.readSpill(id)
	if err != nil {
		if p != nil && errors.Is(err, codec.ErrTable) {
			log.Printf("store: %s: durable table unusable, rebuilding: %v", id, err)
			return p, codec.MapInfo{}, nil
		}
		return nil, codec.MapInfo{}, err
	}
	return p, codec.MapInfo{}, nil
}

// evaluatorFor returns p's evaluator: free (query.NewEvaluatorFromTable)
// when p carries its durable summed-area table, a prefix-sum rebuild
// otherwise — in which case the rebuilt table is written back into p,
// so a later /export or replication of this payload ships format v2.
// countRebuild marks the avoidable builds (reload, recovery, ingest);
// first-publish builds pass false, keeping the rebuilds stat a pure
// measure of work the durable table should have saved.
func (s *Store) evaluatorFor(p *codec.Payload, countRebuild bool) *query.Evaluator {
	if p.Table != nil {
		return query.NewEvaluatorFromTable(p.Table, p.Total)
	}
	eval := query.NewEvaluatorWorkers(p.Noisy, s.cfg.Parallelism)
	p.Table, p.Total = eval.Prefix(), eval.Total()
	if countRebuild {
		s.rebuilds.Add(1)
	}
	return eval
}

// residency splits p's resident float64 backing between heap and mapped
// file pages, per the decode's MapInfo.
func residency(p *codec.Payload, info codec.MapInfo) (heap, mapped int64) {
	n := int64(p.Noisy.Len()) * 8
	if info.Noisy {
		mapped += n
	} else {
		heap += n
	}
	if p.Table != nil {
		if info.Table {
			mapped += n
		} else {
			heap += n
		}
	}
	return heap, mapped
}
