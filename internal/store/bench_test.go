package store

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/query"
)

// The benchmarks compare the sharded store against the single-RWMutex
// map internal/server used before the store existed, under the serving
// pattern the ROADMAP targets: 8 tenants, each querying its own release
// with an occasional publish mixed in. Under one global mutex every
// publish blocks every tenant's queries; under lock striping it blocks
// only the ~1/shards of traffic that hashes to the same stripe. Run with
// -cpu 8 (or on a multi-core box) to see the contention gap; on one core
// the benchmark degenerates to lock overhead only.

// releaseStore is the narrow interface both implementations serve.
type releaseStore interface {
	Put(id string, p *codec.Payload, workers int) error
	Get(id string) (Release, error)
}

// mutexStore is the pre-store design: one map, one RWMutex.
type mutexStore struct {
	mu sync.RWMutex
	m  map[string]*Release
}

func newMutexStore() *mutexStore { return &mutexStore{m: make(map[string]*Release)} }

func (s *mutexStore) Put(id string, p *codec.Payload, workers int) error {
	rel := &Release{ID: id, Payload: p, Eval: query.NewEvaluator(p.Noisy), Workers: workers}
	s.mu.Lock()
	s.m[id] = rel
	s.mu.Unlock()
	return nil
}

func (s *mutexStore) Get(id string) (Release, error) {
	s.mu.RLock()
	rel := s.m[id]
	s.mu.RUnlock()
	if rel == nil {
		return Release{}, ErrNotFound
	}
	return *rel, nil
}

const benchTenants = 8

// seedTenants publishes one release per tenant and returns the probe
// query used by the read path.
func seedTenants(b *testing.B, s releaseStore) query.Query {
	b.Helper()
	var q query.Query
	for tenant := 0; tenant < benchTenants; tenant++ {
		p := testPayload(b, uint64(tenant))
		if err := s.Put(fmt.Sprintf("tenant%d", tenant), p, 1); err != nil {
			b.Fatal(err)
		}
		if tenant == 0 {
			q = probeQueries(b, p.Schema)[1]
		}
	}
	return q
}

// benchQueries: pure read traffic, each goroutine pinned to one tenant.
func benchQueries(b *testing.B, s releaseStore) {
	q := seedTenants(b, s)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tenant := int(next.Add(1)-1) % benchTenants
		id := fmt.Sprintf("tenant%d", tenant)
		for pb.Next() {
			rel, err := s.Get(id)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := rel.Eval.Count(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchMixed: 1 publish per 64 queries — the write rate at which a
// global mutex starts stalling unrelated tenants.
func benchMixed(b *testing.B, s releaseStore) {
	q := seedTenants(b, s)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tenant := int(next.Add(1)-1) % benchTenants
		id := fmt.Sprintf("tenant%d", tenant)
		seq := 0
		for pb.Next() {
			seq++
			if seq%64 == 0 {
				fresh := fmt.Sprintf("tenant%d-v%d-%d", tenant, seq, next.Add(1))
				if err := s.Put(fresh, testPayload(b, uint64(seq)), 1); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			rel, err := s.Get(id)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := rel.Eval.Count(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func newShardedForBench(b *testing.B) *Store {
	b.Helper()
	s, err := New(Config{Shards: DefaultShards})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkQueries8TenantsSharded(b *testing.B) { benchQueries(b, newShardedForBench(b)) }

func BenchmarkQueries8TenantsSingleMutex(b *testing.B) { benchQueries(b, newMutexStore()) }

func BenchmarkMixed8TenantsSharded(b *testing.B) { benchMixed(b, newShardedForBench(b)) }

func BenchmarkMixed8TenantsSingleMutex(b *testing.B) { benchMixed(b, newMutexStore()) }

// --- reload time-to-first-query -----------------------------------------
//
// The mmap tentpole's headline number: how long from Get() on a spilled
// release to its first answered query. Three spill-file regimes:
//
//   Mapped  — format v2, memory-mapped: the evaluator is constructed
//             directly over the file's summed-area table; the only
//             per-reload work is decoding the (tiny) header.
//   Decode  — format v2, NoMMap: the whole file is re-decoded
//             sequentially, but the durable table still spares the
//             prefix-sum rebuild.
//   Rebuild — format v1 (the pre-v2 on-disk state): decode plus a full
//             prefix-sum rebuild — what every reload cost before.
//
// Eviction between iterations is excluded from the timing via
// StopTimer, so ns/op is purely reload + one Count.

// bigBenchPayload builds a single-attribute release with n matrix
// entries — large enough that decode and prefix-sum work dominate the
// reload, as they do for production-sized releases.
func bigBenchPayload(b *testing.B, n int) *codec.Payload {
	b.Helper()
	schema, err := dataset.NewSchema(dataset.OrdinalAttr("V", n))
	if err != nil {
		b.Fatal(err)
	}
	m, err := matrix.New(n)
	if err != nil {
		b.Fatal(err)
	}
	data := m.Data()
	for i := range data {
		data[i] = float64(i%97) * 0.5
	}
	return &codec.Payload{
		Meta:   codec.Meta{Mechanism: "privelet+", Epsilon: 1, Rho: 2, Lambda: 4, Bound: 8},
		Schema: schema,
		Noisy:  m,
	}
}

// downgradeSpill rewrites id's spill file in format v1 (no table),
// recreating what a pre-v2 node left on disk.
func downgradeSpill(b *testing.B, s *Store, id string) {
	b.Helper()
	p, err := s.readSpill(id)
	if err != nil {
		b.Fatal(err)
	}
	p.Table, p.Total = nil, 0
	var buf bytes.Buffer
	if err := codec.Encode(&buf, p); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(s.spillPath(id), buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
}

func benchmarkReloadTTFQ(b *testing.B, noMMap, v1 bool) {
	const entries = 1 << 18
	s, err := New(Config{MaxResident: 1, Dir: b.TempDir(), NoMMap: noMMap})
	if err != nil {
		b.Fatal(err)
	}
	p := bigBenchPayload(b, entries)
	if err := s.Put("big", p, 1); err != nil {
		b.Fatal(err)
	}
	q, err := query.NewBuilder(p.Schema).Range("V", 100, entries-100).Build()
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Put("fill0", testPayload(b, 0), 1); err != nil {
		b.Fatal(err) // evicts big
	}
	if v1 {
		downgradeSpill(b, s, "big")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := s.Get("big")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.Eval.Count(q); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := s.Put(fmt.Sprintf("fill%d", i+1), testPayload(b, uint64(i)), 1); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkReloadTTFQMapped(b *testing.B)  { benchmarkReloadTTFQ(b, false, false) }
func BenchmarkReloadTTFQDecode(b *testing.B)  { benchmarkReloadTTFQ(b, true, false) }
func BenchmarkReloadTTFQRebuild(b *testing.B) { benchmarkReloadTTFQ(b, true, true) }

// --- restart recovery ----------------------------------------------------
//
// New() over a directory of spill files, warm (MaxResident covers every
// release). V2 files hand recovery their tables; V1 files force a
// prefix-sum rebuild per release.

func benchmarkRecovery(b *testing.B, v1 bool) {
	const k, entries = 4, 1 << 16
	dir := b.TempDir()
	seed, err := New(Config{Dir: dir})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := seed.Put(fmt.Sprintf("r%d", i), bigBenchPayload(b, entries), 1); err != nil {
			b.Fatal(err)
		}
	}
	if v1 {
		for i := 0; i < k; i++ {
			downgradeSpill(b, seed, fmt.Sprintf("r%d", i))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(Config{Dir: dir, MaxResident: k})
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != k {
			b.Fatalf("recovery found %d releases, want %d", s.Len(), k)
		}
	}
}

func BenchmarkRecoveryV2(b *testing.B) { benchmarkRecovery(b, false) }
func BenchmarkRecoveryV1(b *testing.B) { benchmarkRecovery(b, true) }
