package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/query"
)

// The benchmarks compare the sharded store against the single-RWMutex
// map internal/server used before the store existed, under the serving
// pattern the ROADMAP targets: 8 tenants, each querying its own release
// with an occasional publish mixed in. Under one global mutex every
// publish blocks every tenant's queries; under lock striping it blocks
// only the ~1/shards of traffic that hashes to the same stripe. Run with
// -cpu 8 (or on a multi-core box) to see the contention gap; on one core
// the benchmark degenerates to lock overhead only.

// releaseStore is the narrow interface both implementations serve.
type releaseStore interface {
	Put(id string, p *codec.Payload, workers int) error
	Get(id string) (Release, error)
}

// mutexStore is the pre-store design: one map, one RWMutex.
type mutexStore struct {
	mu sync.RWMutex
	m  map[string]*Release
}

func newMutexStore() *mutexStore { return &mutexStore{m: make(map[string]*Release)} }

func (s *mutexStore) Put(id string, p *codec.Payload, workers int) error {
	rel := &Release{ID: id, Payload: p, Eval: query.NewEvaluator(p.Noisy), Workers: workers}
	s.mu.Lock()
	s.m[id] = rel
	s.mu.Unlock()
	return nil
}

func (s *mutexStore) Get(id string) (Release, error) {
	s.mu.RLock()
	rel := s.m[id]
	s.mu.RUnlock()
	if rel == nil {
		return Release{}, ErrNotFound
	}
	return *rel, nil
}

const benchTenants = 8

// seedTenants publishes one release per tenant and returns the probe
// query used by the read path.
func seedTenants(b *testing.B, s releaseStore) query.Query {
	b.Helper()
	var q query.Query
	for tenant := 0; tenant < benchTenants; tenant++ {
		p := testPayload(b, uint64(tenant))
		if err := s.Put(fmt.Sprintf("tenant%d", tenant), p, 1); err != nil {
			b.Fatal(err)
		}
		if tenant == 0 {
			q = probeQueries(b, p.Schema)[1]
		}
	}
	return q
}

// benchQueries: pure read traffic, each goroutine pinned to one tenant.
func benchQueries(b *testing.B, s releaseStore) {
	q := seedTenants(b, s)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tenant := int(next.Add(1)-1) % benchTenants
		id := fmt.Sprintf("tenant%d", tenant)
		for pb.Next() {
			rel, err := s.Get(id)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := rel.Eval.Count(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// benchMixed: 1 publish per 64 queries — the write rate at which a
// global mutex starts stalling unrelated tenants.
func benchMixed(b *testing.B, s releaseStore) {
	q := seedTenants(b, s)
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tenant := int(next.Add(1)-1) % benchTenants
		id := fmt.Sprintf("tenant%d", tenant)
		seq := 0
		for pb.Next() {
			seq++
			if seq%64 == 0 {
				fresh := fmt.Sprintf("tenant%d-v%d-%d", tenant, seq, next.Add(1))
				if err := s.Put(fresh, testPayload(b, uint64(seq)), 1); err != nil {
					b.Error(err)
					return
				}
				continue
			}
			rel, err := s.Get(id)
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := rel.Eval.Count(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func newShardedForBench(b *testing.B) *Store {
	b.Helper()
	s, err := New(Config{Shards: DefaultShards})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkQueries8TenantsSharded(b *testing.B) { benchQueries(b, newShardedForBench(b)) }

func BenchmarkQueries8TenantsSingleMutex(b *testing.B) { benchQueries(b, newMutexStore()) }

func BenchmarkMixed8TenantsSharded(b *testing.B) { benchMixed(b, newShardedForBench(b)) }

func BenchmarkMixed8TenantsSingleMutex(b *testing.B) { benchMixed(b, newMutexStore()) }
