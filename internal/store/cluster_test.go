package store

// Tests for the cluster-facing store surface: Ingest (the replica copy
// path — encoded bytes in, servable release out, bit-identical to the
// original) and the ListPrefix epoch ordering replication leans on.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestClusterIngestRoundTrip: a release shipped to a replica as codec
// bytes answers every probe bit-identically to the original, and
// re-shipping it is the idempotent ErrDuplicate, not corruption.
func TestClusterIngestRoundTrip(t *testing.T) {
	p := testPayload(t, 42)
	src, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Put("r1", p, 0); err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if err := EncodeRelease(&wire, p); err != nil {
		t.Fatal(err)
	}
	raw := wire.Bytes()

	dst, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Ingest("r1", bytes.NewReader(raw), 0); err != nil {
		t.Fatal(err)
	}
	orig, err := src.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	copyRel, err := dst.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	qs := probeQueries(t, orig.Payload.Schema)
	want, got := counts(t, orig, qs), counts(t, copyRel, qs)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("probe %d: ingested replica answers %v, original %v", i, got[i], want[i])
		}
	}

	// A replayed replication PUT must be a no-op, surfaced as the
	// typed duplicate error.
	if err := dst.Ingest("r1", bytes.NewReader(raw), 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate ingest: err = %v, want ErrDuplicate", err)
	}
	// Garbage bytes must not register a release.
	if err := dst.Ingest("r2", bytes.NewReader([]byte("not a release")), 0); err == nil {
		t.Fatal("garbage ingest must fail")
	}
	if _, err := dst.Describe("r2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed ingest left a release behind: %v", err)
	}
	// Invalid IDs are rejected before any decoding happens.
	if err := dst.Ingest("", bytes.NewReader(raw), 0); err == nil {
		t.Fatal("empty ID must be rejected")
	}
}

// TestClusterListPrefixManyEpochs: with ≥10 epochs, the epoch list must
// rank numerically — shortest-first ordering puts alice/9 before
// alice/10; plain lexicographic would interleave ("alice/10" <
// "alice/2"). Regression guard for the ordering the budget ledger's
// epoch listing and the cluster's tenant views both rely on.
func TestClusterListPrefixManyEpochs(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 12
	// Insert in a scrambled order so the result order is the sort's
	// doing, not insertion order.
	for _, e := range []int{10, 3, 12, 1, 7, 11, 5, 2, 9, 4, 8, 6} {
		if err := s.Put(fmt.Sprintf("alice/%d", e), testPayload(t, uint64(e)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated tenant must not leak into the prefix listing.
	if err := s.Put("alicia/1", testPayload(t, 99), 0); err != nil {
		t.Fatal(err)
	}
	got := s.ListPrefix("alice/")
	if len(got) != epochs {
		t.Fatalf("ListPrefix returned %d epochs, want %d", len(got), epochs)
	}
	for i, st := range got {
		want := fmt.Sprintf("alice/%d", i+1)
		if st.ID != want {
			t.Fatalf("epoch %d listed as %q, want %q (numeric order)", i, st.ID, want)
		}
	}
}
