package store

// Tombstone and crash-safety coverage for the anti-entropy surface:
// Remove leaves a durable delete marker that Ingest honors (so repair
// never resurrects a deleted release), Put clears it on deliberate ID
// reuse, recovery finishes a delete the process died in the middle of,
// and a failed Ingest leaves no partial spill state behind (the
// tmp+rename contract).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/query"
)

// encodePayload renders p to the wire bytes an /export or a repair push
// would carry.
func encodePayload(t testing.TB, p *codec.Payload) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeRelease(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRepairTombstoneLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(t, 1)
	wire := encodePayload(t, p)
	if err := s.Put("r1", p, 0); err != nil {
		t.Fatal(err)
	}
	if s.Tombstoned("r1") || len(s.Tombstones()) != 0 {
		t.Fatal("fresh release reports a tombstone")
	}
	if err := s.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	if !s.Tombstoned("r1") {
		t.Fatal("Remove left no tombstone")
	}
	if got := s.Tombstones(); !reflect.DeepEqual(got, []string{"r1"}) {
		t.Fatalf("Tombstones() = %v, want [r1]", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "r1.tomb")); err != nil {
		t.Fatalf("tombstone marker not durable: %v", err)
	}
	if st := s.Stats(); st.Tombstones != 1 {
		t.Fatalf("Stats.Tombstones = %d, want 1", st.Tombstones)
	}

	// Replication must not resurrect the deleted release.
	err = s.Ingest("r1", bytes.NewReader(wire), 0)
	if !errors.Is(err, ErrDeleted) {
		t.Fatalf("Ingest of tombstoned ID: err = %v, want ErrDeleted", err)
	}
	if _, err := s.Get("r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("refused ingest registered the release: %v", err)
	}

	// A deliberate publish reusing the ID clears the marker.
	if err := s.Put("r1", testPayload(t, 2), 0); err != nil {
		t.Fatal(err)
	}
	if s.Tombstoned("r1") {
		t.Fatal("Put did not clear the tombstone")
	}
	if _, err := os.Stat(filepath.Join(dir, "r1.tomb")); !os.IsNotExist(err) {
		t.Fatalf("tombstone marker survived Put: %v", err)
	}
	// And replication of the reborn release works again under other IDs.
	if err := s.Ingest("r2", bytes.NewReader(wire), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRepairTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(t, 3)
	wire := encodePayload(t, p)
	if err := s.Put("gone1", p, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("gone1"); err != nil {
		t.Fatal(err)
	}

	re, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !re.Tombstoned("gone1") {
		t.Fatal("tombstone lost across restart")
	}
	if err := re.Ingest("gone1", bytes.NewReader(wire), 0); !errors.Is(err, ErrDeleted) {
		t.Fatalf("post-restart Ingest of tombstoned ID: err = %v, want ErrDeleted", err)
	}
}

// TestRepairRecoveryFinishesCrashedDelete: the process died after
// Remove wrote the marker but before it unlinked the spill file.
// Recovery must honor the marker — sweep the orphan file and keep the
// release deleted — not resurrect it.
func TestRepairRecoveryFinishesCrashedDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("half1", testPayload(t, 4), 0); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: marker on disk, spill file still there.
	f, err := os.Create(filepath.Join(dir, "half1.tomb"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.Get("half1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("recovery resurrected a tombstoned release: %v", err)
	}
	if !re.Tombstoned("half1") {
		t.Fatal("recovery dropped the tombstone")
	}
	if _, err := os.Stat(filepath.Join(dir, "half1.prvl")); !os.IsNotExist(err) {
		t.Fatalf("orphan spill file survived recovery: %v", err)
	}
}

// TestRepairIngestCrashSafety: a write error mid-ingest must leave no
// partial spill file (the tmp+rename contract), free the ID, and let a
// straight retry succeed.
func TestRepairIngestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(t, 5)
	wire := encodePayload(t, p)

	// Fault 1: the payload dies mid-wire (a truncated replication push).
	// Decode fails before any file I/O; nothing may exist afterwards.
	if err := s.Ingest("c1", bytes.NewReader(wire[:len(wire)/2]), 0); err == nil {
		t.Fatal("truncated ingest succeeded")
	}
	assertNoSpillState(t, dir, "c1")

	// Fault 2: the spill write itself fails — the tmp path is blocked, so
	// os.Create errors exactly where a disk-full would. (A read-only
	// directory is no use here: the test may run as root, which ignores
	// permission bits.)
	tmpBlock := filepath.Join(dir, "c1.prvl.tmp")
	if err := os.Mkdir(tmpBlock, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("c1", bytes.NewReader(wire), 0); err == nil {
		t.Fatal("ingest succeeded despite spill write failure")
	}
	if _, err := s.Get("c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed ingest left the release registered: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "c1.prvl")); !os.IsNotExist(err) {
		t.Fatal("failed ingest left a spill file")
	}
	if err := os.Remove(tmpBlock); err != nil {
		t.Fatal(err)
	}

	// The retry (same ID, same bytes) succeeds and answers queries.
	if err := s.Ingest("c1", bytes.NewReader(wire), 0); err != nil {
		t.Fatalf("retry after write failure: %v", err)
	}
	rel, err := s.Get("c1")
	if err != nil {
		t.Fatal(err)
	}
	want := counts(t, Release{ID: "ref", Payload: p, Eval: query.NewEvaluator(p.Noisy)}, probeQueries(t, p.Schema))
	got := counts(t, rel, probeQueries(t, rel.Payload.Schema))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("retried ingest answers %v, want %v", got, want)
	}

	// Fault 3: a crash mid-spill strands a tmp file; the next recovery
	// sweeps it without disturbing healthy releases.
	stranded := filepath.Join(dir, "c2.prvl.tmp")
	if err := os.WriteFile(stranded, wire[:len(wire)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stranded); !os.IsNotExist(err) {
		t.Fatal("recovery left the stranded tmp file")
	}
	if _, err := re.Get("c1"); err != nil {
		t.Fatalf("healthy release lost during tmp sweep: %v", err)
	}
}

// assertNoSpillState fails if any on-disk artifact for id exists.
func assertNoSpillState(t *testing.T, dir, id string) {
	t.Helper()
	for _, suffix := range []string{".prvl", ".prvl.tmp", ".tomb"} {
		if _, err := os.Stat(filepath.Join(dir, id+suffix)); !os.IsNotExist(err) {
			t.Fatalf("unexpected artifact %s%s (stat err %v)", id, suffix, err)
		}
	}
}

func TestRepairIDsListing(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r10", "r2", "alice/1", "r1"} {
		if err := s.Put(id, testPayload(t, 7), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove("r2"); err != nil {
		t.Fatal(err)
	}
	// Shortest-first then lexicographic, tombstoned IDs excluded.
	want := []string{"r1", "r10", "alice/1"}
	if got := s.IDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("IDs() = %v, want %v", got, want)
	}
}
