package store

import (
	"errors"
	"fmt"
	"io"
	"log"

	"repro/internal/codec"
)

// EncodeRelease and DecodeRelease are the single durability path every
// release artifact in the system goes through: the store's spill files,
// the library's Release.Save/Load, and the daemon's /export endpoint all
// call these, so the on-disk format (internal/codec's versioned binary
// encoding) is negotiated in exactly one place. A release written by any
// producer is readable by every consumer.

// EncodeRelease writes a release payload to w in the shared durable
// format.
func EncodeRelease(w io.Writer, p *codec.Payload) error {
	return codec.Encode(w, p)
}

// DecodeRelease reads a release payload previously written by
// EncodeRelease (or any other producer of the shared format). Like
// codec.Decode, a format-v2 stream whose summed-area table section is
// unreadable returns the intact payload (Table nil) alongside an error
// wrapping codec.ErrTable — callers that can rebuild the table (the
// store, persist.Load) treat that as a degraded success.
func DecodeRelease(r io.Reader) (*codec.Payload, error) {
	return codec.Decode(r)
}

// Ingest is the replica-ingest entry point: it decodes an encoded
// release from r and stores it under id. Format-v2 bytes carry the
// publisher's summed-area table, so ingesting a replica costs no
// prefix-sum work — the pushed evaluator state is adopted directly,
// and answers are bit-identical to the node that published it (the
// table build is deterministic, so adopted and rebuilt tables agree
// float64-exactly). Format-v1 bytes (a pre-v2 publisher) and v2 bytes
// whose table section fails its checksum in transit fall back to the
// rebuild path, counted in the rebuilds stat. workers bounds that
// rebuild like Config.Parallelism does for reloads. A taken ID returns
// an error wrapping ErrDuplicate (releases are immutable, so
// re-pushing an existing replica is a no-op the caller may treat as
// success). A tombstoned ID returns an error wrapping ErrDeleted: the
// release was deliberately removed here, and replication must not
// resurrect it — the pusher should delete its own copy instead (only
// an explicit Put, i.e. a fresh publish reusing the ID, clears the
// tombstone).
func (s *Store) Ingest(id string, r io.Reader, workers int) error {
	if err := validateID(id); err != nil {
		return err
	}
	if s.Tombstoned(id) {
		return fmt.Errorf("store: ingesting %q: %w", id, ErrDeleted)
	}
	p, err := DecodeRelease(r)
	if err != nil {
		if p == nil || !errors.Is(err, codec.ErrTable) {
			return fmt.Errorf("store: ingesting %q: %w", id, err)
		}
		log.Printf("store: ingesting %q: durable table unusable, rebuilding: %v", id, err)
	}
	if p.Table == nil {
		s.rebuilds.Add(1)
	}
	return s.Put(id, p, workers)
}
