package store

import (
	"fmt"
	"io"

	"repro/internal/codec"
)

// EncodeRelease and DecodeRelease are the single durability path every
// release artifact in the system goes through: the store's spill files,
// the library's Release.Save/Load, and the daemon's /export endpoint all
// call these, so the on-disk format (internal/codec's versioned binary
// encoding) is negotiated in exactly one place. A release written by any
// producer is readable by every consumer.

// EncodeRelease writes a release payload to w in the shared durable
// format.
func EncodeRelease(w io.Writer, p *codec.Payload) error {
	return codec.Encode(w, p)
}

// DecodeRelease reads a release payload previously written by
// EncodeRelease (or any other producer of the shared format).
func DecodeRelease(r io.Reader) (*codec.Payload, error) {
	return codec.Decode(r)
}

// Ingest is the replica-ingest entry point: it decodes an encoded
// release from r and stores it under id, riding the same decode →
// evaluator-rebuild path a restart or a spilled-release reload uses —
// so a replica pushed over the wire answers every query bit-identically
// to the node that published it. workers bounds the evaluator rebuild
// like Config.Parallelism does for reloads. A taken ID returns an error
// wrapping ErrDuplicate (releases are immutable, so re-pushing an
// existing replica is a no-op the caller may treat as success). A
// tombstoned ID returns an error wrapping ErrDeleted: the release was
// deliberately removed here, and replication must not resurrect it —
// the pusher should delete its own copy instead (only an explicit Put,
// i.e. a fresh publish reusing the ID, clears the tombstone).
func (s *Store) Ingest(id string, r io.Reader, workers int) error {
	if err := validateID(id); err != nil {
		return err
	}
	if s.Tombstoned(id) {
		return fmt.Errorf("store: ingesting %q: %w", id, ErrDeleted)
	}
	p, err := DecodeRelease(r)
	if err != nil {
		return fmt.Errorf("store: ingesting %q: %w", id, err)
	}
	return s.Put(id, p, workers)
}
