package store

import (
	"io"

	"repro/internal/codec"
)

// EncodeRelease and DecodeRelease are the single durability path every
// release artifact in the system goes through: the store's spill files,
// the library's Release.Save/Load, and the daemon's /export endpoint all
// call these, so the on-disk format (internal/codec's versioned binary
// encoding) is negotiated in exactly one place. A release written by any
// producer is readable by every consumer.

// EncodeRelease writes a release payload to w in the shared durable
// format.
func EncodeRelease(w io.Writer, p *codec.Payload) error {
	return codec.Encode(w, p)
}

// DecodeRelease reads a release payload previously written by
// EncodeRelease (or any other producer of the shared format).
func DecodeRelease(r io.Reader) (*codec.Payload, error) {
	return codec.Decode(r)
}
