package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/query"
)

// testPayload builds a small single-attribute release whose noisy values
// are a deterministic function of salt, so distinct releases are
// distinguishable and reload mismatches are detectable.
func testPayload(t testing.TB, salt uint64) *codec.Payload {
	t.Helper()
	schema, err := dataset.NewSchema(dataset.OrdinalAttr("Age", 8))
	if err != nil {
		t.Fatal(err)
	}
	m, err := matrix.New(8)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Data()
	for i := range data {
		// Irrational increments give full-precision float64s, so a
		// bit-identity check is meaningful.
		data[i] = float64(salt) + float64(i+1)*math.Pi
	}
	return &codec.Payload{
		Meta:   codec.Meta{Mechanism: "privelet+", Epsilon: 1, Rho: 2, Lambda: 4, Bound: 8},
		Schema: schema,
		Noisy:  m,
	}
}

// probeQueries returns a few range queries over the test schema.
func probeQueries(t testing.TB, schema *dataset.Schema) []query.Query {
	t.Helper()
	var qs []query.Query
	for _, r := range [][2]int{{0, 7}, {0, 2}, {3, 5}, {7, 7}} {
		q, err := query.NewBuilder(schema).Range("Age", r[0], r[1]).Build()
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	return qs
}

func counts(t testing.TB, rel Release, qs []query.Query) []float64 {
	t.Helper()
	out := make([]float64, len(qs))
	for i, q := range qs {
		c, err := rel.Eval.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestPutGetListDescribe(t *testing.T) {
	s, err := New(Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("r%d", i+1), testPayload(t, uint64(i)), i+1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	rel, err := s.Get("r3")
	if err != nil {
		t.Fatal(err)
	}
	if rel.ID != "r3" || rel.Workers != 3 || rel.Payload.Noisy.Len() != 8 {
		t.Fatalf("Get(r3) = %+v", rel)
	}
	st, err := s.Describe("r3")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Resident || st.Entries != 8 || st.Attrs[0] != "Age" || st.Meta.Epsilon != 1 {
		t.Fatalf("Describe(r3) = %+v", st)
	}
	list := s.List()
	if len(list) != 5 {
		t.Fatalf("List has %d entries", len(list))
	}
	for i, st := range list {
		if want := fmt.Sprintf("r%d", i+1); st.ID != want {
			t.Fatalf("List[%d].ID = %q, want %q (sorted)", i, st.ID, want)
		}
	}
	if _, err := s.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(ghost) err = %v, want ErrNotFound", err)
	}
	if _, err := s.Describe("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Describe(ghost) err = %v, want ErrNotFound", err)
	}
}

func TestPutErrors(t *testing.T) {
	if _, err := New(Config{MaxResident: 1}); err == nil {
		t.Fatal("MaxResident without Dir must be rejected")
	}
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(t, 0)
	for _, id := range []string{"", "../evil", "a/b/c", "a//b", "/b", "a/", ".hidden", "a/.hidden", "sp ace", "a~b"} {
		if err := s.Put(id, p, 0); err == nil {
			t.Errorf("Put(%q) accepted an invalid id", id)
		}
	}
	// The two-segment "<tenant>/<epoch>" form is valid.
	if err := s.Put("tenant/1", p, 0); err != nil {
		t.Errorf("Put(tenant/1): %v", err)
	}
	if err := s.Put("dup", p, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("dup", p, 0); err == nil {
		t.Fatal("duplicate Put must be rejected")
	}
	if err := s.Put("nilpay", nil, 0); err == nil {
		t.Fatal("nil payload must be rejected")
	}
}

// TestSpillReloadBitIdentical is the tentpole's core guarantee: a
// release evicted to disk answers every probe query bit-identically
// (float64 ==, no tolerance) after transparent reload, and the reloaded
// matrix is bit-for-bit the original.
func TestSpillReloadBitIdentical(t *testing.T) {
	s, err := New(Config{Shards: 4, MaxResident: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	p1 := testPayload(t, 100)
	if err := s.Put("r1", p1, 2); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	qs := probeQueries(t, rel.Payload.Schema)
	before := counts(t, rel, qs)
	wantBits := make([]uint64, p1.Noisy.Len())
	for i, v := range p1.Noisy.Data() {
		wantBits[i] = math.Float64bits(v)
	}

	// Push r1 out: two more Puts exceed MaxResident=2 and r1 is the LRU.
	if err := s.Put("r2", testPayload(t, 200), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("r3", testPayload(t, 300), 1); err != nil {
		t.Fatal(err)
	}
	st, err := s.Describe("r1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Resident {
		t.Fatal("r1 should have been evicted")
	}
	if got := s.Stats(); got.Evictions == 0 || got.Resident != 2 || got.Spilled != 1 {
		t.Fatalf("Stats after eviction = %+v", got)
	}

	// Transparent reload.
	rel2, err := s.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	after := counts(t, rel2, qs)
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("query %d: %v (pre-spill) != %v (post-reload)", i, before[i], after[i])
		}
	}
	for i, v := range rel2.Payload.Noisy.Data() {
		if math.Float64bits(v) != wantBits[i] {
			t.Fatalf("matrix entry %d: bits %x != %x", i, math.Float64bits(v), wantBits[i])
		}
	}
	if got := s.Stats(); got.Reloads == 0 {
		t.Fatalf("Stats after reload = %+v", got)
	}
}

// TestEvictionIsLRU: touching a release via Get protects it; the
// untouched one is the victim.
func TestEvictionIsLRU(t *testing.T) {
	s, err := New(Config{Shards: 4, MaxResident: 2, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"a", "b"} {
		if err := s.Put(id, testPayload(t, uint64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get("a"); err != nil { // a is now more recent than b
		t.Fatal(err)
	}
	if err := s.Put("c", testPayload(t, 9), 0); err != nil {
		t.Fatal(err)
	}
	for id, wantResident := range map[string]bool{"a": true, "b": false, "c": true} {
		st, err := s.Describe(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Resident != wantResident {
			t.Errorf("%s resident = %v, want %v", id, st.Resident, wantResident)
		}
	}
}

// TestRestartRecovery: a new store over the same directory serves every
// previously-published release with identical answers.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]float64{}
	var qs []query.Query
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("r%d", i)
		if err := s1.Put(id, testPayload(t, uint64(i*1000)), 1); err != nil {
			t.Fatal(err)
		}
		rel, err := s1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if qs == nil {
			qs = probeQueries(t, rel.Payload.Schema)
		}
		want[id] = counts(t, rel, qs)
	}

	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("recovered %d releases, want 3", s2.Len())
	}
	if got := s2.Stats(); got.Resident != 0 || got.Spilled != 3 {
		t.Fatalf("recovered stats = %+v, want all spilled", got)
	}
	for id, wantCounts := range want {
		rel, err := s2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		got := counts(t, rel, qs)
		for i := range got {
			if got[i] != wantCounts[i] {
				t.Errorf("%s query %d: recovered %v != original %v", id, i, got[i], wantCounts[i])
			}
		}
	}
	// Junk in the directory must not break recovery, and neither must a
	// corrupt spill file — the healthy releases keep serving.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.prvl"), []byte("not a payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery tripped over junk/corrupt files: %v", err)
	}
	if s3.Len() != 3 {
		t.Fatalf("recovered %d releases alongside corrupt file, want 3", s3.Len())
	}

	// A bounded store keeps recovered payloads resident up to budget
	// instead of re-decoding them on first access.
	s4, err := New(Config{Dir: dir, MaxResident: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s4.Stats(); got.Resident != 2 || got.Spilled != 1 {
		t.Fatalf("bounded recovery stats = %+v, want 2 resident / 1 spilled", got)
	}
}

// TestLedgerEpochIDsSpillAndRecover covers the continual-publication ID
// scheme end to end at the store layer: "<tenant>/<epoch>" IDs spill
// under flattened '~' filenames, recover with the slash restored,
// enumerate per tenant via ListPrefix in epoch order, and Remove
// reclaims the flattened file.
func TestLedgerEpochIDsSpillAndRecover(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"alice/1", "alice/2", "alice/10", "bob/1", "plain"}
	for i, id := range ids {
		if err := s1.Put(id, testPayload(t, uint64(i)), 0); err != nil {
			t.Fatalf("Put(%q): %v", id, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "alice~2.prvl")); err != nil {
		t.Fatalf("flattened spill file missing: %v", err)
	}

	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(ids) {
		t.Fatalf("recovered %d releases, want %d", s2.Len(), len(ids))
	}
	got := s2.ListPrefix("alice/")
	wantOrder := []string{"alice/1", "alice/2", "alice/10"} // shortest-first = numeric epochs
	if len(got) != len(wantOrder) {
		t.Fatalf("ListPrefix(alice/) = %d stubs, want %d", len(got), len(wantOrder))
	}
	for i, st := range got {
		if st.ID != wantOrder[i] {
			t.Fatalf("ListPrefix[%d] = %q, want %q", i, st.ID, wantOrder[i])
		}
	}
	if rel, err := s2.Get("alice/2"); err != nil || rel.ID != "alice/2" {
		t.Fatalf("Get(alice/2) = %v, %v", rel.ID, err)
	}
	if err := s2.Remove("alice/2"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "alice~2.prvl")); !os.IsNotExist(err) {
		t.Fatal("Remove left the flattened spill file behind")
	}
	if len(s2.ListPrefix("alice/")) != 2 {
		t.Fatal("ListPrefix still lists the removed epoch")
	}
}

// TestConcurrentDuplicatePut: racing Puts with the same ID must resolve
// atomically — exactly one wins, and the spill file on disk holds the
// winner's payload, not the loser's or interleaved garbage.
func TestConcurrentDuplicatePut(t *testing.T) {
	for round := 0; round < 20; round++ {
		s, err := New(Config{Shards: 2, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		payloads := []*codec.Payload{testPayload(t, 111), testPayload(t, 222)}
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = s.Put("same", payloads[i], 0)
			}(i)
		}
		wg.Wait()
		var winner *codec.Payload
		switch {
		case errs[0] == nil && errs[1] != nil:
			winner = payloads[0]
		case errs[1] == nil && errs[0] != nil:
			winner = payloads[1]
		default:
			t.Fatalf("want exactly one winner, got errs %v", errs)
		}
		got, err := s.readSpill("same")
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got.Noisy.Data() {
			if math.Float64bits(v) != math.Float64bits(winner.Noisy.Data()[i]) {
				t.Fatalf("round %d: spill file entry %d does not match the winning payload", round, i)
			}
		}
	}
}

// TestConcurrentStore hammers Put/Get/List/Stats from many goroutines
// with an eviction budget small enough that spills and reloads happen
// constantly; the race detector is the judge, and every release must
// still answer its identifying query correctly at the end.
func TestConcurrentStore(t *testing.T) {
	s, err := New(Config{Shards: 8, MaxResident: 4, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const (
		tenants     = 8
		perTenant   = 6
		readsPerPut = 4
	)
	var wg sync.WaitGroup
	for tenant := 0; tenant < tenants; tenant++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				id := fmt.Sprintf("t%d-r%d", tenant, i)
				if err := s.Put(id, testPayload(t, uint64(tenant*1000+i)), 1); err != nil {
					t.Error(err)
					return
				}
				for r := 0; r < readsPerPut; r++ {
					// Read own releases, including spilled ones.
					past := fmt.Sprintf("t%d-r%d", tenant, (i+r)%(i+1))
					rel, err := s.Get(past)
					if err != nil {
						t.Error(err)
						return
					}
					if rel.Payload.Noisy.Len() != 8 {
						t.Errorf("%s: bad payload", past)
						return
					}
				}
				s.List()
				s.Stats()
			}
		}(tenant)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if s.Len() != tenants*perTenant {
		t.Fatalf("Len = %d, want %d", s.Len(), tenants*perTenant)
	}
	st := s.Stats()
	if st.Resident > 4+1 { // transiently one over budget is fine; settled state must not be
		t.Fatalf("resident %d exceeds budget", st.Resident)
	}
	// Every release answers its identifying full-domain query: the sum
	// of salt + (i+1)π over 8 entries.
	var qs []query.Query
	for tenant := 0; tenant < tenants; tenant++ {
		for i := 0; i < perTenant; i++ {
			id := fmt.Sprintf("t%d-r%d", tenant, i)
			rel, err := s.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if qs == nil {
				qs = probeQueries(t, rel.Payload.Schema)
			}
			salt := float64(tenant*1000 + i)
			want := 0.0
			for k := 1; k <= 8; k++ {
				want += salt + float64(k)*math.Pi
			}
			got, err := rel.Eval.Count(qs[0])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				t.Errorf("%s full-domain count = %v, want %v", id, got, want)
			}
		}
	}
}
