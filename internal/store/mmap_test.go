package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/query"
)

// randomPayload builds a multi-attribute release whose schema and noisy
// values are a deterministic function of the rng — calling it twice with
// equally-seeded rngs yields float64-identical payloads, which is what
// lets the equivalence test hand "the same" release to three stores
// without sharing mutable state between them.
func randomPayload(t testing.TB, rnd *rand.Rand) *codec.Payload {
	t.Helper()
	nattr := 1 + rnd.Intn(3)
	attrs := make([]dataset.Attribute, nattr)
	dims := make([]int, nattr)
	for i := range attrs {
		dims[i] = 2 + rnd.Intn(7)
		attrs[i] = dataset.OrdinalAttr(fmt.Sprintf("A%d", i), dims[i])
	}
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := matrix.New(dims...)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Data()
	for i := range data {
		data[i] = rnd.NormFloat64() * 100
	}
	return &codec.Payload{
		Meta:   codec.Meta{Mechanism: "privelet+", Epsilon: 0.9, Rho: 3, Lambda: 5, Bound: 2},
		Schema: schema,
		Noisy:  m,
	}
}

// randomQueries draws n range queries constraining every attribute.
func randomQueries(t testing.TB, schema *dataset.Schema, rnd *rand.Rand, n int) []query.Query {
	t.Helper()
	qs := make([]query.Query, 0, n)
	for len(qs) < n {
		b := query.NewBuilder(schema)
		for i := 0; i < schema.NumAttrs(); i++ {
			a := schema.Attr(i)
			lo := rnd.Intn(a.Size)
			hi := lo + rnd.Intn(a.Size-lo)
			b = b.Range(a.Name, lo, hi)
		}
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	return qs
}

// TestMMapReloadEquivalence is the property test behind the mmap
// tentpole: over random schemas, matrices and query workloads, a
// release served from a memory-mapped spilled table, one served from a
// sequentially re-decoded spill (NoMMap), and one that was never
// evicted must agree on every answer float64-exactly — at varying
// worker counts, across repeated evict/reload churn.
func TestMMapReloadEquivalence(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			seed := int64(1000 + trial)
			mk := func() *codec.Payload { return randomPayload(t, rand.New(rand.NewSource(seed))) }
			fill := func(i int) *codec.Payload {
				return randomPayload(t, rand.New(rand.NewSource(seed+int64(100+i))))
			}

			keep, err := New(Config{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			mm, err := New(Config{Shards: 2, MaxResident: 1, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			nm, err := New(Config{Shards: 2, MaxResident: 1, Dir: t.TempDir(), NoMMap: true})
			if err != nil {
				t.Fatal(err)
			}
			workers := 1 + trial%4
			for _, s := range []*Store{keep, mm, nm} {
				if err := s.Put("main", mk(), workers); err != nil {
					t.Fatal(err)
				}
			}
			qrnd := rand.New(rand.NewSource(seed ^ 0x5a5a))
			schema := mk().Schema
			qs := randomQueries(t, schema, qrnd, 25)

			relKeep, err := keep.Get("main")
			if err != nil {
				t.Fatal(err)
			}
			want := counts(t, relKeep, qs)

			// Several churn rounds: each filler Put evicts "main", each
			// Get reloads it — mmap-decoded in mm, re-decoded in nm.
			for round := 0; round < 3; round++ {
				for si, s := range []*Store{mm, nm} {
					if err := s.Put(fmt.Sprintf("fill%d", round), fill(round), 1); err != nil {
						t.Fatal(err)
					}
					rel, err := s.Get("main")
					if err != nil {
						t.Fatal(err)
					}
					got := counts(t, rel, qs)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("round %d store %d query %d: reloaded answer %x != never-evicted %x",
								round, si, i, got[i], want[i])
						}
					}
				}
			}
			// Every reload found a durable table: zero avoidable
			// prefix-sum builds in either store, and the mmap store's
			// evaluators came off the mapping.
			for _, s := range []*Store{mm, nm} {
				if st := s.Stats(); st.Rebuilds != 0 || st.Reloads < 3 {
					t.Fatalf("Stats = %+v, want Rebuilds 0 and >=3 Reloads", st)
				}
			}
			if st := mm.Stats(); st.MMapHits < 3 {
				t.Fatalf("mmap store Stats = %+v, want >=3 MMapHits", st)
			}
			if st := nm.Stats(); st.MMapHits != 0 {
				t.Fatalf("NoMMap store Stats = %+v, want 0 MMapHits", st)
			}
		})
	}
}

// TestSpillCorruptionFallsBackToRebuild damages a spilled release's
// table section on disk — a flipped bit, then a truncated tail — and
// checks the reload notices (checksum / bounds), quietly rebuilds from
// the intact matrix section, counts the rebuild, and still answers
// float64-identically. Both decode paths are exercised.
func TestSpillCorruptionFallsBackToRebuild(t *testing.T) {
	for _, noMMap := range []bool{false, true} {
		name := "mmap"
		if noMMap {
			name = "nommap"
		}
		t.Run(name, func(t *testing.T) {
			s, err := New(Config{MaxResident: 1, Dir: t.TempDir(), NoMMap: noMMap})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("x", testPayload(t, 7), 1); err != nil {
				t.Fatal(err)
			}
			rel, err := s.Get("x")
			if err != nil {
				t.Fatal(err)
			}
			qs := probeQueries(t, rel.Payload.Schema)
			want := counts(t, rel, qs)

			damage := []struct {
				name string
				mut  func(raw []byte) []byte
			}{
				{"bitflip", func(raw []byte) []byte {
					raw[len(raw)-6] ^= 0x20 // inside crc/end trailer
					return raw
				}},
				{"truncated", func(raw []byte) []byte {
					return raw[:len(raw)-10]
				}},
			}
			for _, d := range damage {
				t.Run(d.name, func(t *testing.T) {
					if err := s.Put("fill-"+d.name, testPayload(t, 8), 1); err != nil {
						t.Fatal(err) // evicts x
					}
					raw, err := os.ReadFile(s.spillPath("x"))
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(s.spillPath("x"), d.mut(raw), 0o644); err != nil {
						t.Fatal(err)
					}
					base := s.Stats().Rebuilds
					rel2, err := s.Get("x")
					if err != nil {
						t.Fatalf("reload over %s spill: %v", d.name, err)
					}
					got := counts(t, rel2, qs)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("query %d after %s: %x != %x", i, d.name, got[i], want[i])
						}
					}
					if after := s.Stats().Rebuilds; after != base+1 {
						t.Fatalf("Rebuilds %d -> %d, want +1 (the fallback must be counted)", base, after)
					}
					// Restore the healthy file for the next damage case.
					if err := os.WriteFile(s.spillPath("x"), raw, 0o644); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestRebuildsFlatAcrossChurn is the acceptance check for the O(1)
// reload guarantee: a store churning v2 spill files through eviction
// and reload performs zero prefix-sum rebuilds, no matter how many
// cycles — every reload adopts the durable table.
func TestRebuildsFlatAcrossChurn(t *testing.T) {
	s, err := New(Config{MaxResident: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testPayload(t, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", testPayload(t, 2), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Get("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("b"); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Reloads < 20 {
		t.Fatalf("churn produced only %d reloads", st.Reloads)
	}
	if st.Rebuilds != 0 {
		t.Fatalf("Rebuilds = %d after %d reloads, want 0 (O(1) reload)", st.Rebuilds, st.Reloads)
	}
	if st.MMapHits < st.Reloads {
		t.Fatalf("MMapHits = %d < Reloads = %d, want every reload mapped", st.MMapHits, st.Reloads)
	}
}

// TestV1SpillRecovery replaces a spill file with the format-v1 encoding
// of the same release (what a pre-v2 node left on disk) and restarts: a
// new store must recover it, answer identically, and count exactly the
// one rebuild the missing durable table forces.
func TestV1SpillRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("old", testPayload(t, 11), 1); err != nil {
		t.Fatal(err)
	}
	rel, err := s1.Get("old")
	if err != nil {
		t.Fatal(err)
	}
	qs := probeQueries(t, rel.Payload.Schema)
	want := counts(t, rel, qs)

	bare := *rel.Payload
	bare.Table, bare.Total = nil, 0
	var v1 bytes.Buffer
	if err := codec.Encode(&v1, &bare); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s1.spillPath("old"), v1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Dir: dir, MaxResident: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Rebuilds != 1 || st.MMapHits != 0 {
		t.Fatalf("after v1 recovery Stats = %+v, want exactly 1 rebuild, 0 mmap hits", st)
	}
	rel2, err := s2.Get("old")
	if err != nil {
		t.Fatal(err)
	}
	got := counts(t, rel2, qs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d after v1 recovery: %x != %x", i, got[i], want[i])
		}
	}
}

// TestIngestVersions covers the replica-ingest matrix: v2 bytes adopt
// the shipped table (no rebuild), v1 bytes and tail-corrupted v2 bytes
// fall back to a counted rebuild — all three answering identically.
func TestIngestVersions(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(t, 21)
	qs := probeQueries(t, p.Schema)
	wantEval := query.NewEvaluator(p.Noisy.Clone())

	var v1 bytes.Buffer
	if err := codec.Encode(&v1, p); err != nil { // Table nil -> format v1
		t.Fatal(err)
	}
	pre := p.Noisy.Clone()
	pre.PrefixSumExec(1)
	p.Table, p.Total = pre, p.Noisy.Total()
	var v2 bytes.Buffer
	if err := codec.Encode(&v2, p); err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), v2.Bytes()...)
	corrupt[len(corrupt)-6] ^= 0x20

	cases := []struct {
		id       string
		raw      []byte
		rebuilds int64 // cumulative expectation after this ingest
	}{
		{"from-v2", v2.Bytes(), 0},
		{"from-v1", v1.Bytes(), 1},
		{"from-corrupt", corrupt, 2},
	}
	for _, c := range cases {
		if err := s.Ingest(c.id, bytes.NewReader(c.raw), 2); err != nil {
			t.Fatalf("Ingest(%s): %v", c.id, err)
		}
		if got := s.Stats().Rebuilds; got != c.rebuilds {
			t.Fatalf("after Ingest(%s): Rebuilds = %d, want %d", c.id, got, c.rebuilds)
		}
		rel, err := s.Get(c.id)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want, err := wantEval.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rel.Eval.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Ingest(%s) query %d: %x != %x", c.id, i, got, want)
			}
		}
	}
}

// TestResidencyAccounting checks the heap/mapped byte split on Stats
// and Describe: a fresh Put is all heap, a mapped reload is all file
// pages, a NoMMap reload is back to heap, and eviction zeroes both.
func TestResidencyAccounting(t *testing.T) {
	// testPayload: 8 entries noisy + 8 entries table = 128 bytes.
	const wantBytes = 2 * 8 * 8
	for _, noMMap := range []bool{false, true} {
		name := "mmap"
		if noMMap {
			name = "nommap"
		}
		t.Run(name, func(t *testing.T) {
			s, err := New(Config{MaxResident: 1, Dir: t.TempDir(), NoMMap: noMMap})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("a", testPayload(t, 1), 1); err != nil {
				t.Fatal(err)
			}
			if st := s.Stats(); st.HeapBytes != wantBytes || st.MappedBytes != 0 {
				t.Fatalf("after Put: heap %d mapped %d, want %d/0", st.HeapBytes, st.MappedBytes, wantBytes)
			}
			if err := s.Put("b", testPayload(t, 2), 1); err != nil {
				t.Fatal(err) // evicts a
			}
			stub, err := s.Describe("a")
			if err != nil {
				t.Fatal(err)
			}
			if stub.Resident || stub.HeapBytes != 0 || stub.MappedBytes != 0 {
				t.Fatalf("evicted stub = %+v, want zero residency", stub)
			}
			if _, err := s.Get("a"); err != nil {
				t.Fatal(err)
			}
			stub, err = s.Describe("a")
			if err != nil {
				t.Fatal(err)
			}
			if noMMap {
				if stub.HeapBytes != wantBytes || stub.MappedBytes != 0 {
					t.Fatalf("NoMMap reload stub = %+v, want all heap", stub)
				}
			} else {
				if stub.MappedBytes != wantBytes || stub.HeapBytes != 0 {
					t.Fatalf("mapped reload stub = %+v, want all mapped", stub)
				}
			}
			st := s.Stats()
			if st.HeapBytes != stub.HeapBytes || st.MappedBytes != stub.MappedBytes {
				t.Fatalf("Stats %+v disagrees with the lone resident stub %+v", st, stub)
			}
		})
	}
}
