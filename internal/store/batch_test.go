package store

// Batch execution meets the store here: a query.Batch runs over the
// evaluator of a Release handle, and the store may evict or reload that
// release mid-batch. The properties under test are the serving side of
// the determinism contract — a held Release stays valid while the store
// drops its own references, and an evaluator rebuilt by a reload answers
// every query bit-identically (float64 ==) to the original.

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestBatchUnderEvictionReload is the mid-batch churn property: while a
// batch executes over release A's evaluator at several worker counts, a
// churner keeps forcing A in and out of residency (publishing rivals and
// re-Getting A under MaxResident=1). Every batch — including ones over
// handles obtained mid-churn, whose evaluator is a reload's rebuild —
// must return answers float64 == to the serial loop recorded up front.
func TestBatchUnderEvictionReload(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), MaxResident: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := testPayload(t, 42)
	if err := s.Put("a", p, 1); err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewGenerator(p.Schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(4000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}

	relA, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		if want[i], err = relA.Eval.Count(q); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Churn: rival Puts push "a" out of the resident budget, Gets
		// reload it. Each cycle drops and rebuilds a's evaluator.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := []string{"b", "c", "d"}[i%3]
			_ = s.Remove(id) // ignore not-found on the first cycles
			if err := s.Put(id, testPayload(t, uint64(100+i%3)), 1); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Get("a"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		// A handle obtained mid-churn: its evaluator may be a reload's
		// rebuild rather than the Put-time original.
		rel, err := s.Get("a")
		if err != nil {
			t.Fatal(err)
		}
		got, err := query.Batch{Eval: rel.Eval, Workers: workers}.Execute(context.Background(), queries)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: answer %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
		// The up-front handle stays valid too, however many times the
		// store has dropped its references since.
		gotOld, err := query.Batch{Eval: relA.Eval, Workers: workers}.Execute(context.Background(), queries)
		if err != nil {
			t.Fatalf("workers=%d (held handle): %v", workers, err)
		}
		for i := range want {
			if gotOld[i] != want[i] {
				t.Fatalf("workers=%d (held handle): answer %d = %v, want %v", workers, i, gotOld[i], want[i])
			}
		}
	}
	close(stop)
	wg.Wait()
}
