package store

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestRemoveInMemory(t *testing.T) {
	s, err := New(Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("r1", testPayload(t, 1), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove: %v, want ErrNotFound", err)
	}
	if _, err := s.Describe("r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Describe after Remove: %v, want ErrNotFound", err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len after Remove = %d", n)
	}
	st := s.Stats()
	if st.Removals != 1 || st.Resident != 0 {
		t.Fatalf("stats after Remove: %+v", st)
	}
	if err := s.Remove("r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove: %v, want ErrNotFound", err)
	}
	// The ID is free again.
	if err := s.Put("r1", testPayload(t, 2), 1); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDeletesSpillFile(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, MaxResident: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.Put(fmt.Sprintf("r%d", i), testPayload(t, uint64(i)), 1); err != nil {
			t.Fatal(err)
		}
	}
	// r1 was evicted (budget 1), so its only copy is the spill file.
	for _, id := range []string{"r1", "r2", "r3"} {
		if _, err := os.Stat(s.spillPath(id)); err != nil {
			t.Fatalf("spill file for %s: %v", id, err)
		}
	}
	if err := s.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("r3"); err != nil { // resident one
		t.Fatal(err)
	}
	for _, id := range []string{"r1", "r3"} {
		if _, err := os.Stat(s.spillPath(id)); !os.IsNotExist(err) {
			t.Fatalf("spill file for removed %s still present (err=%v)", id, err)
		}
	}

	// A store reopened on the directory recovers only the survivor:
	// removal is durable.
	s2, err := New(Config{Dir: dir, MaxResident: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n != 1 {
		t.Fatalf("recovered %d releases, want 1", n)
	}
	if _, err := s2.Get("r2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("r1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed release recovered: %v", err)
	}
}

// TestRemoveKeepsHeldReleasesValid: removal only drops the store's
// references — a Release obtained before the removal keeps answering.
func TestRemoveKeepsHeldReleasesValid(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("r1", testPayload(t, 3), 1); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	qs := probeQueries(t, rel.Payload.Schema)
	before := counts(t, rel, qs)
	if err := s.Remove("r1"); err != nil {
		t.Fatal(err)
	}
	after := counts(t, rel, qs)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("held release changed answers after Remove: %v vs %v", before, after)
		}
	}
}

// TestRemoveConcurrentWithReadersAndEviction hammers Remove against
// Get/Put/eviction under -race: accounting must stay consistent and no
// operation may panic or corrupt another's entry.
func TestRemoveConcurrentWithReadersAndEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, MaxResident: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const ids = 8
	var wg sync.WaitGroup
	for g := 0; g < ids; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("c%d", g)
			for iter := 0; iter < 20; iter++ {
				if err := s.Put(id, testPayload(t, uint64(g)), 1); err != nil {
					t.Errorf("Put %s: %v", id, err)
					return
				}
				// Concurrent readers may see the release or ErrNotFound,
				// nothing else.
				if _, err := s.Get(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Get %s: %v", id, err)
					return
				}
				if err := s.Remove(id); err != nil && !errors.Is(err, ErrNotFound) {
					t.Errorf("Remove %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	st := s.Stats()
	if st.Releases != 0 || st.Resident != 0 {
		t.Fatalf("store not empty after churn: %+v", st)
	}
	// Every spill file must be gone too: Remove cleaned up even when it
	// raced an in-flight write-through. Only the durable tombstone
	// markers survive — each ID's last operation was a Remove, and the
	// marker is what keeps replication from resurrecting it.
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tombs := 0
	for _, d := range dirents {
		if strings.HasSuffix(d.Name(), tombExt) {
			tombs++
			continue
		}
		t.Fatalf("orphan file after churn: %s", d.Name())
	}
	if tombs != ids {
		t.Fatalf("tombstone markers after churn = %d, want %d", tombs, ids)
	}
}
