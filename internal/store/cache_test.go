package store

// Answer-cache lifecycle at the store boundary: a cache belongs to one
// store entry, survives LRU eviction (it is bounded; holding it is
// cheaper than recomputing a workload), dies with Remove, and is built
// fresh when an ID is reused — so a cached answer can never outlive, or
// leak into, a different release under the same ID. The churn test runs
// that contract under -race against concurrent cached batches.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

// cachedBatch answers queries through rel's cache-equipped batch.
func cachedBatch(t testing.TB, rel Release, queries []query.Query, workers int) []float64 {
	t.Helper()
	got, err := query.Batch{
		Eval: rel.Eval, Workers: workers,
		Cache: rel.Cache, Schema: rel.Payload.Schema,
	}.Execute(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestStoreAnswerCacheLifecycle pins the single-threaded lifecycle:
// populated on use, shared across Gets of the same entry, preserved
// across eviction+reload, discarded by Remove, fresh on ID reuse.
func TestStoreAnswerCacheLifecycle(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), MaxResident: 1, AnswerCache: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testPayload(t, 1), 1); err != nil {
		t.Fatal(err)
	}
	relA, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if relA.Cache == nil {
		t.Fatal("Config.AnswerCache > 0 but Release.Cache is nil")
	}
	gen, err := workload.NewGenerator(relA.Payload.Schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(200, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := cachedBatch(t, relA, queries, 1)
	warmLen := relA.Cache.Len()
	if warmLen == 0 {
		t.Fatal("batch over a cached release left the cache empty")
	}

	// Evict "a" by publishing a rival under MaxResident=1; the reloaded
	// handle carries the same warm cache object.
	if err := s.Put("b", testPayload(t, 2), 1); err != nil {
		t.Fatal(err)
	}
	relA2, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if relA2.Cache != relA.Cache {
		t.Fatal("eviction+reload replaced the answer cache; warm entries lost")
	}
	got := cachedBatch(t, relA2, queries, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-reload cached answer %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Remove drops the cache with the entry; re-Putting the same ID gets
	// a fresh, empty cache — never the removed release's answers.
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testPayload(t, 3), 1); err != nil {
		t.Fatal(err)
	}
	relA3, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if relA3.Cache == relA.Cache {
		t.Fatal("ID reuse kept the removed release's cache")
	}
	if relA3.Cache.Len() != 0 {
		t.Fatalf("fresh cache has %d entries", relA3.Cache.Len())
	}
	// And the new payload's answers differ from the old — proving a
	// stale cache would have been observable had it leaked.
	fresh := cachedBatch(t, relA3, queries, 1)
	same := true
	for i := range want {
		if fresh[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("salt 1 and salt 3 payloads answer identically; fixture too weak for the leak check")
	}
}

func TestStoreAnswerCacheDisabled(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testPayload(t, 1), 1); err != nil {
		t.Fatal(err)
	}
	rel, err := s.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cache != nil {
		t.Fatal("AnswerCache unset but Release.Cache non-nil")
	}
	st := s.Stats()
	if st.AnswerCacheMax != 0 || st.AnswerCacheEntries != 0 {
		t.Fatalf("disabled cache surfaces on stats: %+v", st)
	}
}

// TestCachedBatchUnderChurn is the -race churn property: concurrent
// cached batch queries run while other goroutines Remove and re-Put the
// same ID with different payloads and force eviction/reload cycles.
// Whatever interleaving happens, a handle's answers must match the
// payload that handle was served with — the cache attached to a removed
// release must never answer for its successor, and vice versa.
func TestCachedBatchUnderChurn(t *testing.T) {
	s, err := New(Config{Dir: t.TempDir(), MaxResident: 1, Shards: 4, AnswerCache: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Two generations of release "a", with per-salt expected answers.
	salts := []uint64{10, 20}
	p := testPayload(t, salts[0])
	gen, err := workload.NewGenerator(p.Schema, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(300, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[float64][]float64) // keyed by the payload's first entry
	for _, salt := range salts {
		pl := testPayload(t, salt)
		ev := query.NewEvaluator(pl.Noisy.Clone())
		w := make([]float64, len(queries))
		for i, q := range queries {
			if w[i], err = ev.Count(q); err != nil {
				t.Fatal(err)
			}
		}
		want[pl.Noisy.Data()[0]] = w
	}

	if err := s.Put("a", testPayload(t, salts[0]), 1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churners, queriers sync.WaitGroup

	// Churner 1: flip "a" between the two generations via Remove+Put.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Remove("a")
			if err := s.Put("a", testPayload(t, salts[i%2]), 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Churner 2: rival Puts force eviction/reload of whatever is resident.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := []string{"b", "c"}[i%2]
			_ = s.Remove(id)
			if err := s.Put(id, testPayload(t, uint64(100+i%2)), 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Queriers: run cached batches against whatever generation of "a"
	// they catch, and check the answers against that handle's payload.
	for g := 0; g < 3; g++ {
		queriers.Add(1)
		go func(workers int) {
			defer queriers.Done()
			for n := 0; n < 40; n++ {
				rel, err := s.Get("a")
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // caught the gap between Remove and Put
					}
					t.Error(err)
					return
				}
				w, ok := want[rel.Payload.Noisy.Data()[0]]
				if !ok {
					t.Errorf("handle carries unknown payload generation")
					return
				}
				got, err := query.Batch{
					Eval: rel.Eval, Workers: workers,
					Cache: rel.Cache, Schema: rel.Payload.Schema,
				}.Execute(context.Background(), queries)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range w {
					if got[i] != w[i] {
						t.Errorf("workers=%d: answer %d = %v, want %v — cache served a different release's answer",
							workers, i, got[i], w[i])
						return
					}
				}
			}
		}(1 + g)
	}
	queriers.Wait() // queriers finish first; then stop the churners
	close(stop)
	churners.Wait()
}
