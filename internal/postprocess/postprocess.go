// Package postprocess refines a released noisy frequency matrix without
// touching the private data, so every operation here is privacy-free
// post-processing (§III-A: the third Privelet step "does not utilize any
// information from T or M"; differential privacy is closed under
// post-processing).
//
// The refinements target the two cosmetic defects Laplace releases have —
// negative counts and non-integer counts — which Barak et al. (§VIII)
// treat as first-class goals. They typically help small queries and never
// change the privacy level.
package postprocess

import (
	"math"

	"repro/internal/matrix"
)

// NonNegative clamps every entry of m to ≥ 0 in place and returns m.
func NonNegative(m *matrix.Matrix) *matrix.Matrix {
	data := m.Data()
	for i, v := range data {
		if v < 0 {
			data[i] = 0
		}
	}
	return m
}

// Round rounds every entry of m to the nearest integer in place and
// returns m.
func Round(m *matrix.Matrix) *matrix.Matrix {
	data := m.Data()
	for i, v := range data {
		data[i] = math.Round(v)
	}
	return m
}

// Sanitize applies NonNegative then Round — the conventional "counts are
// non-negative integers" cleanup.
func Sanitize(m *matrix.Matrix) *matrix.Matrix {
	return Round(NonNegative(m))
}

// RescaleTotal scales the matrix so its total matches target (e.g. a
// separately-released noisy tuple count), when target and the current
// total are both positive; otherwise it leaves m unchanged. In place;
// returns m.
func RescaleTotal(m *matrix.Matrix, target float64) *matrix.Matrix {
	total := m.Total()
	if total > 0 && target > 0 {
		m.Scale(target / total)
	}
	return m
}
