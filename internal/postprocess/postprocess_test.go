package postprocess

import (
	"math"
	"testing"

	"repro/internal/matrix"
	"repro/internal/rng"
)

func noisyMatrix(seed uint64) *matrix.Matrix {
	m := matrix.MustNew(6, 6)
	r := rng.New(seed)
	data := m.Data()
	for i := range data {
		data[i] = r.Float64()*10 - 3
	}
	return m
}

func TestNonNegative(t *testing.T) {
	m := noisyMatrix(1)
	NonNegative(m)
	for _, v := range m.Data() {
		if v < 0 {
			t.Fatal("negative entry survived NonNegative")
		}
	}
}

func TestNonNegativePreservesPositive(t *testing.T) {
	m := matrix.MustNew(2, 2)
	m.Set(3.5, 0, 1)
	m.Set(-2, 1, 0)
	NonNegative(m)
	if m.At(0, 1) != 3.5 {
		t.Error("positive entry changed")
	}
	if m.At(1, 0) != 0 {
		t.Error("negative entry not clamped to 0")
	}
}

func TestRound(t *testing.T) {
	m := matrix.MustNew(3)
	m.Set(1.4, 0)
	m.Set(1.5, 1)
	m.Set(-2.6, 2)
	Round(m)
	if m.At(0) != 1 || m.At(1) != 2 || m.At(2) != -3 {
		t.Fatalf("Round gave %v %v %v", m.At(0), m.At(1), m.At(2))
	}
}

func TestSanitize(t *testing.T) {
	m := noisyMatrix(2)
	Sanitize(m)
	for _, v := range m.Data() {
		if v < 0 {
			t.Fatal("Sanitize left a negative entry")
		}
		if v != math.Trunc(v) {
			t.Fatal("Sanitize left a non-integer entry")
		}
	}
}

func TestSanitizeReturnsSameMatrix(t *testing.T) {
	m := noisyMatrix(3)
	if Sanitize(m) != m {
		t.Fatal("Sanitize should operate in place and return its argument")
	}
}

func TestRescaleTotal(t *testing.T) {
	m := matrix.MustNew(2, 2)
	m.Fill(1) // total 4
	RescaleTotal(m, 8)
	if math.Abs(m.Total()-8) > 1e-12 {
		t.Fatalf("rescaled total = %v, want 8", m.Total())
	}
	// Zero current total: unchanged.
	z := matrix.MustNew(2)
	RescaleTotal(z, 5)
	if z.Total() != 0 {
		t.Fatal("RescaleTotal should leave zero-total matrices unchanged")
	}
	// Non-positive target: unchanged.
	m2 := matrix.MustNew(2)
	m2.Fill(3)
	RescaleTotal(m2, 0)
	if m2.Total() != 6 {
		t.Fatal("RescaleTotal with target 0 should be a no-op")
	}
	RescaleTotal(m2, -4)
	if m2.Total() != 6 {
		t.Fatal("RescaleTotal with negative target should be a no-op")
	}
}

func TestSanitizeImprovesSmallCounts(t *testing.T) {
	// On a sparse true matrix (mostly zeros), clamping negatives reduces
	// total squared error of a Laplace release on average.
	r := rng.New(4)
	truth := matrix.MustNew(20, 20)
	truth.Set(40, 3, 3) // a single heavy cell
	var rawErr, cleanErr float64
	for trial := 0; trial < 200; trial++ {
		noisy := truth.Clone()
		data := noisy.Data()
		for i := range data {
			data[i] += r.Laplace(2)
		}
		clean := noisy.Clone()
		NonNegative(clean)
		for i, tv := range truth.Data() {
			rawErr += (noisy.Data()[i] - tv) * (noisy.Data()[i] - tv)
			cleanErr += (clean.Data()[i] - tv) * (clean.Data()[i] - tv)
		}
	}
	if cleanErr >= rawErr {
		t.Fatalf("NonNegative did not reduce error on sparse data: %v vs %v", cleanErr, rawErr)
	}
}
