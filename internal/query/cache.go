// Per-release answer caching. A Privelet release is immutable — the
// paper's model (§III) spends the ε budget once at publish time, after
// which the noisy matrix M* answers unlimited queries — so a (release,
// query) pair has exactly one answer, forever. Real serving traffic
// replays the same dashboard-style workloads against that immutable
// release, which makes memoization trivially sound: the only
// invalidation event a cache needs is release deletion.
//
// The cache key is the canonical Query.Spec rendering (attributes in
// schema order, normalized inclusive intervals): distinct keys iff
// distinct constraint sets, so collisions are impossible within one
// release, and equivalent spellings of one query ("Age=3..5,Sex=#1" vs
// "Sex = #1, Age=3..5") share an entry. Cached values are the float64
// the same evaluator produced, so a hit is bit-identical to a recompute
// — caching is a performance knob under the batch determinism contract.

package query

import (
	"sync"
	"sync/atomic"
)

// CacheCounters aggregates hit/miss/eviction counts across any number
// of AnswerCaches — the store shares one set across all its releases so
// /stats can report totals that survive individual release removal.
type CacheCounters struct {
	Hits      atomic.Int64
	Misses    atomic.Int64
	Evictions atomic.Int64
}

// AnswerCache is a bounded LRU of query answers for one release. All
// methods are safe for concurrent use; a nil *AnswerCache is a valid
// always-miss cache (Get reports a miss, Put is a no-op), so callers
// plumb one pointer without nil checks.
type AnswerCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheNode
	// head/tail of the intrusive LRU list; head is most recent.
	head, tail *cacheNode
	ctr        *CacheCounters
}

// cacheNode is one map entry threaded on the LRU list.
type cacheNode struct {
	key        string
	val        float64
	prev, next *cacheNode
}

// NewAnswerCache builds a cache bounded to max entries, reporting into
// ctr (which may be shared across caches; nil allocates a private set).
// max ≤ 0 disables caching by returning nil — the always-miss cache.
func NewAnswerCache(max int, ctr *CacheCounters) *AnswerCache {
	if max <= 0 {
		return nil
	}
	if ctr == nil {
		ctr = &CacheCounters{}
	}
	return &AnswerCache{max: max, entries: make(map[string]*cacheNode), ctr: ctr}
}

// Get returns the cached answer for the canonical spec key, marking the
// entry most-recently-used on a hit.
func (c *AnswerCache) Get(key string) (float64, bool) {
	if c == nil {
		return 0, false
	}
	return c.lookupString(key)
}

// lookup is the byte-keyed probe the batch hot path uses: looking up
// map[string] with a string([]byte) conversion at the index expression
// compiles without allocating, so a cache hit costs a map probe and a
// list splice — no per-query garbage.
func (c *AnswerCache) lookup(key []byte) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	n, ok := c.entries[string(key)]
	if !ok {
		c.mu.Unlock()
		c.ctr.Misses.Add(1)
		return 0, false
	}
	c.moveToFront(n)
	v := n.val
	c.mu.Unlock()
	c.ctr.Hits.Add(1)
	return v, true
}

func (c *AnswerCache) lookupString(key string) (float64, bool) {
	c.mu.Lock()
	n, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.ctr.Misses.Add(1)
		return 0, false
	}
	c.moveToFront(n)
	v := n.val
	c.mu.Unlock()
	c.ctr.Hits.Add(1)
	return v, true
}

// Put inserts (or refreshes) the answer under the canonical spec key,
// evicting the least-recently-used entry when the bound is exceeded.
func (c *AnswerCache) Put(key string, val float64) {
	if c == nil {
		return
	}
	evicted := false
	c.mu.Lock()
	if n, ok := c.entries[key]; ok {
		// Immutable release ⇒ val can only equal n.val; refresh recency.
		n.val = val
		c.moveToFront(n)
		c.mu.Unlock()
		return
	}
	n := &cacheNode{key: key, val: val}
	c.entries[key] = n
	c.pushFront(n)
	if len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		evicted = true
	}
	c.mu.Unlock()
	if evicted {
		c.ctr.Evictions.Add(1)
	}
}

// Len returns the current entry count.
func (c *AnswerCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// pushFront links n as the most-recently-used node.
func (c *AnswerCache) pushFront(n *cacheNode) {
	n.prev, n.next = nil, c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// unlink removes n from the list.
func (c *AnswerCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// moveToFront marks n most-recently-used.
func (c *AnswerCache) moveToFront(n *cacheNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
