// Plan → execute pipeline for batch query serving. The paper's
// experiments answer 40 000-query workloads per release (§VII-A), so the
// serving layer treats the workload as the first-class object the way
// matrix-mechanism systems do: Parse normalizes one textual predicate
// spec into a Query (every predicate is a contiguous leaf interval under
// the hierarchy's imposed order, §V-A), a Plan accumulates a validated
// batch against one schema, and Batch fans the plan across a worker pool
// over a summed-area Evaluator.
//
// Determinism: every query's answer is a pure function of the evaluator's
// table — Count reads, never writes — so fanning queries across workers
// reorders only the computation, not any floating-point arithmetic.
// Batch.Execute is therefore bit-identical (float64 ==) to a serial loop
// at any worker count, the serving-side analogue of the publish engine's
// determinism contract (docs/ARCHITECTURE.md), and property-tested the
// same way.

package query

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/matrix"
)

// Parse normalizes one textual query spec into a Query against schema.
// The grammar — shared by the server's q= parameter, the batch-query
// wire format, and cmd/privelet workload files — is comma-separated
// predicates:
//
//	Age=30..49        ordinal interval (inclusive)
//	Occupation=@g3    nominal hierarchy node (roll-up)
//	Gender=#1         nominal single leaf by position
//	Occupation=#3..5  leaf-position interval (the §V-A normalized form)
//
// An empty string or "*" is the full-domain query. Every failure —
// malformed predicate, unknown attribute, inverted or out-of-domain
// interval, wrong-kind predicate (e.g. a lo..hi range on a nominal
// attribute) — wraps ErrInvalid, so callers can map parse failures to
// client errors with errors.Is.
func Parse(schema *dataset.Schema, raw string) (Query, error) {
	b := NewBuilder(schema)
	raw = strings.TrimSpace(raw)
	if raw == "" || raw == "*" {
		return b.Build()
	}
	for _, clause := range strings.Split(raw, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Query{}, invalidf("query: predicate %q: want Attr=spec", clause)
		}
		name = strings.TrimSpace(name)
		val = strings.TrimSpace(val)
		switch {
		case strings.HasPrefix(val, "@"):
			b.Node(name, val[1:])
		case strings.HasPrefix(val, "#"):
			loStr, hiStr, isInterval := strings.Cut(val[1:], "..")
			if !isInterval {
				leaf, err := strconv.Atoi(val[1:])
				if err != nil {
					return Query{}, invalidf("query: predicate %q: bad leaf: %v", clause, err)
				}
				b.Leaf(name, leaf)
				continue
			}
			lo, hi, err := parseBounds(clause, loStr, hiStr)
			if err != nil {
				return Query{}, err
			}
			i, err := schema.Index(name)
			if err != nil {
				return Query{}, invalidf("query: %v", err)
			}
			// Both '#' forms are nominal-only, symmetrically: ordinal
			// attributes use the plain lo..hi range.
			if schema.Attr(i).Kind != dataset.Nominal {
				return Query{}, invalidf("query: predicate %q: leaf interval on non-nominal attribute %q (use lo..hi)", clause, name)
			}
			b.Interval(i, lo, hi)
		default:
			loStr, hiStr, isInterval := strings.Cut(val, "..")
			if !isInterval {
				return Query{}, invalidf("query: predicate %q: want lo..hi, @node, #leaf or #lo..hi", clause)
			}
			lo, hi, err := parseBounds(clause, loStr, hiStr)
			if err != nil {
				return Query{}, err
			}
			b.Range(name, lo, hi)
		}
	}
	return b.Build()
}

// parseBounds parses the two integers of a lo..hi interval spec.
func parseBounds(clause, loStr, hiStr string) (lo, hi int, err error) {
	lo, err = strconv.Atoi(strings.TrimSpace(loStr))
	if err != nil {
		return 0, 0, invalidf("query: predicate %q: bad lo: %v", clause, err)
	}
	hi, err = strconv.Atoi(strings.TrimSpace(hiStr))
	if err != nil {
		return 0, 0, invalidf("query: predicate %q: bad hi: %v", clause, err)
	}
	return lo, hi, nil
}

// Plan is a validated, normalized batch of range-count queries against
// one schema — a workload, as an object. Build one incrementally with
// Add (one spec at a time, so callers can stream a workload body without
// buffering its text) or AddQuery, then hand Queries() to Batch.
type Plan struct {
	schema  *dataset.Schema
	queries []Query
}

// NewPlan returns an empty plan against schema.
func NewPlan(schema *dataset.Schema) *Plan {
	return &Plan{schema: schema}
}

// Add parses one spec (Parse grammar) and appends the resulting query.
// Errors wrap ErrInvalid and leave the plan unchanged.
func (p *Plan) Add(spec string) error {
	q, err := Parse(p.schema, spec)
	if err != nil {
		return err
	}
	p.queries = append(p.queries, q)
	return nil
}

// AddQuery appends an already-built query. The caller is responsible for
// having built it against this plan's schema.
func (p *Plan) AddQuery(q Query) {
	p.queries = append(p.queries, q)
}

// Len returns the number of queries in the plan.
func (p *Plan) Len() int { return len(p.queries) }

// Query returns the i-th query.
func (p *Plan) Query(i int) Query { return p.queries[i] }

// Queries returns the plan's backing query slice (not a copy, so a batch
// execution adds no per-workload allocation); callers must treat it as
// read-only.
func (p *Plan) Queries() []Query { return p.queries }

// Schema returns the schema the plan's queries were validated against.
func (p *Plan) Schema() *dataset.Schema { return p.schema }

// batchCancelCheck is roughly how many queries a batch worker answers
// between context checks: one Count costs 2^d table lookups (well under
// a microsecond), so a ~thousand-query granule keeps the check free
// while a cancelled 40k-query batch still stops within a millisecond.
const batchCancelCheck = 1024

// DefaultStreamChunk is the answer-chunk size of Batch.ExecuteStream
// when Batch.ChunkSize is unset: 4Ki queries ≈ 32 KiB of answers per
// flush, small enough that two in-flight chunks bound memory at any
// workload size, large enough that per-chunk pool and flush overhead
// stays well under the ~146 ns the answers themselves cost.
const DefaultStreamChunk = 4096

// Source streams queries into a batch execution, one at a time: it
// returns the next query, ok=false on clean end of input, or an error
// (which aborts the stream). ExecuteStream calls it from one goroutine
// at a time, overlapped with the previous chunk's execution, so a
// parsing Source pipelines wire-format decoding into query execution.
type Source func() (q Query, ok bool, err error)

// Sink receives each in-order chunk of answers from ExecuteStream. The
// slice is reused for later chunks; implementations must copy anything
// they keep past the call. A Sink error aborts the stream.
type Sink func(answers []float64) error

// SliceSource adapts an in-memory query slice to a Source (the buffered
// workload case of ExecuteStream).
func SliceSource(queries []Query) Source {
	i := 0
	return func() (Query, bool, error) {
		if i >= len(queries) {
			return Query{}, false, nil
		}
		q := queries[i]
		i++
		return q, true, nil
	}
}

// Batch executes query workloads against one evaluator with a worker
// pool. Workers follows the codebase-wide knob convention
// (matrix.ResolveWorkers): ≤ 0 — including the zero value — means all
// cores; set Workers to 1 for strictly serial execution.
//
// Answers are bit-identical (float64 ==) to a serial Count loop at any
// worker count: queries split into contiguous index ranges, each answer
// lands in its own slot, and no floating-point operation depends on the
// split. The evaluator is immutable and safe for concurrent use, so a
// batch may run while the release store evicts or reloads the release —
// a held Evaluator stays valid (internal/store's eviction only drops the
// store's own references).
//
// With Cache set (Schema required then), answers flow through a
// per-release AnswerCache keyed by the canonical Query.Spec rendering:
// hits skip the evaluator entirely, misses execute on the pool and are
// inserted. Cached answers are the float64 values the same evaluator
// produced earlier, so caching never changes an answer — the cache is a
// performance knob under the same contract as Workers.
type Batch struct {
	// Eval answers the individual queries.
	Eval *Evaluator
	// Workers caps the fan-out; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, memoizes answers keyed by canonical spec.
	Cache *AnswerCache
	// Schema renders cache keys (Query.Spec); required iff Cache is set.
	Schema *dataset.Schema
	// ChunkSize is ExecuteStream's answer-chunk size; ≤ 0 means
	// DefaultStreamChunk. Chunk boundaries never affect answers.
	ChunkSize int
}

// Execute answers every query, in input order. ctx is observed about
// every batchCancelCheck queries; on cancellation Execute returns ctx's
// error and no answers. A per-query failure (a query built against a
// different schema than the evaluator's matrix) aborts the batch with
// the lowest-index error, deterministically at any worker count.
func (b Batch) Execute(ctx context.Context, queries []Query) ([]float64, error) {
	if b.Eval == nil {
		return nil, fmt.Errorf("query: Batch.Execute without an Evaluator")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	answers := make([]float64, len(queries))
	if err := b.run(ctx, queries, answers); err != nil {
		return nil, err
	}
	return answers, nil
}

// run answers queries into the matching answers slots — through the
// cache when configured, with misses fanned across the worker pool. It
// is the one execution core under Execute and ExecuteStream, so the
// buffered, streamed, and cached paths cannot drift.
func (b Batch) run(ctx context.Context, queries []Query, answers []float64) error {
	if b.Cache == nil {
		return b.runPool(ctx, queries, answers)
	}
	if b.Schema == nil {
		return fmt.Errorf("query: Batch.Cache requires Batch.Schema (cache keys are canonical specs)")
	}
	// Partition into hits and misses. Keys render into one reused buffer;
	// lookups go through the byte-keyed probe so a hit allocates nothing,
	// and only misses pay for a persistent key string.
	var (
		keyBuf   []byte
		missQ    []Query
		missIdx  []int
		missKeys []string
	)
	for i := range queries {
		keyBuf = queries[i].appendSpec(keyBuf[:0], b.Schema)
		if v, ok := b.Cache.lookup(keyBuf); ok {
			answers[i] = v
			continue
		}
		missQ = append(missQ, queries[i])
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, string(keyBuf))
	}
	if len(missQ) == 0 {
		return nil
	}
	missA := make([]float64, len(missQ))
	if err := b.runPool(ctx, missQ, missA); err != nil {
		return err
	}
	for j, i := range missIdx {
		answers[i] = missA[j]
		b.Cache.Put(missKeys[j], missA[j])
	}
	return nil
}

// runPool is the uncached pool execution: contiguous per-worker ranges
// over the evaluator, lowest-index error wins.
func (b Batch) runPool(ctx context.Context, queries []Query, answers []float64) error {
	n := len(queries)
	workers := matrix.ResolveWorkers(b.Workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return b.executeRange(ctx, queries, answers, 0, n)
	}
	// Contiguous ranges, one per worker: range membership is a pure
	// function of (n, workers), mirroring matrix.forEachRange, and every
	// worker writes disjoint answer slots.
	type failure struct {
		idx int
		err error
	}
	fails := make(chan failure, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := b.executeRange(ctx, queries, answers, lo, hi); err != nil {
				fails <- failure{lo, err}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(fails)
	// Several workers may fail (e.g. a cancel reaches all of them);
	// report the lowest-range one so the error is deterministic.
	var first *failure
	for f := range fails {
		if first == nil || f.idx < first.idx {
			f := f
			first = &f
		}
	}
	if first != nil {
		return first.err
	}
	return nil
}

// streamChunk is one ping-pong buffer of ExecuteStream's pipeline.
type streamChunk struct {
	queries []Query
	answers []float64
	n       int
}

// ExecuteStream answers a streamed workload in fixed-size in-order
// chunks, delivering each chunk to sink while later chunks are still
// parsing and executing. The pipeline is double-buffered across two
// chunk buffers: while chunk k executes on the worker pool, chunk k+1
// is pulled from src (so wire-format parsing overlaps execution), and
// while chunk k's answers are written by the sink, chunk k+1 executes.
// Peak memory is two chunks — O(ChunkSize) — whatever the workload
// length; a million-query workload streams without ever existing as a
// slice.
//
// Answers are bit-identical (float64 ==) to Execute over the same
// queries at any worker count and any chunk size: chunking reorders
// only computation, never floating-point arithmetic, and the cache (if
// configured) returns previously computed float64 values unchanged.
//
// ExecuteStream returns the number of answers delivered. On error the
// stream stops: every chunk delivered before the failure stays
// delivered (callers surface the cut via a trailer — see
// internal/workload's answer wire format), a src error discards the
// partially filled chunk it interrupted, and the error is returned. A
// sink error aborts without further deliveries.
func (b Batch) ExecuteStream(ctx context.Context, src Source, sink Sink) (int, error) {
	if b.Eval == nil {
		return 0, fmt.Errorf("query: Batch.ExecuteStream without an Evaluator")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	size := b.ChunkSize
	if size <= 0 {
		size = DefaultStreamChunk
	}
	var bufs [2]streamChunk
	for i := range bufs {
		bufs[i] = streamChunk{queries: make([]Query, size), answers: make([]float64, size)}
	}
	srcDone := false
	fill := func(c *streamChunk) error {
		c.n = 0
		for !srcDone && c.n < size {
			q, ok, err := src()
			if err != nil {
				return err
			}
			if !ok {
				srcDone = true
				break
			}
			c.queries[c.n] = q
			c.n++
		}
		return nil
	}
	exec := func(c *streamChunk) chan error {
		done := make(chan error, 1)
		go func() { done <- b.run(ctx, c.queries[:c.n], c.answers[:c.n]) }()
		return done
	}

	cur, nxt := &bufs[0], &bufs[1]
	if err := fill(cur); err != nil {
		return 0, err
	}
	if cur.n == 0 {
		return 0, nil
	}
	delivered := 0
	running := exec(cur)
	for cur.n > 0 {
		// Overlap: pull the next chunk from the source while cur executes.
		fillErr := fill(nxt)
		if err := <-running; err != nil {
			return delivered, err
		}
		running = nil
		// Overlap: start the next chunk before writing this one out.
		if fillErr == nil && nxt.n > 0 {
			running = exec(nxt)
		}
		if err := sink(cur.answers[:cur.n]); err != nil {
			if running != nil {
				<-running
			}
			return delivered, err
		}
		delivered += cur.n
		if fillErr != nil {
			return delivered, fillErr
		}
		cur, nxt = nxt, cur
	}
	return delivered, nil
}

// executeRange answers queries [lo, hi) into the matching answer slots,
// observing ctx about every batchCancelCheck queries. The error of query
// i is reported before any error of query j > i, so the serial path and
// each pooled worker fail deterministically.
func (b Batch) executeRange(ctx context.Context, queries []Query, answers []float64, lo, hi int) error {
	for i := lo; i < hi; i++ {
		if (i-lo)%batchCancelCheck == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		a, err := b.Eval.Count(queries[i])
		if err != nil {
			return fmt.Errorf("query: batch query %d: %w", i, err)
		}
		answers[i] = a
	}
	return nil
}
