package query_test

// External test package: the round-trip property test drives the parser
// with internal/workload's §VII-A generator, which imports query — an
// in-package test would cycle.

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

func planSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.MustSchema(
		dataset.OrdinalAttr("Age", 10),
		dataset.NominalAttr("Occ", h),
	)
}

func TestParseGrammar(t *testing.T) {
	s := planSchema(t)
	cases := []struct {
		raw     string
		wantErr bool
	}{
		{"", false},
		{"*", false},
		{" * ", false},
		{"Age=0..9", false},
		{"Age = 2 .. 5 , Occ=@g1", false},
		{"Occ=#3", false},
		{"Occ=#3..5", false},
		{",,", false},       // empty clauses skipped
		{"Age=#2..4", true}, // both '#' forms are nominal-only
		{"Age", true},
		{"Age=5", true},
		{"Age=a..b", true},
		{"Age=1..x", true},
		{"Age=#1..x", true},
		{"Age=9..1", true}, // inverted
		{"Occ=#x", true},
		{"Occ=#5..3", true}, // inverted leaf interval
		{"Occ=#0..9", true}, // out of domain
		{"Occ=@ghost", true},
		{"Occ=1..3", true}, // ordinal range on a nominal attribute
		{"Ghost=1..2", true},
		{"Ghost=#1..2", true},
	}
	for _, tc := range cases {
		_, err := query.Parse(s, tc.raw)
		if (err != nil) != tc.wantErr {
			t.Errorf("Parse(%q) err=%v, wantErr=%v", tc.raw, err, tc.wantErr)
		}
		if err != nil && !errors.Is(err, query.ErrInvalid) {
			t.Errorf("Parse(%q): error does not wrap ErrInvalid: %v", tc.raw, err)
		}
	}
}

// TestSpecParseRoundTrip is the wire-format property: for random §VII-A
// workload queries, Parse(schema, q.Spec(schema)) reproduces q's
// normalized intervals exactly.
func TestSpecParseRoundTrip(t *testing.T) {
	s := planSchema(t)
	gen, err := workload.NewGenerator(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(200, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Include the full-domain query, whose spec is "*".
	free, err := query.NewBuilder(s).Build()
	if err != nil {
		t.Fatal(err)
	}
	queries = append(queries, free)
	for _, q := range queries {
		spec := q.Spec(s)
		back, err := query.Parse(s, spec)
		if err != nil {
			t.Fatalf("Parse(Spec %q): %v", spec, err)
		}
		glo, ghi, blo, bhi := q.Lo(), q.Hi(), back.Lo(), back.Hi()
		for i := range glo {
			if glo[i] != blo[i] || ghi[i] != bhi[i] {
				t.Fatalf("spec %q: attr %d round-tripped to [%d,%d], want [%d,%d]",
					spec, i, blo[i], bhi[i], glo[i], ghi[i])
			}
		}
	}
}

func TestPlanAdd(t *testing.T) {
	s := planSchema(t)
	p := query.NewPlan(s)
	if err := p.Add("Age=1..3"); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("Occ=@g1"); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("Age=3..1"); !errors.Is(err, query.ErrInvalid) {
		t.Fatalf("inverted range: err = %v, want ErrInvalid", err)
	}
	if p.Len() != 2 {
		t.Fatalf("failed Add changed the plan: len = %d, want 2", p.Len())
	}
	if got := p.Query(0).Spec(s); got != "Age=1..3" {
		t.Fatalf("plan query 0 spec = %q", got)
	}
}

// batchFixture builds an evaluator over a deterministic matrix plus a
// workload large enough to exercise several pool splits.
func batchFixture(t *testing.T, n int) (*query.Evaluator, []query.Query) {
	t.Helper()
	s := planSchema(t)
	m := matrix.MustNew(10, 6)
	data := m.Data()
	for i := range data {
		data[i] = float64(i%23) + 0.125*float64(i%7)
	}
	ev := query.NewEvaluator(m)
	gen, err := workload.NewGenerator(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(n, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return ev, queries
}

// TestBatchParallelismInvariance is the executor's central property:
// answers at workers 1, 4 and GOMAXPROCS are float64 == to a serial
// Count loop, in order.
func TestBatchParallelismInvariance(t *testing.T) {
	ev, queries := batchFixture(t, 3000)
	want := make([]float64, len(queries))
	for i, q := range queries {
		a, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 0, 64} {
		got, err := query.Batch{Eval: ev, Workers: workers}.Execute(context.Background(), queries)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d answers, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: answer %d = %v, serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestBatchEmptyAndNil(t *testing.T) {
	ev, _ := batchFixture(t, 0)
	got, err := query.Batch{Eval: ev, Workers: 4}.Execute(context.Background(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: answers=%v err=%v", got, err)
	}
	if _, err := (query.Batch{}).Execute(context.Background(), nil); err == nil {
		t.Fatal("nil evaluator: expected error")
	}
}

func TestBatchPreCancelled(t *testing.T) {
	ev, queries := batchFixture(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if _, err := (query.Batch{Eval: ev, Workers: workers}).Execute(ctx, queries); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestBatchErrorDeterminism: a query that does not fit the evaluator's
// matrix aborts the batch with the lowest-index failure at any worker
// count — error reporting must not depend on the pool split.
func TestBatchErrorDeterminism(t *testing.T) {
	ev, queries := batchFixture(t, 2000)
	// Queries built against a wider schema than the evaluator's matrix:
	// Count fails on them with a (non-ErrInvalid) engine error.
	wide := dataset.MustSchema(dataset.OrdinalAttr("Age", 50), dataset.OrdinalAttr("X", 50))
	bad, err := query.NewBuilder(wide).Range("Age", 0, 49).Build()
	if err != nil {
		t.Fatal(err)
	}
	queries[777] = bad
	queries[1500] = bad
	var want error
	for _, workers := range []int{1, 3, 4, runtime.GOMAXPROCS(0), 16} {
		_, err := query.Batch{Eval: ev, Workers: workers}.Execute(context.Background(), queries)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if errors.Is(err, query.ErrInvalid) {
			t.Fatalf("workers=%d: engine failure mislabeled as client error: %v", workers, err)
		}
		if want == nil {
			want = err
		} else if err.Error() != want.Error() {
			t.Fatalf("workers=%d: error %q, want %q (lowest-index rule)", workers, err, want)
		}
	}
}
