//go:build !race

package query_test

// raceEnabled is false in ordinary builds; see race_test.go.
const raceEnabled = false
