// Package query implements the paper's range-count queries (§II-A):
//
//	SELECT COUNT(*) FROM T
//	WHERE A1 ∈ S1 AND A2 ∈ S2 AND ... AND Ad ∈ Sd
//
// where S_i is an interval for an ordinal attribute, and — for a nominal
// attribute — either one leaf of the hierarchy or all leaves under one
// internal node. Because the hierarchy's imposed total order makes every
// such S_i a contiguous leaf interval (§V-A), a query normalizes to one
// inclusive interval [Lo, Hi] per attribute (unconstrained attributes get
// the full domain).
//
// Evaluation comes in two speeds: Eval scans the covered entries of a
// frequency matrix directly, and an Evaluator answers from a precomputed
// summed-area table in O(2^d) per query — the only way to push the
// paper's 40 000-query workloads through multi-million-entry matrices.
//
// Serving the paper's workloads (§VII runs 40 000 queries per
// experiment) treats the workload, not the single query, as the
// first-class object: Parse turns one textual predicate spec into a
// Query, a Plan accumulates a validated batch of them against one
// schema, and Batch fans a plan across a worker pool over an Evaluator
// with answers bit-identical (float64 ==) to a serial loop. See plan.go.
package query

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/matrix"
)

// ErrInvalid tags every query-construction and parse failure: inverted
// ranges, unknown attribute names, wrong-kind predicates, out-of-domain
// bounds, malformed predicate syntax. API layers test with errors.Is to
// map "the query is bad" (a client error, HTTP 400) apart from "the
// engine failed" (a server error, HTTP 500) without string matching.
var ErrInvalid = errors.New("invalid query")

// invalidf builds an error wrapping ErrInvalid.
func invalidf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrInvalid)...)
}

// Query is a normalized range-count query: one inclusive interval per
// attribute of the schema it was built against.
type Query struct {
	lo, hi []int
	// constrained[i] records whether attribute i had an explicit
	// predicate (used only for reporting; evaluation treats full-range
	// intervals identically).
	constrained []bool
	// domain caches the schema's total entry count so Coverage needs no
	// schema reference.
	domain float64
}

// Lo returns the inclusive lower bounds per attribute.
func (q Query) Lo() []int { return append([]int(nil), q.lo...) }

// Hi returns the inclusive upper bounds per attribute.
func (q Query) Hi() []int { return append([]int(nil), q.hi...) }

// NumPredicates returns how many attributes carry an explicit predicate.
func (q Query) NumPredicates() int {
	n := 0
	for _, c := range q.constrained {
		if c {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of frequency-matrix entries the query
// covers (§VII-A's query coverage).
func (q Query) Coverage() float64 {
	covered := 1.0
	for i := range q.lo {
		covered *= float64(q.hi[i] - q.lo[i] + 1)
	}
	return covered / q.domain
}

// Spec renders the query in the textual wire format Parse reads (see
// Parse for the grammar): comma-separated predicates for the constrained
// attributes, `Name=lo..hi` for ordinal intervals and `Name=#lo..hi`
// (leaf positions in the hierarchy's imposed order, §V-A) for nominal
// ones; a query with no constrained attribute renders as "*". The round
// trip Parse(schema, q.Spec(schema)) reproduces q's intervals exactly.
// schema must be the schema the query was built against.
//
// Because attributes render in schema order with normalized intervals,
// the rendering is canonical: two queries produce the same Spec exactly
// when they constrain the same intervals. That makes Spec a collision-
// free cache key — see AnswerCache.
func (q Query) Spec(schema *dataset.Schema) string {
	return string(q.appendSpec(nil, schema))
}

// appendSpec appends the Spec rendering to dst and returns it — the
// allocation-free form the answer cache keys with on its hot path
// (strconv.AppendInt instead of fmt, one reusable buffer per batch).
func (q Query) appendSpec(dst []byte, schema *dataset.Schema) []byte {
	start := len(dst)
	for i, c := range q.constrained {
		if !c {
			continue
		}
		if len(dst) > start {
			dst = append(dst, ',')
		}
		a := schema.Attr(i)
		dst = append(dst, a.Name...)
		dst = append(dst, '=')
		if a.Kind == dataset.Nominal {
			dst = append(dst, '#')
		}
		dst = strconv.AppendInt(dst, int64(q.lo[i]), 10)
		dst = append(dst, '.', '.')
		dst = strconv.AppendInt(dst, int64(q.hi[i]), 10)
	}
	if len(dst) == start {
		dst = append(dst, '*')
	}
	return dst
}

// Builder assembles a Query against a schema.
type Builder struct {
	schema *dataset.Schema
	q      Query
	err    error
}

// NewBuilder starts a query against schema; unconstrained attributes
// default to their full domain.
func NewBuilder(schema *dataset.Schema) *Builder {
	d := schema.NumAttrs()
	b := &Builder{
		schema: schema,
		q: Query{
			lo:          make([]int, d),
			hi:          make([]int, d),
			constrained: make([]bool, d),
		},
	}
	for i := 0; i < d; i++ {
		b.q.hi[i] = schema.Attr(i).Size - 1
	}
	b.q.domain = float64(schema.DomainSize())
	return b
}

// Range constrains an ordinal attribute to the inclusive interval
// [lo, hi]. Errors are deferred to Build.
func (b *Builder) Range(attr string, lo, hi int) *Builder {
	if b.err != nil {
		return b
	}
	i, err := b.schema.Index(attr)
	if err != nil {
		b.err = invalidf("query: %v", err)
		return b
	}
	a := b.schema.Attr(i)
	if a.Kind != dataset.Ordinal {
		b.err = invalidf("query: Range on non-ordinal attribute %q (use Node or Leaf)", attr)
		return b
	}
	if lo < 0 || hi >= a.Size || lo > hi {
		b.err = invalidf("query: Range [%d,%d] invalid for attribute %q of size %d", lo, hi, attr, a.Size)
		return b
	}
	b.q.lo[i], b.q.hi[i] = lo, hi
	b.q.constrained[i] = true
	return b
}

// Node constrains a nominal attribute to all leaves under the hierarchy
// node with the given label (OLAP roll-up; §II-A).
func (b *Builder) Node(attr, label string) *Builder {
	if b.err != nil {
		return b
	}
	i, err := b.schema.Index(attr)
	if err != nil {
		b.err = invalidf("query: %v", err)
		return b
	}
	a := b.schema.Attr(i)
	if a.Kind != dataset.Nominal {
		b.err = invalidf("query: Node on non-nominal attribute %q (use Range)", attr)
		return b
	}
	n := a.Hier.Find(label)
	if n == nil {
		b.err = invalidf("query: attribute %q has no hierarchy node %q", attr, label)
		return b
	}
	b.q.lo[i], b.q.hi[i] = a.Hier.LeafInterval(n)
	b.q.constrained[i] = true
	return b
}

// Leaf constrains a nominal attribute to the single leaf at the given
// position in the imposed order.
func (b *Builder) Leaf(attr string, leaf int) *Builder {
	if b.err != nil {
		return b
	}
	i, err := b.schema.Index(attr)
	if err != nil {
		b.err = invalidf("query: %v", err)
		return b
	}
	a := b.schema.Attr(i)
	if a.Kind != dataset.Nominal {
		b.err = invalidf("query: Leaf on non-nominal attribute %q (use Range)", attr)
		return b
	}
	if leaf < 0 || leaf >= a.Size {
		b.err = invalidf("query: leaf %d out of [0,%d) for attribute %q", leaf, a.Size, attr)
		return b
	}
	b.q.lo[i], b.q.hi[i] = leaf, leaf
	b.q.constrained[i] = true
	return b
}

// Interval constrains attribute i directly to [lo, hi] in domain
// coordinates, regardless of kind. It is the low-level hook the workload
// generator uses after it has already chosen hierarchy-consistent ranges.
func (b *Builder) Interval(i, lo, hi int) *Builder {
	if b.err != nil {
		return b
	}
	if i < 0 || i >= b.schema.NumAttrs() {
		b.err = invalidf("query: attribute index %d out of range", i)
		return b
	}
	a := b.schema.Attr(i)
	if lo < 0 || hi >= a.Size || lo > hi {
		b.err = invalidf("query: interval [%d,%d] invalid for attribute %q of size %d", lo, hi, a.Name, a.Size)
		return b
	}
	b.q.lo[i], b.q.hi[i] = lo, hi
	b.q.constrained[i] = true
	return b
}

// Build finalizes the query.
func (b *Builder) Build() (Query, error) {
	if b.err != nil {
		return Query{}, b.err
	}
	return b.q, nil
}

// Eval answers the query by scanning the covered entries of m (the
// reference evaluation; O(covered entries)).
func (q Query) Eval(m *matrix.Matrix) (float64, error) {
	return m.NaiveRangeSum(q.lo, q.hi)
}

// Evaluator answers queries in O(2^d) from a summed-area table built once
// over a frequency matrix. It is immutable after New and safe for
// concurrent use.
type Evaluator struct {
	prefix *matrix.Matrix
	total  float64
}

// NewEvaluator builds the summed-area table (one O(m) pass) serially;
// NewEvaluatorWorkers is the pooled variant the publish and store-reload
// hot paths use.
func NewEvaluator(m *matrix.Matrix) *Evaluator { return NewEvaluatorWorkers(m, 1) }

// NewEvaluatorWorkers builds the summed-area table with the prefix-sum
// pass fanned across `workers` goroutines (matrix.PrefixSumExec). It
// takes the caller-facing parallelism knob directly: ≤ 0 means all
// cores (the shared matrix.ResolveWorkers default), 1 runs serially.
// The table — and hence every Count — is bit-identical at any worker
// count, so callers may pick workers purely by how much hardware the
// build should use: the evaluator build is the dominant cost of
// reloading a spilled release.
func NewEvaluatorWorkers(m *matrix.Matrix, workers int) *Evaluator {
	p := m.Clone()
	total := m.Total()
	p.PrefixSumExec(matrix.ResolveWorkers(workers))
	return &Evaluator{prefix: p, total: total}
}

// NewEvaluatorFromTable builds an evaluator directly over an already
// computed summed-area table — zero prefix-sum work. prefix is adopted,
// not copied, and must be the exact table NewEvaluator would have built
// (Prefix exports it; the durable format v2 persists it with a
// checksum), and total the matching Total. This is the O(1)-reload hook:
// a spilled release whose table survived on disk reconstructs its
// evaluator without touching the raw matrix, so the table may be backed
// by a read-only memory mapping (matrix.Wrap) — the evaluator never
// mutates it.
func NewEvaluatorFromTable(prefix *matrix.Matrix, total float64) *Evaluator {
	return &Evaluator{prefix: prefix, total: total}
}

// Prefix exports the evaluator's summed-area table — the table-
// persistence hook the durable format v2 encodes. The returned matrix
// is the evaluator's own backing and MUST NOT be mutated.
func (e *Evaluator) Prefix() *matrix.Matrix { return e.prefix }

// Count answers the range-count query.
func (e *Evaluator) Count(q Query) (float64, error) {
	return e.prefix.RangeSum(q.lo, q.hi)
}

// Total returns the sum of all matrix entries (n for an exact frequency
// matrix).
func (e *Evaluator) Total() float64 { return e.total }

// Selectivity returns the query's selectivity against this evaluator's
// matrix: answer / total (§VII-A). A zero-total matrix yields 0.
func (e *Evaluator) Selectivity(q Query) (float64, error) {
	if e.total == 0 {
		return 0, nil
	}
	a, err := e.Count(q)
	if err != nil {
		return 0, err
	}
	return a / e.total, nil
}
