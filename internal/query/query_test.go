package query

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/rng"
)

func censusMini(t testing.TB) (*dataset.Schema, *dataset.Table) {
	t.Helper()
	tbl, err := dataset.MedicalExample()
	if err != nil {
		t.Fatal(err)
	}
	return tbl.Schema(), tbl
}

func TestBuilderDefaultsToFullDomain(t *testing.T) {
	s, _ := censusMini(t)
	q, err := NewBuilder(s).Build()
	if err != nil {
		t.Fatal(err)
	}
	if q.NumPredicates() != 0 {
		t.Errorf("NumPredicates = %d, want 0", q.NumPredicates())
	}
	if q.Coverage() != 1 {
		t.Errorf("Coverage = %v, want 1", q.Coverage())
	}
	lo, hi := q.Lo(), q.Hi()
	if lo[0] != 0 || hi[0] != 4 || lo[1] != 0 || hi[1] != 1 {
		t.Errorf("bounds = %v..%v", lo, hi)
	}
}

func TestBuilderRange(t *testing.T) {
	s, tbl := censusMini(t)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's intro query: diabetes patients with age under 50 —
	// age groups 0..2, diabetes leaf 0 (Yes).
	q, err := NewBuilder(s).Range("Age", 0, 2).Leaf("HasDiabetes", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.Eval(m)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("diabetes under 50 = %v, want 1", got)
	}
	if q.NumPredicates() != 2 {
		t.Errorf("NumPredicates = %d, want 2", q.NumPredicates())
	}
}

func TestBuilderNode(t *testing.T) {
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(
		dataset.OrdinalAttr("Age", 4),
		dataset.NominalAttr("Occ", h),
	)
	q, err := NewBuilder(s).Node("Occ", "g1").Build()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := q.Lo(), q.Hi()
	if lo[1] != 3 || hi[1] != 5 {
		t.Errorf("g1 interval = [%d,%d], want [3,5]", lo[1], hi[1])
	}
	// Coverage: full age (4/4) × half occupation (3/6) = 1/2.
	if math.Abs(q.Coverage()-0.5) > 1e-12 {
		t.Errorf("Coverage = %v, want 0.5", q.Coverage())
	}
}

func TestBuilderErrors(t *testing.T) {
	s, _ := censusMini(t)
	cases := []*Builder{
		NewBuilder(s).Range("Nope", 0, 1),
		NewBuilder(s).Range("HasDiabetes", 0, 1), // nominal via Range
		NewBuilder(s).Range("Age", 2, 1),
		NewBuilder(s).Range("Age", -1, 1),
		NewBuilder(s).Range("Age", 0, 5),
		NewBuilder(s).Node("Age", "Any"), // ordinal via Node
		NewBuilder(s).Node("HasDiabetes", "ghost"),
		NewBuilder(s).Node("Nope", "x"),
		NewBuilder(s).Leaf("Age", 0), // ordinal via Leaf
		NewBuilder(s).Leaf("HasDiabetes", 7),
		NewBuilder(s).Leaf("Nope", 0),
		NewBuilder(s).Interval(5, 0, 0),
		NewBuilder(s).Interval(0, 3, 9),
	}
	for i, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Error sticks across later valid calls.
	if _, err := NewBuilder(s).Range("Nope", 0, 1).Range("Age", 0, 1).Build(); err == nil {
		t.Error("builder error should be sticky")
	}
}

func TestIntervalLowLevel(t *testing.T) {
	s, _ := censusMini(t)
	q, err := NewBuilder(s).Interval(0, 1, 3).Interval(1, 1, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := q.Lo(), q.Hi()
	if lo[0] != 1 || hi[0] != 3 || lo[1] != 1 || hi[1] != 1 {
		t.Errorf("bounds = %v..%v", lo, hi)
	}
}

func TestEvaluatorMatchesEval(t *testing.T) {
	s, tbl := censusMini(t)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(m)
	if ev.Total() != 8 {
		t.Fatalf("Total = %v, want 8", ev.Total())
	}
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		b := NewBuilder(s)
		for i := 0; i < s.NumAttrs(); i++ {
			if r.Float64() < 0.7 {
				size := s.Attr(i).Size
				lo := r.Intn(size)
				hi := lo + r.Intn(size-lo)
				b.Interval(i, lo, hi)
			}
		}
		q, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Eval(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Count = %v, want %v", got, want)
		}
	}
}

func TestSelectivity(t *testing.T) {
	s, tbl := censusMini(t)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(m)
	q, err := NewBuilder(s).Leaf("HasDiabetes", 0).Build()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ev.Selectivity(q)
	if err != nil {
		t.Fatal(err)
	}
	// 2 of 8 tuples have diabetes.
	if math.Abs(sel-0.25) > 1e-12 {
		t.Errorf("Selectivity = %v, want 0.25", sel)
	}
}

func TestSelectivityZeroTotal(t *testing.T) {
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 4))
	tbl := dataset.NewTable(s)
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(m)
	q, err := NewBuilder(s).Range("A", 0, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := ev.Selectivity(q)
	if err != nil || sel != 0 {
		t.Errorf("Selectivity on empty table = %v, %v; want 0, nil", sel, err)
	}
}

func TestCoverageFormula(t *testing.T) {
	s, _ := censusMini(t) // dims 5 × 2, m = 10
	q, err := NewBuilder(s).Range("Age", 1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	// 2 age buckets × 2 diabetes values = 4 of 10 entries.
	if math.Abs(q.Coverage()-0.4) > 1e-12 {
		t.Errorf("Coverage = %v, want 0.4", q.Coverage())
	}
}

// Property: evaluator answers match naive evaluation over random small
// schemas, matrices, and queries.
func TestEvaluatorQuick(t *testing.T) {
	f := func(seed uint64, d1Raw, d2Raw uint8) bool {
		r := rng.New(seed)
		d1 := int(d1Raw%7) + 1
		d2 := int(d2Raw%7) + 1
		s := dataset.MustSchema(
			dataset.OrdinalAttr("A", d1),
			dataset.OrdinalAttr("B", d2),
		)
		tbl := dataset.NewTable(s)
		n := r.Intn(50)
		for i := 0; i < n; i++ {
			if err := tbl.Append(r.Intn(d1), r.Intn(d2)); err != nil {
				return false
			}
		}
		m, err := tbl.FrequencyMatrix()
		if err != nil {
			return false
		}
		ev := NewEvaluator(m)
		lo1 := r.Intn(d1)
		hi1 := lo1 + r.Intn(d1-lo1)
		lo2 := r.Intn(d2)
		hi2 := lo2 + r.Intn(d2-lo2)
		q, err := NewBuilder(s).Interval(0, lo1, hi1).Interval(1, lo2, hi2).Build()
		if err != nil {
			return false
		}
		want, err1 := q.Eval(m)
		got, err2 := ev.Count(q)
		return err1 == nil && err2 == nil && math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
