//go:build race

package query_test

// raceEnabled reports whether the race detector instruments this build;
// allocation-bound tests skip under it (shadow-memory bookkeeping
// inflates runtime.MemStats far past the real footprint).
const raceEnabled = true
