package query_test

// Native fuzz targets for the shared query grammar. The parser sits on
// every untrusted boundary at once — the server's q= parameter, the
// batch wire format, and cmd/privelet workload files — so it must never
// panic on hostile text, and every spec it accepts must canonicalize:
// Spec() is the AnswerCache key, so Parse(Spec(q)) has to reproduce the
// identical rendering no matter how the client spelled the query. Seed
// corpus under testdata/fuzz/FuzzQueryParse; CI runs a short -fuzz
// smoke on top of the checked-in seeds.

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/query"
)

// fuzzSchema is planSchema for testing.F callers: one ordinal and one
// nominal attribute, so every predicate form in the grammar is
// reachable.
func fuzzSchema(tb testing.TB) *dataset.Schema {
	tb.Helper()
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		tb.Fatal(err)
	}
	return dataset.MustSchema(
		dataset.OrdinalAttr("Age", 10),
		dataset.NominalAttr("Occ", h),
	)
}

func FuzzQueryParse(f *testing.F) {
	for _, seed := range []string{
		// Every valid predicate form.
		"", "*", "Age=0..9", "Age=3..3", " Age = 0..4 , Occ=@g1 ",
		"Occ=@Any", "Occ=#1", "Occ=#0..5", "Occ=#3..5,Age=1..2",
		// Every documented rejection: inverted and out-of-domain
		// intervals, wrong-kind predicates, unknown names, bad shapes.
		"Age=9..0", "Age=0..100", "Occ=0..5", "Age=#1", "Occ=@nope",
		"Zip=1..2", "Age", "Age=", "=0..3", "Age=a..b", ",,,",
		"Age=0..3,Age=4..5", "Age=-1..2", "Occ=#-2..-1",
	} {
		f.Add(seed)
	}
	schema := fuzzSchema(f)
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := query.Parse(schema, raw)
		if err != nil {
			// The grammar's error contract: every parse failure is a
			// client error, mappable to 400 with errors.Is.
			if !errors.Is(err, query.ErrInvalid) {
				t.Fatalf("Parse(%q) error does not wrap ErrInvalid: %v", raw, err)
			}
			return
		}
		spec := q.Spec(schema)
		q2, err := query.Parse(schema, spec)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", spec, raw, err)
		}
		if got := q2.Spec(schema); got != spec {
			t.Fatalf("Spec is not a fixed point: %q → %q → %q", raw, spec, got)
		}
	})
}
