package query_test

// ExecuteStream's contract: streamed answers are float64 == to the
// buffered path at any (worker count × chunk size × caching mode),
// delivered-before-failure chunks stay delivered, and peak memory is
// O(chunk) however long the workload — the property that makes
// million-query serving possible at all.

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/query"
)

// streamFixture wraps batchFixture with the schema the queries were
// generated against (the cache needs it for key rendering).
func streamFixture(t *testing.T, n int) (query.Batch, []query.Query) {
	t.Helper()
	ev, queries := batchFixture(t, n)
	return query.Batch{Eval: ev, Schema: planSchema(t)}, queries
}

// TestExecuteStreamMatchesExecute is the streaming determinism
// property: at every chunk size × worker count × caching mode, the
// streamed answers are float64 == to the buffered Execute, in order,
// and the delivered count is exact.
func TestExecuteStreamMatchesExecute(t *testing.T) {
	base, queries := streamFixture(t, 3000)
	want, err := query.Batch{Eval: base.Eval, Workers: 1}.Execute(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 100, 0 /* = DefaultStreamChunk */} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			for _, cached := range []bool{false, true} {
				b := base
				b.Workers, b.ChunkSize = workers, chunk
				if cached {
					// A warm-ish cache: pre-answer every third query so the
					// run mixes hits and misses within each chunk.
					b.Cache = query.NewAnswerCache(1<<16, nil)
					for i := 0; i < len(queries); i += 3 {
						b.Cache.Put(queries[i].Spec(b.Schema), want[i])
					}
				}
				var got []float64
				n, err := b.ExecuteStream(context.Background(), query.SliceSource(queries), func(a []float64) error {
					got = append(got, a...) // sink must copy: the slice is reused
					return nil
				})
				if err != nil {
					t.Fatalf("chunk=%d workers=%d cached=%v: %v", chunk, workers, cached, err)
				}
				if n != len(want) || len(got) != len(want) {
					t.Fatalf("chunk=%d workers=%d cached=%v: delivered %d, appended %d, want %d",
						chunk, workers, cached, n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("chunk=%d workers=%d cached=%v: answer %d = %v, buffered %v",
							chunk, workers, cached, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestExecuteStreamEmpty(t *testing.T) {
	b, _ := streamFixture(t, 0)
	n, err := b.ExecuteStream(context.Background(), query.SliceSource(nil), func([]float64) error {
		t.Fatal("sink called for an empty workload")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("empty stream: delivered=%d err=%v", n, err)
	}
}

// TestExecuteStreamSourceError pins the partial-delivery contract: a
// source failure keeps every complete chunk already answered on the
// wire and discards only the chunk the failure interrupted.
func TestExecuteStreamSourceError(t *testing.T) {
	b, queries := streamFixture(t, 25)
	b.ChunkSize = 10
	boom := errors.New("boom")
	i := 0
	src := func() (query.Query, bool, error) {
		if i == len(queries) {
			return query.Query{}, false, boom
		}
		q := queries[i]
		i++
		return q, true, nil
	}
	var got int
	n, err := b.ExecuteStream(context.Background(), src, func(a []float64) error {
		got += len(a)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Chunks 1 and 2 (10 queries each) complete before the fill of chunk
	// 3 fails at query 26; the 5 queries of the partial chunk 3 are
	// discarded.
	if n != 20 || got != 20 {
		t.Fatalf("delivered=%d sank=%d, want 20 (two complete chunks)", n, got)
	}

	// A failure during the very first fill delivers nothing — the HTTP
	// layer depends on this to keep first-chunk errors as plain statuses.
	i = len(queries)
	n, err = b.ExecuteStream(context.Background(), src, func([]float64) error {
		t.Fatal("sink called after first-fill failure")
		return nil
	})
	if !errors.Is(err, boom) || n != 0 {
		t.Fatalf("first-fill failure: delivered=%d err=%v, want 0, boom", n, err)
	}
}

func TestExecuteStreamSinkError(t *testing.T) {
	b, queries := streamFixture(t, 35)
	b.ChunkSize = 10
	boom := errors.New("sink full")
	calls := 0
	n, err := b.ExecuteStream(context.Background(), query.SliceSource(queries), func(a []float64) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if n != 10 || calls != 2 {
		t.Fatalf("delivered=%d calls=%d, want 10 delivered over 2 calls", n, calls)
	}
}

func TestExecuteStreamPreCancelled(t *testing.T) {
	b, queries := streamFixture(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := b.ExecuteStream(ctx, query.SliceSource(queries), func([]float64) error { return nil })
	if !errors.Is(err, context.Canceled) || n != 0 {
		t.Fatalf("pre-cancelled: delivered=%d err=%v, want 0, context.Canceled", n, err)
	}
}

func TestExecuteStreamNoEvaluator(t *testing.T) {
	if _, err := (query.Batch{}).ExecuteStream(context.Background(), query.SliceSource(nil), nil); err == nil {
		t.Fatal("nil evaluator: expected error")
	}
}

// TestStreamMemoryOChunk is the tentpole's memory claim, asserted: a
// million-query workload streamed at the default chunk size allocates
// O(chunk), not O(workload). The buffered path would need ≥ 56 MB just
// for the query and answer slices (1M × (48 B query + 8 B answer));
// the stream's two in-flight chunks plus per-chunk goroutine/channel
// bookkeeping stay under 4 MB.
func TestStreamMemoryOChunk(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation accounting")
	}
	b, queries := streamFixture(t, 64)
	b.Workers = 1
	const total = 1_000_000
	i := 0
	// Cycle a fixed query set: the source itself allocates nothing, so
	// the measured delta is the pipeline's own footprint.
	src := func() (query.Query, bool, error) {
		if i == total {
			return query.Query{}, false, nil
		}
		q := queries[i%len(queries)]
		i++
		return q, true, nil
	}
	var sum float64
	sink := func(a []float64) error {
		for _, v := range a {
			sum += v
		}
		return nil
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	n, err := b.ExecuteStream(context.Background(), src, sink)
	runtime.ReadMemStats(&after)
	if err != nil || n != total {
		t.Fatalf("stream: delivered=%d err=%v", n, err)
	}
	if sum == 0 {
		t.Fatal("answers summed to 0; fixture broken")
	}
	delta := after.TotalAlloc - before.TotalAlloc
	if max := uint64(4 << 20); delta > max {
		t.Fatalf("1M-query stream allocated %d bytes, want O(chunk) ≤ %d", delta, max)
	}
}

// TestAnswerCacheLRU pins the eviction policy: least-recently-used
// entries go first, Get refreshes recency, and the counters account
// every hit, miss, and eviction.
func TestAnswerCacheLRU(t *testing.T) {
	var ctr query.CacheCounters
	c := query.NewAnswerCache(2, &ctr)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 { // refreshes a
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	c.Put("c", 3) // evicts b, the LRU
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction past max=2")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a evicted instead of LRU b: %v, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("Get(c) = %v, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if h, m, e := ctr.Hits.Load(), ctr.Misses.Load(), ctr.Evictions.Load(); h != 3 || m != 1 || e != 1 {
		t.Fatalf("counters hits=%d misses=%d evictions=%d, want 3/1/1", h, m, e)
	}
	// Put on an existing key updates in place, no eviction.
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 || c.Len() != 2 {
		t.Fatalf("refresh Put: a=%v len=%d", v, c.Len())
	}
}

func TestAnswerCacheDisabled(t *testing.T) {
	for _, max := range []int{0, -1} {
		if c := query.NewAnswerCache(max, nil); c != nil {
			t.Fatalf("NewAnswerCache(%d) = %v, want nil (disabled)", max, c)
		}
	}
	// The nil cache is a safe always-miss: every method is a no-op.
	var c *query.AnswerCache
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

// TestBatchCacheDeterminism: a cached batch answers float64 == to the
// uncached one, the second pass over the same workload is all hits, and
// hits actually skip the evaluator (asserted via the counters).
func TestBatchCacheDeterminism(t *testing.T) {
	b, queries := streamFixture(t, 2000)
	want, err := query.Batch{Eval: b.Eval, Workers: 1}.Execute(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	var ctr query.CacheCounters
	b.Cache = query.NewAnswerCache(1<<16, &ctr)
	for _, workers := range []int{1, 4} {
		b.Workers = workers
		for pass := 0; pass < 2; pass++ {
			got, err := b.Execute(context.Background(), queries)
			if err != nil {
				t.Fatalf("workers=%d pass=%d: %v", workers, pass, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d pass=%d: answer %d = %v, uncached %v", workers, pass, i, got[i], want[i])
				}
			}
		}
	}
	// First pass misses at most once per distinct spec; the three later
	// passes are pure hits — 3 × len(queries) at minimum.
	if h := ctr.Hits.Load(); h < int64(3*len(queries)) {
		t.Fatalf("hits = %d, want ≥ %d (cache not consulted?)", h, 3*len(queries))
	}
	if m := ctr.Misses.Load(); m > int64(len(queries)) {
		t.Fatalf("misses = %d beyond one per query", m)
	}
}

// TestBatchCacheNeedsSchema: configuring a cache without the schema
// that renders its keys is a programming error, reported loudly.
func TestBatchCacheNeedsSchema(t *testing.T) {
	b, queries := streamFixture(t, 10)
	b.Schema = nil
	b.Cache = query.NewAnswerCache(16, nil)
	if _, err := b.Execute(context.Background(), queries); err == nil {
		t.Fatal("Cache without Schema: expected error")
	}
}

// TestCacheKeyCollisionFree: distinct normalized queries must render
// distinct cache keys — a collision would silently serve one query's
// answer for another. Specs are canonical by the round-trip property
// (TestSpecParseRoundTrip); here we pin distinctness across a query
// set dense enough to catch formatting ambiguities.
func TestCacheKeyCollisionFree(t *testing.T) {
	s := planSchema(t)
	_, queries := batchFixture(t, 500)
	seen := make(map[string][2][]int)
	for _, q := range queries {
		key := q.Spec(s)
		if prev, ok := seen[key]; ok {
			if !equalInts(prev[0], q.Lo()) || !equalInts(prev[1], q.Hi()) {
				t.Fatalf("key %q collides across distinct queries", key)
			}
			continue
		}
		seen[key] = [2][]int{append([]int(nil), q.Lo()...), append([]int(nil), q.Hi()...)}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
