// Package matrix implements the dense d-dimensional frequency matrix that
// underlies every mechanism in this repository (paper §II-B: the lowest
// level of the data cube of T).
//
// The layout is row-major over the dimension list: the last dimension is
// contiguous in memory. Three capabilities matter to Privelet:
//
//   - ApplyAlong runs a one-dimensional function over every vector along a
//     chosen dimension, optionally resizing that dimension — this is the
//     "standard decomposition" step of the HN wavelet transform (§VI-A);
//   - Sub/SetSub extract and re-insert the sub-matrices Privelet+ forms by
//     fixing coordinates on the SA dimensions (Figure 5, steps 2 and 7);
//   - PrefixSum/RangeSum turn the matrix into a summed-area table so a
//     range-count query is answered with 2^d lookups instead of a scan.
package matrix

import (
	"fmt"
	"math"
)

// Matrix is a dense d-dimensional array of float64. The zero value is not
// usable; construct with New.
type Matrix struct {
	dims    []int
	strides []int
	data    []float64
	// pin keeps an external owner of the data slice reachable for as long
	// as the matrix is: a matrix built by Wrap over a memory-mapped file
	// must keep the mapping object alive, or its finalizer could unmap
	// the pages out from under data. nil for heap-backed matrices.
	pin any
}

// MaxEntries bounds the total size New will allocate (2^31 entries, 16 GiB
// of float64), protecting experiments from typo-sized domains.
const MaxEntries = 1 << 31

// New allocates a zero matrix with the given dimension sizes.
func New(dims ...int) (*Matrix, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("matrix: need at least one dimension")
	}
	total := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: dimension %d has non-positive size %d", i, d)
		}
		if total > MaxEntries/d {
			return nil, fmt.Errorf("matrix: %v exceeds MaxEntries", dims)
		}
		total *= d
	}
	m := &Matrix{
		dims:    append([]int(nil), dims...),
		strides: Strides(dims),
		data:    make([]float64, total),
	}
	return m, nil
}

// MustNew is New for dimensions known to be valid; it panics on error.
// Intended for tests and examples.
func MustNew(dims ...int) *Matrix {
	m, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return m
}

// Wrap builds a matrix over data without copying it: len(data) must
// equal the product of dims. It is the zero-copy constructor behind
// mmap-backed release reloads — the caller keeps ownership of the
// backing memory, and pin (which may be nil) is retained for the life
// of the matrix so a finalizer-managed owner (a memory mapping) cannot
// be reclaimed while the matrix can still read it. Mutating a wrapped
// matrix writes through to data; callers wrapping read-only mappings
// must treat the matrix as immutable (Clone before any in-place
// operation — the clone is heap-backed and drops the pin).
func Wrap(data []float64, pin any, dims ...int) (*Matrix, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("matrix: need at least one dimension")
	}
	total := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: dimension %d has non-positive size %d", i, d)
		}
		if total > MaxEntries/d {
			return nil, fmt.Errorf("matrix: %v exceeds MaxEntries", dims)
		}
		total *= d
	}
	if total != len(data) {
		return nil, fmt.Errorf("matrix: Wrap of %d entries over dims %v (want %d)", len(data), dims, total)
	}
	return &Matrix{
		dims:    append([]int(nil), dims...),
		strides: Strides(dims),
		data:    data,
		pin:     pin,
	}, nil
}

// FromSlice builds a 1-dimensional matrix that copies v.
func FromSlice(v []float64) (*Matrix, error) {
	m, err := New(len(v))
	if err != nil {
		return nil, err
	}
	copy(m.data, v)
	return m, nil
}

// Dims returns a copy of the dimension sizes.
func (m *Matrix) Dims() []int { return append([]int(nil), m.dims...) }

// NumDims returns the dimensionality d.
func (m *Matrix) NumDims() int { return len(m.dims) }

// Dim returns the size of dimension i.
func (m *Matrix) Dim(i int) int { return m.dims[i] }

// Len returns the total number of entries, the paper's m.
func (m *Matrix) Len() int { return len(m.data) }

// Data exposes the backing slice in row-major order. Mutations are
// visible to the matrix; this is deliberate — noise injection iterates the
// flat coefficient array directly.
func (m *Matrix) Data() []float64 { return m.data }

// Offset converts coordinates to the flat index. It panics on coordinate
// count or range errors, which are programming errors in this codebase.
func (m *Matrix) Offset(coords ...int) int {
	if len(coords) != len(m.dims) {
		panic(fmt.Sprintf("matrix: got %d coordinates for %d dimensions", len(coords), len(m.dims)))
	}
	off := 0
	for i, c := range coords {
		if c < 0 || c >= m.dims[i] {
			panic(fmt.Sprintf("matrix: coordinate %d = %d out of [0,%d)", i, c, m.dims[i]))
		}
		off += c * m.strides[i]
	}
	return off
}

// Coords converts a flat index back to coordinates, filling dst (which
// must have length d) and returning it.
func (m *Matrix) Coords(offset int, dst []int) []int {
	for i := range m.dims {
		dst[i] = offset / m.strides[i]
		offset %= m.strides[i]
	}
	return dst
}

// At returns the entry at the given coordinates.
func (m *Matrix) At(coords ...int) float64 { return m.data[m.Offset(coords...)] }

// Set stores v at the given coordinates.
func (m *Matrix) Set(v float64, coords ...int) { m.data[m.Offset(coords...)] = v }

// Add adds v to the entry at the given coordinates.
func (m *Matrix) Add(v float64, coords ...int) { m.data[m.Offset(coords...)] += v }

// Fill sets every entry to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{
		dims:    append([]int(nil), m.dims...),
		strides: append([]int(nil), m.strides...),
		data:    append([]float64(nil), m.data...),
	}
	return out
}

// Total returns the sum of all entries (the number of tuples n when the
// matrix is an exact frequency matrix).
func (m *Matrix) Total() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v
	}
	return s
}

// L1Distance returns ‖m − o‖₁, the distance used by the generalized
// sensitivity definition (Definition 3). Shapes must match.
func (m *Matrix) L1Distance(o *Matrix) (float64, error) {
	if !sameDims(m.dims, o.dims) {
		return 0, fmt.Errorf("matrix: L1Distance shape mismatch %v vs %v", m.dims, o.dims)
	}
	s := 0.0
	for i, v := range m.data {
		s += math.Abs(v - o.data[i])
	}
	return s, nil
}

// MaxAbsDiff returns max|m−o| entry-wise; shapes must match.
func (m *Matrix) MaxAbsDiff(o *Matrix) (float64, error) {
	if !sameDims(m.dims, o.dims) {
		return 0, fmt.Errorf("matrix: MaxAbsDiff shape mismatch %v vs %v", m.dims, o.dims)
	}
	d := 0.0
	for i, v := range m.data {
		if a := math.Abs(v - o.data[i]); a > d {
			d = a
		}
	}
	return d, nil
}

// AlmostEqual reports whether every entry differs by at most tol.
func (m *Matrix) AlmostEqual(o *Matrix, tol float64) bool {
	d, err := m.MaxAbsDiff(o)
	return err == nil && d <= tol
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// VectorsAlong returns the number of one-dimensional vectors along dim:
// Len()/Dim(dim).
func (m *Matrix) VectorsAlong(dim int) int { return len(m.data) / m.dims[dim] }

// ApplyAlong applies f to every vector along dimension dim and returns a
// new matrix in which that dimension has size newSize. f receives the
// source vector (length Dim(dim)) and the destination (length newSize);
// it must fill dst completely and must not modify src. When dim is the
// innermost dimension f sees direct slices of the backing arrays
// (zero-copy); other strides gather/scatter through scratch buffers.
//
// This is the engine of the standard decomposition (§VI-A): a forward
// wavelet step grows the dimension from |A| to the coefficient count and
// an inverse step shrinks it back. See ApplyAlongPool for the worker-pool
// variant and Pipeline for chained steps without per-step allocation.
func (m *Matrix) ApplyAlong(dim int, newSize int, f func(src, dst []float64)) (*Matrix, error) {
	return m.ApplyAlongPool(dim, newSize, 1, SharedKernel(f))
}

// Sub extracts the sub-matrix obtained by fixing the listed dimensions at
// the given coordinates; the result keeps the remaining dimensions in
// order. fixedDims must be strictly increasing; at least one dimension
// must remain free.
func (m *Matrix) Sub(fixedDims, fixedCoords []int) (*Matrix, error) {
	freeDims, baseOff, err := m.subLayout(fixedDims, fixedCoords)
	if err != nil {
		return nil, err
	}
	shape := make([]int, len(freeDims))
	for i, d := range freeDims {
		shape[i] = m.dims[d]
	}
	out, err := New(shape...)
	if err != nil {
		return nil, err
	}
	m.walkSub(freeDims, baseOff, func(srcOff, dstOff int) {
		out.data[dstOff] = m.data[srcOff]
	})
	return out, nil
}

// SetSub writes sub back into the region addressed by the fixed
// dimensions; the inverse of Sub.
func (m *Matrix) SetSub(fixedDims, fixedCoords []int, sub *Matrix) error {
	freeDims, baseOff, err := m.subLayout(fixedDims, fixedCoords)
	if err != nil {
		return err
	}
	if len(sub.dims) != len(freeDims) {
		return fmt.Errorf("matrix: SetSub dimensionality %d, want %d", len(sub.dims), len(freeDims))
	}
	for i, d := range freeDims {
		if sub.dims[i] != m.dims[d] {
			return fmt.Errorf("matrix: SetSub dim %d size %d, want %d", i, sub.dims[i], m.dims[d])
		}
	}
	m.walkSub(freeDims, baseOff, func(srcOff, dstOff int) {
		m.data[srcOff] = sub.data[dstOff]
	})
	return nil
}

// subLayout validates the fixed-dimension spec and returns the free
// dimensions plus the base offset contributed by the fixed coordinates.
func (m *Matrix) subLayout(fixedDims, fixedCoords []int) (freeDims []int, baseOff int, err error) {
	if len(fixedDims) != len(fixedCoords) {
		return nil, 0, fmt.Errorf("matrix: %d fixed dims but %d coords", len(fixedDims), len(fixedCoords))
	}
	if len(fixedDims) >= len(m.dims) {
		return nil, 0, fmt.Errorf("matrix: fixing %d of %d dimensions leaves nothing free", len(fixedDims), len(m.dims))
	}
	fixed := make(map[int]bool, len(fixedDims))
	prev := -1
	for i, d := range fixedDims {
		if d < 0 || d >= len(m.dims) {
			return nil, 0, fmt.Errorf("matrix: fixed dimension %d out of range", d)
		}
		if d <= prev {
			return nil, 0, fmt.Errorf("matrix: fixed dimensions must be strictly increasing, got %v", fixedDims)
		}
		prev = d
		c := fixedCoords[i]
		if c < 0 || c >= m.dims[d] {
			return nil, 0, fmt.Errorf("matrix: fixed coordinate %d out of [0,%d) for dimension %d", c, m.dims[d], d)
		}
		fixed[d] = true
		baseOff += c * m.strides[d]
	}
	for d := range m.dims {
		if !fixed[d] {
			freeDims = append(freeDims, d)
		}
	}
	return freeDims, baseOff, nil
}

// walkSub enumerates the cross product of the free dimensions, invoking
// visit with the offset into m and the row-major offset into the compact
// sub-matrix.
func (m *Matrix) walkSub(freeDims []int, baseOff int, visit func(srcOff, dstOff int)) {
	idx := make([]int, len(freeDims))
	srcOff := baseOff
	dstOff := 0
	for {
		visit(srcOff, dstOff)
		dstOff++
		// Odometer increment over free dimensions, last varies fastest.
		k := len(freeDims) - 1
		for ; k >= 0; k-- {
			d := freeDims[k]
			idx[k]++
			srcOff += m.strides[d]
			if idx[k] < m.dims[d] {
				break
			}
			srcOff -= idx[k] * m.strides[d]
			idx[k] = 0
		}
		if k < 0 {
			return
		}
	}
}

// PrefixSum converts the matrix in place into a d-dimensional summed-area
// table: entry x becomes the sum of all entries with coordinates ≤ x
// component-wise. See PrefixSumExec for the worker-pool variant the
// publish and store-reload paths use; PrefixSum is its serial case.
func (m *Matrix) PrefixSum() { m.PrefixSumExec(1) }

// RangeSum evaluates the sum of the original entries inside the
// inclusive hyper-rectangle [lo, hi] of a matrix previously transformed by
// PrefixSum, using inclusion-exclusion over the 2^d corners.
func (m *Matrix) RangeSum(lo, hi []int) (float64, error) {
	d := len(m.dims)
	if len(lo) != d || len(hi) != d {
		return 0, fmt.Errorf("matrix: RangeSum bounds dimensionality mismatch")
	}
	for i := 0; i < d; i++ {
		if lo[i] < 0 || hi[i] >= m.dims[i] || lo[i] > hi[i] {
			return 0, fmt.Errorf("matrix: RangeSum bounds [%d,%d] invalid for dimension %d of size %d",
				lo[i], hi[i], i, m.dims[i])
		}
	}
	total := 0.0
	for mask := 0; mask < 1<<d; mask++ {
		off := 0
		sign := 1.0
		skip := false
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				if lo[i] == 0 {
					skip = true // the lo-1 face is outside the table: term is 0
					break
				}
				off += (lo[i] - 1) * m.strides[i]
				sign = -sign
			} else {
				off += hi[i] * m.strides[i]
			}
		}
		if skip {
			continue
		}
		total += sign * m.data[off]
	}
	return total, nil
}

// NaiveRangeSum sums the entries inside [lo, hi] by direct enumeration.
// It is the reference implementation RangeSum is tested against and the
// fallback when no prefix table has been built.
func (m *Matrix) NaiveRangeSum(lo, hi []int) (float64, error) {
	d := len(m.dims)
	if len(lo) != d || len(hi) != d {
		return 0, fmt.Errorf("matrix: NaiveRangeSum bounds dimensionality mismatch")
	}
	for i := 0; i < d; i++ {
		if lo[i] < 0 || hi[i] >= m.dims[i] || lo[i] > hi[i] {
			return 0, fmt.Errorf("matrix: NaiveRangeSum bounds [%d,%d] invalid for dimension %d", lo[i], hi[i], i)
		}
	}
	idx := append([]int(nil), lo...)
	total := 0.0
	for {
		off := 0
		for i, c := range idx {
			off += c * m.strides[i]
		}
		total += m.data[off]
		k := d - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] <= hi[k] {
				break
			}
			idx[k] = lo[k]
		}
		if k < 0 {
			return total, nil
		}
	}
}

// Pad returns a copy with dimension dim grown to newSize; new entries are
// zero (the paper's dummy values for power-of-two padding). If newSize
// equals the current size the matrix is cloned.
func (m *Matrix) Pad(dim, newSize int) (*Matrix, error) {
	if dim < 0 || dim >= len(m.dims) {
		return nil, fmt.Errorf("matrix: Pad dimension %d out of range", dim)
	}
	if newSize < m.dims[dim] {
		return nil, fmt.Errorf("matrix: Pad cannot shrink dimension %d from %d to %d", dim, m.dims[dim], newSize)
	}
	old := m.dims[dim]
	return m.ApplyAlong(dim, newSize, func(src, dst []float64) {
		copy(dst, src)
		for j := old; j < newSize; j++ {
			dst[j] = 0
		}
	})
}

// Truncate returns a copy with dimension dim shrunk to newSize, dropping
// the tail entries (the inverse of Pad).
func (m *Matrix) Truncate(dim, newSize int) (*Matrix, error) {
	if dim < 0 || dim >= len(m.dims) {
		return nil, fmt.Errorf("matrix: Truncate dimension %d out of range", dim)
	}
	if newSize > m.dims[dim] {
		return nil, fmt.Errorf("matrix: Truncate cannot grow dimension %d from %d to %d", dim, m.dims[dim], newSize)
	}
	return m.ApplyAlong(dim, newSize, func(src, dst []float64) {
		copy(dst, src[:newSize])
	})
}

// AddMatrix adds o into m entry-wise; shapes must match.
func (m *Matrix) AddMatrix(o *Matrix) error {
	if !sameDims(m.dims, o.dims) {
		return fmt.Errorf("matrix: AddMatrix shape mismatch %v vs %v", m.dims, o.dims)
	}
	for i := range m.data {
		m.data[i] += o.data[i]
	}
	return nil
}

// Scale multiplies every entry by k.
func (m *Matrix) Scale(k float64) {
	for i := range m.data {
		m.data[i] *= k
	}
}
