package matrix

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no dims should fail")
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(3, -1); err == nil {
		t.Error("New(3,-1) should fail")
	}
	if _, err := New(1<<20, 1<<20); err == nil {
		t.Error("oversize New should fail")
	}
	m, err := New(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 60 || m.NumDims() != 3 {
		t.Fatalf("shape wrong: len=%d d=%d", m.Len(), m.NumDims())
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	m := MustNew(3, 4, 5)
	coords := make([]int, 3)
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				off := m.Offset(i, j, k)
				if off < 0 || off >= 60 || seen[off] {
					t.Fatalf("Offset(%d,%d,%d) = %d invalid or duplicate", i, j, k, off)
				}
				seen[off] = true
				m.Coords(off, coords)
				if coords[0] != i || coords[1] != j || coords[2] != k {
					t.Fatalf("Coords(%d) = %v, want [%d %d %d]", off, coords, i, j, k)
				}
			}
		}
	}
}

func TestRowMajorLayout(t *testing.T) {
	m := MustNew(2, 3)
	// Last dimension contiguous: (0,0),(0,1),(0,2),(1,0)...
	if m.Offset(0, 1) != 1 || m.Offset(1, 0) != 3 {
		t.Fatalf("layout not row-major: (0,1)=%d (1,0)=%d", m.Offset(0, 1), m.Offset(1, 0))
	}
}

func TestAtSetAdd(t *testing.T) {
	m := MustNew(2, 2)
	m.Set(3.5, 1, 0)
	if m.At(1, 0) != 3.5 {
		t.Fatal("Set/At round trip failed")
	}
	m.Add(1.5, 1, 0)
	if m.At(1, 0) != 5 {
		t.Fatal("Add failed")
	}
}

func TestOffsetPanics(t *testing.T) {
	m := MustNew(2, 2)
	for _, coords := range [][]int{{0}, {0, 0, 0}, {2, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Offset(%v) did not panic", coords)
				}
			}()
			m.Offset(coords...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	v := []float64{1, 2, 3}
	m, err := FromSlice(v)
	if err != nil {
		t.Fatal(err)
	}
	v[0] = 99 // FromSlice must copy
	if m.At(0) != 1 {
		t.Fatal("FromSlice did not copy input")
	}
	if _, err := FromSlice(nil); err == nil {
		t.Error("FromSlice(nil) should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustNew(2, 2)
	m.Fill(7)
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 7 {
		t.Fatal("Clone shares storage")
	}
}

func TestTotalAndScale(t *testing.T) {
	m := MustNew(2, 3)
	m.Fill(2)
	if m.Total() != 12 {
		t.Fatalf("Total = %v, want 12", m.Total())
	}
	m.Scale(0.5)
	if m.Total() != 6 {
		t.Fatalf("after Scale, Total = %v, want 6", m.Total())
	}
}

func TestL1DistanceAndMaxAbsDiff(t *testing.T) {
	a := MustNew(2, 2)
	b := MustNew(2, 2)
	b.Set(3, 0, 1)
	b.Set(-1, 1, 0)
	d, err := a.L1Distance(b)
	if err != nil || d != 4 {
		t.Fatalf("L1Distance = %v, %v; want 4", d, err)
	}
	mx, err := a.MaxAbsDiff(b)
	if err != nil || mx != 3 {
		t.Fatalf("MaxAbsDiff = %v, %v; want 3", mx, err)
	}
	c := MustNew(4)
	if _, err := a.L1Distance(c); err == nil {
		t.Error("L1Distance shape mismatch should fail")
	}
	if _, err := a.MaxAbsDiff(c); err == nil {
		t.Error("MaxAbsDiff shape mismatch should fail")
	}
}

func TestAlmostEqual(t *testing.T) {
	a := MustNew(3)
	b := MustNew(3)
	b.Set(1e-10, 2)
	if !a.AlmostEqual(b, 1e-9) {
		t.Error("AlmostEqual too strict")
	}
	if a.AlmostEqual(b, 1e-11) {
		t.Error("AlmostEqual too lax")
	}
}

func TestApplyAlongReverse(t *testing.T) {
	m := MustNew(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			m.Set(float64(10*i+j), i, j)
		}
	}
	rev, err := m.ApplyAlong(1, 3, func(src, dst []float64) {
		for k := range src {
			dst[len(src)-1-k] = src[k]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rev.At(0, 0) != 2 || rev.At(1, 2) != 10 {
		t.Fatalf("reverse along dim1 wrong: %v", rev.Data())
	}
}

func TestApplyAlongResize(t *testing.T) {
	m := MustNew(2, 2)
	m.Fill(1)
	grown, err := m.ApplyAlong(0, 4, func(src, dst []float64) {
		copy(dst, src)
		dst[2], dst[3] = -1, -2
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDims := []int{4, 2}
	if !sameDims(grown.Dims(), wantDims) {
		t.Fatalf("dims = %v, want %v", grown.Dims(), wantDims)
	}
	if grown.At(0, 0) != 1 || grown.At(2, 1) != -1 || grown.At(3, 0) != -2 {
		t.Fatalf("resize content wrong: %v", grown.Data())
	}
}

func TestApplyAlongAllDims(t *testing.T) {
	// Doubling along each dimension in turn must double every entry once
	// per application, regardless of which dimension is traversed.
	m := MustNew(2, 3, 4)
	data := m.Data()
	r := rng.New(1)
	for i := range data {
		data[i] = r.Float64()
	}
	want := m.Clone()
	want.Scale(8)
	cur := m
	for dim := 0; dim < 3; dim++ {
		next, err := cur.ApplyAlong(dim, cur.Dim(dim), func(src, dst []float64) {
			for k := range src {
				dst[k] = 2 * src[k]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if !cur.AlmostEqual(want, 1e-12) {
		t.Fatal("ApplyAlong over all dims did not visit each entry exactly once per dim")
	}
}

func TestApplyAlongErrors(t *testing.T) {
	m := MustNew(2, 2)
	if _, err := m.ApplyAlong(2, 2, func(src, dst []float64) {}); err == nil {
		t.Error("out-of-range dim should fail")
	}
	if _, err := m.ApplyAlong(0, 0, func(src, dst []float64) {}); err == nil {
		t.Error("zero newSize should fail")
	}
}

func TestSubAndSetSub(t *testing.T) {
	m := MustNew(2, 3, 2)
	val := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 2; k++ {
				m.Set(val, i, j, k)
				val++
			}
		}
	}
	sub, err := m.Sub([]int{1}, []int{2}) // fix middle dim at 2
	if err != nil {
		t.Fatal(err)
	}
	if !sameDims(sub.Dims(), []int{2, 2}) {
		t.Fatalf("sub dims = %v", sub.Dims())
	}
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			if sub.At(i, k) != m.At(i, 2, k) {
				t.Fatalf("sub(%d,%d) = %v, want %v", i, k, sub.At(i, k), m.At(i, 2, k))
			}
		}
	}
	// Round trip through SetSub.
	sub.Scale(10)
	if err := m.SetSub([]int{1}, []int{2}, sub); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2, 1) != sub.At(1, 1) {
		t.Fatal("SetSub did not write back")
	}
	if m.At(1, 1, 1) == sub.At(1, 1) {
		t.Fatal("SetSub leaked outside its region")
	}
}

func TestSubMultipleFixedDims(t *testing.T) {
	m := MustNew(3, 4, 5, 2)
	data := m.Data()
	for i := range data {
		data[i] = float64(i)
	}
	sub, err := m.Sub([]int{0, 2}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sameDims(sub.Dims(), []int{4, 2}) {
		t.Fatalf("sub dims = %v, want [4 2]", sub.Dims())
	}
	for j := 0; j < 4; j++ {
		for l := 0; l < 2; l++ {
			if sub.At(j, l) != m.At(1, j, 3, l) {
				t.Fatalf("sub(%d,%d) mismatch", j, l)
			}
		}
	}
}

func TestSubErrors(t *testing.T) {
	m := MustNew(2, 2)
	if _, err := m.Sub([]int{0, 1}, []int{0, 0}); err == nil {
		t.Error("fixing all dims should fail")
	}
	if _, err := m.Sub([]int{0}, []int{0, 1}); err == nil {
		t.Error("mismatched coord count should fail")
	}
	if _, err := m.Sub([]int{1, 0}, []int{0, 0}); err == nil {
		t.Error("non-increasing fixed dims should fail")
	}
	if _, err := m.Sub([]int{0}, []int{5}); err == nil {
		t.Error("out-of-range coordinate should fail")
	}
	if _, err := m.Sub([]int{7}, []int{0}); err == nil {
		t.Error("out-of-range dim should fail")
	}
	sub := MustNew(3)
	if err := m.SetSub([]int{0}, []int{0}, sub); err == nil {
		t.Error("SetSub wrong shape should fail")
	}
}

func TestPrefixSum1D(t *testing.T) {
	m, _ := FromSlice([]float64{1, 2, 3, 4})
	m.PrefixSum()
	want := []float64{1, 3, 6, 10}
	for i, w := range want {
		if m.At(i) != w {
			t.Fatalf("prefix[%d] = %v, want %v", i, m.At(i), w)
		}
	}
}

func TestRangeSumAgainstNaive(t *testing.T) {
	m := MustNew(4, 5, 3)
	r := rng.New(2)
	data := m.Data()
	for i := range data {
		data[i] = math.Floor(r.Float64() * 10)
	}
	p := m.Clone()
	p.PrefixSum()
	for trial := 0; trial < 200; trial++ {
		lo := make([]int, 3)
		hi := make([]int, 3)
		for d, size := range m.Dims() {
			a, b := r.Intn(size), r.Intn(size)
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		want, err := m.NaiveRangeSum(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.RangeSum(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("RangeSum(%v,%v) = %v, want %v", lo, hi, got, want)
		}
	}
}

func TestRangeSumFullMatrix(t *testing.T) {
	m := MustNew(3, 3)
	m.Fill(1)
	total := m.Total()
	p := m.Clone()
	p.PrefixSum()
	got, err := p.RangeSum([]int{0, 0}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Fatalf("full-range sum = %v, want %v", got, total)
	}
}

func TestRangeSumErrors(t *testing.T) {
	m := MustNew(2, 2)
	p := m.Clone()
	p.PrefixSum()
	cases := [][2][]int{
		{{0}, {1}},        // wrong dims
		{{0, 0}, {0, 2}},  // hi out of range
		{{-1, 0}, {1, 1}}, // lo negative
		{{1, 1}, {0, 0}},  // lo > hi
	}
	for _, c := range cases {
		if _, err := p.RangeSum(c[0], c[1]); err == nil {
			t.Errorf("RangeSum(%v,%v) should fail", c[0], c[1])
		}
		if _, err := m.NaiveRangeSum(c[0], c[1]); err == nil {
			t.Errorf("NaiveRangeSum(%v,%v) should fail", c[0], c[1])
		}
	}
}

func TestPadTruncateRoundTrip(t *testing.T) {
	m := MustNew(3, 2)
	data := m.Data()
	for i := range data {
		data[i] = float64(i + 1)
	}
	p, err := m.Pad(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim(0) != 5 {
		t.Fatalf("padded dim = %d", p.Dim(0))
	}
	if p.At(4, 1) != 0 || p.At(3, 0) != 0 {
		t.Fatal("padding not zero")
	}
	if p.At(2, 1) != m.At(2, 1) {
		t.Fatal("padding corrupted data")
	}
	back, err := p.Truncate(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !back.AlmostEqual(m, 0) {
		t.Fatal("Pad/Truncate round trip failed")
	}
	if _, err := m.Pad(0, 2); err == nil {
		t.Error("Pad shrink should fail")
	}
	if _, err := m.Truncate(0, 4); err == nil {
		t.Error("Truncate grow should fail")
	}
	if _, err := m.Pad(5, 9); err == nil {
		t.Error("Pad bad dim should fail")
	}
	if _, err := m.Truncate(5, 1); err == nil {
		t.Error("Truncate bad dim should fail")
	}
}

func TestAddMatrix(t *testing.T) {
	a := MustNew(2, 2)
	a.Fill(1)
	b := MustNew(2, 2)
	b.Fill(2)
	if err := a.AddMatrix(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 12 {
		t.Fatalf("AddMatrix total = %v, want 12", a.Total())
	}
	c := MustNew(3)
	if err := a.AddMatrix(c); err == nil {
		t.Error("AddMatrix shape mismatch should fail")
	}
}

// Property: prefix-sum range queries agree with naive enumeration on
// random 2-D matrices and random rectangles.
func TestRangeSumQuick(t *testing.T) {
	f := func(seed uint64, aRaw, bRaw uint8) bool {
		r := rng.New(seed)
		rows := int(aRaw%6) + 1
		cols := int(bRaw%6) + 1
		m := MustNew(rows, cols)
		data := m.Data()
		for i := range data {
			data[i] = math.Floor(r.Float64()*7) - 3
		}
		p := m.Clone()
		p.PrefixSum()
		lo := []int{r.Intn(rows), r.Intn(cols)}
		hi := []int{lo[0] + r.Intn(rows-lo[0]), lo[1] + r.Intn(cols-lo[1])}
		want, err1 := m.NaiveRangeSum(lo, hi)
		got, err2 := p.RangeSum(lo, hi)
		return err1 == nil && err2 == nil && math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Sub followed by SetSub of the unmodified sub-matrix is the
// identity.
func TestSubRoundTripQuick(t *testing.T) {
	f := func(seed uint64, fixRaw uint8) bool {
		r := rng.New(seed)
		m := MustNew(3, 4, 2)
		data := m.Data()
		for i := range data {
			data[i] = r.Float64()
		}
		orig := m.Clone()
		fixDim := int(fixRaw % 3)
		coord := r.Intn(m.Dim(fixDim))
		sub, err := m.Sub([]int{fixDim}, []int{coord})
		if err != nil {
			return false
		}
		if err := m.SetSub([]int{fixDim}, []int{coord}, sub); err != nil {
			return false
		}
		return m.AlmostEqual(orig, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
