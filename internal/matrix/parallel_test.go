package matrix

import (
	"testing"

	"repro/internal/rng"
)

// randomMatrix fills a matrix with deterministic pseudo-random entries.
func randomMatrix(t *testing.T, seed uint64, dims ...int) *Matrix {
	t.Helper()
	m := MustNew(dims...)
	r := rng.New(seed)
	data := m.Data()
	for i := range data {
		data[i] = r.Float64()
	}
	return m
}

// reverseKernel maps src to dst reversed and scaled — stride-sensitive
// enough to catch index bugs, and size-changing when newSize != oldSize.
func reverseKernel(src, dst []float64) {
	for j := range dst {
		v := 0.0
		if j < len(src) {
			v = src[len(src)-1-j]
		}
		dst[j] = 2*v + float64(j)
	}
}

func TestApplyAlongPoolMatchesSerial(t *testing.T) {
	shapes := [][]int{{64}, {8, 16}, {4, 6, 8}, {3, 5, 7, 2}}
	for _, shape := range shapes {
		m := randomMatrix(t, 11, shape...)
		for dim := range shape {
			for _, newSize := range []int{shape[dim], shape[dim] * 2, 1} {
				want, err := m.ApplyAlong(dim, newSize, reverseKernel)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 3, 8, 64} {
					got, err := m.ApplyAlongPool(dim, newSize, workers, SharedKernel(reverseKernel))
					if err != nil {
						t.Fatal(err)
					}
					if d, _ := want.MaxAbsDiff(got); d != 0 {
						t.Fatalf("shape %v dim %d newSize %d workers %d: max diff %v",
							shape, dim, newSize, workers, d)
					}
				}
			}
		}
	}
}

func TestApplyAlongPoolPerWorkerKernels(t *testing.T) {
	// A kernel with private scratch must behave identically to a pure
	// kernel when each worker gets its own instance from the factory.
	m := randomMatrix(t, 5, 16, 32)
	factory := func(int) VecFunc {
		scratch := make([]float64, 32)
		return func(src, dst []float64) {
			copy(scratch, src)
			for j := range dst {
				dst[j] = scratch[len(scratch)-1-j] * 3
			}
		}
	}
	want, err := m.ApplyAlongPool(1, 32, 1, factory)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ApplyAlongPool(1, 32, 7, factory)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := want.MaxAbsDiff(got); d != 0 {
		t.Fatalf("per-worker scratch kernels diverged: %v", d)
	}
}

func TestPipelineChainMatchesAllocating(t *testing.T) {
	// A chained pad → transform → shrink pass through one pipeline must
	// equal the same chain through plain ApplyAlong, at several worker
	// counts, and must not allocate distinct results per step.
	m := randomMatrix(t, 21, 6, 10)
	chain := func(apply func(cur *Matrix, dim, newSize int) *Matrix) *Matrix {
		cur := apply(m, 0, 8)    // grow dim 0
		cur = apply(cur, 1, 16)  // grow dim 1
		cur = apply(cur, 0, 6)   // shrink dim 0 back
		return apply(cur, 1, 10) // shrink dim 1 back
	}
	want := chain(func(cur *Matrix, dim, newSize int) *Matrix {
		out, err := cur.ApplyAlong(dim, newSize, reverseKernel)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	for _, workers := range []int{1, 4} {
		p := NewPipeline()
		got := chain(func(cur *Matrix, dim, newSize int) *Matrix {
			out, err := p.ApplyAlong(cur, dim, newSize, workers, SharedKernel(reverseKernel))
			if err != nil {
				t.Fatal(err)
			}
			return out
		})
		if d, _ := want.MaxAbsDiff(got); d != 0 {
			t.Fatalf("workers %d: pipeline chain diverged by %v", workers, d)
		}
	}
}

func TestPipelineReusesBuffers(t *testing.T) {
	// After warm-up, repeated passes through the same pipeline must reuse
	// backing storage rather than allocate: the result of pass k and pass
	// k+2 share a buffer, so the pass-k matrix is invalidated.
	p := NewPipeline()
	m := randomMatrix(t, 3, 8, 8)
	first, err := p.ApplyAlong(m, 0, 8, 1, SharedKernel(reverseKernel))
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.ApplyAlong(first, 1, 8, 1, SharedKernel(reverseKernel))
	if err != nil {
		t.Fatal(err)
	}
	third, err := p.ApplyAlong(second, 0, 8, 1, SharedKernel(reverseKernel))
	if err != nil {
		t.Fatal(err)
	}
	if &first.Data()[0] != &third.Data()[0] {
		t.Fatal("pass 1 and pass 3 should ping-pong onto the same buffer")
	}
	if &second.Data()[0] == &third.Data()[0] {
		t.Fatal("consecutive passes must not share a buffer")
	}
}

func TestPipelineNeverOverwritesInput(t *testing.T) {
	// Feeding the latest pipeline result back in (even after an external
	// detour would have flipped parity) must not write into the input's
	// own buffer: the aliasing guard redirects to the other buffer.
	p := NewPipeline()
	m := randomMatrix(t, 8, 4, 4)
	a, err := p.ApplyAlong(m, 0, 4, 1, SharedKernel(reverseKernel))
	if err != nil {
		t.Fatal(err)
	}
	aCopy := a.Clone()
	b, err := p.ApplyAlong(a, 1, 4, 1, SharedKernel(reverseKernel))
	if err != nil {
		t.Fatal(err)
	}
	if &a.Data()[0] == &b.Data()[0] {
		t.Fatal("output aliases its input buffer")
	}
	// a itself must still hold its original values right after the call
	// (it is only invalidated by the *next* use of its buffer).
	if d, _ := a.MaxAbsDiff(aCopy); d != 0 {
		t.Fatalf("input overwritten during apply: %v", d)
	}
}

func TestSubIntoMatchesSubAndReuses(t *testing.T) {
	m := randomMatrix(t, 13, 3, 4, 5)
	var buf *Matrix
	for c0 := 0; c0 < 3; c0++ {
		for c2 := 0; c2 < 5; c2++ {
			want, err := m.Sub([]int{0, 2}, []int{c0, c2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.SubInto([]int{0, 2}, []int{c0, c2}, buf)
			if err != nil {
				t.Fatal(err)
			}
			if buf != nil && got != buf {
				t.Fatal("SubInto allocated despite a correctly-shaped destination")
			}
			buf = got
			if d, _ := want.MaxAbsDiff(got); d != 0 {
				t.Fatalf("coords (%d,%d): SubInto diverged by %v", c0, c2, d)
			}
		}
	}
	// Shape mismatch must reallocate, not corrupt.
	wrong := MustNew(7)
	got, err := m.SubInto([]int{0, 2}, []int{1, 1}, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if got == wrong {
		t.Fatal("SubInto reused a wrongly-shaped destination")
	}
}
