// Parallel, allocation-frugal variants of the ApplyAlong engine.
//
// ApplyAlong enumerates the Len()/Dim(dim) one-dimensional vectors along a
// dimension; the vectors are mutually independent, which makes the
// standard decomposition of the HN transform embarrassingly parallel.
// This file adds:
//
//   - ApplyAlongPool — a chunked worker-pool ApplyAlong. Each worker owns
//     a kernel instance produced by a factory, so kernels may keep scratch
//     state without synchronization;
//   - Pipeline — a pair of ping-pong buffers that chained ApplyAlong
//     steps alternate between, so a d-dimensional forward+inverse pass
//     allocates two backing slices total instead of 2d full matrices;
//   - SubInto — Sub writing into a reusable destination matrix.
//
// Vectors whose dimension is innermost (stride 1) are handed to kernels
// as direct sub-slices of the backing arrays — zero-copy; other strides
// gather/scatter through per-worker scratch.
package matrix

import (
	"fmt"
	"sync"
)

// VecFunc is the per-vector kernel of the ApplyAlong family: it reads src
// (the vector along the applied dimension) and must fully overwrite dst.
// dst never aliases src but may hold stale data from a reused buffer.
type VecFunc func(src, dst []float64)

// KernelFactory produces the kernel instance of worker `worker`
// (0 ≤ worker < the ApplyAlong call's worker count; serial calls use 0).
// Instances run from a single goroutine each, so they may close over
// private scratch — but the factory itself is called concurrently from
// the worker goroutines and must not touch shared mutable state. The
// worker index lets callers cache instances (and their scratch) across
// successive ApplyAlong calls: within one call each index is used by at
// most one goroutine, and calls are ordered through the spawning
// goroutine, so a per-(dimension, worker) cache needs no locking.
type KernelFactory func(worker int) VecFunc

// SharedKernel adapts a stateless, concurrency-safe kernel to a
// KernelFactory.
func SharedKernel(f VecFunc) KernelFactory { return func(int) VecFunc { return f } }

// Strides returns the row-major strides for the given dimension sizes —
// the single definition of the matrix memory layout, shared by the
// dataset frequency fold and the streaming publisher so a layout change
// cannot desynchronize them.
func Strides(dims []int) []int {
	strides := make([]int, len(dims))
	strides[len(dims)-1] = 1
	for i := len(dims) - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	return strides
}

// checkApplyAlong validates the (dim, newSize) pair and returns the
// resulting dimension sizes.
func (m *Matrix) checkApplyAlong(dim, newSize int) ([]int, error) {
	if dim < 0 || dim >= len(m.dims) {
		return nil, fmt.Errorf("matrix: ApplyAlong dimension %d out of range", dim)
	}
	if newSize <= 0 {
		return nil, fmt.Errorf("matrix: ApplyAlong newSize %d must be positive", newSize)
	}
	newDims := append([]int(nil), m.dims...)
	newDims[dim] = newSize
	return newDims, nil
}

// ApplyAlongPool is ApplyAlong with a worker pool: the vectors along dim
// are split into `workers` contiguous chunks processed concurrently, each
// chunk by its own kernel from factory. workers ≤ 1 runs serially on the
// calling goroutine. The result is bit-identical at any worker count.
func (m *Matrix) ApplyAlongPool(dim, newSize, workers int, factory KernelFactory) (*Matrix, error) {
	newDims, err := m.checkApplyAlong(dim, newSize)
	if err != nil {
		return nil, err
	}
	out, err := New(newDims...)
	if err != nil {
		return nil, err
	}
	m.applyAlongInto(dim, workers, factory, out)
	return out, nil
}

// applyAlongInto runs the chunked apply into a preshaped destination.
// out must have m's shape except along dim.
func (m *Matrix) applyAlongInto(dim, workers int, factory KernelFactory, out *Matrix) {
	oldSize := m.dims[dim]
	inner := m.strides[dim] // product of dims after dim
	outer := len(m.data) / (oldSize * inner)
	total := outer * inner // number of vectors along dim
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		m.applyRange(out, dim, 0, total, factory(0))
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * total / workers
		hi := (w + 1) * total / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m.applyRange(out, dim, lo, hi, factory(w))
		}(w, lo, hi)
	}
	wg.Wait()
}

// applyRange applies f to vectors [lo, hi) along dim, writing into out.
// Vector v decomposes as (outer, inner) = (v/inner, v%inner); when dim is
// innermost (inner == 1) the vectors are contiguous and are passed to f
// as direct slices of the backing arrays.
func (m *Matrix) applyRange(out *Matrix, dim, lo, hi int, f VecFunc) {
	oldSize := m.dims[dim]
	newSize := out.dims[dim]
	srcStride := m.strides[dim]
	dstStride := out.strides[dim]
	inner := srcStride
	if inner == 1 {
		// Zero-copy: vector v occupies m.data[v*oldSize : (v+1)*oldSize].
		for v := lo; v < hi; v++ {
			f(m.data[v*oldSize:(v+1)*oldSize], out.data[v*newSize:(v+1)*newSize])
		}
		return
	}
	src := make([]float64, oldSize)
	dst := make([]float64, newSize)
	for v := lo; v < hi; v++ {
		o, in := v/inner, v%inner
		so := o*oldSize*inner + in
		for j := 0; j < oldSize; j++ {
			src[j] = m.data[so+j*srcStride]
		}
		f(src, dst)
		do := o*newSize*inner + in
		for j := 0; j < newSize; j++ {
			out.data[do+j*dstStride] = dst[j]
		}
	}
}

// Pipeline is a pair of ping-pong buffers for chained ApplyAlong steps: a
// transform pass that applies d steps in sequence reuses the same two
// backing slices instead of allocating d full matrices.
//
// Discipline: the input of each ApplyAlong call must be either a matrix
// external to the pipeline or the result of the previous call on the same
// pipeline — the call overwrites the buffer the input does NOT occupy.
// Consequently only the most recent result is valid; earlier results
// alias overwritten storage. A Pipeline is not safe for concurrent use;
// give each worker its own.
type Pipeline struct {
	bufs [2][]float64
	next int
}

// NewPipeline returns an empty pipeline; buffers grow on demand and are
// retained for reuse.
func NewPipeline() *Pipeline { return &Pipeline{} }

// take returns buffer i resized to n, growing its capacity as needed.
func (p *Pipeline) take(i, n int) []float64 {
	if cap(p.bufs[i]) < n {
		p.bufs[i] = make([]float64, n)
	}
	p.bufs[i] = p.bufs[i][:n]
	return p.bufs[i]
}

// aliases reports whether the slice shares its backing start with buffer i.
// Pipeline matrices always view a buffer from element 0, so comparing the
// first element's address suffices.
func (p *Pipeline) aliases(data []float64, i int) bool {
	return len(data) > 0 && len(p.bufs[i]) > 0 && &data[0] == &p.bufs[i][0]
}

// ApplyAlong is ApplyAlongPool writing into the pipeline's next buffer.
// The returned matrix aliases pipeline storage: it is valid only until
// the next call on this pipeline, and callers must copy out (e.g. via
// SetSub or Clone) anything they need to keep.
func (p *Pipeline) ApplyAlong(m *Matrix, dim, newSize, workers int, factory KernelFactory) (*Matrix, error) {
	newDims, err := m.checkApplyAlong(dim, newSize)
	if err != nil {
		return nil, err
	}
	total := 1
	for _, d := range newDims {
		total *= d
	}
	target := p.next
	if p.aliases(m.data, target) {
		target = 1 - target // never overwrite the input's own buffer
	}
	out := &Matrix{
		dims:    newDims,
		strides: Strides(newDims),
		data:    p.take(target, total),
	}
	p.next = 1 - target
	m.applyAlongInto(dim, workers, factory, out)
	return out, nil
}

// SubInto is Sub writing into dst, which is reused when it already has
// the right shape and allocated otherwise; the (possibly new) destination
// is returned. Pass nil to always allocate.
func (m *Matrix) SubInto(fixedDims, fixedCoords []int, dst *Matrix) (*Matrix, error) {
	freeDims, baseOff, err := m.subLayout(fixedDims, fixedCoords)
	if err != nil {
		return nil, err
	}
	shape := make([]int, len(freeDims))
	for i, d := range freeDims {
		shape[i] = m.dims[d]
	}
	if dst == nil || !sameDims(dst.dims, shape) {
		dst, err = New(shape...)
		if err != nil {
			return nil, err
		}
	}
	m.walkSub(freeDims, baseOff, func(srcOff, dstOff int) {
		dst.data[dstOff] = m.data[srcOff]
	})
	return dst, nil
}
