// Parallel, allocation-frugal variants of the ApplyAlong engine.
//
// ApplyAlong enumerates the Len()/Dim(dim) one-dimensional vectors along a
// dimension; the vectors are mutually independent, which makes the
// standard decomposition of the HN transform embarrassingly parallel.
// This file adds:
//
//   - ApplyAlongPool — a chunked worker-pool ApplyAlong. Each worker owns
//     a kernel instance produced by a factory, so kernels may keep scratch
//     state without synchronization. The Ctx variants additionally observe
//     a context.Context about every 64Ki entries, so a pass over a huge
//     domain cancels mid-transform and returns ctx.Err(), never a partial
//     matrix;
//   - Pipeline — a pair of ping-pong buffers that chained ApplyAlong
//     steps alternate between, so a d-dimensional forward+inverse pass
//     allocates two backing slices total instead of 2d full matrices;
//   - PrefixSumExec — the summed-area-table build (the query evaluator's
//     cost) with the per-dimension scans fanned across the same kind of
//     pool, bit-identical to the serial PrefixSum;
//   - SubInto — Sub writing into a reusable destination matrix.
//
// Vectors whose dimension is innermost (stride 1) are handed to kernels
// as direct sub-slices of the backing arrays — zero-copy; other strides
// gather/scatter through per-worker scratch.
package matrix

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// VecFunc is the per-vector kernel of the ApplyAlong family: it reads src
// (the vector along the applied dimension) and must fully overwrite dst.
// dst never aliases src but may hold stale data from a reused buffer.
type VecFunc func(src, dst []float64)

// KernelFactory produces the kernel instance of worker `worker`
// (0 ≤ worker < the ApplyAlong call's worker count; serial calls use 0).
// Instances run from a single goroutine each, so they may close over
// private scratch — but the factory itself is called concurrently from
// the worker goroutines and must not touch shared mutable state. The
// worker index lets callers cache instances (and their scratch) across
// successive ApplyAlong calls: within one call each index is used by at
// most one goroutine, and calls are ordered through the spawning
// goroutine, so a per-(dimension, worker) cache needs no locking.
type KernelFactory func(worker int) VecFunc

// SharedKernel adapts a stateless, concurrency-safe kernel to a
// KernelFactory.
func SharedKernel(f VecFunc) KernelFactory { return func(int) VecFunc { return f } }

// ResolveWorkers resolves a caller-facing parallelism knob to an
// effective worker count: values ≤ 0 mean runtime.GOMAXPROCS(0). This
// is the single definition of the "≤ 0 = all cores" default shared by
// the public Params, core.Options, the baseline mechanisms, and the
// release store's evaluator rebuilds, so every stage of a publish
// resolves the same knob to the same budget.
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Strides returns the row-major strides for the given dimension sizes —
// the single definition of the matrix memory layout, shared by the
// dataset frequency fold and the streaming publisher so a layout change
// cannot desynchronize them.
func Strides(dims []int) []int {
	strides := make([]int, len(dims))
	strides[len(dims)-1] = 1
	for i := len(dims) - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * dims[i+1]
	}
	return strides
}

// checkApplyAlong validates the (dim, newSize) pair and returns the
// resulting dimension sizes.
func (m *Matrix) checkApplyAlong(dim, newSize int) ([]int, error) {
	if dim < 0 || dim >= len(m.dims) {
		return nil, fmt.Errorf("matrix: ApplyAlong dimension %d out of range", dim)
	}
	if newSize <= 0 {
		return nil, fmt.Errorf("matrix: ApplyAlong newSize %d must be positive", newSize)
	}
	newDims := append([]int(nil), m.dims...)
	newDims[dim] = newSize
	return newDims, nil
}

// ApplyAlongPool is ApplyAlong with a worker pool: the vectors along dim
// are split into `workers` contiguous chunks processed concurrently, each
// chunk by its own kernel from factory. workers ≤ 1 runs serially on the
// calling goroutine. The result is bit-identical at any worker count.
func (m *Matrix) ApplyAlongPool(dim, newSize, workers int, factory KernelFactory) (*Matrix, error) {
	return m.ApplyAlongPoolCtx(context.Background(), dim, newSize, workers, factory)
}

// ApplyAlongPoolCtx is ApplyAlongPool under a context: every worker
// observes ctx between vectors, about every cancelCheckEntries entries,
// so even a single enormous apply (one sub-matrix spanning the whole
// domain) cancels mid-pass rather than only at its boundary — provided
// the pass has more than one vector. A vector is one kernel invocation
// and is never interrupted inside the kernel, so the degenerate 1-D
// apply (the whole domain as a single vector) only observes ctx before
// that one call. On cancellation the call returns ctx's error and NO
// matrix — the partially written destination is discarded, never handed
// to the caller.
func (m *Matrix) ApplyAlongPoolCtx(ctx context.Context, dim, newSize, workers int, factory KernelFactory) (*Matrix, error) {
	newDims, err := m.checkApplyAlong(dim, newSize)
	if err != nil {
		return nil, err
	}
	out, err := New(newDims...)
	if err != nil {
		return nil, err
	}
	if err := m.applyAlongInto(ctx, dim, workers, factory, out); err != nil {
		return nil, err
	}
	return out, nil
}

// cancelCheckEntries is roughly how many matrix entries a worker
// processes between context checks: large enough that the check is free
// next to the kernel work, small enough that cancelling a pass over a
// multi-million-entry domain takes effect in well under a millisecond.
// It matches the noise-injection chunk granule in internal/privacy, so
// "the engine observes ctx about every 64Ki entries" holds across the
// whole publish pipeline.
const cancelCheckEntries = 1 << 16

// cancelCheckVectors converts the entry granule into a vector count for
// vectors of the given length.
func cancelCheckVectors(vecLen int) int {
	n := cancelCheckEntries / vecLen
	if n < 1 {
		return 1
	}
	return n
}

// forEachRange splits [0, total) into `workers` contiguous ranges and
// runs them concurrently, each on its own goroutine (workers ≤ 1: one
// range on the calling goroutine). run receives its worker index and
// half-open range; the first non-nil error is returned after every
// worker has joined. The contiguous lo/hi split — rather than a shared
// counter — keeps range membership a pure function of (total, workers),
// which the per-worker kernel cache relies on. Shared by the
// ApplyAlong family and PrefixSumExec so the two pools cannot drift.
func forEachRange(total, workers int, run func(w, lo, hi int) error) error {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		return run(0, 0, total)
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * total / workers
		hi := (w + 1) * total / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if err := run(w, lo, hi); err != nil {
				errs <- err
			}
		}(w, lo, hi)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// applyAlongInto runs the chunked apply into a preshaped destination.
// out must have m's shape except along dim. A non-nil error is always
// ctx's error; the destination then holds partial garbage and must be
// dropped by the caller.
func (m *Matrix) applyAlongInto(ctx context.Context, dim, workers int, factory KernelFactory, out *Matrix) error {
	oldSize := m.dims[dim]
	inner := m.strides[dim] // product of dims after dim
	outer := len(m.data) / (oldSize * inner)
	total := outer * inner // number of vectors along dim
	return forEachRange(total, workers, func(w, lo, hi int) error {
		return m.applyRange(ctx, out, dim, lo, hi, factory(w))
	})
}

// applyRange applies f to vectors [lo, hi) along dim, writing into out.
// Vector v decomposes as (outer, inner) = (v/inner, v%inner); when dim is
// innermost (inner == 1) the vectors are contiguous and are passed to f
// as direct slices of the backing arrays. ctx is observed roughly every
// cancelCheckEntries entries; a countdown (rather than a modulo) keeps
// the per-vector overhead to one decrement.
func (m *Matrix) applyRange(ctx context.Context, out *Matrix, dim, lo, hi int, f VecFunc) error {
	oldSize := m.dims[dim]
	newSize := out.dims[dim]
	checkEvery := cancelCheckVectors(oldSize)
	budget := 0
	srcStride := m.strides[dim]
	dstStride := out.strides[dim]
	inner := srcStride
	if inner == 1 {
		// Zero-copy: vector v occupies m.data[v*oldSize : (v+1)*oldSize].
		for v := lo; v < hi; v++ {
			if budget == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
				budget = checkEvery
			}
			budget--
			f(m.data[v*oldSize:(v+1)*oldSize], out.data[v*newSize:(v+1)*newSize])
		}
		return nil
	}
	src := make([]float64, oldSize)
	dst := make([]float64, newSize)
	for v := lo; v < hi; v++ {
		if budget == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			budget = checkEvery
		}
		budget--
		o, in := v/inner, v%inner
		so := o*oldSize*inner + in
		for j := 0; j < oldSize; j++ {
			src[j] = m.data[so+j*srcStride]
		}
		f(src, dst)
		do := o*newSize*inner + in
		for j := 0; j < newSize; j++ {
			out.data[do+j*dstStride] = dst[j]
		}
	}
	return nil
}

// Pipeline is a pair of ping-pong buffers for chained ApplyAlong steps: a
// transform pass that applies d steps in sequence reuses the same two
// backing slices instead of allocating d full matrices.
//
// Discipline: the input of each ApplyAlong call must be either a matrix
// external to the pipeline or the result of the previous call on the same
// pipeline — the call overwrites the buffer the input does NOT occupy.
// Consequently only the most recent result is valid; earlier results
// alias overwritten storage. A Pipeline is not safe for concurrent use;
// give each worker its own.
type Pipeline struct {
	bufs [2][]float64
	next int
}

// NewPipeline returns an empty pipeline; buffers grow on demand and are
// retained for reuse.
func NewPipeline() *Pipeline { return &Pipeline{} }

// take returns buffer i resized to n, growing its capacity as needed.
func (p *Pipeline) take(i, n int) []float64 {
	if cap(p.bufs[i]) < n {
		p.bufs[i] = make([]float64, n)
	}
	p.bufs[i] = p.bufs[i][:n]
	return p.bufs[i]
}

// aliases reports whether the slice shares its backing start with buffer i.
// Pipeline matrices always view a buffer from element 0, so comparing the
// first element's address suffices.
func (p *Pipeline) aliases(data []float64, i int) bool {
	return len(data) > 0 && len(p.bufs[i]) > 0 && &data[0] == &p.bufs[i][0]
}

// ApplyAlong is ApplyAlongPool writing into the pipeline's next buffer.
// The returned matrix aliases pipeline storage: it is valid only until
// the next call on this pipeline, and callers must copy out (e.g. via
// SetSub or Clone) anything they need to keep.
func (p *Pipeline) ApplyAlong(m *Matrix, dim, newSize, workers int, factory KernelFactory) (*Matrix, error) {
	return p.ApplyAlongCtx(context.Background(), m, dim, newSize, workers, factory)
}

// ApplyAlongCtx is ApplyAlong under a context (see ApplyAlongPoolCtx for
// the cancellation granularity). On cancellation it returns ctx's error
// and no matrix; the pipeline buffer the aborted pass was writing holds
// garbage, which the ping-pong discipline already treats as invalid — the
// next ApplyAlong on the pipeline simply overwrites it.
func (p *Pipeline) ApplyAlongCtx(ctx context.Context, m *Matrix, dim, newSize, workers int, factory KernelFactory) (*Matrix, error) {
	newDims, err := m.checkApplyAlong(dim, newSize)
	if err != nil {
		return nil, err
	}
	total := 1
	for _, d := range newDims {
		total *= d
	}
	target := p.next
	if p.aliases(m.data, target) {
		target = 1 - target // never overwrite the input's own buffer
	}
	out := &Matrix{
		dims:    newDims,
		strides: Strides(newDims),
		data:    p.take(target, total),
	}
	p.next = 1 - target
	if err := m.applyAlongInto(ctx, dim, workers, factory, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PrefixSumExec is PrefixSum with a worker pool: within each dimension's
// pass the Len()/Dim(dim) scans along that dimension are mutually
// independent, so they fan out across `workers` goroutines exactly like
// ApplyAlongPool's vectors (workers ≤ 1 runs serially on the calling
// goroutine); dimensions themselves stay sequential, each pass joining
// its workers before the next starts, because pass i reads what pass i−1
// wrote. Every individual scan accumulates left-to-right in the same
// order at any worker count, so no float64 addition is ever reassociated
// and the resulting table is bit-identical to the serial one (`==` per
// entry, property-tested) — the evaluator-rebuild analogue of the
// publish engine's determinism contract (docs/ARCHITECTURE.md).
//
// A 1-D matrix is a single scan with a loop-carried dependency and runs
// serially regardless of workers: parallelizing it would need a
// tree-structured scan, which reassociates sums and breaks bit-identity.
func (m *Matrix) PrefixSumExec(workers int) {
	for dim := range m.dims {
		size := m.dims[dim]
		inner := m.strides[dim]
		outer := len(m.data) / (size * inner)
		// The scans never fail, so forEachRange's error is always nil.
		_ = forEachRange(outer*inner, workers, func(_, lo, hi int) error {
			m.prefixScanRange(dim, lo, hi)
			return nil
		})
	}
}

// prefixScanRange runs scans [lo, hi) of dimension dim's prefix-sum pass.
// Scan v decomposes as (outer, inner) = (v/inner, v%inner), mirroring
// applyRange's vector numbering; distinct scans touch disjoint entries,
// so concurrent ranges need no synchronization.
func (m *Matrix) prefixScanRange(dim, lo, hi int) {
	size := m.dims[dim]
	stride := m.strides[dim]
	inner := stride
	for v := lo; v < hi; v++ {
		o, in := v/inner, v%inner
		off := o*size*inner + in
		for j := 1; j < size; j++ {
			m.data[off+j*stride] += m.data[off+(j-1)*stride]
		}
	}
}

// SubInto is Sub writing into dst, which is reused when it already has
// the right shape and allocated otherwise; the (possibly new) destination
// is returned. Pass nil to always allocate.
func (m *Matrix) SubInto(fixedDims, fixedCoords []int, dst *Matrix) (*Matrix, error) {
	freeDims, baseOff, err := m.subLayout(fixedDims, fixedCoords)
	if err != nil {
		return nil, err
	}
	shape := make([]int, len(freeDims))
	for i, d := range freeDims {
		shape[i] = m.dims[d]
	}
	if dst == nil || !sameDims(dst.dims, shape) {
		dst, err = New(shape...)
		if err != nil {
			return nil, err
		}
	}
	m.walkSub(freeDims, baseOff, func(srcOff, dstOff int) {
		dst.data[dstOff] = m.data[srcOff]
	})
	return dst, nil
}
