package matrix

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/rng"
)

// TestPrefixSumExecEquivalence is the evaluator build's determinism
// property: on randomized shapes and fills, PrefixSumExec at any worker
// count produces exactly (float64 ==) the table PrefixSum produces. The
// shapes are drawn from a seeded generator so failures replay; they
// include 1-D (which must degrade to the serial scan), skewed and cubic
// shapes, and dimensions of size 1.
func TestPrefixSumExecEquivalence(t *testing.T) {
	r := rng.New(424242)
	for trial := 0; trial < 40; trial++ {
		d := 1 + r.Intn(4)
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 1 + r.Intn(24)
		}
		m := MustNew(dims...)
		data := m.Data()
		for i := range data {
			data[i] = r.Float64() * 100
		}
		want := m.Clone()
		want.PrefixSum()
		for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0) + 1} {
			got := m.Clone()
			got.PrefixSumExec(workers)
			for i := range data {
				if got.Data()[i] != want.Data()[i] {
					t.Fatalf("trial %d dims %v workers %d: entry %d = %v, serial %v",
						trial, dims, workers, i, got.Data()[i], want.Data()[i])
				}
			}
		}
	}
}

// TestPrefixSumExecRangeSum checks the pooled table is not just
// self-consistent but correct: RangeSum over it matches NaiveRangeSum on
// the original matrix.
func TestPrefixSumExecRangeSum(t *testing.T) {
	m := randomMatrix(t, 99, 9, 7, 11)
	p := m.Clone()
	p.PrefixSumExec(8)
	lo, hi := []int{1, 0, 3}, []int{7, 5, 9}
	want, err := m.NaiveRangeSum(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.RangeSum(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("RangeSum over pooled table = %v, want %v", got, want)
	}
}

// TestApplyAlongPoolCtxPreCancelled: a dead context must surface ctx's
// error and no matrix — never a partially-written result — on both the
// serial and pooled paths, and through a Pipeline.
func TestApplyAlongPoolCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := randomMatrix(t, 7, 32, 64)
	for _, workers := range []int{1, 4} {
		out, err := m.ApplyAlongPoolCtx(ctx, 0, 32, workers, SharedKernel(reverseKernel))
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if out != nil {
			t.Fatalf("workers=%d: cancelled apply returned a matrix", workers)
		}
	}
	p := NewPipeline()
	out, err := p.ApplyAlongCtx(ctx, m, 1, 64, 2, SharedKernel(reverseKernel))
	if err != context.Canceled || out != nil {
		t.Fatalf("pipeline: out=%v err=%v, want nil/context.Canceled", out, err)
	}
	// The pipeline stays usable after an aborted pass.
	if _, err := p.ApplyAlong(m, 1, 64, 2, SharedKernel(reverseKernel)); err != nil {
		t.Fatalf("pipeline unusable after aborted pass: %v", err)
	}
}

// TestApplyAlongPoolCtxSelfCancel is the deterministic mid-pass
// regression: a kernel pulls the plug on the FIRST vector, and the pass
// must still abort at its next 64Ki-entry check with ctx.Err() and no
// matrix — before PR 4 the chunk loop never looked at the context, so a
// single-sub-matrix pass always ran to completion.
func TestApplyAlongPoolCtxSelfCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const vecLen, vectors = 64, 8192 // check granule = 1024 vectors
	m := MustNew(vecLen, vectors)
	calls := 0
	saboteur := func(src, dst []float64) {
		if calls == 0 {
			cancel()
		}
		calls++
		copy(dst, src)
	}
	out, err := m.ApplyAlongPoolCtx(ctx, 0, vecLen, 1, SharedKernel(saboteur))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled apply returned a partial matrix")
	}
	if calls >= vectors {
		t.Fatalf("pass ran to completion (%d vectors) despite mid-pass cancel", calls)
	}
}

// TestApplyAlongPoolCtxCancelMidPass cancels a long apply while its
// workers are inside their chunk loops and checks the call returns the
// context error promptly with no goroutines left behind — the
// mid-transform granularity the SA = ∅ publish path relies on.
func TestApplyAlongPoolCtxCancelMidPass(t *testing.T) {
	before := runtime.NumGoroutine()
	// 2048 vectors of length 4096 = 8M entries ≈ 128 cancellation points
	// per full sweep at the 64Ki-entry check granule.
	m := MustNew(4096, 2048)
	slow := func(src, dst []float64) {
		for j := range dst {
			dst[j] = src[j] * 1.000001
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.ApplyAlongPoolCtx(ctx, 0, 4096, 2, SharedKernel(slow))
		done <- err
	}()
	time.Sleep(500 * time.Microsecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && err != context.Canceled {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled apply did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
