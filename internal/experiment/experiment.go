// Package experiment reproduces the paper's evaluation section (§VII):
// one runner per figure/table, shared scaling profiles, and text/CSV
// rendering of the series the paper plots. DESIGN.md §3 maps every
// artifact to its runner; EXPERIMENTS.md records paper-vs-measured.
package experiment

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Profile bundles the experiment knobs. The paper's settings are:
// n = 10M (Brazil) / 8M (US), 40 000 queries, ε ∈ {0.5, 0.75, 1, 1.25},
// 5 quantile bins, SA = {Age, Gender}.
type Profile struct {
	Name    string
	Scale   dataset.Scale
	Tuples  int
	Queries int
	// Epsilons are the privacy levels swept in Figures 6–9.
	Epsilons []float64
	Bins     int
	Seed     uint64
	SA       []string
}

// Small returns the default laptop profile: scaled-down domains, 200k
// tuples, 8k queries. Keeps every figure's shape while finishing in
// seconds (DESIGN.md §2).
func Small() Profile {
	return Profile{
		Name: "small", Scale: dataset.ScaleSmall,
		Tuples: 200_000, Queries: 8_000,
		Epsilons: []float64{0.5, 0.75, 1.0, 1.25},
		Bins:     5, Seed: 20100301, SA: []string{"Age", "Gender"},
	}
}

// Medium returns an intermediate profile (minutes).
func Medium() Profile {
	p := Small()
	p.Name, p.Scale = "medium", dataset.ScaleMedium
	p.Tuples, p.Queries = 1_000_000, 20_000
	return p
}

// Full returns the paper-scale profile (Table III domains, 10M/8M tuples,
// 40k queries). Needs several GiB of RAM and tens of minutes.
func Full() Profile {
	p := Small()
	p.Name, p.Scale = "full", dataset.ScaleFull
	p.Tuples, p.Queries = 10_000_000, 40_000
	return p
}

// ProfileByName resolves "small", "medium" or "full".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "small":
		return Small(), nil
	case "medium":
		return Medium(), nil
	case "full":
		return Full(), nil
	default:
		return Profile{}, fmt.Errorf("experiment: unknown profile %q (want small, medium or full)", name)
	}
}

// Metric selects the error metric/binning key pair of Figures 6–9.
type Metric int

const (
	// SquareErrorByCoverage is Figures 6–7: average square error binned
	// by query coverage quintiles.
	SquareErrorByCoverage Metric = iota
	// RelativeErrorBySelectivity is Figures 8–9: average relative error
	// (with sanity bound 0.1%·n) binned by selectivity quintiles.
	RelativeErrorBySelectivity
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case SquareErrorByCoverage:
		return "avg square error vs query coverage"
	case RelativeErrorBySelectivity:
		return "avg relative error vs query selectivity"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Row is one plotted point: the bin key (mean coverage or selectivity)
// and the mean error of each mechanism in that bin.
type Row struct {
	Key      float64
	Basic    float64
	Privelet float64
	Count    int
}

// EpsilonSeries is one sub-plot (one ε value) of Figures 6–9.
type EpsilonSeries struct {
	Epsilon float64
	Rows    []Row
}

// AccuracyResult is a full figure: one series per ε.
type AccuracyResult struct {
	Dataset string
	Metric  Metric
	Series  []EpsilonSeries
	// Tuples and Queries echo the profile for reporting.
	Tuples, Queries int
}

// RunAccuracy reproduces one of Figures 6–9: the given census dataset,
// Basic vs Privelet+ (SA from the profile), binned per the metric.
func RunAccuracy(spec dataset.CensusSpec, prof Profile, metric Metric) (*AccuracyResult, error) {
	tbl, err := dataset.GenerateCensus(spec, prof.Tuples, prof.Seed)
	if err != nil {
		return nil, err
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		return nil, err
	}
	truth := query.NewEvaluatorWorkers(m, 0)

	gen, err := workload.NewGenerator(tbl.Schema(), 4)
	if err != nil {
		return nil, err
	}
	queries, err := gen.Queries(prof.Queries, rng.New(prof.Seed+1))
	if err != nil {
		return nil, err
	}
	// Ground truth and noisy answers both run on the batch executor the
	// serving layer uses (query.Batch): answers are bit-identical to a
	// serial Count loop at any worker count, so sharing the pipeline
	// costs the experiment nothing in reproducibility.
	actuals, err := query.Batch{Eval: truth}.Execute(context.Background(), queries)
	if err != nil {
		return nil, err
	}
	keys := make([]float64, len(queries))
	for i, q := range queries {
		switch metric {
		case SquareErrorByCoverage:
			keys[i] = q.Coverage()
		case RelativeErrorBySelectivity:
			keys[i] = actuals[i] / float64(prof.Tuples)
		default:
			return nil, fmt.Errorf("experiment: unknown metric %v", metric)
		}
	}
	sanity := workload.SanityBound(prof.Tuples)

	result := &AccuracyResult{
		Dataset: spec.Name, Metric: metric,
		Tuples: prof.Tuples, Queries: prof.Queries,
	}
	for ei, eps := range prof.Epsilons {
		seed := prof.Seed + 100*uint64(ei) + 17
		bres, err := baseline.Basic(context.Background(), m, eps, seed, 0)
		if err != nil {
			return nil, err
		}
		pres, err := core.PublishMatrix(context.Background(), m, tbl.Schema(), core.Options{Epsilon: eps, SA: prof.SA, Seed: seed + 1})
		if err != nil {
			return nil, err
		}
		bAns, err := query.Batch{Eval: query.NewEvaluatorWorkers(bres.Noisy, 0)}.Execute(context.Background(), queries)
		if err != nil {
			return nil, err
		}
		pAns, err := query.Batch{Eval: query.NewEvaluatorWorkers(pres.Noisy, 0)}.Execute(context.Background(), queries)
		if err != nil {
			return nil, err
		}
		bErrs := make([]float64, len(queries))
		pErrs := make([]float64, len(queries))
		for i := range queries {
			switch metric {
			case SquareErrorByCoverage:
				bErrs[i] = workload.SquareError(bAns[i], actuals[i])
				pErrs[i] = workload.SquareError(pAns[i], actuals[i])
			case RelativeErrorBySelectivity:
				bErrs[i] = workload.RelativeError(bAns[i], actuals[i], sanity)
				pErrs[i] = workload.RelativeError(pAns[i], actuals[i], sanity)
			}
		}
		bBins, err := workload.QuintileBins(keys, bErrs, prof.Bins)
		if err != nil {
			return nil, err
		}
		pBins, err := workload.QuintileBins(keys, pErrs, prof.Bins)
		if err != nil {
			return nil, err
		}
		series := EpsilonSeries{Epsilon: eps}
		for bi := range bBins {
			series.Rows = append(series.Rows, Row{
				Key:      bBins[bi].AvgKey,
				Basic:    bBins[bi].AvgError,
				Privelet: pBins[bi].AvgError,
				Count:    bBins[bi].Count,
			})
		}
		result.Series = append(result.Series, series)
	}
	return result, nil
}

// TimingPoint is one x-coordinate of Figures 10–11 with both mechanisms'
// wall-clock times.
type TimingPoint struct {
	// N and M describe the input size at this point.
	N, M int
	// Basic and Privelet are the publication wall times.
	Basic, Privelet time.Duration
}

// TimingResult is a full timing figure.
type TimingResult struct {
	Label  string
	Points []TimingPoint
}

// RunTimingVsN reproduces Figure 10: computation time as a function of n
// at fixed m, with SA = ∅ (the paper's worst case for Privelet+).
func RunTimingVsN(m int, ns []int, seed uint64) (*TimingResult, error) {
	spec, err := dataset.UniformSpecForM(m)
	if err != nil {
		return nil, err
	}
	out := &TimingResult{Label: fmt.Sprintf("time vs n (m=%d)", m)}
	for _, n := range ns {
		pt, err := timeOne(spec, n, seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// RunTimingVsM reproduces Figure 11: computation time as a function of m
// at fixed n, with SA = ∅.
func RunTimingVsM(n int, ms []int, seed uint64) (*TimingResult, error) {
	out := &TimingResult{Label: fmt.Sprintf("time vs m (n=%d)", n)}
	for _, m := range ms {
		spec, err := dataset.UniformSpecForM(m)
		if err != nil {
			return nil, err
		}
		pt, err := timeOne(spec, n, seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// timeOne measures both mechanisms once on a fresh §VII-B synthetic
// table. Timing covers the full pipeline the paper times: frequency
// matrix construction plus noise publication.
func timeOne(spec dataset.UniformSpec, n int, seed uint64) (TimingPoint, error) {
	tbl, err := dataset.GenerateUniform(spec, n, seed)
	if err != nil {
		return TimingPoint{}, err
	}
	schema := tbl.Schema()

	start := time.Now()
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		return TimingPoint{}, err
	}
	if _, err := baseline.Basic(context.Background(), m, 1.0, seed+1, 0); err != nil {
		return TimingPoint{}, err
	}
	basicTime := time.Since(start)

	start = time.Now()
	m2, err := tbl.FrequencyMatrix()
	if err != nil {
		return TimingPoint{}, err
	}
	if _, err := core.PublishMatrix(context.Background(), m2, schema, core.Options{Epsilon: 1.0, Seed: seed + 2}); err != nil {
		return TimingPoint{}, err
	}
	priveletTime := time.Since(start)

	return TimingPoint{N: n, M: schema.DomainSize(), Basic: basicTime, Privelet: priveletTime}, nil
}
