package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// tinyProfile keeps unit tests fast while exercising the full pipeline.
func tinyProfile() Profile {
	return Profile{
		Name: "tiny", Scale: dataset.ScaleSmall,
		Tuples: 5_000, Queries: 600,
		Epsilons: []float64{1.0},
		Bins:     5, Seed: 99, SA: []string{"Age", "Gender"},
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "full"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile name %q, want %q", p.Name, name)
		}
		if len(p.Epsilons) != 4 {
			t.Errorf("%s should sweep 4 epsilons", name)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestFullProfileMatchesPaper(t *testing.T) {
	p := Full()
	if p.Tuples != 10_000_000 || p.Queries != 40_000 {
		t.Errorf("full profile n=%d q=%d; paper uses 10M/40k", p.Tuples, p.Queries)
	}
	want := []float64{0.5, 0.75, 1.0, 1.25}
	for i, e := range want {
		if p.Epsilons[i] != e {
			t.Errorf("epsilon[%d] = %v, want %v", i, p.Epsilons[i], e)
		}
	}
	if p.SA[0] != "Age" || p.SA[1] != "Gender" {
		t.Errorf("SA = %v, want the paper's {Age, Gender}", p.SA)
	}
}

func TestMetricString(t *testing.T) {
	if !strings.Contains(SquareErrorByCoverage.String(), "square") {
		t.Error("metric string broken")
	}
	if !strings.Contains(RelativeErrorBySelectivity.String(), "relative") {
		t.Error("metric string broken")
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric should render")
	}
}

func TestRunAccuracySquareError(t *testing.T) {
	prof := tinyProfile()
	res, err := RunAccuracy(dataset.BrazilSpec(prof.Scale), prof, SquareErrorByCoverage)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "Brazil" {
		t.Errorf("dataset = %q", res.Dataset)
	}
	if len(res.Series) != 1 {
		t.Fatalf("series count = %d", len(res.Series))
	}
	rows := res.Series[0].Rows
	if len(rows) != 5 {
		t.Fatalf("bins = %d, want 5", len(rows))
	}
	// Keys (coverage) increase across bins; errors are non-negative.
	for i, r := range rows {
		if r.Basic < 0 || r.Privelet < 0 {
			t.Fatalf("negative error in bin %d", i)
		}
		if i > 0 && r.Key < rows[i-1].Key {
			t.Fatalf("coverage keys not sorted: %v", rows)
		}
	}
	// The paper's headline: at the top coverage bin Basic's square error
	// exceeds Privelet+'s by a wide margin.
	top := rows[len(rows)-1]
	if top.Basic <= top.Privelet {
		t.Errorf("top-coverage bin: Basic %v should exceed Privelet+ %v", top.Basic, top.Privelet)
	}
	// And Basic's square error grows with coverage (≈ linearly).
	if rows[4].Basic <= rows[0].Basic {
		t.Errorf("Basic error should grow with coverage: %v vs %v", rows[4].Basic, rows[0].Basic)
	}
}

func TestRunAccuracyRelativeError(t *testing.T) {
	prof := tinyProfile()
	res, err := RunAccuracy(dataset.USSpec(prof.Scale), prof, RelativeErrorBySelectivity)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset != "US" {
		t.Errorf("dataset = %q", res.Dataset)
	}
	rows := res.Series[0].Rows
	if len(rows) != 5 {
		t.Fatalf("bins = %d", len(rows))
	}
	for i, r := range rows {
		if r.Basic < 0 || r.Privelet < 0 {
			t.Fatalf("negative relative error in bin %d", i)
		}
	}
}

func TestRunAccuracyUnknownMetric(t *testing.T) {
	prof := tinyProfile()
	if _, err := RunAccuracy(dataset.BrazilSpec(prof.Scale), prof, Metric(42)); err == nil {
		t.Error("unknown metric should fail")
	}
}

func TestRunTimingVsN(t *testing.T) {
	res, err := RunTimingVsN(1<<12, []int{2_000, 4_000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Basic <= 0 || p.Privelet <= 0 {
			t.Fatalf("non-positive timing: %+v", p)
		}
		if p.M <= 0 {
			t.Fatalf("m not recorded: %+v", p)
		}
	}
	if res.Points[0].N != 2_000 || res.Points[1].N != 4_000 {
		t.Errorf("n values wrong: %+v", res.Points)
	}
}

func TestRunTimingVsM(t *testing.T) {
	res, err := RunTimingVsM(2_000, []int{1 << 8, 1 << 12}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[1].M <= res.Points[0].M {
		t.Errorf("m should grow across points: %+v", res.Points)
	}
	if _, err := RunTimingVsM(100, []int{3}, 1); err == nil {
		t.Error("tiny m should fail")
	}
}

func TestWriteAccuracyText(t *testing.T) {
	prof := tinyProfile()
	res, err := RunAccuracy(dataset.BrazilSpec(prof.Scale), prof, SquareErrorByCoverage)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAccuracy(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Brazil", "epsilon = 1", "Basic", "Privelet+", "coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteAccuracyCSV(t *testing.T) {
	prof := tinyProfile()
	res, err := RunAccuracy(dataset.BrazilSpec(prof.Scale), prof, RelativeErrorBySelectivity)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAccuracyCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "dataset,metric,epsilon,key,basic,privelet,count" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != 1+5 {
		t.Errorf("CSV rows = %d, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[1], "Brazil,relative_error_by_selectivity,1,") {
		t.Errorf("CSV row = %q", lines[1])
	}
}

func TestWriteTiming(t *testing.T) {
	res, err := RunTimingVsN(1<<8, []int{1_000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTiming(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Privelet+") {
		t.Errorf("timing output missing header:\n%s", buf.String())
	}
}

func TestWriteTableIII(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTableIII(&buf, dataset.ScaleFull); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Brazil", "US", "512 (3)", "511 (3)", "1001", "1020"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestWorkedExamples(t *testing.T) {
	var buf bytes.Buffer
	if err := WorkedExampleVD(&buf, 512, 3, 1.0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4400") {
		t.Errorf("§V-D output missing 4400:\n%s", out)
	}
	if !strings.Contains(out, "288") {
		t.Errorf("§V-D output missing 288:\n%s", out)
	}
	buf.Reset()
	if err := WorkedExampleVID(&buf, 16, 1.0); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "600") || !strings.Contains(out, "128") {
		t.Errorf("§VI-D output missing bounds:\n%s", out)
	}
}

func TestSummarizeBounds(t *testing.T) {
	s := dataset.MustSchema(
		dataset.OrdinalAttr("A", 4),
		dataset.OrdinalAttr("B", 1024),
	)
	var buf bytes.Buffer
	if err := SummarizeBounds(&buf, s, 1.0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "best: SA={A}") {
		t.Errorf("expected SA={A} (small domain in SA, big one transformed):\n%s", out)
	}
	// All four subsets listed.
	if strings.Count(out, "SA={") < 4 {
		t.Errorf("not all SA subsets listed:\n%s", out)
	}
}
