package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/dataset"
	"repro/internal/privacy"
	"repro/internal/transform"
)

// WriteAccuracy renders an accuracy figure as aligned text, one block per
// ε — the same rows the paper plots in Figures 6–9.
func WriteAccuracy(w io.Writer, r *AccuracyResult) error {
	var keyCol string
	switch r.Metric {
	case SquareErrorByCoverage:
		keyCol = "coverage"
	case RelativeErrorBySelectivity:
		keyCol = "selectivity"
	default:
		keyCol = "key"
	}
	if _, err := fmt.Fprintf(w, "%s dataset — %s (n=%d, %d queries)\n",
		r.Dataset, r.Metric, r.Tuples, r.Queries); err != nil {
		return err
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "\n  epsilon = %g\n", s.Epsilon); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-14s %14s %14s %10s %7s\n",
			keyCol, "Basic", "Privelet+", "ratio", "count"); err != nil {
			return err
		}
		for _, row := range s.Rows {
			ratio := math.Inf(1)
			if row.Privelet > 0 {
				ratio = row.Basic / row.Privelet
			}
			if _, err := fmt.Fprintf(w, "  %-14.4e %14.6g %14.6g %10.3g %7d\n",
				row.Key, row.Basic, row.Privelet, ratio, row.Count); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteAccuracyCSV renders an accuracy figure as CSV
// (dataset,metric,epsilon,key,basic,privelet,count).
func WriteAccuracyCSV(w io.Writer, r *AccuracyResult) error {
	if _, err := fmt.Fprintln(w, "dataset,metric,epsilon,key,basic,privelet,count"); err != nil {
		return err
	}
	metric := "square_error_by_coverage"
	if r.Metric == RelativeErrorBySelectivity {
		metric = "relative_error_by_selectivity"
	}
	for _, s := range r.Series {
		for _, row := range s.Rows {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%d\n",
				r.Dataset, metric, s.Epsilon, row.Key, row.Basic, row.Privelet, row.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTiming renders a timing figure (Figures 10–11) as aligned text.
func WriteTiming(w io.Writer, r *TimingResult) error {
	if _, err := fmt.Fprintf(w, "%s\n", r.Label); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %12s %12s %14s %14s\n", "n", "m", "Basic", "Privelet+"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "  %12d %12d %14s %14s\n",
			p.N, p.M, p.Basic.Round(1e6), p.Privelet.Round(1e6)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteTableIII renders Table III — the attribute domain sizes of both
// census datasets at the given scale (hierarchy heights parenthesized,
// exactly as the paper prints them).
func WriteTableIII(w io.Writer, scale dataset.Scale) error {
	if _, err := fmt.Fprintf(w, "Table III — attribute domains (%s scale)\n", scale); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-8s %8s %10s %12s %8s\n",
		"", "Age", "Gender", "Occupation", "Income"); err != nil {
		return err
	}
	for _, spec := range []dataset.CensusSpec{dataset.BrazilSpec(scale), dataset.USSpec(scale)} {
		if _, err := fmt.Fprintf(w, "  %-8s %8d %10s %12s %8d\n",
			spec.Name, spec.AgeSize, "2 (2)",
			fmt.Sprintf("%d (3)", spec.OccSize()), spec.IncomeSize); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WorkedExampleVD reproduces the §V-D analytic comparison for a nominal
// attribute with domain size m and hierarchy height h: the HWT bound
// (Equation 4) vs the nominal-transform bound (Equation 6).
func WorkedExampleVD(w io.Writer, m, h int, eps float64) error {
	hwt := privacy.HaarVarianceBound(eps, m)
	nom := privacy.NominalVarianceBound(eps, h)
	_, err := fmt.Fprintf(w,
		"§V-D worked example (m=%d leaves, h=%d, ε=%g)\n"+
			"  Privelet+HWT   noise variance bound: %10.4g   (paper: 4400/ε² at m=512)\n"+
			"  Privelet+Nom   noise variance bound: %10.4g   (paper:  288/ε² at h=3)\n"+
			"  reduction: %.1f×\n\n",
		m, h, eps, hwt, nom, hwt/nom)
	return err
}

// WorkedExampleVID reproduces the §VI-D analytic comparison for a small
// ordinal domain |A|: the Privelet bound 2·(2P/ε)²·H vs Basic's
// |A|·8/ε².
func WorkedExampleVID(w io.Writer, size int, eps float64) error {
	p := privacy.POrdinal(size)
	h := privacy.HOrdinal(size)
	priv := 2 * (2 * p / eps) * (2 * p / eps) * h
	basic := privacy.BasicVarianceBound(eps, size)
	viaEq7, err := privacy.PriveletPlusVarianceBound(eps, []int{size}, nil)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"§VI-D worked example (|A|=%d, ε=%g)\n"+
			"  Privelet  noise variance bound: %10.4g   (paper: 600/ε² at |A|=16)\n"+
			"  Basic     noise variance bound: %10.4g   (paper: 128/ε² at |A|=16)\n"+
			"  Privelet+ with SA={A} (≡Basic): %10.4g\n"+
			"  → put A in SA whenever |A| ≤ P(A)²·H(A) = %.4g\n\n",
		size, eps, priv, basic, viaEq7, p*p*h)
	return err
}

// SummarizeBounds prints Corollary 1 bounds for every SA subset choice of
// a schema (used by the tuning example and the SA-sweep ablation). The
// subsets are encoded by bitmask over attribute indices.
func SummarizeBounds(w io.Writer, schema *dataset.Schema, eps float64) error {
	d := schema.NumAttrs()
	if d > 16 {
		return fmt.Errorf("experiment: too many attributes (%d) for exhaustive SA sweep", d)
	}
	specs := schema.Specs()
	if _, err := fmt.Fprintf(w, "Corollary 1 bounds by SA choice (ε=%g)\n", eps); err != nil {
		return err
	}
	type entry struct {
		names string
		bound float64
	}
	var best entry
	best.bound = math.Inf(1)
	for mask := 0; mask < 1<<d; mask++ {
		var saSizes []int
		var rest []transform.Spec
		var names []string
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				saSizes = append(saSizes, schema.Attr(i).Size)
				names = append(names, schema.Attr(i).Name)
			} else {
				rest = append(rest, specs[i])
			}
		}
		bound, err := privacy.PriveletPlusVarianceBound(eps, saSizes, rest)
		if err != nil {
			return err
		}
		label := "{" + strings.Join(names, ",") + "}"
		if _, err := fmt.Fprintf(w, "  SA=%-40s bound %12.4g\n", label, bound); err != nil {
			return err
		}
		if bound < best.bound {
			best = entry{names: label, bound: bound}
		}
	}
	_, err := fmt.Fprintf(w, "  best: SA=%s (bound %.4g)\n\n", best.names, best.bound)
	return err
}
