//go:build unix

package mmapfile

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
)

// openOS maps path read-only via mmap(2). The mapping is PROT_READ and
// MAP_SHARED, so pages are the page cache's — shared across processes
// mapping the same spill file and reclaimable under pressure. On any
// mmap failure it degrades to the aligned read-all path rather than
// erroring: the caller asked for the bytes, not for a specific residency
// story.
func openOS(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size != int64(int(size)) || size < 0 {
		return nil, fmt.Errorf("mmapfile: %s: size %d not addressable", path, size)
	}
	if size == 0 {
		return &File{}, nil
	}
	data, err := syscall.Mmap(int(fh.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return readAll(path)
	}
	f := &File{data: data, mapped: true}
	runtime.SetFinalizer(f, (*File).finalize)
	return f, nil
}

// finalize unmaps when the File becomes unreachable. Every consumer of
// Data() must therefore keep the File pinned (matrix.Wrap does), which
// is what makes the no-explicit-Close design safe.
func (f *File) finalize() {
	if f.mapped && f.data != nil {
		_ = syscall.Munmap(f.data)
		f.data = nil
		f.mapped = false
	}
}
