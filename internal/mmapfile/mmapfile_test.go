package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func dataAddr(b []byte) uintptr { return uintptr(unsafe.Pointer(&b[0])) }

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.bin")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenRoundTrip(t *testing.T) {
	want := []byte("0123456789abcdef-tail") // deliberately not 8-aligned length
	for name, open := range map[string]func(string) (*File, error){"Open": Open, "ReadAll": ReadAll} {
		f, err := open(writeTemp(t, want))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(f.Data(), want) {
			t.Fatalf("%s: got %q want %q", name, f.Data(), want)
		}
		if f.Size() != len(want) {
			t.Fatalf("%s: size %d want %d", name, f.Size(), len(want))
		}
	}
}

func TestReadAllAligned(t *testing.T) {
	f, err := ReadAll(writeTemp(t, make([]byte, 4097)))
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapped() {
		t.Fatal("ReadAll must not report a mapping")
	}
	if addr := dataAddr(f.Data()); addr%8 != 0 {
		t.Fatalf("ReadAll buffer misaligned: %#x", addr)
	}
}

func TestOpenEmpty(t *testing.T) {
	f, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 || f.Mapped() {
		t.Fatalf("empty file: size=%d mapped=%v", f.Size(), f.Mapped())
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
