//go:build !unix

package mmapfile

// openOS on platforms without syscall.Mmap support is the aligned
// read-all path: same bytes, same alignment guarantees, heap residency.
func openOS(path string) (*File, error) {
	return readAll(path)
}
