// Package mmapfile memory-maps files read-only, with a portable
// read-all fallback. It exists for one purpose: letting a spilled
// release's summed-area table be served straight from the page cache,
// so the paper's constant-time query evaluation (§V — every range-count
// is O(2^d) lookups into the precomputed table) survives eviction and
// restart without re-paying the O(domain) decode + prefix-sum rebuild.
// A mapped release's resident cost is the pages queries actually touch,
// and the kernel reclaims them under memory pressure — the store's
// MaxResident budget stops being the hard ceiling on how many tenants
// can be served at once.
//
// Lifetime is finalizer-managed: Open sets a finalizer that unmaps when
// the File becomes unreachable. Callers that hand out views of Data()
// must keep the File reachable from those views (matrix.Wrap's pin does
// exactly this), which makes use-after-unmap unrepresentable without an
// explicit Close to misuse.
package mmapfile

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// File is a read-only view of a file's contents — either a memory
// mapping or an aligned heap copy. The zero value is an empty file.
type File struct {
	data   []byte
	mapped bool
}

// Open returns path's contents, memory-mapped where the platform
// supports it and falling back to ReadAll where it does not (or where
// the map call itself fails). The returned bytes are read-only in
// either case: mutating them is undefined (a true mapping will fault).
func Open(path string) (*File, error) {
	return openOS(path)
}

// ReadAll loads path into an 8-byte-aligned heap buffer — the portable
// path, and the explicit choice for callers that want the bytes off the
// page cache's leash. Alignment is guaranteed so downstream zero-copy
// float64 casts (codec.DecodeMapped) work identically on both paths.
func ReadAll(path string) (*File, error) {
	return readAll(path)
}

// Data returns the file contents. The slice must be treated as
// read-only and must not outlive every reference to f (keep f pinned,
// e.g. via matrix.Wrap).
func (f *File) Data() []byte { return f.data }

// Mapped reports whether Data is a true memory mapping (resident cost
// accrues to the page cache) as opposed to a heap copy.
func (f *File) Mapped() bool { return f.mapped }

// Size returns the content length in bytes.
func (f *File) Size() int { return len(f.data) }

// readAll implements the portable path: the whole file copied into a
// float64-backed buffer, which the Go allocator guarantees is 8-byte
// aligned.
func readAll(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size != int64(int(size)) || size < 0 {
		return nil, fmt.Errorf("mmapfile: %s: size %d not addressable", path, size)
	}
	if size == 0 {
		return &File{}, nil
	}
	words := make([]float64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(fh, buf); err != nil {
		return nil, fmt.Errorf("mmapfile: %s: %w", path, err)
	}
	return &File{data: buf}, nil
}
