package hay

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPublishValidation(t *testing.T) {
	if _, err := Publish(context.Background(), nil, 1, 0); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Publish(context.Background(), []float64{1}, 0, 0); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := Publish(context.Background(), []float64{1}, -2, 0); err == nil {
		t.Error("negative epsilon should fail")
	}
}

func TestPublishShapeAndAccounting(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	res, err := Publish(context.Background(), v, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histogram) != 8 {
		t.Fatalf("histogram length %d", len(res.Histogram))
	}
	if res.Height != 4 { // log2(8)+1
		t.Errorf("Height = %d, want 4", res.Height)
	}
	if res.Magnitude != 8 { // 2·height/ε
		t.Errorf("Magnitude = %v, want 8", res.Magnitude)
	}
	if res.Epsilon != 1 {
		t.Errorf("Epsilon echo = %v", res.Epsilon)
	}
}

func TestPublishNonPowerOfTwoLength(t *testing.T) {
	v := []float64{2, 4, 6}
	res, err := Publish(context.Background(), v, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Histogram) != 3 {
		t.Fatalf("histogram length %d, want 3", len(res.Histogram))
	}
	for i, want := range v {
		if math.Abs(res.Histogram[i]-want) > 1e-3 {
			t.Errorf("histogram[%d] = %v, want ~%v", i, res.Histogram[i], want)
		}
	}
}

func TestPublishNearNoiseless(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	res, err := Publish(context.Background(), v, 1e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range v {
		if math.Abs(res.Histogram[i]-want) > 1e-3 {
			t.Errorf("histogram[%d] = %v, want ~%v", i, res.Histogram[i], want)
		}
	}
}

func TestConsistentTreeInvariant(t *testing.T) {
	// After Consistent, parent = sum(children) exactly, at every node.
	r := rng.New(5)
	const m = 16
	noisy := make([]float64, 2*m)
	for k := 1; k < 2*m; k++ {
		noisy[k] = r.Float64()*10 - 5
	}
	x := Consistent(noisy, m)
	for k := 1; k < m; k++ {
		if math.Abs(x[k]-(x[2*k]+x[2*k+1])) > 1e-9 {
			t.Fatalf("node %d inconsistent: %v vs %v+%v", k, x[k], x[2*k], x[2*k+1])
		}
	}
}

func TestConsistentIsIdentityOnConsistentInput(t *testing.T) {
	// A tree that is already consistent must pass through unchanged.
	const m = 8
	r := rng.New(6)
	tree := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		tree[m+i] = math.Floor(r.Float64() * 10)
	}
	for k := m - 1; k >= 1; k-- {
		tree[k] = tree[2*k] + tree[2*k+1]
	}
	x := Consistent(tree, m)
	for k := 1; k < 2*m; k++ {
		if math.Abs(x[k]-tree[k]) > 1e-9 {
			t.Fatalf("Consistent changed node %d: %v -> %v", k, tree[k], x[k])
		}
	}
}

func TestConsistencyReducesLeafError(t *testing.T) {
	// The whole point of the mechanism: consistency post-processing
	// lowers mean squared leaf error relative to using the noisy leaves
	// alone. Check on average over trials.
	r := rng.New(7)
	const m = 64
	const trials = 300
	truth := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		truth[m+i] = math.Floor(r.Float64() * 20)
	}
	for k := m - 1; k >= 1; k-- {
		truth[k] = truth[2*k] + truth[2*k+1]
	}
	var rawErr, conErr float64
	noisy := make([]float64, 2*m)
	for trial := 0; trial < trials; trial++ {
		for k := 1; k < 2*m; k++ {
			noisy[k] = truth[k] + r.Laplace(2)
		}
		x := Consistent(noisy, m)
		for i := m; i < 2*m; i++ {
			rawErr += (noisy[i] - truth[i]) * (noisy[i] - truth[i])
			conErr += (x[i] - truth[i]) * (x[i] - truth[i])
		}
	}
	if conErr >= rawErr {
		t.Fatalf("consistency did not reduce leaf error: %v vs %v", conErr, rawErr)
	}
}

func TestIntervalCount(t *testing.T) {
	const m = 16
	r := rng.New(8)
	tree := make([]float64, 2*m)
	leaves := make([]float64, m)
	for i := 0; i < m; i++ {
		leaves[i] = math.Floor(r.Float64() * 9)
		tree[m+i] = leaves[i]
	}
	for k := m - 1; k >= 1; k-- {
		tree[k] = tree[2*k] + tree[2*k+1]
	}
	for lo := 0; lo < m; lo++ {
		for hi := lo; hi < m; hi++ {
			want := 0.0
			for i := lo; i <= hi; i++ {
				want += leaves[i]
			}
			got, err := IntervalCount(tree, m, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("IntervalCount(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
	if _, err := IntervalCount(tree, m, -1, 3); err == nil {
		t.Error("negative lo should fail")
	}
	if _, err := IntervalCount(tree, m, 3, 16); err == nil {
		t.Error("hi out of range should fail")
	}
	if _, err := IntervalCount(tree, m, 5, 4); err == nil {
		t.Error("lo > hi should fail")
	}
}

func TestPublishDeterminism(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	a, err := Publish(context.Background(), v, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Publish(context.Background(), v, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Histogram {
		if a.Histogram[i] != b.Histogram[i] {
			t.Fatal("same seed produced different releases")
		}
	}
}

// Property: total of the consistent histogram equals the consistent root.
func TestRootEqualsTotalQuick(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		m := 1 << (sizeRaw%5 + 1) // 2..32
		r := rng.New(seed)
		noisy := make([]float64, 2*m)
		for k := 1; k < 2*m; k++ {
			noisy[k] = r.Float64()*8 - 4
		}
		x := Consistent(noisy, m)
		total := 0.0
		for i := m; i < 2*m; i++ {
			total += x[i]
		}
		return math.Abs(total-x[1]) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
