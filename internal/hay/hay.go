// Package hay implements the hierarchical mechanism of Hay, Rastogi,
// Miklau and Suciu, "Boosting the accuracy of differentially-private
// queries through consistency" (the paper's §VIII discusses it as the
// closest independent work; it matches Privelet's polylog bound but only
// for one-dimensional data).
//
// The mechanism materializes a complete binary interval tree over a
// one-dimensional frequency vector (padded to a power of two), publishes
// every node count with Laplace noise of magnitude h/ε — a tuple change
// touches one node per level, so the tree's sensitivity is the height
// h = log₂(m)+1 — and then post-processes the noisy tree into the
// minimum-L2 consistent tree with the standard two-pass closed form:
//
//	upward:  z[v] = (f^l − f^(l−1))/(f^l − 1) · y[v]
//	               + (f^(l−1) − 1)/(f^l − 1) · Σ z[children]
//	downward: x[v] = z[v] + (x[parent] − Σ z[siblings incl. v])/f
//
// with fanout f = 2 and l = number of levels below v (leaves have l = 1).
// The leaves of the consistent tree form the released histogram; interval
// queries can also be answered directly from at most 2·log₂(m) node
// counts.
//
// This package is an extension beyond the Privelet paper's own
// experiments; the benchmark suite compares it against Privelet on 1-D
// data (BenchmarkExtensionHay1D).
package hay

import (
	"context"
	"fmt"
	"math"

	"repro/internal/haar"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// Result is a released one-dimensional histogram with its privacy
// accounting.
type Result struct {
	// Histogram is the consistent released histogram (original, unpadded
	// length).
	Histogram []float64
	// Epsilon echoes the privacy budget.
	Epsilon float64
	// Magnitude is the per-node Laplace magnitude h/ε.
	Magnitude float64
	// Height is the tree height log₂(m)+1 on the padded domain.
	Height int
}

// Publish releases v under ε-differential privacy with the hierarchical
// consistency mechanism. The input is not modified. A cancelled ctx
// aborts before the noisy tree is built; the mechanism itself is O(m)
// and runs to completion once started.
func Publish(ctx context.Context, v []float64, epsilon float64, seed uint64) (*Result, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("hay: epsilon must be positive, got %v", epsilon)
	}
	if len(v) == 0 {
		return nil, fmt.Errorf("hay: empty input")
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	m := haar.NextPowerOfTwo(len(v))
	padded := make([]float64, m)
	copy(padded, v)
	levels := haar.Log2(m) + 1 // tree height: root..leaves

	// tree[1] is the root; node k has children 2k, 2k+1; leaves occupy
	// [m, 2m). tree[k] = exact count of the node's interval.
	tree := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		tree[m+i] = padded[i]
	}
	for k := m - 1; k >= 1; k-- {
		tree[k] = tree[2*k] + tree[2*k+1]
	}

	// A tuple change alters one node per level: sensitivity = levels.
	// (The paper's frequency-matrix convention counts a tuple *change*
	// as two unit edits; we follow Hay et al.'s add/remove convention
	// here and calibrate to the same 2·levels/ε total via Lambda with
	// rho = levels, matching the Privelet calibration convention used
	// elsewhere in this repository.)
	magnitude, err := privacy.Lambda(epsilon, float64(levels))
	if err != nil {
		return nil, err
	}
	src := rng.New(seed)
	noisy := make([]float64, 2*m)
	for k := 1; k < 2*m; k++ {
		noisy[k] = tree[k] + src.Laplace(magnitude)
	}

	consistent := Consistent(noisy, m)
	hist := make([]float64, len(v))
	copy(hist, consistent[m:m+len(v)])
	return &Result{
		Histogram: hist,
		Epsilon:   epsilon,
		Magnitude: magnitude,
		Height:    levels,
	}, nil
}

// Consistent computes the minimum-L2 tree consistent with the noisy
// binary tree (heap layout, root at 1, m leaves). It returns a new tree
// slice; the input is not modified.
func Consistent(noisy []float64, m int) []float64 {
	// Upward pass: z[v] combines the node's own noisy count with its
	// children's z-estimates using the closed-form weights for fanout 2.
	z := make([]float64, 2*m)
	for i := 0; i < m; i++ {
		z[m+i] = noisy[m+i]
	}
	// l = levels below v, leaves have l = 1. Weight for fanout 2:
	//   z[v] = (2^l − 2^(l−1))/(2^l − 1)·y[v] + (2^(l−1) − 1)/(2^l − 1)·(z[2v]+z[2v+1])
	for k := m - 1; k >= 1; k-- {
		l := levelsBelow(k, m)
		pow := math.Pow(2, float64(l))
		powPrev := pow / 2
		wSelf := (pow - powPrev) / (pow - 1)
		wKids := (powPrev - 1) / (pow - 1)
		z[k] = wSelf*noisy[k] + wKids*(z[2*k]+z[2*k+1])
	}
	// Downward pass: distribute each node's residual equally to its
	// children so parent = sum(children) holds exactly.
	x := make([]float64, 2*m)
	x[1] = z[1]
	for k := 1; k < m; k++ {
		diff := (x[k] - z[2*k] - z[2*k+1]) / 2
		x[2*k] = z[2*k] + diff
		x[2*k+1] = z[2*k+1] + diff
	}
	return x
}

// levelsBelow returns the number of tree levels at or below node k
// (leaves have 1) in a heap-layout tree with m leaves. The depth of heap
// node k is floor(log₂k)+1, i.e. its bit length.
func levelsBelow(k, m int) int {
	total := haar.Log2(m) + 1
	return total - bitsLen(k) + 1
}

func bitsLen(k int) int {
	n := 0
	for k > 0 {
		k >>= 1
		n++
	}
	return n
}

// VarianceBound returns an analytic worst-case noise variance for any
// interval query answered from a released histogram over a padded domain
// of size m. A consistent tree satisfies parent = Σ children exactly, so
// summing histogram entries over an interval equals summing its ≤
// 2·log₂(m) dyadic-decomposition nodes; each node's consistent estimate
// has variance at most that of its raw noisy count, 2·(2h/ε)², giving
//
//	Var ≤ 2·log₂(m) · 2·(2h/ε)²   (h = log₂(m)+1)
//
// Consistency post-processing only lowers per-node variance, so the
// bound is conservative. It matches Privelet's polylog profile, as §VIII
// of the wavelet paper notes for the 1-D case.
func VarianceBound(epsilon float64, m int) float64 {
	if epsilon <= 0 || m <= 0 {
		return math.Inf(1)
	}
	padded := haar.NextPowerOfTwo(m)
	levels := float64(haar.Log2(padded) + 1)
	lambda := 2 * levels / epsilon
	nodes := 2 * float64(haar.Log2(padded))
	if nodes < 1 {
		nodes = 1 // m = 1: the single root node
	}
	return nodes * 2 * lambda * lambda
}

// IntervalCount answers an inclusive interval query [lo, hi] from a
// consistent tree without materializing the histogram, using the canonical
// O(log m) dyadic decomposition.
func IntervalCount(tree []float64, m, lo, hi int) (float64, error) {
	if lo < 0 || hi >= m || lo > hi {
		return 0, fmt.Errorf("hay: interval [%d,%d] invalid for m=%d", lo, hi, m)
	}
	total := 0.0
	l, r := lo+m, hi+m // leaf positions in heap layout
	for l <= r {
		if l%2 == 1 {
			total += tree[l]
			l++
		}
		if r%2 == 0 {
			total += tree[r]
			r--
		}
		l /= 2
		r /= 2
	}
	return total, nil
}
