package hay

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPublishKaryValidation(t *testing.T) {
	if _, err := PublishKary(nil, 1, 2, 0); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := PublishKary([]float64{1}, 0, 2, 0); err == nil {
		t.Error("epsilon 0 should fail")
	}
	if _, err := PublishKary([]float64{1}, 1, 1, 0); err == nil {
		t.Error("fanout 1 should fail")
	}
}

func TestPublishKaryNearNoiseless(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5}
	for _, f := range []int{2, 3, 4, 16} {
		res, err := PublishKary(v, 1e9, f, 7)
		if err != nil {
			t.Fatalf("fanout %d: %v", f, err)
		}
		if len(res.Histogram) != len(v) {
			t.Fatalf("fanout %d: histogram length %d", f, len(res.Histogram))
		}
		for i, want := range v {
			if math.Abs(res.Histogram[i]-want) > 1e-3 {
				t.Fatalf("fanout %d: histogram[%d] = %v, want ~%v", f, i, res.Histogram[i], want)
			}
		}
	}
}

func TestKaryHeightAndMagnitude(t *testing.T) {
	// 9 bins, fanout 3: pad to 9, levels = 3 (1, 3, 9).
	res, err := PublishKary(make([]float64, 9), 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Height != 3 {
		t.Errorf("height = %d, want 3", res.Height)
	}
	if res.Magnitude != 6 { // 2·3/1
		t.Errorf("magnitude = %v, want 6", res.Magnitude)
	}
	if res.Fanout != 3 {
		t.Errorf("fanout echo = %d", res.Fanout)
	}
}

func TestKaryMatchesBinaryAtFanout2(t *testing.T) {
	// PublishKary(f=2) and Publish share the tree shape and the noise
	// calibration; their consistency post-processing must agree on the
	// same noisy inputs. Compare via ConsistentKary vs Consistent on an
	// identical tree.
	const m = 16
	r := rng.New(5)
	heap := make([]float64, 2*m)
	for k := 1; k < 2*m; k++ {
		heap[k] = r.Float64()*10 - 5
	}
	// Convert heap layout to level slices.
	levels := 5 // 1,2,4,8,16
	slices := make([][]float64, levels)
	idx := 1
	size := 1
	for l := 0; l < levels; l++ {
		slices[l] = make([]float64, size)
		copy(slices[l], heap[idx:idx+size])
		idx += size
		size *= 2
	}
	fromKary := ConsistentKary(slices, 2)
	fromBinary := Consistent(heap, m)
	for i := 0; i < m; i++ {
		if math.Abs(fromKary[levels-1][i]-fromBinary[m+i]) > 1e-9 {
			t.Fatalf("leaf %d: k-ary %v vs binary %v", i, fromKary[levels-1][i], fromBinary[m+i])
		}
	}
}

func TestKaryConsistencyInvariant(t *testing.T) {
	r := rng.New(6)
	for _, f := range []int{2, 3, 5} {
		levels := 3
		slices := make([][]float64, levels)
		size := 1
		for l := 0; l < levels; l++ {
			slices[l] = make([]float64, size)
			for i := range slices[l] {
				slices[l][i] = r.Float64()*10 - 5
			}
			size *= f
		}
		x := ConsistentKary(slices, f)
		for l := 0; l < levels-1; l++ {
			for i := range x[l] {
				var kidSum float64
				for c := 0; c < f; c++ {
					kidSum += x[l+1][i*f+c]
				}
				if math.Abs(x[l][i]-kidSum) > 1e-9 {
					t.Fatalf("fanout %d level %d node %d inconsistent", f, l, i)
				}
			}
		}
	}
}

func TestKaryFanoutTradeoff(t *testing.T) {
	// A flatter tree (larger fanout) means fewer levels, hence smaller
	// per-node noise. For POINT queries the leaf error should therefore
	// not degrade when moving from fanout 2 (5 levels at m=16) to fanout
	// 16 (2 levels). Check mean leaf MSE over trials.
	const mSize = 256
	truth := make([]float64, mSize)
	r := rng.New(7)
	for i := range truth {
		truth[i] = math.Floor(r.Float64() * 30)
	}
	mse := func(fanout int) float64 {
		var total float64
		const trials = 120
		for trial := 0; trial < trials; trial++ {
			res, err := PublishKary(truth, 1.0, fanout, uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			for i := range truth {
				d := res.Histogram[i] - truth[i]
				total += d * d
			}
		}
		return total / float64(trials*mSize)
	}
	mse2 := mse(2)
	mse16 := mse(16)
	if mse16 > mse2 {
		t.Fatalf("fanout 16 leaf MSE %v worse than fanout 2 %v; expected shorter tree to win on point queries", mse16, mse2)
	}
}

func TestPublishKaryDeterminism(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	a, err := PublishKary(v, 1, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PublishKary(v, 1, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Histogram {
		if a.Histogram[i] != b.Histogram[i] {
			t.Fatal("same seed produced different k-ary releases")
		}
	}
}
