package hay

import (
	"fmt"
	"math"

	"repro/internal/privacy"
	"repro/internal/rng"
)

// KaryResult is a released histogram from the k-ary variant.
type KaryResult struct {
	Histogram []float64
	Epsilon   float64
	Magnitude float64
	Fanout    int
	Height    int
}

// PublishKary is Publish generalized to a complete k-ary interval tree
// (Hay et al. study the fanout as a tuning knob; k ≈ 16 often beats the
// binary tree because the tree is shorter, so each level's noise budget
// is larger, at the cost of wider dyadic decompositions).
//
// The input length is padded to the next power of k. Sensitivity is the
// tree height (one touched node per level), and the consistency
// post-processing uses the general closed form with fanout k.
func PublishKary(v []float64, epsilon float64, fanout int, seed uint64) (*KaryResult, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("hay: epsilon must be positive, got %v", epsilon)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("hay: fanout must be ≥ 2, got %d", fanout)
	}
	if len(v) == 0 {
		return nil, fmt.Errorf("hay: empty input")
	}
	m := 1
	levels := 1
	for m < len(v) {
		m *= fanout
		levels++
	}

	// tr holds one slice per level, root level first (length 1), leaves
	// last (length m).
	tr := make([][]float64, levels)
	size := 1
	for l := 0; l < levels; l++ {
		tr[l] = make([]float64, size)
		size *= fanout
	}
	copy(tr[levels-1], v)
	for l := levels - 2; l >= 0; l-- {
		for i := range tr[l] {
			var s float64
			for c := 0; c < fanout; c++ {
				s += tr[l+1][i*fanout+c]
			}
			tr[l][i] = s
		}
	}

	magnitude, err := privacy.Lambda(epsilon, float64(levels))
	if err != nil {
		return nil, err
	}
	src := rng.New(seed)
	noisy := make([][]float64, levels)
	for l := range tr {
		noisy[l] = make([]float64, len(tr[l]))
		for i, x := range tr[l] {
			noisy[l][i] = x + src.Laplace(magnitude)
		}
	}

	consistent := ConsistentKary(noisy, fanout)
	hist := make([]float64, len(v))
	copy(hist, consistent[levels-1][:len(v)])
	return &KaryResult{
		Histogram: hist,
		Epsilon:   epsilon,
		Magnitude: magnitude,
		Fanout:    fanout,
		Height:    levels,
	}, nil
}

// ConsistentKary computes the minimum-L2 consistent tree for a noisy
// k-ary level-slice tree (levels[0] = root). The input is not modified.
//
// Upward pass (l = number of levels at or below the node, leaves l = 1):
//
//	z[v] = (f^l − f^(l−1))/(f^l − 1)·y[v] + (f^(l−1) − 1)/(f^l − 1)·Σ z[children]
//
// Downward pass distributes each node's residual equally to its children.
func ConsistentKary(noisy [][]float64, fanout int) [][]float64 {
	levels := len(noisy)
	z := make([][]float64, levels)
	for l := range z {
		z[l] = make([]float64, len(noisy[l]))
	}
	copy(z[levels-1], noisy[levels-1])
	for l := levels - 2; l >= 0; l-- {
		below := levels - l // levels at or below this node
		pow := math.Pow(float64(fanout), float64(below))
		powPrev := pow / float64(fanout)
		wSelf := (pow - powPrev) / (pow - 1)
		wKids := (powPrev - 1) / (pow - 1)
		for i := range z[l] {
			var kidSum float64
			for c := 0; c < fanout; c++ {
				kidSum += z[l+1][i*fanout+c]
			}
			z[l][i] = wSelf*noisy[l][i] + wKids*kidSum
		}
	}
	x := make([][]float64, levels)
	for l := range x {
		x[l] = make([]float64, len(z[l]))
	}
	copy(x[0], z[0])
	for l := 0; l < levels-1; l++ {
		for i := range x[l] {
			var kidSum float64
			for c := 0; c < fanout; c++ {
				kidSum += z[l+1][i*fanout+c]
			}
			diff := (x[l][i] - kidSum) / float64(fanout)
			for c := 0; c < fanout; c++ {
				x[l+1][i*fanout+c] = z[l+1][i*fanout+c] + diff
			}
		}
	}
	return x
}
