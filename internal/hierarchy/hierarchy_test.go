package hierarchy

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperFigure3 builds the hierarchy of Figure 3: a root with two internal
// children, each covering three leaves (v1..v3 and v4..v6).
func paperFigure3(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildNilRoot(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("Build(nil) succeeded")
	}
}

func TestBuildNilChild(t *testing.T) {
	root := &Node{Label: "r", Children: []*Node{nil}}
	if _, err := Build(root); err == nil {
		t.Fatal("Build with nil child succeeded")
	}
}

func TestBuildSharedNode(t *testing.T) {
	shared := &Node{Label: "s"}
	root := &Node{Label: "r", Children: []*Node{shared, shared}}
	if _, err := Build(root); err == nil {
		t.Fatal("Build with shared node succeeded")
	}
}

func TestBuildUnbalanced(t *testing.T) {
	root := &Node{Label: "r", Children: []*Node{
		{Label: "leaf-shallow"},
		{Label: "mid", Children: []*Node{{Label: "leaf-deep"}}},
	}}
	if _, err := Build(root); err == nil {
		t.Fatal("Build accepted unbalanced tree")
	}
	// PadToUniformDepth must repair it.
	h, err := Build(PadToUniformDepth(root))
	if err != nil {
		t.Fatalf("Build after padding: %v", err)
	}
	if h.Height() != 3 {
		t.Fatalf("padded height = %d, want 3", h.Height())
	}
	if h.LeafCount() != 2 {
		t.Fatalf("padded leaf count = %d, want 2", h.LeafCount())
	}
	// Leaf order and labels preserved.
	if h.Leaves()[0].Label != "leaf-shallow" || h.Leaves()[1].Label != "leaf-deep" {
		t.Fatalf("padding reordered leaves: %v, %v", h.Leaves()[0].Label, h.Leaves()[1].Label)
	}
}

func TestPadAlreadyUniformIsNoop(t *testing.T) {
	root := &Node{Label: "r", Children: []*Node{{Label: "a"}, {Label: "b"}}}
	h, err := Build(PadToUniformDepth(root))
	if err != nil {
		t.Fatal(err)
	}
	if h.Height() != 2 || h.LeafCount() != 2 {
		t.Fatalf("noop pad changed shape: h=%d leaves=%d", h.Height(), h.LeafCount())
	}
}

func TestSingleLeaf(t *testing.T) {
	h, err := Build(&Node{Label: "only"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Height() != 1 || h.LeafCount() != 1 || h.NodeCount() != 1 {
		t.Fatalf("single-leaf stats wrong: height=%d leaves=%d nodes=%d",
			h.Height(), h.LeafCount(), h.NodeCount())
	}
	if !h.Root().IsLeaf() {
		t.Fatal("single-node root should be a leaf")
	}
}

func TestFigure3Shape(t *testing.T) {
	h := paperFigure3(t)
	if h.Height() != 3 {
		t.Errorf("height = %d, want 3", h.Height())
	}
	if h.LeafCount() != 6 {
		t.Errorf("leaves = %d, want 6", h.LeafCount())
	}
	if h.NodeCount() != 9 {
		t.Errorf("nodes = %d, want 9 (1 root + 2 internal + 6 leaves)", h.NodeCount())
	}
	if h.InternalCount() != 3 {
		t.Errorf("internal = %d, want 3", h.InternalCount())
	}
}

func TestLevelOrderIDs(t *testing.T) {
	h := paperFigure3(t)
	for i, n := range h.Nodes() {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
	}
	// Root is ID 0; its children are IDs 1 and 2; leaves are 3..8.
	if h.Nodes()[0] != h.Root() {
		t.Error("nodes[0] is not the root")
	}
	if h.Nodes()[1].Parent != h.Root() || h.Nodes()[2].Parent != h.Root() {
		t.Error("IDs 1,2 are not the root's children")
	}
	for i := 3; i <= 8; i++ {
		if !h.Nodes()[i].IsLeaf() {
			t.Errorf("node %d should be a leaf", i)
		}
	}
}

func TestLeafIntervals(t *testing.T) {
	h := paperFigure3(t)
	root := h.Root()
	if lo, hi := h.LeafInterval(root); lo != 0 || hi != 5 {
		t.Errorf("root interval = [%d,%d], want [0,5]", lo, hi)
	}
	left, right := root.Children[0], root.Children[1]
	if lo, hi := h.LeafInterval(left); lo != 0 || hi != 2 {
		t.Errorf("left interval = [%d,%d], want [0,2]", lo, hi)
	}
	if lo, hi := h.LeafInterval(right); lo != 3 || hi != 5 {
		t.Errorf("right interval = [%d,%d], want [3,5]", lo, hi)
	}
	for i, leaf := range h.Leaves() {
		if lo, hi := h.LeafInterval(leaf); lo != i || hi != i {
			t.Errorf("leaf %d interval = [%d,%d]", i, lo, hi)
		}
	}
}

func TestDepths(t *testing.T) {
	h := paperFigure3(t)
	if h.Root().Depth != 1 {
		t.Errorf("root depth = %d, want 1", h.Root().Depth)
	}
	for _, c := range h.Root().Children {
		if c.Depth != 2 {
			t.Errorf("internal depth = %d, want 2", c.Depth)
		}
	}
	for _, l := range h.Leaves() {
		if l.Depth != 3 {
			t.Errorf("leaf depth = %d, want 3", l.Depth)
		}
	}
}

func TestFanoutAndLeafCount(t *testing.T) {
	h := paperFigure3(t)
	if f := h.Root().Fanout(); f != 2 {
		t.Errorf("root fanout = %d, want 2", f)
	}
	if f := h.Root().Children[0].Fanout(); f != 3 {
		t.Errorf("group fanout = %d, want 3", f)
	}
	if c := h.Root().LeafCount(); c != 6 {
		t.Errorf("root leaf count = %d, want 6", c)
	}
	if c := h.Root().Children[1].LeafCount(); c != 3 {
		t.Errorf("group leaf count = %d, want 3", c)
	}
}

func TestFlat(t *testing.T) {
	h, err := Flat(5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Height() != 2 || h.LeafCount() != 5 || h.InternalCount() != 1 {
		t.Fatalf("Flat(5): height=%d leaves=%d internal=%d", h.Height(), h.LeafCount(), h.InternalCount())
	}
	if _, err := Flat(0); err == nil {
		t.Error("Flat(0) should fail")
	}
	if _, err := Flat(-3); err == nil {
		t.Error("Flat(-3) should fail")
	}
}

func TestThreeLevelShapeErrors(t *testing.T) {
	if _, err := ThreeLevel(0, 4); err == nil {
		t.Error("ThreeLevel(0,4) should fail")
	}
	if _, err := ThreeLevel(4, 0); err == nil {
		t.Error("ThreeLevel(4,0) should fail")
	}
}

func TestFromFanouts(t *testing.T) {
	h, err := FromFanouts(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Height() != 4 {
		t.Errorf("height = %d, want 4", h.Height())
	}
	if h.LeafCount() != 24 {
		t.Errorf("leaves = %d, want 24", h.LeafCount())
	}
	// Node count: 1 + 2 + 6 + 24 = 33.
	if h.NodeCount() != 33 {
		t.Errorf("nodes = %d, want 33", h.NodeCount())
	}
	if _, err := FromFanouts(); err == nil {
		t.Error("FromFanouts() should fail")
	}
	if _, err := FromFanouts(2, 0); err == nil {
		t.Error("FromFanouts(2,0) should fail")
	}
}

func TestFind(t *testing.T) {
	h := paperFigure3(t)
	if n := h.Find("g1"); n == nil || n.Fanout() != 3 {
		t.Error("Find(g1) failed")
	}
	if n := h.Find("v5"); n == nil || !n.IsLeaf() {
		t.Error("Find(v5) failed")
	}
	if n := h.Find("nope"); n != nil {
		t.Error("Find(nope) should be nil")
	}
}

func TestStringRendering(t *testing.T) {
	h := paperFigure3(t)
	s := h.String()
	if !strings.Contains(s, "Any") || !strings.Contains(s, "[leaves 0..5]") {
		t.Errorf("String() missing expected content:\n%s", s)
	}
	if !strings.Contains(s, "[leaf 0]") {
		t.Errorf("String() missing leaf annotation:\n%s", s)
	}
}

func TestCountriesExample(t *testing.T) {
	// The paper's Figure 1: Any → {North America, South America} →
	// countries. Leaf intervals under each continent must be contiguous.
	root := &Node{Label: "Any", Children: []*Node{
		{Label: "North America", Children: []*Node{
			{Label: "USA"}, {Label: "Canada"},
		}},
		{Label: "South America", Children: []*Node{
			{Label: "Brazil"}, {Label: "Argentina"},
		}},
	}}
	h, err := Build(root)
	if err != nil {
		t.Fatal(err)
	}
	na := h.Find("North America")
	if lo, hi := h.LeafInterval(na); lo != 0 || hi != 1 {
		t.Errorf("North America = [%d,%d], want [0,1]", lo, hi)
	}
	br := h.Find("Brazil")
	if lo, hi := h.LeafInterval(br); lo != 2 || hi != 2 {
		t.Errorf("Brazil = [%d,%d], want [2,2]", lo, hi)
	}
}

// Property: for any complete tree shape, every internal node's leaf
// interval is exactly the union of its children's, and children intervals
// are adjacent (contiguity of the imposed order).
func TestIntervalContiguityQuick(t *testing.T) {
	f := func(f1Raw, f2Raw uint8) bool {
		f1 := int(f1Raw%4) + 1
		f2 := int(f2Raw%5) + 1
		h, err := FromFanouts(f1, f2)
		if err != nil {
			return false
		}
		for _, n := range h.Nodes() {
			if n.IsLeaf() {
				continue
			}
			expect := n.LeafLo
			for _, c := range n.Children {
				if c.LeafLo != expect {
					return false
				}
				expect = c.LeafHi + 1
			}
			if expect != n.LeafHi+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: node count equals leaves + internals and leaves appear after
// all internals in level order for complete trees.
func TestLevelOrderStructureQuick(t *testing.T) {
	f := func(f1Raw, f2Raw uint8) bool {
		f1 := int(f1Raw%3) + 2
		f2 := int(f2Raw%3) + 2
		h, err := FromFanouts(f1, f2)
		if err != nil {
			return false
		}
		if h.NodeCount() != h.LeafCount()+h.InternalCount() {
			return false
		}
		// In a complete tree the last LeafCount IDs are exactly the leaves.
		for i, n := range h.Nodes() {
			wantLeaf := i >= h.InternalCount()
			if n.IsLeaf() != wantLeaf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
