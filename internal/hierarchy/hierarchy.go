// Package hierarchy implements the attribute hierarchies the Privelet
// paper attaches to nominal attributes (§II-A, Figure 1).
//
// A hierarchy is a rooted tree in which every leaf is a value of the
// attribute's domain and every internal node summarizes the leaves in its
// subtree. Range-count predicates on a nominal attribute select either a
// single leaf or all leaves under one internal node, which — after the
// hierarchy imposes a left-to-right total order on the leaves — is always
// a contiguous leaf interval (§V-A). The nominal wavelet transform
// (internal/nominal) is driven directly by this tree.
package hierarchy

import (
	"fmt"
	"strings"
)

// Node is one vertex of a hierarchy. Leaves carry a domain value index;
// internal nodes only aggregate. Nodes are created through the builders in
// this package so that the derived indices stay consistent.
type Node struct {
	// Label is a human-readable name ("North America", "USA").
	Label string
	// Children is nil for leaves.
	Children []*Node
	// Parent is nil for the root.
	Parent *Node

	// Leaf bookkeeping, filled in by Build: the contiguous interval
	// [LeafLo, LeafHi] of leaf positions covered by this subtree, in the
	// imposed total order. For a leaf, LeafLo == LeafHi == its position.
	LeafLo, LeafHi int
	// Depth of the node; the root has depth 1 (the paper's level 1).
	Depth int
	// ID is the node's position in a level-order traversal of the tree
	// (root = 0). The nominal wavelet coefficient vector uses this layout.
	ID int
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Fanout returns the number of children of n.
func (n *Node) Fanout() int { return len(n.Children) }

// LeafCount returns the number of leaves under n (inclusive of n if n is a
// leaf).
func (n *Node) LeafCount() int { return n.LeafHi - n.LeafLo + 1 }

// Hierarchy is a validated attribute hierarchy. Obtain one via Build or
// the shape constructors (Flat, ThreeLevel, FromFanouts).
type Hierarchy struct {
	root   *Node
	leaves []*Node // in imposed total order
	nodes  []*Node // level-order: nodes[i].ID == i
	height int     // number of levels; a root-only tree has height 1
}

// Build validates root and computes the derived structure: the imposed
// leaf order, level-order IDs, depths, and the height. It returns an error
// when the tree is malformed:
//
//   - nil root or nil child pointers;
//   - a node reachable twice (the "tree" is a DAG or has a cycle);
//   - leaves at differing depths (Equation 5 of the paper requires every
//     entry to have exactly h−1 proper ancestors, i.e. a balanced tree —
//     use PadToUniformDepth to repair);
//   - an internal node with a single child is permitted (the nominal
//     transform handles fanout-1 groups as structurally-zero coefficients)
//     but a root with zero leaves is not.
func Build(root *Node) (*Hierarchy, error) {
	if root == nil {
		return nil, fmt.Errorf("hierarchy: nil root")
	}
	h := &Hierarchy{root: root}
	seen := make(map[*Node]bool)

	// Level-order walk assigns IDs and depths and detects sharing.
	queue := []*Node{root}
	root.Depth = 1
	root.Parent = nil
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil {
			return nil, fmt.Errorf("hierarchy: nil node in tree")
		}
		if seen[n] {
			return nil, fmt.Errorf("hierarchy: node %q reachable twice (not a tree)", n.Label)
		}
		seen[n] = true
		n.ID = len(h.nodes)
		h.nodes = append(h.nodes, n)
		if n.Depth > h.height {
			h.height = n.Depth
		}
		for _, c := range n.Children {
			if c == nil {
				return nil, fmt.Errorf("hierarchy: node %q has a nil child", n.Label)
			}
			c.Parent = n
			c.Depth = n.Depth + 1
			queue = append(queue, c)
		}
	}

	// Depth-first walk orders the leaves and assigns leaf intervals.
	var assign func(n *Node) error
	assign = func(n *Node) error {
		if n.IsLeaf() {
			if n.Depth != h.height {
				return fmt.Errorf("hierarchy: leaf %q at depth %d but height is %d (unbalanced; use PadToUniformDepth)",
					n.Label, n.Depth, h.height)
			}
			n.LeafLo = len(h.leaves)
			n.LeafHi = n.LeafLo
			h.leaves = append(h.leaves, n)
			return nil
		}
		n.LeafLo = len(h.leaves)
		for _, c := range n.Children {
			if err := assign(c); err != nil {
				return err
			}
		}
		n.LeafHi = len(h.leaves) - 1
		if n.LeafHi < n.LeafLo {
			return fmt.Errorf("hierarchy: internal node %q has no leaves", n.Label)
		}
		return nil
	}
	if err := assign(root); err != nil {
		return nil, err
	}
	if len(h.leaves) == 0 {
		return nil, fmt.Errorf("hierarchy: no leaves")
	}
	return h, nil
}

// Root returns the root node.
func (h *Hierarchy) Root() *Node { return h.root }

// Height returns the number of levels in the tree. The paper's utility
// bound for the nominal transform is O(h²/ε²) in this value (§V-C).
func (h *Hierarchy) Height() int { return h.height }

// Leaves returns the leaves in the imposed total order. The slice is owned
// by the hierarchy; callers must not modify it.
func (h *Hierarchy) Leaves() []*Node { return h.leaves }

// LeafCount returns the domain size |A|.
func (h *Hierarchy) LeafCount() int { return len(h.leaves) }

// Nodes returns all nodes in level order (root first). The slice is owned
// by the hierarchy; callers must not modify it.
func (h *Hierarchy) Nodes() []*Node { return h.nodes }

// NodeCount returns the total number of nodes, which is also the number of
// coefficients produced by the nominal wavelet transform (§V-A notes the
// transform is over-complete by the number of internal nodes).
func (h *Hierarchy) NodeCount() int { return len(h.nodes) }

// InternalCount returns the number of internal (non-leaf) nodes.
func (h *Hierarchy) InternalCount() int { return len(h.nodes) - len(h.leaves) }

// Find returns the first node with the given label in level order, or nil.
func (h *Hierarchy) Find(label string) *Node {
	for _, n := range h.nodes {
		if n.Label == label {
			return n
		}
	}
	return nil
}

// LeafInterval returns the contiguous interval of leaf positions covered
// by the subtree of node, in the imposed total order. This is how a
// nominal predicate "A ∈ subtree(N)" becomes an ordinal range.
func (h *Hierarchy) LeafInterval(node *Node) (lo, hi int) {
	return node.LeafLo, node.LeafHi
}

// String renders the tree with indentation, for debugging and examples.
func (h *Hierarchy) String() string {
	var b strings.Builder
	var walk func(n *Node)
	walk = func(n *Node) {
		b.WriteString(strings.Repeat("  ", n.Depth-1))
		if n.Label == "" {
			fmt.Fprintf(&b, "#%d", n.ID)
		} else {
			b.WriteString(n.Label)
		}
		if n.IsLeaf() {
			fmt.Fprintf(&b, " [leaf %d]", n.LeafLo)
		} else {
			fmt.Fprintf(&b, " [leaves %d..%d]", n.LeafLo, n.LeafHi)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.root)
	return b.String()
}

// Flat returns a two-level hierarchy: a root whose children are n leaves
// labeled "v0".."v(n-1)". This is the natural hierarchy for a nominal
// attribute without published structure (e.g. Gender with h = 2 in the
// paper's Table III).
func Flat(n int) (*Hierarchy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hierarchy: Flat requires n > 0, got %d", n)
	}
	root := &Node{Label: "Any"}
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, &Node{Label: fmt.Sprintf("v%d", i)})
	}
	return Build(root)
}

// ThreeLevel returns a three-level hierarchy with the given number of
// groups, each holding leavesPerGroup leaves — the shape of the paper's
// Occupation attribute (h = 3) and of the synthetic datasets in §VII-B.
func ThreeLevel(groups, leavesPerGroup int) (*Hierarchy, error) {
	if groups <= 0 || leavesPerGroup <= 0 {
		return nil, fmt.Errorf("hierarchy: ThreeLevel requires positive shape, got %d×%d", groups, leavesPerGroup)
	}
	root := &Node{Label: "Any"}
	leaf := 0
	for g := 0; g < groups; g++ {
		grp := &Node{Label: fmt.Sprintf("g%d", g)}
		for l := 0; l < leavesPerGroup; l++ {
			grp.Children = append(grp.Children, &Node{Label: fmt.Sprintf("v%d", leaf)})
			leaf++
		}
		root.Children = append(root.Children, grp)
	}
	return Build(root)
}

// FromFanouts builds a complete tree whose level i (root = level 1) has
// the given fanout; len(fanouts) levels of branching produce a hierarchy
// of height len(fanouts)+1 with ∏fanouts leaves.
func FromFanouts(fanouts ...int) (*Hierarchy, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("hierarchy: FromFanouts requires at least one fanout")
	}
	for _, f := range fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("hierarchy: non-positive fanout %d", f)
		}
	}
	var grow func(depth int) *Node
	leaf := 0
	grow = func(depth int) *Node {
		n := &Node{}
		if depth == len(fanouts) {
			n.Label = fmt.Sprintf("v%d", leaf)
			leaf++
			return n
		}
		for i := 0; i < fanouts[depth]; i++ {
			n.Children = append(n.Children, grow(depth+1))
		}
		return n
	}
	root := grow(0)
	root.Label = "Any"
	return Build(root)
}

// PadToUniformDepth returns a new tree in which every leaf of root sits at
// the maximum leaf depth, by splicing chains of single-child internal
// nodes above shallow leaves. The input tree is not modified. Padding
// preserves leaf order and leaf labels; spliced nodes get empty labels.
// The result still needs Build.
func PadToUniformDepth(root *Node) *Node {
	maxDepth := 0
	var measure func(n *Node, d int)
	measure = func(n *Node, d int) {
		if len(n.Children) == 0 {
			if d > maxDepth {
				maxDepth = d
			}
			return
		}
		for _, c := range n.Children {
			measure(c, d+1)
		}
	}
	measure(root, 1)

	var clone func(n *Node, d int) *Node
	clone = func(n *Node, d int) *Node {
		out := &Node{Label: n.Label}
		if len(n.Children) == 0 {
			// Splice (maxDepth - d) chain nodes above the leaf.
			leaf := &Node{Label: n.Label}
			cur := leaf
			for i := 0; i < maxDepth-d; i++ {
				cur = &Node{Children: []*Node{cur}}
			}
			return cur
		}
		for _, c := range n.Children {
			out.Children = append(out.Children, clone(c, d+1))
		}
		return out
	}
	return clone(root, 1)
}
