package server

// Tests for the node-side cluster surface: liveness/readiness probes,
// the replication ingest endpoint, the router-minted ?id= publish
// parameter, and node identity on /stats.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestClusterHealthEndpoints: /healthz is bare liveness; /readyz on a
// constructed server reports ready with the node's name and release
// count (the not-ready window is the daemon's boot handler, exercised
// in cmd/priveletd's walkthrough).
func TestClusterHealthEndpoints(t *testing.T) {
	ts := httptest.NewServer(New(Config{NodeName: "probe-me"}).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
	var ready struct {
		Status   string `json:"status"`
		Node     string `json:"node"`
		Releases int    `json:"releases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Node != "probe-me" {
		t.Fatalf("/readyz body = %+v", ready)
	}
}

// TestClusterReplicateEndpoint: PUT /internal/replicate/{id} ingests an
// exported release byte stream; the copy answers identically, a replay
// is the idempotent 200, and garbage is a 400 that leaves no release.
func TestClusterReplicateEndpoint(t *testing.T) {
	src := startServer(t)
	sum := publish(t, src, "schema="+testSchema+"&epsilon=1&seed=11", testCSV)
	resp, err := http.Get(src.URL + "/releases/" + sum.ID + "/export")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d err %v", resp.StatusCode, err)
	}

	dst := startServer(t)
	put := func(id string, body []byte) (int, string) {
		req, err := http.NewRequest(http.MethodPut, dst.URL+"/internal/replicate/"+id, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Status string `json:"status"`
		}
		b, _ := io.ReadAll(resp.Body)
		json.Unmarshal(b, &out)
		return resp.StatusCode, out.Status
	}

	if code, status := put(sum.ID, raw); code != http.StatusCreated || status != "replicated" {
		t.Fatalf("replicate = %d/%q, want 201/replicated", code, status)
	}
	// The copy answers the same count the original does.
	for _, q := range []string{"Age=0..3", "Age=0..7", "Occ=%231"} {
		a, b := countQuery(t, src, sum.ID, q), countQuery(t, dst, sum.ID, q)
		if a != b {
			t.Fatalf("count(%s): original %v, replica %v", q, a, b)
		}
	}
	// Replayed replication is idempotent, not an error.
	if code, status := put(sum.ID, raw); code != http.StatusOK || status != "already_present" {
		t.Fatalf("replay = %d/%q, want 200/already_present", code, status)
	}
	// Garbage bytes: 400, and no phantom release appears.
	if code, _ := put("ghost", []byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("garbage replicate = %d, want 400", code)
	}
	if resp, err := http.Get(dst.URL + "/releases/ghost"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("ghost release exists after failed replicate: %d", resp.StatusCode)
		}
	}
	// Invalid target IDs are rejected up front.
	if code, _ := put("bad%2Fid%2F", raw); code != http.StatusBadRequest {
		t.Fatalf("bad id replicate = %d, want 400", code)
	}
}

// TestClusterPublishClientID: ?id= lets a router pre-place a release
// under the ID it hashed; tenant-style IDs and collisions are refused.
func TestClusterPublishClientID(t *testing.T) {
	ts := startServer(t)
	post := func(id string) (int, summary) {
		resp, err := http.Post(ts.URL+"/publish?id="+id+"&schema="+testSchema+"&epsilon=1&seed=9",
			"text/csv", strings.NewReader(testCSV))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sum summary
		json.NewDecoder(resp.Body).Decode(&sum)
		return resp.StatusCode, sum
	}
	code, sum := post("xabc123")
	if code != http.StatusCreated || sum.ID != "xabc123" {
		t.Fatalf("client-ID publish = %d id=%q, want 201/xabc123", code, sum.ID)
	}
	countQuery(t, ts, "xabc123", "Age=0..7") // servable under the client's ID
	// The same ID again is a conflict — release IDs are immutable names.
	if code, _ := post("xabc123"); code != http.StatusConflict {
		t.Fatalf("duplicate client ID = %d, want 409", code)
	}
	// Tenant-namespace IDs only come from the ledger-gated endpoint.
	if code, _ := post("alice%2F1"); code != http.StatusBadRequest {
		t.Fatalf("tenant-shaped client ID = %d, want 400", code)
	}
	// Plain publishes without ?id= still mint server-side rN IDs.
	sum2 := publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=10", testCSV)
	if !strings.HasPrefix(sum2.ID, "r") {
		t.Fatalf("minted ID = %q, want r-prefixed", sum2.ID)
	}
}

// TestClusterStatsNodeIdentity: /stats carries the node's stable
// identity — name, RFC3339 start time, uptime, version — so cluster
// /stats aggregation can label fleets.
func TestClusterStatsNodeIdentity(t *testing.T) {
	ts := httptest.NewServer(New(Config{NodeName: "stats-node"}).Handler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Node struct {
			Name      string  `json:"name"`
			StartTime string  `json:"start_time"`
			UptimeSec float64 `json:"uptime_seconds"`
			Version   string  `json:"version"`
		} `json:"node"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Node.Name != "stats-node" {
		t.Fatalf("node name = %q, want stats-node", stats.Node.Name)
	}
	if _, err := time.Parse(time.RFC3339, stats.Node.StartTime); err != nil {
		t.Fatalf("start_time %q is not RFC3339: %v", stats.Node.StartTime, err)
	}
	if stats.Node.UptimeSec < 0 || stats.Node.Version == "" {
		t.Fatalf("identity incomplete: %+v", stats.Node)
	}
	// An anonymous config still has an identity (hostname fallback).
	ts2 := startServer(t)
	resp2, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats2 struct {
		Node struct {
			Name string `json:"name"`
		} `json:"node"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&stats2); err != nil {
		t.Fatal(err)
	}
	if stats2.Node.Name == "" {
		t.Fatal("anonymous node has no identity")
	}
}
