package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/ledger"
	"repro/internal/store"
)

// startBudgetServer starts a server whose tenant endpoint enforces a
// per-tenant budget through an in-memory ledger.
func startBudgetServer(t *testing.T, budget float64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{Budget: budget}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// tenantPublish POSTs to the ledger-gated endpoint and returns the raw
// response; callers assert the status they expect.
func tenantPublish(t *testing.T, ts *httptest.Server, tenant, params, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/tenants/"+tenant+"/publish?"+params, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeTenantSummary(t *testing.T, resp *http.Response) tenantSummary {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("tenant publish status %d: %s", resp.StatusCode, raw)
	}
	var sum tenantSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

func fetchBudget(t *testing.T, ts *httptest.Server, tenant string) budgetView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/tenants/" + tenant + "/budget")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("budget status %d: %s", resp.StatusCode, raw)
	}
	var bv budgetView
	if err := json.NewDecoder(resp.Body).Decode(&bv); err != nil {
		t.Fatal(err)
	}
	return bv
}

// refusal is the typed 429 body of an exhausted budget.
type refusal struct {
	Error     string  `json:"error"`
	Code      string  `json:"code"`
	Tenant    string  `json:"tenant"`
	Budget    float64 `json:"budget"`
	Spent     float64 `json:"spent"`
	Remaining float64 `json:"remaining"`
}

func decodeRefusal(t *testing.T, resp *http.Response) refusal {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	var r refusal
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestLedgerTenantPublish covers the happy path: epochs get versioned
// "<tenant>/<epoch>" IDs, the summary carries the remaining budget, and
// the stored release is queryable through the existing release
// endpoints with the slash URL-encoded (%2F stays inside one path
// segment under Go's segment-wise ServeMux unescaping).
func TestLedgerTenantPublish(t *testing.T) {
	ts := startBudgetServer(t, 1)
	sum := decodeTenantSummary(t, tenantPublish(t, ts, "alice", "schema="+testSchema+"&epsilon=0.4&seed=1", testCSV))
	if sum.ID != "alice/1" || sum.Tenant != "alice" || sum.Epoch != 1 {
		t.Fatalf("first epoch summary = %+v", sum)
	}
	if sum.Remaining == nil || *sum.Remaining != 0.6 {
		t.Fatalf("budget_remaining = %v, want 0.6", sum.Remaining)
	}
	sum = decodeTenantSummary(t, tenantPublish(t, ts, "alice", "schema="+testSchema+"&epsilon=0.4&seed=2", testCSV))
	if sum.ID != "alice/2" {
		t.Fatalf("second epoch ID = %q, want alice/2", sum.ID)
	}

	// The versioned release answers queries like any other; the slash in
	// the ID rides in the URL as %2F.
	resp, err := http.Get(ts.URL + "/releases/alice%2F1/count?q=" + testCountQ)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("escaped-slash count status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Count float64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	bv := fetchBudget(t, ts, "alice")
	if !bv.Finite || bv.Spent != 0.8 || bv.Remaining == nil || *bv.Remaining != 0.2 || bv.Epoch != 2 {
		t.Fatalf("budget view = %+v", bv)
	}
	if want := []string{"alice/1", "alice/2"}; len(bv.Epochs) != 2 || bv.Epochs[0] != want[0] || bv.Epochs[1] != want[1] {
		t.Fatalf("epochs = %v, want %v", bv.Epochs, want)
	}
}

const testCountQ = "Age=0..7"

// TestLedgerExhaustion429 is the HTTP refusal contract: the first
// over-budget publish — and every retry — gets a typed 429 whose body
// names the code and the exact balance, never a 500, and the refusal
// does not consume budget or epochs.
func TestLedgerExhaustion429(t *testing.T) {
	ts := startBudgetServer(t, 0.5)
	for seed := 1; seed <= 2; seed++ {
		decodeTenantSummary(t, tenantPublish(t, ts, "bob", fmt.Sprintf("schema=%s&epsilon=0.2&seed=%d", testSchema, seed), testCSV))
	}
	for try := 0; try < 3; try++ { // refusals never flicker into acceptance
		r := decodeRefusal(t, tenantPublish(t, ts, "bob", "schema="+testSchema+"&epsilon=0.2", testCSV))
		if r.Code != "budget_exhausted" || r.Tenant != "bob" {
			t.Fatalf("try %d: refusal = %+v", try, r)
		}
		if r.Budget != 0.5 || r.Spent != 0.4 || r.Remaining != 0.1 {
			t.Fatalf("try %d: balance = %+v, want 0.5/0.4/0.1", try, r)
		}
	}
	// A smaller publish that still fits is accepted after the refusals.
	sum := decodeTenantSummary(t, tenantPublish(t, ts, "bob", "schema="+testSchema+"&epsilon=0.1&seed=9", testCSV))
	if sum.ID != "bob/3" || sum.Remaining == nil || *sum.Remaining != 0 {
		t.Fatalf("fitting publish after refusals = %+v", sum)
	}
}

// TestLedgerTenantErrorPaths: malformed tenants and parameters are 400s
// that never touch the ledger, and a failed ingest refunds its charge.
func TestLedgerTenantErrorPaths(t *testing.T) {
	ts := startBudgetServer(t, 1)
	cases := []struct {
		tenant, params, body string
	}{
		{".hidden", "schema=" + testSchema, testCSV},           // bad tenant name
		{"carol", "", testCSV},                                 // missing schema
		{"carol", "schema=" + testSchema + "&epsilon=x", ""},   // bad epsilon
		{"carol", "schema=" + testSchema + "&sa=NoSuch", ""},   // bad SA
		{"carol", "schema=" + testSchema + "&mechanism=?", ""}, // bad mechanism
	}
	for _, tc := range cases {
		resp := tenantPublish(t, ts, tc.tenant, tc.params, tc.body)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("tenant %q params %q: status %d, want 400", tc.tenant, tc.params, resp.StatusCode)
		}
	}
	if bv := fetchBudget(t, ts, "carol"); bv.Spent != 0 || bv.Epoch != 0 {
		t.Fatalf("malformed requests touched the budget: %+v", bv)
	}

	// A charge taken and then lost to a bad body comes straight back.
	resp := tenantPublish(t, ts, "carol", "schema="+testSchema+"&epsilon=0.4", "not,a\nvalid csv")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad CSV status %d, want 400", resp.StatusCode)
	}
	if bv := fetchBudget(t, ts, "carol"); bv.Spent != 0 {
		t.Fatalf("failed ingest leaked budget: %+v", bv)
	}
}

// TestLedgerUnlimitedBudgetView: with no budget configured the view
// marks the tenant infinite and omits the unrepresentable fields rather
// than failing to marshal +Inf.
func TestLedgerUnlimitedBudgetView(t *testing.T) {
	ts := startServer(t) // Config zero value: unlimited budget
	decodeTenantSummary(t, tenantPublish(t, ts, "dave", "schema="+testSchema+"&epsilon=0.4&seed=1", testCSV))
	bv := fetchBudget(t, ts, "dave")
	if bv.Finite || bv.Budget != nil || bv.Remaining != nil {
		t.Fatalf("unlimited view = %+v", bv)
	}
	if bv.Spent != 0.4 || bv.Epoch != 1 {
		t.Fatalf("unlimited spend tracking = %+v", bv)
	}
	// A tenant that never published is a fresh account, not a 404.
	if bv := fetchBudget(t, ts, "nobody"); bv.Spent != 0 || len(bv.Epochs) != 0 {
		t.Fatalf("fresh tenant view = %+v", bv)
	}
}

// TestLedgerHTTPRestartRecovery is the restart test over all three
// moving parts at once: store spill dir, ledger dir, and the HTTP
// surface. After N epochs the daemon is rebuilt on the same
// directories; the recovered balance and epoch list are bit-identical
// and the over-budget publish is still refused.
func TestLedgerHTTPRestartRecovery(t *testing.T) {
	storeDir, ledgerDir := t.TempDir(), t.TempDir()
	open := func() *httptest.Server {
		st, err := store.New(store.Config{Dir: storeDir})
		if err != nil {
			t.Fatal(err)
		}
		led, err := ledger.New(ledger.Config{Dir: ledgerDir, DefaultBudget: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(New(Config{Store: st, Ledger: led}).Handler())
	}
	ts := open()
	for seed := 1; seed <= 2; seed++ {
		decodeTenantSummary(t, tenantPublish(t, ts, "erin", fmt.Sprintf("schema=%s&epsilon=0.2&seed=%d", testSchema, seed), testCSV))
	}
	decodeRefusal(t, tenantPublish(t, ts, "erin", "schema="+testSchema+"&epsilon=0.2", testCSV))
	before := fetchBudget(t, ts, "erin")
	ts.Close()

	ts = open()
	defer ts.Close()
	after := fetchBudget(t, ts, "erin")
	if after.Spent != before.Spent || *after.Remaining != *before.Remaining || after.Epoch != before.Epoch {
		t.Fatalf("recovered balance %+v, want %+v", after, before)
	}
	if len(after.Epochs) != 2 || after.Epochs[0] != "erin/1" || after.Epochs[1] != "erin/2" {
		t.Fatalf("recovered epochs = %v", after.Epochs)
	}
	// The refusal survives the restart: sequential composition is not
	// resettable by bouncing the daemon.
	r := decodeRefusal(t, tenantPublish(t, ts, "erin", "schema="+testSchema+"&epsilon=0.2", testCSV))
	if r.Remaining != 0.1 {
		t.Fatalf("post-restart refusal = %+v", r)
	}
	// The recovered epochs still answer queries.
	resp, err := http.Get(ts.URL + "/releases/erin%2F1/count?q=" + testCountQ)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered release count status %d", resp.StatusCode)
	}
}

// TestLedgerConcurrentTenantPublishes hammers one tenant from many
// goroutines: exactly budget/ε publishes may succeed, every other
// response is the typed 429, the minted epoch IDs are unique, and the
// final spend equals successes×ε to the bit.
func TestLedgerConcurrentTenantPublishes(t *testing.T) {
	ts := startBudgetServer(t, 1)
	const n = 8
	var (
		mu       sync.Mutex
		ids      = map[string]bool{}
		statuses = map[int]int{}
	)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			resp, err := http.Post(
				fmt.Sprintf("%s/tenants/frank/publish?schema=%s&epsilon=0.25&seed=%d", ts.URL, testSchema, seed),
				"text/csv", strings.NewReader(testCSV))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var sum tenantSummary
			if resp.StatusCode == http.StatusCreated {
				if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
					t.Error(err)
					return
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			mu.Lock()
			defer mu.Unlock()
			statuses[resp.StatusCode]++
			if sum.ID != "" {
				if ids[sum.ID] {
					t.Errorf("duplicate epoch ID %q", sum.ID)
				}
				ids[sum.ID] = true
			}
		}(i)
	}
	wg.Wait()
	if statuses[http.StatusCreated] != 4 || statuses[http.StatusTooManyRequests] != n-4 {
		t.Fatalf("statuses = %v, want 4×201 and %d×429", statuses, n-4)
	}
	bv := fetchBudget(t, ts, "frank")
	if bv.Spent != 1 || bv.Remaining == nil || *bv.Remaining != 0 {
		t.Fatalf("final balance = %+v, want spent exactly 1", bv)
	}
	if len(bv.Epochs) != 4 {
		t.Fatalf("stored %d epochs, want 4: %v", len(bv.Epochs), bv.Epochs)
	}
}

// TestLedgerStatsCounters: /stats nests the ledger counters under
// "ledger" while the store fields stay top-level, so pre-ledger clients
// decoding into store.Stats keep working (fetchStats does exactly that
// elsewhere in this suite).
func TestLedgerStatsCounters(t *testing.T) {
	ts := startBudgetServer(t, 0.5)
	decodeTenantSummary(t, tenantPublish(t, ts, "grace", "schema="+testSchema+"&epsilon=0.4&seed=1", testCSV))
	// One refund: a charge lost to a bad body.
	resp := tenantPublish(t, ts, "grace", "schema="+testSchema+"&epsilon=0.1", "bogus")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// One refusal.
	decodeRefusal(t, tenantPublish(t, ts, "grace", "schema="+testSchema+"&epsilon=0.2", testCSV))

	httpResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var st struct {
		store.Stats
		Ledger ledger.Stats `json:"ledger"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ledger.Charges != 2 || st.Ledger.Refunds != 1 || st.Ledger.Refusals != 1 || st.Ledger.Tenants != 1 {
		t.Fatalf("ledger stats = %+v, want 2 charges, 1 refund, 1 refusal, 1 tenant", st.Ledger)
	}
	if st.Releases != 1 || st.Shards == 0 {
		t.Fatalf("store stats lost in the nesting: %+v", st.Stats)
	}
}
