// Package server exposes releases over HTTP so analysts can query a
// published noisy matrix without the raw data (or the Go library). It is
// the thin "serving" layer a downstream deployment of Privelet needs:
// the privacy budget was spent at publish time, so the server can answer
// unlimited queries with no further accounting.
//
// Endpoints:
//
//	POST /publish?schema=...&epsilon=...&sa=...&seed=...&mechanism=...&parallelism=...
//	     body: headerless integer CSV           → {"id": "...", ...}
//	GET  /releases                              → list of release summaries
//	GET  /releases/{id}                         → one summary
//	GET  /releases/{id}/count?q=...             → {"count": ...}
//	GET  /releases/{id}/export                  → binary codec payload
//
// Query syntax (q parameter): comma-separated predicates,
//
//	Age=30..49        ordinal interval (inclusive)
//	Occupation=@g3    nominal hierarchy node (roll-up)
//	Gender=#1         nominal single leaf by position
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/query"
)

// release is one stored publication.
type release struct {
	id     string
	schema *dataset.Schema
	noisy  *matrix.Matrix
	eval   *query.Evaluator
	meta   codec.Meta
	// workers is the effective publish parallelism after clamping —
	// operational metadata only; the release values never depend on it.
	workers int
}

// Server is an in-memory release store with an HTTP front end. The zero
// value is not usable; construct with New.
type Server struct {
	mu       sync.RWMutex
	releases map[string]*release
	nextID   int
	// maxBody bounds the accepted CSV upload size.
	maxBody int64
	// parallelism is the per-publish worker default; ≤ 0 lets the core
	// engine use GOMAXPROCS.
	parallelism int
}

// New returns an empty server. maxBodyBytes bounds uploads (≤ 0 means
// the default 64 MiB).
func New(maxBodyBytes int64) *Server {
	if maxBodyBytes <= 0 {
		maxBodyBytes = 64 << 20
	}
	return &Server{
		releases: make(map[string]*release),
		maxBody:  maxBodyBytes,
	}
}

// SetParallelism sets the default worker count a publish request uses
// (≤ 0 means all cores). Releases never depend on it, so a deployment
// serving many concurrent publishers can lower it to stop requests from
// competing for every core while a single-tenant box keeps the default.
// Call before the handler starts serving.
func (s *Server) SetParallelism(p int) { s.parallelism = p }

// Handler returns the HTTP handler for the server's API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("GET /releases", s.handleList)
	mux.HandleFunc("GET /releases/{id}", s.handleGet)
	mux.HandleFunc("GET /releases/{id}/count", s.handleCount)
	mux.HandleFunc("GET /releases/{id}/export", s.handleExport)
	return mux
}

// summary is the JSON view of a release.
type summary struct {
	ID        string   `json:"id"`
	Mechanism string   `json:"mechanism"`
	Epsilon   float64  `json:"epsilon"`
	Rho       float64  `json:"rho"`
	Lambda    float64  `json:"lambda"`
	Bound     float64  `json:"variance_bound"`
	Entries   int      `json:"entries"`
	Attrs     []string `json:"attributes"`
	Workers   int      `json:"workers"`
}

func (r *release) summarize() summary {
	attrs := make([]string, r.schema.NumAttrs())
	for i := range attrs {
		attrs[i] = r.schema.Attr(i).Name
	}
	return summary{
		ID:        r.id,
		Mechanism: r.meta.Mechanism,
		Epsilon:   r.meta.Epsilon,
		Rho:       r.meta.Rho,
		Lambda:    r.meta.Lambda,
		Bound:     r.meta.Bound,
		Entries:   r.noisy.Len(),
		Attrs:     attrs,
		Workers:   r.workers,
	}
}

func (s *Server) handlePublish(w http.ResponseWriter, req *http.Request) {
	qp := req.URL.Query()
	schemaSpec := qp.Get("schema")
	if schemaSpec == "" {
		httpError(w, http.StatusBadRequest, "missing schema parameter")
		return
	}
	schema, err := cli.ParseSchema(schemaSpec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	epsilon := 1.0
	if v := qp.Get("epsilon"); v != "" {
		if epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad epsilon: "+err.Error())
			return
		}
	}
	var seed uint64
	if v := qp.Get("seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return
		}
	}
	sa := cli.SplitNonEmpty(qp.Get("sa"))
	mechanism := qp.Get("mechanism")
	if mechanism == "" {
		mechanism = "privelet+"
	}
	// Publish worker count: requests may lower it below the ceiling —
	// the operator's SetParallelism when set, capped at the machine's
	// core count — but never raise it. An omitted or non-positive
	// parameter means the ceiling itself, so ?parallelism=0 and no
	// parameter behave identically and a client cannot launder 0/-1
	// into more workers than the operator allows.
	ceiling := runtime.GOMAXPROCS(0)
	if s.parallelism > 0 && s.parallelism < ceiling {
		ceiling = s.parallelism
	}
	par := ceiling
	if v := qp.Get("parallelism"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad parallelism: "+err.Error())
			return
		}
		if p > 0 && p < ceiling {
			par = p
		}
	}

	table, err := cli.ReadTable(schema, http.MaxBytesReader(w, req.Body, s.maxBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	var noisy *matrix.Matrix
	var meta codec.Meta
	switch mechanism {
	case "privelet+":
		res, err := core.Publish(table, core.Options{Epsilon: epsilon, SA: sa, Seed: seed, Parallelism: par})
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		noisy = res.Noisy
		meta = codec.Meta{Mechanism: mechanism, Epsilon: res.Epsilon, Rho: res.Rho, Lambda: res.Lambda, Bound: res.VarianceBound}
	case "basic":
		res, err := core.Publish(table, core.Options{Epsilon: epsilon, SA: allNames(schema), Seed: seed, Parallelism: par})
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		noisy = res.Noisy
		meta = codec.Meta{Mechanism: mechanism, Epsilon: res.Epsilon, Rho: res.Rho, Lambda: res.Lambda, Bound: res.VarianceBound}
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown mechanism %q", mechanism))
		return
	}

	rel := &release{
		schema:  schema,
		noisy:   noisy,
		eval:    query.NewEvaluator(noisy),
		meta:    meta,
		workers: par,
	}
	s.mu.Lock()
	s.nextID++
	rel.id = fmt.Sprintf("r%d", s.nextID)
	s.releases[rel.id] = rel
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, rel.summarize())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	out := make([]summary, 0, len(s.releases))
	for _, r := range s.releases {
		out = append(out, r.summarize())
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, req *http.Request) *release {
	id := req.PathValue("id")
	s.mu.RLock()
	rel := s.releases[id]
	s.mu.RUnlock()
	if rel == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no release %q", id))
		return nil
	}
	return rel
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	if rel := s.lookup(w, req); rel != nil {
		writeJSON(w, http.StatusOK, rel.summarize())
	}
}

func (s *Server) handleCount(w http.ResponseWriter, req *http.Request) {
	rel := s.lookup(w, req)
	if rel == nil {
		return
	}
	q, err := ParseQuery(rel.schema, req.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	count, err := rel.eval.Count(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    count,
		"coverage": q.Coverage(),
	})
}

func (s *Server) handleExport(w http.ResponseWriter, req *http.Request) {
	rel := s.lookup(w, req)
	if rel == nil {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	payload := &codec.Payload{Meta: rel.meta, Schema: rel.schema, Noisy: rel.noisy}
	if err := codec.Encode(w, payload); err != nil {
		// Headers are already sent; nothing sane to do but log-by-status.
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// ParseQuery parses the q= syntax: comma-separated predicates of the
// forms Attr=lo..hi (ordinal), Attr=@label (hierarchy node), Attr=#leaf
// (nominal leaf index). An empty string is the full-domain query.
func ParseQuery(schema *dataset.Schema, raw string) (query.Query, error) {
	b := query.NewBuilder(schema)
	if strings.TrimSpace(raw) == "" {
		return b.Build()
	}
	for _, clause := range strings.Split(raw, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, val, ok := strings.Cut(clause, "=")
		if !ok {
			return query.Query{}, fmt.Errorf("server: predicate %q: want Attr=spec", clause)
		}
		name = strings.TrimSpace(name)
		val = strings.TrimSpace(val)
		switch {
		case strings.HasPrefix(val, "@"):
			b.Node(name, val[1:])
		case strings.HasPrefix(val, "#"):
			leaf, err := strconv.Atoi(val[1:])
			if err != nil {
				return query.Query{}, fmt.Errorf("server: predicate %q: bad leaf: %w", clause, err)
			}
			b.Leaf(name, leaf)
		default:
			loStr, hiStr, ok := strings.Cut(val, "..")
			if !ok {
				return query.Query{}, fmt.Errorf("server: predicate %q: want lo..hi, @node or #leaf", clause)
			}
			lo, err := strconv.Atoi(strings.TrimSpace(loStr))
			if err != nil {
				return query.Query{}, fmt.Errorf("server: predicate %q: bad lo: %w", clause, err)
			}
			hi, err := strconv.Atoi(strings.TrimSpace(hiStr))
			if err != nil {
				return query.Query{}, fmt.Errorf("server: predicate %q: bad hi: %w", clause, err)
			}
			b.Range(name, lo, hi)
		}
	}
	return b.Build()
}

func allNames(s *dataset.Schema) []string {
	out := make([]string, s.NumAttrs())
	for i := range out {
		out[i] = s.Attr(i).Name
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
