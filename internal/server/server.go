// Package server exposes releases over HTTP so analysts can query a
// published noisy matrix without the raw data (or the Go library). It is
// the thin "serving" layer a downstream deployment of Privelet needs:
// the privacy budget was spent at publish time (paper §III: the release
// step is where ε is consumed), so the server can answer unlimited
// queries with no further accounting.
//
// Releases live in an internal/store.Store — sharded for concurrent
// multi-tenant traffic and, when configured with a spill directory,
// bounded in memory and durable across restarts. See that package for
// the serving-model rationale.
//
// Publishing goes through the privelet mechanism registry: the publish
// endpoint's mechanism parameter selects any registered mechanism by
// name ("privelet+", "privelet", "basic", "hay", plus whatever the
// embedding process registered), the uploaded CSV is streamed straight
// into the frequency matrix (the table is never buffered), and the
// publish runs under the request context so a disconnected client
// cancels its own in-flight work.
//
// Endpoints:
//
//	POST   /publish?schema=...&epsilon=...&sa=...&seed=...&mechanism=...&parallelism=...
//	       body: headerless integer CSV           → {"id": "...", ...}
//	POST   /tenants/{tenant}/publish?schema=...   → {"id": "<tenant>/<epoch>", ...}
//	       the same publish, gated by the tenant's privacy-budget
//	       ledger: ε is debited before any noise is drawn (sequential
//	       composition across the tenant's epochs), refunded if the
//	       publish fails or the client disconnects, and an exhausted
//	       budget is refused with HTTP 429 and a typed body
//	       ({"code":"budget_exhausted", ...}) — never a 500. Each
//	       success registers a versioned release "<tenant>/<epoch>",
//	       queryable like any other (URL-encode the slash: %2F).
//	GET    /tenants/{tenant}/budget               → balance, epoch counter, epoch list
//	GET    /releases                              → list of release summaries
//	GET    /releases/{id}                         → one summary
//	DELETE /releases/{id}                         → withdraw release, delete spill file
//	GET    /releases/{id}/count?q=...             → {"count": ...}
//	POST   /releases/{id}/query?parallelism=...   → streamed answers + trailer
//	       body: workload — one query spec per line, or JSON
//	       ["spec", ...] / {"queries": [...]} with Content-Type
//	       application/json. Answers stream back in fixed-size chunks
//	       (JSON by default, one-per-line with Accept: text/csv) and end
//	       with a trailer carrying the answer count and status, so a cut
//	       stream is detectable.
//	GET    /releases/{id}/export                  → binary codec payload
//	GET    /mechanisms                            → registered mechanism names
//	GET    /stats                                 → store accounting (evictions, reloads,
//	                                                answer-cache hits/misses, ...) plus
//	                                                ledger counters (charges/refunds/refusals)
//	                                                and the node identity (name, start time,
//	                                                version) cluster aggregation keys on
//	GET    /healthz                               → liveness (process up)
//	GET    /readyz                                → readiness (store recovered, ledger loaded);
//	                                                the cluster tier's probe target
//	PUT    /internal/replicate/{id}               → replica ingest: body is an encoded release
//	                                                (the /export bytes); 200 if already present,
//	                                                410 if the ID is tombstoned (deleted here)
//	POST   /internal/repair                       → run one anti-entropy sweep, return its report
//	                                                (clustered nodes only — Config.Cluster.Repair)
//
// The /internal/* endpoints are the cluster tier's trusted surface:
// when Config.Cluster.Secret is set they require Authorization: Bearer
// with that secret (401 otherwise), and a call stamped with a stale
// X-Ring-Version is refused with a typed 409 ("stale_ring") so a peer
// routing on an outdated membership list fails loudly.
//
// A publish may carry a caller-chosen single-segment ID (?id=...) — the
// cluster router uses this, since consistent-hash placement needs the
// ID before a node is picked; a taken ID is a 409.
//
// Query syntax (the q parameter and each workload spec; internal/query's
// Parse grammar): comma-separated predicates,
//
//	Age=30..49        ordinal interval (inclusive)
//	Occupation=@g3    nominal hierarchy node (roll-up)
//	Gender=#1         nominal single leaf by position
//	Occupation=#3..5  leaf-position interval (the wire form of a roll-up)
//
// Both query endpoints run the same plan→execute pipeline
// (internal/query's Plan and Batch): the count endpoint is the
// one-query case of the batch endpoint, and batch answers are
// bit-identical (float64 ==) to issuing the same specs as sequential
// /count calls — at any ?parallelism=, streamed or buffered, cached or
// not. Both flow through the release's answer cache when the store
// enables one, so repeated dashboard traffic is served from memory
// lookups. A malformed or out-of-schema query spec is a client error
// (HTTP 400, query.ErrInvalid) on both; mid-stream failures after the
// first chunk has been flushed surface in the response trailer instead.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	privelet "repro"
	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/ledger"
	"repro/internal/query"
	"repro/internal/store"
	"repro/internal/workload"
)

// Config configures a Server.
type Config struct {
	// MaxBody bounds the accepted CSV upload size in bytes; ≤ 0 means
	// the default 64 MiB.
	MaxBody int64
	// Parallelism is the per-publish worker ceiling; ≤ 0 means
	// GOMAXPROCS. Releases never depend on it, so a deployment serving
	// many concurrent publishers can lower it to stop requests from
	// competing for every core while a single-tenant box keeps the
	// default.
	Parallelism int
	// DefaultMechanism is the registry mechanism used when a publish
	// request omits the mechanism parameter; empty means "privelet+".
	// It must name a registered mechanism (see privelet.Mechanisms).
	DefaultMechanism string
	// Store holds the releases. nil means an unbounded in-memory store;
	// inject a spillable one (store.Config{Dir, MaxResident}) to bound
	// memory and survive restarts.
	Store *store.Store
	// Ledger gates the tenant publish endpoint. nil means an in-memory
	// ledger with Budget as the per-tenant default; inject a durable one
	// (ledger.Config{Dir}) so refusals survive restarts.
	Ledger *ledger.Ledger
	// Budget is the default per-tenant ε budget for the implicit ledger
	// built when Ledger is nil; ≤ 0 means unlimited (spend is tracked,
	// never refused). Ignored when Ledger is set.
	Budget float64
	// NodeName identifies this daemon in a cluster: it is stamped on
	// /stats (so aggregated fleet stats are attributable per node) and
	// echoed by /readyz. Empty means the OS hostname.
	NodeName string
	// Cluster wires the cluster tier's node-side surface: bearer auth
	// and ring-version checks on /internal/*, and the repair trigger.
	// The zero value means "not clustered". See ClusterConfig.
	Cluster ClusterConfig
}

// Server is an HTTP front end over a release store. The zero value is
// not usable; construct with New.
type Server struct {
	store       *store.Store
	ledger      *ledger.Ledger
	maxBody     int64
	parallelism int
	defaultMech string
	// nodeName/started/version identify this daemon instance on /stats
	// and /readyz — the attribution a cluster's aggregated stats need.
	nodeName string
	started  time.Time
	version  string
	cluster  ClusterConfig
	// nextID mints release IDs; seeded past any IDs recovered from the
	// store's spill directory so a restarted daemon never collides.
	nextID atomic.Int64
}

// New returns a server over cfg.Store (or a fresh unbounded in-memory
// store when nil). A non-empty cfg.DefaultMechanism that is not
// registered panics — like http.ServeMux on a bad pattern, a
// construction-time misconfiguration should fail at startup, not as a
// 400 on every publish request.
func New(cfg Config) *Server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	if cfg.DefaultMechanism == "" {
		cfg.DefaultMechanism = "privelet+"
	}
	if _, err := privelet.MechanismByName(cfg.DefaultMechanism); err != nil {
		panic(fmt.Sprintf("server: bad Config.DefaultMechanism: %v", err))
	}
	st := cfg.Store
	if st == nil {
		// An in-memory store never reloads, but recovery/Put still build
		// evaluators; give them the same worker ceiling as publishes.
		// The implicit store answers repeated queries from the default
		// answer cache (an explicit Store chooses its own bound).
		// The store config without a Dir cannot fail.
		st, _ = store.New(store.Config{Parallelism: cfg.Parallelism, AnswerCache: store.DefaultAnswerCache})
	}
	led := cfg.Ledger
	if led == nil {
		var err error
		if led, err = ledger.New(ledger.Config{DefaultBudget: cfg.Budget}); err != nil {
			panic(fmt.Sprintf("server: bad Config.Budget: %v", err))
		}
	}
	name := cfg.NodeName
	if name == "" {
		name, _ = os.Hostname()
	}
	s := &Server{
		store: st, ledger: led, maxBody: cfg.MaxBody, parallelism: cfg.Parallelism,
		defaultMech: cfg.DefaultMechanism,
		nodeName:    name, started: time.Now(), version: buildVersion(),
		cluster: cfg.Cluster,
	}
	for _, stub := range st.List() {
		if n, ok := parseReleaseID(stub.ID); ok && n > s.nextID.Load() {
			s.nextID.Store(n)
		}
	}
	return s
}

// parseReleaseID extracts N from the server's "rN" ID scheme.
func parseReleaseID(id string) (int64, bool) {
	if !strings.HasPrefix(id, "r") {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Handler returns the HTTP handler for the server's API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", s.handlePublish)
	mux.HandleFunc("POST /tenants/{tenant}/publish", s.handleTenantPublish)
	mux.HandleFunc("GET /tenants/{tenant}/budget", s.handleTenantBudget)
	mux.HandleFunc("GET /releases", s.handleList)
	mux.HandleFunc("GET /releases/{id}", s.handleGet)
	mux.HandleFunc("DELETE /releases/{id}", s.handleDelete)
	mux.HandleFunc("GET /releases/{id}/count", s.handleCount)
	mux.HandleFunc("POST /releases/{id}/query", s.handleBatchQuery)
	mux.HandleFunc("GET /releases/{id}/export", s.handleExport)
	mux.HandleFunc("GET /mechanisms", s.handleMechanisms)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("PUT /internal/replicate/{id}", s.internalOnly(s.handleReplicate))
	if s.cluster.Repair != nil {
		mux.HandleFunc("POST /internal/repair", s.internalOnly(s.handleRepair))
	}
	return mux
}

// handleHealthz is pure liveness: the process is up and the handler
// runs. Orchestrators restart on its failure; routing decisions use
// /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: the store has recovered and the ledger is
// loaded, so every recovered release and budget is servable. By the
// time this handler is reachable, construction has completed both —
// cmd/priveletd answers 503 with a reason from its boot handler until
// then, which is the window cluster health probes are meant to catch.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ready",
		"node":     s.nodeName,
		"releases": s.store.Len(),
	})
}

// handleReplicate is the cluster tier's replica-ingest endpoint: the
// body is an encoded release (the codec wire format — the same bytes
// /export emits), stored verbatim under {id} through the store's
// decode→rebuild path. Re-pushing an existing ID answers 200 instead
// of 201: releases are immutable, so the copy is already identical and
// replication stays idempotent. The endpoint is /internal/ because it
// trusts its caller (the router) on placement — expose it only on
// networks where the routing tier lives.
func (s *Server) handleReplicate(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if err := store.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	err := s.store.Ingest(id, http.MaxBytesReader(w, req.Body, s.maxBody), s.parallelism)
	switch {
	case errors.Is(err, store.ErrDuplicate):
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "already_present"})
	case errors.Is(err, store.ErrDeleted):
		// The release was deliberately withdrawn here; replication must
		// not resurrect it. 410 tells the pusher to adopt the delete
		// (drop its own copy) instead of retrying.
		writeJSON(w, http.StatusGone, map[string]string{
			"id": id, "error": err.Error(), "code": "deleted",
		})
	case err != nil:
		// A decode failure is the pusher's fault (truncated or corrupt
		// payload), not ours.
		httpError(w, http.StatusBadRequest, err.Error())
	default:
		writeJSON(w, http.StatusCreated, map[string]string{"id": id, "status": "replicated"})
	}
}

// buildVersion reports the module version stamped into the binary, or
// "devel" for local builds — enough to tell a mixed-version fleet
// apart on aggregated stats.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// summary is the JSON view of a release.
type summary struct {
	ID        string   `json:"id"`
	Mechanism string   `json:"mechanism"`
	Epsilon   float64  `json:"epsilon"`
	Rho       float64  `json:"rho"`
	Lambda    float64  `json:"lambda"`
	Bound     float64  `json:"variance_bound"`
	Entries   int      `json:"entries"`
	Attrs     []string `json:"attributes"`
	Workers   int      `json:"workers"`
	Resident  bool     `json:"resident"`
	// HeapBytes/MappedBytes split the release's resident float64 backing
	// between process heap and memory-mapped spill-file pages — the
	// observability MaxResident tuning needs (a mapped release's true
	// cost is page-cache pages, not heap).
	HeapBytes   int64 `json:"heap_bytes"`
	MappedBytes int64 `json:"mapped_bytes"`
}

func stubSummary(st store.Stub) summary {
	return summary{
		ID:          st.ID,
		Mechanism:   st.Meta.Mechanism,
		Epsilon:     st.Meta.Epsilon,
		Rho:         st.Meta.Rho,
		Lambda:      st.Meta.Lambda,
		Bound:       st.Meta.Bound,
		Entries:     st.Entries,
		Attrs:       st.Attrs,
		Workers:     st.Workers,
		Resident:    st.Resident,
		HeapBytes:   st.HeapBytes,
		MappedBytes: st.MappedBytes,
	}
}

// publishSpec is a fully parsed and validated publish request —
// everything both publish endpoints need before reading the body, so
// the ledger-gated endpoint can price the request (params.Epsilon)
// without having done any work yet.
type publishSpec struct {
	schema *dataset.Schema
	mech   privelet.Mechanism
	params privelet.Params
}

// parsePublish validates a publish request's query parameters without
// touching the body; it writes the HTTP error itself and reports
// ok=false then. Rejecting mismatches here keeps the CSV pass — the
// request's dominant cost with streaming ingest — behind all the cheap
// checks, and (on the tenant endpoint) keeps malformed requests from
// ever touching the ledger.
func (s *Server) parsePublish(w http.ResponseWriter, req *http.Request) (publishSpec, bool) {
	qp := req.URL.Query()
	schemaSpec := qp.Get("schema")
	if schemaSpec == "" {
		httpError(w, http.StatusBadRequest, "missing schema parameter")
		return publishSpec{}, false
	}
	schema, err := cli.ParseSchema(schemaSpec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return publishSpec{}, false
	}
	epsilon := 1.0
	if v := qp.Get("epsilon"); v != "" {
		if epsilon, err = strconv.ParseFloat(v, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad epsilon: "+err.Error())
			return publishSpec{}, false
		}
	}
	var seed uint64
	if v := qp.Get("seed"); v != "" {
		if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad seed: "+err.Error())
			return publishSpec{}, false
		}
	}
	sa := cli.SplitNonEmpty(qp.Get("sa"))
	// A literal '+' in a query string decodes to a space, so a curl-ed
	// ?mechanism=privelet+ arrives as "privelet ". No mechanism name can
	// contain a space, so mapping spaces back to '+' recovers the
	// intuitive spelling (properly-encoded %2B is unaffected).
	mechName := strings.ReplaceAll(qp.Get("mechanism"), " ", "+")
	if mechName == "" {
		mechName = s.defaultMech
	}
	mech, err := privelet.MechanismByName(mechName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return publishSpec{}, false
	}
	// Compatibility: the pre-registry server ignored sa for the basic
	// mechanism (it pinned SA = all attributes itself), so existing
	// clients may still send both; keep ignoring it rather than 400.
	if mechName == "basic" {
		sa = nil
	}
	par, err := s.workerBudget(qp)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return publishSpec{}, false
	}
	params := privelet.Params{Epsilon: epsilon, SA: sa, Seed: seed, Parallelism: par}
	if err := privelet.ValidateParams(mech, schema, params); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return publishSpec{}, false
	}
	return publishSpec{schema: schema, mech: mech, params: params}, true
}

// runPublish streams the request body into a frequency matrix and runs
// the mechanism, returning the storable payload; it writes the HTTP
// error itself and reports ok=false then. The CSV body streams straight
// into the matrix — the server never materializes the uploaded table,
// so a publish holds O(domain) memory regardless of the row count
// (MaxBody still bounds the bytes read, as an upload-abuse guard rather
// than a memory ceiling).
func (s *Server) runPublish(w http.ResponseWriter, req *http.Request, spec publishSpec) (*codec.Payload, bool) {
	pub, err := privelet.NewPublisher(spec.schema)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	if err := cli.ReadRows(spec.schema, http.MaxBytesReader(w, req.Body, s.maxBody), pub.Add); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}

	// The publish runs under the request context: when the client
	// disconnects mid-publish, the engine's workers stop at the next
	// sub-matrix boundary instead of finishing a release nobody wants.
	res, err := spec.mech.Publish(req.Context(), pub.Frequency(), spec.params)
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone; the status is for the access log only.
		httpError(w, statusClientClosedRequest, err.Error())
		return nil, false
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	meta := codec.Meta{Mechanism: spec.mech.Name(), Epsilon: res.Epsilon, Rho: res.Rho, Lambda: res.Lambda, Bound: res.VarianceBound}
	return &codec.Payload{Meta: meta, Schema: spec.schema, Noisy: res.Noisy}, true
}

// payloadSummary builds the created-release summary from data in hand
// rather than read back from the store: a freshly-put release is
// resident by definition, and its backing — noisy matrix plus the
// summed-area table the store builds on Put — is entirely heap (mapped
// pages only appear on spill reload).
func payloadSummary(id string, p *codec.Payload, workers int) summary {
	return summary{
		ID:        id,
		Mechanism: p.Meta.Mechanism,
		Epsilon:   p.Meta.Epsilon,
		Rho:       p.Meta.Rho,
		Lambda:    p.Meta.Lambda,
		Bound:     p.Meta.Bound,
		Entries:   p.Noisy.Len(),
		Attrs:     allNames(p.Schema),
		Workers:   workers,
		Resident:  true,
		HeapBytes: 2 * 8 * int64(p.Noisy.Len()),
	}
}

func (s *Server) handlePublish(w http.ResponseWriter, req *http.Request) {
	// A caller-chosen ID (the cluster router mints IDs up front, because
	// consistent-hash placement needs the ID before a node is picked)
	// must be a plain single-segment ID: the two-segment "<tenant>/..."
	// space belongs to the ledger-gated endpoint, which prices it.
	id := req.URL.Query().Get("id")
	if id != "" {
		if strings.Contains(id, "/") {
			httpError(w, http.StatusBadRequest, "client-chosen release ids must not contain '/' (tenant releases go through /tenants/{tenant}/publish)")
			return
		}
		if err := store.ValidateID(id); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	spec, ok := s.parsePublish(w, req)
	if !ok {
		return
	}
	payload, ok := s.runPublish(w, req, spec)
	if !ok {
		return
	}
	if id == "" {
		id = fmt.Sprintf("r%d", s.nextID.Add(1))
	}
	err := s.store.Put(id, payload, spec.params.Parallelism)
	switch {
	case errors.Is(err, store.ErrDuplicate):
		httpError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, payloadSummary(id, payload, spec.params.Parallelism))
}

// tenantSummary extends the release summary with the continual-
// publication fields: which tenant/epoch the release is, and what is
// left of the budget that paid for it.
type tenantSummary struct {
	summary
	Tenant string `json:"tenant"`
	Epoch  uint64 `json:"epoch"`
	// Remaining is omitted for unlimited-budget tenants (encoding/json
	// cannot represent +Inf).
	Remaining *float64 `json:"budget_remaining,omitempty"`
}

// handleTenantPublish is the ledger-gated publish: params.Epsilon is
// charged to the tenant's budget before the body is read or any noise
// drawn (sequential composition across the tenant's epochs — paper
// §III prices each release at its ε), refunded if anything downstream
// fails, and the release is stored under the versioned ID
// "<tenant>/<epoch>". An exhausted budget is a typed 429, never a 500.
func (s *Server) handleTenantPublish(w http.ResponseWriter, req *http.Request) {
	tenant := req.PathValue("tenant")
	if err := ledger.ValidateTenant(tenant); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, ok := s.parsePublish(w, req)
	if !ok {
		return
	}
	charge, err := s.ledger.Charge(tenant, spec.params.Epsilon)
	if err != nil {
		if errors.Is(err, ledger.ErrBudgetExhausted) {
			s.budgetRefused(w, tenant, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	payload, ok := s.runPublish(w, req, spec)
	if !ok {
		// The error response is already on the wire; an aborted publish
		// released nothing, so it spends nothing. A refund can only fail
		// on ledger persistence, which the ledger rolls back internally —
		// the in-memory balance stays correct either way.
		_ = s.ledger.Refund(charge)
		return
	}
	epoch, err := s.ledger.NextEpoch(tenant)
	if err == nil {
		err = s.store.Put(fmt.Sprintf("%s/%d", tenant, epoch), payload, spec.params.Parallelism)
	}
	if err != nil {
		if rerr := s.ledger.Refund(charge); rerr != nil {
			err = errors.Join(err, rerr)
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	id := fmt.Sprintf("%s/%d", tenant, epoch)
	writeJSON(w, http.StatusCreated, tenantSummary{
		summary:   payloadSummary(id, payload, spec.params.Parallelism),
		Tenant:    tenant,
		Epoch:     epoch,
		Remaining: finiteOrNil(s.ledger.Remaining(tenant)),
	})
}

// budgetRefused writes the typed 429 for an exhausted budget: machine-
// readable code plus the balance, so a client can tell "come back after
// a Grant" apart from every other 4xx without string matching.
func (s *Server) budgetRefused(w http.ResponseWriter, tenant string, err error) {
	b := s.ledger.Balance(tenant)
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":     err.Error(),
		"code":      "budget_exhausted",
		"tenant":    tenant,
		"budget":    b.Budget,
		"spent":     b.Spent,
		"remaining": b.Remaining,
	})
}

// budgetView is the JSON shape of GET /tenants/{tenant}/budget.
type budgetView struct {
	Tenant string `json:"tenant"`
	Finite bool   `json:"finite"`
	// Budget and Remaining are omitted for unlimited-budget tenants
	// (encoding/json cannot represent +Inf); Finite=false marks them.
	Budget    *float64 `json:"budget,omitempty"`
	Spent     float64  `json:"spent"`
	Remaining *float64 `json:"remaining,omitempty"`
	Epoch     uint64   `json:"epoch"`
	Epochs    []string `json:"epochs"`
}

// handleTenantBudget reports a tenant's budget position and the epochs
// currently in the store. A tenant that never published reports its
// fresh default position (200, not 404): under the ledger's lazy
// accounts, "unknown" and "hasn't spent yet" are the same state.
func (s *Server) handleTenantBudget(w http.ResponseWriter, req *http.Request) {
	tenant := req.PathValue("tenant")
	if err := ledger.ValidateTenant(tenant); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	b := s.ledger.Balance(tenant)
	stubs := s.store.ListPrefix(tenant + "/")
	epochs := make([]string, 0, len(stubs))
	for _, st := range stubs {
		epochs = append(epochs, st.ID)
	}
	writeJSON(w, http.StatusOK, budgetView{
		Tenant:    b.Tenant,
		Finite:    b.Finite,
		Budget:    finiteOrNil(b.Budget),
		Spent:     b.Spent,
		Remaining: finiteOrNil(b.Remaining),
		Epoch:     b.Epoch,
		Epochs:    epochs,
	})
}

// finiteOrNil guards JSON marshalling against the unlimited budget's
// +Inf, which encoding/json rejects outright.
func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// statusClientClosedRequest is nginx's conventional status for requests
// aborted by the client; net/http has no official constant for it.
const statusClientClosedRequest = 499

// workerBudget resolves a request's parallelism parameter against the
// operator's ceiling — Config.Parallelism when set, capped at the
// machine's core count. Requests may lower the worker count below the
// ceiling but never raise it; an omitted or non-positive parameter means
// the ceiling itself, so ?parallelism=0 and no parameter behave
// identically and a client cannot launder 0/-1 into more workers than
// the operator allows. Shared by publish and batch query, so one knob
// governs every request-driven fan-out.
func (s *Server) workerBudget(qp url.Values) (int, error) {
	ceiling := runtime.GOMAXPROCS(0)
	if s.parallelism > 0 && s.parallelism < ceiling {
		ceiling = s.parallelism
	}
	par := ceiling
	if v := qp.Get("parallelism"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad parallelism: %v", err)
		}
		if p > 0 && p < ceiling {
			par = p
		}
	}
	return par, nil
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	stubs := s.store.List()
	out := make([]summary, 0, len(stubs))
	for _, st := range stubs {
		out = append(out, stubSummary(st))
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup fetches the full release, transparently reloading a spilled
// one; it writes the error response itself and reports ok=false then.
func (s *Server) lookup(w http.ResponseWriter, req *http.Request) (store.Release, bool) {
	id := req.PathValue("id")
	rel, err := s.store.Get(id)
	switch {
	case errors.Is(err, store.ErrNotFound):
		httpError(w, http.StatusNotFound, fmt.Sprintf("no release %q", id))
		return store.Release{}, false
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return store.Release{}, false
	}
	return rel, true
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	// Describe never touches disk, so listing metadata cannot thrash
	// the resident budget.
	id := req.PathValue("id")
	stub, err := s.store.Describe(id)
	switch {
	case errors.Is(err, store.ErrNotFound):
		httpError(w, http.StatusNotFound, fmt.Sprintf("no release %q", id))
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, stubSummary(stub))
	}
}

// handleDelete withdraws a release and deletes its spill file — the
// only way a spilled release's disk space is ever reclaimed.
func (s *Server) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	err := s.store.Remove(id)
	switch {
	case errors.Is(err, store.ErrNotFound):
		httpError(w, http.StatusNotFound, fmt.Sprintf("no release %q", id))
	case err != nil:
		// The release is withdrawn regardless; the error reports a spill
		// file that could not be deleted.
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}

// handleMechanisms lists the registered publish mechanisms, so clients
// can discover what the mechanism parameter accepts.
func (s *Server) handleMechanisms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"mechanisms": privelet.Mechanisms(),
		"default":    s.defaultMech,
	})
}

func (s *Server) handleCount(w http.ResponseWriter, req *http.Request) {
	rel, ok := s.lookup(w, req)
	if !ok {
		return
	}
	q, err := query.Parse(rel.Payload.Schema, req.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The one-query case of the batch pipeline: the same executor (and
	// the same per-release answer cache) the workload endpoint uses, so
	// the two endpoints cannot drift (bit-identity pinned by tests) and
	// repeated single-count dashboard traffic hits the cache too.
	answers, err := query.Batch{Eval: rel.Eval, Workers: 1, Cache: rel.Cache, Schema: rel.Payload.Schema}.Execute(req.Context(), []query.Query{q})
	if err != nil {
		httpError(w, queryStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    answers[0],
		"coverage": q.Coverage(),
	})
}

// handleBatchQuery answers a whole workload in one request — the
// paper's serving shape (§VII runs 40 000 queries per experiment), for
// which per-query HTTP round trips would dominate the 2^d-lookup
// answers. The request body streams through the workload wire format
// (one spec per line, or JSON with Content-Type application/json)
// directly into query.Batch.ExecuteStream: parsing pipelines into
// execution, answers flush to the client in fixed-size chunks while
// later chunks still execute, and peak memory is O(chunk) — a
// million-query workload never exists in this process as a slice.
// Answers come back in input order, bit-identical to issuing the same
// specs as sequential /count calls, flowing through the release's
// answer cache when the store enables one.
//
// The response is the streaming answer wire format (internal/workload):
// JSON by default — the pre-streaming {"workers","answers","queries"}
// object extended with a trailer — or the line format when the Accept
// header asks for text/csv or text/plain. Either way the trailer
// carries the delivered answer count and a status, so a client can
// distinguish a complete stream from one cut by an error or a dropped
// connection (a body without a trailer is truncated, full stop).
//
// Errors inside the first chunk — the whole workload, for bodies up to
// the chunk size — are reported as plain HTTP statuses exactly as
// before, since nothing has been written; after the first flush the
// status is already on the wire, and a failure ends the stream with a
// status=error trailer instead.
func (s *Server) handleBatchQuery(w http.ResponseWriter, req *http.Request) {
	rel, ok := s.lookup(w, req)
	if !ok {
		return
	}
	par, err := s.workerBudget(req.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	schema := rel.Payload.Schema
	body := http.MaxBytesReader(w, req.Body, s.maxBody)
	var specs workload.SpecReader
	if ct := req.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		specs = workload.NewJSONSpecs(body)
	} else {
		specs = workload.NewLineSpecs(body)
	}
	asLines := wantsLineAnswers(req.Header.Get("Accept"))

	var (
		aw      workload.AnswerWriter
		started bool
	)
	flusher, _ := w.(http.Flusher)
	start := func() {
		started = true
		if asLines {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			aw = workload.NewAnswerLines(w)
		} else {
			w.Header().Set("Content-Type", "application/json")
			aw = workload.NewAnswerJSON(w, par)
		}
		w.WriteHeader(http.StatusOK)
	}
	sink := func(answers []float64) error {
		if !started {
			start()
		}
		if err := aw.WriteChunk(answers); err != nil {
			return err
		}
		// Flush per chunk: the client sees the first answers while the
		// rest of the workload is still parsing and executing.
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	batch := query.Batch{Eval: rel.Eval, Workers: par, Cache: rel.Cache, Schema: schema}
	n, err := batch.ExecuteStream(req.Context(), workload.Queries(schema, specs), sink)
	if err != nil && !started {
		// Nothing on the wire yet: report the plain status a buffered
		// endpoint would have — 400 for a bad workload, 499/500 otherwise.
		httpError(w, queryStatus(err), err.Error())
		return
	}
	if !started {
		start() // empty workload: an answerless body is still a complete one
	}
	t := workload.Trailer{Answers: n, Status: workload.StatusOK}
	if err != nil {
		t.Status = workload.StatusError
		t.Error = err.Error()
	}
	// A Close failure means the client is gone mid-trailer; there is no
	// one left to tell.
	_ = aw.Close(t)
	if flusher != nil {
		flusher.Flush()
	}
}

// wantsLineAnswers reports whether the Accept header prefers the line
// answer format over the default JSON — the CSV-friendly form for
// curl | tail pipelines and the CLI.
func wantsLineAnswers(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch strings.TrimSpace(mt) {
		case "text/csv", "text/plain":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// queryStatus maps a query-pipeline error onto an HTTP status: a bad
// query or workload body is the client's fault (400 — tagged
// query.ErrInvalid, an over-limit body, or an over-long line), a
// cancelled request is the client gone (499), anything else is the
// server's (500) — never a 500 for a malformed predicate, never a 400
// masking an engine failure.
func queryStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, query.ErrInvalid),
		errors.As(err, &tooBig),
		errors.Is(err, bufio.ErrTooLong):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleExport(w http.ResponseWriter, req *http.Request) {
	rel, ok := s.lookup(w, req)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := store.EncodeRelease(w, rel.Payload); err != nil {
		// Headers are already sent; nothing sane to do but log-by-status.
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// nodeIdentity attributes a /stats snapshot to the daemon that
// produced it — the field a cluster's aggregated fleet view keys on.
type nodeIdentity struct {
	Name      string  `json:"name"`
	StartTime string  `json:"start_time"`
	UptimeSec float64 `json:"uptime_seconds"`
	Version   string  `json:"version"`
}

// releaseResidency is one row of /stats' "residency" list: where a
// release's resident bytes live. Spilled releases report zeros — their
// cost is a file, not memory.
type releaseResidency struct {
	ID          string `json:"id"`
	Resident    bool   `json:"resident"`
	HeapBytes   int64  `json:"heap_bytes"`
	MappedBytes int64  `json:"mapped_bytes"`
}

// handleStats reports store accounting with the ledger's counters
// nested under "ledger", the node's identity under "node", per-release
// resident bytes (mapped vs heap — the MaxResident tuning signal) under
// "residency", and — when clustered — the ring membership version and
// repair counters under "ring"; the store fields stay at the top level,
// so pre-ledger clients decoding into store.Stats keep working.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stubs := s.store.List()
	residency := make([]releaseResidency, 0, len(stubs))
	for _, st := range stubs {
		residency = append(residency, releaseResidency{
			ID:          st.ID,
			Resident:    st.Resident,
			HeapBytes:   st.HeapBytes,
			MappedBytes: st.MappedBytes,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		store.Stats
		Ledger    ledger.Stats       `json:"ledger"`
		Node      nodeIdentity       `json:"node"`
		Residency []releaseResidency `json:"residency"`
		Ring      any                `json:"ring,omitempty"`
	}{s.store.Stats(), s.ledger.Stats(), nodeIdentity{
		Name:      s.nodeName,
		StartTime: s.started.UTC().Format(time.RFC3339),
		UptimeSec: time.Since(s.started).Seconds(),
		Version:   s.version,
	}, residency, s.ringStats()})
}

// ParseQuery parses the q= syntax. It is a thin alias kept for
// compatibility: the grammar moved to query.Parse, where the batch wire
// format and the CLI share it (one parser, one set of typed errors).
func ParseQuery(schema *dataset.Schema, raw string) (query.Query, error) {
	return query.Parse(schema, raw)
}

func allNames(s *dataset.Schema) []string {
	out := make([]string, s.NumAttrs())
	for i := range out {
		out[i] = s.Attr(i).Name
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
