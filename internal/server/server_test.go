package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/store"
)

const testSchema = "Age:ordinal:8,Occ:nominal:3level:2x3"

// testCSV: 6 rows over (Age 8, Occ 6).
const testCSV = "0,0\n1,1\n2,2\n3,3\n4,4\n5,5\n"

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startSpillServer starts a server whose store keeps at most maxResident
// releases in memory, spilling the rest to dir.
func startSpillServer(t *testing.T, dir string, maxResident int) *httptest.Server {
	t.Helper()
	st, err := store.New(store.Config{Dir: dir, MaxResident: maxResident})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func publish(t *testing.T, ts *httptest.Server, params string, body string) summary {
	t.Helper()
	resp, err := http.Post(ts.URL+"/publish?"+params, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("publish status %d: %s", resp.StatusCode, raw)
	}
	var sum summary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestPublishAndCount(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts,
		"schema="+testSchema+"&epsilon=1000000000&seed=1", testCSV)
	if sum.ID == "" || sum.Mechanism != "privelet+" {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Entries != 48 {
		t.Fatalf("entries = %d, want 48", sum.Entries)
	}

	// Near-noiseless: count Age in [0,2] = 3 rows.
	resp, err := http.Get(ts.URL + "/releases/" + sum.ID + "/count?q=Age=0..2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Count    float64 `json:"count"`
		Coverage float64 `json:"coverage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Count-3) > 1e-3 {
		t.Fatalf("count = %v, want ~3", out.Count)
	}
	if math.Abs(out.Coverage-3.0/8) > 1e-9 {
		t.Fatalf("coverage = %v, want 0.375", out.Coverage)
	}
}

func TestCountHierarchyNodeAndLeaf(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=1000000000&seed=2", testCSV)
	for _, tc := range []struct {
		q    string
		want float64
	}{
		{"Occ=@g0", 3},          // leaves 0..2
		{"Occ=%23%34", 1},       // "#4": leaf 4 (URL-encoded)
		{"Age=0..1,Occ=@g0", 2}, // conjunction
		{"", 6},                 // full domain
	} {
		resp, err := http.Get(ts.URL + "/releases/" + sum.ID + "/count?q=" + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Count float64 `json:"count"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Count-tc.want) > 1e-3 {
			t.Fatalf("q=%q count = %v, want %v", tc.q, out.Count, tc.want)
		}
	}
}

func TestBasicMechanismParam(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=1&mechanism=basic&seed=3", testCSV)
	if sum.Mechanism != "basic" {
		t.Fatalf("mechanism = %q", sum.Mechanism)
	}
	if sum.Rho != 1 {
		t.Fatalf("basic rho = %v, want 1", sum.Rho)
	}
}

func TestListAndGet(t *testing.T) {
	ts := startServer(t)
	a := publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=4", testCSV)
	b := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=5", testCSV)
	if a.ID == b.ID {
		t.Fatal("release IDs collide")
	}
	resp, err := http.Get(ts.URL + "/releases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []summary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list has %d releases", len(list))
	}
	resp2, err := http.Get(ts.URL + "/releases/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var got summary
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != a.ID || got.Epsilon != 1 {
		t.Fatalf("get = %+v", got)
	}
}

func TestExportRoundTrip(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=1000000000&seed=6", testCSV)
	resp, err := http.Get(ts.URL + "/releases/" + sum.ID + "/export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := codec.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if payload.Meta.Mechanism != "privelet+" {
		t.Fatalf("exported mechanism = %q", payload.Meta.Mechanism)
	}
	if payload.Noisy.Len() != 48 {
		t.Fatalf("exported entries = %d", payload.Noisy.Len())
	}
	if math.Abs(payload.Noisy.Total()-6) > 1e-3 {
		t.Fatalf("exported total = %v, want ~6", payload.Noisy.Total())
	}
}

func TestErrorPaths(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=7", testCSV)

	post := func(params, body string) int {
		resp, err := http.Post(ts.URL+"/publish?"+params, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("", testCSV); code != http.StatusBadRequest {
		t.Errorf("missing schema: status %d", code)
	}
	if code := post("schema=bogus", testCSV); code != http.StatusBadRequest {
		t.Errorf("bad schema: status %d", code)
	}
	if code := post("schema="+testSchema+"&epsilon=abc", testCSV); code != http.StatusBadRequest {
		t.Errorf("bad epsilon: status %d", code)
	}
	if code := post("schema="+testSchema+"&epsilon=0", testCSV); code != http.StatusBadRequest {
		t.Errorf("epsilon 0: status %d", code)
	}
	if code := post("schema="+testSchema+"&seed=xyz", testCSV); code != http.StatusBadRequest {
		t.Errorf("bad seed: status %d", code)
	}
	if code := post("schema="+testSchema+"&mechanism=magic", testCSV); code != http.StatusBadRequest {
		t.Errorf("bad mechanism: status %d", code)
	}
	if code := post("schema="+testSchema, "9,9\n"); code != http.StatusBadRequest {
		t.Errorf("out-of-domain CSV: status %d", code)
	}
	if code := get("/releases/ghost"); code != http.StatusNotFound {
		t.Errorf("missing release: status %d", code)
	}
	if code := get("/releases/ghost/count?q="); code != http.StatusNotFound {
		t.Errorf("count on missing release: status %d", code)
	}
	if code := get("/releases/" + sum.ID + "/count?q=Age=9..1"); code != http.StatusBadRequest {
		t.Errorf("bad query: status %d", code)
	}
	if code := get("/releases/" + sum.ID + "/count?q=Nope=1..2"); code != http.StatusBadRequest {
		t.Errorf("unknown attribute: status %d", code)
	}
}

func TestParseQuerySyntax(t *testing.T) {
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema(
		dataset.OrdinalAttr("Age", 10),
		dataset.NominalAttr("Occ", h),
	)
	cases := []struct {
		raw     string
		wantErr bool
	}{
		{"", false},
		{"Age=0..9", false},
		{"Age = 2 .. 5 , Occ=@g1", false},
		{"Occ=#3", false},
		{"Age", true},
		{"Age=5", true},
		{"Age=a..b", true},
		{"Age=1..x", true},
		{"Occ=#x", true},
		{"Occ=@ghost", true},
		{"Ghost=1..2", true},
		{",,", false}, // empty clauses skipped
	}
	for _, tc := range cases {
		_, err := ParseQuery(schema, tc.raw)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseQuery(%q) err=%v, wantErr=%v", tc.raw, err, tc.wantErr)
		}
	}
	// Round trip semantics: bounds match a hand-built query.
	q, err := ParseQuery(schema, "Age=2..5,Occ=@g1")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := q.Lo(), q.Hi()
	if lo[0] != 2 || hi[0] != 5 || lo[1] != 3 || hi[1] != 5 {
		t.Fatalf("parsed bounds %v..%v", lo, hi)
	}
}

func TestPublishBodyLimit(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBody: 64}).Handler()) // 64-byte cap
	defer ts.Close()
	big := strings.Repeat("1,1\n", 100)
	resp, err := http.Post(ts.URL+"/publish?schema="+testSchema, "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
}

func TestServerMatchesLibrary(t *testing.T) {
	// The server's count must equal the library's for the same seed.
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=42", testCSV)

	schema, err := cli.ParseSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := cli.ReadTable(schema, strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	_ = tbl
	resp, err := http.Get(ts.URL + "/releases/" + sum.ID + "/count?q=Age=0..7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Count float64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Full-Age query over all Occ: must equal the full-domain noisy
	// total, which is deterministic for seed 42. Just sanity-check
	// finiteness and magnitude here; bit-level equality with the library
	// path is covered by the export round trip.
	if math.IsNaN(out.Count) || math.Abs(out.Count) > 1e6 {
		t.Fatalf("implausible count %v", out.Count)
	}
	_ = fmt.Sprintf
}

// count fetches /releases/{id}/count?q=... and returns the count.
func countQuery(t *testing.T, ts *httptest.Server, id, q string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/releases/" + id + "/count?q=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("count status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Count float64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Count
}

// TestPublishParallelismParam: the parallelism knob must never change the
// released values — same seed at parallelism 1 and 4 answers every probe
// query identically.
func TestPublishParallelismParam(t *testing.T) {
	ts := startServer(t)
	serial := publish(t, ts,
		"schema="+testSchema+"&epsilon=0.5&seed=21&parallelism=1", testCSV)
	parallel := publish(t, ts,
		"schema="+testSchema+"&epsilon=0.5&seed=21&parallelism=4", testCSV)
	for _, q := range []string{"", "Age=0..3", "Occ=@g0", "Age=2..6,Occ=%231"} {
		a := countQuery(t, ts, serial.ID, q)
		b := countQuery(t, ts, parallel.ID, q)
		if a != b {
			t.Errorf("q=%q: parallelism 1 count %v != parallelism 4 count %v", q, a, b)
		}
	}
}

func TestPublishBadParallelism(t *testing.T) {
	ts := startServer(t)
	resp, err := http.Post(ts.URL+"/publish?schema="+testSchema+"&parallelism=two",
		"text/csv", strings.NewReader(testCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentPublishes hammers the publish endpoint from many clients
// at once (each publish itself fans out internally); -race is the judge.
func TestConcurrentPublishes(t *testing.T) {
	ts := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			resp, err := http.Post(
				ts.URL+fmt.Sprintf("/publish?schema=%s&epsilon=1&seed=%d", testSchema, g),
				"text/csv", strings.NewReader(testCSV))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				raw, _ := io.ReadAll(resp.Body)
				errs <- fmt.Sprintf("status %d: %s", resp.StatusCode, raw)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	resp, err := http.Get(ts.URL + "/releases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []summary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 16 {
		t.Fatalf("got %d releases, want 16", len(list))
	}
}

// TestParallelismCeiling: a client override may lower the worker count
// but never exceed the operator's Config.Parallelism ceiling, and 0/-1 mean
// "the ceiling" rather than "all cores". The effective count is echoed
// as the summary's "workers" field, which is what makes the clamp
// observable — release values are parallelism-independent by design.
func TestParallelismCeiling(t *testing.T) {
	srv := New(Config{Parallelism: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var first summary
	for i, p := range []string{"9999", "0", "-1", "1", ""} {
		params := "schema=" + testSchema + "&epsilon=0.5&seed=77"
		if p != "" {
			params += "&parallelism=" + p
		}
		sum := publish(t, ts, params, testCSV)
		if sum.Workers != 1 {
			t.Errorf("parallelism=%q: effective workers %d, want the operator ceiling 1", p, sum.Workers)
		}
		if i == 0 {
			first = sum
			continue
		}
		if a, b := countQuery(t, ts, first.ID, "Age=0..5"), countQuery(t, ts, sum.ID, "Age=0..5"); a != b {
			t.Errorf("parallelism=%s: count %v != %v", p, b, a)
		}
	}
}

// fetchStats reads the /stats endpoint.
func fetchStats(t *testing.T, ts *httptest.Server) store.Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st store.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStatsEndpoint(t *testing.T) {
	ts := startServer(t)
	publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=1", testCSV)
	publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=2", testCSV)
	st := fetchStats(t, ts)
	if st.Releases != 2 || st.Resident != 2 || st.Spilled != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions != 0 || st.Reloads != 0 {
		t.Fatalf("unbounded store should never evict: %+v", st)
	}
	if st.Shards == 0 {
		t.Fatalf("stats must report shard count: %+v", st)
	}
}

// TestSpillReloadOverHTTP: with MaxResident 1 the first release is
// evicted by the second publish, and querying it again — a transparent
// reload from disk — returns the exact same float64 the resident release
// produced. Eviction and reload counters surface on /stats.
func TestSpillReloadOverHTTP(t *testing.T) {
	ts := startSpillServer(t, t.TempDir(), 1)
	a := publish(t, ts, "schema="+testSchema+"&epsilon=0.5&seed=11", testCSV)
	probes := []string{"Age=0..2", "Occ=@g0", "Age=1..6,Occ=%232"}
	before := make([]float64, len(probes))
	for i, q := range probes {
		before[i] = countQuery(t, ts, a.ID, q)
	}

	b := publish(t, ts, "schema="+testSchema+"&epsilon=0.5&seed=12", testCSV)
	st := fetchStats(t, ts)
	if st.Evictions == 0 || st.Resident != 1 || st.Spilled != 1 {
		t.Fatalf("stats after second publish = %+v", st)
	}

	for i, q := range probes {
		after := countQuery(t, ts, a.ID, q)
		if after != before[i] {
			t.Errorf("q=%q: post-reload count %v != pre-spill count %v", q, after, before[i])
		}
	}
	if st := fetchStats(t, ts); st.Reloads == 0 {
		t.Fatalf("stats after reload = %+v", st)
	}
	// The other release still answers too (reload ping-pong is fine).
	countQuery(t, ts, b.ID, "Age=0..7")
}

// TestRestartRecoveryOverHTTP: a new server over the same store
// directory serves the old releases and mints non-colliding IDs.
func TestRestartRecoveryOverHTTP(t *testing.T) {
	dir := t.TempDir()
	ts1 := startSpillServer(t, dir, 0)
	a := publish(t, ts1, "schema="+testSchema+"&epsilon=1000000000&seed=5", testCSV)
	want := countQuery(t, ts1, a.ID, "Age=0..2")
	ts1.Close()

	ts2 := startSpillServer(t, dir, 0)
	if got := countQuery(t, ts2, a.ID, "Age=0..2"); got != want {
		t.Fatalf("recovered count %v != original %v", got, want)
	}
	fresh := publish(t, ts2, "schema="+testSchema+"&epsilon=1&seed=6", testCSV)
	if fresh.ID == a.ID {
		t.Fatalf("restarted server reused release ID %q", fresh.ID)
	}
	list := fetchList(t, ts2)
	if len(list) != 2 {
		t.Fatalf("recovered list has %d releases, want 2", len(list))
	}
}

func fetchList(t *testing.T, ts *httptest.Server) []summary {
	t.Helper()
	resp, err := http.Get(ts.URL + "/releases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []summary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	return list
}

// TestListDoesNotReload: listing and describing releases must serve from
// the always-resident stubs, not drag spilled matrices back into memory.
func TestListDoesNotReload(t *testing.T) {
	ts := startSpillServer(t, t.TempDir(), 1)
	a := publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=21", testCSV)
	publish(t, ts, "schema="+testSchema+"&epsilon=1&seed=22", testCSV)

	list := fetchList(t, ts)
	if len(list) != 2 {
		t.Fatalf("list has %d releases", len(list))
	}
	resp, err := http.Get(ts.URL + "/releases/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := fetchStats(t, ts)
	if st.Reloads != 0 {
		t.Fatalf("list/get triggered %d reloads, want 0", st.Reloads)
	}
	var spilled, resident int
	for _, sum := range list {
		if sum.Resident {
			resident++
		} else {
			spilled++
		}
	}
	if resident != 1 || spilled != 1 {
		t.Fatalf("list resident/spilled = %d/%d, want 1/1", resident, spilled)
	}
}
