package server

// The streaming half of the batch endpoint: chunked answers with a
// trailer, Accept negotiation, mid-stream failure semantics, truncation
// detection, and the per-release answer cache surfacing on /stats.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/workload"
)

// batchRequest POSTs a workload with an explicit Accept header and
// returns the raw response.
func batchRequest(t *testing.T, ts *httptest.Server, id, params, contentType, accept, body string) *http.Response {
	t.Helper()
	target := ts.URL + "/releases/" + id + "/query"
	if params != "" {
		target += "?" + params
	}
	req, err := http.NewRequest(http.MethodPost, target, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBatchLineAnswers: Accept: text/csv switches the response to the
// line answer format, complete with an ok trailer, and the answers are
// float64 == to the JSON representation of the same workload.
func TestBatchLineAnswers(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=31", testCSV)
	specs := batchSpecs(t, 300)
	body := strings.Join(specs, "\n")
	asJSON := batchAnswers(t, ts, sum.ID, "", "text/csv", body)

	for _, accept := range []string{"text/csv", "text/plain", "text/csv;q=0.9, application/json;q=0.1"} {
		resp := batchRequest(t, ts, sum.ID, "", "text/csv", accept, body)
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("accept=%q: status %d: %s", accept, resp.StatusCode, raw)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("accept=%q: Content-Type %q, want text/plain", accept, ct)
		}
		got, trailer, err := workload.ReadAnswerLines(strings.NewReader(string(raw)))
		if err != nil {
			t.Fatalf("accept=%q: %v", accept, err)
		}
		if trailer.Status != workload.StatusOK || trailer.Answers != len(specs) {
			t.Fatalf("accept=%q: trailer = %+v", accept, trailer)
		}
		if len(got) != len(asJSON) {
			t.Fatalf("accept=%q: %d answers, want %d", accept, len(got), len(asJSON))
		}
		for i := range asJSON {
			if got[i] != asJSON[i] {
				t.Fatalf("accept=%q: answer %d = %v, JSON gave %v", accept, i, got[i], asJSON[i])
			}
		}
	}
}

// TestBatchJSONTrailer: the default JSON response now ends with a
// trailer the streaming reader validates — and still decodes under the
// pre-streaming {queries, workers, answers} shape (batchAnswers).
func TestBatchJSONTrailer(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=32", testCSV)
	specs := batchSpecs(t, 120)
	resp := batchRequest(t, ts, sum.ID, "parallelism=2", "text/csv", "", strings.Join(specs, "\n"))
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	answers, trailer, err := workload.ReadAnswersJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if trailer.Status != workload.StatusOK || trailer.Answers != len(specs) || len(answers) != len(specs) {
		t.Fatalf("trailer = %+v over %d answers", trailer, len(answers))
	}
}

// TestBatchMidStreamError is the silent-truncation fix, positive half:
// a workload failing after the first chunk has already flushed cannot
// change the 200 status — instead the stream ends early with a
// status=error trailer naming the failing line, and every answer from
// complete chunks stays delivered.
func TestBatchMidStreamError(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=33", testCSV)
	// 5000 valid lines with an invalid spec at line 4500 — inside the
	// second chunk, after the first (4096 answers) is on the wire.
	lines := make([]string, 5000)
	for i := range lines {
		lines[i] = "Age=0..1"
	}
	lines[4499] = "Age=9..1" // inverted range, line 4500
	resp := batchRequest(t, ts, sum.ID, "", "text/csv", "text/csv", strings.Join(lines, "\n"))
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (headers were already sent when the error hit): %s", resp.StatusCode, raw)
	}
	answers, trailer, err := workload.ReadAnswerLines(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if trailer.Status != workload.StatusError {
		t.Fatalf("trailer = %+v, want status=error", trailer)
	}
	if trailer.Answers != 4096 || len(answers) != 4096 {
		t.Fatalf("delivered %d answers (trailer %d), want the complete first chunk of 4096", len(answers), trailer.Answers)
	}
	if !strings.Contains(trailer.Error, "line 4500") {
		t.Fatalf("trailer error %q does not name line 4500", trailer.Error)
	}
}

// failingWriter is a ResponseWriter whose connection dies after limit
// bytes — the server-side view of a client that disappeared mid-stream.
type failingWriter struct {
	h     http.Header
	wrote []byte
	limit int
}

func (f *failingWriter) Header() http.Header { return f.h }
func (f *failingWriter) WriteHeader(int)     {}
func (f *failingWriter) Write(p []byte) (int, error) {
	if len(f.wrote)+len(p) > f.limit {
		room := f.limit - len(f.wrote)
		if room > 0 {
			f.wrote = append(f.wrote, p[:room]...)
		}
		return room, errors.New("connection reset mid-stream")
	}
	f.wrote = append(f.wrote, p...)
	return len(p), nil
}

// TestBatchTruncationDetectable is the silent-truncation regression
// test, negative half: when the connection dies mid-stream, the bytes
// that made it out do NOT parse as a complete answer stream — the
// reader reports ErrTruncated instead of handing the client a silently
// short answer list.
func TestBatchTruncationDetectable(t *testing.T) {
	srv := New(Config{})
	h := srv.Handler()

	pub := httptest.NewRequest(http.MethodPost, "/publish?schema="+testSchema+"&epsilon=2&seed=34", strings.NewReader(testCSV))
	pubRec := httptest.NewRecorder()
	h.ServeHTTP(pubRec, pub)
	if pubRec.Code != http.StatusCreated {
		t.Fatalf("publish status %d: %s", pubRec.Code, pubRec.Body.Bytes())
	}
	var sum struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(pubRec.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}

	// A 3-chunk workload; the connection dies ~5 KB into the response —
	// partway through the wire bytes of the first chunk's answers.
	specs := make([]string, 10_000)
	for i := range specs {
		specs[i] = fmt.Sprintf("Age=0..%d", i%8)
	}
	req := httptest.NewRequest(http.MethodPost, "/releases/"+sum.ID+"/query", strings.NewReader(strings.Join(specs, "\n")))
	req.Header.Set("Content-Type", "text/csv")
	req.Header.Set("Accept", "text/csv")
	fw := &failingWriter{h: make(http.Header), limit: 5 << 10}
	h.ServeHTTP(fw, req)

	answers, _, err := workload.ReadAnswerLines(strings.NewReader(string(fw.wrote)))
	if !errors.Is(err, workload.ErrTruncated) {
		t.Fatalf("reading the cut stream: err = %v over %d answers, want ErrTruncated", err, len(answers))
	}
	if len(answers) >= len(specs) {
		t.Fatalf("cut stream still carried all %d answers; writer never failed", len(answers))
	}
}

// TestCountUsesAnswerCache: repeated /count calls for the same spec are
// served from the release's answer cache — visible as hits on /stats —
// and the cached answer is float64-identical to the cold one.
func TestCountUsesAnswerCache(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=35", testCSV)
	cold := countOne(t, ts, sum.ID, "Age=1..6")
	st0 := fetchStats(t, ts)
	if st0.AnswerCacheMax == 0 {
		t.Fatalf("implicit store has no answer cache: %+v", st0)
	}
	if st0.AnswerCacheMisses == 0 || st0.AnswerCacheEntries == 0 {
		t.Fatalf("cold count did not populate the cache: %+v", st0)
	}
	for i := 0; i < 3; i++ {
		if warm := countOne(t, ts, sum.ID, "Age=1..6"); warm != cold {
			t.Fatalf("cached count = %v, cold = %v (cache changed an answer)", warm, cold)
		}
	}
	st1 := fetchStats(t, ts)
	if got := st1.AnswerCacheHits - st0.AnswerCacheHits; got < 3 {
		t.Fatalf("warm counts produced %d cache hits, want ≥ 3 (%+v)", got, st1)
	}
}

// TestBatchUsesAnswerCache: re-sending a workload turns the whole
// second pass into cache hits, with answers unchanged.
func TestBatchUsesAnswerCache(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=36", testCSV)
	specs := batchSpecs(t, 500)
	body := strings.Join(specs, "\n")
	first := batchAnswers(t, ts, sum.ID, "", "text/csv", body)
	st0 := fetchStats(t, ts)
	second := batchAnswers(t, ts, sum.ID, "parallelism=4", "text/csv", body)
	st1 := fetchStats(t, ts)
	for i := range first {
		if second[i] != first[i] {
			t.Fatalf("answer %d changed across cached pass: %v vs %v", i, second[i], first[i])
		}
	}
	if got := st1.AnswerCacheHits - st0.AnswerCacheHits; got < int64(len(specs)) {
		t.Fatalf("second pass produced %d hits, want ≥ %d", got, len(specs))
	}
	if st1.AnswerCacheMisses != st0.AnswerCacheMisses {
		t.Fatalf("second pass missed (%d → %d); cache not consulted", st0.AnswerCacheMisses, st1.AnswerCacheMisses)
	}
}

// TestBatchEmptyWorkloadTrailer: an empty workload still gets a
// complete stream — zero answers, ok trailer — not an empty body.
func TestBatchEmptyWorkloadTrailer(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=37", testCSV)
	resp := batchRequest(t, ts, sum.ID, "", "text/csv", "text/csv", "\n\n")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	answers, trailer, err := workload.ReadAnswerLines(strings.NewReader(string(raw)))
	if err != nil || len(answers) != 0 || trailer.Status != workload.StatusOK || trailer.Answers != 0 {
		t.Fatalf("empty workload: answers=%v trailer=%+v err=%v", answers, trailer, err)
	}
}
