package server

// The node side of the cluster tier's internal surface: bearer-token
// authentication and ring-version checking for every /internal/*
// endpoint, plus the on-demand repair trigger. internal/cluster owns
// the other side (the router's pushes and the Repairer's sweeps); the
// two packages deliberately do not import each other — the cluster
// package's tests drive real servers, so a server→cluster import would
// cycle — and meet on plain HTTP contracts instead: the header names
// and status codes below.

import (
	"context"
	"crypto/subtle"
	"net/http"
	"strconv"
)

// ringVersionHeader mirrors cluster.RingVersionHeader: the sender's
// ring membership version, stamped on internal calls.
const ringVersionHeader = "X-Ring-Version"

// ClusterConfig is the server's share of a cluster deployment: what a
// node needs to authenticate internal calls, refuse stale peers, and
// expose its anti-entropy repairer. The zero value means "not
// clustered" — no auth, no version check, no repair endpoint.
type ClusterConfig struct {
	// Secret is the shared bearer token every /internal/* call must
	// present (Authorization: Bearer <secret>). Empty disables the check
	// — for single-node deployments and clusters on trusted networks.
	Secret string
	// RingVersion is this node's membership version. An internal call
	// stamped with an older version is refused with a typed 409
	// ("stale_ring"): the sender is routing on an outdated peer list.
	// Calls without the header pass — an unversioned deployment.
	RingVersion uint64
	// Repair, when set, enables POST /internal/repair: it runs one
	// anti-entropy sweep and returns its report (a cluster.RepairReport)
	// as the response body. Wire the node's Repairer.Sweep here.
	Repair func(ctx context.Context) (any, error)
	// RepairStats, when set, is nested as "repair" under the /stats ring
	// section. Wire the node's Repairer.Stats here.
	RepairStats func() any
}

// internalOnly guards an /internal/* handler with the cluster checks:
// the bearer token (401 without it — the replication surface moves
// whole releases, so it must not be open just because the port is) and
// the ring version (409 for a stale sender).
func (s *Server) internalOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if s.cluster.Secret != "" {
			token, ok := bearerToken(req)
			// Constant-time compare: an attacker probing the replication
			// endpoint must not learn the secret byte by byte from timing.
			if !ok || subtle.ConstantTimeCompare([]byte(token), []byte(s.cluster.Secret)) != 1 {
				writeJSON(w, http.StatusUnauthorized, map[string]string{
					"error": "missing or invalid cluster credential",
					"code":  "unauthorized",
				})
				return
			}
		}
		if v := req.Header.Get(ringVersionHeader); v != "" {
			sent, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad "+ringVersionHeader+" header: "+err.Error())
				return
			}
			if sent < s.cluster.RingVersion {
				writeJSON(w, http.StatusConflict, map[string]any{
					"error":        "sender ring version is stale; refresh the peer list",
					"code":         "stale_ring",
					"sent_version": sent,
					"node_version": s.cluster.RingVersion,
				})
				return
			}
		}
		h(w, req)
	}
}

// bearerToken extracts the Authorization: Bearer credential.
func bearerToken(req *http.Request) (string, bool) {
	const prefix = "Bearer "
	auth := req.Header.Get("Authorization")
	if len(auth) <= len(prefix) || auth[:len(prefix)] != prefix {
		return "", false
	}
	return auth[len(prefix):], true
}

// handleRepair triggers one anti-entropy sweep and returns its report —
// the operator's "fix it now" handle after restarting a node, next to
// the background loop's own schedule. Sweeps serialize inside the
// repairer, so hammering the endpoint cannot stack concurrent sweeps.
func (s *Server) handleRepair(w http.ResponseWriter, req *http.Request) {
	report, err := s.cluster.Repair(req.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// ringStats is the /stats ring section: the node's membership version
// plus the repairer's counters, nil (omitted) when not clustered.
func (s *Server) ringStats() any {
	if s.cluster.RingVersion == 0 && s.cluster.RepairStats == nil && s.cluster.Secret == "" {
		return nil
	}
	out := map[string]any{"version": s.cluster.RingVersion}
	if s.cluster.RepairStats != nil {
		out["repair"] = s.cluster.RepairStats()
	}
	return out
}
