package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/rng"
	"repro/internal/workload"
)

// batchAnswers POSTs a workload body to the batch endpoint and decodes
// the response.
func batchAnswers(t *testing.T, ts *httptest.Server, id, params, contentType, body string) []float64 {
	t.Helper()
	target := ts.URL + "/releases/" + id + "/query"
	if params != "" {
		target += "?" + params
	}
	resp, err := http.Post(target, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Queries int       `json:"queries"`
		Workers int       `json:"workers"`
		Answers []float64 `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Queries != len(out.Answers) {
		t.Fatalf("queries = %d but %d answers", out.Queries, len(out.Answers))
	}
	return out.Answers
}

// countOne issues one GET /count and returns the answer. The spec is
// query-escaped: '#' (the leaf-predicate marker) would otherwise start
// the URL fragment.
func countOne(t *testing.T, ts *httptest.Server, id, spec string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/releases/" + id + "/count?q=" + url.QueryEscape(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("count status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Count float64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Count
}

// batchSpecs draws a §VII-A workload against the test schema and renders
// it in the wire format.
func batchSpecs(t *testing.T, n int) []string {
	t.Helper()
	schema, err := cli.ParseSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(schema, 2)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(n, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]string, n)
	for i, q := range queries {
		specs[i] = q.Spec(schema)
	}
	return specs
}

// TestBatchMatchesSequentialCounts is the endpoint's acceptance
// property: one batch request answers a workload bit-identically
// (float64 ==, through the JSON round trip both paths share) to issuing
// every spec as its own /count call — at several parallelism levels.
func TestBatchMatchesSequentialCounts(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=21", testCSV)
	specs := batchSpecs(t, 400)
	want := make([]float64, len(specs))
	for i, spec := range specs {
		want[i] = countOne(t, ts, sum.ID, spec)
	}
	body := strings.Join(specs, "\n") + "\n"
	for _, params := range []string{"", "parallelism=1", "parallelism=4"} {
		got := batchAnswers(t, ts, sum.ID, params, "text/csv", body)
		if len(got) != len(want) {
			t.Fatalf("%q: %d answers, want %d", params, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: answer %d = %v, /count gave %v", params, i, got[i], want[i])
			}
		}
	}
}

func TestBatchJSONBody(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=22", testCSV)
	specs := batchSpecs(t, 50)
	lines := batchAnswers(t, ts, sum.ID, "", "text/csv", strings.Join(specs, "\n"))
	raw, err := json.Marshal(map[string]any{"queries": specs})
	if err != nil {
		t.Fatal(err)
	}
	asJSON := batchAnswers(t, ts, sum.ID, "", "application/json", string(raw))
	if len(asJSON) != len(lines) {
		t.Fatalf("JSON body: %d answers, want %d", len(asJSON), len(lines))
	}
	for i := range lines {
		if asJSON[i] != lines[i] {
			t.Fatalf("JSON vs lines: answer %d = %v vs %v", i, asJSON[i], lines[i])
		}
	}
}

func TestBatchEmptyWorkload(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=23", testCSV)
	if got := batchAnswers(t, ts, sum.ID, "", "text/csv", "\n  \n"); len(got) != 0 {
		t.Fatalf("empty workload: %d answers, want 0", len(got))
	}
}

// TestQueryErrorsAreClientErrors: every malformed or out-of-schema spec
// — inverted range, unknown attribute, ordinal range on a nominal
// attribute, unknown hierarchy node, bad syntax — is HTTP 400 (never
// 500) on both the single and the batch endpoint.
func TestQueryErrorsAreClientErrors(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=24", testCSV)
	bad := []string{
		"Age=5..2",     // inverted range
		"Ghost=1..2",   // unknown attribute
		"Occ=1..3",     // range predicate on a nominal attribute
		"Occ=@nothere", // unknown hierarchy node
		"Occ=#9",       // leaf out of domain
		"Age=1..999",   // out of domain
		"Age",          // bad syntax
	}
	for _, spec := range bad {
		resp, err := http.Get(ts.URL + "/releases/" + sum.ID + "/count?q=" + spec)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("count %q: status %d, want 400", spec, resp.StatusCode)
		}
		resp, err = http.Post(ts.URL+"/releases/"+sum.ID+"/query", "text/csv",
			strings.NewReader("Age=0..1\n"+spec+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %q: status %d, want 400 (%s)", spec, resp.StatusCode, body)
		}
		// The failing line is identified for 40k-line workloads.
		if !strings.Contains(string(body), "line 2") {
			t.Errorf("batch %q: error %s does not name line 2", spec, body)
		}
	}

	// Malformed JSON is a 400 too, not a 500.
	resp, err := http.Post(ts.URL+"/releases/"+sum.ID+"/query", "application/json",
		strings.NewReader(`{"queries": [42]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	// Unknown release and bad parallelism keep their own statuses.
	resp, err = http.Post(ts.URL+"/releases/ghost/query", "text/csv", strings.NewReader("*\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing release: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/releases/"+sum.ID+"/query?parallelism=abc", "text/csv", strings.NewReader("*\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad parallelism: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchBodyLimit: MaxBody bounds the workload body exactly as it
// bounds publish uploads.
func TestBatchBodyLimit(t *testing.T) {
	st := newTestStoreServer(t)
	sum := publish(t, st, "schema="+testSchema+"&epsilon=2&seed=25", testCSV)
	big := strings.Repeat("Age=0..1\n", 100)
	resp, err := http.Post(st.URL+"/releases/"+sum.ID+"/query", "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized workload: status %d, want 400", resp.StatusCode)
	}
}

// newTestStoreServer starts a server with a tiny MaxBody but room to
// publish the small test CSV.
func newTestStoreServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{MaxBody: 64}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestBatchAgainstSpilledRelease: the batch endpoint transparently
// reloads an evicted release and answers bit-identically to the answers
// recorded while it was resident.
func TestBatchAgainstSpilledRelease(t *testing.T) {
	ts := startSpillServer(t, t.TempDir(), 1)
	first := publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=26", testCSV)
	specs := batchSpecs(t, 100)
	body := strings.Join(specs, "\n")
	want := batchAnswers(t, ts, first.ID, "", "text/csv", body)
	// Publishing a second release evicts the first (MaxResident = 1).
	publish(t, ts, "schema="+testSchema+"&epsilon=2&seed=27", testCSV)
	got := batchAnswers(t, ts, first.ID, "parallelism=4", "text/csv", body)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after spill: answer %d = %v, want %v", i, got[i], want[i])
		}
	}
}
