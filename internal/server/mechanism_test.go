package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	privelet "repro"
	"repro/internal/codec"
	"repro/internal/store"
)

// histCSV: 8 rows over a one-attribute schema every mechanism accepts.
const (
	histSchema = "Age:ordinal:8"
	histCSV    = "0\n1\n1\n2\n3\n3\n3\n7\n"
)

// TestPublishEveryMechanismRoundTrip publishes through each registered
// mechanism by name and round-trips the mechanism through the summary,
// the codec export, and a daemon restart on the same spill directory.
func TestPublishEveryMechanismRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.New(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Store: st}).Handler())

	names := privelet.Mechanisms()
	if len(names) < 4 {
		t.Fatalf("registry too small: %v", names)
	}
	ids := make(map[string]string) // mechanism → release id
	for _, name := range names {
		if strings.Contains(name, "alias") {
			continue // registered by another test in this binary
		}
		sum := publish(t, ts,
			"schema="+histSchema+"&epsilon=1000000000&seed=3&mechanism="+url.QueryEscape(name), histCSV)
		if sum.Mechanism != name {
			t.Fatalf("summary mechanism = %q, want %q", sum.Mechanism, name)
		}
		ids[name] = sum.ID

		// Codec round-trip: the export's header carries the name.
		resp, err := http.Get(ts.URL + "/releases/" + sum.ID + "/export")
		if err != nil {
			t.Fatal(err)
		}
		payload, err := codec.Decode(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decoding export: %v", name, err)
		}
		if payload.Meta.Mechanism != name {
			t.Fatalf("export mechanism = %q, want %q", payload.Meta.Mechanism, name)
		}

		// All mechanisms answer through the same query path.
		var out struct {
			Count float64 `json:"count"`
		}
		resp, err = http.Get(ts.URL + "/releases/" + sum.ID + "/count?q=Age=0..3")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.Count < 6.5 || out.Count > 7.5 {
			t.Fatalf("%s: count = %v, want ~7", name, out.Count)
		}
	}
	ts.Close()

	// Restart: a fresh server over the same directory still reports each
	// release's mechanism.
	st2, err := store.New(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(Config{Store: st2}).Handler())
	defer ts2.Close()
	for name, id := range ids {
		resp, err := http.Get(ts2.URL + "/releases/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sum summary
		if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sum.Mechanism != name {
			t.Fatalf("after restart, %s mechanism = %q", id, sum.Mechanism)
		}
	}
}

// TestPublishMechanismPlusUnescaped: the intuitive (but formally wrong)
// ?mechanism=privelet+ spelling must work — '+' decodes to a space, which
// the server maps back.
func TestPublishMechanismPlusUnescaped(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+histSchema+"&epsilon=1&seed=1&mechanism=privelet+", histCSV)
	if sum.Mechanism != "privelet+" {
		t.Fatalf("mechanism = %q, want privelet+", sum.Mechanism)
	}
}

// TestPublishBasicIgnoresSA pins HTTP compatibility: the pre-registry
// server ignored sa for mechanism=basic, and it must keep doing so.
func TestPublishBasicIgnoresSA(t *testing.T) {
	ts := startServer(t)
	sum := publish(t, ts, "schema="+histSchema+"&epsilon=1&seed=1&mechanism=basic&sa=Age", histCSV)
	if sum.Mechanism != "basic" {
		t.Fatalf("mechanism = %q", sum.Mechanism)
	}
}

// TestPublishParamMismatchFailsBeforeIngest: an SA/mechanism mismatch is
// a 400 whose body never had to be read (asserted indirectly: the
// request body is a reader that fails on first read, and the handler
// still produces the param error, not the read error).
func TestPublishParamMismatchFailsBeforeIngest(t *testing.T) {
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := New(Config{Store: st}).Handler()
	req := httptest.NewRequest(http.MethodPost,
		"/publish?schema="+histSchema+"&epsilon=1&mechanism=privelet&sa=Age", failingReader{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "takes no SA") {
		t.Fatalf("body %q should be the SA mismatch, not an ingest error", body)
	}
}

// failingReader errors on any read: proof the handler did not touch the
// body before rejecting the request.
type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestPublishUnknownMechanism(t *testing.T) {
	ts := startServer(t)
	resp, err := http.Post(ts.URL+"/publish?schema="+histSchema+"&epsilon=1&mechanism=fourier",
		"text/csv", strings.NewReader(histCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "fourier") || !strings.Contains(string(raw), "privelet+") {
		t.Fatalf("error body %q should name the offender and the registry", raw)
	}
}

func TestDefaultMechanismConfig(t *testing.T) {
	ts := httptest.NewServer(New(Config{DefaultMechanism: "basic"}).Handler())
	t.Cleanup(ts.Close)
	sum := publish(t, ts, "schema="+histSchema+"&epsilon=1&seed=1", histCSV)
	if sum.Mechanism != "basic" {
		t.Fatalf("mechanism = %q, want configured default basic", sum.Mechanism)
	}
}

func TestMechanismsEndpoint(t *testing.T) {
	ts := startServer(t)
	resp, err := http.Get(ts.URL + "/mechanisms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Mechanisms []string `json:"mechanisms"`
		Default    string   `json:"default"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Default != "privelet+" {
		t.Fatalf("default = %q", out.Default)
	}
	found := map[string]bool{}
	for _, m := range out.Mechanisms {
		found[m] = true
	}
	for _, want := range []string{"privelet+", "privelet", "basic", "hay"} {
		if !found[want] {
			t.Fatalf("/mechanisms missing %q: %v", want, out.Mechanisms)
		}
	}
}

// TestPublishCancelledRequest drives the handler with an already-dead
// request context — the deterministic stand-in for a client that
// disconnected mid-publish. The publish must abort (499, the
// client-closed-request convention) and store nothing.
func TestPublishCancelledRequest(t *testing.T) {
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := New(Config{Store: st}).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost,
		"/publish?schema="+histSchema+"&epsilon=1&seed=1", strings.NewReader(histCSV)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("cancelled publish stored %d release(s)", n)
	}
}

func TestDeleteRelease(t *testing.T) {
	dir := t.TempDir()
	st, err := store.New(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	sum := publish(t, ts, "schema="+histSchema+"&epsilon=1&seed=1", histCSV)

	del := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/releases/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(sum.ID); code != http.StatusNoContent {
		t.Fatalf("DELETE status = %d, want 204", code)
	}
	resp, err := http.Get(ts.URL + "/releases/" + sum.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d, want 404", resp.StatusCode)
	}
	if code := del(sum.ID); code != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", code)
	}
	if code := del("nope"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown = %d, want 404", code)
	}

	// The removal is durable: a restart on the same directory recovers
	// nothing.
	st2, err := store.New(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n := st2.Len(); n != 0 {
		t.Fatalf("restart recovered %d releases after delete", n)
	}
}
