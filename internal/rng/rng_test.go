package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source // zero value must behave like New(0)
	ref := New(0)
	for i := 0; i < 10; i++ {
		if got, want := s.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("zero-value draw %d = %d, want %d", i, got, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("parent and split child collided %d times", collisions)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(11)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %v", k, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(19)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("first element %d appeared %d times, want ~%v", k, c, want)
		}
	}
}

func TestLaplaceZeroMagnitude(t *testing.T) {
	s := New(23)
	for i := 0; i < 100; i++ {
		if v := s.Laplace(0); v != 0 {
			t.Fatalf("Laplace(0) = %v, want 0", v)
		}
		if v := s.Laplace(-1); v != 0 {
			t.Fatalf("Laplace(-1) = %v, want 0", v)
		}
	}
}

func TestLaplaceMoments(t *testing.T) {
	// A Laplace(b) variable has mean 0 and variance 2b².
	s := New(29)
	const n = 500000
	for _, b := range []float64{0.5, 1, 4} {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := s.Laplace(b)
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean) > 0.05*b {
			t.Errorf("Laplace(%v) mean = %v, want ~0", b, mean)
		}
		want := 2 * b * b
		if math.Abs(variance-want) > 0.05*want {
			t.Errorf("Laplace(%v) variance = %v, want ~%v", b, variance, want)
		}
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	s := New(31)
	const n = 200000
	pos := 0
	for i := 0; i < n; i++ {
		if s.Laplace(1) > 0 {
			pos++
		}
	}
	frac := float64(pos) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("positive fraction = %v, want ~0.5", frac)
	}
}

func TestLaplaceCDF(t *testing.T) {
	// Empirical CDF at a few points against F(x) = 1 - 0.5·exp(-x/b), x>=0.
	s := New(37)
	const n = 300000
	b := 2.0
	points := []float64{0.5, 1, 2, 4, 8}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		v := s.Laplace(b)
		for j, x := range points {
			if v <= x {
				counts[j]++
			}
		}
	}
	for j, x := range points {
		got := float64(counts[j]) / n
		want := 1 - 0.5*math.Exp(-x/b)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLaplaceVec(t *testing.T) {
	s := New(41)
	v := make([]float64, 1000)
	s.LaplaceVec(v, 3)
	nonzero := 0
	for _, x := range v {
		if x != 0 {
			nonzero++
		}
	}
	if nonzero < 990 {
		t.Fatalf("LaplaceVec produced %d nonzero of 1000; draws look broken", nonzero)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(43)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometric(t *testing.T) {
	s := New(47)
	if _, err := s.Geometric(0); err == nil {
		t.Error("Geometric(0) should error")
	}
	if _, err := s.Geometric(1.5); err == nil {
		t.Error("Geometric(1.5) should error")
	}
	v, err := s.Geometric(1)
	if err != nil || v != 0 {
		t.Errorf("Geometric(1) = %d, %v; want 0, nil", v, err)
	}
	const n = 200000
	p := 0.25
	sum := 0
	for i := 0; i < n; i++ {
		g, err := s.Geometric(p)
		if err != nil {
			t.Fatal(err)
		}
		if g < 0 {
			t.Fatalf("Geometric returned negative %d", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(53)
	z := NewZipf(100, 1.2)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Draw(s)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("draw total = %d, want %d", total, n)
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	s := New(59)
	z := NewZipf(10, 0)
	const n = 100000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[z.Draw(s)]++
	}
	want := float64(n) / 10
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("alpha=0 bucket %d count %d, want ~%v", k, c, want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha float64
	}{{0, 1}, {-1, 1}, {10, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.alpha)
				}
			}()
			NewZipf(tc.n, tc.alpha)
		}()
	}
}

func TestZipfDrawInRangeQuick(t *testing.T) {
	s := New(61)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		z := NewZipf(n, 1)
		v := z.Draw(New(seed))
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	_ = s
}

func TestIntnInRangeQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1024) + 1
		v := New(seed).Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLaplaceFiniteQuick(t *testing.T) {
	f := func(seed uint64, scaleRaw uint8) bool {
		b := float64(scaleRaw%100) + 0.1
		v := New(seed).Laplace(b)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubstreamDeterministic(t *testing.T) {
	a := Substream(42, 7)
	b := Substream(42, 7)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
}

func TestSubstreamsDistinct(t *testing.T) {
	// Streams of one seed, and equal stream indices of nearby seeds, must
	// all start from distinct states: collect first draws and check for
	// collisions across a grid of (seed, stream) pairs.
	seen := make(map[uint64][2]uint64)
	for seed := uint64(0); seed < 64; seed++ {
		for stream := uint64(0); stream < 64; stream++ {
			v := Substream(seed, stream).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("first draw collision: (%d,%d) vs (%d,%d)", seed, stream, prev[0], prev[1])
			}
			seen[v] = [2]uint64{seed, stream}
		}
	}
}

func TestSubstreamLaplaceMoments(t *testing.T) {
	// A substream is a full-quality generator: Laplace draws from it must
	// have roughly the right mean and variance (2b²).
	s := Substream(9, 3)
	const n = 200_000
	b := 1.5
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Laplace(b)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want) > 0.1*want {
		t.Errorf("variance = %v, want ~%v", variance, want)
	}
}
