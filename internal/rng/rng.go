// Package rng provides a small, deterministic random number generator and
// the distribution samplers the Privelet mechanisms need — chiefly the
// Laplace noise every mechanism in the paper injects (§II-B, §III).
//
// All randomness in this repository flows through rng.Source so that every
// experiment is reproducible from a single uint64 seed, independent of any
// changes to math/rand across Go releases: a release is a pure function of
// (data, parameters, seed), bit-identical at any parallelism, because the
// parallel publish engine keys every unit of work to a position-independent
// substream of the seed (see Substream and docs/ARCHITECTURE.md for the
// exact numbering contract). The generator is splitmix64
// (Steele, Lea, Flood 2014), which passes BigCrush and is trivially
// seedable; it is not cryptographically secure, which is acceptable here
// because we reproduce a paper's statistical behaviour rather than ship a
// hardened DP release pipeline (see README: "Security note").
package rng

import (
	"errors"
	"math"
)

// Source is a deterministic pseudo-random generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield independent-
// looking streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new independent Source from s. The derived stream does
// not overlap the parent's future output for any practical draw count,
// because the child is seeded from a dedicated draw of the parent.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x9e3779b97f4a7c15)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche function on
// uint64. It is the same mixing step Uint64 applies to its counter, used
// standalone for key derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream returns the deterministic Source for substream `stream` of the
// given seed. Unlike Split, the derivation is position-independent: it
// depends only on (seed, stream), never on how many draws any other
// source has made, so work split across a worker pool can give each unit
// a substream keyed by its index and produce bit-identical output at any
// parallelism level.
//
// The derivation hashes seed and stream through two rounds of the
// splitmix64 finalizer with distinct additive constants, so substreams of
// the same seed — and equal stream indices of different seeds — start in
// well-separated states.
//
// The publish engine uses a fixed two-level numbering (the determinism
// contract of docs/ARCHITECTURE.md): level one keys stream k of the
// publish seed to the k-th unit of independent work — sub-matrix k of the
// Figure-5 fan-out in internal/core, enumerated in the paper's mixed-radix
// SA coordinate order — and level two re-substreams each unit's derived
// seed (SubstreamSeed) by chunk index for the noise-injection fan-out in
// internal/privacy, chunk c covering coefficient offsets
// [c·64Ki, (c+1)·64Ki). Both levels depend only on indices, never on
// worker count or visit order, which is what makes releases bit-identical
// (float64 ==) at any parallelism.
func Substream(seed, stream uint64) *Source {
	return New(SubstreamSeed(seed, stream))
}

// SubstreamSeed returns the derived seed Substream(seed, stream) starts
// from. It exists so substream derivation can nest: a unit of work keyed
// by stream k can hand SubstreamSeed(seed, k) to a lower level that
// substreams it again by a finer index (internal/privacy does this per
// noise chunk), keeping every level position-independent.
func SubstreamSeed(seed, stream uint64) uint64 {
	return mix64(mix64(seed+0x9e3779b97f4a7c15) + stream*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Float64 returns a uniform float64 in [0, 1). It uses the top 53 bits of
// a Uint64 draw, so every representable value in [0,1) with 53-bit
// precision is possible.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand. Modulo bias is removed by rejection sampling.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	// Rejection threshold: the largest multiple of bound below 2^64.
	limit := -bound % bound // == (2^64 - bound) mod bound == 2^64 mod bound
	for {
		v := s.Uint64()
		if v >= limit {
			return int(v % bound)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// NormFloat64 returns a standard normal draw using the Box-Muller
// transform. Two uniforms are consumed per call; no state is cached so
// that Source remains a plain value type with one word of state.
func (s *Source) NormFloat64() float64 {
	for {
		u1 := s.Float64()
		if u1 == 0 {
			continue // avoid log(0)
		}
		u2 := s.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Laplace returns one draw from the Laplace (double exponential)
// distribution with mean 0 and the given magnitude (scale) b, whose
// density is (1/2b)·exp(-|x|/b) — Equation 1 of the paper. The variance of
// the returned variable is 2b².
//
// A non-positive magnitude returns 0: the mechanisms use magnitude 0 to
// encode "this coefficient needs no noise" (e.g. structurally-zero nominal
// coefficients under fanout-1 groups).
func (s *Source) Laplace(magnitude float64) float64 {
	if magnitude <= 0 {
		return 0
	}
	// Inverse CDF applied to u uniform in (-1/2, 1/2]:
	//   x = -b · sgn(u) · ln(1 - 2|u|)
	u := s.Float64() - 0.5
	if u == -0.5 {
		u = 0.5 // map the single excluded endpoint to its mirror
	}
	if u < 0 {
		return magnitude * math.Log(1+2*u) // note Log(1-2|u|) with sign folded in
	}
	return -magnitude * math.Log(1-2*u)
}

// LaplaceVec fills dst with independent Laplace draws of the given
// magnitude.
func (s *Source) LaplaceVec(dst []float64, magnitude float64) {
	for i := range dst {
		dst[i] = s.Laplace(magnitude)
	}
}

// Geometric returns a draw from the geometric distribution on {0, 1, ...}
// with success probability p. Used by the synthetic data generators.
func (s *Source) Geometric(p float64) (int, error) {
	if p <= 0 || p > 1 {
		return 0, errors.New("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0, nil
	}
	u := s.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p))), nil
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent
// alpha > 0: P(k) ∝ (k+1)^(-alpha). The cumulative table is rebuilt per
// call only when n differs from the cached table; callers that need many
// draws should use NewZipf.
func (s *Source) Zipf(n int, alpha float64) int {
	z := NewZipf(n, alpha)
	return z.Draw(s)
}

// Zipfian is a precomputed sampler for the Zipf distribution over [0, n).
type Zipfian struct {
	cdf []float64
}

// NewZipf builds the cumulative table for P(k) ∝ (k+1)^(-alpha), k ∈ [0,n).
// It panics if n <= 0 or alpha < 0, which are programming errors.
func NewZipf(n int, alpha float64) *Zipfian {
	if n <= 0 {
		panic("rng: NewZipf requires n > 0")
	}
	if alpha < 0 {
		panic("rng: NewZipf requires alpha >= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -alpha)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipfian{cdf: cdf}
}

// Draw samples one value in [0, n) using binary search over the CDF.
func (z *Zipfian) Draw(s *Source) int {
	u := s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
