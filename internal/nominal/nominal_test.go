package nominal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// figure3 builds the paper's Figure 3 hierarchy: root with two internal
// nodes, each covering three leaves.
func figure3(t testing.TB) *Transform {
	t.Helper()
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// Figure 3 input frequency vector and expected coefficients (level order:
// c0 root, c1, c2 internals, c3..c8 leaves).
var (
	figure3Input  = []float64{9, 3, 6, 2, 8, 2}
	figure3Coeffs = []float64{30, 3, -3, 3, -3, 0, -2, 4, -2}
)

func TestPaperFigure3Forward(t *testing.T) {
	tr := figure3(t)
	got, err := tr.Forward(figure3Input)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("coefficient count = %d, want 9", len(got))
	}
	for i, want := range figure3Coeffs {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("c%d = %v, want %v", i, got[i], want)
		}
	}
}

func TestPaperExample3Reconstruction(t *testing.T) {
	// Example 3: v1 = 9 = c3 + c0/2/3 + c1/3.
	c := figure3Coeffs
	v1 := c[3] + c[0]/2/3 + c[1]/3
	if v1 != 9 {
		t.Fatalf("Example 3 arithmetic: v1 = %v, want 9", v1)
	}
	tr := figure3(t)
	rec, err := tr.Inverse(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range figure3Input {
		if math.Abs(rec[i]-want) > 1e-12 {
			t.Errorf("v%d = %v, want %v", i+1, rec[i], want)
		}
	}
}

func TestOverCompleteness(t *testing.T) {
	// §V-A: m' − m equals the number of internal nodes of H.
	tr := figure3(t)
	if tr.OutputSize()-tr.InputSize() != tr.Hierarchy().InternalCount() {
		t.Fatalf("over-completeness: out=%d in=%d internals=%d",
			tr.OutputSize(), tr.InputSize(), tr.Hierarchy().InternalCount())
	}
}

func TestSiblingGroupsSumToZero(t *testing.T) {
	// By construction, every sibling group of noiseless coefficients sums
	// to zero (each is leaf-sum minus the group average).
	tr := figure3(t)
	c, err := tr.Forward(figure3Input)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Hierarchy().Nodes() {
		if n.IsLeaf() {
			continue
		}
		sum := 0.0
		for _, ch := range n.Children {
			sum += c[ch.ID]
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("sibling group under %q sums to %v, want 0", n.Label, sum)
		}
	}
}

func TestMeanSubtractRestoresZeroSums(t *testing.T) {
	tr := figure3(t)
	c, _ := tr.Forward(figure3Input)
	r := rng.New(5)
	for i := range c {
		c[i] += r.Laplace(2)
	}
	if err := tr.MeanSubtract(c); err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Hierarchy().Nodes() {
		if n.IsLeaf() {
			continue
		}
		sum := 0.0
		for _, ch := range n.Children {
			sum += c[ch.ID]
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("after MeanSubtract, group under %q sums to %v", n.Label, sum)
		}
	}
}

func TestMeanSubtractIdempotentOnCleanCoefficients(t *testing.T) {
	tr := figure3(t)
	c, _ := tr.Forward(figure3Input)
	orig := append([]float64(nil), c...)
	if err := tr.MeanSubtract(c); err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if math.Abs(c[i]-orig[i]) > 1e-12 {
			t.Fatalf("MeanSubtract changed clean coefficient %d: %v -> %v", i, orig[i], c[i])
		}
	}
}

func TestWeights(t *testing.T) {
	tr := figure3(t)
	w := tr.Weights()
	// Base weight 1; children of root (fanout 2): 2/(2·2−2) = 1;
	// children of the internals (fanout 3): 3/(2·3−2) = 3/4.
	want := []float64{1, 1, 1, 0.75, 0.75, 0.75, 0.75, 0.75, 0.75}
	for i, ww := range want {
		if w[i] != ww {
			t.Errorf("W_Nom(c%d) = %v, want %v", i, w[i], ww)
		}
	}
}

func TestWeightFanout1(t *testing.T) {
	// A chain (fanout-1 internal node) yields structurally-zero child
	// coefficients; Weight must report the no-noise sentinel 0.
	root := &hierarchy.Node{Label: "r", Children: []*hierarchy.Node{
		{Label: "chain", Children: []*hierarchy.Node{{Label: "leaf"}}},
	}}
	h, err := hierarchy.Build(root)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	// Node IDs: 0 root, 1 chain, 2 leaf. Root fanout 1 ⇒ c1 weight 0;
	// chain fanout 1 ⇒ c2 weight 0.
	if tr.Weight(0) != 1 {
		t.Errorf("base weight = %v, want 1", tr.Weight(0))
	}
	if tr.Weight(1) != 0 || tr.Weight(2) != 0 {
		t.Errorf("chain weights = %v, %v, want 0, 0", tr.Weight(1), tr.Weight(2))
	}
	// And those coefficients are indeed identically zero.
	c, err := tr.Forward([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 7 || c[1] != 0 || c[2] != 0 {
		t.Errorf("chain coefficients = %v, want [7 0 0]", c)
	}
	// Round trip still works.
	v, err := tr.Inverse(c)
	if err != nil || v[0] != 7 {
		t.Errorf("chain inverse = %v, %v", v, err)
	}
}

func TestGeneralizedSensitivityFormula(t *testing.T) {
	tr := figure3(t)
	if got := tr.GeneralizedSensitivity(); got != 3 {
		t.Fatalf("GS = %v, want 3 (height)", got)
	}
}

// TestGeneralizedSensitivityEmpirical verifies Lemma 4: offsetting one
// entry by δ produces weighted coefficient change exactly h·δ (for
// hierarchies without fanout-1 chains).
func TestGeneralizedSensitivityEmpirical(t *testing.T) {
	r := rng.New(11)
	shapes := [][2]int{{2, 3}, {4, 4}, {3, 7}, {22, 23}}
	for _, shape := range shapes {
		h, err := hierarchy.ThreeLevel(shape[0], shape[1])
		if err != nil {
			t.Fatal(err)
		}
		tr, err := New(h)
		if err != nil {
			t.Fatal(err)
		}
		m := h.LeafCount()
		v := make([]float64, m)
		for i := range v {
			v[i] = math.Floor(r.Float64() * 20)
		}
		base, _ := tr.Forward(v)
		w := tr.Weights()
		for trial := 0; trial < 5; trial++ {
			pos := r.Intn(m)
			delta := 1 + r.Float64()*3
			mod := append([]float64(nil), v...)
			mod[pos] += delta
			pert, _ := tr.Forward(mod)
			weighted := 0.0
			for k := range base {
				weighted += w[k] * math.Abs(pert[k]-base[k])
			}
			want := tr.GeneralizedSensitivity() * delta
			if math.Abs(weighted-want) > 1e-9*want {
				t.Fatalf("shape %v: weighted change %v, want %v", shape, weighted, want)
			}
		}
	}
}

// TestDeepHierarchySensitivity checks Lemma 4 on a 4-level tree.
func TestDeepHierarchySensitivity(t *testing.T) {
	h, err := hierarchy.FromFanouts(2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	if tr.GeneralizedSensitivity() != 4 {
		t.Fatalf("GS = %v, want 4", tr.GeneralizedSensitivity())
	}
	m := h.LeafCount()
	v := make([]float64, m)
	base, _ := tr.Forward(v)
	mod := append([]float64(nil), v...)
	mod[3] += 2.5
	pert, _ := tr.Forward(mod)
	w := tr.Weights()
	weighted := 0.0
	for k := range base {
		weighted += w[k] * math.Abs(pert[k]-base[k])
	}
	if math.Abs(weighted-4*2.5) > 1e-9 {
		t.Fatalf("deep tree weighted change = %v, want 10", weighted)
	}
}

func TestInputValidation(t *testing.T) {
	tr := figure3(t)
	if _, err := tr.Forward(make([]float64, 5)); err == nil {
		t.Error("Forward with wrong length should fail")
	}
	if _, err := tr.Inverse(make([]float64, 6)); err == nil {
		t.Error("Inverse with wrong length should fail")
	}
	if err := tr.MeanSubtract(make([]float64, 3)); err == nil {
		t.Error("MeanSubtract with wrong length should fail")
	}
	if _, err := New(nil); err == nil {
		t.Error("New(nil) should fail")
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rng.New(21)
	shapes := [][]int{{2}, {5}, {2, 3}, {4, 8}, {2, 3, 4}, {3, 3, 3}}
	for _, fo := range shapes {
		h, err := hierarchy.FromFanouts(fo...)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := New(h)
		if err != nil {
			t.Fatal(err)
		}
		v := make([]float64, h.LeafCount())
		for i := range v {
			v[i] = r.Float64()*100 - 50
		}
		c, err := tr.Forward(v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := tr.Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-9 {
				t.Fatalf("shape %v: round trip failed at %d: %v vs %v", fo, i, back[i], v[i])
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	tr := figure3(t)
	r := rng.New(23)
	m := tr.InputSize()
	x := make([]float64, m)
	y := make([]float64, m)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	a := -2.5
	combo := make([]float64, m)
	for i := range combo {
		combo[i] = a*x[i] + y[i]
	}
	tx, _ := tr.Forward(x)
	ty, _ := tr.Forward(y)
	tc, _ := tr.Forward(combo)
	for i := range tc {
		want := a*tx[i] + ty[i]
		if math.Abs(tc[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, tc[i], want)
		}
	}
}

func TestFlatHierarchy(t *testing.T) {
	// h = 2: base + one sibling group of all leaves.
	h, err := hierarchy.Flat(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(h)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 2, 3, 6}
	c, err := tr.Forward(v)
	if err != nil {
		t.Fatal(err)
	}
	// Base = 12; leaves: value − 3 (the average).
	want := []float64{12, -2, -1, 0, 3}
	for i, wv := range want {
		if math.Abs(c[i]-wv) > 1e-12 {
			t.Errorf("flat c%d = %v, want %v", i, c[i], wv)
		}
	}
	if tr.GeneralizedSensitivity() != 2 {
		t.Errorf("flat GS = %v, want 2", tr.GeneralizedSensitivity())
	}
	// W_Nom for leaves: f/(2f−2) with f = 4 → 2/3.
	for i := 1; i <= 4; i++ {
		if math.Abs(tr.Weight(i)-2.0/3) > 1e-12 {
			t.Errorf("flat weight c%d = %v, want 2/3", i, tr.Weight(i))
		}
	}
}

// TestLemma5VarianceBound checks the 4σ² utility bound by Monte Carlo on
// the Figure 3 hierarchy for a range of query nodes.
func TestLemma5VarianceBound(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	tr := figure3(t)
	h := tr.Hierarchy()
	r := rng.New(777)
	const trials = 4000
	sigma := 1.5
	w := tr.Weights()

	// Queries: every node of the hierarchy (leaf ⇒ point query; internal
	// ⇒ subtree roll-up).
	for _, q := range h.Nodes() {
		sumSq := 0.0
		noisy := make([]float64, tr.OutputSize())
		for trial := 0; trial < trials; trial++ {
			for k := range noisy {
				if w[k] == 0 {
					noisy[k] = 0
					continue
				}
				noisy[k] = r.Laplace(sigma / (math.Sqrt2 * w[k]))
			}
			if err := tr.MeanSubtract(noisy); err != nil {
				t.Fatal(err)
			}
			rec, err := tr.Inverse(noisy)
			if err != nil {
				t.Fatal(err)
			}
			qv := 0.0
			for i := q.LeafLo; i <= q.LeafHi; i++ {
				qv += rec[i]
			}
			sumSq += qv * qv
		}
		empirical := sumSq / trials
		bound := 4 * sigma * sigma
		if empirical > bound*1.10 {
			t.Fatalf("query %q: empirical variance %v exceeds Lemma 5 bound %v", q.Label, empirical, bound)
		}
	}
}

// Property: round trip is the identity for random two-level shapes.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, gRaw, lRaw uint8) bool {
		g := int(gRaw%5) + 1
		l := int(lRaw%6) + 1
		h, err := hierarchy.ThreeLevel(g, l)
		if err != nil {
			return false
		}
		tr, err := New(h)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		v := make([]float64, h.LeafCount())
		for i := range v {
			v[i] = r.Float64()*40 - 20
		}
		c, err := tr.Forward(v)
		if err != nil {
			return false
		}
		back, err := tr.Inverse(c)
		if err != nil {
			return false
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean subtraction never changes what noiseless coefficients
// reconstruct to (it is the identity on the image of Forward).
func TestMeanSubtractPreservesImageQuick(t *testing.T) {
	f := func(seed uint64, gRaw uint8) bool {
		g := int(gRaw%4) + 2
		h, err := hierarchy.ThreeLevel(g, 3)
		if err != nil {
			return false
		}
		tr, err := New(h)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		v := make([]float64, h.LeafCount())
		for i := range v {
			v[i] = r.Float64() * 10
		}
		c, err := tr.Forward(v)
		if err != nil {
			return false
		}
		if err := tr.MeanSubtract(c); err != nil {
			return false
		}
		back, err := tr.Inverse(c)
		if err != nil {
			return false
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
