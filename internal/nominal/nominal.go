// Package nominal implements the paper's novel nominal wavelet transform
// (§V), the instantiation of Privelet for attributes whose domains carry a
// hierarchy instead of a total order.
//
// Given a frequency vector over the |A| leaves of a hierarchy H, the
// transform produces one coefficient per node of H (it is over-complete by
// the number of internal nodes, §V-A):
//
//   - the base coefficient (root) holds the leaf-sum of the whole vector;
//   - every other node's coefficient is its leaf-sum minus the average
//     leaf-sum of its parent's children.
//
// Entries are reconstructed by Equation 5. Before reconstruction of noisy
// coefficients, the mean-subtraction refinement (§V-B) recenters every
// sibling group to sum to zero, which restores the structural invariant
// the noiseless coefficients satisfy and is what the 4σ² utility bound of
// Lemma 5 relies on. Mean subtraction reads nothing but the noisy
// coefficients, so it does not affect privacy (§III-A).
//
// Coefficient layout: level order over the nodes of H, root (base) first —
// node ID i of internal/hierarchy owns coefficient index i. This is the
// layout the HN transform requires.
package nominal

import (
	"fmt"

	"repro/internal/hierarchy"
)

// Transform is a nominal wavelet transform bound to one hierarchy. It is
// immutable and safe for concurrent use.
type Transform struct {
	h *hierarchy.Hierarchy
}

// New returns a Transform over h. The hierarchy must have at least one
// leaf (guaranteed by hierarchy.Build).
func New(h *hierarchy.Hierarchy) (*Transform, error) {
	if h == nil {
		return nil, fmt.Errorf("nominal: nil hierarchy")
	}
	return &Transform{h: h}, nil
}

// Hierarchy returns the hierarchy the transform is bound to.
func (t *Transform) Hierarchy() *hierarchy.Hierarchy { return t.h }

// InputSize returns the required input vector length |A|.
func (t *Transform) InputSize() int { return t.h.LeafCount() }

// OutputSize returns the coefficient count: one per node of H.
func (t *Transform) OutputSize() int { return t.h.NodeCount() }

// Forward computes the nominal wavelet coefficients of v, whose length
// must equal InputSize. Coefficient i belongs to hierarchy node ID i.
func (t *Transform) Forward(v []float64) ([]float64, error) {
	if len(v) != t.InputSize() {
		return nil, fmt.Errorf("nominal: input length %d, want %d", len(v), t.InputSize())
	}
	out := make([]float64, t.OutputSize())
	t.ForwardInto(v, out)
	return out, nil
}

// ForwardInto is Forward into a caller-provided slice of length
// OutputSize. dst must not alias src.
func (t *Transform) ForwardInto(src, dst []float64) {
	t.ForwardIntoScratch(src, dst, make([]float64, t.OutputSize()))
}

// ForwardIntoScratch is ForwardInto with caller-provided scratch of
// length ≥ OutputSize, so per-worker transform kernels allocate nothing
// per call. scratch must alias neither src nor dst.
func (t *Transform) ForwardIntoScratch(src, dst, scratch []float64) {
	nodes := t.h.Nodes()
	// leafSum per node, computable in one reverse level-order sweep
	// because children always have larger IDs than their parent.
	sums := scratch[:len(nodes)]
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if n.IsLeaf() {
			sums[i] = src[n.LeafLo]
			continue
		}
		s := 0.0
		for _, c := range n.Children {
			s += sums[c.ID]
		}
		sums[i] = s
	}
	for i, n := range nodes {
		if n.Parent == nil {
			dst[i] = sums[i] // base coefficient: total leaf-sum
			continue
		}
		p := n.Parent
		avg := sums[p.ID] / float64(p.Fanout())
		dst[i] = sums[i] - avg
	}
}

// Inverse reconstructs the frequency vector from coefficients via
// Equation 5. The coefficient slice must have length OutputSize.
func (t *Transform) Inverse(coeffs []float64) ([]float64, error) {
	if len(coeffs) != t.OutputSize() {
		return nil, fmt.Errorf("nominal: coefficient length %d, want %d", len(coeffs), t.OutputSize())
	}
	out := make([]float64, t.InputSize())
	t.InverseInto(coeffs, out)
	return out, nil
}

// InverseInto is Inverse into a caller-provided slice of length InputSize.
// dst must not alias src.
func (t *Transform) InverseInto(src, dst []float64) {
	t.InverseIntoScratch(src, dst, make([]float64, t.OutputSize()))
}

// InverseIntoScratch is InverseInto with caller-provided scratch of
// length ≥ OutputSize. scratch must alias neither src nor dst.
func (t *Transform) InverseIntoScratch(src, dst, scratch []float64) {
	nodes := t.h.Nodes()
	// Recover each node's (noisy) leaf-sum top-down:
	//   leafSum(root) = c_root
	//   leafSum(N)    = c_N + leafSum(parent)/fanout(parent),
	// which is exactly the recursion behind Equation 5.
	sums := scratch[:len(nodes)]
	for i, n := range nodes {
		if n.Parent == nil {
			sums[i] = src[i]
			continue
		}
		p := n.Parent
		sums[i] = src[i] + sums[p.ID]/float64(p.Fanout())
	}
	for _, leaf := range t.h.Leaves() {
		dst[leaf.LeafLo] = sums[leaf.ID]
	}
}

// MeanSubtract applies the §V-B refinement in place: for every sibling
// group (maximal set of coefficients sharing a parent in the decomposition
// tree) subtract the group mean so the group sums to zero. The base
// coefficient is left untouched.
func (t *Transform) MeanSubtract(coeffs []float64) error {
	if len(coeffs) != t.OutputSize() {
		return fmt.Errorf("nominal: coefficient length %d, want %d", len(coeffs), t.OutputSize())
	}
	for _, n := range t.h.Nodes() {
		if n.IsLeaf() {
			continue
		}
		mean := 0.0
		for _, c := range n.Children {
			mean += coeffs[c.ID]
		}
		mean /= float64(n.Fanout())
		for _, c := range n.Children {
			coeffs[c.ID] -= mean
		}
	}
	return nil
}

// Weight returns W_Nom for coefficient index k (§V-B): 1 for the base
// coefficient, otherwise f/(2f−2) where f is the fanout of the
// coefficient's parent in the decomposition tree. A fanout-1 sibling group
// has structurally-zero coefficients that need no noise; Weight reports
// +Inf-free sentinel 0 for them — callers must treat weight 0 as "add no
// noise" (rng.Laplace does this for magnitude 0 via λ/W conventions; see
// Magnitudes in internal/privacy).
func (t *Transform) Weight(k int) float64 {
	n := t.h.Nodes()[k]
	if n.Parent == nil {
		return 1
	}
	f := n.Parent.Fanout()
	if f == 1 {
		return 0 // structurally zero coefficient: no noise required
	}
	return float64(f) / float64(2*f-2)
}

// Weights returns the full W_Nom vector aligned with Forward's layout.
func (t *Transform) Weights() []float64 {
	w := make([]float64, t.OutputSize())
	for k := range w {
		w[k] = t.Weight(k)
	}
	return w
}

// GeneralizedSensitivity returns the generalized sensitivity of the
// transform with respect to W_Nom: the height h of the hierarchy
// (Lemma 4).
func (t *Transform) GeneralizedSensitivity() float64 {
	return float64(t.h.Height())
}

// QueryVarianceFactor returns Lemma 5's constant: with per-coefficient
// noise variance at most (σ/W_Nom(c))² and mean subtraction applied, any
// range-count query answered on the reconstruction has noise variance
// less than 4σ².
func (t *Transform) QueryVarianceFactor() float64 { return 4 }
