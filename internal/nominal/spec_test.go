package nominal

import (
	"math"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// specForward implements §V-A's definition verbatim and independently of
// the production code: the base coefficient is the total leaf-sum; every
// other node's coefficient is its leaf-sum minus the average leaf-sum of
// its parent's children. O(nodes · leaves).
func specForward(h *hierarchy.Hierarchy, v []float64) []float64 {
	leafSum := func(n *hierarchy.Node) float64 {
		s := 0.0
		for i := n.LeafLo; i <= n.LeafHi; i++ {
			s += v[i]
		}
		return s
	}
	out := make([]float64, h.NodeCount())
	for _, n := range h.Nodes() {
		if n.Parent == nil {
			out[n.ID] = leafSum(n)
			continue
		}
		avg := 0.0
		for _, sib := range n.Parent.Children {
			avg += leafSum(sib)
		}
		avg /= float64(n.Parent.Fanout())
		out[n.ID] = leafSum(n) - avg
	}
	return out
}

// specInverse implements Equation 5 verbatim for each entry: walk the
// ancestor chain multiplying reciprocal fanouts.
func specInverse(h *hierarchy.Hierarchy, c []float64) []float64 {
	out := make([]float64, h.LeafCount())
	for _, leaf := range h.Leaves() {
		// Ancestors from the leaf's H-node up to the root.
		var chain []*hierarchy.Node
		for n := leaf; n != nil; n = n.Parent {
			chain = append(chain, n)
		}
		// chain[0] = leaf node (c_{h−1}), chain[len-1] = root (c_0).
		v := c[chain[0].ID]
		factor := 1.0
		for j := 1; j < len(chain); j++ {
			factor /= float64(chain[j].Fanout())
			v += c[chain[j].ID] * factor
		}
		out[leaf.LeafLo] = v
	}
	return out
}

func specHierarchies(t *testing.T) []*hierarchy.Hierarchy {
	t.Helper()
	var out []*hierarchy.Hierarchy
	for _, build := range []func() (*hierarchy.Hierarchy, error){
		func() (*hierarchy.Hierarchy, error) { return hierarchy.Flat(6) },
		func() (*hierarchy.Hierarchy, error) { return hierarchy.ThreeLevel(2, 3) },
		func() (*hierarchy.Hierarchy, error) { return hierarchy.ThreeLevel(5, 4) },
		func() (*hierarchy.Hierarchy, error) { return hierarchy.FromFanouts(2, 3, 2) },
		func() (*hierarchy.Hierarchy, error) { return hierarchy.FromFanouts(4, 4) },
	} {
		h, err := build()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, h)
	}
	return out
}

func TestForwardMatchesSpec(t *testing.T) {
	r := rng.New(201)
	for hi, h := range specHierarchies(t) {
		tr, err := New(h)
		if err != nil {
			t.Fatal(err)
		}
		v := make([]float64, h.LeafCount())
		for i := range v {
			v[i] = r.Float64()*30 - 15
		}
		fast, err := tr.Forward(v)
		if err != nil {
			t.Fatal(err)
		}
		slow := specForward(h, v)
		for k := range fast {
			if math.Abs(fast[k]-slow[k]) > 1e-9 {
				t.Fatalf("hierarchy %d coefficient %d: fast %v, spec %v", hi, k, fast[k], slow[k])
			}
		}
	}
}

func TestInverseMatchesSpec(t *testing.T) {
	r := rng.New(202)
	for hi, h := range specHierarchies(t) {
		tr, err := New(h)
		if err != nil {
			t.Fatal(err)
		}
		c := make([]float64, tr.OutputSize())
		for i := range c {
			c[i] = r.Float64()*8 - 4
		}
		fast, err := tr.Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		slow := specInverse(h, c)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-9 {
				t.Fatalf("hierarchy %d entry %d: fast %v, spec %v", hi, i, fast[i], slow[i])
			}
		}
	}
}

func TestSpecSelfConsistency(t *testing.T) {
	r := rng.New(203)
	for _, h := range specHierarchies(t) {
		v := make([]float64, h.LeafCount())
		for i := range v {
			v[i] = math.Floor(r.Float64() * 12)
		}
		back := specInverse(h, specForward(h, v))
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-9 {
				t.Fatalf("spec round trip failed at leaf %d", i)
			}
		}
	}
}
