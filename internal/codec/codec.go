// Package codec serializes releases — schema, hierarchies, noisy matrix
// and privacy accounting — to a compact, versioned binary format, so a
// release published once can be stored, shipped, and queried elsewhere
// without republishing (and without spending more ε). This is the
// serialization of the paper's publish-once model (§I, §III: the budget
// is spent when M* is released; everything after is post-processing),
// and the byte format behind the single durability chokepoint
// store.EncodeRelease/DecodeRelease (docs/ARCHITECTURE.md).
//
// Format (all integers little-endian; varint = unsigned LEB128 as in
// encoding/binary):
//
//	magic   "PRVL"            4 bytes
//	version u16               1 or 2
//	meta    mechanism string, epsilon/rho/lambda/bound float64
//	schema  attr count varint, then per attribute:
//	          name string, kind u8, size varint,
//	          nominal only: hierarchy in preorder
//	            (label string, child count varint, children...)
//	matrix  dim count varint, dims varints, entries float64 LE
//
// Version 2 (the durable format carrying the precomputed summed-area
// table, so reloading a release costs zero prefix-sum work — the
// paper's §V constant-time query evaluator persisted alongside the
// data it answers from) keeps the header/meta/schema sections and
// dims bit-identical, then aligns and extends the tail:
//
//	pad     u8 length + zero bytes   (matrix entries 8-byte aligned)
//	matrix  entries float64 LE       (same values as version 1)
//	pad     u8 length + zero bytes   (table 8-byte aligned)
//	table   entries float64 LE       (summed-area table over the matrix)
//	total   float64 LE               (sum of raw matrix entries)
//	crc     u32 LE                   (CRC-32C of table + total bytes)
//	end     "PVL2"                   4 bytes
//
// The 8-byte alignment of both float64 sections is what lets a reader
// memory-map the file and serve queries straight from the mapped table
// (DecodeMapped); the checksum is what keeps a torn or bit-flipped
// table from silently answering garbage — a failed check surfaces as
// ErrTable with the (still intact) matrix payload, so callers rebuild
// the table instead of trusting it. Strings are varint length + UTF-8
// bytes. The format is self-describing enough for forward-compatible
// readers to reject unknown versions cleanly, and version-1 files
// remain fully readable forever (golden artifacts pin this in
// testdata/).
package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"unsafe"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
)

const (
	magic    = "PRVL"
	version1 = 1
	version2 = 2
	// endMagic terminates a version-2 stream; its absence after the
	// checksum marks a truncated tail.
	endMagic = "PVL2"
	// maxStringLen bounds decoded strings to keep corrupt inputs from
	// allocating unbounded memory.
	maxStringLen = 1 << 20
)

// crcTable is the CRC-32C (Castagnoli) polynomial — hardware-accelerated
// on amd64/arm64, so checksumming the table costs far less than the
// prefix-sum rebuild it replaces.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrTable tags a version-2 decode whose summed-area table section is
// unreadable — checksum mismatch, truncated tail, or missing end magic —
// while the payload proper (meta, schema, matrix) decoded fine. Decode
// and DecodeMapped return the intact payload WITH an error wrapping
// ErrTable in that case: callers must not serve the table, but they can
// (and the store does) rebuild it from the matrix instead of failing
// the whole release. Test with errors.Is.
var ErrTable = errors.New("codec: summed-area table unreadable")

// hostLittleEndian reports whether this machine's float64 layout matches
// the wire format, i.e. whether a mapped table can be served zero-copy.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Meta is the privacy accounting carried alongside a release.
type Meta struct {
	Mechanism string
	Epsilon   float64
	Rho       float64
	Lambda    float64
	Bound     float64
}

// Payload is everything a stored release contains.
type Payload struct {
	Meta   Meta
	Schema *dataset.Schema
	Noisy  *matrix.Matrix
	// Table, when non-nil, is the summed-area (prefix-sum) table over
	// Noisy — the evaluator's precomputed state, persisted by format
	// version 2 so a reload performs zero prefix-sum work. Its dims
	// always equal Noisy's. Total is the sum of Noisy's entries (the
	// evaluator's cached total); it is meaningful only when Table is
	// set.
	Table *matrix.Matrix
	Total float64
}

// countWriter counts bytes written through it — the encoder needs
// absolute offsets to place the alignment padding of format version 2.
type countWriter struct {
	w *bufio.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countWriter) WriteByte(b byte) error {
	err := c.w.WriteByte(b)
	if err == nil {
		c.n++
	}
	return err
}

func (c *countWriter) WriteString(s string) (int, error) {
	n, err := c.w.WriteString(s)
	c.n += int64(n)
	return n, err
}

// Encode writes the payload to w: format version 2 when p.Table is set
// (the durable form every spill file and /export response uses), the
// table-less version 1 otherwise. Encoding is deterministic — equal
// payloads produce bit-identical bytes.
func Encode(w io.Writer, p *Payload) error {
	if p == nil || p.Schema == nil || p.Noisy == nil {
		return fmt.Errorf("codec: nil payload components")
	}
	ver := uint16(version1)
	if p.Table != nil {
		if !equalDims(p.Table.Dims(), p.Noisy.Dims()) {
			return fmt.Errorf("codec: table dims %v do not match matrix dims %v", p.Table.Dims(), p.Noisy.Dims())
		}
		ver = version2
	}
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, ver); err != nil {
		return err
	}
	if err := writeString(cw, p.Meta.Mechanism); err != nil {
		return err
	}
	for _, f := range []float64{p.Meta.Epsilon, p.Meta.Rho, p.Meta.Lambda, p.Meta.Bound} {
		if err := binary.Write(cw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	if err := encodeSchema(cw, p.Schema); err != nil {
		return err
	}
	dims := p.Noisy.Dims()
	writeUvarint(cw, uint64(len(dims)))
	for _, d := range dims {
		writeUvarint(cw, uint64(d))
	}
	if ver == version2 {
		if err := writePad(cw); err != nil {
			return err
		}
	}
	if err := writeFloats(cw, p.Noisy.Data(), nil); err != nil {
		return err
	}
	if ver == version2 {
		if err := writePad(cw); err != nil {
			return err
		}
		h := crc32.New(crcTable)
		if err := writeFloats(cw, p.Table.Data(), h); err != nil {
			return err
		}
		var tot [8]byte
		binary.LittleEndian.PutUint64(tot[:], math.Float64bits(p.Total))
		if _, err := cw.Write(tot[:]); err != nil {
			return err
		}
		h.Write(tot[:])
		if err := binary.Write(cw, binary.LittleEndian, h.Sum32()); err != nil {
			return err
		}
		if _, err := cw.WriteString(endMagic); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// reader is what the sequential decoder needs — satisfied by both
// *bufio.Reader (streams) and *bytes.Reader (mapped buffers).
type reader interface {
	io.Reader
	io.ByteReader
}

// Decode reads a payload from r (format version 1 or 2). For a
// version-2 stream whose table section fails its checksum or is
// truncated, Decode returns the intact payload (Table nil) together
// with an error wrapping ErrTable — see ErrTable for the contract.
func Decode(r io.Reader) (*Payload, error) {
	br := bufio.NewReader(r)
	ver, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	p, dims, err := decodeCommon(br)
	if err != nil {
		return nil, err
	}
	m, err := matrix.New(dims...)
	if err != nil {
		return nil, err
	}
	if ver == version2 {
		if err := skipPad(br); err != nil {
			return nil, fmt.Errorf("codec: matrix padding: %w", err)
		}
	}
	if err := readFloats(br, m.Data(), nil); err != nil {
		return nil, fmt.Errorf("codec: matrix entries: %w", err)
	}
	p.Noisy = m
	if ver == version1 {
		return p, nil
	}
	if err := decodeTable(br, p, dims); err != nil {
		return p, fmt.Errorf("codec: %v: %w", err, ErrTable)
	}
	return p, nil
}

// MapInfo reports which sections of a DecodeMapped payload are zero-copy
// views over the caller's buffer (as opposed to heap copies) — the
// store's residency accounting distinguishes the two on /stats.
type MapInfo struct {
	// Noisy and Table report that the respective matrix's backing slice
	// aliases the input buffer.
	Noisy bool
	Table bool
}

// DecodeMapped decodes a payload from an in-memory buffer — typically a
// memory-mapped spill file — wrapping the float64 sections zero-copy
// where the format allows it (version 2, little-endian host, 8-byte
// aligned buffer): the returned matrices then read straight from data's
// pages, and reloading a release costs no decode and no prefix-sum
// work. pin is retained by every zero-copy matrix (matrix.Wrap), so a
// finalizer-managed mapping stays alive as long as any view of it;
// callers must not mutate data afterwards. Sections that cannot be
// wrapped (version-1 input, misalignment, byte-swapped host) are copied
// instead — same values, heap-backed. The ErrTable contract matches
// Decode: a corrupt table section returns the intact payload plus an
// error wrapping ErrTable.
func DecodeMapped(data []byte, pin any) (*Payload, MapInfo, error) {
	// pin must stay reachable for as long as data is read: a
	// finalizer-managed mapping (mmapfile.File) whose last reference is
	// this call's argument would otherwise be collectable — and its
	// pages unmapped — mid-decode, since the collector does not trace
	// data's off-heap backing. After return, reachability transfers to
	// the zero-copy matrices (matrix.Wrap holds pin); copy-decoded
	// sections no longer need the mapping at all.
	defer runtime.KeepAlive(pin)
	r := bytes.NewReader(data)
	var info MapInfo
	ver, err := readHeader(r)
	if err != nil {
		return nil, info, err
	}
	p, dims, err := decodeCommon(r)
	if err != nil {
		return nil, info, err
	}
	n := p.Schema.DomainSize()
	if ver == version1 {
		m, err := matrix.New(dims...)
		if err != nil {
			return nil, info, err
		}
		if err := readFloats(r, m.Data(), nil); err != nil {
			return nil, info, fmt.Errorf("codec: matrix entries: %w", err)
		}
		p.Noisy = m
		return p, info, nil
	}
	noisyVals, _, noisyMapped, err := takeFloats(data, r, n, pin)
	if err != nil {
		return nil, info, fmt.Errorf("codec: matrix entries: %w", err)
	}
	if p.Noisy, err = matrix.Wrap(noisyVals, pinIf(noisyMapped, pin), dims...); err != nil {
		return nil, info, err
	}
	info.Noisy = noisyMapped
	if err := mapTable(data, r, p, dims, n, pin, &info); err != nil {
		return p, info, fmt.Errorf("codec: %v: %w", err, ErrTable)
	}
	return p, info, nil
}

// mapTable decodes the version-2 table section of a mapped buffer into
// p, verifying the checksum against the raw bytes. Any failure leaves p
// without a table (the caller wraps the error in ErrTable).
func mapTable(data []byte, r *bytes.Reader, p *Payload, dims []int, n int, pin any, info *MapInfo) error {
	tableVals, raw, tableMapped, err := takeFloats(data, r, n, pin)
	if err != nil {
		return fmt.Errorf("table entries: %v", err)
	}
	totOff := len(data) - r.Len()
	var total float64
	if err := binary.Read(r, binary.LittleEndian, &total); err != nil {
		return fmt.Errorf("table total: %v", err)
	}
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return fmt.Errorf("table checksum: %v", err)
	}
	got := crc32.Update(crc32.Checksum(raw, crcTable), crcTable, data[totOff:totOff+8])
	if got != crc {
		return fmt.Errorf("table checksum mismatch: file says %08x, bytes hash to %08x", crc, got)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return fmt.Errorf("end magic: %v", err)
	}
	if string(tail[:]) != endMagic {
		return fmt.Errorf("bad end magic %q", tail)
	}
	table, err := matrix.Wrap(tableVals, pinIf(tableMapped, pin), dims...)
	if err != nil {
		return err
	}
	p.Table, p.Total = table, total
	info.Table = tableMapped
	return nil
}

// takeFloats consumes one padded float64 section of a mapped buffer:
// it skips the alignment pad, bounds-checks the section, and returns it
// as a []float64 — aliasing data (mapped=true) when the host is
// little-endian and the section is 8-byte aligned, a heap copy
// otherwise — plus the raw bytes for checksumming.
func takeFloats(data []byte, r *bytes.Reader, n int, pin any) (vals []float64, raw []byte, mapped bool, err error) {
	if err := skipPad(r); err != nil {
		return nil, nil, false, err
	}
	off := len(data) - r.Len()
	end := off + n*8
	if n < 0 || end < off || end > len(data) {
		return nil, nil, false, io.ErrUnexpectedEOF
	}
	raw = data[off:end:end]
	if _, err := r.Seek(int64(n)*8, io.SeekCurrent); err != nil {
		return nil, nil, false, err
	}
	if n == 0 {
		return []float64{}, raw, false, nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), n), raw, true, nil
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return vals, raw, false, nil
}

// pinIf returns pin only for zero-copy sections — heap copies have no
// external owner to keep alive.
func pinIf(mapped bool, pin any) any {
	if mapped {
		return pin
	}
	return nil
}

// readHeader consumes and validates the magic and version.
func readHeader(r reader) (uint16, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(head[:]) != magic {
		return 0, fmt.Errorf("codec: bad magic %q", head)
	}
	var ver uint16
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return 0, fmt.Errorf("codec: reading version: %w", err)
	}
	if ver != version1 && ver != version2 {
		return 0, fmt.Errorf("codec: unsupported version %d (want %d or %d)", ver, version1, version2)
	}
	return ver, nil
}

// decodeCommon reads the sections shared by both versions — meta,
// schema, matrix dims — and cross-validates the dims against the
// schema, so no float64 section is read for a structurally broken file.
func decodeCommon(r reader) (*Payload, []int, error) {
	var p Payload
	var err error
	if p.Meta.Mechanism, err = readString(r); err != nil {
		return nil, nil, fmt.Errorf("codec: mechanism: %w", err)
	}
	for _, dst := range []*float64{&p.Meta.Epsilon, &p.Meta.Rho, &p.Meta.Lambda, &p.Meta.Bound} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, nil, fmt.Errorf("codec: meta floats: %w", err)
		}
	}
	if p.Schema, err = decodeSchema(r); err != nil {
		return nil, nil, err
	}
	nd, err := readUvarint(r)
	if err != nil {
		return nil, nil, fmt.Errorf("codec: matrix dim count: %w", err)
	}
	if nd == 0 || nd > 64 {
		return nil, nil, fmt.Errorf("codec: implausible dimensionality %d", nd)
	}
	dims := make([]int, nd)
	for i := range dims {
		d, err := readUvarint(r)
		if err != nil {
			return nil, nil, fmt.Errorf("codec: matrix dim %d: %w", i, err)
		}
		if d == 0 || d > matrix.MaxEntries {
			return nil, nil, fmt.Errorf("codec: implausible dimension size %d", d)
		}
		dims[i] = int(d)
	}
	want := p.Schema.Dims()
	if len(want) != len(dims) {
		return nil, nil, fmt.Errorf("codec: matrix dimensionality %d does not match schema %d", len(dims), len(want))
	}
	for i := range want {
		if want[i] != dims[i] {
			return nil, nil, fmt.Errorf("codec: matrix shape %v does not match schema %v", dims, want)
		}
	}
	return &p, dims, nil
}

// decodeTable reads the version-2 tail of a sequential stream: pad,
// table, total, checksum, end magic. Errors leave p table-less.
func decodeTable(r reader, p *Payload, dims []int) error {
	if err := skipPad(r); err != nil {
		return fmt.Errorf("table padding: %v", err)
	}
	tm, err := matrix.New(dims...)
	if err != nil {
		return err
	}
	h := crc32.New(crcTable)
	if err := readFloats(r, tm.Data(), h); err != nil {
		return fmt.Errorf("table entries: %v", err)
	}
	var tot [8]byte
	if _, err := io.ReadFull(r, tot[:]); err != nil {
		return fmt.Errorf("table total: %v", err)
	}
	h.Write(tot[:])
	total := math.Float64frombits(binary.LittleEndian.Uint64(tot[:]))
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return fmt.Errorf("table checksum: %v", err)
	}
	if got := h.Sum32(); got != crc {
		return fmt.Errorf("table checksum mismatch: file says %08x, bytes hash to %08x", crc, got)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return fmt.Errorf("end magic: %v", err)
	}
	if string(tail[:]) != endMagic {
		return fmt.Errorf("bad end magic %q", tail)
	}
	p.Table, p.Total = tm, total
	return nil
}

func encodeSchema(w *countWriter, s *dataset.Schema) error {
	writeUvarint(w, uint64(s.NumAttrs()))
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(i)
		if err := writeString(w, a.Name); err != nil {
			return err
		}
		kind := byte(0)
		if a.Kind == dataset.Nominal {
			kind = 1
		}
		if err := w.WriteByte(kind); err != nil {
			return err
		}
		writeUvarint(w, uint64(a.Size))
		if a.Kind == dataset.Nominal {
			if err := encodeNode(w, a.Hier.Root()); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeSchema(r reader) (*dataset.Schema, error) {
	count, err := readUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("codec: attr count: %w", err)
	}
	if count == 0 || count > 64 {
		return nil, fmt.Errorf("codec: implausible attribute count %d", count)
	}
	attrs := make([]dataset.Attribute, 0, count)
	for i := uint64(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("codec: attr %d name: %w", i, err)
		}
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("codec: attr %d kind: %w", i, err)
		}
		size, err := readUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("codec: attr %d size: %w", i, err)
		}
		switch kind {
		case 0:
			attrs = append(attrs, dataset.OrdinalAttr(name, int(size)))
		case 1:
			root, err := decodeNode(r, 0)
			if err != nil {
				return nil, fmt.Errorf("codec: attr %d hierarchy: %w", i, err)
			}
			h, err := hierarchy.Build(root)
			if err != nil {
				return nil, fmt.Errorf("codec: attr %d hierarchy: %w", i, err)
			}
			if h.LeafCount() != int(size) {
				return nil, fmt.Errorf("codec: attr %d: hierarchy has %d leaves, size says %d", i, h.LeafCount(), size)
			}
			attrs = append(attrs, dataset.NominalAttr(name, h))
		default:
			return nil, fmt.Errorf("codec: attr %d: unknown kind byte %d", i, kind)
		}
	}
	return dataset.NewSchema(attrs...)
}

// maxHierarchyDepth bounds recursion on corrupt input.
const maxHierarchyDepth = 64

func encodeNode(w *countWriter, n *hierarchy.Node) error {
	if err := writeString(w, n.Label); err != nil {
		return err
	}
	writeUvarint(w, uint64(len(n.Children)))
	for _, c := range n.Children {
		if err := encodeNode(w, c); err != nil {
			return err
		}
	}
	return nil
}

func decodeNode(r reader, depth int) (*hierarchy.Node, error) {
	if depth > maxHierarchyDepth {
		return nil, fmt.Errorf("codec: hierarchy deeper than %d", maxHierarchyDepth)
	}
	label, err := readString(r)
	if err != nil {
		return nil, err
	}
	kids, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if kids > 1<<20 {
		return nil, fmt.Errorf("codec: implausible child count %d", kids)
	}
	n := &hierarchy.Node{Label: label}
	for i := uint64(0); i < kids; i++ {
		c, err := decodeNode(r, depth+1)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

// floatChunk is the number of float64 values converted per I/O chunk —
// 8 KiB buffers keep the encode/decode loops out of per-entry call
// overhead without noticeable stack cost.
const floatChunk = 1024

// writeFloats writes vals as little-endian float64, feeding the same
// bytes to h when non-nil (the table checksum).
func writeFloats(w io.Writer, vals []float64, h hash.Hash32) error {
	var buf [floatChunk * 8]byte
	for len(vals) > 0 {
		k := min(floatChunk, len(vals))
		for i, v := range vals[:k] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:k*8]); err != nil {
			return err
		}
		if h != nil {
			h.Write(buf[:k*8])
		}
		vals = vals[k:]
	}
	return nil
}

// readFloats fills dst from little-endian float64 bytes, feeding the
// raw bytes to h when non-nil.
func readFloats(r io.Reader, dst []float64, h hash.Hash32) error {
	var buf [floatChunk * 8]byte
	for len(dst) > 0 {
		k := min(floatChunk, len(dst))
		if _, err := io.ReadFull(r, buf[:k*8]); err != nil {
			return err
		}
		if h != nil {
			h.Write(buf[:k*8])
		}
		for i := range dst[:k] {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		dst = dst[k:]
	}
	return nil
}

// writePad emits the version-2 alignment pad: one length byte plus that
// many zeros, sized so the next write lands on an 8-byte boundary.
func writePad(w *countWriter) error {
	pad := byte((8 - (w.n+1)%8) % 8)
	if err := w.WriteByte(pad); err != nil {
		return err
	}
	var zeros [8]byte
	_, err := w.Write(zeros[:pad])
	return err
}

// skipPad consumes an alignment pad written by writePad.
func skipPad(r reader) error {
	pad, err := r.ReadByte()
	if err != nil {
		return err
	}
	if pad >= 8 {
		return fmt.Errorf("implausible pad length %d", pad)
	}
	var z [8]byte
	_, err = io.ReadFull(r, z[:pad])
	return err
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeString(w *countWriter, s string) error {
	writeUvarint(w, uint64(len(s)))
	_, err := w.WriteString(s)
	return err
}

func readString(r reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("codec: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeUvarint(w *countWriter, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio.Writer caches the error for Flush
}

func readUvarint(r io.ByteReader) (uint64, error) {
	return binary.ReadUvarint(r)
}
