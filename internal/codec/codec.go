// Package codec serializes releases — schema, hierarchies, noisy matrix
// and privacy accounting — to a compact, versioned binary format, so a
// release published once can be stored, shipped, and queried elsewhere
// without republishing (and without spending more ε). This is the
// serialization of the paper's publish-once model (§I, §III: the budget
// is spent when M* is released; everything after is post-processing),
// and the byte format behind the single durability chokepoint
// store.EncodeRelease/DecodeRelease (docs/ARCHITECTURE.md).
//
// Format (all integers little-endian; varint = unsigned LEB128 as in
// encoding/binary):
//
//	magic   "PRVL"            4 bytes
//	version u16               currently 1
//	meta    mechanism string, epsilon/rho/lambda/bound float64
//	schema  attr count varint, then per attribute:
//	          name string, kind u8, size varint,
//	          nominal only: hierarchy in preorder
//	            (label string, child count varint, children...)
//	matrix  dim count varint, dims varints, entries float64 LE
//
// Strings are varint length + UTF-8 bytes. The format is
// self-describing enough for forward-compatible readers to reject
// unknown versions cleanly.
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
)

const (
	magic   = "PRVL"
	version = 1
	// maxStringLen bounds decoded strings to keep corrupt inputs from
	// allocating unbounded memory.
	maxStringLen = 1 << 20
)

// Meta is the privacy accounting carried alongside a release.
type Meta struct {
	Mechanism string
	Epsilon   float64
	Rho       float64
	Lambda    float64
	Bound     float64
}

// Payload is everything a stored release contains.
type Payload struct {
	Meta   Meta
	Schema *dataset.Schema
	Noisy  *matrix.Matrix
}

// Encode writes the payload to w.
func Encode(w io.Writer, p *Payload) error {
	if p == nil || p.Schema == nil || p.Noisy == nil {
		return fmt.Errorf("codec: nil payload components")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(version)); err != nil {
		return err
	}
	if err := writeString(bw, p.Meta.Mechanism); err != nil {
		return err
	}
	for _, f := range []float64{p.Meta.Epsilon, p.Meta.Rho, p.Meta.Lambda, p.Meta.Bound} {
		if err := binary.Write(bw, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	if err := encodeSchema(bw, p.Schema); err != nil {
		return err
	}
	if err := encodeMatrix(bw, p.Noisy); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a payload from r.
func Decode(r io.Reader) (*Payload, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("codec: bad magic %q", head)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("codec: reading version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("codec: unsupported version %d (want %d)", ver, version)
	}
	var p Payload
	var err error
	if p.Meta.Mechanism, err = readString(br); err != nil {
		return nil, fmt.Errorf("codec: mechanism: %w", err)
	}
	for _, dst := range []*float64{&p.Meta.Epsilon, &p.Meta.Rho, &p.Meta.Lambda, &p.Meta.Bound} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("codec: meta floats: %w", err)
		}
	}
	if p.Schema, err = decodeSchema(br); err != nil {
		return nil, err
	}
	if p.Noisy, err = decodeMatrix(br); err != nil {
		return nil, err
	}
	// Cross-validate: matrix shape must match the schema.
	want := p.Schema.Dims()
	got := p.Noisy.Dims()
	if len(want) != len(got) {
		return nil, fmt.Errorf("codec: matrix dimensionality %d does not match schema %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return nil, fmt.Errorf("codec: matrix shape %v does not match schema %v", got, want)
		}
	}
	return &p, nil
}

func encodeSchema(w *bufio.Writer, s *dataset.Schema) error {
	writeUvarint(w, uint64(s.NumAttrs()))
	for i := 0; i < s.NumAttrs(); i++ {
		a := s.Attr(i)
		if err := writeString(w, a.Name); err != nil {
			return err
		}
		kind := byte(0)
		if a.Kind == dataset.Nominal {
			kind = 1
		}
		if err := w.WriteByte(kind); err != nil {
			return err
		}
		writeUvarint(w, uint64(a.Size))
		if a.Kind == dataset.Nominal {
			if err := encodeNode(w, a.Hier.Root()); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeSchema(r *bufio.Reader) (*dataset.Schema, error) {
	count, err := readUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("codec: attr count: %w", err)
	}
	if count == 0 || count > 64 {
		return nil, fmt.Errorf("codec: implausible attribute count %d", count)
	}
	attrs := make([]dataset.Attribute, 0, count)
	for i := uint64(0); i < count; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, fmt.Errorf("codec: attr %d name: %w", i, err)
		}
		kind, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("codec: attr %d kind: %w", i, err)
		}
		size, err := readUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("codec: attr %d size: %w", i, err)
		}
		switch kind {
		case 0:
			attrs = append(attrs, dataset.OrdinalAttr(name, int(size)))
		case 1:
			root, err := decodeNode(r, 0)
			if err != nil {
				return nil, fmt.Errorf("codec: attr %d hierarchy: %w", i, err)
			}
			h, err := hierarchy.Build(root)
			if err != nil {
				return nil, fmt.Errorf("codec: attr %d hierarchy: %w", i, err)
			}
			if h.LeafCount() != int(size) {
				return nil, fmt.Errorf("codec: attr %d: hierarchy has %d leaves, size says %d", i, h.LeafCount(), size)
			}
			attrs = append(attrs, dataset.NominalAttr(name, h))
		default:
			return nil, fmt.Errorf("codec: attr %d: unknown kind byte %d", i, kind)
		}
	}
	return dataset.NewSchema(attrs...)
}

// maxHierarchyDepth bounds recursion on corrupt input.
const maxHierarchyDepth = 64

func encodeNode(w *bufio.Writer, n *hierarchy.Node) error {
	if err := writeString(w, n.Label); err != nil {
		return err
	}
	writeUvarint(w, uint64(len(n.Children)))
	for _, c := range n.Children {
		if err := encodeNode(w, c); err != nil {
			return err
		}
	}
	return nil
}

func decodeNode(r *bufio.Reader, depth int) (*hierarchy.Node, error) {
	if depth > maxHierarchyDepth {
		return nil, fmt.Errorf("codec: hierarchy deeper than %d", maxHierarchyDepth)
	}
	label, err := readString(r)
	if err != nil {
		return nil, err
	}
	kids, err := readUvarint(r)
	if err != nil {
		return nil, err
	}
	if kids > 1<<20 {
		return nil, fmt.Errorf("codec: implausible child count %d", kids)
	}
	n := &hierarchy.Node{Label: label}
	for i := uint64(0); i < kids; i++ {
		c, err := decodeNode(r, depth+1)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, c)
	}
	return n, nil
}

func encodeMatrix(w *bufio.Writer, m *matrix.Matrix) error {
	dims := m.Dims()
	writeUvarint(w, uint64(len(dims)))
	for _, d := range dims {
		writeUvarint(w, uint64(d))
	}
	var buf [8]byte
	for _, v := range m.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func decodeMatrix(r *bufio.Reader) (*matrix.Matrix, error) {
	nd, err := readUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("codec: matrix dim count: %w", err)
	}
	if nd == 0 || nd > 64 {
		return nil, fmt.Errorf("codec: implausible dimensionality %d", nd)
	}
	dims := make([]int, nd)
	for i := range dims {
		d, err := readUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("codec: matrix dim %d: %w", i, err)
		}
		if d == 0 || d > matrix.MaxEntries {
			return nil, fmt.Errorf("codec: implausible dimension size %d", d)
		}
		dims[i] = int(d)
	}
	m, err := matrix.New(dims...)
	if err != nil {
		return nil, err
	}
	data := m.Data()
	var buf [8]byte
	for i := range data {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("codec: matrix entry %d: %w", i, err)
		}
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return m, nil
}

func writeString(w *bufio.Writer, s string) error {
	writeUvarint(w, uint64(len(s)))
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("codec: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n]) //nolint:errcheck // bufio.Writer caches the error for Flush
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}
