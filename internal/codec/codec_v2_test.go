package codec

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"unsafe"

	"repro/internal/matrix"
	"repro/internal/query"
)

// withTable upgrades a payload to carry its summed-area table — what
// every v2 producer (the store's Put, Release.Save) does.
func withTable(p *Payload) *Payload {
	pre := p.Noisy.Clone()
	pre.PrefixSumExec(1)
	p.Table = pre
	p.Total = p.Noisy.Total()
	return p
}

func encodeBytes(t *testing.T, p *Payload) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripV2(t *testing.T) {
	p := withTable(samplePayload(t))
	raw := encodeBytes(t, p)
	if v := uint16(raw[4]) | uint16(raw[5])<<8; v != 2 {
		t.Fatalf("payload with table encoded as version %d, want 2", v)
	}
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Table == nil {
		t.Fatal("v2 decode dropped the table")
	}
	if !got.Noisy.AlmostEqual(p.Noisy, 0) || !got.Table.AlmostEqual(p.Table, 0) {
		t.Fatal("v2 round trip lost float precision")
	}
	if got.Total != p.Total {
		t.Fatalf("total: got %v want %v", got.Total, p.Total)
	}
}

func TestDecodeMappedZeroCopy(t *testing.T) {
	p := withTable(samplePayload(t))
	raw := encodeBytes(t, p)
	// An 8-aligned buffer, as mmapfile guarantees for both its paths.
	aligned := make([]float64, (len(raw)+7)/8)
	buf := alignedBytes(aligned, len(raw))
	copy(buf, raw)
	got, info, err := DecodeMapped(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Noisy || !info.Table {
		t.Fatalf("aligned little-endian buffer should map zero-copy, got %+v", info)
	}
	if !got.Noisy.AlmostEqual(p.Noisy, 0) || !got.Table.AlmostEqual(p.Table, 0) || got.Total != p.Total {
		t.Fatal("mapped decode lost float precision")
	}
	if got.Meta != p.Meta {
		t.Fatalf("mapped meta: %+v vs %+v", got.Meta, p.Meta)
	}
	// The mapped matrices alias the buffer: same values as a sequential
	// decode, zero decode work for the float sections.
	seq, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Table.Data() {
		if v != seq.Table.Data()[i] {
			t.Fatalf("mapped table entry %d differs from sequential decode", i)
		}
	}
}

func TestDecodeMappedMisaligned(t *testing.T) {
	p := withTable(samplePayload(t))
	raw := encodeBytes(t, p)
	// Force misalignment by shifting the payload one byte into a fresh
	// buffer: the decode must fall back to copying, not fail or tear.
	shifted := make([]byte, len(raw)+1)
	copy(shifted[1:], raw)
	got, info, err := DecodeMapped(shifted[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Noisy || info.Table {
		t.Fatalf("misaligned buffer must not map zero-copy, got %+v", info)
	}
	if !got.Table.AlmostEqual(p.Table, 0) || got.Total != p.Total {
		t.Fatal("misaligned fallback lost float precision")
	}
}

func TestDecodeMappedV1(t *testing.T) {
	p := samplePayload(t)
	raw := encodeBytes(t, p)
	got, info, err := DecodeMapped(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Noisy || info.Table || got.Table != nil {
		t.Fatalf("v1 mapped decode: info=%+v table=%v", info, got.Table)
	}
	if !got.Noisy.AlmostEqual(p.Noisy, 0) {
		t.Fatal("v1 mapped decode lost precision")
	}
}

// tailBoundaries locates the v2 section breaks in an encoded stream:
// matrixEnd is the first byte after the matrix entries (the table pad's
// length byte), tableStart the first table-entry byte. Derived from the
// v1 length of the same payload (v2 shares the header through dims,
// then inserts a pad before the matrix entries).
func tailBoundaries(t *testing.T, raw []byte, p *Payload) (matrixEnd, tableStart int) {
	t.Helper()
	n := p.Noisy.Len()
	var buf bytes.Buffer
	bare := *p
	bare.Table = nil
	if err := Encode(&buf, &bare); err != nil {
		t.Fatal(err)
	}
	headerLen := buf.Len() - n*8
	matrixEnd = headerLen + 1 + int(raw[headerLen]) + n*8
	tableStart = matrixEnd + 1 + int(raw[matrixEnd])
	return matrixEnd, tableStart
}

func TestV2TableCorruptionFailsLoudly(t *testing.T) {
	p := withTable(samplePayload(t))
	raw := encodeBytes(t, p)
	matrixEnd, tableStart := tailBoundaries(t, raw, p)
	// Flip one bit in the table pad's length byte and in every 13th byte
	// of table/total/crc/end: the decode must return the intact payload
	// with an error wrapping ErrTable — never a silently wrong table,
	// never a panic. (The pad's zero filler is skipped, not verified, so
	// flips there are invisible by design and excluded.)
	positions := []int{matrixEnd}
	for pos := tableStart; pos < len(raw); pos += 13 {
		positions = append(positions, pos)
	}
	for _, pos := range positions {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x10
		got, err := Decode(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", pos)
		}
		if !errors.Is(err, ErrTable) {
			t.Fatalf("bit flip at %d: error %v does not wrap ErrTable", pos, err)
		}
		if got == nil || got.Table != nil {
			t.Fatalf("bit flip at %d: payload %v should be intact and table-less", pos, got)
		}
		if !got.Noisy.AlmostEqual(p.Noisy, 0) {
			t.Fatalf("bit flip at %d corrupted the matrix section's decode", pos)
		}
		// The mapped path must agree.
		mgot, _, merr := DecodeMapped(mut, nil)
		if merr == nil || !errors.Is(merr, ErrTable) || mgot == nil || mgot.Table != nil {
			t.Fatalf("mapped decode of bit flip at %d: err=%v", pos, merr)
		}
	}
}

func TestV2TruncatedTail(t *testing.T) {
	p := withTable(samplePayload(t))
	raw := encodeBytes(t, p)
	matrixEnd, _ := tailBoundaries(t, raw, p)
	for cut := matrixEnd; cut < len(raw); cut += 17 {
		got, err := Decode(bytes.NewReader(raw[:cut]))
		if err == nil || !errors.Is(err, ErrTable) {
			t.Fatalf("truncation at %d: err=%v, want ErrTable wrap", cut, err)
		}
		if got == nil || got.Table != nil {
			t.Fatalf("truncation at %d: payload should survive table-less", cut)
		}
		if _, _, merr := DecodeMapped(raw[:cut], nil); merr == nil || !errors.Is(merr, ErrTable) {
			t.Fatalf("mapped truncation at %d: err=%v, want ErrTable wrap", cut, merr)
		}
	}
	// Truncation inside the header or matrix is a hard error, no payload
	// contract.
	for cut := 0; cut < matrixEnd; cut += 7 {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestEncodeTableDimsMismatch(t *testing.T) {
	p := samplePayload(t)
	p.Table = matrix.MustNew(3, 2)
	if err := Encode(bytes.NewBuffer(nil), p); err == nil {
		t.Fatal("mismatched table dims should fail to encode")
	}
}

func TestDeterministicEncodingV2(t *testing.T) {
	a := encodeBytes(t, withTable(samplePayload(t)))
	b := encodeBytes(t, withTable(samplePayload(t)))
	if !bytes.Equal(a, b) {
		t.Fatal("v2 encoding is not deterministic")
	}
}

func TestSizeOverheadV2(t *testing.T) {
	p := withTable(samplePayload(t))
	raw := encodeBytes(t, p)
	matrixBytes := p.Noisy.Len() * 8
	// v2 = two float sections plus a small constant tail.
	if len(raw) > 2*matrixBytes+1024 {
		t.Fatalf("v2 encoded size %d far exceeds 2×matrix payload %d", len(raw), matrixBytes)
	}
}

// pinnedGolden mirrors goldengen's JSON: query specs with bit-exact
// expected answers rendered as hex float64.
type pinnedGolden struct {
	File    string `json:"file"`
	Total   string `json:"total_hex"`
	Answers []struct {
		Spec   string `json:"spec"`
		HexVal string `json:"hex_val"`
	} `json:"answers"`
}

func hexFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing pinned hex float %q: %v", s, err)
	}
	return v
}

// TestGoldenV1Compat pins the "old artifacts keep loading" promise:
// format-v1 files written by the pre-v2 encoder (checked into testdata,
// generated by that encoder verbatim) must decode, re-encode
// bit-identically, map-decode, and answer every pinned query with the
// exact float64 the original code produced — forever.
func TestGoldenV1Compat(t *testing.T) {
	for _, base := range []string{"sample_v1", "flat_v1"} {
		t.Run(base, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", base+".prvl"))
			if err != nil {
				t.Fatal(err)
			}
			var pin pinnedGolden
			js, err := os.ReadFile(filepath.Join("testdata", base+"_answers.json"))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(js, &pin); err != nil {
				t.Fatal(err)
			}
			p, err := Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("golden v1 no longer decodes: %v", err)
			}
			if p.Table != nil {
				t.Fatal("v1 golden decoded with a table")
			}
			// Table-less payloads still encode as v1, bit-identically to
			// the pre-v2 encoder.
			if got := encodeBytes(t, p); !bytes.Equal(got, raw) {
				t.Fatalf("re-encoding the v1 golden changed its bytes (%d vs %d)", len(got), len(raw))
			}
			// The mapped entry point reads v1 too (heap copies).
			mp, info, err := DecodeMapped(raw, nil)
			if err != nil || info.Noisy || info.Table {
				t.Fatalf("mapped v1 decode: err=%v info=%+v", err, info)
			}
			// Both decodes answer the pinned queries bit-exactly, through
			// a freshly built evaluator — the reload path a v1 file takes.
			for _, payload := range []*Payload{p, mp} {
				eval := query.NewEvaluator(payload.Noisy)
				if got, want := eval.Total(), hexFloat(t, pin.Total); got != want {
					t.Fatalf("total drifted: got %x want %x", got, want)
				}
				for _, a := range pin.Answers {
					q, err := query.Parse(payload.Schema, a.Spec)
					if err != nil {
						t.Fatalf("pinned spec %q: %v", a.Spec, err)
					}
					got, err := eval.Count(q)
					if err != nil {
						t.Fatal(err)
					}
					if want := hexFloat(t, a.HexVal); got != want {
						t.Fatalf("answer for %q drifted: got %x want %x", a.Spec, got, want)
					}
				}
			}
		})
	}
}

// TestGoldenV1UpgradeRoundTrip proves the upgrade path: a v1 golden
// decoded, given its table, and re-encoded becomes a v2 stream whose
// mapped decode answers bit-identically to the v1 original.
func TestGoldenV1UpgradeRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "sample_v1.prvl"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	v1Eval := query.NewEvaluator(p.Noisy)
	v2raw := encodeBytes(t, withTable(p))
	up, _, err := DecodeMapped(v2raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	v2Eval := query.NewEvaluatorFromTable(up.Table, up.Total)
	q, err := query.Parse(up.Schema, "Age=1..3")
	if err != nil {
		t.Fatal(err)
	}
	a1, err1 := v1Eval.Count(q)
	a2, err2 := v2Eval.Count(q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1 != a2 {
		t.Fatalf("upgraded answer drifted: %x vs %x", a2, a1)
	}
}

// alignedBytes views a float64 slice as bytes — the allocator aligns
// float64 backing to 8, so the result is guaranteed 8-byte aligned.
func alignedBytes(words []float64, n int) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:n]
}
