package codec

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/rng"
)

func samplePayload(t testing.TB) *Payload {
	t.Helper()
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.MustSchema(
		dataset.OrdinalAttr("Age", 5),
		dataset.NominalAttr("Occ", h),
	)
	m := matrix.MustNew(5, 6)
	r := rng.New(3)
	data := m.Data()
	for i := range data {
		data[i] = r.Float64()*100 - 50
	}
	return &Payload{
		Meta:   Meta{Mechanism: "privelet+", Epsilon: 1.25, Rho: 9, Lambda: 14.4, Bound: 12345.5},
		Schema: schema,
		Noisy:  m,
	}
}

func TestRoundTrip(t *testing.T) {
	p := samplePayload(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != p.Meta {
		t.Fatalf("meta round trip: %+v vs %+v", got.Meta, p.Meta)
	}
	if !got.Noisy.AlmostEqual(p.Noisy, 0) {
		t.Fatal("matrix round trip lost precision")
	}
	if got.Schema.NumAttrs() != 2 {
		t.Fatal("schema arity lost")
	}
	if got.Schema.Attr(0).Name != "Age" || got.Schema.Attr(0).Size != 5 {
		t.Fatalf("ordinal attribute lost: %+v", got.Schema.Attr(0))
	}
	occ := got.Schema.Attr(1)
	if occ.Kind != dataset.Nominal || occ.Hier.Height() != 3 || occ.Hier.LeafCount() != 6 {
		t.Fatalf("nominal attribute lost: %+v h=%d leaves=%d", occ, occ.Hier.Height(), occ.Hier.LeafCount())
	}
	// Hierarchy labels preserved.
	if occ.Hier.Find("g1") == nil {
		t.Fatal("hierarchy labels lost")
	}
}

func TestRoundTripNegativeAndSpecialFloats(t *testing.T) {
	schema := dataset.MustSchema(dataset.OrdinalAttr("A", 3))
	m := matrix.MustNew(3)
	m.Set(-0.0, 0)
	m.Set(1e-300, 1)
	m.Set(-12345.678, 2)
	p := &Payload{Meta: Meta{Mechanism: "basic"}, Schema: schema, Noisy: m}
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Noisy.AlmostEqual(m, 0) {
		t.Fatal("special float values lost")
	}
}

func TestEncodeNilComponents(t *testing.T) {
	if err := Encode(io.Discard, nil); err == nil {
		t.Error("nil payload should fail")
	}
	if err := Encode(io.Discard, &Payload{}); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	if _, err := Decode(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Decode(strings.NewReader("PR")); err == nil {
		t.Error("truncated magic should fail")
	}
}

func TestDecodeBadVersion(t *testing.T) {
	p := samplePayload(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // clobber the version
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Error("unknown version should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := samplePayload(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncation at every prefix length must error, never panic.
	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func TestDecodeCorruptedDims(t *testing.T) {
	// Flip bytes throughout the payload; decoding must either error or
	// produce a structurally valid payload — never panic.
	p := samplePayload(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for pos := 4; pos < len(raw); pos += 11 {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0xFF
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic decoding corrupted byte %d: %v", pos, rec)
				}
			}()
			payload, err := Decode(bytes.NewReader(mut))
			if err == nil && payload != nil {
				// Structurally valid decode of corrupt data is fine as
				// long as invariants hold.
				if payload.Schema.DomainSize() != payload.Noisy.Len() {
					t.Fatalf("corrupt decode broke invariants at byte %d", pos)
				}
			}
		}()
	}
}

func TestDeterministicEncoding(t *testing.T) {
	p := samplePayload(t)
	var a, b bytes.Buffer
	if err := Encode(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestSizeOverhead(t *testing.T) {
	// The format should be close to 8 bytes per matrix entry plus a
	// small header: no accidental quadratic blowup.
	p := samplePayload(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Len()
	matrixBytes := p.Noisy.Len() * 8
	if raw > matrixBytes+1024 {
		t.Fatalf("encoded size %d far exceeds matrix payload %d", raw, matrixBytes)
	}
}
