package privacy

import (
	"math"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/transform"
)

func TestPOrdinal(t *testing.T) {
	cases := map[int]float64{2: 2, 8: 4, 16: 5, 512: 10, 1024: 11}
	for size, want := range cases {
		if got := POrdinal(size); got != want {
			t.Errorf("POrdinal(%d) = %v, want %v", size, got, want)
		}
	}
	// Non-power-of-two pads up: 101 → 128 → P = 8.
	if got := POrdinal(101); got != 8 {
		t.Errorf("POrdinal(101) = %v, want 8", got)
	}
}

func TestHOrdinal(t *testing.T) {
	cases := map[int]float64{16: 3, 8: 2.5, 1024: 6}
	for size, want := range cases {
		if got := HOrdinal(size); got != want {
			t.Errorf("HOrdinal(%d) = %v, want %v", size, got, want)
		}
	}
}

func TestPHNominal(t *testing.T) {
	h, err := hierarchy.ThreeLevel(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := PNominal(h); got != 3 {
		t.Errorf("PNominal = %v, want 3", got)
	}
	if got := HNominal(h); got != 4 {
		t.Errorf("HNominal = %v, want 4", got)
	}
}

func TestSpecDispatch(t *testing.T) {
	h, _ := hierarchy.Flat(2)
	if p, err := PSpec(transform.Ordinal(16)); err != nil || p != 5 {
		t.Errorf("PSpec ordinal = %v, %v", p, err)
	}
	if p, err := PSpec(transform.Nominal(h)); err != nil || p != 2 {
		t.Errorf("PSpec nominal = %v, %v", p, err)
	}
	if hv, err := HSpec(transform.Ordinal(16)); err != nil || hv != 3 {
		t.Errorf("HSpec ordinal = %v, %v", hv, err)
	}
	if hv, err := HSpec(transform.Nominal(h)); err != nil || hv != 4 {
		t.Errorf("HSpec nominal = %v, %v", hv, err)
	}
	if _, err := PSpec(transform.Ordinal(0)); err == nil {
		t.Error("PSpec ordinal 0 should fail")
	}
	if _, err := PSpec(transform.Spec{Kind: transform.KindNominal}); err == nil {
		t.Error("PSpec nominal nil hierarchy should fail")
	}
	if _, err := HSpec(transform.Spec{Kind: transform.Kind(7)}); err == nil {
		t.Error("HSpec unknown kind should fail")
	}
	if _, err := HSpec(transform.Ordinal(-2)); err == nil {
		t.Error("HSpec ordinal negative should fail")
	}
	if _, err := HSpec(transform.Spec{Kind: transform.KindNominal}); err == nil {
		t.Error("HSpec nominal nil hierarchy should fail")
	}
	if _, err := PSpec(transform.Spec{Kind: transform.Kind(7)}); err == nil {
		t.Error("PSpec unknown kind should fail")
	}
}

func TestLambdaEpsilonRoundTrip(t *testing.T) {
	lam, err := Lambda(0.5, 10)
	if err != nil || lam != 40 {
		t.Fatalf("Lambda(0.5, 10) = %v, %v; want 40", lam, err)
	}
	eps, err := Epsilon(lam, 10)
	if err != nil || eps != 0.5 {
		t.Fatalf("Epsilon(40, 10) = %v, %v; want 0.5", eps, err)
	}
	if _, err := Lambda(0, 1); err == nil {
		t.Error("Lambda eps=0 should fail")
	}
	if _, err := Lambda(1, 0); err == nil {
		t.Error("Lambda rho=0 should fail")
	}
	if _, err := Epsilon(0, 1); err == nil {
		t.Error("Epsilon lambda=0 should fail")
	}
	if _, err := Epsilon(1, -1); err == nil {
		t.Error("Epsilon rho<0 should fail")
	}
}

func TestSectionVDWorkedExample(t *testing.T) {
	// §V-D: Occupation with m = 512, h = 3.
	// HWT bound: (2+log₂512)(2+2log₂512)²/ε² = 11·20² = 4400/ε².
	eps := 1.0
	if got := HaarVarianceBound(eps, 512); got != 4400 {
		t.Errorf("HaarVarianceBound(1, 512) = %v, want 4400", got)
	}
	// Nominal bound: 4·2·(2·3)²/ε² = 288/ε².
	if got := NominalVarianceBound(eps, 3); got != 288 {
		t.Errorf("NominalVarianceBound(1, 3) = %v, want 288", got)
	}
	// The paper's "15-fold reduction": 4400/288 ≈ 15.3.
	ratio := HaarVarianceBound(eps, 512) / NominalVarianceBound(eps, 3)
	if ratio < 15 || ratio > 16 {
		t.Errorf("reduction factor = %v, want ≈15.3", ratio)
	}
}

func TestSectionVIDWorkedExample(t *testing.T) {
	// §VI-D: single ordinal attribute |A| = 16.
	// Privelet: 2·(2·P/ε)²·H = 2·(2·5)²·3 = 600/ε².
	eps := 1.0
	p := POrdinal(16)
	h := HOrdinal(16)
	privelet := 2 * (2 * p / eps) * (2 * p / eps) * h
	if privelet != 600 {
		t.Errorf("Privelet bound = %v, want 600", privelet)
	}
	// Basic: 16 entries · 8/ε² = 128/ε².
	if got := BasicVarianceBound(eps, 16); got != 128 {
		t.Errorf("Basic bound = %v, want 128", got)
	}
	// Equation 7 with SA = {A}: 8/ε²·|A| = 128/ε² — Basic is the
	// SA-everything special case.
	viaEq7, err := PriveletPlusVarianceBound(eps, []int{16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if viaEq7 != 128 {
		t.Errorf("Eq 7 with SA={A} = %v, want 128", viaEq7)
	}
	// Equation 7 with SA = ∅ reproduces the Privelet bound: 8/ε²·P²·H.
	viaEq7, err = PriveletPlusVarianceBound(eps, nil, []transform.Spec{transform.Ordinal(16)})
	if err != nil {
		t.Fatal(err)
	}
	if viaEq7 != 600 {
		t.Errorf("Eq 7 with SA=∅ = %v, want 600", viaEq7)
	}
}

func TestPriveletPlusVarianceBoundValidation(t *testing.T) {
	if _, err := PriveletPlusVarianceBound(0, nil, nil); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := PriveletPlusVarianceBound(1, []int{0}, nil); err == nil {
		t.Error("zero SA size should fail")
	}
	if _, err := PriveletPlusVarianceBound(1, nil, []transform.Spec{transform.Ordinal(0)}); err == nil {
		t.Error("bad spec should fail")
	}
}

func TestBoundsScaleWithEpsilon(t *testing.T) {
	// All bounds are 1/ε²: halving ε quadruples them.
	if r := HaarVarianceBound(0.5, 64) / HaarVarianceBound(1, 64); math.Abs(r-4) > 1e-12 {
		t.Errorf("Haar bound epsilon scaling = %v, want 4", r)
	}
	if r := NominalVarianceBound(0.5, 3) / NominalVarianceBound(1, 3); math.Abs(r-4) > 1e-12 {
		t.Errorf("Nominal bound epsilon scaling = %v, want 4", r)
	}
	if r := BasicVarianceBound(0.5, 100) / BasicVarianceBound(1, 100); math.Abs(r-4) > 1e-12 {
		t.Errorf("Basic bound epsilon scaling = %v, want 4", r)
	}
}

func TestInjectLaplaceUniformMoments(t *testing.T) {
	m := matrix.MustNew(200, 200)
	mag := 2.0
	if err := InjectLaplaceUniform(m, mag, 9); err != nil {
		t.Fatal(err)
	}
	sum, sumSq := 0.0, 0.0
	for _, v := range m.Data() {
		sum += v
		sumSq += v * v
	}
	n := float64(m.Len())
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := 2 * mag * mag
	if math.Abs(mean) > 0.1 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-want) > 0.1*want {
		t.Errorf("variance = %v, want ~%v", variance, want)
	}
	if err := InjectLaplaceUniform(m, -1, 9); err == nil {
		t.Error("negative magnitude should fail")
	}
}

func TestInjectLaplaceWeighted(t *testing.T) {
	// Two-dimensional 2×3 with weight vectors [1,2] and [1,1,4]: entry
	// (1,2) has weight 8 ⇒ magnitude λ/8 ⇒ variance 2λ²/64. Each trial
	// uses its own seed: a seed fully determines the noise, so resampling
	// means reseeding.
	wv := [][]float64{{1, 2}, {1, 1, 4}}
	lambda := 4.0
	const trials = 60000
	sumSq := make(map[[2]int]float64)
	for trial := 0; trial < trials; trial++ {
		m := matrix.MustNew(2, 3)
		if err := InjectLaplace(m, wv, lambda, uint64(trial)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				v := m.At(i, j)
				k := [2]int{i, j}
				sumSq[k] += v * v
			}
		}
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			w := wv[0][i] * wv[1][j]
			want := 2 * (lambda / w) * (lambda / w)
			got := sumSq[[2]int{i, j}] / trials
			if math.Abs(got-want) > 0.08*want {
				t.Errorf("entry (%d,%d): variance %v, want ~%v", i, j, got, want)
			}
		}
	}
}

func TestInjectLaplaceZeroWeightSkipped(t *testing.T) {
	m := matrix.MustNew(4)
	wv := [][]float64{{1, 0, 2, 0}}
	if err := InjectLaplace(m, wv, 3, 11); err != nil {
		t.Fatal(err)
	}
	if m.At(1) != 0 || m.At(3) != 0 {
		t.Error("zero-weight entries received noise")
	}
	if m.At(0) == 0 && m.At(2) == 0 {
		t.Error("non-zero-weight entries received no noise")
	}
}

func TestInjectLaplaceValidation(t *testing.T) {
	m := matrix.MustNew(2, 2)
	if err := InjectLaplace(m, [][]float64{{1, 1}}, 1, 12); err == nil {
		t.Error("wrong weight vector count should fail")
	}
	if err := InjectLaplace(m, [][]float64{{1}, {1, 1}}, 1, 12); err == nil {
		t.Error("wrong weight vector length should fail")
	}
	if err := InjectLaplace(m, [][]float64{{1, 1}, {1, 1}}, -2, 12); err == nil {
		t.Error("negative lambda should fail")
	}
}
