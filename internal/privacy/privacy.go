// Package privacy collects the ε-differential-privacy accounting of the
// paper: the per-attribute P and H functions (§VI-C), λ calibration from a
// target ε, the analytic noise-variance bounds every mechanism is compared
// against (Equations 4, 6 and 7), and the Laplace noise-injection step
// shared by the mechanisms.
//
// Conventions. A Laplace noise of magnitude b has variance 2b²
// (Equation 1). A mechanism built on a function set with (generalized)
// sensitivity ρ and per-function noise magnitude λ/W(f) satisfies
// (2ρ/λ)-differential privacy (Theorem 1, Lemma 1); equivalently, to reach
// a target ε one sets λ = 2ρ/ε.
package privacy

import (
	"context"
	"fmt"
	"math"

	"repro/internal/haar"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/transform"
)

// POrdinal returns P(A) = 1 + log₂|A| for an ordinal attribute whose
// padded domain size is size (§VI-C). size must be a power of two.
func POrdinal(size int) float64 {
	return 1 + math.Log2(float64(haar.NextPowerOfTwo(size)))
}

// PNominal returns P(A) = h, the height of the attribute's hierarchy.
func PNominal(h *hierarchy.Hierarchy) float64 { return float64(h.Height()) }

// HOrdinal returns H(A) = (2 + log₂|A|)/2 for an ordinal attribute,
// computed on the padded domain size.
func HOrdinal(size int) float64 {
	return (2 + math.Log2(float64(haar.NextPowerOfTwo(size)))) / 2
}

// HNominal returns H(A) = 4 for a nominal attribute.
func HNominal(*hierarchy.Hierarchy) float64 { return 4 }

// PSpec returns P(A) for a transform dimension spec.
func PSpec(s transform.Spec) (float64, error) {
	switch s.Kind {
	case transform.KindOrdinal:
		if s.Size <= 0 {
			return 0, fmt.Errorf("privacy: ordinal spec with size %d", s.Size)
		}
		return POrdinal(s.Size), nil
	case transform.KindNominal:
		if s.Hier == nil {
			return 0, fmt.Errorf("privacy: nominal spec without hierarchy")
		}
		return PNominal(s.Hier), nil
	default:
		return 0, fmt.Errorf("privacy: unknown spec kind %v", s.Kind)
	}
}

// HSpec returns H(A) for a transform dimension spec.
func HSpec(s transform.Spec) (float64, error) {
	switch s.Kind {
	case transform.KindOrdinal:
		if s.Size <= 0 {
			return 0, fmt.Errorf("privacy: ordinal spec with size %d", s.Size)
		}
		return HOrdinal(s.Size), nil
	case transform.KindNominal:
		if s.Hier == nil {
			return 0, fmt.Errorf("privacy: nominal spec without hierarchy")
		}
		return HNominal(s.Hier), nil
	default:
		return 0, fmt.Errorf("privacy: unknown spec kind %v", s.Kind)
	}
}

// Lambda returns the noise parameter λ that makes a mechanism with
// generalized sensitivity rho satisfy epsilon-differential privacy:
// λ = 2ρ/ε (Lemma 1 rearranged).
func Lambda(epsilon, rho float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: epsilon must be positive, got %v", epsilon)
	}
	if rho <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", rho)
	}
	return 2 * rho / epsilon, nil
}

// Epsilon returns the privacy level achieved by noise parameter λ under
// generalized sensitivity rho: ε = 2ρ/λ.
func Epsilon(lambda, rho float64) (float64, error) {
	if lambda <= 0 {
		return 0, fmt.Errorf("privacy: lambda must be positive, got %v", lambda)
	}
	if rho <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", rho)
	}
	return 2 * rho / lambda, nil
}

// BasicVarianceBound returns the worst-case noise variance of Dwork et
// al.'s method at privacy level ε for a query covering `covered` matrix
// entries: covered · 2·(2/ε)² (§II-B: each entry carries variance 8/ε²).
func BasicVarianceBound(epsilon float64, covered int) float64 {
	return float64(covered) * 8 / (epsilon * epsilon)
}

// HaarVarianceBound returns Equation 4: the noise variance bound of
// Privelet with the one-dimensional HWT at privacy level ε on a domain of
// (padded) size m: (2+log₂m)·(2+2log₂m)²/ε².
func HaarVarianceBound(epsilon float64, m int) float64 {
	l := math.Log2(float64(haar.NextPowerOfTwo(m)))
	return (2 + l) * (2 + 2*l) * (2 + 2*l) / (epsilon * epsilon)
}

// NominalVarianceBound returns Equation 6: the bound of Privelet with the
// nominal wavelet transform at privacy level ε for hierarchy height h:
// 4·2·(2h)²/ε².
func NominalVarianceBound(epsilon float64, h int) float64 {
	return 8 * float64(2*h) * float64(2*h) / (epsilon * epsilon)
}

// PriveletPlusVarianceBound returns Equation 7: the bound of Privelet+ at
// privacy level ε, where inSA lists the domain sizes of the attributes in
// SA (treated with Dwork-style noise) and rest lists the transform specs
// of the remaining attributes:
//
//	8/ε² · ∏_{A∈SA}|A| · ∏_{A∉SA} P(A)²·H(A)
func PriveletPlusVarianceBound(epsilon float64, inSA []int, rest []transform.Spec) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: epsilon must be positive, got %v", epsilon)
	}
	bound := 8 / (epsilon * epsilon)
	for _, size := range inSA {
		if size <= 0 {
			return 0, fmt.Errorf("privacy: SA domain size %d", size)
		}
		bound *= float64(size)
	}
	for _, s := range rest {
		p, err := PSpec(s)
		if err != nil {
			return 0, err
		}
		h, err := HSpec(s)
		if err != nil {
			return 0, err
		}
		bound *= p * p * h
	}
	return bound, nil
}

// InjectLaplace adds independent Laplace noise to every entry of the
// coefficient matrix c: entry with weight w receives magnitude λ/w, and
// entries with weight 0 (structurally-zero nominal coefficients) receive
// no noise. Weights are supplied as per-dimension vectors whose product
// is W_HN (see transform.WeightVector); weightVecs[i] must have length
// c.Dim(i). The matrix is modified in place.
func InjectLaplace(c *matrix.Matrix, weightVecs [][]float64, lambda float64, src *rng.Source) error {
	if lambda < 0 {
		return fmt.Errorf("privacy: negative lambda %v", lambda)
	}
	d := c.NumDims()
	if len(weightVecs) != d {
		return fmt.Errorf("privacy: %d weight vectors for %d dimensions", len(weightVecs), d)
	}
	for i := 0; i < d; i++ {
		if len(weightVecs[i]) != c.Dim(i) {
			return fmt.Errorf("privacy: weight vector %d has length %d, want %d",
				i, len(weightVecs[i]), c.Dim(i))
		}
	}
	data := c.Data()
	coords := make([]int, d)
	// Odometer iteration keeps the running weight product incremental-
	// friendly; with d ≤ ~6 recomputing the product per entry is fine.
	for off := range data {
		c.Coords(off, coords)
		w := 1.0
		for i, ci := range coords {
			w *= weightVecs[i][ci]
		}
		if w == 0 {
			continue
		}
		data[off] += src.Laplace(lambda / w)
	}
	return nil
}

// InjectLaplaceUniform adds Laplace noise of a single magnitude to every
// entry — Dwork et al.'s Basic mechanism step.
func InjectLaplaceUniform(m *matrix.Matrix, magnitude float64, src *rng.Source) error {
	return InjectLaplaceUniformCtx(context.Background(), m, magnitude, src)
}

// uniformChunk is how many entries InjectLaplaceUniformCtx processes
// between context checks: large enough that the check is free relative
// to the Laplace draws, small enough that cancelling a Basic publish of
// a multi-million-entry domain takes effect in well under a millisecond.
const uniformChunk = 1 << 16

// InjectLaplaceUniformCtx is InjectLaplaceUniform under a context: the
// pass checks ctx between chunks of entries and stops early with ctx's
// error when cancelled (the matrix is then partially noised and must be
// discarded — never released). The noise sequence is identical to the
// context-free variant at every chunk size.
func InjectLaplaceUniformCtx(ctx context.Context, m *matrix.Matrix, magnitude float64, src *rng.Source) error {
	if magnitude < 0 {
		return fmt.Errorf("privacy: negative magnitude %v", magnitude)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	data := m.Data()
	for base := 0; base < len(data); base += uniformChunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		end := base + uniformChunk
		if end > len(data) {
			end = len(data)
		}
		for i := base; i < end; i++ {
			data[i] += src.Laplace(magnitude)
		}
	}
	return nil
}
