// Package privacy collects the ε-differential-privacy accounting of the
// paper: the per-attribute P and H functions (§VI-C), λ calibration from a
// target ε, the analytic noise-variance bounds every mechanism is compared
// against (Equations 4, 6 and 7), and the Laplace noise-injection step
// shared by the mechanisms.
//
// Conventions. A Laplace noise of magnitude b has variance 2b²
// (Equation 1). A mechanism built on a function set with (generalized)
// sensitivity ρ and per-function noise magnitude λ/W(f) satisfies
// (2ρ/λ)-differential privacy (Theorem 1, Lemma 1); equivalently, to reach
// a target ε one sets λ = 2ρ/ε.
//
// Noise-injection fan-out. The injection passes are the serial tail of a
// publish once the wavelet transform is parallel, so both fan out over
// fixed NoiseChunk-entry chunks of the flat coefficient array, chunk k
// drawing its Laplace variates from rng.Substream(seed, k). The privacy
// guarantee is indifferent to which PRNG stream a variate comes from —
// Theorem 1 only needs the draws independent with the right magnitudes —
// while the fixed chunk granule keeps the release a pure function of the
// seed: bit-identical (float64 ==) at any worker count, and cancellable
// between chunks. docs/ARCHITECTURE.md states the full contract.
package privacy

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/haar"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/rng"
	"repro/internal/transform"
)

// POrdinal returns P(A) = 1 + log₂|A| for an ordinal attribute whose
// padded domain size is size (§VI-C). size must be a power of two.
func POrdinal(size int) float64 {
	return 1 + math.Log2(float64(haar.NextPowerOfTwo(size)))
}

// PNominal returns P(A) = h, the height of the attribute's hierarchy.
func PNominal(h *hierarchy.Hierarchy) float64 { return float64(h.Height()) }

// HOrdinal returns H(A) = (2 + log₂|A|)/2 for an ordinal attribute,
// computed on the padded domain size.
func HOrdinal(size int) float64 {
	return (2 + math.Log2(float64(haar.NextPowerOfTwo(size)))) / 2
}

// HNominal returns H(A) = 4 for a nominal attribute.
func HNominal(*hierarchy.Hierarchy) float64 { return 4 }

// PSpec returns P(A) for a transform dimension spec.
func PSpec(s transform.Spec) (float64, error) {
	switch s.Kind {
	case transform.KindOrdinal:
		if s.Size <= 0 {
			return 0, fmt.Errorf("privacy: ordinal spec with size %d", s.Size)
		}
		return POrdinal(s.Size), nil
	case transform.KindNominal:
		if s.Hier == nil {
			return 0, fmt.Errorf("privacy: nominal spec without hierarchy")
		}
		return PNominal(s.Hier), nil
	default:
		return 0, fmt.Errorf("privacy: unknown spec kind %v", s.Kind)
	}
}

// HSpec returns H(A) for a transform dimension spec.
func HSpec(s transform.Spec) (float64, error) {
	switch s.Kind {
	case transform.KindOrdinal:
		if s.Size <= 0 {
			return 0, fmt.Errorf("privacy: ordinal spec with size %d", s.Size)
		}
		return HOrdinal(s.Size), nil
	case transform.KindNominal:
		if s.Hier == nil {
			return 0, fmt.Errorf("privacy: nominal spec without hierarchy")
		}
		return HNominal(s.Hier), nil
	default:
		return 0, fmt.Errorf("privacy: unknown spec kind %v", s.Kind)
	}
}

// Lambda returns the noise parameter λ that makes a mechanism with
// generalized sensitivity rho satisfy epsilon-differential privacy:
// λ = 2ρ/ε (Lemma 1 rearranged).
func Lambda(epsilon, rho float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: epsilon must be positive, got %v", epsilon)
	}
	if rho <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", rho)
	}
	return 2 * rho / epsilon, nil
}

// Epsilon returns the privacy level achieved by noise parameter λ under
// generalized sensitivity rho: ε = 2ρ/λ.
func Epsilon(lambda, rho float64) (float64, error) {
	if lambda <= 0 {
		return 0, fmt.Errorf("privacy: lambda must be positive, got %v", lambda)
	}
	if rho <= 0 {
		return 0, fmt.Errorf("privacy: sensitivity must be positive, got %v", rho)
	}
	return 2 * rho / lambda, nil
}

// BasicVarianceBound returns the worst-case noise variance of Dwork et
// al.'s method at privacy level ε for a query covering `covered` matrix
// entries: covered · 2·(2/ε)² (§II-B: each entry carries variance 8/ε²,
// by Equation 1 at magnitude 2/ε). This linear-in-coverage growth is the
// baseline the wavelet mechanisms beat — the nominal transform of §V
// holds subtree-query variance to O(h²) in the hierarchy height and the
// multi-dimensional composition of §VI to the polylogarithmic Corollary 1
// bound, both independent of how many entries the query covers.
func BasicVarianceBound(epsilon float64, covered int) float64 {
	return float64(covered) * 8 / (epsilon * epsilon)
}

// HaarVarianceBound returns Equation 4: the noise variance bound of
// Privelet with the one-dimensional HWT at privacy level ε on a domain of
// (padded) size m: (2+log₂m)·(2+2log₂m)²/ε².
func HaarVarianceBound(epsilon float64, m int) float64 {
	l := math.Log2(float64(haar.NextPowerOfTwo(m)))
	return (2 + l) * (2 + 2*l) * (2 + 2*l) / (epsilon * epsilon)
}

// NominalVarianceBound returns Equation 6: the bound of Privelet with the
// nominal wavelet transform at privacy level ε for hierarchy height h:
// 4·2·(2h)²/ε².
func NominalVarianceBound(epsilon float64, h int) float64 {
	return 8 * float64(2*h) * float64(2*h) / (epsilon * epsilon)
}

// PriveletPlusVarianceBound returns Equation 7: the bound of Privelet+ at
// privacy level ε, where inSA lists the domain sizes of the attributes in
// SA (treated with Dwork-style noise) and rest lists the transform specs
// of the remaining attributes:
//
//	8/ε² · ∏_{A∈SA}|A| · ∏_{A∉SA} P(A)²·H(A)
func PriveletPlusVarianceBound(epsilon float64, inSA []int, rest []transform.Spec) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("privacy: epsilon must be positive, got %v", epsilon)
	}
	bound := 8 / (epsilon * epsilon)
	for _, size := range inSA {
		if size <= 0 {
			return 0, fmt.Errorf("privacy: SA domain size %d", size)
		}
		bound *= float64(size)
	}
	for _, s := range rest {
		p, err := PSpec(s)
		if err != nil {
			return 0, err
		}
		h, err := HSpec(s)
		if err != nil {
			return 0, err
		}
		bound *= p * p * h
	}
	return bound, nil
}

// NoiseChunk is the fixed granule of the noise-injection fan-out: both
// injection passes cut the flat coefficient array into NoiseChunk-entry
// chunks, and chunk k draws every one of its Laplace variates from
// rng.Substream(seed, k). Because the chunk size is a constant — never a
// function of the worker count — and a chunk's stream depends only on
// (seed, k), the injected noise is a pure function of (seed, matrix
// shape, weights): bit-identical (float64 ==) at parallelism 1, 4, or
// GOMAXPROCS, property-tested like the core engine's sub-matrix fan-out.
// 64Ki entries is large enough that the per-chunk substream setup and
// context check are free next to ~65k Laplace draws, and small enough
// that cancelling a pass over a multi-million-entry domain takes effect
// in well under a millisecond.
const NoiseChunk = 1 << 16

// forEachChunk fans the NoiseChunk-sized chunks of [0, n) across
// `workers` goroutines (≤ 1 runs serially on the calling goroutine),
// calling fn(k, lo, hi) for chunk k covering entries [lo, hi). Workers
// pull chunk indices from a shared counter and observe ctx before each
// chunk; fn must therefore be safe to call concurrently on disjoint
// chunks and in any order. Returns ctx's error iff some chunk was
// skipped because of cancellation — a completed pass never reports the
// cancel that arrived after its last chunk.
func forEachChunk(ctx context.Context, n, workers int, fn func(k, lo, hi int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	chunks := (n + NoiseChunk - 1) / NoiseChunk
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for k := 0; k < chunks; k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := k * NoiseChunk
			hi := min(lo+NoiseChunk, n)
			fn(k, lo, hi)
		}
		return nil
	}
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Claim before consulting ctx: a worker that finds the
				// counter exhausted exits cleanly, so a cancel that lands
				// after the last chunk completed never condemns a fully
				// noised (perfectly valid) matrix. Only a claimed chunk
				// abandoned to the cancel marks the pass failed.
				k := int(next.Add(1)) - 1
				if k >= chunks {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				lo := k * NoiseChunk
				fn(k, lo, min(lo+NoiseChunk, n))
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// InjectLaplace adds independent Laplace noise to every entry of the
// coefficient matrix c — step 5 of the paper's Figure 5, the move that
// actually buys ε-differential privacy (Theorem 1 with the generalized
// sensitivity of §VI-B): entry with weight w receives magnitude λ/w, and
// entries with weight 0 (structurally-zero nominal coefficients) receive
// no noise. Weights are supplied as per-dimension vectors whose product
// is W_HN (see transform.WeightVector); weightVecs[i] must have length
// c.Dim(i). The matrix is modified in place. Noise is drawn per
// NoiseChunk-entry chunk from rng.Substream(seed, chunk); serial
// shorthand for InjectLaplaceCtx.
func InjectLaplace(c *matrix.Matrix, weightVecs [][]float64, lambda float64, seed uint64) error {
	return InjectLaplaceCtx(context.Background(), c, weightVecs, lambda, seed, 1)
}

// InjectLaplaceCtx is InjectLaplace with a worker pool and a context:
// the flat coefficient array fans out over fixed NoiseChunk-entry
// chunks, chunk k drawing from rng.Substream(seed, k) — the same
// position-independent substream discipline that makes core's
// sub-matrix fan-out deterministic — so the noised matrix is
// bit-identical at any worker count (workers ≤ 1 runs serially on the
// calling goroutine). ctx is observed between chunks; on cancellation
// the pass stops early with ctx's error and the matrix is partially
// noised — it must be discarded, never released. Entries whose weight is
// zero consume no draw from their chunk's stream.
func InjectLaplaceCtx(ctx context.Context, c *matrix.Matrix, weightVecs [][]float64, lambda float64, seed uint64, workers int) error {
	if lambda < 0 {
		return fmt.Errorf("privacy: negative lambda %v", lambda)
	}
	d := c.NumDims()
	if len(weightVecs) != d {
		return fmt.Errorf("privacy: %d weight vectors for %d dimensions", len(weightVecs), d)
	}
	for i := 0; i < d; i++ {
		if len(weightVecs[i]) != c.Dim(i) {
			return fmt.Errorf("privacy: weight vector %d has length %d, want %d",
				i, len(weightVecs[i]), c.Dim(i))
		}
	}
	data := c.Data()
	dims := make([]int, d)
	for i := range dims {
		dims[i] = c.Dim(i)
	}
	return forEachChunk(ctx, len(data), workers, func(k, lo, hi int) {
		src := rng.Substream(seed, uint64(k))
		// Entry coordinates advance by an odometer walk: one division
		// chain per chunk (the seed position), then an increment per
		// entry — not a d-division Coords call per entry. The weight
		// product is carried alongside as running prefix products,
		// prefix[i+1] = prefix[i]·weightVecs[i][coords[i]], rebuilt from
		// the lowest dimension the increment touched; the final product
		// prefix[d] multiplies in the same left-to-right order as a
		// per-entry loop, so the noise stream is bit-identical to the
		// pre-odometer pass (pinned by a reference test).
		coords := make([]int, d)
		c.Coords(lo, coords)
		prefix := make([]float64, d+1)
		prefix[0] = 1
		for i := 0; i < d; i++ {
			prefix[i+1] = prefix[i] * weightVecs[i][coords[i]]
		}
		for off := lo; off < hi; off++ {
			if w := prefix[d]; w != 0 {
				data[off] += src.Laplace(lambda / w)
			}
			for i := d - 1; i >= 0; i-- {
				coords[i]++
				if coords[i] < dims[i] {
					for j := i; j < d; j++ {
						prefix[j+1] = prefix[j] * weightVecs[j][coords[j]]
					}
					break
				}
				coords[i] = 0
			}
		}
	})
}

// InjectLaplaceUniform adds Laplace noise of a single magnitude to every
// entry — Dwork et al.'s Basic mechanism step (§II-B), where every cell
// carries Laplace(2/ε) and hence variance 8/ε² (Equation 1). Serial
// shorthand for InjectLaplaceUniformCtx.
func InjectLaplaceUniform(m *matrix.Matrix, magnitude float64, seed uint64) error {
	return InjectLaplaceUniformCtx(context.Background(), m, magnitude, seed, 1)
}

// InjectLaplaceUniformCtx is InjectLaplaceUniform with a worker pool and
// a context, chunked exactly like InjectLaplaceCtx: fixed
// NoiseChunk-entry chunks, chunk k drawing from rng.Substream(seed, k),
// bit-identical output at any worker count, ctx observed between chunks
// (a cancelled pass leaves the matrix partially noised — discard it,
// never release it).
func InjectLaplaceUniformCtx(ctx context.Context, m *matrix.Matrix, magnitude float64, seed uint64, workers int) error {
	if magnitude < 0 {
		return fmt.Errorf("privacy: negative magnitude %v", magnitude)
	}
	data := m.Data()
	return forEachChunk(ctx, len(data), workers, func(k, lo, hi int) {
		src := rng.Substream(seed, uint64(k))
		for i := lo; i < hi; i++ {
			data[i] += src.Laplace(magnitude)
		}
	})
}
