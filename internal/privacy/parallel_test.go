package privacy

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/matrix"
	"repro/internal/rng"
)

// fillSequential gives every entry a distinct deterministic value so an
// accidental entry permutation cannot cancel out in comparisons.
func fillSequential(m *matrix.Matrix) {
	data := m.Data()
	for i := range data {
		data[i] = float64(i % 1009)
	}
}

// TestInjectLaplaceUniformParallelismInvariance is the injection
// fan-out's central property: for a fixed seed the noised matrix is
// bit-identical (float64 ==) at parallelism 1, 4, and GOMAXPROCS. The
// matrix spans several NoiseChunk granules plus a ragged tail so the
// chunk counter, the worker hand-off, and the last short chunk are all
// exercised.
func TestInjectLaplaceUniformParallelismInvariance(t *testing.T) {
	const seed = 31
	dims := []int{3, NoiseChunk + 4321} // ~3.07 chunks
	base := matrix.MustNew(dims...)
	fillSequential(base)
	if err := InjectLaplaceUniform(base, 1.5, seed); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 64} {
		m := matrix.MustNew(dims...)
		fillSequential(m)
		if err := InjectLaplaceUniformCtx(context.Background(), m, 1.5, seed, workers); err != nil {
			t.Fatal(err)
		}
		for i, v := range m.Data() {
			if v != base.Data()[i] {
				t.Fatalf("workers=%d: entry %d = %v, serial %v", workers, i, v, base.Data()[i])
			}
		}
	}
}

// TestInjectLaplaceParallelismInvariance is the weighted analogue, with
// zero weights sprinkled in so the skip-a-draw path is covered: a chunk's
// stream must advance only on its own non-zero-weight entries.
func TestInjectLaplaceParallelismInvariance(t *testing.T) {
	const seed = 77
	dims := []int{5, 3, NoiseChunk/2 + 913} // ~2.5 chunks
	wv := [][]float64{
		{1, 2, 0, 4, 1},
		{1, 0.5, 3},
		make([]float64, dims[2]),
	}
	for i := range wv[2] {
		wv[2][i] = float64(1 + i%7)
		if i%11 == 0 {
			wv[2][i] = 0
		}
	}
	base := matrix.MustNew(dims...)
	fillSequential(base)
	if err := InjectLaplace(base, wv, 2.5, seed); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		m := matrix.MustNew(dims...)
		fillSequential(m)
		if err := InjectLaplaceCtx(context.Background(), m, wv, 2.5, seed, workers); err != nil {
			t.Fatal(err)
		}
		for i, v := range m.Data() {
			if v != base.Data()[i] {
				t.Fatalf("workers=%d: entry %d = %v, serial %v", workers, i, v, base.Data()[i])
			}
		}
	}
}

// TestInjectLaplaceMatchesCoordsReference pins the weighted pass's
// odometer walk against the definition it optimizes: entry at flat
// offset off receives Laplace(λ/∏ᵢ wv[i][cᵢ]) — coordinates recovered by
// per-entry division — drawn in offset order from its chunk's substream,
// zero-weight entries consuming no draw. The parallelism-invariance
// tests compare the implementation to itself and would miss a walk that
// drifted from the coordinate definition; this reference would not.
func TestInjectLaplaceMatchesCoordsReference(t *testing.T) {
	const seed, lambda = 99, 1.75
	dims := []int{3, 4, NoiseChunk/8 + 37} // ~1.5 chunks, odometer carries across two dims
	wv := [][]float64{
		{1, 0.25, 3},
		{2, 0, 1, 0.5},
		make([]float64, dims[2]),
	}
	for i := range wv[2] {
		wv[2][i] = float64(1 + i%13)
		if i%17 == 0 {
			wv[2][i] = 0
		}
	}
	got := matrix.MustNew(dims...)
	fillSequential(got)
	if err := InjectLaplace(got, wv, lambda, seed); err != nil {
		t.Fatal(err)
	}
	want := matrix.MustNew(dims...)
	fillSequential(want)
	data := want.Data()
	coords := make([]int, len(dims))
	for k := 0; k*NoiseChunk < len(data); k++ {
		src := rng.Substream(seed, uint64(k))
		lo := k * NoiseChunk
		for off := lo; off < min(lo+NoiseChunk, len(data)); off++ {
			want.Coords(off, coords)
			w := 1.0
			for i, ci := range coords {
				w *= wv[i][ci]
			}
			if w == 0 {
				continue
			}
			data[off] += src.Laplace(lambda / w)
		}
	}
	for i, v := range got.Data() {
		if v != data[i] {
			t.Fatalf("entry %d = %v, reference %v", i, v, data[i])
		}
	}
}

// TestInjectLaplaceUniformChunkNumbering pins the contract itself, not
// just self-consistency: entry i's noise comes from the i-th position of
// rng.Substream(seed, i/NoiseChunk). If the numbering scheme ever
// drifted, parallel-vs-serial comparisons would still agree with each
// other and miss it; this test would not.
func TestInjectLaplaceUniformChunkNumbering(t *testing.T) {
	const seed, mag = 123, 0.75
	n := NoiseChunk + 100
	m := matrix.MustNew(n)
	if err := InjectLaplaceUniform(m, mag, seed); err != nil {
		t.Fatal(err)
	}
	data := m.Data()
	for _, probe := range []int{0, 1, NoiseChunk - 1, NoiseChunk, NoiseChunk + 99} {
		chunk := probe / NoiseChunk
		src := rng.Substream(seed, uint64(chunk))
		var want float64
		for i := chunk * NoiseChunk; i <= probe; i++ {
			want = src.Laplace(mag)
		}
		if data[probe] != want {
			t.Errorf("entry %d = %v, want draw %v from Substream(seed, %d)", probe, data[probe], want, chunk)
		}
	}
}

// TestInjectLaplaceVarianceUnchangedByChunking checks the statistical
// contract survives the fan-out: pooled noise still has mean ~0 and
// variance ~2b² per entry (Equation 1), i.e. chunked substreams did not
// correlate or rescale anything.
func TestInjectLaplaceVarianceUnchangedByChunking(t *testing.T) {
	m := matrix.MustNew(4, NoiseChunk) // 4 full chunks
	const mag = 2.0
	if err := InjectLaplaceUniformCtx(context.Background(), m, mag, 5, 4); err != nil {
		t.Fatal(err)
	}
	sum, sumSq := 0.0, 0.0
	for _, v := range m.Data() {
		sum += v
		sumSq += v * v
	}
	n := float64(m.Len())
	mean := sum / n
	variance := sumSq/n - mean*mean
	want := 2 * mag * mag
	if math.Abs(mean) > 0.1 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-want) > 0.1*want {
		t.Errorf("variance = %v, want ~%v", variance, want)
	}
}

// TestInjectLaplacePreCancelled: a dead context stops the pass before
// chunk 0, leaving the matrix untouched.
func TestInjectLaplacePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := matrix.MustNew(NoiseChunk * 2)
	if err := InjectLaplaceUniformCtx(ctx, m, 1, 1, 4); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, v := range m.Data() {
		if v != 0 {
			t.Fatalf("entry %d noised after pre-cancelled pass", i)
		}
	}
	wv := [][]float64{make([]float64, m.Dim(0))}
	for i := range wv[0] {
		wv[0][i] = 1
	}
	if err := InjectLaplaceCtx(ctx, m, wv, 1, 1, 4); err != context.Canceled {
		t.Fatalf("weighted err = %v, want context.Canceled", err)
	}
}

// TestInjectLaplaceCancelMidPass cancels a pooled pass while it runs and
// checks that it returns the context error promptly and leaks no
// goroutines — the cancellation happens BETWEEN chunks, so workers join
// after finishing at most one chunk each.
func TestInjectLaplaceCancelMidPass(t *testing.T) {
	before := runtime.NumGoroutine()
	// 64 chunks: plenty of cancellation points for 4 workers.
	m := matrix.MustNew(64, NoiseChunk)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- InjectLaplaceUniformCtx(ctx, m, 1, 9, 4)
	}()
	time.Sleep(500 * time.Microsecond)
	cancel()
	select {
	case err := <-done:
		// nil means the pass beat the cancel — possible, still leak-free.
		if err != nil && err != context.Canceled {
			t.Fatalf("err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled injection did not return")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}
