package dataset

import (
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/transform"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSchema(OrdinalAttr("Age", 4), NominalAttr("Occ", h))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKindString(t *testing.T) {
	if Ordinal.String() != "ordinal" || Nominal.String() != "nominal" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should render")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	h, _ := hierarchy.Flat(3)
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewSchema(OrdinalAttr("", 4)); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema(OrdinalAttr("A", 0)); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewSchema(OrdinalAttr("A", 4), OrdinalAttr("A", 2)); err == nil {
		t.Error("duplicate name should fail")
	}
	if _, err := NewSchema(Attribute{Name: "N", Kind: Nominal}); err == nil {
		t.Error("nominal without hierarchy should fail")
	}
	if _, err := NewSchema(Attribute{Name: "N", Kind: Nominal, Hier: h, Size: 5}); err == nil {
		t.Error("nominal size mismatch should fail")
	}
	if _, err := NewSchema(Attribute{Name: "X", Kind: Kind(12), Size: 3}); err == nil {
		t.Error("unknown kind should fail")
	}
	// Nominal size derived from hierarchy.
	s, err := NewSchema(NominalAttr("N", h))
	if err != nil {
		t.Fatal(err)
	}
	if s.Attr(0).Size != 3 {
		t.Errorf("derived nominal size = %d, want 3", s.Attr(0).Size)
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d", s.NumAttrs())
	}
	if i, err := s.Index("Occ"); err != nil || i != 1 {
		t.Errorf("Index(Occ) = %d, %v", i, err)
	}
	if _, err := s.Index("Nope"); err == nil {
		t.Error("Index of missing attribute should fail")
	}
	dims := s.Dims()
	if dims[0] != 4 || dims[1] != 6 {
		t.Errorf("Dims = %v, want [4 6]", dims)
	}
	if s.DomainSize() != 24 {
		t.Errorf("DomainSize = %d, want 24", s.DomainSize())
	}
	if s.Attr(0).HierarchyHeight() != 0 {
		t.Error("ordinal attribute should have height 0")
	}
	if s.Attr(1).HierarchyHeight() != 3 {
		t.Errorf("nominal height = %d, want 3", s.Attr(1).HierarchyHeight())
	}
}

func TestSchemaSpecs(t *testing.T) {
	s := testSchema(t)
	specs := s.Specs()
	if specs[0].Kind != transform.KindOrdinal || specs[0].Size != 4 {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Kind != transform.KindNominal || specs[1].Hier == nil {
		t.Errorf("spec 1 = %+v", specs[1])
	}
	// Specs must be usable by transform.New.
	if _, err := transform.New(specs...); err != nil {
		t.Errorf("transform.New(schema specs): %v", err)
	}
}

func TestSubSchema(t *testing.T) {
	s := testSchema(t)
	sub, idx, err := s.SubSchema([]string{"Occ"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumAttrs() != 1 || sub.Attr(0).Name != "Occ" {
		t.Errorf("SubSchema wrong: %+v", sub.Attr(0))
	}
	if len(idx) != 1 || idx[0] != 1 {
		t.Errorf("SubSchema idx = %v, want [1]", idx)
	}
	if _, _, err := s.SubSchema([]string{"Nope"}); err == nil {
		t.Error("SubSchema with missing name should fail")
	}
}

func TestTableAppendAndRow(t *testing.T) {
	s := testSchema(t)
	tbl := NewTable(s)
	if tbl.Len() != 0 {
		t.Error("new table not empty")
	}
	if err := tbl.Append(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(3, 5); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
	row := tbl.Row(1, nil)
	if row[0] != 3 || row[1] != 5 {
		t.Errorf("Row(1) = %v, want [3 5]", row)
	}
	// Reuse destination.
	dst := make([]int, 2)
	if got := tbl.Row(0, dst); got[0] != 1 || got[1] != 4 {
		t.Errorf("Row(0) = %v", got)
	}
	if err := tbl.Append(1); err == nil {
		t.Error("short tuple should fail")
	}
	if err := tbl.Append(4, 0); err == nil {
		t.Error("out-of-domain ordinal should fail")
	}
	if err := tbl.Append(0, 6); err == nil {
		t.Error("out-of-domain nominal should fail")
	}
	if err := tbl.Append(-1, 0); err == nil {
		t.Error("negative value should fail")
	}
	if tbl.Schema() != s {
		t.Error("Schema accessor broken")
	}
}

func TestFrequencyMatrixMedicalExample(t *testing.T) {
	// Table I → Table II: the frequency matrix of the paper's worked
	// example. Columns: leaf 0 = Yes, leaf 1 = No.
	tbl, err := MedicalExample()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 8 {
		t.Fatalf("medical example has %d rows, want 8", tbl.Len())
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]float64{
		{0, 2}, // <30
		{0, 1}, // 30-39
		{1, 2}, // 40-49
		{0, 1}, // 50-59
		{1, 0}, // >=60
	}
	for age, row := range want {
		for col, wv := range row {
			if got := m.At(age, col); got != wv {
				t.Errorf("M[%d][%d] = %v, want %v", age, col, got, wv)
			}
		}
	}
	if m.Total() != 8 {
		t.Errorf("matrix total = %v, want 8", m.Total())
	}
}

func TestFrequencyMatrixTotalEqualsN(t *testing.T) {
	spec := BrazilSpec(ScaleSmall)
	tbl, err := GenerateCensus(spec, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != 5000 {
		t.Errorf("frequency matrix total = %v, want 5000", m.Total())
	}
	// Every entry non-negative.
	for _, v := range m.Data() {
		if v < 0 {
			t.Fatal("negative count in frequency matrix")
		}
	}
}

func TestGenerateCensusDeterminism(t *testing.T) {
	spec := USSpec(ScaleSmall)
	a, err := GenerateCensus(spec, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCensus(spec, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := make([]int, 4), make([]int, 4)
	for i := 0; i < 200; i++ {
		a.Row(i, ra)
		b.Row(i, rb)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d differs between same-seed generations", i)
			}
		}
	}
	c, err := GenerateCensus(spec, 200, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < 200 && !diff; i++ {
		a.Row(i, ra)
		c.Row(i, rb)
		for j := range ra {
			if ra[j] != rb[j] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical tables")
	}
}

func TestGenerateCensusErrors(t *testing.T) {
	if _, err := GenerateCensus(BrazilSpec(ScaleSmall), -1, 0); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := GenerateCensus(CensusSpec{}, 10, 0); err == nil {
		t.Error("empty spec should fail")
	}
}

func TestCensusSpecsMatchTableIII(t *testing.T) {
	// Full scale must match the paper's Table III exactly.
	br := BrazilSpec(ScaleFull)
	if br.AgeSize != 101 || br.OccSize() != 512 || br.IncomeSize != 1001 {
		t.Errorf("Brazil full = %+v (occ %d)", br, br.OccSize())
	}
	us := USSpec(ScaleFull)
	if us.AgeSize != 96 || us.OccSize() != 511 || us.IncomeSize != 1020 {
		t.Errorf("US full = %+v (occ %d)", us, us.OccSize())
	}
	// All scales build valid schemas with the right hierarchy heights.
	for _, scale := range []Scale{ScaleSmall, ScaleMedium, ScaleFull} {
		for _, spec := range []CensusSpec{BrazilSpec(scale), USSpec(scale)} {
			s, err := spec.Schema()
			if err != nil {
				t.Fatalf("%s %v: %v", spec.Name, scale, err)
			}
			if got := s.Attr(1).HierarchyHeight(); got != 2 {
				t.Errorf("%s %v: gender height = %d, want 2", spec.Name, scale, got)
			}
			if got := s.Attr(2).HierarchyHeight(); got != 3 {
				t.Errorf("%s %v: occupation height = %d, want 3", spec.Name, scale, got)
			}
		}
	}
}

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleMedium.String() != "medium" || ScaleFull.String() != "full" {
		t.Error("Scale.String broken")
	}
	if Scale(9).String() == "" {
		t.Error("unknown Scale should render")
	}
}

func TestUniformSpecForM(t *testing.T) {
	spec, err := UniformSpecForM(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	// m^(1/4) = 16, perfect square ⇒ AttrSize 16.
	if spec.AttrSize != 16 {
		t.Errorf("AttrSize = %d, want 16", spec.AttrSize)
	}
	s, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if s.DomainSize() != 1<<16 {
		t.Errorf("DomainSize = %d, want %d", s.DomainSize(), 1<<16)
	}
	// §VII-B: nominal hierarchies have √|A| level-2 nodes.
	occ := s.Attr(2)
	if occ.Hier.Root().Fanout() != 4 {
		t.Errorf("level-2 node count = %d, want 4", occ.Hier.Root().Fanout())
	}
	if _, err := UniformSpecForM(4); err == nil {
		t.Error("tiny m should fail")
	}
	if _, err := (UniformSpec{}).Schema(); err == nil {
		t.Error("zero AttrSize should fail")
	}
	// Non-square sizes spread leaves over round(√|A|) uneven groups but
	// keep every leaf at depth 3.
	s5, err := (UniformSpec{AttrSize: 5}).Schema()
	if err != nil {
		t.Fatal(err)
	}
	h5 := s5.Attr(2).Hier
	if h5.Height() != 3 || h5.LeafCount() != 5 {
		t.Errorf("uneven hierarchy: height=%d leaves=%d", h5.Height(), h5.LeafCount())
	}
	if h5.Root().Fanout() != 2 {
		t.Errorf("uneven hierarchy groups = %d, want round(√5) = 2", h5.Root().Fanout())
	}
	// Distinct m values no longer collapse: 2^12 → 8, 2^16 → 16.
	s12, err := UniformSpecForM(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	if s12.AttrSize != 8 {
		t.Errorf("UniformSpecForM(2^12) AttrSize = %d, want 8", s12.AttrSize)
	}
}

func TestGenerateUniform(t *testing.T) {
	spec := UniformSpec{AttrSize: 9}
	tbl, err := GenerateUniform(spec, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1000 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	// Roughly uniform marginals on the first attribute.
	counts := make([]int, 9)
	row := make([]int, 4)
	for i := 0; i < 1000; i++ {
		tbl.Row(i, row)
		counts[row[0]]++
	}
	for v, c := range counts {
		if c < 60 || c > 170 {
			t.Errorf("value %d count %d suspiciously far from uniform", v, c)
		}
	}
	if _, err := GenerateUniform(spec, -5, 0); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := GenerateUniform(UniformSpec{AttrSize: 0}, 5, 0); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema with bad input did not panic")
		}
	}()
	MustSchema()
}
