package dataset

import (
	"fmt"
	"math"

	"repro/internal/hierarchy"
	"repro/internal/rng"
)

// Scale selects how closely a census-like dataset matches the paper's
// full domain sizes. The error behaviour of the mechanisms depends only on
// the matrix geometry, so smaller scales preserve the experiments' shape
// while fitting laptop memory (DESIGN.md §2).
type Scale int

const (
	// ScaleSmall is the default experiment profile (m ≈ 5·10⁵).
	ScaleSmall Scale = iota
	// ScaleMedium is an intermediate profile (m ≈ 2.6·10⁶).
	ScaleMedium
	// ScaleFull reproduces the paper's Table III domains (m > 10⁷ after
	// padding; needs several GiB).
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// CensusSpec describes the shape of a census-like dataset: the paper's
// Age/Gender/Occupation/Income schema with configurable domain sizes.
type CensusSpec struct {
	Name        string
	AgeSize     int
	OccGroups   int // level-2 nodes of the Occupation hierarchy
	OccPerGroup int // leaves per group
	IncomeSize  int
}

// BrazilSpec returns the Brazil dataset shape of Table III at the given
// scale. Full scale: Age 101, Gender 2 (h=2), Occupation 512 (h=3),
// Income 1001.
func BrazilSpec(scale Scale) CensusSpec {
	switch scale {
	case ScaleFull:
		return CensusSpec{Name: "Brazil", AgeSize: 101, OccGroups: 16, OccPerGroup: 32, IncomeSize: 1001}
	case ScaleMedium:
		return CensusSpec{Name: "Brazil", AgeSize: 101, OccGroups: 16, OccPerGroup: 8, IncomeSize: 101}
	default:
		return CensusSpec{Name: "Brazil", AgeSize: 64, OccGroups: 8, OccPerGroup: 8, IncomeSize: 64}
	}
}

// USSpec returns the US dataset shape of Table III at the given scale.
// Full scale: Age 96, Gender 2 (h=2), Occupation 511 (h=3), Income 1020.
func USSpec(scale Scale) CensusSpec {
	switch scale {
	case ScaleFull:
		return CensusSpec{Name: "US", AgeSize: 96, OccGroups: 7, OccPerGroup: 73, IncomeSize: 1020}
	case ScaleMedium:
		return CensusSpec{Name: "US", AgeSize: 96, OccGroups: 7, OccPerGroup: 19, IncomeSize: 96}
	default:
		return CensusSpec{Name: "US", AgeSize: 60, OccGroups: 7, OccPerGroup: 9, IncomeSize: 60}
	}
}

// OccSize returns the Occupation domain size.
func (c CensusSpec) OccSize() int { return c.OccGroups * c.OccPerGroup }

// Schema builds the 4-attribute census schema for the spec: ordinal Age,
// nominal Gender (flat, h=2), nominal Occupation (3 levels), ordinal
// Income.
func (c CensusSpec) Schema() (*Schema, error) {
	if c.AgeSize <= 0 || c.OccGroups <= 0 || c.OccPerGroup <= 0 || c.IncomeSize <= 0 {
		return nil, fmt.Errorf("dataset: invalid census spec %+v", c)
	}
	gender, err := hierarchy.Flat(2)
	if err != nil {
		return nil, err
	}
	occ, err := hierarchy.ThreeLevel(c.OccGroups, c.OccPerGroup)
	if err != nil {
		return nil, err
	}
	return NewSchema(
		OrdinalAttr("Age", c.AgeSize),
		NominalAttr("Gender", gender),
		NominalAttr("Occupation", occ),
		OrdinalAttr("Income", c.IncomeSize),
	)
}

// GenerateCensus draws n tuples from a census-like joint distribution over
// the spec's schema:
//
//   - Age: mixture of two clipped Gaussians (young-adult and middle-age
//     bulges) over [0, AgeSize);
//   - Gender: Bernoulli(0.49);
//   - Occupation: Zipf(1.1) over the leaves, so a few occupations
//     dominate — the skew that makes relative-error plots informative;
//   - Income: log-normal-like discretized draw whose location rises with
//     Age (realistic correlation), clipped to [0, IncomeSize).
//
// The exact shapes are unimportant to the mechanisms (DESIGN.md §2); what
// matters is skewed, correlated counts over the right matrix geometry.
func GenerateCensus(spec CensusSpec, n int, seed uint64) (*Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative tuple count %d", n)
	}
	schema, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	r := rng.New(seed)
	zipf := rng.NewZipf(spec.OccSize(), 1.1)
	ageScale := float64(spec.AgeSize)
	incScale := float64(spec.IncomeSize)
	for i := 0; i < n; i++ {
		// Age mixture: 60% young bulge, 40% middle-age bulge.
		var age float64
		if r.Float64() < 0.6 {
			age = 0.3*ageScale + r.NormFloat64()*0.12*ageScale
		} else {
			age = 0.55*ageScale + r.NormFloat64()*0.15*ageScale
		}
		ageV := clampInt(int(age), 0, spec.AgeSize-1)

		genderV := 0
		if r.Float64() >= 0.49 {
			genderV = 1
		}

		occV := zipf.Draw(r)

		// Income: exp of a Gaussian whose mean grows with age, mapped
		// into the income domain.
		loc := 0.25 + 0.5*float64(ageV)/ageScale
		inc := math.Exp(r.NormFloat64()*0.5) * loc * 0.4 * incScale
		incV := clampInt(int(inc), 0, spec.IncomeSize-1)

		if err := t.Append(ageV, genderV, occV, incV); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func ipow4(a int) int { return a * a * a * a }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// UniformSpec describes the §VII-B synthetic timing datasets: two ordinal
// and two nominal attributes, each with domain size m^(1/4); each nominal
// hierarchy has three levels with √|A| level-2 nodes.
type UniformSpec struct {
	// AttrSize is the per-attribute domain size (the paper's m^(1/4)).
	AttrSize int
}

// UniformSpecForM returns the spec with AttrSize = ⌊m^(1/4)⌋, the largest
// per-attribute size whose total domain does not exceed m.
func UniformSpecForM(m int) (UniformSpec, error) {
	if m < 16 {
		return UniformSpec{}, fmt.Errorf("dataset: m = %d too small for 4 attributes", m)
	}
	// Integer fourth root: float Pow can land just below an exact root
	// (e.g. 65536^0.25 → 15.999…), so correct by exact comparison.
	a := int(math.Floor(math.Pow(float64(m), 0.25)))
	for ipow4(a+1) <= m {
		a++
	}
	for a > 1 && ipow4(a) > m {
		a--
	}
	return UniformSpec{AttrSize: a}, nil
}

// Schema builds the 4-attribute uniform schema. The nominal hierarchies
// have three levels with round(√|A|) level-2 nodes (§VII-B); when |A| is
// not a perfect square the leaves are spread as evenly as possible, which
// keeps every leaf at depth 3.
func (u UniformSpec) Schema() (*Schema, error) {
	if u.AttrSize <= 0 {
		return nil, fmt.Errorf("dataset: invalid uniform spec %+v", u)
	}
	h1, err := sqrtGroupedHierarchy(u.AttrSize)
	if err != nil {
		return nil, err
	}
	h2, err := sqrtGroupedHierarchy(u.AttrSize)
	if err != nil {
		return nil, err
	}
	return NewSchema(
		OrdinalAttr("O1", u.AttrSize),
		OrdinalAttr("O2", u.AttrSize),
		NominalAttr("N1", h1),
		NominalAttr("N2", h2),
	)
}

// sqrtGroupedHierarchy builds a three-level hierarchy over size leaves
// with round(√size) groups, distributing leaves as evenly as possible.
func sqrtGroupedHierarchy(size int) (*hierarchy.Hierarchy, error) {
	groups := int(math.Round(math.Sqrt(float64(size))))
	if groups < 1 {
		groups = 1
	}
	if groups > size {
		groups = size
	}
	root := &hierarchy.Node{Label: "Any"}
	leaf := 0
	for g := 0; g < groups; g++ {
		lo := g * size / groups
		hi := (g + 1) * size / groups
		grp := &hierarchy.Node{Label: fmt.Sprintf("g%d", g)}
		for ; lo < hi; lo++ {
			grp.Children = append(grp.Children, &hierarchy.Node{Label: fmt.Sprintf("v%d", leaf)})
			leaf++
		}
		root.Children = append(root.Children, grp)
	}
	return hierarchy.Build(root)
}

// GenerateUniform draws n tuples with independently uniform values, the
// §VII-B workload for the computation-time experiments.
func GenerateUniform(spec UniformSpec, n int, seed uint64) (*Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative tuple count %d", n)
	}
	schema, err := spec.Schema()
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		if err := t.Append(
			r.Intn(spec.AttrSize), r.Intn(spec.AttrSize),
			r.Intn(spec.AttrSize), r.Intn(spec.AttrSize),
		); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MedicalExample returns the paper's Table I medical-records table: eight
// tuples over Age group (5 ordinal buckets) and Has Diabetes (flat
// nominal, yes/no). Used by examples and documentation tests; its
// frequency matrix is Table II.
func MedicalExample() (*Table, error) {
	diab, err := hierarchy.Flat(2) // leaf 0 = Yes, leaf 1 = No
	if err != nil {
		return nil, err
	}
	schema, err := NewSchema(
		OrdinalAttr("Age", 5), // <30, 30-39, 40-49, 50-59, >=60
		NominalAttr("HasDiabetes", diab),
	)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	rows := [][2]int{
		{0, 1}, {0, 1}, // <30 No, <30 No
		{1, 1},                 // 30-39 No
		{2, 1}, {2, 0}, {2, 1}, // 40-49 No, Yes, No
		{3, 1}, // 50-59 No
		{4, 0}, // >=60 Yes
	}
	for _, row := range rows {
		if err := t.Append(row[0], row[1]); err != nil {
			return nil, err
		}
	}
	return t, nil
}
