// Package dataset implements the relational-table substrate of the paper
// (§II-A): a table T over d attributes, each ordinal (discrete, ordered)
// or nominal (discrete, hierarchy-bearing), plus the mapping from T to its
// d-dimensional frequency matrix M (§II-B).
//
// The package also hosts the synthetic data generators that stand in for
// resources the paper used but we cannot ship (see DESIGN.md §2):
// census-like generators matching the IPUMS Brazil/US schema shapes of
// Table III, and the uniform generator of §VII-B used for the timing
// experiments.
package dataset

import (
	"fmt"

	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/transform"
)

// Kind distinguishes ordinal from nominal attributes.
type Kind int

const (
	// Ordinal attributes have a totally ordered integer domain [0, Size).
	Ordinal Kind = iota
	// Nominal attributes have an unordered domain with a hierarchy; the
	// domain values are the hierarchy's leaves in imposed order.
	Nominal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Ordinal:
		return "ordinal"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute describes one column of a table.
type Attribute struct {
	Name string
	Kind Kind
	// Size is the domain size |A|. For nominal attributes it is derived
	// from the hierarchy and may be left zero when constructing.
	Size int
	// Hier is required for nominal attributes.
	Hier *hierarchy.Hierarchy
}

// OrdinalAttr returns an ordinal attribute.
func OrdinalAttr(name string, size int) Attribute {
	return Attribute{Name: name, Kind: Ordinal, Size: size}
}

// NominalAttr returns a nominal attribute over hierarchy h.
func NominalAttr(name string, h *hierarchy.Hierarchy) Attribute {
	return Attribute{Name: name, Kind: Nominal, Hier: h}
}

// HierarchyHeight returns the height of the attribute's hierarchy, or 0
// for ordinal attributes.
func (a Attribute) HierarchyHeight() int {
	if a.Kind == Nominal && a.Hier != nil {
		return a.Hier.Height()
	}
	return 0
}

// Schema is a validated attribute list. Construct with NewSchema.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// NewSchema validates the attributes: unique non-empty names, positive
// ordinal sizes, hierarchies on nominal attributes.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataset: schema needs at least one attribute")
	}
	s := &Schema{byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		switch a.Kind {
		case Ordinal:
			if a.Size <= 0 {
				return nil, fmt.Errorf("dataset: ordinal attribute %q has size %d", a.Name, a.Size)
			}
		case Nominal:
			if a.Hier == nil {
				return nil, fmt.Errorf("dataset: nominal attribute %q lacks a hierarchy", a.Name)
			}
			if a.Size != 0 && a.Size != a.Hier.LeafCount() {
				return nil, fmt.Errorf("dataset: nominal attribute %q size %d != leaf count %d",
					a.Name, a.Size, a.Hier.LeafCount())
			}
			a.Size = a.Hier.LeafCount()
		default:
			return nil, fmt.Errorf("dataset: attribute %q has unknown kind %v", a.Name, a.Kind)
		}
		s.byName[a.Name] = i
		s.attrs = append(s.attrs, a)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and examples.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumAttrs returns the number of attributes d.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns attribute i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute, or an error.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("dataset: no attribute named %q", name)
	}
	return i, nil
}

// Dims returns the domain sizes in attribute order — the frequency
// matrix shape.
func (s *Schema) Dims() []int {
	out := make([]int, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Size
	}
	return out
}

// DomainSize returns m = ∏|A_i|, the frequency matrix entry count.
func (s *Schema) DomainSize() int {
	m := 1
	for _, a := range s.attrs {
		m *= a.Size
	}
	return m
}

// Specs returns the transform dimension specs for the schema, in
// attribute order.
func (s *Schema) Specs() []transform.Spec {
	out := make([]transform.Spec, len(s.attrs))
	for i, a := range s.attrs {
		if a.Kind == Ordinal {
			out[i] = transform.Ordinal(a.Size)
		} else {
			out[i] = transform.Nominal(a.Hier)
		}
	}
	return out
}

// SubSchema returns a schema over the named subset of attributes (used by
// Privelet+ to describe sub-matrices) plus their positions in the parent.
func (s *Schema) SubSchema(names []string) (*Schema, []int, error) {
	var attrs []Attribute
	var idx []int
	for _, name := range names {
		i, err := s.Index(name)
		if err != nil {
			return nil, nil, err
		}
		attrs = append(attrs, s.attrs[i])
		idx = append(idx, i)
	}
	sub, err := NewSchema(attrs...)
	if err != nil {
		return nil, nil, err
	}
	return sub, idx, nil
}

// Table is a multiset of tuples over a schema. Values are stored as a
// flat row-major int32 slice to keep 10-million-row tables cheap.
type Table struct {
	schema *Schema
	vals   []int32
}

// NewTable returns an empty table over schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len returns the number of tuples n.
func (t *Table) Len() int { return len(t.vals) / t.schema.NumAttrs() }

// Append adds one tuple; vals[i] must lie in [0, |A_i|).
func (t *Table) Append(vals ...int) error {
	d := t.schema.NumAttrs()
	if len(vals) != d {
		return fmt.Errorf("dataset: tuple has %d values, want %d", len(vals), d)
	}
	for i, v := range vals {
		if v < 0 || v >= t.schema.attrs[i].Size {
			return fmt.Errorf("dataset: value %d out of domain [0,%d) for attribute %q",
				v, t.schema.attrs[i].Size, t.schema.attrs[i].Name)
		}
	}
	for _, v := range vals {
		t.vals = append(t.vals, int32(v))
	}
	return nil
}

// Row copies tuple i into dst (length d) and returns it; dst may be nil.
func (t *Table) Row(i int, dst []int) []int {
	d := t.schema.NumAttrs()
	if dst == nil {
		dst = make([]int, d)
	}
	base := i * d
	for j := 0; j < d; j++ {
		dst[j] = int(t.vals[base+j])
	}
	return dst
}

// FrequencyMatrix maps the table to its frequency matrix M: entry
// ⟨x_1..x_d⟩ counts the tuples equal to that coordinate vector (§II-B).
// Runs in O(n + m).
func (t *Table) FrequencyMatrix() (*matrix.Matrix, error) {
	m, err := matrix.New(t.schema.Dims()...)
	if err != nil {
		return nil, err
	}
	d := t.schema.NumAttrs()
	strides := matrix.Strides(t.schema.Dims())
	data := m.Data()
	for base := 0; base < len(t.vals); base += d {
		off := 0
		for j := 0; j < d; j++ {
			off += int(t.vals[base+j]) * strides[j]
		}
		data[off]++
	}
	return m, nil
}
