package haar

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// specForward is an independent, deliberately naive implementation of the
// paper's §IV-A definition: for each internal node of the decomposition
// tree, the coefficient is (avg(left leaves) − avg(right leaves))/2; the
// base coefficient is the global mean. O(m log m); used only to
// cross-check the O(m) production code.
func specForward(v []float64) []float64 {
	m := len(v)
	out := make([]float64, m)
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	out[0] = sum / float64(m)
	// Node k at level i covers the block of width m/2^(i-1) starting at
	// (k − 2^(i−1))·width.
	for k := 1; k < m; k++ {
		level := Level(k)
		width := m >> uint(level-1)
		start := (k - (1 << uint(level-1))) * width
		half := width / 2
		var left, right float64
		for j := 0; j < half; j++ {
			left += v[start+j]
			right += v[start+half+j]
		}
		out[k] = (left/float64(half) - right/float64(half)) / 2
	}
	return out
}

// specInverse implements Equation 3 verbatim: each entry is the base plus
// the signed sum of its ancestors' coefficients.
func specInverse(c []float64) []float64 {
	m := len(c)
	out := make([]float64, m)
	l := Log2(m)
	for pos := 0; pos < m; pos++ {
		v := c[0]
		// Walk down from the root; at level i the covering node for pos
		// is 2^(i-1) + pos/(m/2^(i-1)).
		for i := 1; i <= l; i++ {
			width := m >> uint(i-1)
			node := (1 << uint(i-1)) + pos/width
			// Left or right subtree of the node?
			if pos%width < width/2 {
				v += c[node]
			} else {
				v -= c[node]
			}
		}
		out[pos] = v
	}
	return out
}

func TestForwardMatchesSpec(t *testing.T) {
	r := rng.New(101)
	for _, m := range []int{2, 4, 8, 16, 64, 256} {
		v := make([]float64, m)
		for i := range v {
			v[i] = r.Float64()*20 - 10
		}
		fast, err := Forward(v)
		if err != nil {
			t.Fatal(err)
		}
		slow := specForward(v)
		for k := range fast {
			if math.Abs(fast[k]-slow[k]) > 1e-9 {
				t.Fatalf("m=%d coefficient %d: fast %v, spec %v", m, k, fast[k], slow[k])
			}
		}
	}
}

func TestInverseMatchesSpec(t *testing.T) {
	r := rng.New(102)
	for _, m := range []int{2, 8, 32, 128} {
		c := make([]float64, m)
		for i := range c {
			c[i] = r.Float64()*6 - 3
		}
		fast, err := Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		slow := specInverse(c)
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-9 {
				t.Fatalf("m=%d entry %d: fast %v, spec %v", m, i, fast[i], slow[i])
			}
		}
	}
}

func TestSpecSelfConsistency(t *testing.T) {
	// The two naive implementations must invert each other, guarding
	// against a shared misreading of the paper.
	r := rng.New(103)
	v := make([]float64, 32)
	for i := range v {
		v[i] = r.Float64() * 9
	}
	back := specInverse(specForward(v))
	for i := range v {
		if math.Abs(back[i]-v[i]) > 1e-9 {
			t.Fatalf("spec round trip failed at %d", i)
		}
	}
}
