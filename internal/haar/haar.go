// Package haar implements the one-dimensional Haar wavelet transform in
// the exact normalization the Privelet paper uses (§IV-A).
//
// Given a vector of m = 2^l values, the transform builds a full binary
// decomposition tree over the entries and emits one coefficient per
// internal node — half the difference of the left and right subtree
// averages — plus a base coefficient holding the overall mean. Any entry
// is reconstructed as
//
//	v = c0 + Σ_i g_i·c_i            (Equation 3)
//
// where c_i ranges over the entry's ancestors and g_i is ±1 depending on
// the subtree the entry falls in.
//
// Coefficient layout. Coefficients are stored base-first in level order:
// index 0 is the base coefficient c0, index 1 the root of the
// decomposition tree, and node k (k ≥ 1) has children 2k and 2k+1. For
// m = 8 this is exactly the c0..c7 labeling of the paper's Figure 2, and
// it is the layout the multi-dimensional HN transform requires (§VI-A:
// "sorted based on a level-order traversal ... the base coefficient
// always ranks first").
package haar

import (
	"fmt"
	"math/bits"
)

// IsPowerOfTwo reports whether m is a positive power of two.
func IsPowerOfTwo(m int) bool { return m > 0 && m&(m-1) == 0 }

// NextPowerOfTwo returns the smallest power of two ≥ m (m ≥ 1).
func NextPowerOfTwo(m int) int {
	if m <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(m-1))
}

// Log2 returns log₂(m) for a power of two m.
func Log2(m int) int { return bits.TrailingZeros(uint(m)) }

// Forward computes the Haar wavelet coefficients of v, whose length must
// be a power of two. The result has the same length: coefficient 0 is the
// base (the mean of v), coefficient k ≥ 1 belongs to the decomposition-
// tree node k in level order.
func Forward(v []float64) ([]float64, error) {
	m := len(v)
	if !IsPowerOfTwo(m) {
		return nil, fmt.Errorf("haar: length %d is not a power of two", m)
	}
	coeffs := make([]float64, m)
	ForwardInto(v, coeffs)
	return coeffs, nil
}

// ForwardInto is Forward writing into a caller-provided slice; src and dst
// must both have power-of-two length m. dst must not alias src.
func ForwardInto(src, dst []float64) {
	ForwardIntoScratch(src, dst, make([]float64, len(src)))
}

// ForwardIntoScratch is ForwardInto with a caller-provided scratch slice
// of length ≥ m, so hot paths (per-worker transform kernels) allocate
// nothing per call. scratch must alias neither src nor dst.
func ForwardIntoScratch(src, dst, scratch []float64) {
	ForwardPaddedIntoScratch(src, dst, scratch)
}

// ForwardPaddedIntoScratch transforms src zero-padded to len(dst), which
// must be a power of two ≥ len(src) (§IV's dummy-entry remedy). The
// padding happens directly in scratch (length ≥ len(dst)), so callers pay
// a single copy of src per vector and need no separate padding buffer.
// scratch must alias neither src nor dst.
func ForwardPaddedIntoScratch(src, dst, scratch []float64) {
	m := len(dst)
	if m == 1 {
		dst[0] = src[0]
		return
	}
	// avg holds subtree averages for the current level, reused bottom-up.
	avg := scratch[:m]
	n := copy(avg, src)
	for j := n; j < m; j++ {
		avg[j] = 0
	}
	// Nodes at the deepest level occupy indices [m/2, m) of dst; each
	// level up halves the index range. After processing level i the avg
	// slice holds the 2^(i-1) subtree averages of that level's nodes.
	for width := m / 2; width >= 1; width /= 2 {
		for k := 0; k < width; k++ {
			left, right := avg[2*k], avg[2*k+1]
			dst[width+k] = (left - right) / 2
			avg[k] = (left + right) / 2
		}
	}
	dst[0] = avg[0] // base coefficient: overall mean
}

// Inverse reconstructs the original vector from coefficients produced by
// Forward. The length must be a power of two.
func Inverse(coeffs []float64) ([]float64, error) {
	m := len(coeffs)
	if !IsPowerOfTwo(m) {
		return nil, fmt.Errorf("haar: length %d is not a power of two", m)
	}
	v := make([]float64, m)
	InverseInto(coeffs, v)
	return v, nil
}

// InverseInto is Inverse writing into a caller-provided slice; src and dst
// must both have power-of-two length m. dst must not alias src.
func InverseInto(src, dst []float64) {
	m := len(src)
	if m == 1 {
		dst[0] = src[0]
		return
	}
	// Top-down: value[node] starts at the base coefficient and each
	// level adds +c (left child) or −c (right child), per Equation 3.
	// dst is used as the value buffer level by level.
	dst[0] = src[0]
	for width := 1; width < m; width *= 2 {
		// Values for the current width (subtree averages) sit in
		// dst[0:width]; expand in place from the back to avoid clobbering.
		for k := width - 1; k >= 0; k-- {
			parent := dst[k]
			c := src[width+k]
			dst[2*k] = parent + c
			dst[2*k+1] = parent - c
		}
	}
}

// Level returns the decomposition-tree level of coefficient index k in a
// transform of size m; the root is level 1 and the deepest internal nodes
// are level l = log₂(m). Level 0 denotes the base coefficient (k = 0).
func Level(k int) int {
	if k == 0 {
		return 0
	}
	return bits.Len(uint(k))
}

// Weight returns the paper's W_Haar for coefficient index k of an
// m-length transform: m for the base coefficient and 2^(l−i+1) for a
// coefficient at level i, where l = log₂(m) (§IV-B).
func Weight(m, k int) float64 {
	if k == 0 {
		return float64(m)
	}
	l := Log2(m)
	return float64(int(1) << (l - Level(k) + 1))
}

// Weights returns the full weight vector aligned with the coefficient
// layout of Forward.
func Weights(m int) ([]float64, error) {
	if !IsPowerOfTwo(m) {
		return nil, fmt.Errorf("haar: length %d is not a power of two", m)
	}
	w := make([]float64, m)
	for k := range w {
		w[k] = Weight(m, k)
	}
	return w, nil
}

// GeneralizedSensitivity returns the generalized sensitivity of the
// m-length Haar transform with respect to W_Haar: 1 + log₂(m) (Lemma 2).
func GeneralizedSensitivity(m int) float64 {
	return 1 + float64(Log2(m))
}

// QueryVarianceFactor returns the paper's Lemma 3 factor: if every
// coefficient c carries noise of variance at most (σ/W_Haar(c))², any
// range-count query on the reconstructed vector has noise variance at
// most (2+log₂ m)/2 · σ².
func QueryVarianceFactor(m int) float64 {
	return (2 + float64(Log2(m))) / 2
}
