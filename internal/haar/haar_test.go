package haar

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// figure2Input is the paper's Figure 2 example vector.
var figure2Input = []float64{9, 3, 6, 2, 8, 4, 5, 7}

// figure2Coeffs is the corresponding coefficient vector in level order:
// c0 (base), c1, c2, c3, c4, c5, c6, c7.
var figure2Coeffs = []float64{5.5, -0.5, 1, 0, 3, 2, 2, -1}

func TestPaperFigure2Forward(t *testing.T) {
	got, err := Forward(figure2Input)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range figure2Coeffs {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("c%d = %v, want %v", i, got[i], want)
		}
	}
}

func TestPaperFigure2Inverse(t *testing.T) {
	got, err := Inverse(figure2Coeffs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range figure2Input {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("v%d = %v, want %v", i+1, got[i], want)
		}
	}
}

func TestPaperExample2Reconstruction(t *testing.T) {
	// Example 2: v2 = c0 + c1 + c2 − c4 = 5.5 − 0.5 + 1 − 3 = 3.
	c := figure2Coeffs
	v2 := c[0] + c[1] + c[2] - c[4]
	if v2 != 3 {
		t.Fatalf("Example 2: v2 = %v, want 3", v2)
	}
	rec, err := Inverse(c)
	if err != nil {
		t.Fatal(err)
	}
	if rec[1] != v2 {
		t.Fatalf("Inverse[1] = %v, want %v", rec[1], v2)
	}
}

func TestPaperFigure2Weights(t *testing.T) {
	// §IV-B: "W_Haar would assign weights 8, 8, 4, 2 to c0, c1, c2, and c4".
	w, err := Weights(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]float64{0: 8, 1: 8, 2: 4, 3: 4, 4: 2, 5: 2, 6: 2, 7: 2}
	for k, want := range cases {
		if w[k] != want {
			t.Errorf("W_Haar(c%d) = %v, want %v", k, w[k], want)
		}
	}
}

func TestForwardRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 9, 100} {
		if _, err := Forward(make([]float64, n)); err == nil {
			t.Errorf("Forward accepted length %d", n)
		}
		if _, err := Inverse(make([]float64, n)); err == nil {
			t.Errorf("Inverse accepted length %d", n)
		}
		if _, err := Weights(n); err == nil {
			t.Errorf("Weights accepted length %d", n)
		}
	}
}

func TestSizeOne(t *testing.T) {
	c, err := Forward([]float64{42})
	if err != nil || c[0] != 42 {
		t.Fatalf("Forward([42]) = %v, %v", c, err)
	}
	v, err := Inverse(c)
	if err != nil || v[0] != 42 {
		t.Fatalf("Inverse = %v, %v", v, err)
	}
	if Weight(1, 0) != 1 {
		t.Fatalf("Weight(1,0) = %v, want 1", Weight(1, 0))
	}
}

func TestSizeTwo(t *testing.T) {
	c, err := Forward([]float64{10, 4})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 7 || c[1] != 3 {
		t.Fatalf("Forward([10,4]) = %v, want [7 3]", c)
	}
	// Per §IV-B's definition, W_Haar(base) = m = 2 and the level-1
	// coefficient gets 2^(1-1+1) = 2. (The paper's Example 5 quotes 1/2
	// for a two-entry base coefficient, which contradicts §IV-B and
	// Theorem 2; we follow the normative definition — see DESIGN.md.)
	if Weight(2, 0) != 2 || Weight(2, 1) != 2 {
		t.Fatalf("weights(2) = %v,%v, want 2,2", Weight(2, 0), Weight(2, 1))
	}
}

func TestRoundTripRandom(t *testing.T) {
	r := rng.New(99)
	for _, m := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		v := make([]float64, m)
		for i := range v {
			v[i] = r.Float64()*200 - 100
		}
		c, err := Forward(v)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-9 {
				t.Fatalf("m=%d round trip failed at %d: %v vs %v", m, i, back[i], v[i])
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	// The transform must be linear: T(a·x + y) = a·T(x) + T(y).
	r := rng.New(7)
	const m = 32
	x := make([]float64, m)
	y := make([]float64, m)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	a := 3.25
	combo := make([]float64, m)
	for i := range combo {
		combo[i] = a*x[i] + y[i]
	}
	tx, _ := Forward(x)
	ty, _ := Forward(y)
	tc, _ := Forward(combo)
	for i := range tc {
		want := a*tx[i] + ty[i]
		if math.Abs(tc[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, tc[i], want)
		}
	}
}

func TestLevel(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4}
	for k, want := range cases {
		if got := Level(k); got != want {
			t.Errorf("Level(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestGeneralizedSensitivityFormula(t *testing.T) {
	for m, want := range map[int]float64{1: 1, 2: 2, 8: 4, 1024: 11} {
		if got := GeneralizedSensitivity(m); got != want {
			t.Errorf("GS(%d) = %v, want %v", m, got, want)
		}
	}
}

// TestGeneralizedSensitivityEmpirical verifies Lemma 2 tightly: offsetting
// one entry by δ changes exactly 1+log₂m coefficients, and the weighted
// absolute change sums to (1+log₂m)·δ.
func TestGeneralizedSensitivityEmpirical(t *testing.T) {
	r := rng.New(3)
	for _, m := range []int{2, 8, 32, 128} {
		w, _ := Weights(m)
		v := make([]float64, m)
		for i := range v {
			v[i] = r.Float64() * 10
		}
		base, _ := Forward(v)
		for trial := 0; trial < 5; trial++ {
			pos := r.Intn(m)
			delta := 1 + r.Float64()*4
			mod := append([]float64(nil), v...)
			mod[pos] += delta
			pert, _ := Forward(mod)
			weighted := 0.0
			changed := 0
			for k := range base {
				d := math.Abs(pert[k] - base[k])
				if d > 1e-12 {
					changed++
				}
				weighted += w[k] * d
			}
			wantChanged := 1 + Log2(m)
			if changed != wantChanged {
				t.Fatalf("m=%d: %d coefficients changed, want %d", m, changed, wantChanged)
			}
			wantWeighted := GeneralizedSensitivity(m) * delta
			if math.Abs(weighted-wantWeighted) > 1e-9*wantWeighted {
				t.Fatalf("m=%d: weighted change %v, want %v", m, weighted, wantWeighted)
			}
		}
	}
}

// TestLemma3VarianceBound checks the utility lemma by Monte Carlo: inject
// noise of variance (σ/W(c))² into each coefficient, reconstruct, and
// verify that the empirical variance of range-query noise stays below
// (2+log₂m)/2·σ².
func TestLemma3VarianceBound(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	r := rng.New(1234)
	const m = 64
	const trials = 3000
	sigma := 2.0
	w, _ := Weights(m)
	zeros := make([]float64, m)
	base, _ := Forward(zeros) // all-zero: noise-only reconstruction

	// Fixed query: sum of entries [lo,hi].
	lo, hi := 5, 49
	sumSq := 0.0
	noisy := make([]float64, m)
	for trial := 0; trial < trials; trial++ {
		copy(noisy, base)
		for k := range noisy {
			// Laplace with magnitude σ/(√2·W) has variance (σ/W)².
			noisy[k] += r.Laplace(sigma / (math.Sqrt2 * w[k]))
		}
		rec, err := Inverse(noisy)
		if err != nil {
			t.Fatal(err)
		}
		q := 0.0
		for i := lo; i <= hi; i++ {
			q += rec[i]
		}
		sumSq += q * q
	}
	empirical := sumSq / trials
	bound := QueryVarianceFactor(m) * sigma * sigma
	if empirical > bound*1.10 { // generous tolerance for MC noise
		t.Fatalf("empirical variance %v exceeds Lemma 3 bound %v", empirical, bound)
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128, 1024: 1024}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, m := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(m) {
			t.Errorf("IsPowerOfTwo(%d) = false", m)
		}
	}
	for _, m := range []int{0, -4, 3, 12, 1023} {
		if IsPowerOfTwo(m) {
			t.Errorf("IsPowerOfTwo(%d) = true", m)
		}
	}
}

// Property: round trip is the identity for any power-of-two size up to 256.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		m := 1 << (sizeRaw % 9) // 1..256
		r := rng.New(seed)
		v := make([]float64, m)
		for i := range v {
			v[i] = r.Float64()*100 - 50
		}
		c, err := Forward(v)
		if err != nil {
			return false
		}
		back, err := Inverse(c)
		if err != nil {
			return false
		}
		for i := range v {
			if math.Abs(back[i]-v[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the base coefficient always equals the mean.
func TestBaseIsMeanQuick(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		m := 1 << (sizeRaw % 8)
		r := rng.New(seed)
		v := make([]float64, m)
		sum := 0.0
		for i := range v {
			v[i] = r.Float64()*10 - 5
			sum += v[i]
		}
		c, err := Forward(v)
		if err != nil {
			return false
		}
		return math.Abs(c[0]-sum/float64(m)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
