package transform

import (
	"math"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/nominal"
	"repro/internal/rng"
)

// TestInverseAppliesMeanSubtraction verifies footnote 2 of §VI-B: the
// multi-dimensional inverse must mean-subtract every vector along a
// nominal dimension before reconstructing it. We compare HN.Inverse on a
// noisy 1-D nominal coefficient matrix against the manual pipeline
// (MeanSubtract then InverseInto).
func TestInverseAppliesMeanSubtraction(t *testing.T) {
	h, err := hierarchy.ThreeLevel(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	nt, err := nominal.New(h)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := New(Nominal(h))
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(71)
	coeffs := make([]float64, nt.OutputSize())
	for i := range coeffs {
		coeffs[i] = r.Float64()*10 - 5
	}

	// Manual: mean-subtract a copy, then invert.
	manual := append([]float64(nil), coeffs...)
	if err := nt.MeanSubtract(manual); err != nil {
		t.Fatal(err)
	}
	wantVec := make([]float64, nt.InputSize())
	nt.InverseInto(manual, wantVec)

	// HN: same coefficients as a 1-D matrix.
	cm, err := matrix.FromSlice(coeffs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hn.Inverse(cm)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantVec {
		if math.Abs(got.At(i)-want) > 1e-12 {
			t.Fatalf("entry %d: HN inverse %v, manual %v", i, got.At(i), want)
		}
	}
	// Sanity: skipping mean subtraction gives a DIFFERENT reconstruction
	// for generic noisy coefficients, so the test above is not vacuous.
	noSub := make([]float64, nt.InputSize())
	nt.InverseInto(coeffs, noSub)
	same := true
	for i := range wantVec {
		if math.Abs(noSub[i]-wantVec[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("mean subtraction had no effect on random coefficients; test is vacuous")
	}
}

// TestInverseDoesNotModifyInput guards the documented contract.
func TestInverseDoesNotModifyInput(t *testing.T) {
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := New(Ordinal(4), Nominal(h))
	if err != nil {
		t.Fatal(err)
	}
	c, err := matrix.New(hn.CoeffDims()...)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(73)
	data := c.Data()
	for i := range data {
		data[i] = r.Float64()
	}
	before := c.Clone()
	if _, err := hn.Inverse(c); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(before, 0) {
		t.Fatal("Inverse modified its input coefficient matrix")
	}
}

// TestForwardDoesNotModifyInput guards the same contract for Forward.
func TestForwardDoesNotModifyInput(t *testing.T) {
	hn, err := New(Ordinal(5), Ordinal(3))
	if err != nil {
		t.Fatal(err)
	}
	m := matrix.MustNew(5, 3)
	r := rng.New(74)
	data := m.Data()
	for i := range data {
		data[i] = r.Float64()
	}
	before := m.Clone()
	if _, err := hn.Forward(m); err != nil {
		t.Fatal(err)
	}
	if !m.AlmostEqual(before, 0) {
		t.Fatal("Forward modified its input matrix")
	}
}

// TestDimensionOrderIndependence: because the standard decomposition's
// per-dimension steps commute, transforming a matrix and its transpose
// yields transposed coefficient matrices.
func TestDimensionOrderIndependence(t *testing.T) {
	hnAB, err := New(Ordinal(4), Ordinal(8))
	if err != nil {
		t.Fatal(err)
	}
	hnBA, err := New(Ordinal(8), Ordinal(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(75)
	m := matrix.MustNew(4, 8)
	mt := matrix.MustNew(8, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			v := r.Float64()
			m.Set(v, i, j)
			mt.Set(v, j, i)
		}
	}
	c, err := hnAB.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := hnBA.Forward(mt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(c.At(i, j)-ct.At(j, i)) > 1e-9 {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Weights transpose identically.
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			if hnAB.Weight(i, j) != hnBA.Weight(j, i) {
				t.Fatalf("weight transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// TestThreeDimensionalSensitivity exercises Theorem 2 at d = 3, the
// smallest case the 2-D tests cannot reach.
func TestThreeDimensionalSensitivity(t *testing.T) {
	h, err := hierarchy.Flat(3)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := New(Ordinal(4), Nominal(h), Ordinal(2))
	if err != nil {
		t.Fatal(err)
	}
	// P = 3 · 2 · 2 = 12.
	if got := hn.GeneralizedSensitivity(); got != 12 {
		t.Fatalf("GS = %v, want 12", got)
	}
	m, err := matrix.New(hn.InputDims()...)
	if err != nil {
		t.Fatal(err)
	}
	base, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	mod := m.Clone()
	mod.Set(2, 1, 2, 0)
	pert, err := hn.Forward(mod)
	if err != nil {
		t.Fatal(err)
	}
	weighted := 0.0
	coords := make([]int, 3)
	bd, pd := base.Data(), pert.Data()
	for off := range pd {
		d := math.Abs(pd[off] - bd[off])
		if d == 0 {
			continue
		}
		pert.Coords(off, coords)
		weighted += hn.Weight(coords...) * d
	}
	if math.Abs(weighted-24) > 1e-9 { // 12 · δ with δ = 2
		t.Fatalf("weighted change = %v, want 24", weighted)
	}
}
