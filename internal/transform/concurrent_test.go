package transform

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/rng"
)

// testHN builds a mixed ordinal/nominal transform whose ordinal dimension
// needs padding (6 → 8), exercising the fused-pad kernel.
func testHN(t *testing.T) *HN {
	t.Helper()
	h, err := hierarchy.ThreeLevel(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	hn, err := New(Ordinal(6), Nominal(h), Ordinal(16))
	if err != nil {
		t.Fatal(err)
	}
	return hn
}

func randomInput(t *testing.T, hn *HN, seed uint64) *matrix.Matrix {
	t.Helper()
	m, err := matrix.New(hn.InputDims()...)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	data := m.Data()
	for i := range data {
		data[i] = float64(r.Intn(50))
	}
	return m
}

// TestHNConcurrentUse backs the doc claim "HN is immutable after New and
// safe for concurrent use": many goroutines round-trip through one shared
// HN under -race, each checking its own result.
func TestHNConcurrentUse(t *testing.T) {
	hn := testHN(t)
	goroutines := 4 * runtime.GOMAXPROCS(0)
	if goroutines < 8 {
		goroutines = 8
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := randomInput(t, hn, uint64(g))
			for iter := 0; iter < 5; iter++ {
				c, err := hn.Forward(m)
				if err != nil {
					errs <- err
					return
				}
				rec, err := hn.Inverse(c)
				if err != nil {
					errs <- err
					return
				}
				if !rec.AlmostEqual(m, 1e-9) {
					t.Errorf("goroutine %d: round-trip diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExecMatchesSerial proves the engine invariant the publish property
// test builds on: ForwardExec/InverseExec produce bit-identical matrices
// at any worker count, with and without a pipeline.
func TestExecMatchesSerial(t *testing.T) {
	hn := testHN(t)
	m := randomInput(t, hn, 99)
	wantC, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	wantRec, err := hn.Inverse(wantC)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		for _, withPipe := range []bool{false, true} {
			ex := Exec{Workers: workers}
			if withPipe {
				ex.Pipe = matrix.NewPipeline()
			}
			c, err := hn.ForwardExec(m, ex)
			if err != nil {
				t.Fatal(err)
			}
			if d, _ := wantC.MaxAbsDiff(c); d != 0 {
				t.Fatalf("workers=%d pipe=%v: forward diverged by %v", workers, withPipe, d)
			}
			rec, err := hn.InverseExec(c, ex)
			if err != nil {
				t.Fatal(err)
			}
			if d, _ := wantRec.MaxAbsDiff(rec); d != 0 {
				t.Fatalf("workers=%d pipe=%v: inverse diverged by %v", workers, withPipe, d)
			}
		}
	}
}

// TestExecPipelineRepeatedPasses runs many forward+inverse passes through
// one pipeline (the per-worker usage pattern of the publish engine) and
// checks each pass is self-consistent after buffer reuse.
func TestExecPipelineRepeatedPasses(t *testing.T) {
	hn := testHN(t)
	ex := Exec{Workers: 2, Pipe: matrix.NewPipeline()}
	for pass := uint64(0); pass < 6; pass++ {
		m := randomInput(t, hn, pass)
		c, err := hn.ForwardExec(m, ex)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := hn.InverseExec(c, ex)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.AlmostEqual(m, 1e-9) {
			t.Fatalf("pass %d: round-trip diverged after buffer reuse", pass)
		}
	}
}

// TestFusedPadMatchesExplicitPad guards the fused-padding kernel against
// drift from the spec it replaced: Forward on an unpadded input must
// equal Forward on the same input explicitly zero-padded with Matrix.Pad
// (§IV's remedy as two separate passes).
func TestFusedPadMatchesExplicitPad(t *testing.T) {
	hn, err := New(Ordinal(6), Ordinal(16))
	if err != nil {
		t.Fatal(err)
	}
	m := randomInput(t, hn, 31)
	fused, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := m.Pad(0, 8) // 6 → next power of two
	if err != nil {
		t.Fatal(err)
	}
	hnPadded, err := New(Ordinal(8), Ordinal(16))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := hnPadded.Forward(padded)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := fused.MaxAbsDiff(explicit); d != 0 {
		t.Fatalf("fused padding diverged from explicit Pad by %v", d)
	}
}
