package transform

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/rng"
)

func mustHN(t testing.TB, specs ...Spec) *HN {
	t.Helper()
	hn, err := New(specs...)
	if err != nil {
		t.Fatal(err)
	}
	return hn
}

func fig3Hierarchy(t testing.TB) *hierarchy.Hierarchy {
	t.Helper()
	h, err := hierarchy.ThreeLevel(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestPaperFigure4 verifies the worked 2×2 example of §VI-A: the final
// coefficient matrix C2 of M = [[8,4],[1,5]] is [[4.5,0],[1.5,2]].
// (The standard decomposition's per-dimension steps commute, so the
// figure's dim-2-first ordering yields the same C2 as our dim-1-first.)
func TestPaperFigure4(t *testing.T) {
	hn := mustHN(t, Ordinal(2), Ordinal(2))
	m := matrix.MustNew(2, 2)
	m.Set(8, 0, 0)
	m.Set(4, 0, 1)
	m.Set(1, 1, 0)
	m.Set(5, 1, 1)
	c, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{4.5, 0}, {1.5, 2}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(c.At(i, j)-want[i][j]) > 1e-12 {
				t.Errorf("C2[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	back, err := hn.Inverse(c)
	if err != nil {
		t.Fatal(err)
	}
	if !back.AlmostEqual(m, 1e-12) {
		t.Error("Figure 4 round trip failed")
	}
}

// TestExample5SensitivityProperty pins down the Theorem 2 property on the
// 2×2 example in place of Example 5's (erroneous) literal weights: total
// weighted coefficient change per unit entry change is P(A1)·P(A2) = 4.
func TestExample5SensitivityProperty(t *testing.T) {
	hn := mustHN(t, Ordinal(2), Ordinal(2))
	if got := hn.GeneralizedSensitivity(); got != 4 {
		t.Fatalf("GS = %v, want 4", got)
	}
	m := matrix.MustNew(2, 2)
	base, _ := hn.Forward(m)
	mod := m.Clone()
	mod.Set(1, 0, 0) // δ = 1 at v11
	pert, _ := hn.Forward(mod)
	weighted := 0.0
	coords := make([]int, 2)
	for off, v := range pert.Data() {
		pert.Coords(off, coords)
		weighted += hn.Weight(coords...) * math.Abs(v-base.Data()[off])
	}
	if math.Abs(weighted-4) > 1e-12 {
		t.Fatalf("weighted change = %v, want 4", weighted)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() should fail")
	}
	if _, err := New(Ordinal(0)); err == nil {
		t.Error("Ordinal(0) should fail")
	}
	if _, err := New(Spec{Kind: KindNominal}); err == nil {
		t.Error("nominal without hierarchy should fail")
	}
	if _, err := New(Spec{Kind: Kind(42), Size: 4}); err == nil {
		t.Error("unknown kind should fail")
	}
	h := fig3Hierarchy(t)
	if _, err := New(Spec{Kind: KindNominal, Hier: h, Size: 5}); err == nil {
		t.Error("nominal size mismatch should fail")
	}
	if _, err := New(Spec{Kind: KindNominal, Hier: h, Size: 6}); err != nil {
		t.Errorf("matching explicit size rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if KindOrdinal.String() != "ordinal" || KindNominal.String() != "nominal" {
		t.Error("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should still render")
	}
}

func TestShapes(t *testing.T) {
	h := fig3Hierarchy(t)
	hn := mustHN(t, Ordinal(5), Nominal(h))
	if got := hn.InputDims(); got[0] != 5 || got[1] != 6 {
		t.Errorf("InputDims = %v, want [5 6]", got)
	}
	// Ordinal 5 pads to 8; nominal 6 leaves grow to 9 nodes.
	if got := hn.CoeffDims(); got[0] != 8 || got[1] != 9 {
		t.Errorf("CoeffDims = %v, want [8 9]", got)
	}
	if hn.PaddedSize(0) != 8 || hn.PaddedSize(1) != 6 {
		t.Errorf("PaddedSize = %d, %d, want 8, 6", hn.PaddedSize(0), hn.PaddedSize(1))
	}
	if hn.NumDims() != 2 {
		t.Errorf("NumDims = %d", hn.NumDims())
	}
}

func TestForwardInputValidation(t *testing.T) {
	hn := mustHN(t, Ordinal(4), Ordinal(4))
	if _, err := hn.Forward(matrix.MustNew(4)); err == nil {
		t.Error("wrong dimensionality should fail")
	}
	if _, err := hn.Forward(matrix.MustNew(4, 5)); err == nil {
		t.Error("wrong shape should fail")
	}
	// With a padded dimension the coefficient shape differs from the
	// input shape, so an input-shaped matrix must be rejected by Inverse.
	padded := mustHN(t, Ordinal(5), Ordinal(4))
	if _, err := padded.Inverse(matrix.MustNew(5, 4)); err == nil {
		t.Error("Inverse with input-shaped matrix should fail (needs coeff shape)")
	}
	if _, err := padded.Inverse(matrix.MustNew(8)); err == nil {
		t.Error("Inverse with wrong dimensionality should fail")
	}
}

func roundTrip(t *testing.T, hn *HN, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	m, err := matrix.New(hn.InputDims()...)
	if err != nil {
		t.Fatal(err)
	}
	data := m.Data()
	for i := range data {
		data[i] = math.Floor(r.Float64()*20) - 5
	}
	c, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := hn.Inverse(c)
	if err != nil {
		t.Fatal(err)
	}
	if !back.AlmostEqual(m, 1e-8) {
		d, _ := back.MaxAbsDiff(m)
		t.Fatalf("round trip failed, max diff %v", d)
	}
}

func TestRoundTrip1DOrdinal(t *testing.T) { roundTrip(t, mustHN(t, Ordinal(16)), 1) }
func TestRoundTrip1DPadded(t *testing.T)  { roundTrip(t, mustHN(t, Ordinal(13)), 2) }
func TestRoundTrip1DNominal(t *testing.T) { roundTrip(t, mustHN(t, Nominal(fig3Hierarchy(t))), 3) }
func TestRoundTrip2DOrdinal(t *testing.T) { roundTrip(t, mustHN(t, Ordinal(8), Ordinal(4)), 4) }
func TestRoundTrip2DMixed(t *testing.T) {
	roundTrip(t, mustHN(t, Ordinal(7), Nominal(fig3Hierarchy(t))), 5)
}
func TestRoundTrip2DNominals(t *testing.T) {
	roundTrip(t, mustHN(t, Nominal(fig3Hierarchy(t)), Nominal(fig3Hierarchy(t))), 6)
}

func TestRoundTrip4DCensusShape(t *testing.T) {
	// The paper's schema shape: ordinal, tiny nominal, bigger nominal, ordinal.
	gender, err := hierarchy.Flat(2)
	if err != nil {
		t.Fatal(err)
	}
	occ, err := hierarchy.ThreeLevel(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	hn := mustHN(t, Ordinal(11), Nominal(gender), Nominal(occ), Ordinal(9))
	roundTrip(t, hn, 7)
}

func TestLinearity(t *testing.T) {
	hn := mustHN(t, Ordinal(4), Nominal(fig3Hierarchy(t)))
	r := rng.New(31)
	mk := func() *matrix.Matrix {
		m, _ := matrix.New(hn.InputDims()...)
		data := m.Data()
		for i := range data {
			data[i] = r.Float64()*10 - 5
		}
		return m
	}
	x, y := mk(), mk()
	a := 1.75
	combo := x.Clone()
	combo.Scale(a)
	if err := combo.AddMatrix(y); err != nil {
		t.Fatal(err)
	}
	tx, _ := hn.Forward(x)
	ty, _ := hn.Forward(y)
	tc, _ := hn.Forward(combo)
	want := tx.Clone()
	want.Scale(a)
	if err := want.AddMatrix(ty); err != nil {
		t.Fatal(err)
	}
	if !tc.AlmostEqual(want, 1e-9) {
		t.Fatal("HN transform is not linear")
	}
}

func TestGeneralizedSensitivityFormula(t *testing.T) {
	h := fig3Hierarchy(t)
	cases := []struct {
		hn   *HN
		want float64
	}{
		{mustHN(t, Ordinal(8)), 4},                           // 1+log2(8)
		{mustHN(t, Ordinal(5)), 4},                           // pads to 8
		{mustHN(t, Nominal(h)), 3},                           // height
		{mustHN(t, Ordinal(8), Nominal(h)), 12},              // 4·3
		{mustHN(t, Ordinal(2), Ordinal(2)), 4},               // 2·2
		{mustHN(t, Ordinal(16), Ordinal(4), Nominal(h)), 45}, // 5·3·3
	}
	for i, c := range cases {
		if got := c.hn.GeneralizedSensitivity(); got != c.want {
			t.Errorf("case %d: GS = %v, want %v", i, got, c.want)
		}
	}
}

func TestQueryVarianceFactorFormula(t *testing.T) {
	h := fig3Hierarchy(t)
	cases := []struct {
		hn   *HN
		want float64
	}{
		{mustHN(t, Ordinal(8)), 2.5},             // (2+3)/2
		{mustHN(t, Nominal(h)), 4},               // nominal constant
		{mustHN(t, Ordinal(8), Nominal(h)), 10},  // 2.5·4
		{mustHN(t, Ordinal(16), Ordinal(16)), 9}, // 3·3
	}
	for i, c := range cases {
		if got := c.hn.QueryVarianceFactor(); got != c.want {
			t.Errorf("case %d: H factor = %v, want %v", i, got, c.want)
		}
	}
}

// TestGeneralizedSensitivityEmpirical verifies Theorem 2 with equality:
// for power-of-two ordinal dims and chain-free hierarchies, a single-entry
// change of magnitude δ moves the weighted coefficient L1 by exactly
// ∏P(A_i)·δ.
func TestGeneralizedSensitivityEmpirical(t *testing.T) {
	h := fig3Hierarchy(t)
	configs := []*HN{
		mustHN(t, Ordinal(8)),
		mustHN(t, Nominal(h)),
		mustHN(t, Ordinal(4), Ordinal(8)),
		mustHN(t, Ordinal(4), Nominal(h)),
		mustHN(t, Nominal(h), Nominal(h)),
	}
	r := rng.New(13)
	for ci, hn := range configs {
		m, err := matrix.New(hn.InputDims()...)
		if err != nil {
			t.Fatal(err)
		}
		data := m.Data()
		for i := range data {
			data[i] = math.Floor(r.Float64() * 9)
		}
		base, err := hn.Forward(m)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			mod := m.Clone()
			pos := r.Intn(m.Len())
			delta := 1 + r.Float64()*2
			mod.Data()[pos] += delta
			pert, err := hn.Forward(mod)
			if err != nil {
				t.Fatal(err)
			}
			weighted := 0.0
			coords := make([]int, hn.NumDims())
			bd, pd := base.Data(), pert.Data()
			for off := range pd {
				d := math.Abs(pd[off] - bd[off])
				if d == 0 {
					continue
				}
				pert.Coords(off, coords)
				weighted += hn.Weight(coords...) * d
			}
			want := hn.GeneralizedSensitivity() * delta
			if math.Abs(weighted-want) > 1e-8*want {
				t.Fatalf("config %d trial %d: weighted change %v, want %v", ci, trial, weighted, want)
			}
		}
	}
}

// TestPaddedSensitivityUpperBound: with non-power-of-two ordinal sizes the
// entry change still respects the bound computed from padded sizes.
func TestPaddedSensitivityUpperBound(t *testing.T) {
	hn := mustHN(t, Ordinal(5), Ordinal(3))
	r := rng.New(17)
	m, _ := matrix.New(5, 3)
	base, _ := hn.Forward(m)
	for trial := 0; trial < 10; trial++ {
		mod := m.Clone()
		mod.Data()[r.Intn(m.Len())] += 1
		pert, _ := hn.Forward(mod)
		weighted := 0.0
		coords := make([]int, 2)
		bd, pd := base.Data(), pert.Data()
		for off := range pd {
			d := math.Abs(pd[off] - bd[off])
			if d == 0 {
				continue
			}
			pert.Coords(off, coords)
			weighted += hn.Weight(coords...) * d
		}
		if weighted > hn.GeneralizedSensitivity()+1e-9 {
			t.Fatalf("weighted change %v exceeds bound %v", weighted, hn.GeneralizedSensitivity())
		}
	}
}

func TestWeightMatrixAgreesWithWeight(t *testing.T) {
	hn := mustHN(t, Ordinal(4), Nominal(fig3Hierarchy(t)))
	wm, err := hn.WeightMatrix()
	if err != nil {
		t.Fatal(err)
	}
	coords := make([]int, 2)
	for off, v := range wm.Data() {
		wm.Coords(off, coords)
		if v != hn.Weight(coords...) {
			t.Fatalf("WeightMatrix mismatch at %v: %v vs %v", coords, v, hn.Weight(coords...))
		}
	}
}

func TestWeightPanicsOnBadCoords(t *testing.T) {
	hn := mustHN(t, Ordinal(4))
	defer func() {
		if recover() == nil {
			t.Fatal("Weight with wrong coord count did not panic")
		}
	}()
	hn.Weight(1, 2)
}

// TestTheorem3VarianceBound Monte-Carlo-checks the multi-dimensional
// utility bound on a small mixed-dimension transform.
func TestTheorem3VarianceBound(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo")
	}
	h := fig3Hierarchy(t)
	hn := mustHN(t, Ordinal(4), Nominal(h))
	sigma := 1.0
	bound := hn.QueryVarianceFactor() * sigma * sigma

	r := rng.New(2024)
	const trials = 3000
	// Query: rows 1..2 × the subtree of the first internal node (leaves 0..2).
	sumSq := 0.0
	cd := hn.CoeffDims()
	coords := make([]int, 2)
	for trial := 0; trial < trials; trial++ {
		c, err := matrix.New(cd...)
		if err != nil {
			t.Fatal(err)
		}
		data := c.Data()
		for off := range data {
			c.Coords(off, coords)
			w := hn.Weight(coords...)
			if w == 0 {
				continue
			}
			data[off] = r.Laplace(sigma / (math.Sqrt2 * w))
		}
		rec, err := hn.Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		q := 0.0
		for i := 1; i <= 2; i++ {
			for j := 0; j <= 2; j++ {
				q += rec.At(i, j)
			}
		}
		sumSq += q * q
	}
	empirical := sumSq / trials
	if empirical > bound*1.10 {
		t.Fatalf("empirical variance %v exceeds Theorem 3 bound %v", empirical, bound)
	}
}

// Property: round trip is identity for random 2-D mixed shapes.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, sRaw, gRaw, lRaw uint8) bool {
		size := int(sRaw%12) + 1
		g := int(gRaw%4) + 1
		l := int(lRaw%4) + 1
		h, err := hierarchy.ThreeLevel(g, l)
		if err != nil {
			return false
		}
		hn, err := New(Ordinal(size), Nominal(h))
		if err != nil {
			return false
		}
		r := rng.New(seed)
		m, err := matrix.New(hn.InputDims()...)
		if err != nil {
			return false
		}
		data := m.Data()
		for i := range data {
			data[i] = r.Float64()*6 - 3
		}
		c, err := hn.Forward(m)
		if err != nil {
			return false
		}
		back, err := hn.Inverse(c)
		if err != nil {
			return false
		}
		return back.AlmostEqual(m, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
