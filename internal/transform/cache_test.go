package transform

import (
	"testing"

	"repro/internal/matrix"
)

// TestKernelCacheBitIdentical proves that a cached exec produces the
// same bits as the uncached serial path at several worker counts.
func TestKernelCacheBitIdentical(t *testing.T) {
	hn := testHN(t)
	m := randomInput(t, hn, 7)
	wantC, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	wantRec, err := hn.Inverse(wantC)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		ex := Exec{Workers: workers, Pipe: matrix.NewPipeline(), Cache: hn.NewKernelCache(workers)}
		for pass := 0; pass < 3; pass++ {
			c, err := hn.ForwardExec(m, ex)
			if err != nil {
				t.Fatal(err)
			}
			if d, _ := wantC.MaxAbsDiff(c); d != 0 {
				t.Fatalf("workers=%d pass=%d: cached forward diverged by %v", workers, pass, d)
			}
			rec, err := hn.InverseExec(c, ex)
			if err != nil {
				t.Fatal(err)
			}
			if d, _ := wantRec.MaxAbsDiff(rec); d != 0 {
				t.Fatalf("workers=%d pass=%d: cached inverse diverged by %v", workers, pass, d)
			}
		}
	}
}

// TestKernelCacheReuse is the zero-alloc claim in cache form: after the
// first forward+inverse pass has built every kernel a worker needs,
// later passes construct none.
func TestKernelCacheReuse(t *testing.T) {
	hn := testHN(t)
	m := randomInput(t, hn, 11)
	for _, workers := range []int{1, 3} {
		ex := Exec{Workers: workers, Pipe: matrix.NewPipeline(), Cache: hn.NewKernelCache(workers)}
		pass := func() {
			c, err := hn.ForwardExec(m, ex)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := hn.InverseExec(c, ex); err != nil {
				t.Fatal(err)
			}
		}
		pass()
		warm := ex.Cache.Built()
		if warm == 0 {
			t.Fatalf("workers=%d: warm cache reports zero kernels built", workers)
		}
		// ceiling: ≤ dims × workers × 2 directions.
		if maxBuilt := hn.NumDims() * workers * 2; warm > maxBuilt {
			t.Fatalf("workers=%d: built %d kernels, max expected %d", workers, warm, maxBuilt)
		}
		for i := 0; i < 5; i++ {
			pass()
		}
		if got := ex.Cache.Built(); got != warm {
			t.Fatalf("workers=%d: steady-state passes built %d new kernels", workers, got-warm)
		}
	}
}

// TestKernelCacheForeignHN: a cache constructed by one transform must be
// rejected by another — its scratch sizes would be wrong.
func TestKernelCacheForeignHN(t *testing.T) {
	a := mustHN(t, Ordinal(8))
	b := mustHN(t, Ordinal(16))
	m := randomInput(t, a, 1)
	ex := Exec{Workers: 1, Cache: b.NewKernelCache(1)}
	if _, err := a.ForwardExec(m, ex); err == nil {
		t.Fatal("ForwardExec accepted a cache from a different HN")
	}
	c, err := a.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.InverseExec(c, ex); err == nil {
		t.Fatal("InverseExec accepted a cache from a different HN")
	}
}

// TestKernelCacheOverflowWorkers: worker indices beyond the cache's cap
// must fall back to fresh kernels, not fail or corrupt.
func TestKernelCacheOverflowWorkers(t *testing.T) {
	hn := testHN(t)
	m := randomInput(t, hn, 3)
	want, err := hn.Forward(m)
	if err != nil {
		t.Fatal(err)
	}
	// Cache sized for 1 worker, exec fanning to 4: workers 1..3 overflow.
	ex := Exec{Workers: 4, Cache: hn.NewKernelCache(1)}
	got, err := hn.ForwardExec(m, ex)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := want.MaxAbsDiff(got); d != 0 {
		t.Fatalf("overflow workers diverged by %v", d)
	}
}
