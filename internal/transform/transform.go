// Package transform implements the Haar-Nominal (HN) multi-dimensional
// wavelet transform of §VI-A: the standard decomposition that applies a
// one-dimensional transform (Haar for ordinal dimensions, nominal for
// hierarchy-bearing dimensions) along each dimension of the frequency
// matrix in turn.
//
// Coefficient vectors are laid out base-first in level order, exactly as
// the one-dimensional packages emit them, so "the i-th coefficient of
// every vector along dimension k" is a well-defined coefficient slot with
// a homogeneous per-slot weight. That makes the paper's recursively
// defined weight function W_HN factor into a tensor product:
//
//	W_HN(c) = ∏_i w_i[coord_i(c)]
//
// where w_i is the one-dimensional weight vector of dimension i. (Proof
// sketch: in step i the new weight is W_i(c) times the weight shared by
// the source vector, and the shared weight depends only on the
// already-transformed coordinates — induction gives the product form.)
// Weight therefore never materializes a full weight matrix unless asked.
//
// Ordinal dimensions are padded to the next power of two with dummy zero
// entries (§IV's remedy); privacy and utility formulas use the padded
// sizes. Nominal dimensions grow from |A| to the node count of their
// hierarchy (the transform is over-complete, §V-A).
package transform

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/haar"
	"repro/internal/hierarchy"
	"repro/internal/matrix"
	"repro/internal/nominal"
)

// Kind distinguishes ordinal from nominal dimensions.
type Kind int

const (
	// KindOrdinal marks a totally ordered dimension (Haar transform).
	KindOrdinal Kind = iota
	// KindNominal marks a hierarchy-bearing dimension (nominal transform).
	KindNominal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOrdinal:
		return "ordinal"
	case KindNominal:
		return "nominal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one dimension of the input matrix.
type Spec struct {
	Kind Kind
	// Size is the domain size |A|. For nominal dimensions it must equal
	// the hierarchy's leaf count (and may be left 0 to default to it).
	Size int
	// Hier is required for nominal dimensions and ignored for ordinal.
	Hier *hierarchy.Hierarchy
}

// Ordinal returns a Spec for an ordinal dimension of the given size.
func Ordinal(size int) Spec { return Spec{Kind: KindOrdinal, Size: size} }

// Nominal returns a Spec for a nominal dimension with hierarchy h.
func Nominal(h *hierarchy.Hierarchy) Spec { return Spec{Kind: KindNominal, Hier: h} }

// dim is the resolved per-dimension machinery.
type dim struct {
	spec    Spec
	size    int // original size |A|
	padded  int // ordinal: next power of two; nominal: size
	coeffs  int // coefficient count after the 1-D transform
	weights []float64
	nom     *nominal.Transform // nil for ordinal
}

// HN is a multi-dimensional Haar-Nominal wavelet transform. It is
// immutable after New and safe for concurrent use.
type HN struct {
	dims []dim
}

// New builds an HN transform for the given dimension specs.
func New(specs ...Spec) (*HN, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("transform: need at least one dimension")
	}
	t := &HN{dims: make([]dim, len(specs))}
	for i, s := range specs {
		d := dim{spec: s}
		switch s.Kind {
		case KindOrdinal:
			if s.Size <= 0 {
				return nil, fmt.Errorf("transform: ordinal dimension %d has non-positive size %d", i, s.Size)
			}
			d.size = s.Size
			d.padded = haar.NextPowerOfTwo(s.Size)
			d.coeffs = d.padded
			w, err := haar.Weights(d.padded)
			if err != nil {
				return nil, fmt.Errorf("transform: dimension %d: %w", i, err)
			}
			d.weights = w
		case KindNominal:
			if s.Hier == nil {
				return nil, fmt.Errorf("transform: nominal dimension %d lacks a hierarchy", i)
			}
			if s.Size != 0 && s.Size != s.Hier.LeafCount() {
				return nil, fmt.Errorf("transform: nominal dimension %d size %d != hierarchy leaf count %d",
					i, s.Size, s.Hier.LeafCount())
			}
			nt, err := nominal.New(s.Hier)
			if err != nil {
				return nil, fmt.Errorf("transform: dimension %d: %w", i, err)
			}
			d.size = s.Hier.LeafCount()
			d.padded = d.size
			d.coeffs = nt.OutputSize()
			d.weights = nt.Weights()
			d.nom = nt
		default:
			return nil, fmt.Errorf("transform: dimension %d has unknown kind %v", i, s.Kind)
		}
		t.dims[i] = d
	}
	return t, nil
}

// NumDims returns the dimensionality d.
func (t *HN) NumDims() int { return len(t.dims) }

// InputDims returns the expected input matrix shape (original domain
// sizes, unpadded).
func (t *HN) InputDims() []int {
	out := make([]int, len(t.dims))
	for i, d := range t.dims {
		out[i] = d.size
	}
	return out
}

// CoeffDims returns the coefficient matrix shape.
func (t *HN) CoeffDims() []int {
	out := make([]int, len(t.dims))
	for i, d := range t.dims {
		out[i] = d.coeffs
	}
	return out
}

// PaddedSize returns the padded domain size of dimension i (the m_i the
// privacy formulas use).
func (t *HN) PaddedSize(i int) int { return t.dims[i].padded }

// Exec carries the execution resources of a transform pass through the
// parallel publish engine.
type Exec struct {
	// Workers is the goroutine count each ApplyAlong step fans out to;
	// values ≤ 1 run serially on the calling goroutine. Output is
	// bit-identical at any worker count.
	Workers int
	// Pipe, when non-nil, supplies ping-pong buffers the pass's steps
	// alternate between, so a d-step pass allocates no full matrices
	// after warm-up. The returned matrix then aliases pipeline storage:
	// it is invalidated by the next pass using the same pipeline, and the
	// pipeline must not be shared between goroutines.
	Pipe *matrix.Pipeline
	// Cache, when non-nil, reuses kernel instances (and their scratch
	// slices) across successive passes instead of rebuilding them per
	// pass — the last per-sub-matrix allocations of the publish engine.
	// It must come from the same HN's NewKernelCache, sized for at least
	// Workers, and like Pipe must not be shared between goroutines.
	Cache *KernelCache
	// Ctx, when non-nil, is observed inside every ApplyAlong step's
	// chunk loop (about every 64Ki entries), so a pass over a huge
	// single sub-matrix cancels mid-transform instead of only between
	// steps. A cancelled pass returns ctx's error and no matrix.
	Ctx context.Context
}

// apply runs one ApplyAlong step under the exec policy.
func (ex Exec) apply(m *matrix.Matrix, dim, newSize int, factory matrix.KernelFactory) (*matrix.Matrix, error) {
	ctx := ex.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if ex.Pipe != nil {
		return ex.Pipe.ApplyAlongCtx(ctx, m, dim, newSize, ex.Workers, factory)
	}
	return m.ApplyAlongPoolCtx(ctx, dim, newSize, ex.Workers, factory)
}

// KernelCache memoizes kernel instances per (dimension, direction,
// worker) so a worker that processes many sub-matrices through the same
// transform builds each kernel's scratch once, not once per sub-matrix.
// Construct with HN.NewKernelCache. A cache belongs to one HN and one
// goroutine's Exec (its slots are written by the ApplyAlong workers the
// exec spawns, ordered through that goroutine); sharing a cache between
// concurrently executing passes is a data race.
type KernelCache struct {
	owner    *HN
	fwd, inv [][]matrix.VecFunc // [dimension][worker]
	// built counts kernel instances constructed (for tests/stats); it is
	// atomic because concurrent workers of one pass may construct their
	// kernels simultaneously.
	built atomic.Int64
}

// NewKernelCache returns a cache for passes over t with up to `workers`
// ApplyAlong workers (values < 1 are treated as 1; worker indices beyond
// the cap fall back to uncached construction rather than failing).
func (t *HN) NewKernelCache(workers int) *KernelCache {
	if workers < 1 {
		workers = 1
	}
	c := &KernelCache{owner: t, fwd: make([][]matrix.VecFunc, len(t.dims)), inv: make([][]matrix.VecFunc, len(t.dims))}
	for i := range t.dims {
		c.fwd[i] = make([]matrix.VecFunc, workers)
		c.inv[i] = make([]matrix.VecFunc, workers)
	}
	return c
}

// Built reports how many kernel instances the cache has constructed; a
// steady-state pass over a warm cache leaves it unchanged.
func (c *KernelCache) Built() int { return int(c.built.Load()) }

// cached wraps factory so worker w reuses slots[w] across passes.
func (c *KernelCache) cached(slots []matrix.VecFunc, factory matrix.KernelFactory) matrix.KernelFactory {
	return func(w int) matrix.VecFunc {
		if w < 0 || w >= len(slots) {
			return factory(w)
		}
		if slots[w] == nil {
			slots[w] = factory(w)
			c.built.Add(1)
		}
		return slots[w]
	}
}

// kernel resolves dimension i's kernel factory under the exec policy,
// memoized through ex.Cache when one is set.
func (t *HN) kernel(i int, inverse bool, ex Exec) (matrix.KernelFactory, error) {
	var factory matrix.KernelFactory
	if inverse {
		factory = t.inverseKernel(i)
	} else {
		factory = t.forwardKernel(i)
	}
	if ex.Cache == nil {
		return factory, nil
	}
	if ex.Cache.owner != t {
		return nil, fmt.Errorf("transform: Exec.Cache belongs to a different HN")
	}
	slots := ex.Cache.fwd[i]
	if inverse {
		slots = ex.Cache.inv[i]
	}
	return ex.Cache.cached(slots, factory), nil
}

// Forward applies the HN transform to M and returns the coefficient
// matrix C_d. Shorthand for ForwardExec with serial, allocating
// execution.
func (t *HN) Forward(m *matrix.Matrix) (*matrix.Matrix, error) {
	return t.ForwardExec(m, Exec{})
}

// forwardKernel returns the kernel factory of dimension i's forward step.
// Power-of-two padding of ordinal dimensions (§IV's remedy) is fused into
// the kernel: src may be the unpadded |A|-length vector, which the kernel
// zero-extends in per-worker scratch before transforming.
func (t *HN) forwardKernel(i int) matrix.KernelFactory {
	d := t.dims[i]
	switch d.spec.Kind {
	case KindOrdinal:
		// ForwardPaddedIntoScratch zero-extends src to d.padded in its
		// own scratch, so the unpadded and padded cases share one kernel.
		return func(int) matrix.VecFunc {
			scratch := make([]float64, d.padded)
			return func(src, dst []float64) {
				haar.ForwardPaddedIntoScratch(src, dst, scratch)
			}
		}
	default: // KindNominal, validated in New
		nt := d.nom
		return func(int) matrix.VecFunc {
			scratch := make([]float64, d.coeffs)
			return func(src, dst []float64) {
				nt.ForwardIntoScratch(src, dst, scratch)
			}
		}
	}
}

// ForwardExec is Forward under an execution policy: each of the d
// standard-decomposition steps fans its independent vectors across
// ex.Workers goroutines, and with ex.Pipe set the steps ping-pong between
// two reused buffers instead of allocating d matrices.
func (t *HN) ForwardExec(m *matrix.Matrix, ex Exec) (*matrix.Matrix, error) {
	if err := t.checkInput(m); err != nil {
		return nil, err
	}
	cur := m
	for i, d := range t.dims {
		factory, err := t.kernel(i, false, ex)
		if err != nil {
			return nil, err
		}
		cur, err = ex.apply(cur, i, d.coeffs, factory)
		if err != nil {
			return nil, fmt.Errorf("transform: forward dimension %d: %w", i, err)
		}
	}
	return cur, nil
}

// Inverse reconstructs the frequency matrix from a coefficient matrix,
// applying mean subtraction along every nominal dimension before that
// dimension's inverse step (footnote 2 of §VI-B). The input is not
// modified. Shorthand for InverseExec with serial, allocating execution.
func (t *HN) Inverse(c *matrix.Matrix) (*matrix.Matrix, error) {
	return t.InverseExec(c, Exec{})
}

// inverseKernel returns the kernel factory of dimension i's inverse step.
// Every kernel instance owns its scratch, so instances from one factory
// may run concurrently on distinct workers.
func (t *HN) inverseKernel(i int) matrix.KernelFactory {
	d := t.dims[i]
	switch d.spec.Kind {
	case KindOrdinal:
		return func(int) matrix.VecFunc {
			padded := make([]float64, d.padded)
			return func(src, dst []float64) {
				haar.InverseInto(src, padded)
				copy(dst, padded[:d.size])
			}
		}
	default: // KindNominal, validated in New
		nt := d.nom
		return func(int) matrix.VecFunc {
			coeffs := make([]float64, d.coeffs)
			sums := make([]float64, d.coeffs)
			return func(src, dst []float64) {
				copy(coeffs, src)
				// Errors are impossible here: coeffs has the exact size.
				_ = nt.MeanSubtract(coeffs)
				nt.InverseIntoScratch(coeffs, dst, sums)
			}
		}
	}
}

// InverseExec is Inverse under an execution policy; see ForwardExec. A
// publish pass chains ForwardExec → noise injection → InverseExec through
// one pipeline, touching only the two ping-pong buffers throughout.
func (t *HN) InverseExec(c *matrix.Matrix, ex Exec) (*matrix.Matrix, error) {
	got := c.Dims()
	want := t.CoeffDims()
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			return nil, fmt.Errorf("transform: coefficient shape %v, want %v", got, want)
		}
	}
	cur := c
	for i := len(t.dims) - 1; i >= 0; i-- {
		factory, err := t.kernel(i, true, ex)
		if err != nil {
			return nil, err
		}
		cur, err = ex.apply(cur, i, t.dims[i].size, factory)
		if err != nil {
			return nil, fmt.Errorf("transform: inverse dimension %d: %w", i, err)
		}
	}
	return cur, nil
}

// WeightVector returns the one-dimensional weight vector of dimension i,
// aligned with the coefficient layout along that dimension. The slice is
// owned by the transform; callers must not modify it.
func (t *HN) WeightVector(i int) []float64 { return t.dims[i].weights }

// Weight returns W_HN at the given coefficient coordinates: the product
// of per-dimension weights. A zero anywhere (structurally-zero nominal
// coefficient) makes the whole weight zero, meaning "no noise needed".
func (t *HN) Weight(coords ...int) float64 {
	if len(coords) != len(t.dims) {
		panic(fmt.Sprintf("transform: got %d coordinates for %d dimensions", len(coords), len(t.dims)))
	}
	w := 1.0
	for i, c := range coords {
		w *= t.dims[i].weights[c]
	}
	return w
}

// WeightMatrix materializes the full W_HN as a matrix shaped like the
// coefficient matrix. Intended for tests and inspection; noise injection
// should iterate via WeightVector to avoid the allocation.
func (t *HN) WeightMatrix() (*matrix.Matrix, error) {
	out, err := matrix.New(t.CoeffDims()...)
	if err != nil {
		return nil, err
	}
	data := out.Data()
	coords := make([]int, len(t.dims))
	for off := range data {
		out.Coords(off, coords)
		data[off] = t.Weight(coords...)
	}
	return out, nil
}

// GeneralizedSensitivity returns Theorem 2's bound ∏P(A_i) with respect
// to W_HN, where P(A) = 1+log₂(padded |A|) for ordinal dimensions and the
// hierarchy height for nominal ones.
func (t *HN) GeneralizedSensitivity() float64 {
	p := 1.0
	for _, d := range t.dims {
		p *= t.dimP(d)
	}
	return p
}

// QueryVarianceFactor returns Theorem 3's factor ∏H(A_i): with noise of
// variance at most (σ/W_HN(c))² per coefficient, every range-count query
// on the reconstruction has noise variance at most σ²·∏H(A_i).
func (t *HN) QueryVarianceFactor() float64 {
	hprod := 1.0
	for _, d := range t.dims {
		hprod *= t.dimH(d)
	}
	return hprod
}

func (t *HN) dimP(d dim) float64 {
	if d.spec.Kind == KindOrdinal {
		return haar.GeneralizedSensitivity(d.padded)
	}
	return d.nom.GeneralizedSensitivity()
}

func (t *HN) dimH(d dim) float64 {
	if d.spec.Kind == KindOrdinal {
		return haar.QueryVarianceFactor(d.padded)
	}
	return d.nom.QueryVarianceFactor()
}

func (t *HN) checkInput(m *matrix.Matrix) error {
	got := m.Dims()
	want := t.InputDims()
	if len(got) != len(want) {
		return fmt.Errorf("transform: input dimensionality %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("transform: input shape %v, want %v", got, want)
		}
	}
	return nil
}
