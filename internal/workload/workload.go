// Package workload implements the paper's experimental query workload
// (§VII-A): random range-count queries with 1–4 predicates, plus the
// error metrics (square error, relative error under a sanity bound) and
// the quintile binning used to produce Figures 6–9.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
)

// Generator draws random range-count queries against a schema following
// §VII-A: the number of predicates is uniform in [1, min(4, d)]; each
// predicate picks a distinct random attribute; ordinal predicates are
// uniform random intervals; nominal predicates select a uniform random
// non-root hierarchy node's subtree.
type Generator struct {
	schema   *dataset.Schema
	maxPreds int
}

// NewGenerator builds a generator over schema. maxPreds caps the
// predicate count (the paper uses 4); it is clamped to the attribute
// count.
func NewGenerator(schema *dataset.Schema, maxPreds int) (*Generator, error) {
	if maxPreds < 1 {
		return nil, fmt.Errorf("workload: maxPreds must be ≥ 1, got %d", maxPreds)
	}
	if d := schema.NumAttrs(); maxPreds > d {
		maxPreds = d
	}
	return &Generator{schema: schema, maxPreds: maxPreds}, nil
}

// Query draws one random query.
func (g *Generator) Query(r *rng.Source) (query.Query, error) {
	numPreds := 1 + r.Intn(g.maxPreds)
	perm := r.Perm(g.schema.NumAttrs())
	b := query.NewBuilder(g.schema)
	for _, ai := range perm[:numPreds] {
		a := g.schema.Attr(ai)
		switch a.Kind {
		case dataset.Ordinal:
			x, y := r.Intn(a.Size), r.Intn(a.Size)
			if x > y {
				x, y = y, x
			}
			b.Interval(ai, x, y)
		case dataset.Nominal:
			nodes := a.Hier.Nodes()
			if len(nodes) == 1 {
				// Degenerate single-node hierarchy: only the root exists;
				// use its full (single-leaf) range.
				b.Interval(ai, 0, a.Size-1)
				continue
			}
			// Uniform non-root node: IDs 1..len-1.
			n := nodes[1+r.Intn(len(nodes)-1)]
			lo, hi := a.Hier.LeafInterval(n)
			b.Interval(ai, lo, hi)
		}
	}
	return b.Build()
}

// Queries draws count random queries.
func (g *Generator) Queries(count int, r *rng.Source) ([]query.Query, error) {
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	out := make([]query.Query, count)
	for i := range out {
		q, err := g.Query(r)
		if err != nil {
			return nil, err
		}
		out[i] = q
	}
	return out, nil
}

// SquareError returns (estimate − actual)² (§VII-A).
func SquareError(estimate, actual float64) float64 {
	d := estimate - actual
	return d * d
}

// RelativeError returns |estimate − actual| / max(actual, sanity), the
// paper's relative error with sanity bound (following [12], [13]); the
// paper sets sanity to 0.1% of the tuple count.
func RelativeError(estimate, actual, sanity float64) float64 {
	denom := actual
	if sanity > denom {
		denom = sanity
	}
	if denom == 0 {
		// Degenerate: empty data and no sanity bound. Define 0/0 = 0 so
		// exact answers report zero error.
		if estimate == actual {
			return 0
		}
		return 1
	}
	d := estimate - actual
	if d < 0 {
		d = -d
	}
	return d / denom
}

// SanityBound returns the paper's sanity bound: 0.1% of n.
func SanityBound(n int) float64 { return 0.001 * float64(n) }

// Bin is one quintile of a (key, error) population.
type Bin struct {
	// AvgKey is the mean key (coverage or selectivity) of the bin — the
	// X coordinate of the paper's plots.
	AvgKey float64
	// AvgError is the mean error of the bin — the Y coordinate.
	AvgError float64
	// Count is the number of queries in the bin.
	Count int
}

// QuintileBins sorts the population by key, splits it into `bins`
// near-equal parts (the paper uses 5: "queries in the i-th subset have
// coverage between the (i−1)-th and i-th quintiles"), and returns the
// per-bin mean key and mean error.
func QuintileBins(keys, errors []float64, bins int) ([]Bin, error) {
	if len(keys) != len(errors) {
		return nil, fmt.Errorf("workload: %d keys but %d errors", len(keys), len(errors))
	}
	if bins < 1 {
		return nil, fmt.Errorf("workload: bins must be ≥ 1, got %d", bins)
	}
	n := len(keys)
	if n == 0 {
		return nil, fmt.Errorf("workload: empty population")
	}
	if bins > n {
		bins = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })

	out := make([]Bin, 0, bins)
	for b := 0; b < bins; b++ {
		lo := b * n / bins
		hi := (b + 1) * n / bins
		if lo >= hi {
			continue
		}
		var sk, se float64
		for _, i := range idx[lo:hi] {
			sk += keys[i]
			se += errors[i]
		}
		c := hi - lo
		out = append(out, Bin{AvgKey: sk / float64(c), AvgError: se / float64(c), Count: c})
	}
	return out, nil
}
