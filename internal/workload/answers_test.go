package workload

// The answer wire format's contract: answers round-trip bit-identically
// (float64 ==) through both representations, a complete stream always
// carries a trailer, and a cut stream — however it was cut — is
// reported as ErrTruncated rather than read as a short answer list.

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
)

// awkward answer values: negatives, subnormals, extremes, and values
// whose shortest rendering exercises both fixed and scientific forms.
var testAnswers = []float64{
	0, 1, -1, 0.1, 146.625, -3.75e-12, 1e300, -1e-300,
	math.MaxFloat64, math.SmallestNonzeroFloat64, 5e-324, 123456789.000001,
}

func writeChunked(t *testing.T, aw AnswerWriter, answers []float64, chunk int) {
	t.Helper()
	for lo := 0; lo < len(answers); lo += chunk {
		hi := lo + chunk
		if hi > len(answers) {
			hi = len(answers)
		}
		if err := aw.WriteChunk(answers[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := aw.Close(Trailer{Answers: len(answers), Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerLinesRoundTrip(t *testing.T) {
	for _, chunk := range []int{1, 5, 100} {
		var buf bytes.Buffer
		writeChunked(t, NewAnswerLines(&buf), testAnswers, chunk)
		got, trailer, err := ReadAnswerLines(&buf)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if trailer.Status != StatusOK || trailer.Answers != len(testAnswers) {
			t.Fatalf("chunk=%d: trailer = %+v", chunk, trailer)
		}
		if len(got) != len(testAnswers) {
			t.Fatalf("chunk=%d: %d answers, want %d", chunk, len(got), len(testAnswers))
		}
		for i, v := range testAnswers {
			if got[i] != v {
				t.Fatalf("chunk=%d: answer %d = %v, want %v (not bit-identical)", chunk, i, got[i], v)
			}
		}
	}
}

func TestAnswerLinesTruncated(t *testing.T) {
	var buf bytes.Buffer
	aw := NewAnswerLines(&buf)
	if err := aw.WriteChunk([]float64{1.5, 2.5}); err != nil {
		t.Fatal(err)
	}
	// No Close: the stream just stops, as a killed connection leaves it.
	got, _, err := ReadAnswerLines(&buf)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// The answers that made it through are still returned, so a caller
	// can resume or diagnose.
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Fatalf("partial answers = %v", got)
	}
}

func TestAnswerLinesErrorTrailer(t *testing.T) {
	var buf bytes.Buffer
	aw := NewAnswerLines(&buf)
	if err := aw.WriteChunk([]float64{7}); err != nil {
		t.Fatal(err)
	}
	// The error detail survives quoting: spaces, '=', quotes.
	detail := `workload: line 4098: query: predicate "Age=9..1" inverted`
	if err := aw.Close(Trailer{Answers: 1, Status: StatusError, Error: detail}); err != nil {
		t.Fatal(err)
	}
	got, trailer, err := ReadAnswerLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || trailer.Status != StatusError || trailer.Answers != 1 || trailer.Error != detail {
		t.Fatalf("got %v, trailer %+v", got, trailer)
	}
}

func TestAnswerLinesEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	writeChunked(t, NewAnswerLines(&buf), nil, 1)
	got, trailer, err := ReadAnswerLines(&buf)
	if err != nil || len(got) != 0 || trailer.Answers != 0 || trailer.Status != StatusOK {
		t.Fatalf("empty stream: answers=%v trailer=%+v err=%v", got, trailer, err)
	}
}

func TestAnswerJSONRoundTrip(t *testing.T) {
	for _, chunk := range []int{1, 5, 100} {
		var buf bytes.Buffer
		writeChunked(t, NewAnswerJSON(&buf, 4), testAnswers, chunk)
		got, trailer, err := ReadAnswersJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("chunk=%d: %v\nbody: %s", chunk, err, buf.Bytes())
		}
		if trailer.Status != StatusOK || trailer.Answers != len(testAnswers) {
			t.Fatalf("chunk=%d: trailer = %+v", chunk, trailer)
		}
		for i, v := range testAnswers {
			if got[i] != v {
				t.Fatalf("chunk=%d: answer %d = %v, want %v (not bit-identical)", chunk, i, got[i], v)
			}
		}
		// The streamed object supersets the pre-streaming response shape:
		// a client decoding the old {queries, workers, answers} keeps
		// working, trailer unseen.
		var legacy struct {
			Queries int       `json:"queries"`
			Workers int       `json:"workers"`
			Answers []float64 `json:"answers"`
		}
		if err := json.Unmarshal(buf.Bytes(), &legacy); err != nil {
			t.Fatalf("chunk=%d: legacy decode: %v", chunk, err)
		}
		if legacy.Queries != len(testAnswers) || legacy.Workers != 4 || len(legacy.Answers) != len(testAnswers) {
			t.Fatalf("chunk=%d: legacy shape broken: %+v", chunk, legacy)
		}
	}
}

func TestAnswerJSONTruncated(t *testing.T) {
	var buf bytes.Buffer
	aw := NewAnswerJSON(&buf, 1)
	if err := aw.WriteChunk([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(Trailer{Answers: 3, Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut the body at every prefix length: none may read as complete.
	for cut := 0; cut < len(full)-1; cut++ {
		if _, _, err := ReadAnswersJSON(bytes.NewReader(full[:cut])); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d bytes: err = %v, want ErrTruncated", cut, err)
		}
	}
	if _, _, err := ReadAnswersJSON(bytes.NewReader(full)); err != nil {
		t.Fatalf("full body: %v", err)
	}
}

func TestAnswerJSONNoTrailerField(t *testing.T) {
	// A complete JSON object without a trailer (the pre-streaming
	// response) is reported truncated too: the caller asked for the
	// streaming guarantee and did not get it.
	body := `{"queries":2,"workers":1,"answers":[1,2]}`
	if _, _, err := ReadAnswersJSON(strings.NewReader(body)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestAnswerJSONEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	aw := NewAnswerJSON(&buf, 2)
	if err := aw.Close(Trailer{Answers: 0, Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()
	got, trailer, err := ReadAnswersJSON(bytes.NewReader(body))
	if err != nil || len(got) != 0 || trailer.Status != StatusOK {
		t.Fatalf("empty stream: answers=%v trailer=%+v err=%v", got, trailer, err)
	}
	if !json.Valid(body) {
		t.Fatalf("empty stream is invalid JSON: %s", body)
	}
}

func TestTrailerLineParse(t *testing.T) {
	cases := []struct {
		line    string
		want    Trailer
		wantErr bool
	}{
		{"# answers=40000 status=ok", Trailer{Answers: 40000, Status: StatusOK}, false},
		{`# answers=3 status=error error="bad spec"`, Trailer{Answers: 3, Status: StatusError, Error: "bad spec"}, false},
		{"# answers=x status=ok", Trailer{}, true},
		{"# answers=1", Trailer{}, true},
		{"# something else", Trailer{}, true},
	}
	for _, tc := range cases {
		got, err := parseTrailerLine(tc.line)
		if (err != nil) != tc.wantErr {
			t.Errorf("parseTrailerLine(%q) err = %v, wantErr=%v", tc.line, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("parseTrailerLine(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}
