// Streaming answer wire format. A batch response at million-query
// scale is written chunk by chunk while later chunks still execute, so
// a client can no longer equate "the connection closed" with "the
// workload finished": a mid-stream failure (or a killed connection)
// would silently truncate the answer list. Every streamed answer body
// therefore ends with an explicit trailer carrying the answer count and
// a status — a response without a well-formed trailer IS truncated, by
// definition, and the readers here say so.
//
// Two representations, mirroring the workload formats:
//
//   - lines: one answer per line (strconv 'g'/-1, which round-trips the
//     exact float64), terminated by a '#'-prefixed trailer line
//     ("# answers=40000 status=ok") that line-oriented consumers can
//     skip as a comment — written by AnswerLines, read by ReadAnswerLines;
//   - JSON: {"workers":W,"answers":[...],"queries":N,"trailer":{...}},
//     streamed as the answers arrive — written by AnswerJSON, read by
//     ReadAnswersJSON. The "queries" and "answers" fields keep the
//     pre-streaming response shape, so clients that decoded the old
//     buffered object keep working; the trailer is strictly additive.
//
// Float formatting: the JSON writer marshals each chunk with
// encoding/json so the byte-level number rendering is identical to the
// old buffered json.Encoder response — answers stay bit-identical
// through either representation's round trip.

package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trailer terminates a streamed answer body. Status is StatusOK when
// every workload query was answered; StatusError means the stream was
// cut deliberately after Answers answers (Error says why: a bad spec
// mid-workload, a cancelled request, an engine failure). A body that
// simply ends without any trailer was truncated by the transport.
type Trailer struct {
	// Answers is the number of answers actually delivered before the
	// trailer.
	Answers int `json:"answers"`
	// Status is StatusOK or StatusError.
	Status string `json:"status"`
	// Error carries the failure detail when Status is StatusError.
	Error string `json:"error,omitempty"`
}

// Trailer status values.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// ErrTruncated reports an answer stream that ended without a trailer —
// the transport dropped data after the last byte received. Compare with
// errors.Is.
var ErrTruncated = errors.New("workload: answer stream truncated (no trailer)")

// AnswerWriter is the chunk-at-a-time answer emitter ExecuteStream's
// sink drives: zero or more WriteChunk calls in answer order, then
// exactly one Close carrying the trailer.
type AnswerWriter interface {
	WriteChunk(answers []float64) error
	Close(t Trailer) error
}

// trailerPrefix starts the line format's trailer line; '#' cannot start
// an answer (answers are numbers), so the trailer is unambiguous.
const trailerPrefix = "# answers="

// AnswerLines writes the line answer format.
type AnswerLines struct {
	bw *bufio.Writer
}

// NewAnswerLines returns an AnswerWriter emitting the line format to w.
func NewAnswerLines(w io.Writer) *AnswerLines {
	return &AnswerLines{bw: bufio.NewWriter(w)}
}

// WriteChunk emits one answer per line and flushes, so the chunk is on
// the wire (time-to-first-answer) before the next one executes.
func (a *AnswerLines) WriteChunk(answers []float64) error {
	for _, v := range answers {
		a.bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		if err := a.bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return a.bw.Flush()
}

// Close writes the trailer line and flushes.
func (a *AnswerLines) Close(t Trailer) error {
	a.bw.WriteString(trailerPrefix)
	a.bw.WriteString(strconv.Itoa(t.Answers))
	a.bw.WriteString(" status=")
	a.bw.WriteString(t.Status)
	if t.Error != "" {
		a.bw.WriteString(" error=")
		a.bw.WriteString(strconv.Quote(t.Error))
	}
	a.bw.WriteByte('\n')
	return a.bw.Flush()
}

// ReadAnswerLines reads a line-format answer stream: the answers, the
// trailer, and a non-nil error wrapping ErrTruncated if the stream
// ended without one.
func ReadAnswerLines(r io.Reader) ([]float64, Trailer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var answers []float64
	for sc.Scan() {
		line := sc.Text()
		if isBlank(line) {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t, err := parseTrailerLine(line)
			if err != nil {
				return answers, Trailer{}, err
			}
			return answers, t, nil
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line), 64)
		if err != nil {
			return answers, Trailer{}, fmt.Errorf("workload: bad answer line %q: %v", line, err)
		}
		answers = append(answers, v)
	}
	if err := sc.Err(); err != nil {
		return answers, Trailer{}, fmt.Errorf("workload: reading answers: %w", err)
	}
	return answers, Trailer{}, fmt.Errorf("%d answers then EOF: %w", len(answers), ErrTruncated)
}

// parseTrailerLine decodes "# answers=N status=S [error="..."]".
func parseTrailerLine(line string) (Trailer, error) {
	rest, ok := strings.CutPrefix(line, trailerPrefix)
	if !ok {
		return Trailer{}, fmt.Errorf("workload: bad trailer line %q", line)
	}
	numStr, rest, ok := strings.Cut(rest, " status=")
	if !ok {
		return Trailer{}, fmt.Errorf("workload: trailer %q missing status", line)
	}
	n, err := strconv.Atoi(numStr)
	if err != nil {
		return Trailer{}, fmt.Errorf("workload: trailer %q: bad answer count: %v", line, err)
	}
	t := Trailer{Answers: n}
	if status, errq, hasErr := strings.Cut(rest, " error="); hasErr {
		t.Status = status
		if t.Error, err = strconv.Unquote(errq); err != nil {
			return Trailer{}, fmt.Errorf("workload: trailer %q: bad error field: %v", line, err)
		}
	} else {
		t.Status = rest
	}
	return t, nil
}

// AnswerJSON writes the JSON answer format. The enclosing object opens
// on the first chunk (or at Close for an empty stream) and closes with
// the trailer, so a decoder sees valid JSON exactly when the stream
// completed.
type AnswerJSON struct {
	w io.Writer
	// Workers is echoed into the response head (0 omits nothing — it is
	// still written, matching the old buffered response shape).
	workers int
	started bool
	wrote   bool
	err     error
}

// NewAnswerJSON returns an AnswerWriter emitting the JSON format to w;
// workers is echoed in the response head like the old buffered response.
func NewAnswerJSON(w io.Writer, workers int) *AnswerJSON {
	return &AnswerJSON{w: w, workers: workers}
}

// start emits the object head up to the opening '[' of "answers".
func (a *AnswerJSON) start() error {
	if a.started {
		return a.err
	}
	a.started = true
	_, a.err = fmt.Fprintf(a.w, `{"workers":%d,"answers":[`, a.workers)
	return a.err
}

// WriteChunk appends one chunk of answers to the streamed array. The
// chunk is rendered with encoding/json so number formatting is
// byte-identical to the old buffered encoder.
func (a *AnswerJSON) WriteChunk(answers []float64) error {
	if err := a.start(); err != nil {
		return err
	}
	if len(answers) == 0 {
		return nil
	}
	raw, err := json.Marshal(answers)
	if err != nil {
		a.err = err
		return err
	}
	body := bytes.TrimSuffix(bytes.TrimPrefix(raw, []byte("[")), []byte("]"))
	if a.wrote {
		if _, err := a.w.Write([]byte(",")); err != nil {
			a.err = err
			return err
		}
	}
	a.wrote = true
	if _, err := a.w.Write(body); err != nil {
		a.err = err
		return err
	}
	return nil
}

// Close terminates the array and writes the "queries" echo plus the
// trailer object.
func (a *AnswerJSON) Close(t Trailer) error {
	if err := a.start(); err != nil {
		return err
	}
	raw, err := json.Marshal(t)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(a.w, `],"queries":%d,"trailer":%s}`, t.Answers, raw)
	if err == nil {
		_, err = a.w.Write([]byte("\n"))
	}
	return err
}

// ReadAnswersJSON reads a JSON-format answer stream: the answers, the
// trailer, and a non-nil error wrapping ErrTruncated if the body is not
// a complete object with a trailer (i.e. the stream was cut).
func ReadAnswersJSON(r io.Reader) ([]float64, Trailer, error) {
	var out struct {
		Answers []float64 `json:"answers"`
		Trailer *Trailer  `json:"trailer"`
	}
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		// A cut stream is malformed JSON (the object never closed).
		return nil, Trailer{}, fmt.Errorf("%v: %w", err, ErrTruncated)
	}
	if out.Trailer == nil {
		return out.Answers, Trailer{}, fmt.Errorf("complete JSON without trailer: %w", ErrTruncated)
	}
	return out.Answers, *out.Trailer, nil
}
