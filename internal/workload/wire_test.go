package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/rng"
)

// TestWireRoundTrip: WriteQueries → ReadPlan reproduces a generated
// workload's normalized intervals exactly, on the census schema (mixed
// ordinal/nominal attributes).
func TestWireRoundTrip(t *testing.T) {
	s := censusSchema(t)
	gen, err := NewGenerator(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gen.Plan(300, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteQueries(&buf, s, plan.Queries()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlan(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != plan.Len() {
		t.Fatalf("round trip: %d queries, want %d", back.Len(), plan.Len())
	}
	for i := 0; i < plan.Len(); i++ {
		wlo, whi := plan.Query(i).Lo(), plan.Query(i).Hi()
		glo, ghi := back.Query(i).Lo(), back.Query(i).Hi()
		for a := range wlo {
			if wlo[a] != glo[a] || whi[a] != ghi[a] {
				t.Fatalf("query %d attr %d: [%d,%d], want [%d,%d]", i, a, glo[a], ghi[a], wlo[a], whi[a])
			}
		}
	}
}

func TestReadPlanSkipsBlanksAndNumbersErrors(t *testing.T) {
	s := censusSchema(t)
	plan, err := ReadPlan(s, strings.NewReader("Age=1..3\n\n  \n*\n"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 2 {
		t.Fatalf("len = %d, want 2", plan.Len())
	}

	_, err = ReadPlan(s, strings.NewReader("Age=1..3\n\nAge=9..1\n"))
	if err == nil || !errors.Is(err, query.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err %q does not carry the line number", err)
	}
}

func TestReadPlanJSONForms(t *testing.T) {
	s := censusSchema(t)
	for _, body := range []string{
		`["Age=1..3", "*", "Gender=#1"]`,
		`{"queries": ["Age=1..3", "*", "Gender=#1"]}`,
		`{"comment": {"nested": [1, 2]}, "queries": ["Age=1..3", "*", "Gender=#1"]}`,
	} {
		plan, err := ReadPlanJSON(s, strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", body, err)
		}
		if plan.Len() != 3 {
			t.Fatalf("%s: len = %d, want 3", body, plan.Len())
		}
	}
	for _, body := range []string{
		``,
		`42`,
		`{"nope": []}`,
		`{"queries": "Age=1..3"}`,
		`["Age=1..3", 7]`,
		`["Age=9..1"]`,
		`["Ghost=1..2"]`,
	} {
		if _, err := ReadPlanJSON(s, strings.NewReader(body)); !errors.Is(err, query.ErrInvalid) {
			t.Fatalf("%q: err = %v, want ErrInvalid", body, err)
		}
	}
}
