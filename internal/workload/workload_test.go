package workload

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hierarchy"
	"repro/internal/query"
	"repro/internal/rng"
)

func censusSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	s, err := dataset.BrazilSpec(dataset.ScaleSmall).Schema()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeneratorPredicateCount(t *testing.T) {
	s := censusSchema(t)
	g, err := NewGenerator(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	counts := make(map[int]int)
	for i := 0; i < 4000; i++ {
		q, err := g.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		np := q.NumPredicates()
		if np < 1 || np > 4 {
			t.Fatalf("predicate count %d out of [1,4]", np)
		}
		counts[np]++
	}
	// Uniform over [1,4]: each bucket ≈ 1000.
	for np := 1; np <= 4; np++ {
		if counts[np] < 800 || counts[np] > 1200 {
			t.Errorf("predicate count %d drawn %d times, want ~1000", np, counts[np])
		}
	}
}

func TestGeneratorMaxPredsClamped(t *testing.T) {
	s := dataset.MustSchema(dataset.OrdinalAttr("A", 8), dataset.OrdinalAttr("B", 8))
	g, err := NewGenerator(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		q, err := g.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumPredicates() > 2 {
			t.Fatalf("predicate count %d exceeds attribute count", q.NumPredicates())
		}
	}
	if _, err := NewGenerator(s, 0); err == nil {
		t.Error("maxPreds 0 should fail")
	}
}

func TestGeneratorNominalPredicatesAreSubtrees(t *testing.T) {
	s := censusSchema(t)
	occIdx, err := s.Index("Occupation")
	if err != nil {
		t.Fatal(err)
	}
	occ := s.Attr(occIdx)
	// Collect the set of valid subtree intervals.
	valid := make(map[[2]int]bool)
	for _, n := range occ.Hier.Nodes()[1:] {
		lo, hi := occ.Hier.LeafInterval(n)
		valid[[2]int{lo, hi}] = true
	}
	g, err := NewGenerator(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	full := [2]int{0, occ.Size - 1}
	for i := 0; i < 2000; i++ {
		q, err := g.Query(r)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := q.Lo()[occIdx], q.Hi()[occIdx]
		iv := [2]int{lo, hi}
		if iv == full {
			continue // unconstrained
		}
		if !valid[iv] {
			t.Fatalf("occupation interval %v is not a hierarchy subtree", iv)
		}
	}
}

func TestGeneratorSingleNodeHierarchy(t *testing.T) {
	// A one-leaf hierarchy (root only) must not panic.
	h, err := hierarchySingle()
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.MustSchema(dataset.NominalAttr("N", h), dataset.OrdinalAttr("A", 4))
	g, err := NewGenerator(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		if _, err := g.Query(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueriesCountAndDeterminism(t *testing.T) {
	s := censusSchema(t)
	g, err := NewGenerator(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.Queries(50, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	qs2, err := g.Queries(50, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		a, b := qs[i], qs2[i]
		la, lb := a.Lo(), b.Lo()
		ha, hb := a.Hi(), b.Hi()
		for j := range la {
			if la[j] != lb[j] || ha[j] != hb[j] {
				t.Fatalf("query %d differs across same-seed generations", i)
			}
		}
	}
	if _, err := g.Queries(-1, rng.New(1)); err == nil {
		t.Error("negative count should fail")
	}
}

func TestSquareError(t *testing.T) {
	if SquareError(5, 3) != 4 {
		t.Error("SquareError(5,3) != 4")
	}
	if SquareError(3, 5) != 4 {
		t.Error("SquareError(3,5) != 4")
	}
	if SquareError(2, 2) != 0 {
		t.Error("SquareError(2,2) != 0")
	}
}

func TestRelativeError(t *testing.T) {
	// Above the sanity bound: plain relative error.
	if got := RelativeError(110, 100, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v, want 0.1", got)
	}
	// Below the sanity bound: denominator clamps to sanity.
	if got := RelativeError(5, 1, 10); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("RelativeError with sanity = %v, want 0.4", got)
	}
	// Exact answer → zero error.
	if RelativeError(7, 7, 10) != 0 {
		t.Error("exact answer should have zero error")
	}
	// Degenerate 0/0.
	if RelativeError(0, 0, 0) != 0 {
		t.Error("0/0 should define to 0")
	}
	if RelativeError(3, 0, 0) != 1 {
		t.Error("wrong answer with zero denominator should define to 1")
	}
}

func TestSanityBound(t *testing.T) {
	if SanityBound(10000000) != 10000 {
		t.Errorf("SanityBound(10M) = %v, want 10000", SanityBound(10000000))
	}
}

func TestQuintileBins(t *testing.T) {
	keys := []float64{5, 1, 3, 2, 4, 10, 9, 6, 7, 8}
	errs := []float64{50, 10, 30, 20, 40, 100, 90, 60, 70, 80}
	bins, err := QuintileBins(keys, errs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("got %d bins", len(bins))
	}
	// Sorted keys 1..10 in pairs: bin means 1.5, 3.5, …, 9.5; errors ×10.
	for i, b := range bins {
		wantKey := 1.5 + 2*float64(i)
		if math.Abs(b.AvgKey-wantKey) > 1e-12 {
			t.Errorf("bin %d AvgKey = %v, want %v", i, b.AvgKey, wantKey)
		}
		if math.Abs(b.AvgError-wantKey*10) > 1e-12 {
			t.Errorf("bin %d AvgError = %v, want %v", i, b.AvgError, wantKey*10)
		}
		if b.Count != 2 {
			t.Errorf("bin %d Count = %d, want 2", i, b.Count)
		}
	}
}

func TestQuintileBinsUneven(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5, 6, 7}
	errs := []float64{1, 1, 1, 1, 1, 1, 1}
	bins, err := QuintileBins(keys, errs, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 7 {
		t.Fatalf("bins lose or duplicate members: total %d", total)
	}
}

func TestQuintileBinsErrors(t *testing.T) {
	if _, err := QuintileBins([]float64{1}, []float64{1, 2}, 5); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := QuintileBins(nil, nil, 5); err == nil {
		t.Error("empty population should fail")
	}
	if _, err := QuintileBins([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("zero bins should fail")
	}
	// More bins than items: collapses without error.
	bins, err := QuintileBins([]float64{1, 2}, []float64{3, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
}

func TestWorkloadEndToEnd(t *testing.T) {
	// Smoke test mirroring the experiment pipeline: generate, evaluate
	// on a real frequency matrix, bin by coverage.
	spec := dataset.BrazilSpec(dataset.ScaleSmall)
	tbl, err := dataset.GenerateCensus(spec, 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tbl.FrequencyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	ev := query.NewEvaluator(m)
	g, err := NewGenerator(tbl.Schema(), 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	qs, err := g.Queries(300, r)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]float64, len(qs))
	errs := make([]float64, len(qs))
	for i, q := range qs {
		act, err := ev.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if act < 0 || act > 2000 {
			t.Fatalf("actual answer %v out of range", act)
		}
		keys[i] = q.Coverage()
		errs[i] = SquareError(act, act) // zero for the smoke test
	}
	bins, err := QuintileBins(keys, errs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 5 {
		t.Fatalf("got %d bins", len(bins))
	}
	// Coverage keys must be increasing across bins.
	for i := 1; i < len(bins); i++ {
		if bins[i].AvgKey < bins[i-1].AvgKey {
			t.Fatalf("bins not ordered by coverage: %v", bins)
		}
	}
}

func hierarchySingle() (*hierarchy.Hierarchy, error) {
	return hierarchy.Build(&hierarchy.Node{Label: "only"})
}
