package workload

// Native fuzz targets for the two wire formats the server decodes from
// request bodies. Both readers face arbitrary bytes, so the first
// property is simply "no panic"; the second is the round-trip contract
// each format documents: an accepted workload re-emitted by
// WriteQueries reads back with identical canonical specs, and an
// accepted answer stream re-emitted by AnswerLines reads back
// bit-identically with the same trailer. Seed corpora live under
// testdata/fuzz/; CI runs a short -fuzz smoke on top of them.

import (
	"bytes"
	"math"
	"testing"
)

func FuzzReadPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"*\n",
		"Age=0..30\nGender=#1\nOccupation=@g3\n",
		"Occupation=#3..5\nIncome=10..20\n\n  \n*\n",
		"Age=1..3\nAge=9..1\n", // valid line then invalid
		"Age=0..3,Gender=#0\n", // multi-predicate line
		"# not a comment format\n",
		"Age=0..999999999999999999999\n",
	} {
		f.Add([]byte(seed))
	}
	schema := censusSchema(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := ReadPlan(schema, bytes.NewReader(data))
		if err != nil {
			// Rejected input: the only property is that the reader
			// failed cleanly instead of panicking.
			return
		}
		// Accepted input round-trips: WriteQueries is the documented
		// inverse of ReadPlan, and Spec renders canonically.
		var buf bytes.Buffer
		if err := WriteQueries(&buf, schema, plan.Queries()); err != nil {
			t.Fatalf("WriteQueries on accepted plan: %v", err)
		}
		back, err := ReadPlan(schema, &buf)
		if err != nil {
			t.Fatalf("re-reading emitted workload: %v", err)
		}
		if back.Len() != plan.Len() {
			t.Fatalf("round trip: %d queries, want %d", back.Len(), plan.Len())
		}
		for i := 0; i < plan.Len(); i++ {
			w, g := plan.Query(i).Spec(schema), back.Query(i).Spec(schema)
			if w != g {
				t.Fatalf("query %d: spec %q round-tripped to %q", i, w, g)
			}
		}
	})
}

func FuzzReadAnswerLines(f *testing.F) {
	for _, seed := range []string{
		"# answers=0 status=ok\n",
		"1\n2.5\n# answers=2 status=ok\n",
		"-0\nNaN\n+Inf\n-Inf\n# answers=4 status=ok\n",
		"3\n# answers=3 status=error error=\"engine: boom\"\n",
		"0.30000000000000004\n# answers=1 status=ok\n",
		"1\n2\n", // truncated: answers then EOF
		"",
		"abc\n",
		"# answers=x status=ok\n",
		"# answers=1\n",
		"1e400\n# answers=1 status=ok\n", // out of float64 range
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		answers, tr, err := ReadAnswerLines(bytes.NewReader(data))
		if err != nil {
			// Rejected or truncated stream: failing cleanly is the
			// whole property.
			return
		}
		// Accepted stream round-trips bit-identically: the line writer
		// formats with strconv 'g'/-1 exactly so that every float64 —
		// NaN, infinities, signed zero included — survives re-reading.
		var buf bytes.Buffer
		w := NewAnswerLines(&buf)
		if err := w.WriteChunk(answers); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
		if err := w.Close(tr); err != nil {
			t.Fatalf("Close: %v", err)
		}
		back, tr2, err := ReadAnswerLines(&buf)
		if err != nil {
			t.Fatalf("re-reading emitted stream: %v", err)
		}
		if len(back) != len(answers) {
			t.Fatalf("round trip: %d answers, want %d", len(back), len(answers))
		}
		for i := range answers {
			if math.Float64bits(back[i]) != math.Float64bits(answers[i]) {
				t.Fatalf("answer %d: %v (%#x) round-tripped to %v (%#x)",
					i, answers[i], math.Float64bits(answers[i]), back[i], math.Float64bits(back[i]))
			}
		}
		if tr2 != tr {
			t.Fatalf("trailer %+v round-tripped to %+v", tr, tr2)
		}
	})
}
