// Wire format for query workloads. Experiments (§VII-A), the HTTP batch
// endpoint, and cmd/privelet -query all move workloads through the same
// two representations so there is exactly one way a workload exists
// outside the process:
//
//   - lines: one query.Parse spec per line ("Age=30..49,Occ=#3..5"),
//     blank lines skipped — the CSV-friendly form, written by
//     WriteQueries and read by NewLineSpecs/ReadPlan;
//   - JSON: either a bare array of spec strings or an object
//     {"queries": ["spec", ...]}, read by NewJSONSpecs/ReadPlanJSON.
//
// Both representations stream twice over: a SpecReader yields specs one
// at a time (the body text is never buffered), and Queries adapts it
// into a query.Source so parsing pipelines straight into a streaming
// batch execution — a million-query workload never exists in memory as
// a plan, only as the two in-flight chunks of query.Batch.ExecuteStream.
// ReadPlan/ReadPlanJSON remain the buffered convenience for callers
// that want the whole workload as an object (the experiment harness,
// offline tools); they are thin accumulations over the same readers.

package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
)

// SpecReader streams query specs from one wire-format body. Next
// returns the next spec, ok=false on clean end of input, or an error.
// Pos describes the position of the most recently returned spec
// ("line 7" for the line format, "query 7" for JSON) for error
// messages that must point a client at the offending entry of a
// 40 000-line workload.
type SpecReader interface {
	Next() (spec string, ok bool, err error)
	Pos() string
}

// lineSpecs reads the line wire format: one spec per line, blank lines
// skipped.
type lineSpecs struct {
	sc   *bufio.Scanner
	line int
}

// NewLineSpecs returns a SpecReader over the line wire format.
func NewLineSpecs(r io.Reader) SpecReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &lineSpecs{sc: sc}
}

func (l *lineSpecs) Next() (string, bool, error) {
	for l.sc.Scan() {
		l.line++
		spec := l.sc.Text()
		if isBlank(spec) {
			continue
		}
		return spec, true, nil
	}
	if err := l.sc.Err(); err != nil {
		return "", false, fmt.Errorf("workload: reading queries: %w", err)
	}
	return "", false, nil
}

func (l *lineSpecs) Pos() string { return fmt.Sprintf("line %d", l.line) }

// jsonSpecs reads the JSON wire format: a bare array of spec strings,
// or an object whose "queries" field is such an array (other fields are
// ignored). The decoder walks the array token by token, so the body
// text is never held whole. Malformed JSON wraps query.ErrInvalid — for
// an API endpoint either way the client sent a bad workload.
type jsonSpecs struct {
	dec *json.Decoder
	// inArray is set once the opening '[' of the spec array is consumed.
	inArray bool
	n       int
}

// NewJSONSpecs returns a SpecReader over the JSON wire format.
func NewJSONSpecs(r io.Reader) SpecReader {
	return &jsonSpecs{dec: json.NewDecoder(r)}
}

func (j *jsonSpecs) Next() (string, bool, error) {
	if !j.inArray {
		if err := j.enterArray(); err != nil {
			return "", false, err
		}
	}
	if !j.dec.More() {
		return "", false, nil
	}
	var spec string
	if err := j.dec.Decode(&spec); err != nil {
		return "", false, invalidJSON(err)
	}
	j.n++
	return spec, true, nil
}

func (j *jsonSpecs) Pos() string { return fmt.Sprintf("query %d", j.n) }

// enterArray consumes tokens up to the opening '[' of the spec array.
func (j *jsonSpecs) enterArray() error {
	tok, err := j.dec.Token()
	if err != nil {
		return invalidJSON(err)
	}
	switch d := tok.(type) {
	case json.Delim:
		switch d {
		case '[':
			j.inArray = true
			return nil
		case '{':
			for j.dec.More() {
				keyTok, err := j.dec.Token()
				if err != nil {
					return invalidJSON(err)
				}
				key, _ := keyTok.(string)
				if key != "queries" {
					// Skip the value of a foreign field.
					var skip json.RawMessage
					if err := j.dec.Decode(&skip); err != nil {
						return invalidJSON(err)
					}
					continue
				}
				open, err := j.dec.Token()
				if err != nil {
					return invalidJSON(err)
				}
				if open != json.Delim('[') {
					return fmt.Errorf("workload: \"queries\" must be an array of spec strings: %w", query.ErrInvalid)
				}
				j.inArray = true
				return nil
			}
			return fmt.Errorf("workload: JSON body has no \"queries\" array: %w", query.ErrInvalid)
		}
	}
	return fmt.Errorf("workload: JSON body must be an array or {\"queries\": [...]}: %w", query.ErrInvalid)
}

// Queries adapts a SpecReader into a query.Source by parsing each spec
// against schema — the pipeline stage that lets wire-format decoding
// overlap batch execution. Parse failures carry the reader's position
// and wrap query.ErrInvalid (a client error); reader failures pass
// through as the reader reported them.
func Queries(schema *dataset.Schema, sr SpecReader) query.Source {
	return func() (query.Query, bool, error) {
		spec, ok, err := sr.Next()
		if err != nil || !ok {
			return query.Query{}, false, err
		}
		q, err := query.Parse(schema, spec)
		if err != nil {
			return query.Query{}, false, fmt.Errorf("workload: %s: %w", sr.Pos(), err)
		}
		return q, true, nil
	}
}

// ReadPlan reads the line wire format from r into a validated plan.
// Parse failures carry the 1-based line number and wrap query.ErrInvalid
// (a client error); reader failures do not.
func ReadPlan(schema *dataset.Schema, r io.Reader) (*query.Plan, error) {
	return accumulate(schema, NewLineSpecs(r))
}

// ReadPlanJSON reads the JSON wire format from r into a validated plan:
// a bare array of spec strings, or an object whose "queries" field is
// such an array (other fields are ignored).
func ReadPlanJSON(schema *dataset.Schema, r io.Reader) (*query.Plan, error) {
	return accumulate(schema, NewJSONSpecs(r))
}

// accumulate drains a SpecReader into a plan (the buffered read path).
func accumulate(schema *dataset.Schema, sr SpecReader) (*query.Plan, error) {
	plan := query.NewPlan(schema)
	src := Queries(schema, sr)
	for {
		q, ok, err := src()
		if err != nil {
			return nil, err
		}
		if !ok {
			return plan, nil
		}
		plan.AddQuery(q)
	}
}

// invalidJSON tags a JSON decode failure as a client error.
func invalidJSON(err error) error {
	return fmt.Errorf("workload: bad JSON workload: %v: %w", err, query.ErrInvalid)
}

// isBlank reports whether the line holds only ASCII whitespace (the
// line reader's skip rule, kept allocation-free for 40k-line bodies).
func isBlank(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// WriteQueries emits the queries in the line wire format, one spec per
// line — the inverse of ReadPlan. schema must be the schema the queries
// were built against.
func WriteQueries(w io.Writer, schema *dataset.Schema, queries []query.Query) error {
	bw := bufio.NewWriter(w)
	for _, q := range queries {
		if _, err := bw.WriteString(q.Spec(schema)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Plan draws count random queries straight into a query.Plan — the
// generator's output in the same representation the batch executor and
// the wire format consume.
func (g *Generator) Plan(count int, r *rng.Source) (*query.Plan, error) {
	qs, err := g.Queries(count, r)
	if err != nil {
		return nil, err
	}
	plan := query.NewPlan(g.schema)
	for _, q := range qs {
		plan.AddQuery(q)
	}
	return plan, nil
}
