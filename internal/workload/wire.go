// Wire format for query workloads. Experiments (§VII-A), the HTTP batch
// endpoint, and cmd/privelet -query all move workloads through the same
// two representations so there is exactly one way a workload exists
// outside the process:
//
//   - lines: one query.Parse spec per line ("Age=30..49,Occ=#3..5"),
//     blank lines skipped — the CSV-friendly form, written by
//     WriteQueries and read by ReadPlan;
//   - JSON: either a bare array of spec strings or an object
//     {"queries": ["spec", ...]}, read by ReadPlanJSON.
//
// Both readers stream: specs pass one at a time through the same kind of
// chokepoint as cli.ReadRows, so a 40 000-line workload body is never
// buffered as text — memory holds the normalized queries only.

package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
)

// ReadPlan streams the line wire format from r into a validated plan.
// Parse failures carry the 1-based line number and wrap query.ErrInvalid
// (a client error); reader failures do not.
func ReadPlan(schema *dataset.Schema, r io.Reader) (*query.Plan, error) {
	plan := query.NewPlan(schema)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		spec := sc.Text()
		if isBlank(spec) {
			continue
		}
		if err := plan.Add(spec); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading queries: %w", err)
	}
	return plan, nil
}

// ReadPlanJSON streams the JSON wire format from r into a validated
// plan: a bare array of spec strings, or an object whose "queries" field
// is such an array (other fields are ignored). The decoder walks the
// array token by token, so the body text is never held whole. Malformed
// JSON and parse failures both wrap query.ErrInvalid — for an API
// endpoint either way the client sent a bad workload.
func ReadPlanJSON(schema *dataset.Schema, r io.Reader) (*query.Plan, error) {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err != nil {
		return nil, invalidJSON(err)
	}
	switch d := tok.(type) {
	case json.Delim:
		switch d {
		case '[':
			return readSpecArray(schema, dec)
		case '{':
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, invalidJSON(err)
				}
				key, _ := keyTok.(string)
				if key != "queries" {
					// Skip the value of a foreign field.
					var skip json.RawMessage
					if err := dec.Decode(&skip); err != nil {
						return nil, invalidJSON(err)
					}
					continue
				}
				open, err := dec.Token()
				if err != nil {
					return nil, invalidJSON(err)
				}
				if open != json.Delim('[') {
					return nil, fmt.Errorf("workload: \"queries\" must be an array of spec strings: %w", query.ErrInvalid)
				}
				return readSpecArray(schema, dec)
			}
			return nil, fmt.Errorf("workload: JSON body has no \"queries\" array: %w", query.ErrInvalid)
		}
	}
	return nil, fmt.Errorf("workload: JSON body must be an array or {\"queries\": [...]}: %w", query.ErrInvalid)
}

// readSpecArray consumes spec strings up to the array's closing ']'.
func readSpecArray(schema *dataset.Schema, dec *json.Decoder) (*query.Plan, error) {
	plan := query.NewPlan(schema)
	for dec.More() {
		var spec string
		if err := dec.Decode(&spec); err != nil {
			return nil, invalidJSON(err)
		}
		if err := plan.Add(spec); err != nil {
			return nil, fmt.Errorf("workload: query %d: %w", plan.Len()+1, err)
		}
	}
	return plan, nil
}

// invalidJSON tags a JSON decode failure as a client error.
func invalidJSON(err error) error {
	return fmt.Errorf("workload: bad JSON workload: %v: %w", err, query.ErrInvalid)
}

// isBlank reports whether the line holds only ASCII whitespace (the
// line reader's skip rule, kept allocation-free for 40k-line bodies).
func isBlank(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\r', '\n':
		default:
			return false
		}
	}
	return true
}

// WriteQueries emits the queries in the line wire format, one spec per
// line — the inverse of ReadPlan. schema must be the schema the queries
// were built against.
func WriteQueries(w io.Writer, schema *dataset.Schema, queries []query.Query) error {
	bw := bufio.NewWriter(w)
	for _, q := range queries {
		if _, err := bw.WriteString(q.Spec(schema)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Plan draws count random queries straight into a query.Plan — the
// generator's output in the same representation the batch executor and
// the wire format consume.
func (g *Generator) Plan(count int, r *rng.Source) (*query.Plan, error) {
	qs, err := g.Queries(count, r)
	if err != nil {
		return nil, err
	}
	plan := query.NewPlan(g.schema)
	for _, q := range qs {
		plan.AddQuery(q)
	}
	return plan, nil
}
