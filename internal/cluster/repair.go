package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// RingVersionHeader carries the sender's ring membership version on
// every internal call (replication pushes, repair triggers). A receiver
// whose own ring is newer refuses the call with a typed 409, so a
// router or repairer running an outdated peer list fails loudly instead
// of shipping copies to stale placement. internal/server checks the
// header under the same name.
const RingVersionHeader = "X-Ring-Version"

// DefaultRepairInterval is the background anti-entropy sweep period
// when RepairConfig.Interval is not set. Thirty seconds bounds how long
// a recovered node stays under-replicated without letting the sweeps'
// peer listings become meaningful load.
const DefaultRepairInterval = 30 * time.Second

// DefaultRepairTimeout bounds one repair HTTP call (a peer listing, an
// export, a push) when RepairConfig.Client is nil.
const DefaultRepairTimeout = 30 * time.Second

// RepairConfig configures a node's Repairer.
type RepairConfig struct {
	// Self is this node's ring name. Required, and must be a ring member.
	Self string
	// Ring is the placement authority the sweep diffs against. Required.
	Ring *Ring
	// Store is this node's release store. Required.
	Store *store.Store
	// Interval between background sweeps; ≤ 0 means
	// DefaultRepairInterval. The interval only matters to Start — an
	// on-demand Sweep ignores it.
	Interval time.Duration
	// Jitter is the maximum random delay added to each background
	// sweep's wait, desynchronizing a fleet whose nodes restarted
	// together so their sweeps don't hammer every peer's /releases
	// listing in the same instant. 0 means the default of 10% of the
	// effective Interval; negative disables jitter (exact-period sweeps,
	// what deterministic tests want). Like Interval it only matters to
	// Start.
	Jitter time.Duration
	// Secret is the cluster's shared bearer token, sent on pushes to
	// peers' /internal/replicate endpoints. Must match the peers'
	// -cluster-secret; empty only works against unauthenticated peers.
	Secret string
	// Client issues sweep requests; nil means a client with
	// DefaultRepairTimeout.
	Client *http.Client
	// Parallelism bounds the evaluator rebuild of pulled copies; ≤ 0
	// means GOMAXPROCS (see store.Config.Parallelism).
	Parallelism int
	// MaxBody bounds pulled payloads; ≤ 0 means 64 MiB.
	MaxBody int64
}

// RepairStats is the repairer's accounting, nested under "ring.repair"
// in the node's /stats response.
type RepairStats struct {
	// Sweeps counts completed sweep passes (background and on-demand).
	Sweeps int64 `json:"sweeps"`
	// Pushed counts copies shipped to under-replicated peers; Pulled
	// counts copies fetched because this node was the missing replica.
	Pushed int64 `json:"pushed"`
	Pulled int64 `json:"pulled"`
	// DeletesPropagated counts replica copies withdrawn because this
	// node holds a tombstone for them; TombstonesAdopted counts local
	// copies withdrawn because a peer refused a push with "deleted".
	DeletesPropagated int64 `json:"deletes_propagated"`
	TombstonesAdopted int64 `json:"tombstones_adopted"`
	// Errors counts failed repair actions (unreachable peers are not
	// errors — they are the condition repair exists for).
	Errors int64 `json:"errors"`
	// LastSweep is the RFC3339 time the last sweep finished, empty
	// before the first one; LastScanned is how many distinct release IDs
	// it considered.
	LastSweep   string `json:"last_sweep,omitempty"`
	LastScanned int64  `json:"last_scanned"`
}

// RepairReport is one sweep's outcome — the response body of
// POST /internal/repair, so an operator triggering repair by hand sees
// exactly what moved. Entries are "id→node" (pushed), "id←node"
// (pulled), "id@node" (delete propagated), or plain IDs (tombstones
// adopted); all lists are sorted.
type RepairReport struct {
	Node              string   `json:"node"`
	RingVersion       uint64   `json:"ring_version"`
	Scanned           int      `json:"scanned"`
	Pushed            []string `json:"pushed,omitempty"`
	Pulled            []string `json:"pulled,omitempty"`
	DeletesPropagated []string `json:"deletes_propagated,omitempty"`
	TombstonesAdopted []string `json:"tombstones_adopted,omitempty"`
	Unreachable       []string `json:"unreachable,omitempty"`
	Errors            []string `json:"errors,omitempty"`
}

// Repairer is a node's anti-entropy loop: it diffs actual release
// placement (its own store plus every peer's /releases listing) against
// the ring's intended placement and converges the two — re-shipping
// missing copies through the same PUT /internal/replicate chokepoint
// synchronous replication uses, pulling copies this node itself is
// missing, and finishing DELETEs that replicas slept through.
//
// Releases are immutable (the paper's publish-once model: ε is spent
// when the noisy matrix is computed, the bytes never change), so repair
// is pure file shipping and always converges: a copy is either present
// and bit-identical or absent, never stale. The only ordering hazard is
// deletion, which the store's tombstones resolve — a tombstone beats a
// copy, everywhere, until the ID is deliberately republished.
//
// Every node runs one; any node's sweep fixes any under-replication it
// can see, and duplicate shipping between concurrent sweeps is
// harmless (the ingest path is idempotent). Construct with NewRepairer;
// all methods are safe for concurrent use.
type Repairer struct {
	cfg    RepairConfig
	client *http.Client

	// sweepMu serializes sweeps: the background loop and on-demand
	// POST /internal/repair triggers queue behind one another instead of
	// shipping the same diff twice.
	sweepMu sync.Mutex

	sweeps      atomic.Int64
	pushed      atomic.Int64
	pulled      atomic.Int64
	deletes     atomic.Int64
	adopted     atomic.Int64
	errs        atomic.Int64
	lastSweep   atomic.Int64 // unix nanos, 0 = never
	lastScanned atomic.Int64

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewRepairer builds a repairer for the node named cfg.Self.
func NewRepairer(cfg RepairConfig) (*Repairer, error) {
	if cfg.Ring == nil || cfg.Store == nil {
		return nil, fmt.Errorf("cluster: repairer needs a Ring and a Store")
	}
	if !cfg.Ring.Contains(cfg.Self) {
		return nil, fmt.Errorf("cluster: repairer node %q is not in the ring", cfg.Self)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultRepairInterval
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = cfg.Interval / 10
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: DefaultRepairTimeout}
	}
	return &Repairer{cfg: cfg, client: client}, nil
}

// Stats returns the repairer's counters.
func (r *Repairer) Stats() RepairStats {
	st := RepairStats{
		Sweeps:            r.sweeps.Load(),
		Pushed:            r.pushed.Load(),
		Pulled:            r.pulled.Load(),
		DeletesPropagated: r.deletes.Load(),
		TombstonesAdopted: r.adopted.Load(),
		Errors:            r.errs.Load(),
		LastScanned:       r.lastScanned.Load(),
	}
	if ns := r.lastSweep.Load(); ns != 0 {
		st.LastSweep = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	return st
}

// Start launches the background sweep loop; Stop ends it. The first
// sweep runs one full interval (plus jitter) after Start — a restarting
// node should finish its own recovery traffic before it starts shipping
// files. Each cycle waits Interval plus a fresh uniform draw from
// [0, Jitter): nodes that came up together (a fleet-wide restart, the
// exact moment sweeps are busiest) drift apart instead of listing every
// peer's /releases in lockstep forever.
func (r *Repairer) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	stop, done := r.stop, r.done
	go func() {
		defer close(done)
		t := time.NewTimer(r.cfg.Interval + r.jitter())
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _ = r.Sweep(context.Background())
				t.Reset(r.cfg.Interval + r.jitter())
			}
		}
	}()
}

// jitter draws one cycle's random scheduling offset, in [0, cfg.Jitter).
func (r *Repairer) jitter() time.Duration {
	if r.cfg.Jitter <= 0 {
		return 0
	}
	return rand.N(r.cfg.Jitter)
}

// Stop ends the background loop and waits for it to exit. Safe to call
// without Start, or twice.
func (r *Repairer) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// holdings is the sweep's observed placement: release ID → set of node
// names seen holding a copy.
type holdings map[string]map[string]bool

func (h holdings) add(id, node string) {
	m := h[id]
	if m == nil {
		m = make(map[string]bool, 2)
		h[id] = m
	}
	m[node] = true
}

// Sweep runs one full anti-entropy pass and reports what it did. A
// sweep never fails as a whole: unreachable peers and failed shipments
// are recorded in the report (and the stats) while the rest of the diff
// proceeds — partial repair now beats complete repair never.
func (r *Repairer) Sweep(ctx context.Context) (RepairReport, error) {
	r.sweepMu.Lock()
	defer r.sweepMu.Unlock()
	rep := RepairReport{Node: r.cfg.Self, RingVersion: r.cfg.Ring.Version()}

	// Observe placement: our own store, then every peer's listing.
	held := make(holdings)
	for _, id := range r.cfg.Store.IDs() {
		held.add(id, r.cfg.Self)
	}
	reachable := map[string]bool{r.cfg.Self: true}
	var peerURL = make(map[string]string)
	for _, n := range r.cfg.Ring.Nodes() {
		if n.Name == r.cfg.Self {
			continue
		}
		peerURL[n.Name] = n.URL
		ids, err := r.listPeer(ctx, n)
		if err != nil {
			rep.Unreachable = append(rep.Unreachable, n.Name)
			continue
		}
		reachable[n.Name] = true
		for _, id := range ids {
			held.add(id, n.Name)
		}
	}

	// Finish deletes first: a tombstoned ID must not be re-shipped, and
	// any copy a peer still lists is a delete that node slept through.
	tombs := make(map[string]bool)
	for _, id := range r.cfg.Store.Tombstones() {
		tombs[id] = true
		for peer := range held[id] {
			if peer == r.cfg.Self || !reachable[peer] {
				continue
			}
			if err := r.deleteOn(ctx, peerURL[peer], id); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("delete %s@%s: %v", id, peer, err))
				r.errs.Add(1)
				continue
			}
			rep.DeletesPropagated = append(rep.DeletesPropagated, id+"@"+peer)
			r.deletes.Add(1)
		}
	}

	// Converge every observed release toward its intended replica set.
	for id, holders := range held {
		if tombs[id] {
			continue
		}
		rep.Scanned++
		intended := r.cfg.Ring.ReplicasFor(RouteKey(id))
		if holders[r.cfg.Self] {
			r.pushMissing(ctx, &rep, id, intended, holders, peerURL)
			continue
		}
		for _, n := range intended {
			if n.Name != r.cfg.Self {
				continue
			}
			// We are an intended replica without a copy: pull one.
			r.pullCopy(ctx, &rep, id, intended, holders, peerURL)
			break
		}
	}

	sort.Strings(rep.Pushed)
	sort.Strings(rep.Pulled)
	sort.Strings(rep.DeletesPropagated)
	sort.Strings(rep.TombstonesAdopted)
	sort.Strings(rep.Unreachable)
	r.sweeps.Add(1)
	r.lastScanned.Store(int64(rep.Scanned))
	r.lastSweep.Store(time.Now().UnixNano())
	return rep, nil
}

// pushMissing ships id to intended replicas that lack a copy, but only
// when this node is the designated shipper — the first intended replica
// observed holding the release (falling back to the first holder in
// ring name order when no intended node has it yet, e.g. right after a
// membership change). One shipper per release keeps concurrent sweeps
// from flooding a recovered node with R-1 identical pushes; the rule
// needs no coordination because every node computes it from the same
// observations, and a stale observation at worst double-ships into the
// idempotent ingest path.
func (r *Repairer) pushMissing(ctx context.Context, rep *RepairReport, id string, intended []Node, holders map[string]bool, peerURL map[string]string) {
	shipper := ""
	for _, n := range intended {
		if holders[n.Name] {
			shipper = n.Name
			break
		}
	}
	if shipper == "" {
		names := make([]string, 0, len(holders))
		for name := range holders {
			names = append(names, name)
		}
		sort.Strings(names)
		shipper = names[0]
	}
	if shipper != r.cfg.Self {
		return
	}
	// Attempt every lacking intended replica, even one whose listing
	// failed — a node that could not answer /releases may still accept a
	// push, and the idempotent ingest makes optimism free.
	var payload []byte // encoded lazily, once, only if something is missing
	for _, n := range intended {
		if n.Name == r.cfg.Self || holders[n.Name] {
			continue
		}
		if payload == nil {
			var err error
			if payload, err = r.encodeLocal(id); err != nil {
				rep.Errors = append(rep.Errors, fmt.Sprintf("encode %s: %v", id, err))
				r.errs.Add(1)
				return
			}
		}
		switch err := r.push(ctx, n, id, payload); {
		case err == nil:
			rep.Pushed = append(rep.Pushed, id+"→"+n.Name)
			r.pushed.Add(1)
		case errors.Is(err, errPeerDeleted):
			// The peer holds a tombstone we missed: adopt it. Our Remove
			// tombstones locally, so the delete keeps propagating.
			if rerr := r.cfg.Store.Remove(id); rerr == nil {
				rep.TombstonesAdopted = append(rep.TombstonesAdopted, id)
				r.adopted.Add(1)
			}
			return
		default:
			rep.Errors = append(rep.Errors, fmt.Sprintf("push %s→%s: %v", id, n.Name, err))
			r.errs.Add(1)
		}
	}
}

// pullCopy fetches id from the first observed holder (intended replicas
// preferred — their copy is where the ring says to read) and ingests it
// locally.
func (r *Repairer) pullCopy(ctx context.Context, rep *RepairReport, id string, intended []Node, holders map[string]bool, peerURL map[string]string) {
	order := make([]string, 0, len(holders))
	for _, n := range intended {
		if holders[n.Name] {
			order = append(order, n.Name)
		}
	}
	extra := make([]string, 0, len(holders))
	for name := range holders {
		if !contains(order, name) {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	order = append(order, extra...)
	for _, holder := range order {
		url, ok := peerURL[holder]
		if !ok {
			continue
		}
		err := r.pull(ctx, url, id)
		switch {
		case err == nil, errors.Is(err, store.ErrDuplicate):
			rep.Pulled = append(rep.Pulled, id+"←"+holder)
			r.pulled.Add(1)
			return
		case errors.Is(err, store.ErrDeleted):
			return // tombstoned locally since the scan began
		default:
			rep.Errors = append(rep.Errors, fmt.Sprintf("pull %s←%s: %v", id, holder, err))
			r.errs.Add(1)
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// listPeer fetches a peer's release ID listing.
func (r *Repairer) listPeer(ctx context.Context, n Node) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/releases", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("listing %s: status %d", n.Name, resp.StatusCode)
	}
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxBody)).Decode(&list); err != nil {
		return nil, fmt.Errorf("listing %s: %w", n.Name, err)
	}
	ids := make([]string, 0, len(list))
	for _, e := range list {
		if e.ID != "" {
			ids = append(ids, e.ID)
		}
	}
	return ids, nil
}

// encodeLocal renders the node's own copy of id to the codec wire
// bytes a replicate push carries.
func (r *Repairer) encodeLocal(id string) ([]byte, error) {
	rel, err := r.cfg.Store.Get(id)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := store.EncodeRelease(&buf, rel.Payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// errPeerDeleted marks a push refused because the peer tombstoned the
// release (HTTP 410) — the signal to adopt the delete rather than keep
// re-shipping a withdrawn release.
var errPeerDeleted = errors.New("cluster: peer reports release deleted")

// push ships one encoded release into a peer's store, authenticated and
// stamped with the ring version like the router's synchronous
// replication.
func (r *Repairer) push(ctx context.Context, n Node, id string, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, n.URL+"/internal/replicate/"+url.PathEscape(id), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	r.stampInternal(req)
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	switch {
	case resp.StatusCode == http.StatusCreated, resp.StatusCode == http.StatusOK:
		return nil
	case resp.StatusCode == http.StatusGone:
		return errPeerDeleted
	default:
		return fmt.Errorf("status %d", resp.StatusCode)
	}
}

// pull fetches id's encoded payload from a holder's public export
// endpoint and ingests it into the local store.
func (r *Repairer) pull(ctx context.Context, baseURL, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/releases/"+url.PathEscape(id)+"/export", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("export status %d", resp.StatusCode)
	}
	return r.cfg.Store.Ingest(id, io.LimitReader(resp.Body, r.cfg.MaxBody), r.cfg.Parallelism)
}

// deleteOn withdraws id from a peer still holding a tombstoned copy.
// The peer's own Remove tombstones it there, so the delete keeps
// propagating even if that peer can only reach a third replica.
func (r *Repairer) deleteOn(ctx context.Context, baseURL, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, baseURL+"/releases/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	r.stampInternal(req)
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// stampInternal adds the cluster bearer token and ring version to an
// internal request.
func (r *Repairer) stampInternal(req *http.Request) {
	if r.cfg.Secret != "" {
		req.Header.Set("Authorization", "Bearer "+r.cfg.Secret)
	}
	req.Header.Set(RingVersionHeader, fmt.Sprintf("%d", r.cfg.Ring.Version()))
}
