package cluster

// The fault-injection chaos harness: a reusable in-process fleet of
// real priveletd nodes (internal/server over spill-backed stores, each
// with its own anti-entropy Repairer) behind a ring-aware router, with
// scriptable faults —
//
//   - kill / restart a node: the listener closes hard and a restarted
//     node rebinds the SAME address over the SAME spill directory, so
//     restarts exercise real recovery and the ring stays valid;
//   - drop / delay / truncate a node's inbound replication pushes;
//   - partition a node (every inbound request dies like a cut cable).
//
// On top of it, the convergence invariant the repair subsystem must
// hold: every release reaches all R intended replicas within a bounded
// number of sweeps, every copy is bit-identical to the primary's, and
// budget accounting never double-spends while repair re-ships copies.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

// chaosSecret is the fleet's shared internal bearer token; every test
// fleet runs authenticated so the happy paths prove auth composes with
// repair, not just the 401 test.
const chaosSecret = "chaos-cluster-secret"

// chaosRingVersion is the fleet's membership version — deliberately > 1
// so stale-sender tests have room below it.
const chaosRingVersion = 3

// chaosFaults is one node's scriptable fault state, togglable while
// requests are in flight.
type chaosFaults struct {
	// partitioned kills every inbound request at the socket — the node
	// is up but unreachable, like a cut network path.
	partitioned atomic.Bool
	// dropReplicate refuses inbound replication pushes with a 503;
	// truncateReplicate reads a little of the push body then cuts the
	// connection; delayReplicateNs stalls each push first.
	dropReplicate     atomic.Bool
	truncateReplicate atomic.Bool
	delayReplicateNs  atomic.Int64
}

// chaosNode is one fleet member. The name, address, spill directory and
// fault state survive kill/restart; the store, server and repairer are
// rebuilt each start — exactly what a process restart rebuilds.
type chaosNode struct {
	name   string
	addr   string // stable host:port, rebound on restart
	url    string
	dir    string // spill directory, survives restarts
	faults chaosFaults

	ts    *httptest.Server
	st    *store.Store
	rep   *Repairer
	alive bool
}

// middleware injects the node's scripted faults in front of the real
// priveletd handler.
func (n *chaosNode) middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if n.faults.partitioned.Load() {
			panic(http.ErrAbortHandler) // die like a cut cable, not a 5xx
		}
		if strings.HasPrefix(req.URL.Path, "/internal/replicate/") {
			if d := n.faults.delayReplicateNs.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if n.faults.dropReplicate.Load() {
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{
					"error": "injected fault: replication dropped", "code": "chaos_drop",
				})
				return
			}
			if n.faults.truncateReplicate.Load() {
				_, _ = io.CopyN(io.Discard, req.Body, 64)
				panic(http.ErrAbortHandler) // the push dies mid-body
			}
		}
		h.ServeHTTP(w, req)
	})
}

// chaosFleet is the N-node cluster under test: real ring, real health
// prober, real router, every node repair-capable.
type chaosFleet struct {
	tb     testing.TB
	ring   *Ring
	health *Health
	router *httptest.Server
	budget float64
	noMMap bool
	nodes  map[string]*chaosNode
}

// startChaosFleet boots n nodes with R-way replication, every internal
// surface authenticated with chaosSecret and stamped at
// chaosRingVersion. budget > 0 gives each node's ledger that default
// per-tenant ε budget.
func startChaosFleet(tb testing.TB, n, replicas int, budget float64) *chaosFleet {
	return startChaosFleetMMap(tb, n, replicas, budget, false)
}

// startChaosFleetMMap is startChaosFleet with the stores' mmap reload
// path switched off (noMMap) — the kill/restart scenarios run under
// both residency models, since recovery is where the mapped path
// matters most.
func startChaosFleetMMap(tb testing.TB, n, replicas int, budget float64, noMMap bool) *chaosFleet {
	tb.Helper()
	f := &chaosFleet{tb: tb, budget: budget, noMMap: noMMap, nodes: make(map[string]*chaosNode, n)}
	ringNodes := make([]Node, n)
	for i := 0; i < n; i++ {
		// The listener is allocated before the ring exists: placement
		// needs every node's URL, and a restart must rebind the same port
		// or the ring's view of the node would dangle.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		node := &chaosNode{
			name: fmt.Sprintf("node%d", i),
			addr: ln.Addr().String(),
			dir:  tb.TempDir(),
		}
		node.url = "http://" + node.addr
		f.nodes[node.name] = node
		ringNodes[i] = Node{Name: node.name, URL: node.url}
		f.bootNode(node, ln)
	}
	ring, err := NewVersionedRing(ringNodes, replicas, chaosRingVersion)
	if err != nil {
		tb.Fatal(err)
	}
	f.ring = ring
	// The nodes booted before the ring existed (their listeners define
	// it); now that it does, give each its repairer.
	for _, node := range f.nodes {
		f.armRepairer(node)
	}
	f.health = NewHealth(ringNodes, HealthConfig{Interval: 15 * time.Millisecond})
	f.health.Start()
	tb.Cleanup(f.health.Stop)
	// The main router shares f.health, so waitHealthy reflects exactly
	// what this router will and won't route to.
	rt, err := NewRouter(RouterConfig{Ring: f.ring, Health: f.health, Secret: chaosSecret})
	if err != nil {
		tb.Fatal(err)
	}
	f.router = httptest.NewServer(rt.Handler())
	tb.Cleanup(f.router.Close)
	return f
}

// newRouter starts an additional, independent router process over the
// fleet's ring — its own health prober, its own listener — to prove
// router statelessness (the redundancy recipe in the docs).
func (f *chaosFleet) newRouter() *httptest.Server {
	f.tb.Helper()
	health := NewHealth(f.ring.Nodes(), HealthConfig{Interval: 15 * time.Millisecond})
	health.Start()
	f.tb.Cleanup(health.Stop)
	rt, err := NewRouter(RouterConfig{Ring: f.ring, Health: health, Secret: chaosSecret})
	if err != nil {
		f.tb.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	f.tb.Cleanup(ts.Close)
	return ts
}

// bootNode builds a node's process state (store recovery, server,
// listener) on ln. The repairer is attached separately once the ring
// exists (armRepairer); until then the node serves but cannot sweep.
func (f *chaosFleet) bootNode(node *chaosNode, ln net.Listener) {
	f.tb.Helper()
	st, err := store.New(store.Config{Dir: node.dir, NoMMap: f.noMMap})
	if err != nil {
		f.tb.Fatal(err)
	}
	node.st = st
	cfg := server.Config{Store: st, NodeName: node.name, Budget: f.budget, Cluster: server.ClusterConfig{
		Secret:      chaosSecret,
		RingVersion: chaosRingVersion,
		Repair: func(ctx context.Context) (any, error) {
			if node.rep == nil {
				return nil, fmt.Errorf("repairer not armed")
			}
			return node.rep.Sweep(ctx)
		},
		RepairStats: func() any {
			if node.rep == nil {
				return nil
			}
			return node.rep.Stats()
		},
	}}
	ts := httptest.NewUnstartedServer(node.middleware(server.New(cfg).Handler()))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	node.ts = ts
	node.alive = true
	f.tb.Cleanup(func() {
		if node.alive {
			node.ts.Close()
		}
	})
}

// armRepairer attaches a fresh Repairer to the node's current store.
// The background interval is effectively off — chaos tests trigger
// sweeps explicitly so convergence is counted in sweeps, not seconds;
// the background loop has its own test.
func (f *chaosFleet) armRepairer(node *chaosNode) {
	rep, err := NewRepairer(RepairConfig{
		Self: node.name, Ring: f.ring, Store: node.st,
		Secret: chaosSecret, Interval: time.Hour,
	})
	if err != nil {
		f.tb.Fatal(err)
	}
	node.rep = rep
}

// kill takes a node down hard: in-flight connections die first, then
// the listener closes so every later request sees connection-refused.
func (f *chaosFleet) kill(name string) {
	n := f.nodes[name]
	n.ts.CloseClientConnections()
	n.ts.Close()
	n.alive = false
}

// restart boots the killed node again: same name, same address, same
// spill directory — a fresh store recovers whatever the dead process
// had spilled, exactly like a real restart.
func (f *chaosFleet) restart(name string) {
	f.tb.Helper()
	n := f.nodes[name]
	if n.alive {
		f.tb.Fatalf("restart of live node %s", name)
	}
	var ln net.Listener
	var err error
	// The freed port can lag a moment on a loaded machine; retry briefly.
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", n.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		f.tb.Fatalf("rebinding %s on %s: %v", name, n.addr, err)
	}
	f.bootNode(n, ln)
	f.armRepairer(n)
}

// waitHealthy blocks until the fleet's health prober sees the node in
// the wanted state — the router's view, which lags a kill or restart by
// a probe interval.
func (f *chaosFleet) waitHealthy(name string, want bool) {
	f.tb.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.health.Healthy(name) == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.tb.Fatalf("node %s never became healthy=%v", name, want)
}

// internalRequest builds a correctly authenticated, correctly versioned
// internal request — the headers every legitimate cluster peer sends.
func internalRequest(tb testing.TB, method, url string, body io.Reader) *http.Request {
	tb.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		tb.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+chaosSecret)
	req.Header.Set(RingVersionHeader, fmt.Sprintf("%d", chaosRingVersion))
	return req
}

// sweepOn triggers one anti-entropy sweep on the named node through the
// real POST /internal/repair endpoint and returns its report.
func (f *chaosFleet) sweepOn(name string) RepairReport {
	f.tb.Helper()
	resp, err := http.DefaultClient.Do(internalRequest(f.tb, http.MethodPost, f.nodes[name].url+"/internal/repair", nil))
	if err != nil {
		f.tb.Fatalf("repair trigger on %s: %v", name, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		f.tb.Fatalf("repair trigger on %s: status %d: %s", name, resp.StatusCode, raw)
	}
	var rep RepairReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		f.tb.Fatalf("repair report from %s: %v (%s)", name, err, raw)
	}
	return rep
}

// exportBytes fetches a node's copy of a release in the codec wire
// format — the bytes the bit-identity invariant compares.
func exportBytes(tb testing.TB, nodeURL, id string) ([]byte, bool) {
	tb.Helper()
	resp, err := http.Get(nodeURL + "/releases/" + escapeID(id) + "/export")
	if err != nil {
		tb.Fatalf("export %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("export %s: status %d", id, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return raw, true
}

func escapeID(id string) string { return strings.ReplaceAll(id, "/", "%2F") }

// codecVersion reads the format version out of encoded release bytes
// (u16 LE after the 4-byte magic) so convergence failures distinguish
// "different payloads" from "same payload, different codec version".
func codecVersion(raw []byte) uint16 {
	if len(raw) < 6 {
		return 0
	}
	return uint16(raw[4]) | uint16(raw[5])<<8
}

// assertConverged is THE invariant: after the sweeps the test scripted,
// every intended replica of id holds a copy bit-identical to the
// primary's, and nobody outside the replica set holds one. The check is
// version-aware: replicas must agree on the codec version before bytes
// are compared, because byte identity across format versions is
// meaningless — a fleet converges on v2 (the table build is
// deterministic, so v2 bytes are as reproducible as v1's were).
func (f *chaosFleet) assertConverged(id string) {
	f.tb.Helper()
	intended := f.ring.ReplicasFor(RouteKey(id))
	primary, ok := exportBytes(f.tb, intended[0].URL, id)
	if !ok {
		f.tb.Fatalf("primary %s lacks %s", intended[0].Name, id)
	}
	want := make(map[string]bool, len(intended))
	for _, n := range intended[1:] {
		want[n.Name] = true
		copyBytes, ok := exportBytes(f.tb, n.URL, id)
		if !ok {
			f.tb.Fatalf("intended replica %s lacks %s", n.Name, id)
		}
		if pv, cv := codecVersion(primary), codecVersion(copyBytes); pv != cv {
			f.tb.Fatalf("replica %s exports %s as codec v%d while the primary exports v%d", n.Name, id, cv, pv)
		}
		if !bytes.Equal(primary, copyBytes) {
			f.tb.Fatalf("replica %s holds a copy of %s that is not bit-identical to the primary's (%d vs %d bytes, both codec v%d)", n.Name, id, len(copyBytes), len(primary), codecVersion(primary))
		}
	}
	for name, node := range f.nodes {
		if name == intended[0].Name || want[name] || !node.alive {
			continue
		}
		if _, err := node.st.Describe(id); err == nil {
			f.tb.Fatalf("node %s outside the replica set holds %s", name, id)
		}
	}
}

// tenantSpent reads one node's own ledger position for a tenant — the
// budget double-spend check reads every replica directly, not through
// the router (which would only show the primary).
func tenantSpent(tb testing.TB, nodeURL, tenant string) float64 {
	tb.Helper()
	resp, err := http.Get(nodeURL + "/tenants/" + tenant + "/budget")
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Spent float64 `json:"spent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		tb.Fatal(err)
	}
	return out.Spent
}

// tenantPublish publishes one epoch for tenant through base and returns
// the created body.
func tenantPublish(tb testing.TB, base, tenant, params, body string) map[string]any {
	tb.Helper()
	resp, err := http.Post(base+"/tenants/"+tenant+"/publish?"+params, "text/csv", strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		tb.Fatalf("tenant publish status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		tb.Fatalf("tenant publish body %q: %v", raw, err)
	}
	return out
}

// deleteVia issues a DELETE through base and returns (status, body).
func deleteVia(tb testing.TB, base, id string) (int, []byte) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/releases/"+escapeID(id), nil)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// deleteOutcome is the router's new per-replica DELETE report.
type deleteOutcome struct {
	ID            string            `json:"id"`
	DeletedFrom   []string          `json:"deleted_from"`
	Replicas      map[string]string `json:"replicas"`
	RepairPending bool              `json:"repair_pending"`
}

// --- the scenarios ---

// TestChaosPublishWithDeadReplicaConvergesAfterRestart is the headline
// acceptance scenario: publish while one intended replica is dead, so
// the release lands under-replicated; restart the dead node; one sweep
// later the release is on all R replicas, bit-identical, and the budget
// was charged exactly once (the repaired copy cost nothing).
func TestChaosPublishWithDeadReplicaConvergesAfterRestart(t *testing.T) {
	// The scenario exercises kill → restart → spill recovery → repair;
	// run it under both residency models so the mapped reload path and
	// the heap fallback both survive chaos.
	t.Run("mmap", func(t *testing.T) { chaosDeadReplicaConverges(t, false) })
	t.Run("nommap", func(t *testing.T) { chaosDeadReplicaConverges(t, true) })
}

func chaosDeadReplicaConverges(t *testing.T, noMMap bool) {
	f := startChaosFleetMMap(t, 3, 2, 1.0, noMMap)
	reps := f.ring.ReplicasFor("alice")
	primary, follower := reps[0].Name, reps[1].Name

	f.kill(follower)
	f.waitHealthy(follower, false)
	created := tenantPublish(t, f.router.URL, "alice", "schema="+clusterSchema+"&epsilon=0.6&seed=11", clusterCSV)
	id := created["id"].(string)
	if id != "alice/1" {
		t.Fatalf("epoch id = %q, want alice/1", id)
	}
	if _, err := f.nodes[primary].st.Describe(id); err != nil {
		t.Fatalf("primary lacks the fresh epoch: %v", err)
	}

	f.restart(follower)
	f.waitHealthy(follower, true)
	if _, err := f.nodes[follower].st.Describe(id); err == nil {
		t.Fatal("restarted follower holds a copy it never received")
	}

	// One sweep on the primary pushes the missing copy.
	rep := f.sweepOn(primary)
	if len(rep.Pushed) != 1 || rep.Pushed[0] != id+"→"+follower {
		t.Fatalf("sweep pushed %v, want [%s→%s]", rep.Pushed, id, follower)
	}
	f.assertConverged(id)

	// Budget invariant: ε was spent once, at publish, on the primary;
	// repair shipped a file, it did not re-publish.
	if spent := tenantSpent(t, f.nodes[primary].url, "alice"); spent != 0.6 {
		t.Fatalf("primary ledger spent %v, want 0.6", spent)
	}
	if spent := tenantSpent(t, f.nodes[follower].url, "alice"); spent != 0 {
		t.Fatalf("follower ledger spent %v after repair, want 0 (double-spend)", spent)
	}

	// A second sweep finds nothing to do — repair is idempotent.
	rep = f.sweepOn(primary)
	if len(rep.Pushed)+len(rep.Pulled)+len(rep.DeletesPropagated)+len(rep.TombstonesAdopted) != 0 {
		t.Fatalf("second sweep was not a no-op: %+v", rep)
	}
}

// TestChaosRepairPullsMissingCopy drives convergence from the other
// side: the restarted replica's own sweep notices it is an intended
// holder without a copy and pulls one from the primary.
func TestChaosRepairPullsMissingCopy(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	reps := f.ring.ReplicasFor("bob")
	primary, follower := reps[0].Name, reps[1].Name

	f.kill(follower)
	f.waitHealthy(follower, false)
	created := tenantPublish(t, f.router.URL, "bob", "schema="+clusterSchema+"&epsilon=0.5&seed=5", clusterCSV)
	id := created["id"].(string)

	f.restart(follower)
	f.waitHealthy(follower, true)
	rep := f.sweepOn(follower)
	if len(rep.Pulled) != 1 || rep.Pulled[0] != id+"←"+primary {
		t.Fatalf("sweep pulled %v, want [%s←%s]", rep.Pulled, id, primary)
	}
	f.assertConverged(id)
}

// TestChaosDeleteWithDeadReplicaFinishedBySweep is the DELETE
// regression: deleting while a replica is dead reports exactly which
// replicas confirmed, and the repair sweep finishes the job when the
// dead replica comes back with its stale copy — without resurrecting
// the release anywhere.
func TestChaosDeleteWithDeadReplicaFinishedBySweep(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	reps := f.ring.ReplicasFor("carol")
	primary, follower := reps[0].Name, reps[1].Name
	created := tenantPublish(t, f.router.URL, "carol", "schema="+clusterSchema+"&epsilon=0.5&seed=9", clusterCSV)
	id := created["id"].(string)
	f.assertConverged(id) // synchronous replication already placed both copies

	f.kill(follower)
	f.waitHealthy(follower, false)
	status, raw := deleteVia(t, f.router.URL, id)
	if status != http.StatusOK {
		t.Fatalf("delete status %d: %s", status, raw)
	}
	var out deleteOutcome
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("delete body %s: %v", raw, err)
	}
	if len(out.DeletedFrom) != 1 || out.DeletedFrom[0] != primary {
		t.Fatalf("deleted_from = %v, want [%s]", out.DeletedFrom, primary)
	}
	if out.Replicas[primary] != "deleted" || out.Replicas[follower] != "unreachable" {
		t.Fatalf("per-replica outcomes = %v", out.Replicas)
	}
	if !out.RepairPending {
		t.Fatal("delete with a dead replica did not flag repair_pending")
	}

	// The dead replica comes back still holding its copy (recovered from
	// its own spill directory) — the exact resurrection hazard.
	f.restart(follower)
	f.waitHealthy(follower, true)
	if _, err := f.nodes[follower].st.Describe(id); err != nil {
		t.Fatalf("restarted follower lost its stale copy prematurely: %v", err)
	}

	// The primary's sweep propagates its tombstone.
	rep := f.sweepOn(primary)
	if len(rep.DeletesPropagated) != 1 || rep.DeletesPropagated[0] != id+"@"+follower {
		t.Fatalf("sweep propagated %v, want [%s@%s]", rep.DeletesPropagated, id, follower)
	}
	for name, node := range f.nodes {
		if _, err := node.st.Describe(id); err == nil {
			t.Fatalf("node %s still holds %s after repair", name, id)
		}
	}
	resp, err := http.Get(f.router.URL + "/releases/" + escapeID(id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted release answers %d through the router, want 404", resp.StatusCode)
	}
}

// TestChaosPartitionedPrimaryTombstoneAdoption: DELETE reaches only the
// follower because the primary is partitioned; when the partition
// heals, the primary's own sweep tries to re-ship its stale copy, gets
// the follower's 410, and adopts the tombstone instead — deletes
// propagate against the push direction too.
func TestChaosPartitionedPrimaryTombstoneAdoption(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	reps := f.ring.ReplicasFor("dave")
	primary, follower := reps[0].Name, reps[1].Name
	created := tenantPublish(t, f.router.URL, "dave", "schema="+clusterSchema+"&epsilon=0.5&seed=13", clusterCSV)
	id := created["id"].(string)
	f.assertConverged(id)

	f.nodes[primary].faults.partitioned.Store(true)
	f.waitHealthy(primary, false)
	status, raw := deleteVia(t, f.router.URL, id)
	if status != http.StatusOK {
		t.Fatalf("delete status %d: %s", status, raw)
	}
	var out deleteOutcome
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Replicas[primary] != "unreachable" || out.Replicas[follower] != "deleted" || !out.RepairPending {
		t.Fatalf("per-replica outcomes = %+v", out)
	}

	f.nodes[primary].faults.partitioned.Store(false)
	f.waitHealthy(primary, true)
	if _, err := f.nodes[primary].st.Describe(id); err != nil {
		t.Fatalf("partitioned primary lost its copy without repair: %v", err)
	}
	rep := f.sweepOn(primary)
	if len(rep.TombstonesAdopted) != 1 || rep.TombstonesAdopted[0] != id {
		t.Fatalf("sweep adopted %v, want [%s]", rep.TombstonesAdopted, id)
	}
	for name, node := range f.nodes {
		if _, err := node.st.Describe(id); err == nil {
			t.Fatalf("node %s still holds %s after tombstone adoption", name, id)
		}
	}
}

// TestChaosReplicationFaultsRepaired scripts the replication-path
// faults: a dropped push and a truncated push both leave the release
// under-replicated with no partial state on the victim, and one sweep
// repairs each; a delayed push just makes the synchronous publish wait.
func TestChaosReplicationFaultsRepaired(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	reps := f.ring.ReplicasFor("erin")
	primary, follower := reps[0].Name, reps[1].Name
	params := "schema=" + clusterSchema + "&epsilon=0.5&seed=17"

	// Fault: the follower refuses pushes.
	f.nodes[follower].faults.dropReplicate.Store(true)
	id1 := tenantPublish(t, f.router.URL, "erin", params, clusterCSV)["id"].(string)
	if _, err := f.nodes[follower].st.Describe(id1); err == nil {
		t.Fatal("dropped push still delivered a copy")
	}
	f.nodes[follower].faults.dropReplicate.Store(false)
	rep := f.sweepOn(primary)
	if len(rep.Pushed) != 1 {
		t.Fatalf("sweep after dropped push: %+v", rep)
	}
	f.assertConverged(id1)

	// Fault: pushes die mid-body. The victim must keep no partial state.
	f.nodes[follower].faults.truncateReplicate.Store(true)
	id2 := tenantPublish(t, f.router.URL, "erin", params, clusterCSV)["id"].(string)
	f.nodes[follower].faults.truncateReplicate.Store(false)
	if _, err := f.nodes[follower].st.Describe(id2); err == nil {
		t.Fatal("truncated push still registered a release")
	}
	f.waitHealthy(follower, true) // the aborted push passively ejected it
	rep = f.sweepOn(primary)
	if len(rep.Pushed) != 1 {
		t.Fatalf("sweep after truncated push: %+v", rep)
	}
	f.assertConverged(id2)

	// Fault: pushes are slow. The synchronous publish waits them out —
	// no under-replication, nothing for repair to do.
	f.nodes[follower].faults.delayReplicateNs.Store(int64(100 * time.Millisecond))
	id3 := tenantPublish(t, f.router.URL, "erin", params, clusterCSV)["id"].(string)
	f.nodes[follower].faults.delayReplicateNs.Store(0)
	f.assertConverged(id3)
	rep = f.sweepOn(primary)
	if len(rep.Pushed) != 0 {
		t.Fatalf("sweep after delayed (but delivered) push re-shipped: %+v", rep)
	}
}

// TestChaosInternalAuth: the internal surface is closed without the
// cluster secret — no token and a wrong token both get the typed 401,
// on replication and on the repair trigger alike.
func TestChaosInternalAuth(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	created := tenantPublish(t, f.router.URL, "frank", "schema="+clusterSchema+"&epsilon=0.5&seed=19", clusterCSV)
	id := created["id"].(string)
	primary := f.ring.ReplicasFor("frank")[0]
	wire, ok := exportBytes(t, primary.URL, id)
	if !ok {
		t.Fatalf("primary lacks %s", id)
	}

	for _, tc := range []struct {
		name, token string
	}{
		{"no token", ""},
		{"wrong token", "Bearer not-the-secret"},
	} {
		for _, target := range []struct {
			method, url string
			body        io.Reader
		}{
			{http.MethodPut, primary.URL + "/internal/replicate/intruder1", bytes.NewReader(wire)},
			{http.MethodPost, primary.URL + "/internal/repair", nil},
		} {
			req, err := http.NewRequest(target.method, target.url, target.body)
			if err != nil {
				t.Fatal(err)
			}
			if tc.token != "" {
				req.Header.Set("Authorization", tc.token)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("%s %s with %s: status %d, want 401 (%s)", target.method, target.url, tc.name, resp.StatusCode, raw)
			}
			if !bytes.Contains(raw, []byte(`"unauthorized"`)) {
				t.Fatalf("401 body lacks typed code: %s", raw)
			}
		}
	}
	// The rejected push must not have stored anything.
	if _, err := f.nodes[primary.Name].st.Describe("intruder1"); err == nil {
		t.Fatal("unauthenticated replicate stored a release")
	}
	// And the properly authenticated path still works.
	resp, err := http.DefaultClient.Do(internalRequest(t, http.MethodPut, primary.URL+"/internal/replicate/legit1", bytes.NewReader(wire)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("authenticated replicate: status %d, want 201", resp.StatusCode)
	}
}

// TestChaosStaleRingRefused: an internal call stamped with an older
// membership version gets the typed 409 — a peer routing on a stale
// peer list must fail loudly, not ship copies to outdated placement.
func TestChaosStaleRingRefused(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	var anyNode *chaosNode
	for _, n := range f.nodes {
		anyNode = n
		break
	}
	req := internalRequest(t, http.MethodPost, anyNode.url+"/internal/repair", nil)
	req.Header.Set(RingVersionHeader, fmt.Sprintf("%d", chaosRingVersion-1))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !bytes.Contains(raw, []byte(`"stale_ring"`)) {
		t.Fatalf("stale sender: status %d body %s, want typed 409", resp.StatusCode, raw)
	}
	// A current-version sender passes.
	resp, err = http.DefaultClient.Do(internalRequest(t, http.MethodPost, anyNode.url+"/internal/repair", nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("current-version repair trigger: status %d, want 200", resp.StatusCode)
	}
	// And a newer-than-us sender passes too: the receiver is the stale
	// one then, and refusing would wedge a rolling membership change.
	req = internalRequest(t, http.MethodPost, anyNode.url+"/internal/repair", nil)
	req.Header.Set(RingVersionHeader, fmt.Sprintf("%d", chaosRingVersion+1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("newer-version repair trigger: status %d, want 200", resp.StatusCode)
	}
}

// TestChaosTwoRoutersServeOneFleet backs the router-redundancy recipe:
// routers are stateless over the same ring, so a publish through one is
// served and deleted through the other — N routers behind any dumb TCP
// balancer need no coordination.
func TestChaosTwoRoutersServeOneFleet(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	routerB := f.newRouter()

	created := tenantPublish(t, f.router.URL, "grace", "schema="+clusterSchema+"&epsilon=0.5&seed=23", clusterCSV)
	id := created["id"].(string)
	f.assertConverged(id)

	// Identical answers through both routers (bit-identical copies make
	// this exact, not approximate).
	for _, spec := range clusterSpecs[:4] {
		a := countVia(t, f.router.URL, escapeID(id), spec)
		b := countVia(t, routerB.URL, escapeID(id), spec)
		if a != b {
			t.Fatalf("%s: router A answers %v, router B %v", spec, a, b)
		}
	}

	// Delete through router B, observe through router A.
	status, raw := deleteVia(t, routerB.URL, id)
	if status != http.StatusOK {
		t.Fatalf("delete via router B: status %d: %s", status, raw)
	}
	resp, err := http.Get(f.router.URL + "/releases/" + escapeID(id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("router A still serves the release router B deleted: %d", resp.StatusCode)
	}
}

// TestChaosBackgroundRepairLoop: the Start/Stop ticker loop converges a
// fleet without any explicit trigger — kill a replica, publish, restart
// it, and the background sweeps alone must place the missing copy.
func TestChaosBackgroundRepairLoop(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	reps := f.ring.ReplicasFor("heidi")
	primary, follower := reps[0].Name, reps[1].Name

	f.kill(follower)
	f.waitHealthy(follower, false)
	id := tenantPublish(t, f.router.URL, "heidi", "schema="+clusterSchema+"&epsilon=0.5&seed=29", clusterCSV)["id"].(string)
	f.restart(follower)
	f.waitHealthy(follower, true)

	// A fast background loop on the primary; nothing else triggers.
	rep, err := NewRepairer(RepairConfig{
		Self: primary, Ring: f.ring, Store: f.nodes[primary].st,
		Secret: chaosSecret, Interval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer rep.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := f.nodes[follower].st.Describe(id); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop never repaired %s (stats %+v)", id, rep.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	f.assertConverged(id)
	if st := rep.Stats(); st.Sweeps == 0 || st.Pushed == 0 {
		t.Fatalf("loop stats unpopulated: %+v", st)
	}
	rep.Stop() // idempotent with the deferred Stop
}

// TestChaosStatsCarryRingSection: every node's /stats carries the ring
// membership version and its repairer's counters, and the router's
// aggregated /stats carries the ring section — the observability the
// runbooks point at.
func TestChaosStatsCarryRingSection(t *testing.T) {
	f := startChaosFleet(t, 3, 2, 0)
	tenantPublish(t, f.router.URL, "ivan", "schema="+clusterSchema+"&epsilon=0.5&seed=31", clusterCSV)
	primary := f.ring.ReplicasFor("ivan")[0].Name
	f.sweepOn(primary)

	var nodeStats struct {
		Ring struct {
			Version uint64       `json:"version"`
			Repair  *RepairStats `json:"repair"`
		} `json:"ring"`
	}
	resp, err := http.Get(f.nodes[primary].url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&nodeStats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if nodeStats.Ring.Version != chaosRingVersion {
		t.Fatalf("node ring version = %d, want %d", nodeStats.Ring.Version, chaosRingVersion)
	}
	if nodeStats.Ring.Repair == nil || nodeStats.Ring.Repair.Sweeps == 0 {
		t.Fatalf("node repair stats missing or empty: %+v", nodeStats.Ring.Repair)
	}

	var routerStats struct {
		Ring struct {
			Version     uint64   `json:"version"`
			Nodes       []string `json:"nodes"`
			Replication int      `json:"replication"`
		} `json:"ring"`
	}
	resp, err = http.Get(f.router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&routerStats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if routerStats.Ring.Version != chaosRingVersion || len(routerStats.Ring.Nodes) != 3 || routerStats.Ring.Replication != 2 {
		t.Fatalf("router ring section = %+v", routerStats.Ring)
	}
}
