package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{Name: fmt.Sprintf("n%d", i), URL: fmt.Sprintf("http://node%d.invalid", i)}
	}
	return out
}

// TestClusterRingDeterministicPlacement: every router configured with
// the same peer set must compute the same placement, regardless of the
// order the peers were listed in — the coordinator-less design depends
// on it.
func TestClusterRingDeterministicPlacement(t *testing.T) {
	nodes := testNodes(5)
	reversed := make([]Node, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	a, err := NewRing(nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(reversed, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("r%d", i)
		ra, rb := a.ReplicasFor(key), b.ReplicasFor(key)
		if len(ra) != 3 || len(rb) != 3 {
			t.Fatalf("ReplicasFor(%q): %d/%d replicas, want 3", key, len(ra), len(rb))
		}
		for j := range ra {
			if ra[j].Name != rb[j].Name {
				t.Fatalf("placement differs for %q: %v vs %v", key, ra, rb)
			}
		}
	}
}

// TestClusterRingReplicasDistinct: a replica set never repeats a node,
// and clamps to the ring size.
func TestClusterRingReplicasDistinct(t *testing.T) {
	r, err := NewRing(testNodes(3), 5) // asks for more copies than nodes
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication() != 3 {
		t.Fatalf("Replication() = %d, want clamp to 3", r.Replication())
	}
	for i := 0; i < 200; i++ {
		reps := r.ReplicasFor(fmt.Sprintf("key%d", i))
		if len(reps) != 3 {
			t.Fatalf("got %d replicas, want 3", len(reps))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n.Name] {
				t.Fatalf("replica set repeats %q: %v", n.Name, reps)
			}
			seen[n.Name] = true
		}
	}
}

// TestClusterRingBalance: with virtual nodes, primaries spread across
// the ring — no node owns a wildly disproportionate share.
func TestClusterRingBalance(t *testing.T) {
	r, err := NewRing(testNodes(4), 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.PrimaryFor(fmt.Sprintf("x%d", i)).Name]++
	}
	for name, c := range counts {
		// Fair share is 1000; accept a generous 2x band — the point is
		// catching a broken hash (one node owning everything), not
		// enforcing perfect spread.
		if c < keys/8 || c > keys/2 {
			t.Errorf("node %s owns %d/%d keys — ring badly unbalanced", name, c, keys)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d nodes own keys, want 4", len(counts))
	}
}

// TestClusterRingTenantColocation: every epoch of a tenant routes by
// the tenant prefix, so the whole history (and the budget ledger on
// the primary) shares one replica set.
func TestClusterRingTenantColocation(t *testing.T) {
	r, err := NewRing(testNodes(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	base := r.ReplicasFor(RouteKey("alice/1"))
	for epoch := 2; epoch <= 20; epoch++ {
		id := fmt.Sprintf("alice/%d", epoch)
		if RouteKey(id) != "alice" {
			t.Fatalf("RouteKey(%q) = %q, want alice", id, RouteKey(id))
		}
		reps := r.ReplicasFor(RouteKey(id))
		for j := range reps {
			if reps[j].Name != base[j].Name {
				t.Fatalf("epoch %d placed on %v, epoch 1 on %v", epoch, reps, base)
			}
		}
	}
	if RouteKey("r17") != "r17" {
		t.Fatalf("plain IDs must route by themselves, got %q", RouteKey("r17"))
	}
}

// TestClusterRingRejectsBadConfig: empty rings and duplicate or
// anonymous nodes fail construction, not serving.
func TestClusterRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 2); err == nil {
		t.Error("empty ring must be rejected")
	}
	if _, err := NewRing([]Node{{Name: "a", URL: "u"}, {Name: "a", URL: "v"}}, 1); err == nil {
		t.Error("duplicate node name must be rejected")
	}
	if _, err := NewRing([]Node{{Name: "", URL: "u"}}, 1); err == nil {
		t.Error("anonymous node must be rejected")
	}
}

// TestClusterParsePeers covers the -peers flag grammar.
func TestClusterParsePeers(t *testing.T) {
	nodes, err := ParsePeers("n1=http://localhost:8081, n2=http://localhost:8082,http://host3:9000/")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{
		{Name: "n1", URL: "http://localhost:8081"},
		{Name: "n2", URL: "http://localhost:8082"},
		{Name: "host3:9000", URL: "http://host3:9000"},
	}
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(nodes), len(want))
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("peer %d = %+v, want %+v", i, nodes[i], want[i])
		}
	}
	for _, bad := range []string{"", "   ", "n1=:", "just-a-name"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) should fail", bad)
		}
	}
}

func BenchmarkClusterRingReplicas(b *testing.B) {
	r, err := NewRing(testNodes(8), 3)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant%d/17", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.ReplicasFor(RouteKey(keys[i%len(keys)]))
	}
}
