// Package cluster is the horizontal scale-out tier over priveletd
// nodes: a coordinator-less routing layer that consistent-hashes
// release IDs onto a static ring of nodes, replicates read-only
// releases R ways, and fans reads out to any healthy replica.
//
// The paper makes this tier cheap: a Privelet release is a
// publish-once artifact (§III — the ε budget is spent when the noisy
// matrix M* is computed; §VI's evaluator then answers arbitrarily many
// range-count queries with no further accounting), so a release is
// immutable the moment it exists. Replication is therefore file
// shipping — the internal/codec wire format is already the system's
// single transfer unit (spill files, /export, Save/Load), and a peer
// ingests a copy through the same decode→rebuild path a restart uses —
// and replicas can never diverge or serve stale answers: every copy
// answers every query bit-identically (float64 ==) to the original,
// because decode is bit-exact and the prefix-sum evaluator rebuild is
// deterministic. No consensus, no invalidation, no read-repair.
//
// Three pieces:
//
//   - Ring: the static consistent-hash ring. Release IDs map to an
//     ordered replica set of nodes; tenant-scoped IDs
//     ("<tenant>/<epoch>") hash by their tenant prefix, so all of a
//     tenant's epochs — and the tenant's budget ledger, which lives
//     only on its primary — colocate on one replica set.
//   - Health: the per-node prober. A background loop hits each node's
//     /readyz; a configurable run of consecutive failures ejects the
//     node, one successful probe re-admits it, and the proxy reports
//     transport failures for immediate (passive) ejection.
//   - Router: the HTTP front end that mirrors the priveletd API.
//     Reads (/releases/{id}, /count, /query, /export) fan out across
//     the ID's healthy replicas with retry-on-next-replica; writes
//     (/publish, tenant publishes, DELETE) route to the ID's primary
//     and synchronously replicate before the 201 is returned; /stats
//     aggregates every node's stats so one request shows the fleet.
//
// The tier is deliberately coordinator-less: the ring is fixed at
// startup (every router instance configured with the same peer list
// computes the same placement), health is a local observation, and
// because releases are immutable the worst failure mode is
// unavailability — a replica that missed a publish answers 404 and the
// router falls through to the next replica — never a wrong answer.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Node identifies one priveletd process in the ring: a stable name
// (placement hashes the name, so renaming a node moves its data) and
// the base URL the router reaches it at.
type Node struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// vnodes is the number of virtual points each node contributes to the
// ring. 128 points per node keeps the load split across a handful of
// nodes within a few percent of even while the ring stays small enough
// to rebuild instantly at startup.
const vnodes = 128

// point is one virtual node position on the ring.
type point struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is a static consistent-hash ring over a fixed node set. It is
// immutable after New and safe for concurrent use. Placement depends
// only on the node names, not their order in the configuration or
// their URLs, so every router over the same peer set agrees.
type Ring struct {
	nodes    []Node
	points   []point
	replicas int
	version  uint64
}

// NewRing builds a ring over nodes with R-way replication at ring
// version 0 (an unversioned deployment). The replication factor is
// clamped to the node count; nodes must have non-empty, unique names
// and non-empty URLs.
func NewRing(nodes []Node, replicas int) (*Ring, error) {
	return NewVersionedRing(nodes, replicas, 0)
}

// NewVersionedRing builds a ring stamped with a membership version. The
// version is the operator's monotonic counter over peer-list changes:
// every internal call (replication pushes, repair triggers) carries the
// sender's version, and a node whose own ring is newer refuses stale
// senders — so membership can roll through a fleet one process at a
// time, with misrouted writes from not-yet-restarted routers turned
// into typed errors instead of silently wrong placement.
func NewVersionedRing(nodes []Node, replicas int, version uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	sorted := make([]Node, len(nodes))
	copy(sorted, nodes)
	// Sort by name so placement is independent of configuration order.
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	seen := make(map[string]bool, len(sorted))
	for _, n := range sorted {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node needs a name and a URL (got %+v)", n)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	r := &Ring{nodes: sorted, replicas: replicas, version: version, points: make([]point, 0, len(sorted)*vnodes)}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n.Name, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Nodes returns the ring's node set in name order.
func (r *Ring) Nodes() []Node {
	out := make([]Node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Replication returns the effective replication factor (after clamping
// to the node count).
func (r *Ring) Replication() int { return r.replicas }

// Version returns the ring's membership version (0 for an unversioned
// deployment).
func (r *Ring) Version() uint64 { return r.version }

// Contains reports whether name is one of the ring's nodes.
func (r *Ring) Contains(name string) bool {
	for _, n := range r.nodes {
		if n.Name == name {
			return true
		}
	}
	return false
}

// RouteKey maps a release ID to its placement key: tenant-scoped IDs
// ("<tenant>/<epoch>") route by the tenant prefix, so every epoch of a
// tenant — and the tenant's budget, which only the primary accounts —
// lands on the same replica set; plain IDs route by themselves.
func RouteKey(id string) string {
	if tenant, _, ok := strings.Cut(id, "/"); ok {
		return tenant
	}
	return id
}

// ReplicasFor returns key's replica set: the first R distinct nodes
// walking the ring clockwise from the key's hash. The first node is
// the primary; the order is stable for a given ring.
func (r *Ring) ReplicasFor(key string) []Node {
	h := hash64(key)
	// First point at or after h, wrapping.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]Node, 0, r.replicas)
	taken := make(map[int]bool, r.replicas)
	for n := 0; n < len(r.points) && len(out) < r.replicas; n++ {
		p := r.points[(i+n)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// PrimaryFor returns the node writes for key route to: the first node
// of the key's replica set.
func (r *Ring) PrimaryFor(key string) Node { return r.ReplicasFor(key)[0] }

// hash64 is FNV-1a with a 64-bit avalanche finalizer, inlined like the
// store's shard hash so ring lookups never allocate a hash.Hash64. The
// finalizer matters here where it doesn't for shard selection: vnode
// keys are short and nearly identical ("n1#0", "n1#1", ...), and raw
// FNV leaves their hashes correlated enough to skew arc lengths badly —
// one node can end up owning over half the ring.
func hash64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
