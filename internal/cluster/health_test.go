package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// toggleNode is a probe target whose readiness can be flipped.
type toggleNode struct {
	ready atomic.Bool
	ts    *httptest.Server
}

func newToggleNode(t *testing.T) *toggleNode {
	t.Helper()
	n := &toggleNode{}
	n.ready.Store(true)
	n.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/readyz" {
			http.NotFound(w, req)
			return
		}
		if n.ready.Load() {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	t.Cleanup(n.ts.Close)
	return n
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterHealthEjectionAndReadmission: a node is ejected only
// after the configured run of consecutive probe failures, and one
// successful probe re-admits it.
func TestClusterHealthEjectionAndReadmission(t *testing.T) {
	n := newToggleNode(t)
	h := NewHealth([]Node{{Name: "a", URL: n.ts.URL}}, HealthConfig{
		Interval:  3 * time.Millisecond,
		Threshold: 3,
	})
	h.Start()
	defer h.Stop()
	if !h.Healthy("a") {
		t.Fatal("ready node probed unhealthy")
	}

	n.ready.Store(false)
	waitFor(t, "ejection after consecutive failures", func() bool { return !h.Healthy("a") })
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Fails < 3 || snap[0].LastErr == "" {
		t.Fatalf("snapshot after ejection = %+v", snap)
	}

	n.ready.Store(true)
	waitFor(t, "re-admission after recovery", func() bool { return h.Healthy("a") })
	snap = h.Snapshot()
	if snap[0].Fails != 0 || snap[0].LastErr != "" {
		t.Fatalf("snapshot after re-admission = %+v", snap)
	}
}

// TestClusterHealthThresholdTolerance: fewer consecutive failures than
// the threshold never eject (one dropped probe must not flap a node
// out of the ring).
func TestClusterHealthThresholdTolerance(t *testing.T) {
	n := newToggleNode(t)
	h := NewHealth([]Node{{Name: "a", URL: n.ts.URL}}, HealthConfig{Threshold: 3})
	n.ready.Store(false)
	h.probeAll()
	h.probeAll()
	if !h.Healthy("a") {
		t.Fatal("ejected after 2 failures with threshold 3")
	}
	n.ready.Store(true)
	h.probeAll()
	n.ready.Store(false)
	h.probeAll()
	h.probeAll()
	if !h.Healthy("a") {
		t.Fatal("the success in between must reset the failure run")
	}
	h.probeAll()
	if h.Healthy("a") {
		t.Fatal("3 consecutive failures must eject")
	}
}

// TestClusterHealthReportFailure: the proxy's passive path ejects
// immediately — waiting three probe ticks while live traffic times out
// against a dead peer would be strictly worse — and the probe loop
// re-admits.
func TestClusterHealthReportFailure(t *testing.T) {
	n := newToggleNode(t)
	h := NewHealth([]Node{{Name: "a", URL: n.ts.URL}}, HealthConfig{Interval: 3 * time.Millisecond})
	if !h.Healthy("a") {
		t.Fatal("nodes start healthy")
	}
	h.ReportFailure("a", nil)
	if h.Healthy("a") {
		t.Fatal("ReportFailure must eject immediately")
	}
	h.Start()
	defer h.Stop()
	waitFor(t, "probe re-admission", func() bool { return h.Healthy("a") })
}

// TestClusterHealthUnknownNode: names outside the ring are never
// healthy and never panic.
func TestClusterHealthUnknownNode(t *testing.T) {
	h := NewHealth(nil, HealthConfig{})
	if h.Healthy("ghost") {
		t.Fatal("unknown node reported healthy")
	}
	h.ReportFailure("ghost", nil) // must not panic
	h.Stop()                      // without Start: must not panic
}
