package cluster

// The three-node in-process harness: real priveletd handlers
// (internal/server over internal/store) behind httptest listeners, a
// real ring, prober, and router in front — the whole cluster tier in
// one process, so failure injection (killing a node mid-stream,
// partitioning a primary, a lagging replica) is a function call away.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/workload"
)

const (
	clusterSchema = "Age:ordinal:16,Gender:nominal:flat:2"
	clusterCSV    = "0,0\n1,1\n2,0\n3,1\n4,0\n5,1\n6,0\n7,1\n8,0\n15,1\n"
	clusterParams = "schema=" + clusterSchema + "&epsilon=1&seed=7"
)

// clusterSpecs is the query mix the tests cycle through — ordinal
// ranges, a nominal leaf, the full domain, and a conjunction.
var clusterSpecs = []string{
	"Age=0..3", "Age=4..7", "Age=0..15", "Gender=#1",
	"Age=2..9,Gender=#0", "Age=8..15", "Gender=#0", "Age=5..5",
}

// testClusterNode is one in-process priveletd node plus the harness's
// failure-injection hooks.
type testClusterNode struct {
	name string
	ts   *httptest.Server
	st   *store.Store

	// stallCh, when armed via stall(), freezes this node's streamed
	// query responses after the first answer chunk: writes pass through
	// until the handler's first explicit Flush (the end-of-chunk flush
	// that puts real bytes on the wire — net/http buffers everything
	// before it), then the next write blocks until the channel closes.
	// That holds an answer stream mid-flight at a known point — some
	// answers delivered, trailer not — so a test can kill the
	// connection under it deterministically.
	mu      sync.Mutex
	stallCh chan struct{}
}

// stall arms the node's query-write gate; the returned func releases it.
func (n *testClusterNode) stall() (release func()) {
	ch := make(chan struct{})
	n.mu.Lock()
	n.stallCh = ch
	n.mu.Unlock()
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func (n *testClusterNode) disarm() {
	n.mu.Lock()
	n.stallCh = nil
	n.mu.Unlock()
}

func (n *testClusterNode) middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n.mu.Lock()
		ch := n.stallCh
		n.mu.Unlock()
		if ch != nil && strings.HasSuffix(req.URL.Path, "/query") {
			w = &stallWriter{ResponseWriter: w, ch: ch}
		}
		h.ServeHTTP(w, req)
	})
}

// stallWriter passes writes through until the handler's first explicit
// Flush, then blocks each further write on the gate channel.
type stallWriter struct {
	http.ResponseWriter
	ch      chan struct{}
	flushed bool
}

func (s *stallWriter) Write(p []byte) (int, error) {
	if s.flushed {
		<-s.ch
	}
	return s.ResponseWriter.Write(p)
}

func (s *stallWriter) Flush() {
	s.flushed = true
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

type testCluster struct {
	ring   *Ring
	health *Health
	router *httptest.Server
	nodes  map[string]*testClusterNode
	order  []string // node names in ring name order
}

// startCluster builds an n-node cluster with R-way replication and a
// router in front. budget > 0 gives every node's ledger that default
// per-tenant ε budget.
func startCluster(tb testing.TB, n, replicas int, budget float64) *testCluster {
	tb.Helper()
	tc := &testCluster{nodes: make(map[string]*testClusterNode, n)}
	ringNodes := make([]Node, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i)
		st, err := store.New(store.Config{AnswerCache: store.DefaultAnswerCache})
		if err != nil {
			tb.Fatal(err)
		}
		node := &testClusterNode{name: name, st: st}
		srv := server.New(server.Config{Store: st, NodeName: name, Budget: budget})
		node.ts = httptest.NewServer(node.middleware(srv.Handler()))
		tb.Cleanup(node.ts.Close)
		tc.nodes[name] = node
		ringNodes[i] = Node{Name: name, URL: node.ts.URL}
		tc.order = append(tc.order, name)
	}
	ring, err := NewRing(ringNodes, replicas)
	if err != nil {
		tb.Fatal(err)
	}
	health := NewHealth(ringNodes, HealthConfig{Interval: 15 * time.Millisecond})
	health.Start()
	tb.Cleanup(health.Stop)
	rt, err := NewRouter(RouterConfig{Ring: ring, Health: health})
	if err != nil {
		tb.Fatal(err)
	}
	tc.ring, tc.health = ring, health
	tc.router = httptest.NewServer(rt.Handler())
	tb.Cleanup(tc.router.Close)
	return tc
}

// kill takes a node down hard: live connections die first (so anything
// mid-stream fails like a crashed process), then the listener closes
// so probes and retries see connection-refused.
func (tc *testCluster) kill(name string) {
	n := tc.nodes[name]
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// publish publishes through the router and returns the decoded created
// body (id, node, replicas, ...).
func clusterPublish(t testing.TB, url, params, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(url+"/publish?"+params, "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("publish status %d: %s", resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("publish body %q: %v", raw, err)
	}
	return out
}

// countVia asks one /count through the given base URL. The spec is
// query-escaped here — "#leaf" predicates would otherwise read as a
// URL fragment.
func countVia(t testing.TB, base, id, spec string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/releases/" + id + "/count?q=" + url.QueryEscape(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("count status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Count float64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Count
}

// lineWorkload builds a line workload of n queries cycling the spec mix.
func lineWorkload(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(clusterSpecs[i%len(clusterSpecs)])
		b.WriteByte('\n')
	}
	return b.String()
}

// queryLines POSTs a line workload and returns the raw response; the
// caller owns the body.
func queryLines(t testing.TB, base, id, wl string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/releases/"+id+"/query", strings.NewReader(wl))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// referenceAnswers publishes the same table on a standalone single
// node and runs the workload there — the cluster's answers must be
// float64-identical to this.
func referenceAnswers(t testing.TB, wl string) []float64 {
	t.Helper()
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	created := clusterPublish(t, ts.URL, clusterParams, clusterCSV)
	resp := queryLines(t, ts.URL, created["id"].(string), wl)
	defer resp.Body.Close()
	answers, trailer, err := workload.ReadAnswerLines(resp.Body)
	if err != nil || trailer.Status != workload.StatusOK {
		t.Fatalf("reference answers: err=%v trailer=%+v", err, trailer)
	}
	return answers
}

// replicaNames extracts the created body's replica list.
func replicaNames(t *testing.T, created map[string]any) []string {
	t.Helper()
	raw, ok := created["replicas"].([]any)
	if !ok {
		t.Fatalf("created body lacks replicas: %v", created)
	}
	out := make([]string, len(raw))
	for i, v := range raw {
		out[i] = v.(string)
	}
	return out
}

// TestClusterPublishReplicatesAndServes: a publish through the router
// lands on the ID's ring replicas (and only those), and every /count
// through the router — load-spread over both copies — answers exactly
// what a standalone single-node publish answers.
func TestClusterPublishReplicatesAndServes(t *testing.T) {
	tc := startCluster(t, 3, 2, 0)
	created := clusterPublish(t, tc.router.URL, clusterParams, clusterCSV)
	id := created["id"].(string)
	reps := replicaNames(t, created)
	if len(reps) != 2 {
		t.Fatalf("replicas = %v, want 2", reps)
	}
	want := tc.ring.ReplicasFor(RouteKey(id))
	if reps[0] != want[0].Name && reps[1] != want[0].Name {
		t.Fatalf("replica list %v does not include primary %s", reps, want[0].Name)
	}
	// Exactly the ring's replica set holds a copy.
	holders := map[string]bool{}
	for name, n := range tc.nodes {
		if _, err := n.st.Describe(id); err == nil {
			holders[name] = true
		}
	}
	if len(holders) != 2 || !holders[want[0].Name] || !holders[want[1].Name] {
		t.Fatalf("copies on %v, want exactly %v", holders, []string{want[0].Name, want[1].Name})
	}

	// Single-node reference: identical seed → identical release →
	// float64-identical answers, whichever replica the rotation picks.
	ref := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ref.Close()
	refCreated := clusterPublish(t, ref.URL, clusterParams, clusterCSV)
	for round := 0; round < 4; round++ {
		for _, spec := range clusterSpecs {
			got := countVia(t, tc.router.URL, id, spec)
			wantV := countVia(t, ref.URL, refCreated["id"].(string), spec)
			if got != wantV {
				t.Fatalf("round %d %s: cluster %v != single-node %v", round, spec, got, wantV)
			}
		}
	}

	// The merged list shows the release once, not once per copy.
	resp, err := http.Get(tc.router.URL + "/releases")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	seen := 0
	for _, e := range list {
		if e["id"] == id {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("release appears %d times in merged list, want 1", seen)
	}
}

// TestClusterMechanismsAndStats: key-less reads route to any node, and
// the aggregated /stats names every node with its own identity.
func TestClusterMechanismsAndStats(t *testing.T) {
	tc := startCluster(t, 3, 2, 0)
	clusterPublish(t, tc.router.URL, clusterParams, clusterCSV)

	resp, err := http.Get(tc.router.URL + "/mechanisms")
	if err != nil {
		t.Fatal(err)
	}
	var mechs struct {
		Mechanisms []string `json:"mechanisms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mechs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(mechs.Mechanisms) == 0 {
		t.Fatal("no mechanisms through the router")
	}

	resp, err = http.Get(tc.router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Nodes map[string]struct {
			Releases int `json:"releases"`
			Node     struct {
				Name      string `json:"name"`
				StartTime string `json:"start_time"`
				Version   string `json:"version"`
			} `json:"node"`
		} `json:"nodes"`
		Health []NodeHealth `json:"health"`
		Router RouterStats  `json:"router"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Nodes) != 3 {
		t.Fatalf("aggregated stats cover %d nodes, want 3", len(stats.Nodes))
	}
	total := 0
	for name, ns := range stats.Nodes {
		if ns.Node.Name != name {
			t.Errorf("node %q reports identity %q", name, ns.Node.Name)
		}
		if ns.Node.StartTime == "" || ns.Node.Version == "" {
			t.Errorf("node %q identity incomplete: %+v", name, ns.Node)
		}
		total += ns.Releases
	}
	if total != 2 { // R=2 copies of one release across the fleet
		t.Errorf("fleet holds %d copies, want 2", total)
	}
	if len(stats.Health) != 3 || stats.Router.Requests == 0 {
		t.Errorf("health/router sections incomplete: %+v %+v", stats.Health, stats.Router)
	}
}

// TestClusterDeleteFansOut: DELETE through the router withdraws every
// replica's copy.
func TestClusterDeleteFansOut(t *testing.T) {
	tc := startCluster(t, 3, 2, 0)
	created := clusterPublish(t, tc.router.URL, clusterParams, clusterCSV)
	id := created["id"].(string)

	req, _ := http.NewRequest(http.MethodDelete, tc.router.URL+"/releases/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d: %s", resp.StatusCode, raw)
	}
	var del struct {
		DeletedFrom []string `json:"deleted_from"`
	}
	if err := json.Unmarshal(raw, &del); err != nil || len(del.DeletedFrom) != 2 {
		t.Fatalf("deleted_from = %s (err %v), want 2 nodes", raw, err)
	}
	for name, n := range tc.nodes {
		if _, err := n.st.Describe(id); err == nil {
			t.Errorf("node %s still holds %s after fan-out delete", name, id)
		}
	}
	if resp, err := http.Get(tc.router.URL + "/releases/" + id); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestClusterTenantColocationAndBudget: tenant publishes route to the
// tenant's primary (whose ledger is authoritative), epochs replicate
// like any release, the budget endpoint reads the primary, and an
// exhausted budget surfaces as the node's typed 429 through the router.
func TestClusterTenantColocationAndBudget(t *testing.T) {
	tc := startCluster(t, 3, 2, 1.0) // ε budget 1.0 per tenant per node
	params := "schema=" + clusterSchema + "&epsilon=0.6&seed=3"
	resp, err := http.Post(tc.router.URL+"/tenants/alice/publish?"+params, "text/csv", strings.NewReader(clusterCSV))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("tenant publish status %d: %s", resp.StatusCode, raw)
	}
	var created map[string]any
	if err := json.Unmarshal(raw, &created); err != nil {
		t.Fatal(err)
	}
	if created["id"] != "alice/1" {
		t.Fatalf("epoch id = %v, want alice/1", created["id"])
	}
	primary := tc.ring.PrimaryFor("alice")
	if created["node"] != primary.Name {
		t.Fatalf("tenant publish landed on %v, want primary %s", created["node"], primary.Name)
	}
	// The epoch replicated onto the tenant's replica set.
	for _, n := range tc.ring.ReplicasFor("alice") {
		if _, err := tc.nodes[n.Name].st.Describe("alice/1"); err != nil {
			t.Errorf("replica %s lacks alice/1: %v", n.Name, err)
		}
	}
	// Budget reads the primary's ledger.
	resp, err = http.Get(tc.router.URL + "/tenants/alice/budget")
	if err != nil {
		t.Fatal(err)
	}
	var budget struct {
		Spent float64 `json:"spent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&budget); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if budget.Spent != 0.6 {
		t.Fatalf("spent = %v, want 0.6", budget.Spent)
	}
	// The epoch is queryable through the router (escaped ID).
	if got := countVia(t, tc.router.URL, "alice%2F1", "Age=0..15"); got != got { // NaN guard only
		t.Fatalf("epoch count = %v", got)
	}
	// Second 0.6 overdraws the 1.0 budget: the primary's typed refusal
	// passes through verbatim.
	resp, err = http.Post(tc.router.URL+"/tenants/alice/publish?"+params, "text/csv", strings.NewReader(clusterCSV))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !bytes.Contains(raw, []byte(`"budget_exhausted"`)) {
		t.Fatalf("overdraw: status %d body %s, want typed 429", resp.StatusCode, raw)
	}
}

// TestClusterKillAnsweringReplicaMidStream is the acceptance scenario:
// publish through the router, start a streamed workload, kill the node
// that is answering while its answer stream is frozen mid-flight, and
// verify (a) the cut stream is detectably truncated, and (b) a retried
// /query through the router lands on the surviving replica and returns
// answers float64-identical to a standalone single-node publish.
func TestClusterKillAnsweringReplicaMidStream(t *testing.T) {
	tc := startCluster(t, 3, 2, 0)
	created := clusterPublish(t, tc.router.URL, clusterParams, clusterCSV)
	id := created["id"].(string)

	const nQueries = 10000
	wl := lineWorkload(nQueries)
	ref := referenceAnswers(t, wl)
	if len(ref) != nQueries {
		t.Fatalf("reference answered %d queries, want %d", len(ref), nQueries)
	}

	// Freeze whichever node answers after its first flushed answer
	// chunk, so the kill is guaranteed to land mid-stream: answers on
	// the wire, trailer not yet written.
	releases := make([]func(), 0, len(tc.nodes))
	for _, n := range tc.nodes {
		releases = append(releases, n.stall())
	}
	resp := queryLines(t, tc.router.URL, id, wl)
	answering := resp.Header.Get(NodeHeader)
	if answering == "" {
		t.Fatal("router response lacks " + NodeHeader)
	}
	// Read a little of the stream to prove it was live, then kill the
	// answering node under it.
	br := bufio.NewReader(resp.Body)
	var partial bytes.Buffer
	for i := 0; i < 50; i++ {
		line, err := br.ReadString('\n')
		partial.WriteString(line)
		if err != nil {
			t.Fatalf("reading the live stream: %v", err)
		}
	}
	tc.nodes[answering].ts.CloseClientConnections()
	for _, rel := range releases {
		rel() // unfreeze: the killed node's writes now fail
	}
	for _, n := range tc.nodes {
		n.disarm() // the retry must stream unimpeded
	}
	rest, readErr := io.ReadAll(br)
	resp.Body.Close()
	partial.Write(rest)
	tc.nodes[answering].ts.Close()
	if readErr == nil {
		// The transport may deliver a clean EOF; the trailer contract
		// still exposes the truncation.
		if _, _, err := workload.ReadAnswerLines(bytes.NewReader(partial.Bytes())); err == nil {
			t.Fatal("killed stream parsed as complete — truncation undetectable")
		}
	}

	// The retry: the router must route around the dead node.
	resp = queryLines(t, tc.router.URL, id, wl)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("retried query status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(NodeHeader); got == answering {
		t.Fatalf("retry answered by the killed node %q", got)
	}
	answers, trailer, err := workload.ReadAnswerLines(resp.Body)
	if err != nil || trailer.Status != workload.StatusOK {
		t.Fatalf("retried stream: err=%v trailer=%+v", err, trailer)
	}
	if len(answers) != len(ref) {
		t.Fatalf("retry delivered %d answers, want %d", len(answers), len(ref))
	}
	for i := range answers {
		if answers[i] != ref[i] {
			t.Fatalf("answer %d: cluster %v != single-node %v", i, answers[i], ref[i])
		}
	}
}

func BenchmarkClusterRoutedCount(b *testing.B) {
	tc := startCluster(b, 3, 2, 0)
	created := clusterPublish(b, tc.router.URL, clusterParams, clusterCSV)
	id := created["id"].(string)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		countVia(b, tc.router.URL, id, clusterSpecs[i%len(clusterSpecs)])
	}
}
