package cluster

// Failure injection against the in-process harness: every replica of a
// key down, a partitioned primary, and a replica that missed a
// publish. The contract under test is the ISSUE's acceptance bar — a
// typed 503, never a hang and never a 500.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// typedError decodes the router's {"error","code"} body.
func typedError(t *testing.T, resp *http.Response) (status int, code string) {
	t.Helper()
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("status %d with untyped body %q: %v", resp.StatusCode, raw, err)
	}
	return resp.StatusCode, body.Code
}

// TestClusterAllReplicasDownTyped503: when every replica of a release
// is dead, reads return the typed 503 — on the very first request
// after the failure (passive ejection) and on every one after (the
// probe loop has marked them) — and never a 500 or a hang.
func TestClusterAllReplicasDownTyped503(t *testing.T) {
	tc := startCluster(t, 3, 2, 0)
	created := clusterPublish(t, tc.router.URL, clusterParams, clusterCSV)
	id := created["id"].(string)
	for _, n := range tc.ring.ReplicasFor(RouteKey(id)) {
		tc.kill(n.Name)
	}

	client := &http.Client{Timeout: 10 * time.Second} // a hang fails the test, not the suite
	for round := 0; round < 3; round++ {
		resp, err := client.Get(tc.router.URL + "/releases/" + id + "/count?q=Age=0..3")
		if err != nil {
			t.Fatalf("round %d: transport error instead of typed 503: %v", round, err)
		}
		status, code := typedError(t, resp)
		if status != http.StatusServiceUnavailable || code != "no_healthy_replica" {
			t.Fatalf("round %d: got %d/%q, want 503/no_healthy_replica", round, status, code)
		}
	}
	// The streamed path degrades identically.
	resp, err := client.Post(tc.router.URL+"/releases/"+id+"/query", "text/plain", strings.NewReader("Age=0..3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if status, code := typedError(t, resp); status != http.StatusServiceUnavailable || code != "no_healthy_replica" {
		t.Fatalf("query: got %d/%q, want 503/no_healthy_replica", status, code)
	}
	// The surviving node keeps the router alive: /readyz stays 200.
	resp, err = client.Get(tc.router.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz = %d with one node still healthy", resp.StatusCode)
	}
}

// TestClusterPartitionedPrimary: with a tenant's primary unreachable,
// budget-gated writes refuse with the typed 503 (the ledger lives only
// there — answering from a follower could overspend ε), while epoch
// reads keep serving from the surviving replica.
func TestClusterPartitionedPrimary(t *testing.T) {
	tc := startCluster(t, 3, 2, 1.0)
	params := "schema=" + clusterSchema + "&epsilon=0.25&seed=5"
	resp, err := http.Post(tc.router.URL+"/tenants/alice/publish?"+params, "text/csv", strings.NewReader(clusterCSV))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("seed publish status %d", resp.StatusCode)
	}
	before := countVia(t, tc.router.URL, "alice%2F1", "Age=0..15")

	primary := tc.ring.PrimaryFor("alice")
	tc.kill(primary.Name)

	resp, err = http.Post(tc.router.URL+"/tenants/alice/publish?"+params, "text/csv", strings.NewReader(clusterCSV))
	if err != nil {
		t.Fatal(err)
	}
	if status, code := typedError(t, resp); status != http.StatusServiceUnavailable || code != "primary_unavailable" {
		t.Fatalf("partitioned publish: got %d/%q, want 503/primary_unavailable", status, code)
	}
	resp, err = http.Get(tc.router.URL + "/tenants/alice/budget")
	if err != nil {
		t.Fatal(err)
	}
	if status, code := typedError(t, resp); status != http.StatusServiceUnavailable || code != "primary_unavailable" {
		t.Fatalf("partitioned budget read: got %d/%q, want 503/primary_unavailable", status, code)
	}
	// Reads of the already-published epoch survive on the follower, and
	// the replica serves the identical release.
	if after := countVia(t, tc.router.URL, "alice%2F1", "Age=0..15"); after != before {
		t.Fatalf("follower answered %v, primary answered %v", after, before)
	}
}

// TestClusterReplicaLag404Fallthrough: a replica that missed a publish
// answers 404; the router must treat that as "try the next replica"
// and only report 404 when every reachable replica agrees.
func TestClusterReplicaLag404Fallthrough(t *testing.T) {
	tc := startCluster(t, 3, 2, 0)
	created := clusterPublish(t, tc.router.URL, clusterParams, clusterCSV)

	// Export the release and ingest it under a fresh ID into ONLY the
	// second replica's store — the primary now lags for that ID.
	resp, err := http.Get(tc.router.URL + "/releases/" + created["id"].(string) + "/export")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export: status %d err %v", resp.StatusCode, err)
	}
	const lagID = "lagged1"
	reps := tc.ring.ReplicasFor(RouteKey(lagID))
	if err := tc.nodes[reps[1].Name].st.Ingest(lagID, strings.NewReader(string(raw)), 0); err != nil {
		t.Fatal(err)
	}

	// Every attempt must find the one replica that has it, whichever
	// node the rotation tries first.
	want := countVia(t, tc.router.URL, lagID, "Age=0..7")
	for i := 0; i < 6; i++ {
		if got := countVia(t, tc.router.URL, lagID, "Age=0..7"); got != want {
			t.Fatalf("attempt %d: %v != %v", i, got, want)
		}
	}
	// A release no replica has is a plain 404, not a 503.
	resp, err = http.Get(tc.router.URL + "/releases/absent9/count?q=Age=0..3")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent release: status %d, want 404", resp.StatusCode)
	}
}
