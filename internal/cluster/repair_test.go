package cluster

import (
	"strings"
	"testing"

	"repro/internal/store"
)

func TestRepairerConfigValidation(t *testing.T) {
	nodes := []Node{{Name: "a", URL: "http://a"}, {Name: "b", URL: "http://b"}}
	ring, err := NewRing(nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRepairer(RepairConfig{Self: "a", Store: st}); err == nil {
		t.Fatal("repairer accepted a nil ring")
	}
	if _, err := NewRepairer(RepairConfig{Self: "a", Ring: ring}); err == nil {
		t.Fatal("repairer accepted a nil store")
	}
	if _, err := NewRepairer(RepairConfig{Self: "ghost", Ring: ring, Store: st}); err == nil || !strings.Contains(err.Error(), "not in the ring") {
		t.Fatalf("repairer accepted a non-member self: %v", err)
	}
	rep, err := NewRepairer(RepairConfig{Self: "a", Ring: ring, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if rep.cfg.Interval != DefaultRepairInterval {
		t.Fatalf("default interval = %v, want %v", rep.cfg.Interval, DefaultRepairInterval)
	}
	// Stop without Start is a no-op, twice.
	rep.Stop()
	rep.Stop()
	if st := rep.Stats(); st.Sweeps != 0 || st.LastSweep != "" {
		t.Fatalf("fresh repairer stats = %+v", st)
	}
}

func TestRepairRingVersioning(t *testing.T) {
	nodes := []Node{{Name: "a", URL: "http://a"}, {Name: "b", URL: "http://b"}}
	r0, err := NewRing(nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Version() != 0 {
		t.Fatalf("NewRing version = %d, want 0", r0.Version())
	}
	r7, err := NewVersionedRing(nodes, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r7.Version() != 7 {
		t.Fatalf("versioned ring reports %d, want 7", r7.Version())
	}
	// Placement is independent of the version: the version gates stale
	// senders, it does not move data.
	for _, key := range []string{"alice", "bob", "r1", "x00ff"} {
		p0, p7 := r0.ReplicasFor(key), r7.ReplicasFor(key)
		for i := range p0 {
			if p0[i].Name != p7[i].Name {
				t.Fatalf("placement of %q differs across versions: %v vs %v", key, p0, p7)
			}
		}
	}
	if !r7.Contains("a") || !r7.Contains("b") || r7.Contains("c") {
		t.Fatal("Contains misreports membership")
	}
}
