package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// DefaultProbeInterval is how often the health loop probes each node
// when HealthConfig.Interval is not set.
const DefaultProbeInterval = time.Second

// DefaultProbeTimeout bounds one probe request when
// HealthConfig.Timeout is not set — a node that cannot answer /readyz
// in two seconds is not a node the proxy should wait on either.
const DefaultProbeTimeout = 2 * time.Second

// DefaultFailureThreshold is the run of consecutive probe failures
// that ejects a node when HealthConfig.Threshold is not set. Three
// strikes tolerates one dropped probe or GC pause without flapping the
// node out of the ring.
const DefaultFailureThreshold = 3

// HealthConfig configures a Health prober.
type HealthConfig struct {
	// Interval between probe rounds; ≤ 0 means DefaultProbeInterval.
	Interval time.Duration
	// Timeout for one probe request; ≤ 0 means DefaultProbeTimeout.
	Timeout time.Duration
	// Threshold is the consecutive-probe-failure count that ejects a
	// node; ≤ 0 means DefaultFailureThreshold. A single successful
	// probe re-admits it regardless of the threshold.
	Threshold int
	// Client issues the probes; nil means a dedicated client with the
	// probe timeout.
	Client *http.Client
}

// NodeHealth is one node's health snapshot.
type NodeHealth struct {
	Name string `json:"name"`
	// Healthy reports whether the proxy currently routes to the node.
	Healthy bool `json:"healthy"`
	// Fails is the current run of consecutive probe failures.
	Fails int `json:"consecutive_failures"`
	// LastErr is the most recent probe failure, empty after a success.
	LastErr string `json:"last_error,omitempty"`
}

// Health tracks per-node liveness for the router: a probe loop GETs
// each node's /readyz on an interval, a run of Threshold consecutive
// failures ejects the node, and one successful probe re-admits it. The
// proxy additionally reports transport-level failures it hits on real
// traffic (ReportFailure), which eject the node immediately — waiting
// for three probe ticks while every request to a dead peer times out
// would be strictly worse — and the probe loop is then the re-admission
// path. All methods are safe for concurrent use.
type Health struct {
	cfg    HealthConfig
	client *http.Client

	mu     sync.Mutex
	states map[string]*nodeState
	stop   chan struct{}
	done   chan struct{}
}

type nodeState struct {
	node    Node
	healthy bool
	fails   int
	lastErr string
}

// NewHealth builds a prober over nodes. Every node starts healthy —
// the first probe round (run synchronously by Start) corrects that
// before any traffic is routed.
func NewHealth(nodes []Node, cfg HealthConfig) *Health {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultProbeTimeout
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = DefaultFailureThreshold
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	h := &Health{cfg: cfg, client: client, states: make(map[string]*nodeState, len(nodes))}
	for _, n := range nodes {
		h.states[n.Name] = &nodeState{node: n, healthy: true}
	}
	return h
}

// Start runs one synchronous probe round — so the caller begins with a
// measured view, not the optimistic default — then launches the
// background loop. Stop ends it.
func (h *Health) Start() {
	h.probeAll()
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(h.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				h.probeAll()
			}
		}
	}()
}

// Stop ends the probe loop and waits for it to exit. Safe to call
// without Start, or twice.
func (h *Health) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// probeAll probes every node once, concurrently, and blocks until the
// round completes.
func (h *Health) probeAll() {
	h.mu.Lock()
	nodes := make([]Node, 0, len(h.states))
	for _, st := range h.states {
		nodes = append(nodes, st.node)
	}
	h.mu.Unlock()
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n Node) {
			defer wg.Done()
			h.record(n.Name, h.probe(n))
		}(n)
	}
	wg.Wait()
}

// probe issues one readiness check; any non-2xx status or transport
// error is a failure (a recovering node 503s /readyz on purpose — it
// must not receive traffic yet).
func (h *Health) probe(n Node) error {
	resp, err := h.client.Get(n.URL + "/readyz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("readyz status %d", resp.StatusCode)
	}
	return nil
}

// record applies one probe result: success re-admits immediately,
// failures eject after the configured consecutive run.
func (h *Health) record(name string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.states[name]
	if st == nil {
		return
	}
	if err == nil {
		st.healthy, st.fails, st.lastErr = true, 0, ""
		return
	}
	st.fails++
	st.lastErr = err.Error()
	if st.fails >= h.cfg.Threshold {
		st.healthy = false
	}
}

// Healthy reports whether the node is currently routable. Unknown
// names are unhealthy.
func (h *Health) Healthy(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.states[name]
	return st != nil && st.healthy
}

// ReportFailure is the proxy's passive detection path: a transport-
// level failure on real traffic ejects the node immediately (the probe
// loop re-admits it once /readyz answers again). HTTP-level errors are
// not reported here — a node healthy enough to produce a status line
// is healthy enough to keep probing on schedule.
func (h *Health) ReportFailure(name string, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.states[name]
	if st == nil {
		return
	}
	st.fails++
	st.healthy = false
	if err != nil {
		st.lastErr = err.Error()
	}
}

// Snapshot returns every node's current health, sorted by name.
func (h *Health) Snapshot() []NodeHealth {
	h.mu.Lock()
	out := make([]NodeHealth, 0, len(h.states))
	for _, st := range h.states {
		out = append(out, NodeHealth{Name: st.node.Name, Healthy: st.healthy, Fails: st.fails, LastErr: st.lastErr})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
