package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// NodeHeader is the response header the router stamps on every proxied
// response with the name of the node that answered — the hook failure-
// injection tests (and operators) use to see where a request landed.
const NodeHeader = "X-Cluster-Node"

// RouterConfig configures a Router.
type RouterConfig struct {
	// Ring places release IDs on nodes. Required.
	Ring *Ring
	// Health tracks node liveness. Required; the caller owns its
	// lifecycle (Start/Stop).
	Health *Health
	// MaxBody bounds buffered request bodies — workload uploads are
	// buffered so a failed replica can be retried with the same body —
	// and the replication payloads the router stages between a
	// primary's export and its followers. ≤ 0 means 64 MiB.
	MaxBody int64
	// Client issues proxied requests; nil means http.DefaultClient
	// (which has no overall timeout — correct for streamed query
	// responses of unbounded duration; per-connection failures are
	// handled by retry, not deadline).
	Client *http.Client
	// Secret is the cluster's shared bearer token: the router sends it
	// on every internal call (replication pushes), and nodes configured
	// with the same secret refuse internal calls without it. Empty
	// disables the header (for unauthenticated deployments).
	Secret string
}

// RouterStats is the router's own accounting, nested under "router" in
// the aggregated /stats response.
type RouterStats struct {
	// Requests counts proxied client requests (not probes).
	Requests int64 `json:"requests"`
	// Retries counts failovers to a next replica after a transport
	// error, 404, or 5xx from the previous one.
	Retries int64 `json:"retries"`
	// NoReplica counts requests refused with the typed 503 because no
	// healthy replica could answer.
	NoReplica int64 `json:"no_healthy_replica"`
	// Replications counts successful follower copies pushed after
	// publishes; ReplicationFailures counts pushes that failed (the
	// release is then under-replicated until republished).
	Replications        int64 `json:"replications"`
	ReplicationFailures int64 `json:"replication_failures"`
}

// Router is the cluster tier's HTTP front end: it mirrors the
// priveletd API (see internal/server) and routes each request by the
// consistent-hash ring — reads fan out over the ID's healthy replicas
// with retry-on-next-replica, writes go to the ID's primary and
// replicate synchronously before the 201 returns. Construct with
// NewRouter; safe for concurrent use.
type Router struct {
	ring    *Ring
	health  *Health
	client  *http.Client
	maxBody int64
	secret  string
	// rr rotates the first replica tried per read, spreading load over
	// the replica set instead of hammering every key's primary.
	rr atomic.Uint64

	requests     atomic.Int64
	retries      atomic.Int64
	noReplica    atomic.Int64
	replications atomic.Int64
	replFailures atomic.Int64
}

// NewRouter builds a router over an existing ring and health tracker.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Ring == nil || cfg.Health == nil {
		return nil, fmt.Errorf("cluster: router needs a Ring and a Health tracker")
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Router{ring: cfg.Ring, health: cfg.Health, client: client, maxBody: cfg.MaxBody, secret: cfg.Secret}, nil
}

// Stats returns the router's own counters.
func (rt *Router) Stats() RouterStats {
	return RouterStats{
		Requests:            rt.requests.Load(),
		Retries:             rt.retries.Load(),
		NoReplica:           rt.noReplica.Load(),
		Replications:        rt.replications.Load(),
		ReplicationFailures: rt.replFailures.Load(),
	}
}

// Handler returns the router's HTTP handler. The surface mirrors a
// single node's API so clients cannot tell a router from a daemon —
// plus the router's own /healthz (process up) and /readyz (at least
// one healthy node).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", rt.count(rt.handlePublish))
	mux.HandleFunc("POST /tenants/{tenant}/publish", rt.count(rt.handleTenantPublish))
	mux.HandleFunc("GET /tenants/{tenant}/budget", rt.count(rt.handleTenantBudget))
	mux.HandleFunc("GET /releases", rt.count(rt.handleList))
	mux.HandleFunc("GET /releases/{id}", rt.count(rt.readByID))
	mux.HandleFunc("DELETE /releases/{id}", rt.count(rt.handleDelete))
	mux.HandleFunc("GET /releases/{id}/count", rt.count(rt.readByID))
	mux.HandleFunc("POST /releases/{id}/query", rt.count(rt.readByID))
	mux.HandleFunc("GET /releases/{id}/export", rt.count(rt.readByID))
	mux.HandleFunc("GET /mechanisms", rt.count(rt.handleAnyNode))
	mux.HandleFunc("GET /stats", rt.count(rt.handleStats))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return mux
}

func (rt *Router) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rt.requests.Add(1)
		h(w, req)
	}
}

// handleReadyz: the router is ready when it can route to anything.
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	for _, n := range rt.ring.Nodes() {
		if rt.health.Healthy(n.Name) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": "no healthy node in the ring",
		"code":  "no_healthy_replica",
	})
}

// healthyReplicas returns key's replica set filtered to healthy nodes,
// rotated by the round-robin counter so consecutive reads spread over
// the set.
func (rt *Router) healthyReplicas(key string) []Node {
	reps := rt.ring.ReplicasFor(key)
	start := int(rt.rr.Add(1) % uint64(len(reps)))
	out := make([]Node, 0, len(reps))
	for i := range reps {
		n := reps[(start+i)%len(reps)]
		if rt.health.Healthy(n.Name) {
			out = append(out, n)
		}
	}
	return out
}

// noHealthyReplica writes the typed 503 the cluster contract
// guarantees when every replica of a key is down: machine-readable,
// never a hang, never a 500.
func (rt *Router) noHealthyReplica(w http.ResponseWriter, key string) {
	rt.noReplica.Add(1)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": fmt.Sprintf("no healthy replica for %q", key),
		"code":  "no_healthy_replica",
	})
}

// readByID proxies a read keyed by the {id} path value across its
// healthy replicas.
func (rt *Router) readByID(w http.ResponseWriter, req *http.Request) {
	rt.proxyRead(w, req, RouteKey(req.PathValue("id")))
}

// handleAnyNode proxies a key-less read (e.g. /mechanisms — identical
// on every node) to any healthy node.
func (rt *Router) handleAnyNode(w http.ResponseWriter, req *http.Request) {
	rt.proxyReadNodes(w, req, rt.rotatedHealthyNodes())
}

func (rt *Router) rotatedHealthyNodes() []Node {
	nodes := rt.ring.Nodes()
	start := int(rt.rr.Add(1) % uint64(len(nodes)))
	out := make([]Node, 0, len(nodes))
	for i := range nodes {
		n := nodes[(start+i)%len(nodes)]
		if rt.health.Healthy(n.Name) {
			out = append(out, n)
		}
	}
	return out
}

// proxyRead fans a read out over key's healthy replicas.
func (rt *Router) proxyRead(w http.ResponseWriter, req *http.Request, key string) {
	rt.proxyReadNodes(w, req, rt.healthyReplicas(key))
}

// proxyReadNodes tries candidates in order until one answers:
//
//   - transport error → report the node failed (immediate passive
//     ejection), try the next;
//   - 404 → try the next: a replica that missed a publish (it was down
//     during replication) must not mask a copy its peers hold; the 404
//     is returned only when every reachable replica agrees;
//   - 5xx → try the next (one broken replica must not fail a read its
//     peers can serve);
//   - anything else → relay it, including 4xx: a malformed query is
//     deterministically malformed on every replica.
//
// The request body (workload uploads) is buffered once up front so a
// retry can resend it. Nothing is written to the client until an
// upstream response is chosen, so retries are invisible; once a
// response streams, an upstream failure aborts the connection (the
// answer wire format's trailer makes the truncation detectable) and
// the ejection makes the client's retry land on a different replica.
func (rt *Router) proxyReadNodes(w http.ResponseWriter, req *http.Request, candidates []Node) {
	var body []byte
	if req.Body != nil && req.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, req.Body, rt.maxBody))
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading request body: "+err.Error())
			return
		}
	}
	saw404 := false
	var lastErr string
	for i, n := range candidates {
		if i > 0 {
			rt.retries.Add(1)
		}
		resp, err := rt.forward(req.Context(), n, req, body)
		if err != nil {
			if req.Context().Err() != nil {
				return // client gone; nothing to answer
			}
			rt.health.ReportFailure(n.Name, err)
			lastErr = err.Error()
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			saw404 = true
			drain(resp)
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Sprintf("%s: status %d", n.Name, resp.StatusCode)
			drain(resp)
			continue
		}
		rt.relay(w, resp, n)
		return
	}
	switch {
	case saw404:
		httpError(w, http.StatusNotFound, fmt.Sprintf("no release %q on any replica", req.PathValue("id")))
	case lastErr != "":
		rt.noReplica.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "every replica failed: " + lastErr,
			"code":  "no_healthy_replica",
		})
	default:
		rt.noHealthyReplica(w, readKey(req))
	}
}

// readKey names what a refused read was for, for the 503 body.
func readKey(req *http.Request) string {
	if id := req.PathValue("id"); id != "" {
		return RouteKey(id)
	}
	return req.URL.Path
}

// forward issues req's equivalent against node n. A nil body streams
// the original request body through (single-shot, for writes); a
// non-nil body is replayable across retries.
func (rt *Router) forward(ctx context.Context, n Node, req *http.Request, body []byte) (*http.Response, error) {
	var r io.Reader = req.Body
	if body != nil {
		r = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, nodeURL(n, req), r)
	if err != nil {
		return nil, err
	}
	copyHeader(out.Header, req.Header, "Content-Type", "Accept", "Accept-Encoding")
	return rt.client.Do(out)
}

// nodeURL rebuilds the request URL against n, preserving the escaped
// path (tenant-epoch IDs carry %2F, which must reach the node intact)
// and the raw query.
func nodeURL(n Node, req *http.Request) string {
	u := n.URL + req.URL.EscapedPath()
	if req.URL.RawQuery != "" {
		u += "?" + req.URL.RawQuery
	}
	return u
}

func copyHeader(dst, src http.Header, keys ...string) {
	for _, k := range keys {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// relay streams resp to the client, flushing per write so streamed
// answer chunks reach the client while later chunks still execute
// upstream. A mid-stream upstream failure ejects the node and aborts
// the client connection — the bytes already sent cannot be unsent, so
// the only honest move is to make the truncation visible (the answer
// formats' trailer contract) rather than silently end the body.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, n Node) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(NodeHeader, n.Name)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return // client gone; upstream is fine
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			// Upstream died mid-stream: eject it and cut the client
			// connection so the truncation is unmistakable.
			rt.health.ReportFailure(n.Name, rerr)
			panic(http.ErrAbortHandler)
		}
	}
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// primaryUnavailable writes the typed 503 for writes whose primary is
// down. Writes cannot fail over — the primary is where the ID (and,
// for tenants, the budget ledger) lives — so the client must retry
// after the primary returns or the ring is reconfigured.
func (rt *Router) primaryUnavailable(w http.ResponseWriter, key string, primary Node) {
	rt.noReplica.Add(1)
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": fmt.Sprintf("primary %q for %q is unavailable", primary.Name, key),
		"code":  "primary_unavailable",
	})
}

// mintID generates the router's client-facing release ID for plain
// publishes. The node cannot mint it — placement needs the ID before a
// node is chosen — so the router does, and passes it down via the
// publish endpoint's id parameter. The "x" prefix keeps router-minted
// IDs disjoint from the nodes' own "r<counter>" scheme.
func mintID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: reading random ID bytes: %v", err)) // crypto/rand never fails on a sane OS
	}
	return "x" + hex.EncodeToString(b[:])
}

// handlePublish routes a plain publish: mint the ID, stream the CSV to
// the ID's primary, and on success synchronously replicate the encoded
// release to the ID's follower replicas before answering 201. The
// response is the node's created summary plus the router's view:
// which node is primary and which nodes hold copies.
func (rt *Router) handlePublish(w http.ResponseWriter, req *http.Request) {
	id := mintID()
	q := req.URL.Query()
	q.Set("id", id)
	req.URL.RawQuery = q.Encode()
	rt.writeThrough(w, req, RouteKey(id))
}

// handleTenantPublish routes a ledger-gated publish to the tenant's
// primary — the one node that accounts the tenant's budget, kept
// authoritative by tenant-prefix placement — and replicates the
// created epoch before the 201 returns.
func (rt *Router) handleTenantPublish(w http.ResponseWriter, req *http.Request) {
	rt.writeThrough(w, req, RouteKey(req.PathValue("tenant")))
}

// writeThrough forwards a publish to key's primary, then replicates
// the created release to the key's healthy followers. The body is
// streamed, not buffered — publishes are not idempotent (they draw
// noise and, for tenants, debit budget), so there is no retry to
// buffer for.
func (rt *Router) writeThrough(w http.ResponseWriter, req *http.Request, key string) {
	reps := rt.ring.ReplicasFor(key)
	primary := reps[0]
	if !rt.health.Healthy(primary.Name) {
		rt.primaryUnavailable(w, key, primary)
		return
	}
	resp, err := rt.forward(req.Context(), primary, req, nil)
	if err != nil {
		if req.Context().Err() != nil {
			return
		}
		rt.health.ReportFailure(primary.Name, err)
		rt.primaryUnavailable(w, key, primary)
		return
	}
	if resp.StatusCode != http.StatusCreated {
		rt.relay(w, resp, primary)
		return
	}
	var created map[string]any
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&created)
	resp.Body.Close()
	id, _ := created["id"].(string)
	if err != nil || id == "" {
		httpError(w, http.StatusBadGateway, fmt.Sprintf("primary %q returned an unreadable created summary", primary.Name))
		return
	}
	replicas := rt.replicate(req.Context(), primary, reps[1:], id)
	created["node"] = primary.Name
	created["replicas"] = append([]string{primary.Name}, replicas...)
	w.Header().Set(NodeHeader, primary.Name)
	writeJSON(w, http.StatusCreated, created)
}

// replicate ships the encoded release id from the primary to each
// healthy follower: one export read, one PUT /internal/replicate per
// follower — the codec wire format is the transfer unit, and the
// follower rebuilds through the same decode path a restart uses.
// Returns the names of followers that hold a copy. A follower that
// fails is ejected and skipped (the release is under-replicated until
// republished); the primary's copy already exists, so the publish
// itself never fails here.
func (rt *Router) replicate(ctx context.Context, primary Node, followers []Node, id string) []string {
	if len(followers) == 0 {
		return nil
	}
	payload, err := rt.export(ctx, primary, id)
	if err != nil {
		rt.replFailures.Add(int64(len(followers)))
		return nil
	}
	var (
		mu   sync.Mutex
		done []string
		wg   sync.WaitGroup
	)
	for _, f := range followers {
		if !rt.health.Healthy(f.Name) {
			rt.replFailures.Add(1)
			continue
		}
		wg.Add(1)
		go func(f Node) {
			defer wg.Done()
			if err := rt.push(ctx, f, id, payload); err != nil {
				rt.replFailures.Add(1)
				var transport *url.Error
				if errors.As(err, &transport) {
					rt.health.ReportFailure(f.Name, err)
				}
				return
			}
			rt.replications.Add(1)
			mu.Lock()
			done = append(done, f.Name)
			mu.Unlock()
		}(f)
	}
	wg.Wait()
	sort.Strings(done)
	return done
}

// export fetches the encoded release from the node holding it.
func (rt *Router) export(ctx context.Context, n Node, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/releases/"+url.PathEscape(id)+"/export", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("export of %q from %s: status %d", id, n.Name, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, rt.maxBody))
}

// push streams an encoded release into one follower's store,
// authenticated with the cluster secret and stamped with the ring
// version so a node running a newer membership refuses the copy
// instead of accepting stale placement.
func (rt *Router) push(ctx context.Context, n Node, id string, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, n.URL+"/internal/replicate/"+url.PathEscape(id), bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if rt.secret != "" {
		req.Header.Set("Authorization", "Bearer "+rt.secret)
	}
	req.Header.Set(RingVersionHeader, fmt.Sprintf("%d", rt.ring.Version()))
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replicate %q to %s: status %d", id, n.Name, resp.StatusCode)
	}
	return nil
}

// handleTenantBudget reads a tenant's budget from its primary — the
// only node whose ledger accounts the tenant, so a fan-out would read
// zeroes from followers.
func (rt *Router) handleTenantBudget(w http.ResponseWriter, req *http.Request) {
	key := RouteKey(req.PathValue("tenant"))
	primary := rt.ring.PrimaryFor(key)
	if !rt.health.Healthy(primary.Name) {
		rt.primaryUnavailable(w, key, primary)
		return
	}
	rt.proxyReadNodes(w, req, []Node{primary})
}

// handleDelete withdraws a release from every replica of its key — the
// full intended replica set from the ring, not just the currently
// healthy members, because a replica the health prober has ejected may
// still hold a copy. The response reports a per-replica outcome
// ("deleted", "missing", "unreachable", or "error: ...") plus
// "repair_pending": whether any replica could not confirm, in which
// case the node-side anti-entropy sweep finishes the job — the nodes
// that did delete hold tombstones, and the next sweep withdraws the
// copy from the replica that slept through the DELETE. 200 when at
// least one copy was deleted, 404 when every reachable replica denies
// the release, typed 503 when none was reachable.
func (rt *Router) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	key := RouteKey(id)
	replicas := rt.ring.ReplicasFor(key)
	deleted := make([]string, 0, len(replicas))
	outcomes := make(map[string]string, len(replicas))
	missing := 0
	var lastErr string
	for _, n := range replicas {
		resp, err := rt.forward(req.Context(), n, req, nil)
		if err != nil {
			if req.Context().Err() != nil {
				return
			}
			rt.health.ReportFailure(n.Name, err)
			lastErr = err.Error()
			outcomes[n.Name] = "unreachable"
			continue
		}
		switch {
		case resp.StatusCode == http.StatusNoContent:
			deleted = append(deleted, n.Name)
			outcomes[n.Name] = "deleted"
		case resp.StatusCode == http.StatusNotFound:
			missing++
			outcomes[n.Name] = "missing"
		default:
			lastErr = fmt.Sprintf("%s: status %d", n.Name, resp.StatusCode)
			outcomes[n.Name] = fmt.Sprintf("error: status %d", resp.StatusCode)
		}
		drain(resp)
	}
	switch {
	case len(deleted) > 0:
		writeJSON(w, http.StatusOK, map[string]any{
			"id":             id,
			"deleted_from":   deleted,
			"replicas":       outcomes,
			"repair_pending": len(deleted)+missing < len(replicas),
		})
	case missing > 0:
		httpError(w, http.StatusNotFound, fmt.Sprintf("no release %q on any replica", id))
	default:
		rt.noReplica.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error": "delete failed on every replica: " + lastErr,
			"code":  "no_healthy_replica",
		})
	}
}

// handleList merges every healthy node's release list, deduplicating
// replicas by ID (each release appears once, whichever copy answered
// first wins — copies are bit-identical, so it does not matter which).
func (rt *Router) handleList(w http.ResponseWriter, req *http.Request) {
	nodes := rt.rotatedHealthyNodes()
	if len(nodes) == 0 {
		rt.noHealthyReplica(w, "/releases")
		return
	}
	type entry = map[string]any
	byID := make(map[string]entry)
	reached := 0
	for _, n := range nodes {
		resp, err := rt.forward(req.Context(), n, req, nil)
		if err != nil {
			if req.Context().Err() != nil {
				return
			}
			rt.health.ReportFailure(n.Name, err)
			continue
		}
		var list []entry
		err = json.NewDecoder(io.LimitReader(resp.Body, rt.maxBody)).Decode(&list)
		resp.Body.Close()
		if err != nil {
			continue
		}
		reached++
		for _, e := range list {
			if id, _ := e["id"].(string); id != "" {
				if _, dup := byID[id]; !dup {
					byID[id] = e
				}
			}
		}
	}
	if reached == 0 {
		rt.noHealthyReplica(w, "/releases")
		return
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	// The store's List order: shortest ID first, then lexicographic.
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	out := make([]entry, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStats aggregates the fleet: every node's /stats verbatim under
// its name (unreachable nodes report their error instead), the health
// snapshot, and the router's own counters — one curl shows the whole
// cluster.
func (rt *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	nodes := rt.ring.Nodes()
	perNode := make(map[string]json.RawMessage, len(nodes))
	for _, n := range nodes {
		resp, err := rt.forward(req.Context(), n, req, nil)
		if err != nil {
			perNode[n.Name] = errJSON(err.Error())
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(raw) {
			perNode[n.Name] = errJSON(fmt.Sprintf("stats status %d", resp.StatusCode))
			continue
		}
		perNode[n.Name] = raw
	}
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		names = append(names, n.Name)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":       perNode,
		"health":      rt.health.Snapshot(),
		"router":      rt.Stats(),
		"replication": rt.ring.Replication(),
		"ring": map[string]any{
			"version":     rt.ring.Version(),
			"nodes":       names,
			"replication": rt.ring.Replication(),
		},
	})
}

func errJSON(msg string) json.RawMessage {
	raw, _ := json.Marshal(map[string]string{"error": msg})
	return raw
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// ParsePeers parses the daemon's -peers flag: comma-separated
// "name=url" entries (a bare URL derives its name from the host:port).
// Shared by cmd/priveletd's node and route modes so both sides of a
// deployment parse one spelling.
func ParsePeers(spec string) ([]Node, error) {
	var out []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		if !ok {
			rawURL = part
			u, err := url.Parse(rawURL)
			if err != nil || u.Host == "" {
				return nil, fmt.Errorf("cluster: peer %q: need name=url or an absolute URL", part)
			}
			name = u.Host
		}
		u, err := url.Parse(rawURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q: bad URL %q", part, rawURL)
		}
		out = append(out, Node{Name: name, URL: strings.TrimSuffix(rawURL, "/")})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return out, nil
}
