package cli

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestParseSchemaOrdinal(t *testing.T) {
	s, err := ParseSchema("Age:ordinal:101")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAttrs() != 1 || s.Attr(0).Name != "Age" || s.Attr(0).Size != 101 {
		t.Fatalf("parsed %+v", s.Attr(0))
	}
	if s.Attr(0).Kind != dataset.Ordinal {
		t.Error("kind should be ordinal")
	}
}

func TestParseSchemaNominalFlat(t *testing.T) {
	s, err := ParseSchema("Gender:nominal:flat:2")
	if err != nil {
		t.Fatal(err)
	}
	a := s.Attr(0)
	if a.Kind != dataset.Nominal || a.Size != 2 || a.Hier.Height() != 2 {
		t.Fatalf("parsed %+v (height %d)", a, a.Hier.Height())
	}
}

func TestParseSchemaNominalThreeLevel(t *testing.T) {
	s, err := ParseSchema("Occ:nominal:3level:16x32")
	if err != nil {
		t.Fatal(err)
	}
	a := s.Attr(0)
	if a.Size != 512 || a.Hier.Height() != 3 {
		t.Fatalf("parsed size %d height %d", a.Size, a.Hier.Height())
	}
	if a.Hier.Root().Fanout() != 16 {
		t.Fatalf("groups = %d", a.Hier.Root().Fanout())
	}
}

func TestParseSchemaMulti(t *testing.T) {
	s, err := ParseSchema("Age:ordinal:64, Gender:nominal:flat:2 ,Occ:nominal:3level:8x8,Income:ordinal:64")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAttrs() != 4 {
		t.Fatalf("attrs = %d", s.NumAttrs())
	}
	if s.DomainSize() != 64*2*64*64 {
		t.Fatalf("domain = %d", s.DomainSize())
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []string{
		"",
		"Age",
		"Age:ordinal",
		"Age:ordinal:abc",
		"Age:ordinal:0",
		":ordinal:5",
		"X:nominal:flat",
		"X:nominal:flat:x",
		"X:nominal:flat:0",
		"X:nominal:3level:16",
		"X:nominal:3level:0x5",
		"X:nominal:pyramid:3",
		"X:fancy:3",
		"A:ordinal:4,A:ordinal:4", // duplicate name caught by schema
	}
	for _, spec := range cases {
		if _, err := ParseSchema(spec); err == nil {
			t.Errorf("ParseSchema(%q) should fail", spec)
		}
	}
}

func TestReadTable(t *testing.T) {
	s, err := ParseSchema("A:ordinal:4,B:nominal:flat:3")
	if err != nil {
		t.Fatal(err)
	}
	in := "0,1\n3,2\n\n 2 , 0 \n"
	tbl, err := ReadTable(s, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (blank line skipped)", tbl.Len())
	}
	row := tbl.Row(2, nil)
	if row[0] != 2 || row[1] != 0 {
		t.Fatalf("row 2 = %v", row)
	}
}

func TestReadRowsStreams(t *testing.T) {
	s, err := ParseSchema("A:ordinal:4,B:nominal:flat:3")
	if err != nil {
		t.Fatal(err)
	}
	in := "0,1\n3,2\n\n 2 , 0 \n"
	var got [][]int
	err = ReadRows(s, strings.NewReader(in), func(vals ...int) error {
		// The sink contract: vals is reused, so retainers must copy.
		got = append(got, append([]int(nil), vals...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {3, 2}, {2, 0}}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("row %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadRowsSinkError(t *testing.T) {
	s, err := ParseSchema("A:ordinal:4")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = ReadRows(s, strings.NewReader("0\n1\n2\n"), func(...int) error {
		calls++
		if calls == 2 {
			return errBoom
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 sink error", err)
	}
	if calls != 2 {
		t.Fatalf("sink called %d times after error, want 2", calls)
	}
}

var errBoom = fmt.Errorf("boom")

func TestReadTableErrors(t *testing.T) {
	s, err := ParseSchema("A:ordinal:4,B:ordinal:4")
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"1\n",     // too few fields
		"1,2,3\n", // too many fields
		"1,x\n",   // not an integer
		"1,9\n",   // out of domain
		"-1,0\n",  // negative
	}
	for _, in := range cases {
		if _, err := ReadTable(s, strings.NewReader(in)); err == nil {
			t.Errorf("ReadTable(%q) should fail", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := ParseSchema("A:ordinal:8,B:nominal:flat:4")
	if err != nil {
		t.Fatal(err)
	}
	tbl := dataset.NewTable(s)
	for i := 0; i < 20; i++ {
		if err := tbl.Append(i%8, i%4); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTable(s, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip lost rows: %d vs %d", back.Len(), tbl.Len())
	}
	a, b := make([]int, 2), make([]int, 2)
	for i := 0; i < tbl.Len(); i++ {
		tbl.Row(i, a)
		back.Row(i, b)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("row %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestSplitNonEmpty(t *testing.T) {
	if got := SplitNonEmpty("a, b ,,c"); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("SplitNonEmpty = %v", got)
	}
	if got := SplitNonEmpty(""); got != nil {
		t.Fatalf("SplitNonEmpty(\"\") = %v, want nil", got)
	}
	if got := SplitNonEmpty(" , "); got != nil {
		t.Fatalf("SplitNonEmpty of blanks = %v, want nil", got)
	}
}
